// Package prefcolor is a from-scratch implementation of
// preference-directed graph coloring (Koseki, Komatsu, Nakatani;
// PLDI 2002) together with the classic graph-coloring register
// allocators it is evaluated against, a compiler-backend substrate
// (IR, CFG analyses, liveness, SSA construction/destruction, webs and
// interference graphs, spill insertion), and the experiment harness
// that regenerates the paper's figures.
//
// The quickest path from code to registers:
//
//	f, err := prefcolor.ParseFunction(src)
//	m := prefcolor.NewMachine(16) // 16-register IA-64-like model
//	out, stats, err := prefcolor.Allocate(f, m, prefcolor.PreferenceDirected())
//
// Allocate returns the rewritten function (virtual registers replaced
// by machine registers, coalesced copies deleted, spill and
// caller-save code inserted) and the allocation statistics the
// paper's Figure 9 reports. EstimateCycles prices the result with the
// paper's Appendix cost model, the basis of Figures 10 and 11.
package prefcolor

import (
	"prefcolor/internal/bench"
	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/opt"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
	"prefcolor/internal/regalloc/callcost"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/regalloc/iterated"
	"prefcolor/internal/regalloc/optimistic"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
	"prefcolor/internal/workload"
)

// Function is a function in the textual register-transfer IR; see
// ParseFunction for the syntax.
type Function = ir.Func

// Reg names a virtual (v0, v1, …) or physical (r0, r1, …) register.
type Reg = ir.Reg

// Machine is a register-file and calling-convention model.
type Machine = target.Machine

// Allocator is one register-allocation strategy.
type Allocator = regalloc.Allocator

// Stats summarizes an allocation: moves eliminated by coalescing,
// spill code inserted, caller-save traffic, registers used.
type Stats = regalloc.Stats

// Options tunes the allocation driver (spill-round limit,
// validation, telemetry collection and tracing).
type Options = regalloc.Options

// Workspace is a reusable scratch arena for the allocation pipeline.
// Attach one via Options.Workspace to reuse buffers across Run calls;
// a workspace serves one run at a time (pool it, don't share it), and
// reuse is observationally pure — output is bit-identical to running
// with fresh state. AllocateAll pools automatically, one workspace
// per worker.
type Workspace = regalloc.Workspace

// NewWorkspace returns an empty allocation workspace.
func NewWorkspace() *Workspace { return regalloc.NewWorkspace() }

// TelemetrySnapshot is one allocation's (or a merged batch's)
// instrumentation report: per-phase wall/CPU timers, preference
// counters by kind and outcome, and the CPG ready-set histogram.
// Enable collection with Options.CollectTelemetry (the snapshot lands
// in Stats.Telemetry) and attach Options.TraceWriter for a structured
// per-decision JSON event stream.
type TelemetrySnapshot = telemetry.Snapshot

// CycleEstimate is the static performance estimate of allocated code.
type CycleEstimate = perfmodel.Result

// WorkloadProfile describes one synthetic benchmark program.
type WorkloadProfile = workload.Profile

// ParseFunction parses the textual IR:
//
//	func name(v0, v1) {
//	b0:
//	  v2 = load v0, 0
//	  v3 = add v2, v1
//	  branch v3, b1, b2
//	b1:
//	  r0 = move v3
//	  v4 = call @f r0
//	  jump b2
//	b2:
//	  ret v3
//	}
func ParseFunction(src string) (*Function, error) { return ir.Parse(src) }

// EncodeFunctionBinary returns f's canonical binary IR encoding — the
// compact wire format the prefgcd daemon accepts on /v1/allocate with
// the application/x-prefgcd-ir content type. Encoding then decoding
// reproduces the function exactly.
func EncodeFunctionBinary(f *Function) []byte { return ir.EncodeBinary(f) }

// DecodeFunctionBinary decodes one function from the binary IR wire
// format and validates it.
func DecodeFunctionBinary(data []byte) (*Function, error) { return ir.DecodeBinary(data) }

// AppendFunctionBinaryFrame appends f as one length-prefixed frame of
// the /v1/batch binary stream format and returns the extended buffer.
func AppendFunctionBinaryFrame(dst []byte, f *Function) []byte {
	return ir.AppendBinaryFrame(dst, f)
}

// IsBinaryIR reports whether data begins with the binary IR magic.
func IsBinaryIR(data []byte) bool { return ir.IsBinary(data) }

// NewMachine returns the paper's IA-64-like usage model with k
// registers: the lower half volatile, up to eight parameter registers,
// r0 doubling as first parameter and return register, and
// parity-constrained paired loads. The paper's experiments use k =
// 16, 24, and 32.
func NewMachine(k int) *Machine { return target.UsageModel(k) }

// NewX86Machine returns an x86-flavored model with the paper's §3.1
// limited register usages: shift counts in the CL-like register,
// loads into byte-addressable low registers, division results in the
// EAX-like register, and no paired loads.
func NewX86Machine(k int) *Machine { return target.X86Like(k) }

// NewS390Machine returns a model whose paired loads require strictly
// sequential destination registers (S/390- and Power-like, §3.1).
func NewS390Machine(k int) *Machine { return target.S390Like(k) }

// PreferenceDirected returns the paper's full coloring system:
// Register Preference Graph, Coloring Precedence Graph, and
// integrated preference-directed selection with deferred coalescing
// and active spilling.
func PreferenceDirected() Allocator { return core.New() }

// PreferenceCoalesceOnly returns the paper's §6.1 configuration,
// which honors only coalescing preferences.
func PreferenceCoalesceOnly() Allocator { return core.NewCoalesceOnly() }

// Chaitin returns the classic Chaitin 1982 allocator with aggressive
// coalescing — the baseline of the paper's Figure 9.
func Chaitin() Allocator { return chaitin.New() }

// Briggs returns Briggs-style optimistic coloring with aggressive
// coalescing and biased select.
func Briggs() Allocator { return briggs.New() }

// BriggsConservative returns the conservative-coalescing Briggs
// variant.
func BriggsConservative() Allocator { return briggs.NewConservative() }

// IteratedCoalescing returns George & Appel's iterated register
// coalescing.
func IteratedCoalescing() Allocator { return iterated.New() }

// OptimisticCoalescing returns Park & Moon's optimistic coalescing
// with select-time undo.
func OptimisticCoalescing() Allocator { return optimistic.New() }

// CallCostDirected returns the modeled Lueh & Gross call-cost
// directed allocation (the paper's "aggressive+volatility"
// comparison).
func CallCostDirected() Allocator { return callcost.New() }

// PriorityBased returns Chow & Hennessy's priority-based coloring
// (simplified: spills where the original splits), the coloring school
// the paper's related-work section contrasts with Chaitin's.
func PriorityBased() Allocator { return priority.New() }

// LinearScan returns the fast-tier linear-scan allocator: one pass
// over conservative live-interval hulls, roughly an order of
// magnitude faster than the preference-directed allocator at the cost
// of coalescing and spill quality. The daemon's tier mode serves it
// first and upgrades to PreferenceDirected in the background.
func LinearScan() Allocator { return linearscan.New() }

// AllocatorByName resolves the figure labels ("chaitin",
// "briggs-aggressive", "briggs-conservative", "iterated",
// "optimistic", "callcost", "pref-coalesce", "pref-full").
func AllocatorByName(name string) (Allocator, error) { return bench.NewAllocator(name) }

// AllocatorNames lists every configuration AllocatorByName accepts.
func AllocatorNames() []string { return bench.AllocatorNames() }

// Allocate runs the full allocation pipeline on f for machine m:
// renumber into live ranges, build the interference graph, color with
// the given allocator, iterate spill rounds to completion, and
// rewrite onto physical registers. f is not modified.
func Allocate(f *Function, m *Machine, a Allocator) (*Function, *Stats, error) {
	return regalloc.Run(f, m, a, Options{})
}

// AllocateOpts is Allocate with explicit driver options.
func AllocateOpts(f *Function, m *Machine, a Allocator, opts Options) (*Function, *Stats, error) {
	return regalloc.Run(f, m, a, opts)
}

// AllocateAll allocates every function concurrently with a
// GOMAXPROCS-bounded worker pool — allocations are independent, so a
// whole program batches embarrassingly. newAllocator must return a
// fresh Allocator per call (instances are stateful and cannot be
// shared across functions). Outputs are index-aligned with funcs and
// identical to calling Allocate on each function in order, whatever
// the scheduling.
func AllocateAll(funcs []*Function, m *Machine, newAllocator func() Allocator, opts Options) ([]*Function, []*Stats, error) {
	batch, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
		Options:      opts,
		NewAllocator: newAllocator,
	})
	if err != nil {
		return nil, nil, err
	}
	return batch.Funcs, batch.Stats, nil
}

// MergeTelemetry combines the per-function telemetry snapshots of a
// batch into one report; entries without telemetry (collection off)
// contribute nothing. It returns nil when no snapshot was present.
func MergeTelemetry(stats []*Stats) *TelemetrySnapshot {
	var merged *TelemetrySnapshot
	for _, st := range stats {
		if st == nil || st.Telemetry == nil {
			continue
		}
		if merged == nil {
			merged = &TelemetrySnapshot{}
		}
		merged.Merge(st.Telemetry)
	}
	return merged
}

// EstimateCycles prices allocated code with the paper's Appendix cost
// model (loads 2, stores 1, caller save/restore 3, callee save 2,
// 10× per loop level), recognizing fused paired loads.
func EstimateCycles(f *Function, m *Machine) CycleEstimate { return perfmodel.Estimate(f, m) }

// Benchmarks returns the nine synthetic SPECjvm98 stand-ins of the
// paper's figures.
func Benchmarks() []WorkloadProfile { return workload.Benchmarks() }

// BenchmarkByName returns one synthetic benchmark profile.
func BenchmarkByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// GenerateWorkload produces a benchmark's functions, convention-
// lowered for m and run through SSA construction and destruction.
func GenerateWorkload(p WorkloadProfile, m *Machine) []*Function { return workload.Generate(p, m) }

// Interpret executes a function under the reference semantics (calls
// clobber the machine's volatile registers) — the tool used to verify
// that allocation preserves behavior.
func Interpret(f *Function, m *Machine, init map[Reg]int64) (ir.ExecResult, error) {
	return ir.Interp(f, init, ir.InterpOptions{CallClobbers: m.CallClobbers()})
}

// ToSSA rewrites f into pruned static single assignment form in
// place: φ-functions at iterated dominance frontiers, every
// definition renamed to a fresh register.
func ToSSA(f *Function) { ssa.Build(f) }

// OptimizeSSA runs the standard scalar optimizations (constant
// folding, copy propagation, dead-code elimination) on a function in
// SSA form — the "many advanced optimizations" stage of the paper's
// pipeline.
func OptimizeSSA(f *Function) { opt.Optimize(f) }

// FromSSA lowers every φ-function of f into explicit copies
// (splitting critical edges, sequentializing parallel moves). The
// copies it introduces are exactly the coalescing workload the
// paper's allocators compete on.
func FromSSA(f *Function) {
	ssa.Destruct(f)
	f.CompactNops()
}
