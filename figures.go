package prefcolor

import "prefcolor/internal/bench"

// Fig9Row is one benchmark's bars in Figure 9: moves-eliminated and
// spill-code ratios against the Chaitin base.
type Fig9Row = bench.Fig9Row

// Fig10Row is one benchmark's estimated execution cost per series.
type Fig10Row = bench.Fig10Row

// Fig11Row is one benchmark's cost relative to full preferences.
type Fig11Row = bench.Fig11Row

// Figure9 regenerates Figure 9 for a register count (16 → panels
// (a)/(b), 32 → panels (c)/(d)): per-benchmark ratios of moves
// eliminated by coalescing and of spill instructions generated,
// against Chaitin with aggressive coalescing, for the coalescing-only
// preference-directed allocator, Park–Moon optimistic coalescing, and
// Briggs with aggressive coalescing. A trailing geometric-mean row
// closes the slice. Optional names restrict the benchmark set.
func Figure9(k int, benchmarks ...string) ([]Fig9Row, error) {
	return bench.Figure9(k, benchmarks...)
}

// Figure10 regenerates one panel of Figure 10 (k = 16, 24, or 32):
// estimated execution cost per benchmark for only-coalescing,
// optimistic coalescing, and full preferences.
func Figure10(k int, benchmarks ...string) ([]Fig10Row, error) {
	return bench.Figure10(k, benchmarks...)
}

// Figure11 regenerates Figure 11: estimated execution cost relative
// to full preferences on the 24-register middle-pressure model, for
// the three coalescing-only approaches, aggressive+volatility
// (call-cost directed), and ours.
func Figure11(benchmarks ...string) ([]Fig11Row, error) {
	return bench.Figure11(benchmarks...)
}

// RunBenchmark allocates one whole synthetic benchmark with one
// allocator configuration and returns the aggregate statistics.
func RunBenchmark(p WorkloadProfile, m *Machine, allocator string) (*bench.ProgramResult, error) {
	return bench.RunProgram(p, m, allocator)
}

// AblationRow is one knocked-out design choice's aggregate result.
type AblationRow = bench.AblationRow

// Ablations runs the full-preference allocator and the variants with
// one design choice disabled each (CPG order relaxation, strength-
// differential priority, recoloring fixup, active spill, deferred
// screening, and the stack-order combination) over the named
// benchmarks with k registers.
func Ablations(k int, benchmarks ...string) ([]AblationRow, error) {
	return bench.Ablations(k, benchmarks...)
}
