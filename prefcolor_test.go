package prefcolor_test

import (
	"testing"

	"prefcolor"
)

const apiSample = `
func sample(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 4
  jump b1
b1:
  v3 = load v0, 0
  v4 = load v0, 4
  v1 = add v1, v3
  v1 = add v1, v4
  v2 = addimm v2, -1
  branch v2, b1, b2
b2:
  r0 = move v1
  v5 = call @helper r0
  v6 = add v5, v1
  ret v6
}
`

func TestPublicAPIAllocateAll(t *testing.T) {
	m := prefcolor.NewMachine(16)
	for _, name := range prefcolor.AllocatorNames() {
		f, err := prefcolor.ParseFunction(apiSample)
		if err != nil {
			t.Fatalf("ParseFunction: %v", err)
		}
		alloc, err := prefcolor.AllocatorByName(name)
		if err != nil {
			t.Fatalf("AllocatorByName(%q): %v", name, err)
		}
		out, stats, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			t.Fatalf("Allocate with %s: %v", name, err)
		}
		if stats.Allocator != name {
			t.Errorf("stats.Allocator = %q, want %q", stats.Allocator, name)
		}
		// Behavioral equivalence through the public interpreter.
		in := map[prefcolor.Reg]int64{f.Params[0]: 512}
		outInit := map[prefcolor.Reg]int64{out.Params[0]: 512}
		a, err := prefcolor.Interpret(f, m, in)
		if err != nil {
			t.Fatalf("Interpret input: %v", err)
		}
		b, err := prefcolor.Interpret(out, m, outInit)
		if err != nil {
			t.Fatalf("Interpret output (%s): %v", name, err)
		}
		if a.Ret != b.Ret {
			t.Errorf("%s: result changed: %d vs %d", name, a.Ret, b.Ret)
		}
		est := prefcolor.EstimateCycles(out, m)
		if est.Cycles <= 0 {
			t.Errorf("%s: non-positive cycle estimate", name)
		}
	}
}

func TestPublicAPIPreferenceQuality(t *testing.T) {
	m := prefcolor.NewMachine(16)
	f, err := prefcolor.ParseFunction(apiSample)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := prefcolor.Allocate(f, m, prefcolor.PreferenceDirected())
	if err != nil {
		t.Fatal(err)
	}
	est := prefcolor.EstimateCycles(out, m)
	if est.FusedPairs != 1 || est.MissedPairs != 0 {
		t.Errorf("preference-directed allocation lost the paired load: %+v", est)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	m := prefcolor.NewMachine(16)
	p, err := prefcolor.BenchmarkByName("db")
	if err != nil {
		t.Fatal(err)
	}
	funcs := prefcolor.GenerateWorkload(p, m)
	if len(funcs) != p.Funcs {
		t.Fatalf("generated %d functions, want %d", len(funcs), p.Funcs)
	}
	if len(prefcolor.Benchmarks()) != 9 {
		t.Errorf("Benchmarks() = %d entries, want 9", len(prefcolor.Benchmarks()))
	}
}

func TestPublicAPIRunBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run skipped in -short mode")
	}
	m := prefcolor.NewMachine(16)
	p, _ := prefcolor.BenchmarkByName("jack")
	res, err := prefcolor.RunBenchmark(p, m, "pref-full")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.MovesBefore == 0 {
		t.Errorf("degenerate benchmark result: %+v", res)
	}
}
