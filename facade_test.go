package prefcolor_test

import (
	"testing"

	"prefcolor"
)

func TestFacadeMachineConstructors(t *testing.T) {
	x86 := prefcolor.NewX86Machine(16)
	if len(x86.Limits) == 0 {
		t.Error("x86 machine has no limited-register rules")
	}
	s390 := prefcolor.NewS390Machine(16)
	if !s390.PairOK(4, 5) || s390.PairOK(4, 7) {
		t.Error("s390 machine pair rule wrong")
	}
}

func TestFacadeNamedConstructorsMatchRegistry(t *testing.T) {
	named := map[string]prefcolor.Allocator{
		"pref-full":           prefcolor.PreferenceDirected(),
		"pref-coalesce":       prefcolor.PreferenceCoalesceOnly(),
		"chaitin":             prefcolor.Chaitin(),
		"briggs-aggressive":   prefcolor.Briggs(),
		"briggs-conservative": prefcolor.BriggsConservative(),
		"iterated":            prefcolor.IteratedCoalescing(),
		"optimistic":          prefcolor.OptimisticCoalescing(),
		"callcost":            prefcolor.CallCostDirected(),
		"priority":            prefcolor.PriorityBased(),
		"linearscan":          prefcolor.LinearScan(),
	}
	for want, alloc := range named {
		if alloc.Name() != want {
			t.Errorf("constructor for %q reports name %q", want, alloc.Name())
		}
	}
	if len(named) != len(prefcolor.AllocatorNames()) {
		t.Errorf("facade exposes %d constructors, registry %d names", len(named), len(prefcolor.AllocatorNames()))
	}
}

func TestFacadeSSAHelpers(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = loadimm 5
  branch v0, b1, b2
b1:
  v1 = loadimm 11
  jump b2
b2:
  ret v1
}
`
	orig, err := prefcolor.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prefcolor.ParseFunction(src)
	prefcolor.ToSSA(f)
	phiText := f.String()
	if !containsPhi(phiText) {
		t.Errorf("ToSSA placed no φ:\n%s", phiText)
	}
	prefcolor.FromSSA(f)
	if containsPhi(f.String()) {
		t.Errorf("FromSSA left a φ:\n%s", f)
	}
	m := prefcolor.NewMachine(8)
	for _, in := range []int64{0, 1} {
		a, err := prefcolor.Interpret(orig, m, map[prefcolor.Reg]int64{orig.Params[0]: in})
		if err != nil {
			t.Fatal(err)
		}
		b, err := prefcolor.Interpret(f, m, map[prefcolor.Reg]int64{f.Params[0]: in})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d", in, a.Ret, b.Ret)
		}
	}
}

func containsPhi(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "phi " {
			return true
		}
	}
	return false
}

func TestFacadeAllocateOptsRemat(t *testing.T) {
	f, err := prefcolor.ParseFunction(`
func f(v0) {
b0:
  v1 = loadimm 7
  v2 = add v0, v0
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v2, v3
  v6 = add v5, v4
  v7 = add v6, v0
  v8 = add v7, v2
  v9 = add v8, v1
  ret v9
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m := prefcolor.NewMachine(4)
	_, stats, err := prefcolor.AllocateOpts(f, m, prefcolor.Chaitin(), prefcolor.Options{Rematerialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Remats == 0 {
		t.Error("rematerialization option had no effect")
	}
}

func TestFacadeExplain(t *testing.T) {
	f, err := prefcolor.ParseFunction(`
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v1, v2
  v4 = call @g v3
  ret v4
}
`)
	if err != nil {
		t.Fatal(err)
	}
	before := f.String()
	m := prefcolor.NewMachine(16)
	exp, err := prefcolor.Explain(f, m)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("Explain mutated its input")
	}
	if exp.Webs == 0 {
		t.Error("no webs reported")
	}
	for _, want := range []string{"sequential+", "prefers"} {
		if !containsStr(exp.RPG, want) {
			t.Errorf("RPG dump missing %q:\n%s", want, exp.RPG)
		}
	}
	if !containsStr(exp.CPG, "top ->") || !containsStr(exp.CPG, "-> bottom") {
		t.Errorf("CPG dump missing pseudo-nodes:\n%s", exp.CPG)
	}
	if !containsStr(exp.Interference, "v0:") {
		t.Errorf("interference dump missing webs:\n%s", exp.Interference)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
