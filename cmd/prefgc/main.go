// Command prefgc allocates registers for a function written in the
// textual IR and prints the rewritten code.
//
// Usage:
//
//	prefgc [-k 16] [-alloc pref-full] [-stats] [-estimate] [file]
//
// With no file the function is read from standard input. The
// allocator names are the figure labels: chaitin, briggs-aggressive,
// briggs-conservative, iterated, optimistic, callcost, pref-coalesce,
// pref-full.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prefcolor"
)

func main() {
	k := flag.Int("k", 16, "number of machine registers (the paper uses 16, 24, 32)")
	allocName := flag.String("alloc", "pref-full", "allocator: "+strings.Join(prefcolor.AllocatorNames(), ", "))
	stats := flag.Bool("stats", false, "print allocation statistics")
	estimate := flag.Bool("estimate", false, "print the cycle estimate of the result")
	optimize := flag.Bool("O", false, "run the SSA scalar optimizations before allocation")
	explain := flag.Bool("explain", false, "print the Register Preference Graph and Coloring Precedence Graph instead of allocating")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "prefgc: at most one input file")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	f, err := prefcolor.ParseFunction(string(src))
	if err != nil {
		fatal(err)
	}
	if *optimize {
		prefcolor.ToSSA(f)
		prefcolor.OptimizeSSA(f)
		prefcolor.FromSSA(f)
	}
	if *explain {
		m := prefcolor.NewMachine(*k)
		exp, err := prefcolor.Explain(f, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; %d live ranges\n", exp.Webs)
		fmt.Println("; interference:")
		fmt.Println(indent(exp.Interference))
		fmt.Println("; register preference graph:")
		fmt.Println(indent(exp.RPG))
		fmt.Println("; coloring precedence graph:")
		fmt.Println(indent(exp.CPG))
		if len(exp.PotentialSpills) > 0 {
			fmt.Printf("; potential spills: %v\n", exp.PotentialSpills)
		}
		return
	}
	alloc, err := prefcolor.AllocatorByName(*allocName)
	if err != nil {
		fatal(err)
	}
	m := prefcolor.NewMachine(*k)
	out, st, err := prefcolor.Allocate(f, m, alloc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out.String())
	if *stats {
		fmt.Printf("; allocator=%s rounds=%d moves: %d -> %d (eliminated %d), spill instrs=%d, caller saves=%d, regs used=%d (%d non-volatile)\n",
			st.Allocator, st.Rounds, st.MovesBefore, st.MovesRemaining, st.MovesEliminated,
			st.SpillInstrs(), st.CallerSaveStores+st.CallerSaveLoads, st.UsedRegs, st.UsedNonVolatile)
	}
	if *estimate {
		est := prefcolor.EstimateCycles(out, m)
		fmt.Printf("; estimate: %.1f cycles, %d paired loads fused, %d missed, %d callee-saved regs\n",
			est.Cycles, est.FusedPairs, est.MissedPairs, est.CalleeSaveRegs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefgc:", err)
	os.Exit(1)
}

func indent(s string) string {
	return ";   " + strings.ReplaceAll(s, "\n", "\n;   ")
}
