// Command prefgc allocates registers for functions written in the
// textual IR and prints the rewritten code.
//
// Usage:
//
//	prefgc [-k 16] [-alloc pref-full] [-stats] [-estimate] [file ...]
//
// With no file the function is read from standard input; with several
// files (one function each) the functions are allocated concurrently
// and printed in argument order. The allocator names are the figure
// labels: chaitin, briggs-aggressive, briggs-conservative, iterated,
// optimistic, callcost, pref-coalesce, pref-full.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prefcolor"
)

func main() {
	k := flag.Int("k", 16, "number of machine registers (the paper uses 16, 24, 32)")
	allocName := flag.String("alloc", "pref-full", "allocator: "+strings.Join(prefcolor.AllocatorNames(), ", "))
	stats := flag.Bool("stats", false, "print allocation statistics")
	estimate := flag.Bool("estimate", false, "print the cycle estimate of the result")
	optimize := flag.Bool("O", false, "run the SSA scalar optimizations before allocation")
	explain := flag.Bool("explain", false, "print the Register Preference Graph and Coloring Precedence Graph instead of allocating")
	flag.Parse()

	var sources []namedSource
	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, namedSource{name: "<stdin>", src: string(src)})
	} else {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources = append(sources, namedSource{name: path, src: string(src)})
		}
	}

	funcs := make([]*prefcolor.Function, len(sources))
	for i, s := range sources {
		f, err := prefcolor.ParseFunction(s.src)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.name, err))
		}
		if *optimize {
			prefcolor.ToSSA(f)
			prefcolor.OptimizeSSA(f)
			prefcolor.FromSSA(f)
		}
		funcs[i] = f
	}

	m := prefcolor.NewMachine(*k)
	if *explain {
		if len(funcs) > 1 {
			fatal(fmt.Errorf("-explain takes a single function"))
		}
		exp, err := prefcolor.Explain(funcs[0], m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; %d live ranges\n", exp.Webs)
		fmt.Println("; interference:")
		fmt.Println(indent(exp.Interference))
		fmt.Println("; register preference graph:")
		fmt.Println(indent(exp.RPG))
		fmt.Println("; coloring precedence graph:")
		fmt.Println(indent(exp.CPG))
		if len(exp.PotentialSpills) > 0 {
			fmt.Printf("; potential spills: %v\n", exp.PotentialSpills)
		}
		return
	}

	if _, err := prefcolor.AllocatorByName(*allocName); err != nil {
		fatal(err)
	}
	newAlloc := func() prefcolor.Allocator {
		a, _ := prefcolor.AllocatorByName(*allocName)
		return a
	}
	outs, sts, err := prefcolor.AllocateAll(funcs, m, newAlloc, prefcolor.Options{})
	if err != nil {
		fatal(err)
	}
	for i, out := range outs {
		if len(outs) > 1 {
			fmt.Printf("; %s\n", sources[i].name)
		}
		fmt.Print(out.String())
		st := sts[i]
		if *stats {
			fmt.Printf("; allocator=%s rounds=%d moves: %d -> %d (eliminated %d), spill instrs=%d, caller saves=%d, regs used=%d (%d non-volatile)\n",
				st.Allocator, st.Rounds, st.MovesBefore, st.MovesRemaining, st.MovesEliminated,
				st.SpillInstrs(), st.CallerSaveStores+st.CallerSaveLoads, st.UsedRegs, st.UsedNonVolatile)
		}
		if *estimate {
			est := prefcolor.EstimateCycles(out, m)
			fmt.Printf("; estimate: %.1f cycles, %d paired loads fused, %d missed, %d callee-saved regs\n",
				est.Cycles, est.FusedPairs, est.MissedPairs, est.CalleeSaveRegs)
		}
	}
}

type namedSource struct {
	name string
	src  string
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prefgc:", err)
	os.Exit(1)
}

func indent(s string) string {
	return ";   " + strings.ReplaceAll(s, "\n", "\n;   ")
}
