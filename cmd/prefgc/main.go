// Command prefgc allocates registers for functions written in the
// textual IR and prints the rewritten code.
//
// Usage:
//
//	prefgc [-k 16] [-alloc pref-full] [-stats] [-estimate] [-telemetry] [-trace file] [-timeout 30s] [file ...]
//
// With no file the function is read from standard input; with several
// files (one function each) the functions are allocated concurrently
// and printed in argument order. The allocator names are the figure
// labels: chaitin, briggs-aggressive, briggs-conservative, iterated,
// optimistic, callcost, pref-coalesce, pref-full.
//
// Inputs may be textual IR or the binary wire format (recognized by
// its magic bytes); -emit-binary converts instead of allocating,
// writing one raw encoding for a single input (a /v1/allocate body)
// or a length-prefixed frame stream for several (a /v1/batch body).
//
// -telemetry prints the merged instrumentation report (phase timers,
// preference counters, ready-set histogram) after the code; -trace
// writes one JSON line per selection or spill decision to the given
// file ("-" for standard error). -timeout aborts the whole batch at
// the next phase boundary once the deadline passes. -pprof serves
// net/http/pprof on the given address for profiling long batches;
// -memprofile writes a post-allocation heap profile (after a forced
// GC, so it shows live retention) readable by go tool pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"prefcolor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the golden tests can drive
// the binary in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefgc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 16, "number of machine registers (the paper uses 16, 24, 32)")
	allocName := fs.String("alloc", "pref-full", "allocator: "+strings.Join(prefcolor.AllocatorNames(), ", "))
	stats := fs.Bool("stats", false, "print allocation statistics")
	estimate := fs.Bool("estimate", false, "print the cycle estimate of the result")
	optimize := fs.Bool("O", false, "run the SSA scalar optimizations before allocation")
	explain := fs.Bool("explain", false, "print the Register Preference Graph and Coloring Precedence Graph instead of allocating")
	telemetry := fs.Bool("telemetry", false, "print the allocation telemetry report")
	tracePath := fs.String("trace", "", "write a JSON event trace to this file (\"-\" for standard error)")
	timeout := fs.Duration("timeout", 0, "abort allocation after this long (0 = no deadline)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file after allocation")
	emitBinary := fs.Bool("emit-binary", false, "emit the binary IR wire format instead of allocating (one raw encoding, or a frame stream for several inputs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "prefgc:", err)
		return 1
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(stderr, "prefgc: pprof:", err)
			}
		}()
	}

	var sources []namedSource
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			return fail(err)
		}
		sources = append(sources, namedSource{name: "<stdin>", src: string(src)})
	} else {
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			sources = append(sources, namedSource{name: path, src: string(src)})
		}
	}

	funcs := make([]*prefcolor.Function, len(sources))
	for i, s := range sources {
		// Inputs in the binary wire format are recognized by their
		// magic; everything else is textual IR.
		var f *prefcolor.Function
		var err error
		if prefcolor.IsBinaryIR([]byte(s.src)) {
			f, err = prefcolor.DecodeFunctionBinary([]byte(s.src))
		} else {
			f, err = prefcolor.ParseFunction(s.src)
		}
		if err != nil {
			return fail(fmt.Errorf("%s: %w", s.name, err))
		}
		if *optimize {
			prefcolor.ToSSA(f)
			prefcolor.OptimizeSSA(f)
			prefcolor.FromSSA(f)
		}
		funcs[i] = f
	}

	if *emitBinary {
		// A single input emits the raw encoding (the /v1/allocate body);
		// several emit a length-prefixed frame stream (the /v1/batch
		// body).
		if len(funcs) == 1 {
			if _, err := stdout.Write(prefcolor.EncodeFunctionBinary(funcs[0])); err != nil {
				return fail(err)
			}
			return 0
		}
		var wire []byte
		for _, f := range funcs {
			wire = prefcolor.AppendFunctionBinaryFrame(wire, f)
		}
		if _, err := stdout.Write(wire); err != nil {
			return fail(err)
		}
		return 0
	}

	m := prefcolor.NewMachine(*k)
	if *explain {
		if len(funcs) > 1 {
			return fail(fmt.Errorf("-explain takes a single function"))
		}
		exp, err := prefcolor.Explain(funcs[0], m)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "; %d live ranges\n", exp.Webs)
		fmt.Fprintln(stdout, "; interference:")
		fmt.Fprintln(stdout, indent(exp.Interference))
		fmt.Fprintln(stdout, "; register preference graph:")
		fmt.Fprintln(stdout, indent(exp.RPG))
		fmt.Fprintln(stdout, "; coloring precedence graph:")
		fmt.Fprintln(stdout, indent(exp.CPG))
		if len(exp.PotentialSpills) > 0 {
			fmt.Fprintf(stdout, "; potential spills: %v\n", exp.PotentialSpills)
		}
		return 0
	}

	if _, err := prefcolor.AllocatorByName(*allocName); err != nil {
		return fail(err)
	}
	newAlloc := func() prefcolor.Allocator {
		a, _ := prefcolor.AllocatorByName(*allocName)
		return a
	}
	opts := prefcolor.Options{CollectTelemetry: *telemetry}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	var traceFile *os.File
	if *tracePath != "" {
		if *tracePath == "-" {
			opts.TraceWriter = stderr
		} else {
			var err error
			traceFile, err = os.Create(*tracePath)
			if err != nil {
				return fail(err)
			}
			opts.TraceWriter = traceFile
		}
	}
	outs, sts, err := prefcolor.AllocateAll(funcs, m, newAlloc, opts)
	if traceFile != nil {
		if cerr := traceFile.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err != nil {
		return fail(err)
	}
	if *memProfile != "" {
		// A forced GC first, so the profile shows live retention rather
		// than garbage awaiting collection.
		runtime.GC()
		pf, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.WriteHeapProfile(pf); err != nil {
			pf.Close()
			return fail(err)
		}
		if err := pf.Close(); err != nil {
			return fail(err)
		}
	}
	for i, out := range outs {
		if len(outs) > 1 {
			fmt.Fprintf(stdout, "; %s\n", sources[i].name)
		}
		fmt.Fprint(stdout, out.String())
		st := sts[i]
		if *stats {
			fmt.Fprintf(stdout, "; allocator=%s rounds=%d moves: %d -> %d (eliminated %d), spill instrs=%d, caller saves=%d, regs used=%d (%d non-volatile)\n",
				st.Allocator, st.Rounds, st.MovesBefore, st.MovesRemaining, st.MovesEliminated,
				st.SpillInstrs(), st.CallerSaveStores+st.CallerSaveLoads, st.UsedRegs, st.UsedNonVolatile)
		}
		if *estimate {
			est := prefcolor.EstimateCycles(out, m)
			fmt.Fprintf(stdout, "; estimate: %.1f cycles, %d paired loads fused, %d missed, %d callee-saved regs\n",
				est.Cycles, est.FusedPairs, est.MissedPairs, est.CalleeSaveRegs)
		}
	}
	if *telemetry {
		if snap := prefcolor.MergeTelemetry(sts); snap != nil {
			fmt.Fprint(stdout, indent(strings.TrimSuffix(snap.Report(), "\n")))
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

type namedSource struct {
	name string
	src  string
}

func indent(s string) string {
	return ";   " + strings.ReplaceAll(s, "\n", "\n;   ")
}
