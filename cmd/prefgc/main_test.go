package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// durations matches Go duration tokens (1.2ms, 53.79µs, 913ns, 0s) so
// the golden comparison can mask the only nondeterministic columns of
// the telemetry report.
var durations = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|us|ms|s)\b`)

// spaceRuns collapses the column padding that shifts with the masked
// durations' widths.
var spaceRuns = regexp.MustCompile(` {2,}`)

func normalize(out string) string {
	return spaceRuns.ReplaceAllString(durations.ReplaceAllString(out, "<dur>"), " ")
}

// golden compares output against testdata/<name>.golden, rewriting the
// file when UPDATE_GOLDEN=1.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestGoldenAllocate(t *testing.T) {
	out, stderr, code := runCLI(t, "", "-stats", "-estimate", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	golden(t, "allocate", out)
}

func TestGoldenTelemetryReport(t *testing.T) {
	out, stderr, code := runCLI(t, "", "-stats", "-telemetry", "testdata/pairs.ir", "testdata/loop.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// Counters are deterministic (batch merge is order-independent);
	// only the timer columns need masking.
	golden(t, "telemetry", normalize(out))
}

func TestGoldenExplain(t *testing.T) {
	out, stderr, code := runCLI(t, "", "-explain", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	golden(t, "explain", out)
}

func TestStdinMatchesFile(t *testing.T) {
	src, err := os.ReadFile("testdata/pairs.ir")
	if err != nil {
		t.Fatal(err)
	}
	fromStdin, _, code := runCLI(t, string(src))
	if code != 0 {
		t.Fatal("stdin run failed")
	}
	fromFile, _, code := runCLI(t, "", "testdata/pairs.ir")
	if code != 0 {
		t.Fatal("file run failed")
	}
	if fromStdin != fromFile {
		t.Error("stdin and file input produce different output")
	}
}

func TestTraceFlagEmitsJSONLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	_, stderr, code := runCLI(t, "", "-trace", path, "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			Func   string `json:"func"`
			Action string `json:"action"`
			Chosen int    `json:"chosen"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", lines, err)
		}
		if ev.Func != "pairs" || ev.Action == "" {
			t.Fatalf("trace line %d malformed: %s", lines, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
}

// TestGoldenTimeout pins the error path of -timeout: a deadline that
// has already lapsed must abort the batch at the first phase boundary
// with exit 1, and the error must name the function, the allocator,
// and context.DeadlineExceeded.
func TestGoldenTimeout(t *testing.T) {
	stdout, stderr, code := runCLI(t, "", "-timeout", "1ns", "testdata/pairs.ir")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("timed-out run still produced output:\n%s", stdout)
	}
	golden(t, "timeout", stderr)
}

func TestTimeoutGenerousDeadlineSucceeds(t *testing.T) {
	withTimeout, stderr, code := runCLI(t, "", "-timeout", "1m", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	without, _, code := runCLI(t, "", "testdata/pairs.ir")
	if code != 0 {
		t.Fatal("plain run failed")
	}
	if withTimeout != without {
		t.Error("a generous -timeout changed the output")
	}
}

func TestBadAllocatorFails(t *testing.T) {
	_, stderr, code := runCLI(t, "", "-alloc", "nonsense", "testdata/pairs.ir")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "nonsense") {
		t.Errorf("stderr does not name the bad allocator: %s", stderr)
	}
}

func TestBadFlagFails(t *testing.T) {
	_, _, code := runCLI(t, "", "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestMemProfileFlagWritesParseableProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	_, stderr, code := runCLI(t, "", "-memprofile", path, "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file is empty")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	cmd := exec.Command(goTool, "tool", "pprof", "-top", path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "flat") {
		t.Errorf("pprof -top output looks wrong:\n%s", out)
	}
}

// TestEmitBinaryRoundTrip: -emit-binary output fed back as input must
// allocate identically to the textual original.
func TestEmitBinaryRoundTrip(t *testing.T) {
	wire, stderr, code := runCLI(t, "", "-emit-binary", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("emit exit %d, stderr: %s", code, stderr)
	}
	if len(wire) == 0 || !strings.HasPrefix(wire, "PGIR") {
		t.Fatalf("emitted %d bytes without the binary magic", len(wire))
	}

	fromBin, stderr, code := runCLI(t, wire, "-stats")
	if code != 0 {
		t.Fatalf("binary-input exit %d, stderr: %s", code, stderr)
	}
	fromText, stderr, code := runCLI(t, "", "-stats", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("text exit %d, stderr: %s", code, stderr)
	}
	if fromBin != fromText {
		t.Errorf("binary input allocates differently:\n--- binary ---\n%s\n--- text ---\n%s", fromBin, fromText)
	}
}

// Several inputs emit a frame stream, not a bare concatenation.
func TestEmitBinaryFrames(t *testing.T) {
	wire, stderr, code := runCLI(t, "", "-emit-binary", "testdata/pairs.ir", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// A frame stream starts with a uvarint length, not the magic.
	if strings.HasPrefix(wire, "PGIR") {
		t.Error("multi-input emit produced a bare encoding, want frames")
	}
	if !strings.Contains(wire, "PGIR") {
		t.Error("frame stream carries no encoded function")
	}
}
