// Command figures regenerates the quantitative figures of the paper's
// evaluation (Figures 9, 10, and 11) over the synthetic SPECjvm98
// workloads and prints them as aligned text tables or CSV.
//
// Usage:
//
//	figures [-fig all|9a|9b|9c|9d|10a|10b|10c|11] [-csv] [-benchmarks jess,db]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefcolor"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 9a, 9b, 9c, 9d, 10a, 10b, 10c, 11, ablations")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all nine)")
	flag.Parse()

	var subset []string
	if *benchList != "" {
		subset = strings.Split(*benchList, ",")
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("9a") || want("9b") {
		rows, err := prefcolor.Figure9(16, subset...)
		check(err)
		if want("9a") {
			printFig9(rows, "Figure 9(a): moves eliminated by coalescing vs. Chaitin, 16 registers", true, *csv)
		}
		if want("9b") {
			printFig9(rows, "Figure 9(b): spill instructions generated vs. Chaitin, 16 registers", false, *csv)
		}
	}
	if want("9c") || want("9d") {
		rows, err := prefcolor.Figure9(32, subset...)
		check(err)
		if want("9c") {
			printFig9(rows, "Figure 9(c): moves eliminated by coalescing vs. Chaitin, 32 registers", true, *csv)
		}
		if want("9d") {
			printFig9(rows, "Figure 9(d): spill instructions generated vs. Chaitin, 32 registers", false, *csv)
		}
	}
	for _, panel := range []struct {
		name string
		k    int
	}{{"10a", 16}, {"10b", 24}, {"10c", 32}} {
		if !want(panel.name) {
			continue
		}
		rows, err := prefcolor.Figure10(panel.k, subset...)
		check(err)
		printFig10(rows, fmt.Sprintf("Figure 10(%c): estimated execution cost, %d registers", panel.name[2], panel.k), *csv)
	}
	if want("11") {
		rows, err := prefcolor.Figure11(subset...)
		check(err)
		printFig11(rows, "Figure 11: cost relative to full preferences, 24 registers", *csv)
	}
	if *fig == "ablations" {
		rows, err := prefcolor.Ablations(16, subset...)
		check(err)
		printAblations(rows, *csv)
	}
}

func printAblations(rows []prefcolor.AblationRow, csv bool) {
	if csv {
		fmt.Println("# Ablations: full-preference design choices, 16 registers")
		fmt.Println("variant,cycles,moves_left,spill_instrs,fused,missed")
		for _, r := range rows {
			fmt.Printf("%s,%.0f,%d,%d,%d,%d\n", r.Label, r.Cycles, r.MovesRemaining, r.SpillInstrs, r.FusedPairs, r.MissedPairs)
		}
		return
	}
	fmt.Println("Ablations: full-preference design choices, 16 registers")
	fmt.Printf("  %-20s %14s %12s %12s %8s %8s\n", "variant", "cycles", "moves left", "spill", "fused", "missed")
	for _, r := range rows {
		fmt.Printf("  %-20s %14.0f %12d %12d %8d %8d\n", r.Label, r.Cycles, r.MovesRemaining, r.SpillInstrs, r.FusedPairs, r.MissedPairs)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

var fig9Series = []string{"pref-coalesce", "optimistic", "briggs-aggressive"}
var fig10Series = []string{"pref-coalesce", "optimistic", "pref-full"}
var fig11Series = []string{"pref-coalesce", "optimistic", "briggs-aggressive", "callcost", "pref-full"}

func printFig9(rows []prefcolor.Fig9Row, title string, moves, csv bool) {
	printTable(title, fig9Series, len(rows), csv,
		func(i int) string { return rows[i].Benchmark },
		func(i int, s string) float64 {
			if moves {
				return rows[i].MoveRatio[s]
			}
			return rows[i].SpillRatio[s]
		})
}

func printFig10(rows []prefcolor.Fig10Row, title string, csv bool) {
	printTable(title, fig10Series, len(rows), csv,
		func(i int) string { return rows[i].Benchmark },
		func(i int, s string) float64 { return rows[i].Cycles[s] })
}

func printFig11(rows []prefcolor.Fig11Row, title string, csv bool) {
	printTable(title, fig11Series, len(rows), csv,
		func(i int) string { return rows[i].Benchmark },
		func(i int, s string) float64 { return rows[i].Relative[s] })
}

func printTable(title string, series []string, n int, csv bool, name func(int) string, value func(int, string) float64) {
	if csv {
		fmt.Printf("# %s\n", title)
		fmt.Printf("benchmark,%s\n", strings.Join(series, ","))
		for i := 0; i < n; i++ {
			fmt.Print(name(i))
			for _, s := range series {
				fmt.Printf(",%.4f", value(i, s))
			}
			fmt.Println()
		}
		fmt.Println()
		return
	}
	fmt.Println(title)
	fmt.Printf("  %-14s", "benchmark")
	for _, s := range series {
		fmt.Printf("%20s", s)
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("  %-14s", name(i))
		for _, s := range series {
			fmt.Printf("%20.4f", value(i, s))
		}
		fmt.Println()
	}
	fmt.Println()
}
