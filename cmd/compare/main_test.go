package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// golden compares output against testdata/<name>.golden, rewriting the
// file when UPDATE_GOLDEN=1.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

// TestGoldenCompare pins the full comparison table — every allocator
// configuration on the pairs function — so an allocator regression
// shows up as a diff in one place.
func TestGoldenCompare(t *testing.T) {
	out, stderr, code := runCLI(t, "", "testdata/pairs.ir")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	golden(t, "compare", out)
}

func TestStdinMatchesFile(t *testing.T) {
	src, err := os.ReadFile("testdata/pairs.ir")
	if err != nil {
		t.Fatal(err)
	}
	fromStdin, _, code := runCLI(t, string(src))
	if code != 0 {
		t.Fatal("stdin run failed")
	}
	fromFile, _, code := runCLI(t, "", "testdata/pairs.ir")
	if code != 0 {
		t.Fatal("file run failed")
	}
	if fromStdin != fromFile {
		t.Error("stdin and file input produce different output")
	}
}

func TestBadMachineFails(t *testing.T) {
	_, stderr, code := runCLI(t, "", "-machine", "vax", "testdata/pairs.ir")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "vax") {
		t.Errorf("stderr does not name the bad machine: %s", stderr)
	}
}

func TestTooManyFilesFails(t *testing.T) {
	_, _, code := runCLI(t, "", "testdata/pairs.ir", "testdata/pairs.ir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlagFails(t *testing.T) {
	_, _, code := runCLI(t, "", "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
