// Command compare runs every allocator configuration on one function
// and prints a side-by-side table of coalescing, spilling,
// caller-save, irregular-register, and estimated-cost results.
//
// Usage:
//
//	compare [-k 16] [-machine ia64|x86|s390] [file]
//
// With no file the function is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prefcolor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the golden tests can drive
// the binary in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 16, "number of machine registers")
	machine := fs.String("machine", "ia64", "machine model: ia64, x86, s390")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "compare:", err)
		return 1
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(stderr, "compare: at most one input file")
		return 2
	}
	if err != nil {
		return fail(err)
	}

	var m *prefcolor.Machine
	switch *machine {
	case "ia64":
		m = prefcolor.NewMachine(*k)
	case "x86":
		m = prefcolor.NewX86Machine(*k)
	case "s390":
		m = prefcolor.NewS390Machine(*k)
	default:
		return fail(fmt.Errorf("unknown machine %q", *machine))
	}

	fmt.Fprintf(stdout, "machine: %s (%d registers)\n\n", m.Name, m.NumRegs)
	fmt.Fprintf(stdout, "%-22s %7s %7s %7s %7s %7s %7s %10s\n",
		"allocator", "moves", "left", "spills", "saves", "fused", "limviol", "cycles")
	for _, name := range prefcolor.AllocatorNames() {
		f, err := prefcolor.ParseFunction(string(src))
		if err != nil {
			return fail(err)
		}
		alloc, err := prefcolor.AllocatorByName(name)
		if err != nil {
			return fail(err)
		}
		out, st, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			fmt.Fprintf(stdout, "%-22s failed: %v\n", name, err)
			continue
		}
		est := prefcolor.EstimateCycles(out, m)
		fmt.Fprintf(stdout, "%-22s %7d %7d %7d %7d %7d %7d %10.0f\n",
			name, st.MovesBefore, st.MovesRemaining, st.SpillInstrs(),
			st.CallerSaveStores+st.CallerSaveLoads, est.FusedPairs,
			est.LimitViolations, est.Cycles)
	}
	return 0
}
