// Command compare runs every allocator configuration on one function
// and prints a side-by-side table of coalescing, spilling,
// caller-save, irregular-register, and estimated-cost results.
//
// Usage:
//
//	compare [-k 16] [-machine ia64|x86|s390] [file]
//
// With no file the function is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prefcolor"
)

func main() {
	k := flag.Int("k", 16, "number of machine registers")
	machine := flag.String("machine", "ia64", "machine model: ia64, x86, s390")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "compare: at most one input file")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var m *prefcolor.Machine
	switch *machine {
	case "ia64":
		m = prefcolor.NewMachine(*k)
	case "x86":
		m = prefcolor.NewX86Machine(*k)
	case "s390":
		m = prefcolor.NewS390Machine(*k)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}

	fmt.Printf("machine: %s (%d registers)\n\n", m.Name, m.NumRegs)
	fmt.Printf("%-22s %7s %7s %7s %7s %7s %7s %10s\n",
		"allocator", "moves", "left", "spills", "saves", "fused", "limviol", "cycles")
	for _, name := range prefcolor.AllocatorNames() {
		f, err := prefcolor.ParseFunction(string(src))
		if err != nil {
			fatal(err)
		}
		alloc, err := prefcolor.AllocatorByName(name)
		if err != nil {
			fatal(err)
		}
		out, st, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			fmt.Printf("%-22s failed: %v\n", name, err)
			continue
		}
		est := prefcolor.EstimateCycles(out, m)
		fmt.Printf("%-22s %7d %7d %7d %7d %7d %7d %10.0f\n",
			name, st.MovesBefore, st.MovesRemaining, st.SpillInstrs(),
			st.CallerSaveStores+st.CallerSaveLoads, est.FusedPairs,
			est.LimitViolations, est.Cycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
