// Command prefgcd is the allocation daemon: it serves the
// preference-directed allocator (and every baseline configuration)
// over HTTP/JSON with a bounded admission queue, a single-flight LRU
// result cache, per-request deadlines, Prometheus metrics, and pprof.
//
// Serve mode (the default):
//
//	prefgcd [-addr localhost:8377] [-workers 4] [-queue 64] [-cache 1024]
//	        [-default-timeout 30s] [-max-timeout 2m]
//
// The daemon drains gracefully on SIGINT/SIGTERM: admission stops,
// queued allocations finish, then the process exits.
//
// Load mode (-load) drives sustained concurrent traffic against a
// running daemon from the synthetic workload corpora and prints a
// throughput/latency/cache report; -out writes the benchmark record
// (BENCH_PR3.json format):
//
//	prefgcd -load -addr http://localhost:8377 -duration 5s -concurrency 8 \
//	        -corpus compress,large -out BENCH_PR3.json
//
// Load mode exits non-zero if any request failed hard or any two
// responses for the same function disagreed, so it doubles as a CI
// smoke check.
//
// Cluster mode (-cluster) serves a consistent-hashing router at -addr
// over -replicas in-process shards, so each shard's LRU stays disjoint
// and hot; -router instead points the router at already-running
// daemons:
//
//	prefgcd -cluster -replicas 3 -addr localhost:8400
//	prefgcd -router r0=localhost:8401,r1=localhost:8402 -addr localhost:8400
//
// Sim mode (-sim) runs one deterministic fault-injection round —
// scripted kill/drain/resurrect against a seeded cluster plus a
// single-replica baseline — and writes the benchmark record
// (BENCH_PR7.json format); it exits non-zero on any invariant
// violation and prints the reproducer line:
//
//	prefgcd -sim -seed 1 -replicas 3 -requests 600 -corpus all -pr 7 -out BENCH_PR7.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/server"
	"prefcolor/internal/server/loadgen"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its edges injected so tests can drive the binary
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prefgcd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	// Serve-mode flags.
	addr := fs.String("addr", "localhost:8377", "serve: listen address; load: daemon base URL")
	workers := fs.Int("workers", 0, "allocation worker pool size (0 = 4)")
	queueSize := fs.Int("queue", 0, "admission queue bound (0 = 64)")
	cacheEntries := fs.Int("cache", 0, "result cache entries (0 = 1024, negative disables)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-request deadline when none given (0 = 30s)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on requested deadlines (0 = 2m)")
	tier := fs.Bool("tier", false, "serve: answer pref-full requests with the linear-scan fast tier and upgrade in the background; load: drive and verify a tier-mode daemon")
	upgradeQueue := fs.Int("upgrade-queue", 0, "serve: tier upgrade queue bound (0 = 256)")

	// Cluster-mode flags.
	clusterMode := fs.Bool("cluster", false, "serve a consistent-hashing router over in-process replicas")
	replicas := fs.Int("replicas", 3, "cluster/sim: shard count")
	router := fs.String("router", "", "serve a router over external replicas: comma list of id=url")

	// Sim-mode flags.
	simMode := fs.Bool("sim", false, "run one deterministic cluster fault-injection round and exit")
	schedule := fs.String("schedule", "", "sim: explicit fault schedule (e.g. kill@120:1,resurrect@200:1; default derives from -seed)")
	events := fs.Int("events", 0, "sim: fault events in the derived schedule (0 = 4)")

	// Load-mode flags.
	load := fs.Bool("load", false, "drive load against a running daemon instead of serving")
	duration := fs.Duration("duration", 5*time.Second, "load: run duration")
	concurrency := fs.Int("concurrency", 8, "load: client goroutines")
	corpus := fs.String("corpus", "compress,large", "load: workload profiles (comma list, \"all\", or \"large\")")
	allocator := fs.String("alloc", "pref-full", "load: allocator name sent with every request")
	k := fs.Int("k", 16, "load: machine register count")
	machine := fs.String("machine", "ia64", "load: machine model (ia64, x86, s390)")
	requests := fs.Int("requests", 0, "load: stop after this many requests (0 = duration only)")
	seed := fs.Int64("seed", 1, "load: corpus-picking RNG seed")
	cold := fs.Bool("cold", false, "load: send no_cache on every request (honest cold-path latency)")
	binary := fs.Bool("binary", false, "load: post the binary IR wire format instead of JSON/text")
	pr := fs.Int("pr", 3, "load: PR number stamped into the benchmark record")
	title := fs.String("title", "", "load: benchmark record title (default per -pr)")
	out := fs.String("out", "", "load: write the benchmark record (BENCH_PR3.json format) to this file")

	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *simMode {
		return runSim(stdout, stderr, simCLIConfig{
			seed: *seed, replicas: *replicas, requests: *requests,
			events: *events, schedule: *schedule, corpus: *corpus,
			cache: *cacheEntries, pr: *pr, title: *title, out: *out,
		})
	}
	if *clusterMode || *router != "" {
		return serveCluster(stdout, stderr, clusterConfig{
			addr: *addr, replicas: *replicas, router: *router,
			srv: server.Config{
				Workers:        *workers,
				QueueSize:      *queueSize,
				CacheEntries:   *cacheEntries,
				DefaultTimeout: *defaultTimeout,
				MaxTimeout:     *maxTimeout,
			},
		})
	}
	if *load {
		return runLoad(stdout, stderr, loadConfig{
			addr: *addr, duration: *duration, concurrency: *concurrency,
			corpus: *corpus, allocator: *allocator, k: *k, machine: *machine,
			requests: *requests, seed: *seed, cold: *cold, binary: *binary,
			tier: *tier, pr: *pr, title: *title, out: *out,
		})
	}
	return serve(stdout, stderr, *addr, server.Config{
		Workers:          *workers,
		QueueSize:        *queueSize,
		CacheEntries:     *cacheEntries,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		Tier:             *tier,
		UpgradeQueueSize: *upgradeQueue,
	})
}

func serve(stdout, stderr io.Writer, addr string, cfg server.Config) int {
	s := server.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "prefgcd: serving on %s\n", addr)

	select {
	case err := <-errCh:
		// Listen failed before any signal.
		s.Close()
		fmt.Fprintln(stderr, "prefgcd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight
	// handlers finish, then drain the queued allocations.
	fmt.Fprintln(stdout, "prefgcd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "prefgcd: shutdown:", err)
	}
	s.Close()
	fmt.Fprintln(stdout, "prefgcd: drained")
	return 0
}

type loadConfig struct {
	addr        string
	duration    time.Duration
	concurrency int
	corpus      string
	allocator   string
	k           int
	machine     string
	requests    int
	seed        int64
	cold        bool
	binary      bool
	tier        bool
	pr          int
	title       string
	out         string
}

// allocSpeedup is the local allocator microbenchmark stamped into
// tier-mode benchmark records: one large-workload sweep through the
// linear-scan fast path versus one through the pref-full driver, on
// the same machine model the load run targets.
type allocSpeedup struct {
	FastMSPerSweep float64 `json:"fast_ms_per_sweep"`
	FullMSPerSweep float64 `json:"full_ms_per_sweep"`
	Speedup        float64 `json:"speedup"`
}

func measureAllocSpeedup(m *target.Machine) (*allocSpeedup, error) {
	funcs := workload.Generate(workload.Large(), m)
	sweepFast := func(ws *linearscan.Workspace) error {
		for _, f := range funcs {
			if _, _, err := linearscan.Run(f, m, linearscan.RunOptions{Workspace: ws}); err != nil {
				return err
			}
		}
		return nil
	}
	ws := linearscan.NewFastWorkspace()
	if err := sweepFast(ws); err != nil { // warm the workspace
		return nil, err
	}
	const iters = 5
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := sweepFast(ws); err != nil {
			return nil, err
		}
	}
	fast := float64(time.Since(t0).Microseconds()) / 1000 / iters

	rws := regalloc.NewWorkspace()
	t0 = time.Now()
	for _, f := range funcs {
		alloc, err := bench.NewAllocator("pref-full")
		if err != nil {
			return nil, err
		}
		if _, _, err := regalloc.Run(f, m, alloc, regalloc.Options{Workspace: rws}); err != nil {
			return nil, err
		}
	}
	full := float64(time.Since(t0).Microseconds()) / 1000
	sp := &allocSpeedup{FastMSPerSweep: fast, FullMSPerSweep: full}
	if fast > 0 {
		sp.Speedup = full / fast
	}
	return sp, nil
}

// benchRecord is the BENCH_PR3.json schema: environment, load
// configuration, and the loadgen report.
type benchRecord struct {
	PR          int    `json:"pr"`
	Title       string `json:"title"`
	Environment struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus_available"`
		CPU    string `json:"cpu,omitempty"`
	} `json:"environment"`
	Config struct {
		Server      string  `json:"server"`
		DurationSec float64 `json:"duration_sec"`
		Concurrency int     `json:"concurrency"`
		Corpus      string  `json:"corpus"`
		Allocator   string  `json:"allocator"`
		K           int     `json:"k"`
		Machine     string  `json:"machine"`
		Seed        int64   `json:"seed"`
		Cold        bool    `json:"cold,omitempty"`
		Binary      bool    `json:"binary,omitempty"`
		Tier        bool    `json:"tier,omitempty"`
	} `json:"config"`
	Allocator *allocSpeedup   `json:"allocator_speedup,omitempty"`
	Report    *loadgen.Report `json:"report"`
}

func runLoad(stdout, stderr io.Writer, cfg loadConfig) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "prefgcd:", err)
		return 1
	}
	var m *target.Machine
	switch cfg.machine {
	case "ia64":
		m = target.UsageModel(cfg.k)
	case "x86":
		m = target.X86Like(cfg.k)
	case "s390":
		m = target.S390Like(cfg.k)
	default:
		return fail(fmt.Errorf("unknown machine %q (want ia64, x86, or s390)", cfg.machine))
	}
	items, err := loadgen.CorpusFromProfiles(cfg.corpus, m)
	if err != nil {
		return fail(err)
	}
	base := cfg.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:     base,
		Corpus:      items,
		Concurrency: cfg.concurrency,
		Duration:    cfg.duration,
		MaxRequests: cfg.requests,
		Allocator:   cfg.allocator,
		Machine:     cfg.machine,
		K:           cfg.k,
		Seed:        cfg.seed,
		Cold:        cfg.cold,
		Binary:      cfg.binary,
		Tier:        cfg.tier,
	})
	if err != nil {
		return fail(err)
	}

	title := cfg.title
	if title == "" {
		title = "Allocation-as-a-service: prefgcd daemon under sustained load"
	}
	rec := &benchRecord{PR: cfg.pr, Title: title, Report: rep}
	rec.Environment.GOOS = runtime.GOOS
	rec.Environment.GOARCH = runtime.GOARCH
	rec.Environment.CPUs = runtime.NumCPU()
	rec.Environment.CPU = cpuModel()
	rec.Config.Server = base
	rec.Config.DurationSec = cfg.duration.Seconds()
	rec.Config.Concurrency = cfg.concurrency
	rec.Config.Corpus = cfg.corpus
	rec.Config.Allocator = cfg.allocator
	rec.Config.K = cfg.k
	rec.Config.Machine = cfg.machine
	rec.Config.Seed = cfg.seed
	rec.Config.Cold = cfg.cold
	rec.Config.Binary = cfg.binary
	rec.Config.Tier = cfg.tier
	if cfg.tier {
		sp, err := measureAllocSpeedup(m)
		if err != nil {
			return fail(err)
		}
		rec.Allocator = sp
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fail(err)
	}
	buf = append(buf, '\n')
	fmt.Fprintf(stdout, "%s", buf)
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return fail(err)
		}
	}
	if rep.Errors > 0 {
		return fail(fmt.Errorf("%d hard errors during load", rep.Errors))
	}
	if rep.DigestMismatches > 0 {
		return fail(fmt.Errorf("%d digest mismatches: the daemon served diverging allocations", rep.DigestMismatches))
	}
	if rep.OK == 0 {
		return fail(errors.New("no successful requests"))
	}
	if cfg.tier {
		// A warm daemon may serve everything full-tier (all upgrades
		// already landed); only a daemon that never upgrades — or one
		// whose upgrades diverge from the oracle — fails.
		if rep.Tier == nil || rep.Tier.FullServed == 0 {
			return fail(errors.New("tier mode: no full-tier responses; upgrades never landed"))
		}
		if rep.Tier.OracleMismatches > 0 {
			return fail(fmt.Errorf("tier mode: %d full-tier digests diverged from the pref-full oracle", rep.Tier.OracleMismatches))
		}
	}
	return 0
}

// cpuModel reads the CPU model name, best effort.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
