package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefcolor/internal/server"
)

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestLoadModeBadMachine(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-load", "-machine", "vax"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown machine") {
		t.Errorf("stderr %q", errb.String())
	}
}

func TestLoadModeBadCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-load", "-corpus", "nosuch"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}

func TestParseReplicaSpec(t *testing.T) {
	reps, err := parseReplicaSpec("r0=localhost:8401, r1=http://host:8402")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].BaseURL != "http://localhost:8401" ||
		reps[1].BaseURL != "http://host:8402" || reps[1].ID != "r1" {
		t.Errorf("parsed %+v", reps)
	}
	for _, bad := range []string{"", "no-equals", ","} {
		if _, err := parseReplicaSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestClusterModeBadRouterSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-router", "garbage"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
}

func TestSimModeBadSchedule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sim", "-schedule", "explode@9:0"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown action") {
		t.Errorf("stderr %q", errb.String())
	}
}

// TestSimModeEndToEnd runs a small fault-free simulation round through
// the CLI and checks the benchmark record it emits.
func TestSimModeEndToEnd(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-sim", "-seed", "1", "-requests", "60", "-corpus", "compress",
		"-cache", "4", "-schedule", "none", "-pr", "7", "-out", outPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec simRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.PR != 7 {
		t.Errorf("pr = %d, want 7", rec.PR)
	}
	if rec.Result == nil || rec.Result.OK != 60 {
		t.Fatalf("result = %+v, want 60 ok", rec.Result)
	}
	if rec.Result.BaselineRPS <= 0 || rec.Result.Speedup <= 0 {
		t.Errorf("baseline %.1f speedup %.2f — baseline phase missing",
			rec.Result.BaselineRPS, rec.Result.Speedup)
	}
	if len(rec.Result.Violations) != 0 {
		t.Errorf("violations: %v", rec.Result.Violations)
	}
	if !bytes.Equal(bytes.TrimSpace(out.Bytes()), bytes.TrimSpace(data)) {
		t.Error("stdout record differs from -out file")
	}
}

// TestLoadModeEndToEnd runs the load mode in-process against a live
// server and checks the exit code, the report on stdout, and the
// benchmark record written by -out.
func TestLoadModeEndToEnd(t *testing.T) {
	s := server.New(server.Config{Workers: 2, QueueSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-load", "-addr", ts.URL, "-corpus", "compress",
		"-requests", "30", "-duration", "30s", "-concurrency", "2",
		"-out", outPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.PR != 3 {
		t.Errorf("pr = %d, want 3", rec.PR)
	}
	if rec.Report == nil || rec.Report.Requests != 30 {
		t.Errorf("report requests = %+v, want 30", rec.Report)
	}
	if rec.Report.OK == 0 || rec.Report.Errors != 0 {
		t.Errorf("ok=%d errors=%d", rec.Report.OK, rec.Report.Errors)
	}
	if !bytes.Equal(bytes.TrimSpace(out.Bytes()), bytes.TrimSpace(data)) {
		t.Error("stdout report differs from -out file")
	}
}
