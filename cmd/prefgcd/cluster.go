package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"prefcolor/internal/cluster"
	"prefcolor/internal/cluster/sim"
	"prefcolor/internal/server"
)

// clusterConfig is the -cluster serve mode: a consistent-hashing
// router at -addr over either N in-process replicas or an external
// replica set from -router.
type clusterConfig struct {
	addr     string
	replicas int    // in-process replica count when routerSpec is empty
	router   string // "id=url,id=url" external replica set
	srv      server.Config
}

// parseReplicaSpec reads the -router value: comma-separated id=url
// pairs naming already-running prefgcd daemons.
func parseReplicaSpec(spec string) ([]cluster.ReplicaConfig, error) {
	var out []cluster.ReplicaConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("replica %q: want id=url", part)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, cluster.ReplicaConfig{ID: id, BaseURL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas in %q", spec)
	}
	return out, nil
}

// serveCluster runs the router (and, without -router, its in-process
// replica fleet) until SIGINT/SIGTERM, then drains: the router stops
// probing, each replica refuses new admissions while queued work
// finishes.
func serveCluster(stdout, stderr io.Writer, cfg clusterConfig) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "prefgcd:", err)
		return 1
	}

	var (
		replicas []cluster.ReplicaConfig
		local    []*server.Server
	)
	if cfg.router != "" {
		var err error
		if replicas, err = parseReplicaSpec(cfg.router); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "prefgcd: routing over %d external replicas\n", len(replicas))
	} else {
		if cfg.replicas <= 0 {
			cfg.replicas = 3
		}
		for i := 0; i < cfg.replicas; i++ {
			scfg := cfg.srv
			scfg.ReplicaID = fmt.Sprintf("r%d", i)
			// In-process replicas sit behind our own router on loopback,
			// so the router-resolved X-Prefgcd-Key is trustworthy and the
			// replica's cache-hit path stays parse-free.
			scfg.TrustKeyHeader = true
			s := server.New(scfg)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(err)
			}
			hs := &http.Server{Handler: s.Handler()}
			go hs.Serve(ln)
			defer hs.Close()
			local = append(local, s)
			replicas = append(replicas, cluster.ReplicaConfig{
				ID:      scfg.ReplicaID,
				BaseURL: "http://" + ln.Addr().String(),
			})
			fmt.Fprintf(stdout, "prefgcd: replica %s on %s\n", scfg.ReplicaID, ln.Addr())
		}
	}

	rt, err := cluster.New(cluster.Config{Replicas: replicas})
	if err != nil {
		return fail(err)
	}
	front := &http.Server{Addr: cfg.addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- front.ListenAndServe() }()
	fmt.Fprintf(stdout, "prefgcd: router serving on %s (%d shards)\n", cfg.addr, len(replicas))

	select {
	case err := <-errCh:
		rt.Close()
		for _, s := range local {
			s.Close()
		}
		return fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "prefgcd: draining cluster")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := front.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "prefgcd: shutdown:", err)
	}
	rt.Close()
	for _, s := range local {
		s.Close()
	}
	fmt.Fprintln(stdout, "prefgcd: drained")
	return 0
}

// simCLIConfig is the -sim mode: one deterministic fault-injection
// round plus the single-replica baseline, reported as a benchmark
// record (BENCH_PR7.json format).
type simCLIConfig struct {
	seed     int64
	replicas int
	requests int
	events   int
	schedule string
	corpus   string
	cache    int
	pr       int
	title    string
	out      string
}

// simRecord is the BENCH_PR7.json schema: environment, simulation
// configuration, and the full invariant-checked result, including the
// single-replica baseline and the cluster's aggregate speedup.
type simRecord struct {
	PR          int    `json:"pr"`
	Title       string `json:"title"`
	Environment struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus_available"`
		CPU    string `json:"cpu,omitempty"`
	} `json:"environment"`
	Config struct {
		Replicas int    `json:"replicas"`
		Seed     int64  `json:"seed"`
		Schedule string `json:"schedule"`
		Corpus   string `json:"corpus"`
		Requests int    `json:"requests"`
	} `json:"config"`
	Result *sim.Result `json:"result"`
}

func runSim(stdout, stderr io.Writer, cli simCLIConfig) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "prefgcd:", err)
		return 1
	}
	cfg := sim.Config{
		Seed:         cli.seed,
		Replicas:     cli.replicas,
		Requests:     cli.requests,
		Events:       cli.events,
		Corpus:       cli.corpus,
		CacheEntries: cli.cache,
		Baseline:     true,
	}
	if cli.schedule != "" {
		sched, err := sim.ParseSchedule(cli.schedule)
		if err != nil {
			return fail(err)
		}
		cfg.Schedule = sched
		if cfg.Schedule == nil {
			cfg.Schedule = sim.Schedule{} // explicit "none": fault-free
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sim.Run(ctx, cfg)
	if err != nil {
		return fail(err)
	}

	title := cli.title
	if title == "" {
		title = "Sharded allocation cluster under deterministic fault injection"
	}
	rec := &simRecord{PR: cli.pr, Title: title, Result: res}
	rec.Environment.GOOS = runtime.GOOS
	rec.Environment.GOARCH = runtime.GOARCH
	rec.Environment.CPUs = runtime.NumCPU()
	rec.Environment.CPU = cpuModel()
	rec.Config.Replicas = res.Replicas
	rec.Config.Seed = res.Seed
	rec.Config.Schedule = res.Schedule
	rec.Config.Corpus = res.Corpus
	rec.Config.Requests = res.Requests

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fail(err)
	}
	buf = append(buf, '\n')
	fmt.Fprintf(stdout, "%s", buf)
	if cli.out != "" {
		if err := os.WriteFile(cli.out, buf, 0o644); err != nil {
			return fail(err)
		}
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(stderr, "prefgcd: violation:", v)
		}
		fmt.Fprintln(stderr, "prefgcd: reproduce with:", res.Reproducer)
		return 1
	}
	return 0
}
