// Irregular registers: the Figure 5(a) pathology. Two hot paired-load
// destinations are also copied into same-parity argument registers.
// Preference-blind coalescing gladly binds them to r0 and r2 — losing
// the paired load on every loop iteration to save two cold copies.
// The preference-directed allocator weighs both preferences with the
// cost model and keeps the pair.
package main

import (
	"fmt"
	"log"

	"prefcolor"
)

const fig5a = `
func fig5a(v0) {
b0:
  v3 = loadimm 0
  v4 = loadimm 100
  jump b1
b1:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v3, v1
  v3 = add v3, v2
  v4 = addimm v4, -1
  branch v4, b1, b2
b2:
  r0 = move v1
  r2 = move v2
  call @g r0, r2
  ret v3
}
`

func main() {
	m := prefcolor.NewMachine(16)
	for _, alloc := range []prefcolor.Allocator{
		prefcolor.Briggs(),
		prefcolor.OptimisticCoalescing(),
		prefcolor.PreferenceDirected(),
	} {
		f, err := prefcolor.ParseFunction(fig5a)
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			log.Fatal(err)
		}
		est := prefcolor.EstimateCycles(out, m)
		fmt.Printf("%-20s moves left: %d, paired loads fused: %d missed: %d, cycles: %.0f\n",
			stats.Allocator, stats.MovesRemaining, est.FusedPairs, est.MissedPairs, est.Cycles)
	}
	fmt.Println()
	fmt.Println("The pair sits in a loop (the cost model weighs loop code 10x);")
	fmt.Println("fusing it saves ~20 cycles, keeping the two cold copies saves ~2.")
	fmt.Println("Preference-blind coalescing takes the 2 and loses the 20.")
}
