// SSA copies: the motivation of the paper's introduction. Programs
// leaving SSA form carry a crowd of φ-elimination copies; a register
// allocator must make them vanish by assigning both ends one
// register. This example builds a loop, converts it into and out of
// SSA with this repository's own passes, and shows each allocator's
// coalescing result.
package main

import (
	"fmt"
	"log"

	"prefcolor"
)

// A three-variable loop: after SSA construction the header gets
// φ-functions for the accumulator, the counter, and the running
// square; destruction lowers them to copies in the preheader and the
// latch.
const loopSrc = `
func squares(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  v3 = loadimm 1
  jump b1
b1:
  v4 = cmp v2, v0
  branch v4, b2, b3
b2:
  v5 = mul v2, v2
  v1 = add v1, v5
  v3 = add v3, v5
  v6 = loadimm 1
  v2 = add v2, v6
  jump b1
b3:
  v7 = add v1, v3
  ret v7
}
`

func main() {
	m := prefcolor.NewMachine(8)

	// Show the copy crowd SSA destruction creates.
	probe, err := prefcolor.ParseFunction(loopSrc)
	if err != nil {
		log.Fatal(err)
	}
	prefcolor.ToSSA(probe)
	prefcolor.FromSSA(probe)
	fmt.Println("after SSA construction and destruction:")
	fmt.Println(probe.String())

	fmt.Printf("%-22s %8s %8s %8s\n", "allocator", "copies", "left", "spills")
	for _, name := range prefcolor.AllocatorNames() {
		f, err := prefcolor.ParseFunction(loopSrc)
		if err != nil {
			log.Fatal(err)
		}
		prefcolor.ToSSA(f)
		prefcolor.FromSSA(f)
		alloc, err := prefcolor.AllocatorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, stats, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			log.Fatal(err)
		}

		// Verify the allocation preserved behavior.
		in, err := prefcolor.Interpret(f, m, map[prefcolor.Reg]int64{f.Params[0]: 6})
		if err != nil {
			log.Fatal(err)
		}
		got, err := prefcolor.Interpret(out, m, map[prefcolor.Reg]int64{out.Params[0]: 6})
		if err != nil {
			log.Fatal(err)
		}
		if in.Ret != got.Ret {
			log.Fatalf("%s changed the program: %d vs %d", name, in.Ret, got.Ret)
		}
		fmt.Printf("%-22s %8d %8d %8d\n", name, stats.MovesBefore, stats.MovesRemaining, stats.SpillInstrs())
	}
	fmt.Println()
	fmt.Println("every allocator verified against the reference interpreter: sum of")
	fmt.Println("squares(6) computed identically before and after allocation.")
}
