// Quickstart: allocate the paper's Figure 7 example with the
// preference-directed allocator and watch every preference resolve —
// the copies coalesce away, the paired load lands on legal registers,
// and the call-crossing value settles in a non-volatile register.
package main

import (
	"fmt"
	"log"

	"prefcolor"
)

// The paper's Figure 7(a) sample: a loop that loads a pair of words,
// accumulates them, passes a value to a call, and iterates. Our r0 is
// the paper's r1 (first argument and return register), r1 its r2,
// and r2 its non-volatile r3.
const figure7 = `
func fig7() {
b0:
  v0 = load r0, 0
  jump b1
b1:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = move v0
  v4 = add v1, v2
  r0 = move v3
  call @f r0
  v0 = addimm v4, 1
  branch v0, b1, b2
b2:
  ret
}
`

func main() {
	f, err := prefcolor.ParseFunction(figure7)
	if err != nil {
		log.Fatal(err)
	}

	// The worked example's machine: three registers, r0/r1 volatile
	// (r0 = first argument and return), r2 non-volatile, paired loads
	// requiring destination registers of different parity.
	m := prefcolor.NewMachine(16)
	m.NumRegs = 3
	m.Volatile = []bool{true, true, false}
	m.ParamRegs = []int{0, 1}

	fmt.Println("before allocation:")
	fmt.Println(f.String())

	out, stats, err := prefcolor.Allocate(f, m, prefcolor.PreferenceDirected())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("after preference-directed allocation (3 registers):")
	fmt.Println(out.String())
	fmt.Printf("moves: %d -> %d (both copies coalesced)\n", stats.MovesBefore, stats.MovesRemaining)
	fmt.Printf("spill instructions: %d, caller saves: %d\n", stats.SpillInstrs(), stats.CallerSaveStores+stats.CallerSaveLoads)

	est := prefcolor.EstimateCycles(out, m)
	fmt.Printf("estimate: %.0f cycles, paired loads fused: %d\n", est.Cycles, est.FusedPairs)
}
