// Limited register usage: the paper's second preference kind. On an
// x86-flavored machine, shift counts want the CL-like register and
// quarter-word loads want the byte-addressable low registers; landing
// anywhere else costs a fixup (an extra copy or zero-extension) every
// execution. The preference-directed allocator reads these limits
// from the machine description and honors them by screening; the
// classic allocators never see them and pay the fixups.
package main

import (
	"fmt"
	"log"

	"prefcolor"
)

const shifty = `
func shifty(v0, v1) {
b0:
  v2 = loadimm 5
  jump b1
b1:
  v3 = load v0, 0
  v4 = load v0, 8
  v5 = shl v3, v1
  v6 = shr v4, v1
  v0 = add v5, v6
  v2 = addimm v2, -1
  branch v2, b1, b2
b2:
  ret v0
}
`

func main() {
	m := prefcolor.NewX86Machine(16)
	fmt.Printf("machine: %s — shift counts want r2, loads want r0..r3\n\n", m.Name)
	fmt.Printf("%-20s %10s %10s %12s\n", "allocator", "honored", "violated", "cycles")
	for _, name := range []string{"chaitin", "briggs-aggressive", "optimistic", "callcost", "pref-full"} {
		f, err := prefcolor.ParseFunction(shifty)
		if err != nil {
			log.Fatal(err)
		}
		alloc, err := prefcolor.AllocatorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, _, err := prefcolor.Allocate(f, m, alloc)
		if err != nil {
			log.Fatal(err)
		}
		est := prefcolor.EstimateCycles(out, m)
		fmt.Printf("%-20s %10d %10d %12.0f\n", name, est.LimitsHonored, est.LimitViolations, est.Cycles)
	}
	fmt.Println()
	fmt.Println("each violated limit pays its fixup cost on every loop iteration.")
}
