// Call-heavy code: volatile versus non-volatile selection (the
// paper's third preference kind). Values live across calls belong in
// callee-saved registers; values that die before the next call belong
// in caller-saved ones. This example compares how much caller-save
// traffic each allocator buys on a call-dense synthetic workload.
package main

import (
	"fmt"
	"log"

	"prefcolor"
)

func main() {
	m := prefcolor.NewMachine(16)
	profile, err := prefcolor.BenchmarkByName("jess")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d functions, call-dense)\n\n", profile.Name, profile.Funcs)
	fmt.Printf("%-20s %14s %14s %14s\n", "allocator", "caller saves", "spill instrs", "cycles")
	for _, name := range []string{"briggs-aggressive", "optimistic", "callcost", "pref-full"} {
		res, err := prefcolor.RunBenchmark(profile, m, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %14d %14d %14.0f\n", name, res.CallerSaves, res.SpillInstrs, res.Cycles)
	}
	fmt.Println()
	fmt.Println("callcost models Lueh & Gross's call-cost directed allocation;")
	fmt.Println("pref-full resolves the same volatility preferences together with")
	fmt.Println("coalescing and pairing in one select phase (the paper's §6.3 claim).")
}
