package prefcolor

import (
	"fmt"
	"strings"

	"prefcolor/internal/core"
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

// Explanation exposes the paper's two graphs for one function, for
// inspection and teaching: the Register Preference Graph with its
// cost-model strengths and the Coloring Precedence Graph derived from
// an optimistic simplification of the interference graph.
type Explanation struct {
	// Webs is the number of live ranges after renumbering.
	Webs int

	// RPG lists every preference edge, one per line, in sorted order
	// (kind, holder, target, volatile/non-volatile strengths).
	RPG string

	// CPG lists the precedence edges, one per line, with top/bottom
	// pseudo-nodes.
	CPG string

	// Interference lists each web's interference neighbors.
	Interference string

	// PotentialSpills names the webs removed at significant degree.
	PotentialSpills []string
}

// Explain renumbers f for machine m and renders the Register
// Preference Graph and Coloring Precedence Graph the
// preference-directed allocator would work from on its first round.
// f is not modified.
func Explain(f *Function, m *Machine) (*Explanation, error) {
	g := f.Clone()
	if _, err := ig.Renumber(g); err != nil {
		return nil, err
	}
	ctx, err := regalloc.NewContext(g, m, nil)
	if err != nil {
		return nil, err
	}
	rpg := core.BuildRPG(ctx, core.FullPreferences)
	stack, potential := core.SimplifyForBench(ctx.Graph, ctx.K())
	cpg, err := core.BuildCPG(ctx.Graph, stack, potential, ctx.K())
	if err != nil {
		return nil, err
	}

	exp := &Explanation{
		Webs: g.NumVirt,
		RPG:  core.DumpRPG(rpg, ctx.Graph),
		CPG:  cpg.Dump(ctx.Graph),
	}
	var lines []string
	for w := 0; w < g.NumVirt; w++ {
		node := ig.NodeID(ctx.Graph.NumPhys() + w)
		var nbs []string
		for _, nb := range ctx.Graph.OrigNeighbors(node) {
			nbs = append(nbs, ctx.Graph.RegOf(nb).String())
		}
		lines = append(lines, fmt.Sprintf("v%d: {%s}", w, strings.Join(nbs, ", ")))
	}
	exp.Interference = strings.Join(lines, "\n")
	for n, p := range potential {
		if p {
			exp.PotentialSpills = append(exp.PotentialSpills, ctx.Graph.RegOf(ig.NodeID(n)).String())
		}
	}
	sortStrings(exp.PotentialSpills)
	return exp, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
