module prefcolor

go 1.22
