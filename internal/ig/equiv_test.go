package ig_test

import (
	"math/rand"
	"reflect"
	"testing"

	"prefcolor/internal/ig"
)

// refGraph is the retained reference adjacency: the map-of-sets
// representation the bitset Graph replaced, with the original degree
// and coalescing bookkeeping. The equivalence test drives it and the
// real Graph through identical operation sequences and demands
// identical observable state at every step.
type refGraph struct {
	nPhys   int
	n       int
	adj     []map[ig.NodeID]bool
	origAdj []map[ig.NodeID]bool
	alias   []ig.NodeID
	removed []bool
	degree  []int
}

func newRefGraph(nPhys, nWebs int) *refGraph {
	n := nPhys + nWebs
	r := &refGraph{
		nPhys:   nPhys,
		n:       n,
		adj:     make([]map[ig.NodeID]bool, n),
		origAdj: make([]map[ig.NodeID]bool, n),
		alias:   make([]ig.NodeID, n),
		removed: make([]bool, n),
		degree:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		r.adj[i] = map[ig.NodeID]bool{}
		r.origAdj[i] = map[ig.NodeID]bool{}
		r.alias[i] = ig.NodeID(i)
	}
	for a := 0; a < nPhys; a++ {
		for b := a + 1; b < nPhys; b++ {
			r.addEdge(ig.NodeID(a), ig.NodeID(b))
		}
	}
	return r
}

func (r *refGraph) addEdge(a, b ig.NodeID) {
	if a == b || r.adj[a][b] {
		return
	}
	r.adj[a][b] = true
	r.adj[b][a] = true
	if !r.removed[b] {
		r.degree[a]++
	}
	if !r.removed[a] {
		r.degree[b]++
	}
}

func (r *refGraph) freeze() {
	for i := 0; i < r.n; i++ {
		m := make(map[ig.NodeID]bool, len(r.adj[i]))
		for k := range r.adj[i] {
			m[k] = true
		}
		r.origAdj[i] = m
	}
}

func (r *refGraph) find(n ig.NodeID) ig.NodeID {
	for r.alias[n] != n {
		n = r.alias[n]
	}
	return n
}

func (r *refGraph) remove(n ig.NodeID) {
	r.removed[n] = true
	for nb := range r.adj[n] {
		if !r.removed[nb] && r.alias[nb] == nb {
			r.degree[nb]--
		}
	}
}

func (r *refGraph) coalesce(a, b ig.NodeID) {
	rep, loser := a, b
	if int(b) < r.nPhys {
		rep, loser = b, a
	}
	for nb := range r.adj[loser] {
		delete(r.adj[nb], loser)
		if r.adj[nb][rep] {
			if !r.removed[nb] && int(nb) >= r.nPhys {
				r.degree[nb]--
			}
			continue
		}
		r.adj[nb][rep] = true
		r.adj[rep][nb] = true
		if !r.removed[nb] && int(rep) >= r.nPhys {
			r.degree[rep]++
		}
	}
	r.adj[loser] = map[ig.NodeID]bool{}
	r.degree[loser] = 0
	r.alias[loser] = rep
}

func (r *refGraph) neighbors(n ig.NodeID) []ig.NodeID {
	out := []ig.NodeID{}
	for i := 0; i < r.n; i++ {
		if r.adj[n][ig.NodeID(i)] {
			out = append(out, ig.NodeID(i))
		}
	}
	return out
}

func (r *refGraph) origNeighbors(n ig.NodeID) []ig.NodeID {
	out := []ig.NodeID{}
	for i := 0; i < r.n; i++ {
		if r.origAdj[n][ig.NodeID(i)] {
			out = append(out, ig.NodeID(i))
		}
	}
	return out
}

// TestGraphMatchesReferenceAdjacency drives the bitset Graph and the
// reference map adjacency through identical random AddEdge / Freeze /
// Coalesce / Remove scripts and checks after every operation that
// neighbor sets, original-neighbor sets, degrees, and pairwise
// interference agree exactly.
func TestGraphMatchesReferenceAdjacency(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPhys, nWebs := 3, 12
		g := ig.NewGraph(nPhys, nWebs)
		ref := newRefGraph(nPhys, nWebs)
		n := nPhys + nWebs

		check := func(step int, op string) {
			t.Helper()
			for i := 0; i < n; i++ {
				node := ig.NodeID(i)
				if got, want := g.Neighbors(node), ref.neighbors(node); !reflect.DeepEqual(append([]ig.NodeID{}, got...), want) {
					t.Fatalf("seed %d step %d (%s): Neighbors(%d) = %v, reference %v", seed, step, op, i, got, want)
				}
				if got, want := g.OrigNeighbors(node), ref.origNeighbors(node); !reflect.DeepEqual(append([]ig.NodeID{}, got...), want) {
					t.Fatalf("seed %d step %d (%s): OrigNeighbors(%d) = %v, reference %v", seed, step, op, i, got, want)
				}
				if i >= nPhys {
					if got, want := g.Degree(node), ref.degree[i]; got != want {
						t.Fatalf("seed %d step %d (%s): Degree(%d) = %d, reference %d", seed, step, op, i, got, want)
					}
				}
				for j := 0; j < n; j++ {
					other := ig.NodeID(j)
					if got, want := g.OrigInterferes(node, other), ref.origAdj[i][other]; got != want {
						t.Fatalf("seed %d step %d (%s): OrigInterferes(%d,%d) = %v, reference %v", seed, step, op, i, j, got, want)
					}
				}
			}
		}

		// Phase 1: random construction, then freeze both.
		for e := 0; e < 30; e++ {
			a := ig.NodeID(rng.Intn(n))
			b := ig.NodeID(nPhys + rng.Intn(nWebs))
			g.AddEdge(a, b)
			ref.addEdge(a, b)
		}
		g.Freeze()
		ref.freeze()
		check(0, "freeze")

		// Phase 2: random mutation mirroring the allocator's use —
		// coalesces and removals against the frozen original.
		for step := 1; step <= 40; step++ {
			switch rng.Intn(3) {
			case 0:
				a := g.Find(ig.NodeID(rng.Intn(n)))
				b := g.Find(ig.NodeID(nPhys + rng.Intn(nWebs)))
				if a == b || g.Removed(a) || g.Removed(b) {
					continue
				}
				g.AddEdge(a, b)
				ref.addEdge(a, b)
				check(step, "addedge")
			case 1:
				a := g.Find(ig.NodeID(rng.Intn(n)))
				b := g.Find(ig.NodeID(nPhys + rng.Intn(nWebs)))
				if a == b || g.Interferes(a, b) || g.Removed(a) || g.Removed(b) {
					continue
				}
				if g.IsPhys(a) && g.IsPhys(b) {
					continue
				}
				g.Coalesce(a, b)
				ref.coalesce(a, b)
				check(step, "coalesce")
			case 2:
				a := g.Find(ig.NodeID(nPhys + rng.Intn(nWebs)))
				if g.IsPhys(a) || g.Removed(a) || g.Aliased(a) {
					continue
				}
				g.Remove(a)
				ref.remove(a)
				check(step, "remove")
			}
		}
	}
}

// TestFreezeIsImmutableSnapshot pins the copy-on-write contract: the
// frozen original adjacency must not observe mutations made to the
// live graph after Freeze.
func TestFreezeIsImmutableSnapshot(t *testing.T) {
	g := ig.NewGraph(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.Freeze()

	if !g.OrigInterferes(0, 1) || g.OrigInterferes(0, 2) {
		t.Fatal("frozen adjacency wrong before mutation")
	}
	g.AddEdge(0, 2) // post-freeze mutation must trigger the row copy
	if !g.Interferes(0, 2) {
		t.Error("live graph lost the post-freeze edge")
	}
	if g.OrigInterferes(0, 2) {
		t.Error("post-freeze AddEdge leaked into the frozen original")
	}
	g.Coalesce(1, 2)
	if g.OrigInterferes(0, 2) || !g.OrigInterferes(2, 3) {
		t.Error("coalescing mutated the frozen original")
	}
}
