package ig

import (
	"testing"

	"prefcolor/internal/ir"
)

func TestRenumberSplitsDisjointRanges(t *testing.T) {
	// v1 has two disjoint lifetimes: webs must be separate.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = add v1, v0
  v1 = loadimm 2
  v3 = add v1, v2
  ret v3
}
`)
	orig := f.Clone()
	info, err := Renumber(f)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	// v0, v2, v3 and two webs for v1 = 5 webs.
	if info.NumWebs != 5 {
		t.Errorf("NumWebs = %d, want 5", info.NumWebs)
	}
	d1 := f.Blocks[0].Instrs[0].Def()
	d2 := f.Blocks[0].Instrs[2].Def()
	if d1 == d2 {
		t.Errorf("disjoint lifetimes share a web: %v", d1)
	}
	// Uses read the matching web.
	if f.Blocks[0].Instrs[1].Uses[0] != d1 {
		t.Error("first use reads wrong web")
	}
	if f.Blocks[0].Instrs[3].Uses[0] != d2 {
		t.Error("second use reads wrong web")
	}
	// Semantics unchanged.
	a, _ := ir.Interp(orig, map[ir.Reg]int64{orig.Params[0]: 5}, ir.InterpOptions{})
	b, _ := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: 5}, ir.InterpOptions{})
	if a.Ret != b.Ret {
		t.Errorf("semantics changed: %d vs %d", a.Ret, b.Ret)
	}
}

func TestRenumberJoinsDefsReachingCommonUse(t *testing.T) {
	// v1 defined in both arms, used after the join: one web.
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 10
  jump b3
b2:
  v1 = loadimm 20
  jump b3
b3:
  ret v1
}
`)
	_, err := Renumber(f)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	d1 := f.Blocks[1].Instrs[0].Def()
	d2 := f.Blocks[2].Instrs[0].Def()
	if d1 != d2 {
		t.Errorf("defs reaching a common use got different webs: %v vs %v", d1, d2)
	}
	if f.Blocks[3].Instrs[0].Uses[0] != d1 {
		t.Error("joined use reads wrong web")
	}
}

func TestRenumberParams(t *testing.T) {
	f := ir.MustParse(`
func f(v5, v9) {
b0:
  v1 = add v5, v9
  ret v1
}
`)
	info, err := Renumber(f)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	if info.NumWebs != 3 {
		t.Errorf("NumWebs = %d, want 3", info.NumWebs)
	}
	// Params get the smallest web numbers, in order.
	if f.Params[0] != ir.Virt(0) || f.Params[1] != ir.Virt(1) {
		t.Errorf("params = %v", f.Params)
	}
	if f.Blocks[0].Instrs[0].Uses[0] != ir.Virt(0) || f.Blocks[0].Instrs[0].Uses[1] != ir.Virt(1) {
		t.Errorf("param uses not renumbered: %v", f.Blocks[0].Instrs[0])
	}
}

func TestRenumberLoopKeepsOneWeb(t *testing.T) {
	// The loop accumulator is one web (defs in b0 and b2 reach the use
	// in b2 and b3).
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = cmp v1, v0
  branch v2, b2, b3
b2:
  v3 = loadimm 1
  v1 = add v1, v3
  jump b1
b3:
  ret v1
}
`)
	_, err := Renumber(f)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	d0 := f.Blocks[0].Instrs[0].Def()
	d2 := f.Blocks[2].Instrs[1].Def()
	if d0 != d2 {
		t.Errorf("loop accumulator split into %v and %v", d0, d2)
	}
}

func TestRenumberRejectsPhi(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 1
  jump b3
b2:
  v2 = loadimm 2
  jump b3
b3:
  v3 = phi v1, v2
  ret v3
}
`)
	if _, err := Renumber(f); err == nil {
		t.Error("Renumber accepted φ")
	}
}

func TestRenumberPhysUntouched(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  v0 = move r0
  v1 = add v0, v0
  r0 = move v1
  ret r0
}
`)
	if _, err := Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	if f.Blocks[0].Instrs[0].Uses[0] != ir.Phys(0) {
		t.Error("physical register was renumbered")
	}
	if f.Blocks[0].Instrs[2].Defs[0] != ir.Phys(0) {
		t.Error("physical def was renumbered")
	}
}

func TestRenumberOrigins(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = add v1, v0
  ret v2
}
`)
	info, err := Renumber(f)
	if err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	for w, origs := range info.Origins {
		if len(origs) != 1 {
			t.Errorf("web %d origins = %v, want exactly one", w, origs)
		}
	}
}

func TestRenumberValidatesAfter(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 3
  v2 = mul v1, v0
  branch v2, b1, b2
b1:
  v2 = add v2, v1
  jump b2
b2:
  ret v2
}
`)
	if _, err := Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate after Renumber: %v", err)
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(4)
	if u.find(0) == u.find(1) {
		t.Error("fresh sets joined")
	}
	u.union(0, 1)
	u.union(2, 3)
	if u.find(0) != u.find(1) || u.find(2) != u.find(3) {
		t.Error("union failed")
	}
	if u.find(0) == u.find(2) {
		t.Error("separate sets joined")
	}
	u.union(1, 3)
	if u.find(0) != u.find(2) {
		t.Error("transitive union failed")
	}
	u.grow(6)
	if u.find(5) != 5 {
		t.Error("grow broke")
	}
}
