package ig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropGraphDegreeInvariant drives the interference graph through
// random AddEdge/Coalesce/Remove sequences and checks after every
// operation that the incrementally-maintained degrees equal a
// recomputation from the adjacency sets.
func TestPropGraphDegreeInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		nPhys, nWebs := 2, 10
		g := NewGraph(nPhys, nWebs)

		check := func(op string) bool {
			for i := nPhys; i < g.NumNodes(); i++ {
				n := NodeID(i)
				if g.Aliased(n) || g.Removed(n) {
					continue
				}
				want := 0
				for _, nb := range g.Neighbors(n) {
					if !g.removed[nb] && g.alias[nb] == nb {
						want++
					}
				}
				if g.degree[n] != want {
					t.Logf("seed %d after %s: degree[%d] = %d, want %d", seed, op, n, g.degree[n], want)
					return false
				}
			}
			return true
		}

		for step := 0; step < 60; step++ {
			switch rng.Intn(3) {
			case 0: // add a random edge between active webs
				a := NodeID(nPhys + rng.Intn(nWebs))
				b := NodeID(nPhys + rng.Intn(nWebs))
				a, b = g.Find(a), g.Find(b)
				if a == b || g.Removed(a) || g.Removed(b) {
					continue
				}
				g.AddEdge(a, b)
			case 1: // coalesce a random non-interfering pair
				a := NodeID(rng.Intn(g.NumNodes()))
				b := NodeID(nPhys + rng.Intn(nWebs))
				a, b = g.Find(a), g.Find(b)
				if a == b || g.Interferes(a, b) || g.Removed(a) || g.Removed(b) {
					continue
				}
				if g.IsPhys(a) && g.IsPhys(b) {
					continue
				}
				g.Coalesce(a, b)
			case 2: // remove a random active web
				a := g.Find(NodeID(nPhys + rng.Intn(nWebs)))
				if g.IsPhys(a) || g.Removed(a) || g.Aliased(a) {
					continue
				}
				g.Remove(a)
			}
			if !check("step") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCoalesceAdjacencyUnion: after coalescing, the
// representative interferes with exactly the union of both nodes'
// previous neighborhoods (minus themselves).
func TestPropCoalesceAdjacencyUnion(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(0, 8)
		for i := 0; i < 12; i++ {
			a, b := NodeID(rng.Intn(8)), NodeID(rng.Intn(8))
			if a != b {
				g.AddEdge(a, b)
			}
		}
		var x, y NodeID = -1, -1
		for a := 0; a < 8 && x < 0; a++ {
			for b := a + 1; b < 8; b++ {
				if !g.Interferes(NodeID(a), NodeID(b)) {
					x, y = NodeID(a), NodeID(b)
					break
				}
			}
		}
		if x < 0 {
			return true // complete graph; nothing to coalesce
		}
		before := map[NodeID]bool{}
		for _, nb := range g.Neighbors(x) {
			before[nb] = true
		}
		for _, nb := range g.Neighbors(y) {
			before[nb] = true
		}
		delete(before, x)
		delete(before, y)
		rep := g.Coalesce(x, y)
		after := map[NodeID]bool{}
		for _, nb := range g.Neighbors(rep) {
			after[g.Find(nb)] = true
		}
		if len(after) != len(before) {
			t.Logf("seed %d: union size %d, merged size %d", seed, len(before), len(after))
			return false
		}
		for nb := range before {
			if !after[g.Find(nb)] {
				t.Logf("seed %d: lost neighbor %d", seed, nb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
