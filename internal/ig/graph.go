package ig

import (
	"fmt"
	"sort"

	"prefcolor/internal/ir"
)

// NodeID identifies an interference-graph node. Nodes
// 0..NumPhys-1 are the precolored physical registers; node NumPhys+w
// is web w of the renumbered function.
type NodeID int32

// Move records one copy instruction between two nodes, the raw
// material of coalescing. Weight is the execution-frequency estimate
// of the copy (what eliminating it saves).
type Move struct {
	X, Y   NodeID
	Weight float64
}

// Graph is a Chaitin-style interference graph with support for node
// removal (simplification), coalescing with union-find aliasing, and
// an immutable copy of the pre-coalescing adjacency for optimistic
// coalescing's undo phase.
type Graph struct {
	nPhys int
	n     int

	// adj is the current adjacency under coalescing: edges of a
	// merged node accumulate on its representative. Membership is
	// kept even for removed (stacked) nodes; degree tracks only
	// active neighbors.
	adj []map[NodeID]struct{}

	// origAdj is frozen at the end of Build: the adjacency before any
	// coalescing, used by optimistic coalescing's undo and by
	// validity checks.
	origAdj []map[NodeID]struct{}

	alias   []NodeID
	members [][]NodeID
	removed []bool
	degree  []int

	spillCost []float64
	moves     []Move
	nodeMoves [][]int
}

// NewGraph returns an empty graph with nPhys precolored nodes and
// nWebs live-range nodes. The physical nodes form a clique.
func NewGraph(nPhys, nWebs int) *Graph {
	n := nPhys + nWebs
	g := &Graph{
		nPhys:     nPhys,
		n:         n,
		adj:       make([]map[NodeID]struct{}, n),
		origAdj:   make([]map[NodeID]struct{}, n),
		alias:     make([]NodeID, n),
		members:   make([][]NodeID, n),
		removed:   make([]bool, n),
		degree:    make([]int, n),
		spillCost: make([]float64, n),
		nodeMoves: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		g.adj[i] = map[NodeID]struct{}{}
		g.origAdj[i] = map[NodeID]struct{}{}
		g.alias[i] = NodeID(i)
		g.members[i] = []NodeID{NodeID(i)}
	}
	for a := 0; a < nPhys; a++ {
		for b := a + 1; b < nPhys; b++ {
			g.AddEdge(NodeID(a), NodeID(b))
		}
	}
	return g
}

// NumPhys returns the number of precolored nodes.
func (g *Graph) NumPhys() int { return g.nPhys }

// NumNodes returns the total node count (physical + webs).
func (g *Graph) NumNodes() int { return g.n }

// NumWebs returns the number of live-range nodes.
func (g *Graph) NumWebs() int { return g.n - g.nPhys }

// IsPhys reports whether n is a precolored physical-register node.
func (g *Graph) IsPhys(n NodeID) bool { return int(n) < g.nPhys }

// PhysColor returns the register number of a physical node.
func (g *Graph) PhysColor(n NodeID) int {
	if !g.IsPhys(n) {
		panic(fmt.Sprintf("ig.Graph.PhysColor: node %d is not physical", n))
	}
	return int(n)
}

// NodeOf maps a register of the renumbered function to its node.
func (g *Graph) NodeOf(r ir.Reg) NodeID {
	if r.IsPhys() {
		return NodeID(r.PhysNum())
	}
	return NodeID(g.nPhys + r.VirtNum())
}

// RegOf maps a node back to a register.
func (g *Graph) RegOf(n NodeID) ir.Reg {
	if g.IsPhys(n) {
		return ir.Phys(int(n))
	}
	return ir.Virt(int(n) - g.nPhys)
}

// AddEdge records interference between a and b (no-op for a == b).
// Only valid during construction and coalescing; callers elsewhere use
// Coalesce.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b {
		return
	}
	if _, dup := g.adj[a][b]; !dup {
		g.adj[a][b] = struct{}{}
		g.adj[b][a] = struct{}{}
		if !g.removed[b] {
			g.degree[a]++
		}
		if !g.removed[a] {
			g.degree[b]++
		}
	}
}

// Freeze snapshots the current adjacency as the "original" graph.
// Build calls it once; tests may too.
func (g *Graph) Freeze() {
	for i := 0; i < g.n; i++ {
		m := make(map[NodeID]struct{}, len(g.adj[i]))
		for k := range g.adj[i] {
			m[k] = struct{}{}
		}
		g.origAdj[i] = m
	}
}

// Find resolves coalescing aliases to the current representative.
func (g *Graph) Find(n NodeID) NodeID {
	for g.alias[n] != n {
		g.alias[n] = g.alias[g.alias[n]]
		n = g.alias[n]
	}
	return n
}

// Interferes reports whether the representatives of a and b share an
// edge in the current graph.
func (g *Graph) Interferes(a, b NodeID) bool {
	a, b = g.Find(a), g.Find(b)
	_, ok := g.adj[a][b]
	return ok
}

// OrigInterferes reports interference in the pre-coalescing graph.
func (g *Graph) OrigInterferes(a, b NodeID) bool {
	_, ok := g.origAdj[a][b]
	return ok
}

// Degree returns the number of active (not removed, not aliased)
// neighbors of a representative node. Physical nodes report a degree
// of at least NumNodes, making them significant for every K.
func (g *Graph) Degree(n NodeID) int {
	if g.IsPhys(n) {
		return g.n + g.nPhys
	}
	return g.degree[n]
}

// Significant reports whether node n has K or more active neighbors
// (or is precolored).
func (g *Graph) Significant(n NodeID, k int) bool {
	return g.IsPhys(n) || g.degree[n] >= k
}

// Removed reports whether n has been removed (pushed on the
// simplification stack).
func (g *Graph) Removed(n NodeID) bool { return g.removed[n] }

// Remove takes a representative node out of the active graph,
// decrementing its active neighbors' degrees. It panics on physical
// or aliased nodes.
func (g *Graph) Remove(n NodeID) {
	if g.IsPhys(n) {
		panic("ig.Graph.Remove: cannot remove a physical node")
	}
	if g.alias[n] != n {
		panic("ig.Graph.Remove: node is coalesced away")
	}
	if g.removed[n] {
		panic("ig.Graph.Remove: node already removed")
	}
	g.removed[n] = true
	for nb := range g.adj[n] {
		if !g.removed[nb] && g.alias[nb] == nb {
			g.degree[nb]--
		}
	}
}

// ForEachNeighbor calls fn for every current neighbor of the
// representative n (including removed ones); fn's argument is itself a
// representative.
func (g *Graph) ForEachNeighbor(n NodeID, fn func(nb NodeID)) {
	for nb := range g.adj[n] {
		fn(nb)
	}
}

// Neighbors returns the current neighbors of n, sorted, for
// deterministic iteration.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[n]))
	for nb := range g.adj[n] {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OrigNeighbors returns the pre-coalescing neighbors of an original
// node, sorted.
func (g *Graph) OrigNeighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.origAdj[n]))
	for nb := range g.origAdj[n] {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachOrigNeighbor visits the pre-coalescing neighbors of an
// original node in unspecified order, without allocating — the hot
// path for availability checks.
func (g *Graph) ForEachOrigNeighbor(n NodeID, fn func(nb NodeID)) {
	for nb := range g.origAdj[n] {
		fn(nb)
	}
}

// Members returns the original nodes merged into representative n
// (including n itself).
func (g *Graph) Members(n NodeID) []NodeID { return g.members[n] }

// Coalesce merges node b into node a (both resolved to
// representatives first). If either is physical, the physical node
// becomes the representative. It panics if the nodes interfere, are
// equal, are both physical, or if either was already removed.
// It returns the representative.
func (g *Graph) Coalesce(a, b NodeID) NodeID {
	a, b = g.Find(a), g.Find(b)
	switch {
	case a == b:
		panic("ig.Graph.Coalesce: same node")
	case g.Interferes(a, b):
		panic("ig.Graph.Coalesce: interfering nodes")
	case g.IsPhys(a) && g.IsPhys(b):
		panic("ig.Graph.Coalesce: two physical nodes")
	case g.removed[a] || g.removed[b]:
		panic("ig.Graph.Coalesce: removed node")
	}
	rep, loser := a, b
	if g.IsPhys(b) {
		rep, loser = b, a
	}
	for nb := range g.adj[loser] {
		delete(g.adj[nb], loser)
		if _, already := g.adj[nb][rep]; already {
			// nb had both endpoints as distinct neighbors; it keeps
			// only the representative.
			if !g.removed[nb] && !g.IsPhys(nb) {
				g.degree[nb]--
			}
			continue
		}
		g.adj[nb][rep] = struct{}{}
		g.adj[rep][nb] = struct{}{}
		if !g.removed[nb] && !g.IsPhys(rep) {
			g.degree[rep]++
		}
	}
	g.adj[loser] = map[NodeID]struct{}{}
	g.degree[loser] = 0
	g.alias[loser] = rep
	g.members[rep] = append(g.members[rep], g.members[loser]...)
	g.members[loser] = nil
	g.spillCost[rep] += g.spillCost[loser]
	g.nodeMoves[rep] = append(g.nodeMoves[rep], g.nodeMoves[loser]...)
	g.nodeMoves[loser] = nil
	return rep
}

// Aliased reports whether n has been coalesced into another node.
func (g *Graph) Aliased(n NodeID) bool { return g.alias[n] != n }

// SetSpillCost attaches the cost-model estimate for node n.
func (g *Graph) SetSpillCost(n NodeID, c float64) { g.spillCost[n] = c }

// SpillCost returns the (coalescing-accumulated) spill cost of a
// representative node.
func (g *Graph) SpillCost(n NodeID) float64 { return g.spillCost[n] }

// AddMove records a copy between two nodes and indexes it on both.
func (g *Graph) AddMove(x, y NodeID, w float64) {
	if x == y {
		return
	}
	idx := len(g.moves)
	g.moves = append(g.moves, Move{X: x, Y: y, Weight: w})
	g.nodeMoves[x] = append(g.nodeMoves[x], idx)
	g.nodeMoves[y] = append(g.nodeMoves[y], idx)
}

// Moves returns all recorded copies (endpoints are original node ids;
// resolve with Find).
func (g *Graph) Moves() []Move { return g.moves }

// NodeMoves returns indices into Moves() touching representative n.
func (g *Graph) NodeMoves(n NodeID) []int { return g.nodeMoves[n] }

// MoveRelated reports whether representative n still has a copy to a
// node it does not interfere with (an outstanding coalescing
// opportunity).
func (g *Graph) MoveRelated(n NodeID) bool {
	for _, mi := range g.nodeMoves[n] {
		m := g.moves[mi]
		x, y := g.Find(m.X), g.Find(m.Y)
		if x == y {
			continue
		}
		other := x
		if x == n {
			other = y
		}
		if !g.Interferes(n, other) {
			return true
		}
	}
	return false
}

// ActiveNodes returns all web representatives still in the graph
// (not removed, not aliased), sorted for determinism.
func (g *Graph) ActiveNodes() []NodeID {
	var out []NodeID
	for i := g.nPhys; i < g.n; i++ {
		n := NodeID(i)
		if !g.removed[n] && g.alias[n] == n {
			out = append(out, n)
		}
	}
	return out
}
