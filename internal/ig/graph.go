package ig

import (
	"fmt"
	"math/bits"

	"prefcolor/internal/ir"
	"prefcolor/internal/scratch"
)

// NodeID identifies an interference-graph node. Nodes
// 0..NumPhys-1 are the precolored physical registers; node NumPhys+w
// is web w of the renumbered function.
type NodeID int32

// Move records one copy instruction between two nodes, the raw
// material of coalescing. Weight is the execution-frequency estimate
// of the copy (what eliminating it saves).
type Move struct {
	X, Y   NodeID
	Weight float64
}

// Graph is a Chaitin-style interference graph with support for node
// removal (simplification), coalescing with union-find aliasing, and
// an immutable copy of the pre-coalescing adjacency for optimistic
// coalescing's undo phase.
//
// Adjacency is a dense bitset: one []uint64 row per node, bit b of
// row a set when a and b interfere. Edge tests are one word probe,
// neighbor iteration walks set bits in ascending order (so iteration
// is deterministic without sorting), and the whole structure is three
// pointer dereferences away from a contiguous allocation — the inner
// loops of simplification and precedence-graph construction touch no
// hash tables.
type Graph struct {
	nPhys int
	n     int
	words int // per-row length: ceil(n / 64)

	// adj is the current adjacency under coalescing: edges of a
	// merged node accumulate on its representative. Membership is
	// kept even for removed (stacked) nodes; degree tracks only
	// active neighbors. Rows initially slice one shared backing
	// array.
	adj [][]uint64

	// origAdj is frozen at the end of Build: the adjacency before any
	// coalescing, used by optimistic coalescing's undo and by
	// validity checks. Freeze does not copy — each origAdj row
	// aliases the adj row, and the first post-freeze mutation of an
	// adj row gives adj a private copy (copy-on-write), so functions
	// where coalescing touches few nodes never pay for a full
	// duplicate of the graph.
	origAdj [][]uint64

	// shared[i] records that adj[i] still aliases origAdj[i] and must
	// be copied before mutation.
	shared []bool

	alias   []NodeID
	members [][]NodeID
	removed []bool
	degree  []int

	spillCost []float64
	moves     []Move
	nodeMoves [][]int
}

// NewGraph returns an empty graph with nPhys precolored nodes and
// nWebs live-range nodes. The physical nodes form a clique.
func NewGraph(nPhys, nWebs int) *Graph {
	g := &Graph{}
	g.reinit(nil, nPhys, nWebs)
	return g
}

// GraphScratch recycles one Graph's storage across builds: the shared
// bitset backing, the per-node slices, and the per-node member and
// move-index rows keep their capacity from round to round. The zero
// value is ready. The *Graph returned by NewGraphIn is owned by the
// scratch — it is valid only until the next NewGraphIn on the same
// scratch, and a scratch must not be shared between goroutines.
type GraphScratch struct {
	g       Graph
	backing []uint64

	// Word rows reused by BuildInto's kernels (live set, volatile
	// mask, call-clobber set), all g.words long.
	liveRow    []uint64
	volRow     []uint64
	clobberRow []uint64
}

// NewGraphIn is NewGraph reusing ws's storage; a nil ws allocates
// fresh. The returned graph is indistinguishable from a fresh one:
// every field is re-zeroed or re-filled before use.
func NewGraphIn(ws *GraphScratch, nPhys, nWebs int) *Graph {
	if ws == nil {
		return NewGraph(nPhys, nWebs)
	}
	ws.backing = ws.g.reinit(ws.backing, nPhys, nWebs)
	return &ws.g
}

// reinit resets g to an empty graph of the given shape, reusing its
// slices (and the provided bitset backing) when capacity allows. It
// returns the backing so the caller can recycle it next build.
func (g *Graph) reinit(backing []uint64, nPhys, nWebs int) []uint64 {
	n := nPhys + nWebs
	words := (n + 63) / 64
	g.nPhys, g.n, g.words = nPhys, n, words
	backing = scratch.Slice(backing, n*words)
	g.adj = scratch.Slice(g.adj, n)
	g.origAdj = scratch.Slice(g.origAdj, n)
	g.shared = scratch.Slice(g.shared, n)
	g.removed = scratch.Slice(g.removed, n)
	g.degree = scratch.Slice(g.degree, n)
	g.spillCost = scratch.Slice(g.spillCost, n)
	g.moves = g.moves[:0]
	g.nodeMoves = scratch.Rows(g.nodeMoves, n)
	if cap(g.alias) < n {
		g.alias = make([]NodeID, n)
	}
	g.alias = g.alias[:n]
	if cap(g.members) < n {
		grown := make([][]NodeID, n)
		copy(grown, g.members)
		g.members = grown
	}
	g.members = g.members[:n]
	for i := 0; i < n; i++ {
		g.adj[i] = backing[i*words : (i+1)*words : (i+1)*words]
		g.alias[i] = NodeID(i)
		g.members[i] = append(g.members[i][:0], NodeID(i))
	}
	// The physical registers form a clique: every phys row gets all
	// phys bits except its own, written a word at a time.
	for a := 0; a < nPhys; a++ {
		row := g.adj[a]
		for wi := 0; wi<<6 < nPhys; wi++ {
			w := ^uint64(0)
			if rem := nPhys - wi<<6; rem < 64 {
				w = 1<<uint(rem) - 1
			}
			row[wi] = w
		}
		row[a>>6] &^= 1 << (uint(a) & 63)
		g.degree[a] = nPhys - 1
	}
	return backing
}

// hasBit reports whether bit b is set in row (nil rows have no bits).
func hasBit(row []uint64, b NodeID) bool {
	w := int(b) >> 6
	return w < len(row) && row[w]&(1<<(uint(b)&63)) != 0
}

// forEachBit calls fn for every set bit of row, in ascending order.
func forEachBit(row []uint64, fn func(NodeID)) {
	for wi, w := range row {
		base := NodeID(wi << 6)
		for w != 0 {
			fn(base + NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// popRow counts the set bits of row.
func popRow(row []uint64) int {
	c := 0
	for _, w := range row {
		c += bits.OnesCount64(w)
	}
	return c
}

// row returns node n's adjacency row for writing, detaching it from
// the frozen original first if Freeze left them aliased.
func (g *Graph) row(n NodeID) []uint64 {
	if g.shared[n] {
		g.adj[n] = append(make([]uint64, 0, g.words), g.adj[n]...)
		g.shared[n] = false
	}
	return g.adj[n]
}

// NumPhys returns the number of precolored nodes.
func (g *Graph) NumPhys() int { return g.nPhys }

// NumNodes returns the total node count (physical + webs).
func (g *Graph) NumNodes() int { return g.n }

// NumWebs returns the number of live-range nodes.
func (g *Graph) NumWebs() int { return g.n - g.nPhys }

// IsPhys reports whether n is a precolored physical-register node.
func (g *Graph) IsPhys(n NodeID) bool { return int(n) < g.nPhys }

// PhysColor returns the register number of a physical node.
func (g *Graph) PhysColor(n NodeID) int {
	if !g.IsPhys(n) {
		panic(fmt.Sprintf("ig.Graph.PhysColor: node %d is not physical", n))
	}
	return int(n)
}

// NodeOf maps a register of the renumbered function to its node.
func (g *Graph) NodeOf(r ir.Reg) NodeID {
	if r.IsPhys() {
		return NodeID(r.PhysNum())
	}
	return NodeID(g.nPhys + r.VirtNum())
}

// RegOf maps a node back to a register.
func (g *Graph) RegOf(n NodeID) ir.Reg {
	if g.IsPhys(n) {
		return ir.Phys(int(n))
	}
	return ir.Virt(int(n) - g.nPhys)
}

// AddEdge records interference between a and b (no-op for a == b).
// Only valid during construction and coalescing; callers elsewhere use
// Coalesce.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b {
		return
	}
	if !hasBit(g.adj[a], b) {
		g.row(a)[int(b)>>6] |= 1 << (uint(b) & 63)
		g.row(b)[int(a)>>6] |= 1 << (uint(a) & 63)
		if !g.removed[b] {
			g.degree[a]++
		}
		if !g.removed[a] {
			g.degree[b]++
		}
	}
}

// Freeze snapshots the current adjacency as the "original" graph.
// Build calls it once; tests may too. The snapshot is copy-on-write:
// rows are shared with the live adjacency until the live side mutates
// them.
func (g *Graph) Freeze() {
	for i := 0; i < g.n; i++ {
		g.origAdj[i] = g.adj[i]
		g.shared[i] = true
	}
}

// Find resolves coalescing aliases to the current representative.
func (g *Graph) Find(n NodeID) NodeID {
	for g.alias[n] != n {
		g.alias[n] = g.alias[g.alias[n]]
		n = g.alias[n]
	}
	return n
}

// Interferes reports whether the representatives of a and b share an
// edge in the current graph.
func (g *Graph) Interferes(a, b NodeID) bool {
	a, b = g.Find(a), g.Find(b)
	return hasBit(g.adj[a], b)
}

// OrigInterferes reports interference in the pre-coalescing graph.
func (g *Graph) OrigInterferes(a, b NodeID) bool {
	return hasBit(g.origAdj[a], b)
}

// Degree returns the number of active (not removed, not aliased)
// neighbors of a representative node. Physical nodes report a degree
// of at least NumNodes, making them significant for every K.
func (g *Graph) Degree(n NodeID) int {
	if g.IsPhys(n) {
		return g.n + g.nPhys
	}
	return g.degree[n]
}

// Significant reports whether node n has K or more active neighbors
// (or is precolored).
func (g *Graph) Significant(n NodeID, k int) bool {
	return g.IsPhys(n) || g.degree[n] >= k
}

// Removed reports whether n has been removed (pushed on the
// simplification stack).
func (g *Graph) Removed(n NodeID) bool { return g.removed[n] }

// Remove takes a representative node out of the active graph,
// decrementing its active neighbors' degrees. It panics on physical
// or aliased nodes.
func (g *Graph) Remove(n NodeID) {
	if g.IsPhys(n) {
		panic("ig.Graph.Remove: cannot remove a physical node")
	}
	if g.alias[n] != n {
		panic("ig.Graph.Remove: node is coalesced away")
	}
	if g.removed[n] {
		panic("ig.Graph.Remove: node already removed")
	}
	g.removed[n] = true
	forEachBit(g.adj[n], func(nb NodeID) {
		if !g.removed[nb] && g.alias[nb] == nb {
			g.degree[nb]--
		}
	})
}

// ForEachNeighbor calls fn for every current neighbor of the
// representative n (including removed ones), in ascending node order;
// fn's argument is itself a representative.
func (g *Graph) ForEachNeighbor(n NodeID, fn func(nb NodeID)) {
	forEachBit(g.adj[n], fn)
}

// Neighbors returns the current neighbors of n in ascending order.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, popRow(g.adj[n]))
	forEachBit(g.adj[n], func(nb NodeID) { out = append(out, nb) })
	return out
}

// OrigNeighbors returns the pre-coalescing neighbors of an original
// node in ascending order.
func (g *Graph) OrigNeighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, popRow(g.origAdj[n]))
	forEachBit(g.origAdj[n], func(nb NodeID) { out = append(out, nb) })
	return out
}

// ForEachOrigNeighbor visits the pre-coalescing neighbors of an
// original node in ascending order, without allocating — the hot
// path for availability checks.
func (g *Graph) ForEachOrigNeighbor(n NodeID, fn func(nb NodeID)) {
	forEachBit(g.origAdj[n], fn)
}

// OrigRow exposes node n's pre-coalescing adjacency as a raw bitset
// row (bit b set when n and b interfere), for callers whose inner
// loops cannot afford ForEachOrigNeighbor's per-bit closure call.
// The row is shared storage, WordsPerRow words long, and must not be
// mutated.
func (g *Graph) OrigRow(n NodeID) []uint64 { return g.origAdj[n] }

// WordsPerRow returns the bitset row length in 64-bit words.
func (g *Graph) WordsPerRow() int { return g.words }

// Members returns the original nodes merged into representative n
// (including n itself).
func (g *Graph) Members(n NodeID) []NodeID { return g.members[n] }

// Coalesce merges node b into node a (both resolved to
// representatives first). If either is physical, the physical node
// becomes the representative. It panics if the nodes interfere, are
// equal, are both physical, or if either was already removed.
// It returns the representative.
func (g *Graph) Coalesce(a, b NodeID) NodeID {
	a, b = g.Find(a), g.Find(b)
	switch {
	case a == b:
		panic("ig.Graph.Coalesce: same node")
	case g.Interferes(a, b):
		panic("ig.Graph.Coalesce: interfering nodes")
	case g.IsPhys(a) && g.IsPhys(b):
		panic("ig.Graph.Coalesce: two physical nodes")
	case g.removed[a] || g.removed[b]:
		panic("ig.Graph.Coalesce: removed node")
	}
	rep, loser := a, b
	if g.IsPhys(b) {
		rep, loser = b, a
	}
	// rep is never a neighbor of loser (they don't interfere), so
	// rep's row can be fetched once without the loop invalidating it.
	repRow := g.row(rep)
	repW, repM := int(rep)>>6, uint64(1)<<(uint(rep)&63)
	loserW, loserM := int(loser)>>6, uint64(1)<<(uint(loser)&63)
	forEachBit(g.adj[loser], func(nb NodeID) {
		nbRow := g.row(nb)
		nbRow[loserW] &^= loserM
		if nbRow[repW]&repM != 0 {
			// nb had both endpoints as distinct neighbors; it keeps
			// only the representative.
			if !g.removed[nb] && !g.IsPhys(nb) {
				g.degree[nb]--
			}
			return
		}
		nbRow[repW] |= repM
		repRow[int(nb)>>6] |= 1 << (uint(nb) & 63)
		if !g.removed[nb] && !g.IsPhys(rep) {
			g.degree[rep]++
		}
	})
	lr := g.row(loser)
	for i := range lr {
		lr[i] = 0
	}
	g.degree[loser] = 0
	g.alias[loser] = rep
	g.members[rep] = append(g.members[rep], g.members[loser]...)
	g.members[loser] = g.members[loser][:0]
	g.spillCost[rep] += g.spillCost[loser]
	g.nodeMoves[rep] = append(g.nodeMoves[rep], g.nodeMoves[loser]...)
	g.nodeMoves[loser] = g.nodeMoves[loser][:0]
	return rep
}

// Aliased reports whether n has been coalesced into another node.
func (g *Graph) Aliased(n NodeID) bool { return g.alias[n] != n }

// SetSpillCost attaches the cost-model estimate for node n.
func (g *Graph) SetSpillCost(n NodeID, c float64) { g.spillCost[n] = c }

// SpillCost returns the (coalescing-accumulated) spill cost of a
// representative node.
func (g *Graph) SpillCost(n NodeID) float64 { return g.spillCost[n] }

// AddMove records a copy between two nodes and indexes it on both.
func (g *Graph) AddMove(x, y NodeID, w float64) {
	if x == y {
		return
	}
	idx := len(g.moves)
	g.moves = append(g.moves, Move{X: x, Y: y, Weight: w})
	g.nodeMoves[x] = append(g.nodeMoves[x], idx)
	g.nodeMoves[y] = append(g.nodeMoves[y], idx)
}

// Moves returns all recorded copies (endpoints are original node ids;
// resolve with Find).
func (g *Graph) Moves() []Move { return g.moves }

// NodeMoves returns indices into Moves() touching representative n.
func (g *Graph) NodeMoves(n NodeID) []int { return g.nodeMoves[n] }

// MoveRelated reports whether representative n still has a copy to a
// node it does not interfere with (an outstanding coalescing
// opportunity).
func (g *Graph) MoveRelated(n NodeID) bool {
	for _, mi := range g.nodeMoves[n] {
		m := g.moves[mi]
		x, y := g.Find(m.X), g.Find(m.Y)
		if x == y {
			continue
		}
		other := x
		if x == n {
			other = y
		}
		if !g.Interferes(n, other) {
			return true
		}
	}
	return false
}

// ActiveNodes returns all web representatives still in the graph
// (not removed, not aliased), in ascending order.
func (g *Graph) ActiveNodes() []NodeID {
	var out []NodeID
	g.ForEachActive(func(n NodeID) { out = append(out, n) })
	return out
}

// ForEachActive visits every web representative still in the graph
// (not removed, not aliased) in ascending order without allocating.
// Nodes removed by fn during the walk are not revisited; nodes cannot
// become active mid-walk, so the visit set matches an ActiveNodes
// snapshot taken at the start.
func (g *Graph) ForEachActive(fn func(n NodeID)) {
	for i := g.nPhys; i < g.n; i++ {
		n := NodeID(i)
		if !g.removed[n] && g.alias[n] == n {
			fn(n)
		}
	}
}
