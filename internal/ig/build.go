package ig

import (
	"fmt"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/target"
)

// Build constructs the interference graph of a renumbered, φ-free
// function on machine m.
//
// Interference is Chaitin's: a definition interferes with everything
// live after it, except that a copy's destination does not interfere
// with its source on account of the copy itself. Every value live
// across a call interferes with every volatile physical register
// (call clobbering). Copy instructions are recorded as Moves weighted
// by loop frequency, the input to every coalescing heuristic.
func Build(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo) (*Graph, error) {
	return BuildInto(nil, f, m, loops, nil)
}

// BuildInto is Build reusing ws's graph storage (nil ws allocates
// fresh) and an optional precomputed liveness for f (nil live computes
// it here). Passing liveness in lets the driver share one analysis per
// round between the cost model and the graph builder.
func BuildInto(ws *GraphScratch, f *ir.Func, m *target.Machine, loops *cfg.LoopInfo, live *liveness.Info) (*Graph, error) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				return nil, fmt.Errorf("ig.Build: b%d:%d: φ-functions must be lowered first", b.ID, i)
			}
			checkPhys := func(r ir.Reg) error {
				if r.IsPhys() && r.PhysNum() >= m.NumRegs {
					return fmt.Errorf("ig.Build: b%d:%d: %v exceeds machine's %d registers", b.ID, i, r, m.NumRegs)
				}
				return nil
			}
			for _, r := range in.Defs {
				if err := checkPhys(r); err != nil {
					return nil, err
				}
			}
			for _, r := range in.Uses {
				if err := checkPhys(r); err != nil {
					return nil, err
				}
			}
		}
	}

	g := NewGraphIn(ws, m.NumRegs, f.NumVirt)
	if live == nil {
		live = liveness.Compute(f)
	}

	// Function entry defines every value live into it (parameters and
	// any web lacking a dominating definition) simultaneously: they
	// all interfere pairwise.
	entryLive := live.LiveIn(0).Sorted()
	for i, a := range entryLive {
		for _, b := range entryLive[i+1:] {
			g.AddEdge(g.NodeOf(a), g.NodeOf(b))
		}
	}
	volatiles := make([]NodeID, 0, m.NumRegs)
	for _, v := range m.VolatileRegs() {
		volatiles = append(volatiles, NodeID(v))
	}

	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		live.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			// Defs interfere with everything live after the
			// instruction, minus the move-source exception.
			for _, d := range in.Defs {
				dn := g.NodeOf(d)
				for l := range liveAfter {
					ln := g.NodeOf(l)
					if ln == dn {
						continue
					}
					if in.IsCopy() && l == in.Uses[0] {
						continue
					}
					g.AddEdge(dn, ln)
				}
			}
			// Call clobbers: values live across the call (live after
			// it, not defined by it) interfere with every volatile
			// register.
			if in.Op == ir.Call {
				def := in.Def()
				for l := range liveAfter {
					if l == def {
						continue
					}
					ln := g.NodeOf(l)
					for _, vn := range volatiles {
						if ln != vn {
							g.AddEdge(ln, vn)
						}
					}
				}
			}
			if in.IsCopy() {
				x, y := g.NodeOf(in.Defs[0]), g.NodeOf(in.Uses[0])
				if x != y {
					g.AddMove(x, y, freq)
				}
			}
		})
	}

	g.Freeze()
	return g, nil
}
