package ig

import (
	"fmt"
	"math/bits"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/scratch"
	"prefcolor/internal/target"
)

// Build constructs the interference graph of a renumbered, φ-free
// function on machine m.
//
// Interference is Chaitin's: a definition interferes with everything
// live after it, except that a copy's destination does not interfere
// with its source on account of the copy itself. Every value live
// across a call interferes with every volatile physical register
// (call clobbering). Copy instructions are recorded as Moves weighted
// by loop frequency, the input to every coalescing heuristic.
func Build(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo) (*Graph, error) {
	return BuildInto(nil, f, m, loops, nil)
}

// BuildInto is Build reusing ws's graph storage (nil ws allocates
// fresh) and an optional precomputed liveness for f (nil live computes
// it here). Passing liveness in lets the driver share one analysis per
// round between the cost model and the graph builder.
//
// The builder works a word at a time: the live set is a dense bit row
// in node space, maintained directly during the backward walk, and
// edges land as bulk ORs of that row into adjacency rows (64 candidate
// neighbors per operation) with only the genuinely new bits mirrored
// back. Degrees are recomputed by popcount at the end — during
// construction nothing is ever removed, so a node's degree is exactly
// its row's population count.
func BuildInto(ws *GraphScratch, f *ir.Func, m *target.Machine, loops *cfg.LoopInfo, live *liveness.Info) (*Graph, error) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				return nil, fmt.Errorf("ig.Build: b%d:%d: φ-functions must be lowered first", b.ID, i)
			}
			checkPhys := func(r ir.Reg) error {
				if r.IsPhys() && r.PhysNum() >= m.NumRegs {
					return fmt.Errorf("ig.Build: b%d:%d: %v exceeds machine's %d registers", b.ID, i, r, m.NumRegs)
				}
				return nil
			}
			for _, r := range in.Defs {
				if err := checkPhys(r); err != nil {
					return nil, err
				}
			}
			for _, r := range in.Uses {
				if err := checkPhys(r); err != nil {
					return nil, err
				}
			}
		}
	}

	g := NewGraphIn(ws, m.NumRegs, f.NumVirt)
	if live == nil {
		live = liveness.Compute(f)
	}

	var liveRow, volRow, clobberRow []uint64
	if ws != nil {
		ws.liveRow = scratch.Slice(ws.liveRow, g.words)
		ws.volRow = scratch.Slice(ws.volRow, g.words)
		ws.clobberRow = scratch.Slice(ws.clobberRow, g.words)
		liveRow, volRow, clobberRow = ws.liveRow, ws.volRow, ws.clobberRow
	} else {
		liveRow = make([]uint64, g.words)
		volRow = make([]uint64, g.words)
		clobberRow = make([]uint64, g.words)
	}
	setBit := func(row []uint64, n NodeID) { row[int(n)>>6] |= 1 << (uint(n) & 63) }
	clearBit := func(row []uint64, n NodeID) { row[int(n)>>6] &^= 1 << (uint(n) & 63) }

	// edgesToLive interferes node dn with every bit of src except dn
	// itself and (for copies) the copy source: per word, the new
	// neighbors are src &^ row, OR'd in at once, and only those new
	// bits pay a per-bit mirror into the neighbor's row.
	edgesToLive := func(dn NodeID, src []uint64, excl NodeID) {
		row := g.adj[dn]
		dw, dm := int(dn)>>6, uint64(1)<<(uint(dn)&63)
		for wi, w := range src {
			add := w &^ row[wi]
			if wi == dw {
				add &^= dm
			}
			if excl >= 0 && wi == int(excl)>>6 {
				add &^= 1 << (uint(excl) & 63)
			}
			if add == 0 {
				continue
			}
			row[wi] |= add
			base := NodeID(wi << 6)
			for t := add; t != 0; t &= t - 1 {
				nb := base + NodeID(bits.TrailingZeros64(t))
				g.adj[nb][dw] |= dm
			}
		}
	}

	// Function entry defines every value live into it (parameters and
	// any web lacking a dominating definition) simultaneously: they
	// all interfere pairwise. Writing row |= live &^ self for every
	// member builds the full symmetric clique.
	for r := range live.LiveIn(0) {
		setBit(liveRow, g.NodeOf(r))
	}
	for wi, w := range liveRow {
		base := NodeID(wi << 6)
		for t := w; t != 0; t &= t - 1 {
			edgesToLive(base+NodeID(bits.TrailingZeros64(t)), liveRow, -1)
		}
	}

	for _, v := range m.VolatileRegs() {
		setBit(volRow, NodeID(v))
	}

	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		for i := range liveRow {
			liveRow[i] = 0
		}
		for r := range live.LiveOut(b.ID) {
			setBit(liveRow, g.NodeOf(r))
		}
		for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
			in := &b.Instrs[idx]
			// Defs interfere with everything live after the
			// instruction, minus the move-source exception.
			isCopy := in.IsCopy()
			for _, d := range in.Defs {
				excl := NodeID(-1)
				if isCopy {
					excl = g.NodeOf(in.Uses[0])
				}
				edgesToLive(g.NodeOf(d), liveRow, excl)
			}
			// Call clobbers: values live across the call (live after
			// it, not defined by it) interfere with every volatile
			// register.
			if in.Op == ir.Call {
				copy(clobberRow, liveRow)
				if def := in.Def(); def != ir.NoReg {
					clearBit(clobberRow, g.NodeOf(def))
				}
				for wi, w := range volRow {
					base := NodeID(wi << 6)
					for t := w; t != 0; t &= t - 1 {
						edgesToLive(base+NodeID(bits.TrailingZeros64(t)), clobberRow, -1)
					}
				}
			}
			if isCopy {
				x, y := g.NodeOf(in.Defs[0]), g.NodeOf(in.Uses[0])
				if x != y {
					g.AddMove(x, y, freq)
				}
			}
			// Step the live set backwards across the instruction.
			for _, d := range in.Defs {
				clearBit(liveRow, g.NodeOf(d))
			}
			for _, u := range in.Uses {
				setBit(liveRow, g.NodeOf(u))
			}
		}
	}

	// Nothing is removed during construction, so active degree is
	// exactly row population.
	for i := 0; i < g.n; i++ {
		g.degree[i] = popRow(g.adj[i])
	}

	g.Freeze()
	return g, nil
}
