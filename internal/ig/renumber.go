// Package ig implements the renumber phase (live-range construction
// via webs) and the Chaitin-style interference graph all allocators in
// this repository share.
package ig

import (
	"fmt"

	"prefcolor/internal/ir"
)

// RenumberInfo records how Renumber mapped original virtual registers
// to webs.
type RenumberInfo struct {
	// NumWebs is the number of live ranges; the rewritten function
	// uses exactly the virtual registers Virt(0)..Virt(NumWebs-1).
	NumWebs int

	// Origins[w] lists the original virtual registers merged into web
	// w (deduplicated, in first-seen order). Most webs come from a
	// single original register; a register with several defs feeding
	// common uses produces one web from many sites, and a register
	// with disjoint def/use regions produces several webs.
	Origins [][]ir.Reg
}

// Renumber rewrites f in place so that every virtual register is one
// live range (a web): the maximal set of definitions and uses
// connected through du-chains, computed from reaching definitions with
// a union-find. This is the "renumber" phase of Chaitin's allocator.
//
// The function must be φ-free (run ssa.Destruct first); Renumber
// returns an error otherwise. Physical registers are left untouched.
func Renumber(f *ir.Func) (*RenumberInfo, error) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Phi {
				return nil, fmt.Errorf("ig.Renumber: b%d:%d: φ-functions must be lowered first", b.ID, i)
			}
		}
	}

	// Enumerate definition sites. Site 0..len(Params)-1 are the
	// parameter pseudo-definitions at entry; further sites follow in
	// block/instruction order. Synthetic sites for uses with no
	// reaching definition are appended on demand.
	type siteKey struct {
		b ir.BlockID
		i int
	}
	var siteReg []ir.Reg // original register each site defines
	siteOf := map[siteKey]int{}
	paramSite := map[ir.Reg]int{}
	for _, p := range f.Params {
		if p.IsVirt() {
			if _, dup := paramSite[p]; !dup {
				paramSite[p] = len(siteReg)
				siteReg = append(siteReg, p)
			}
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d.IsVirt() {
				siteOf[siteKey{b.ID, i}] = len(siteReg)
				siteReg = append(siteReg, d)
			}
		}
	}
	undefSite := map[ir.Reg]int{}

	uf := newUnionFind(len(siteReg))
	grow := func() { uf.grow(len(siteReg)) }

	// Reaching definitions, as per-register sets of site ids. Site
	// sets are sorted, deduplicated slices treated as immutable, so
	// maps can share them; apply() always builds a fresh map.
	singleton := make([]siteSet, len(siteReg))
	single := func(s int) siteSet {
		for len(singleton) <= s {
			singleton = append(singleton, nil)
		}
		if singleton[s] == nil {
			singleton[s] = siteSet{int32(s)}
		}
		return singleton[s]
	}
	type regSites map[ir.Reg]siteSet

	// Per-block gen (last def site per register) and the set of
	// registers killed.
	gens := make([]map[ir.Reg]int, len(f.Blocks))
	for _, b := range f.Blocks {
		g := map[ir.Reg]int{}
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d.IsVirt() {
				g[d] = siteOf[siteKey{b.ID, i}]
			}
		}
		gens[b.ID] = g
	}

	entryRS := regSites{}
	for r, s := range paramSite {
		entryRS[r] = single(s)
	}

	mergeIn := func(b *ir.Block, out []regSites) regSites {
		rs := regSites{}
		if b.ID == 0 {
			for r, s := range entryRS {
				rs[r] = s
			}
		}
		for _, p := range b.Preds {
			for r, sites := range out[p] {
				rs[r] = unionSites(rs[r], sites)
			}
		}
		return rs
	}

	in := make([]regSites, len(f.Blocks))
	out := make([]regSites, len(f.Blocks))
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			rs := mergeIn(b, out)
			in[b.ID] = rs
			newOut := make(regSites, len(rs)+len(gens[b.ID]))
			for r, sites := range rs {
				newOut[r] = sites
			}
			for r, s := range gens[b.ID] {
				newOut[r] = single(s)
			}
			if !regSitesEqual(out[b.ID], newOut) {
				out[b.ID] = newOut
				changed = true
			}
		}
	}

	// Walk each block, unioning every use with all of its reaching
	// definitions.
	reachingAt := func(cur regSites, u ir.Reg) int {
		sites := cur[u]
		if len(sites) == 0 {
			s, ok := undefSite[u]
			if !ok {
				s = len(siteReg)
				siteReg = append(siteReg, u)
				undefSite[u] = s
				grow()
			}
			return s
		}
		first := int(sites[0])
		for _, s := range sites[1:] {
			uf.union(first, int(s))
		}
		return first
	}
	shallow := func(rs regSites) regSites {
		c := make(regSites, len(rs))
		for r, s := range rs {
			c[r] = s
		}
		return c
	}
	for _, b := range f.Blocks {
		cur := shallow(in[b.ID])
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			for _, u := range instr.Uses {
				if u.IsVirt() {
					reachingAt(cur, u)
				}
			}
			if d := instr.Def(); d.IsVirt() {
				cur[d] = single(siteOf[siteKey{b.ID, i}])
			}
		}
	}

	// Assign web numbers to union-find roots, in deterministic
	// (site-order) sequence, and rewrite operands in a second walk.
	webOf := map[int]int{}
	info := &RenumberInfo{}
	webFor := func(site int) ir.Reg {
		root := uf.find(site)
		w, ok := webOf[root]
		if !ok {
			w = info.NumWebs
			webOf[root] = w
			info.NumWebs++
			info.Origins = append(info.Origins, nil)
		}
		orig := siteReg[site]
		found := false
		for _, r := range info.Origins[w] {
			if r == orig {
				found = true
				break
			}
		}
		if !found {
			info.Origins[w] = append(info.Origins[w], orig)
		}
		return ir.Virt(w)
	}

	// Parameters first, so their webs get the smallest numbers.
	newParams := make([]ir.Reg, len(f.Params))
	for i, p := range f.Params {
		if p.IsVirt() {
			newParams[i] = webFor(paramSite[p])
		} else {
			newParams[i] = p
		}
	}

	for _, b := range f.Blocks {
		cur := shallow(in[b.ID])
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			for ui, u := range instr.Uses {
				if u.IsVirt() {
					instr.Uses[ui] = webFor(reachingAt(cur, u))
				}
			}
			if d := instr.Def(); d.IsVirt() {
				site := siteOf[siteKey{b.ID, i}]
				instr.Defs[0] = webFor(site)
				cur[d] = single(site)
			}
		}
	}

	f.Params = newParams
	f.NumVirt = info.NumWebs
	return info, nil
}

// siteSet is a sorted, deduplicated list of definition-site ids,
// treated as immutable once built so maps may share instances.
type siteSet []int32

// unionSites merges two site sets, returning an existing set when one
// contains the other.
func unionSites(a, b siteSet) siteSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	// Fast path: identical or containment.
	if sitesSubset(b, a) {
		return a
	}
	if sitesSubset(a, b) {
		return b
	}
	out := make(siteSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func sitesSubset(a, b siteSet) bool { // a ⊆ b
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
	}
	return true
}

func sitesEqual(a, b siteSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func regSitesEqual(a, b map[ir.Reg]siteSet) bool {
	if len(a) != len(b) {
		return false
	}
	for r, sa := range a {
		sb, ok := b[r]
		if !ok || !sitesEqual(sa, sb) {
			return false
		}
	}
	return true
}

// unionFind is a standard disjoint-set structure with path compression
// and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
		u.size = append(u.size, 1)
	}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}
