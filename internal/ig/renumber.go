// Package ig implements the renumber phase (live-range construction
// via webs) and the Chaitin-style interference graph all allocators in
// this repository share.
package ig

import (
	"fmt"
	"math/bits"

	"prefcolor/internal/ir"
	"prefcolor/internal/scratch"
)

// RenumberScratch recycles the dense per-site and per-register tables
// Renumber builds, so the driver's round loop stops reallocating them.
// The zero value is ready. The *RenumberInfo returned by RenumberInto
// is owned by the scratch: it (and its Origins rows) are valid only
// until the next RenumberInto on the same scratch. Not safe for
// concurrent use.
type RenumberScratch struct {
	siteReg   []ir.Reg
	siteAt    [][]int32
	paramSite []int32
	undefSite []int32
	singleton []siteSet // singleton[s] == {s}: immutable, reused across runs
	gens      [][]siteSet
	in        [][]siteSet
	out       [][]siteSet
	cur       []siteSet
	webOf     []int32
	uf        unionFind
	info      RenumberInfo

	// Per-block occupancy masks over the register index space: bit r
	// of gensMask/inMask/outMask[b] is set exactly when the matching
	// siteSet entry is non-nil. The dataflow loops walk set bits
	// instead of all NumVirt entries, so blocks touching a handful of
	// registers skip the empty 64-register spans word-at-a-time.
	// Reaching-definition sets only ever grow, so the masks are
	// monotone too.
	gensMask [][]uint64
	inMask   [][]uint64
	outMask  [][]uint64

	// Worklist scratch for the reaching-definitions fixpoint.
	worklist   []int32
	onWorklist []bool
}

// RenumberInfo records how Renumber mapped original virtual registers
// to webs.
type RenumberInfo struct {
	// NumWebs is the number of live ranges; the rewritten function
	// uses exactly the virtual registers Virt(0)..Virt(NumWebs-1).
	NumWebs int

	// Origins[w] lists the original virtual registers merged into web
	// w (deduplicated, in first-seen order). Most webs come from a
	// single original register; a register with several defs feeding
	// common uses produces one web from many sites, and a register
	// with disjoint def/use regions produces several webs.
	Origins [][]ir.Reg
}

// Renumber rewrites f in place so that every virtual register is one
// live range (a web): the maximal set of definitions and uses
// connected through du-chains, computed from reaching definitions with
// a union-find. This is the "renumber" phase of Chaitin's allocator.
//
// The function must be φ-free (run ssa.Destruct first); Renumber
// returns an error otherwise. Physical registers are left untouched.
func Renumber(f *ir.Func) (*RenumberInfo, error) { return RenumberInto(f, nil) }

// RenumberInto is Renumber reusing ws's tables; a nil ws behaves like
// Renumber. The site enumeration, dataflow schedule, and web numbering
// are identical either way, so the rewritten function and returned
// info do not depend on reuse.
func RenumberInto(f *ir.Func, ws *RenumberScratch) (*RenumberInfo, error) {
	if ws == nil {
		ws = &RenumberScratch{}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Phi {
				return nil, fmt.Errorf("ig.Renumber: b%d:%d: φ-functions must be lowered first", b.ID, i)
			}
		}
	}

	// Enumerate definition sites. Site 0..len(Params)-1 are the
	// parameter pseudo-definitions at entry; further sites follow in
	// block/instruction order. Synthetic sites for uses with no
	// reaching definition are appended on demand. Every per-register
	// table below is a dense slice indexed by VirtNum — virtual
	// registers are contiguous, so hashing them is pure overhead.
	nv := f.NumVirt
	nb := len(f.Blocks)
	siteReg := ws.siteReg[:0] // original register each site defines
	ws.siteAt = scratch.Rows(ws.siteAt, nb)
	siteAt := ws.siteAt // def site per instruction, -1 if none
	paramSite := scratch.Fill(ws.paramSite, nv, int32(-1))
	undefSite := scratch.Fill(ws.undefSite, nv, int32(-1))
	ws.paramSite, ws.undefSite = paramSite, undefSite
	for _, p := range f.Params {
		if p.IsVirt() && paramSite[p.VirtNum()] < 0 {
			paramSite[p.VirtNum()] = int32(len(siteReg))
			siteReg = append(siteReg, p)
		}
	}
	for _, b := range f.Blocks {
		sa := scratch.Fill(siteAt[b.ID], len(b.Instrs), int32(-1))
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d.IsVirt() {
				sa[i] = int32(len(siteReg))
				siteReg = append(siteReg, d)
			}
		}
		siteAt[b.ID] = sa
	}

	uf := &ws.uf
	uf.reinit(len(siteReg))

	// Reaching definitions, as per-register sets of site ids. Site
	// sets are sorted, deduplicated slices treated as immutable, so
	// the dataflow vectors can share them — and singleton sets can
	// even be shared across runs, since singleton[s] is always {s}.
	singleton := ws.singleton
	single := func(s int32) siteSet {
		for len(singleton) <= int(s) {
			singleton = append(singleton, nil)
		}
		if singleton[s] == nil {
			singleton[s] = siteSet{s}
		}
		return singleton[s]
	}
	defer func() { ws.singleton = singleton; ws.siteReg = siteReg }()
	type regSites = []siteSet // indexed by VirtNum; nil = no reaching def

	// Per-block gen (last def site per register), with occupancy masks.
	nw := (nv + 63) / 64
	ws.gens = scratch.Rows(ws.gens, nb)
	ws.gensMask = scratch.Rows(ws.gensMask, nb)
	ws.inMask = scratch.Rows(ws.inMask, nb)
	ws.outMask = scratch.Rows(ws.outMask, nb)
	gens := ws.gens
	gensMask, inMask, outMask := ws.gensMask, ws.inMask, ws.outMask
	for _, b := range f.Blocks {
		g := scratch.Slice(gens[b.ID], nv)
		gm := scratch.Slice(gensMask[b.ID], nw)
		inMask[b.ID] = scratch.Slice(inMask[b.ID], nw)
		outMask[b.ID] = scratch.Slice(outMask[b.ID], nw)
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d.IsVirt() {
				r := d.VirtNum()
				g[r] = single(siteAt[b.ID][i])
				gm[r>>6] |= 1 << (uint(r) & 63)
			}
		}
		gens[b.ID] = g
		gensMask[b.ID] = gm
	}

	// mergeIn accumulates in[b] = ∪ out[p] in place. The previous value
	// of rs is never cleared first: out sets only grow, so the prior
	// in[b] is always a subset of the fresh union and re-unioning on top
	// of it yields the identical sets (and skips a full clearing walk
	// per merge).
	mergeIn := func(b *ir.Block, out []regSites, rs regSites) {
		im := inMask[b.ID]
		if b.ID == 0 {
			for _, p := range f.Params {
				if p.IsVirt() {
					r := p.VirtNum()
					rs[r] = single(paramSite[r])
					im[r>>6] |= 1 << (uint(r) & 63)
				}
			}
		} else if len(b.Preds) == 1 {
			// Straight-line fast path: in[b] is exactly out[pred]. The
			// masks are monotone, so every register rs already holds is
			// covered by the predecessor's mask and gets overwritten
			// with the (equal-or-larger) predecessor set.
			p := b.Preds[0]
			po := out[p]
			for wi, w := range outMask[p] {
				base := wi << 6
				for t := w; t != 0; t &= t - 1 {
					r := base + bits.TrailingZeros64(t)
					rs[r] = po[r]
				}
				im[wi] |= w
			}
			return
		}
		for _, p := range b.Preds {
			po := out[p]
			for wi, w := range outMask[p] {
				base := wi << 6
				for t := w; t != 0; t &= t - 1 {
					r := base + bits.TrailingZeros64(t)
					rs[r] = unionSites(rs[r], po[r])
				}
				im[wi] |= w
			}
		}
	}

	ws.in = scratch.Rows(ws.in, nb)
	ws.out = scratch.Rows(ws.out, nb)
	in, out := ws.in, ws.out
	for i := range f.Blocks {
		in[i] = scratch.Slice(in[i], nv)
		out[i] = scratch.Slice(out[i], nv)
	}
	// Iterate to the fixpoint with a FIFO worklist: a block re-merges
	// only after a predecessor's out actually changed, so stabilized
	// regions drop out of the schedule instead of being re-unioned on
	// every sweep. The union dataflow is monotone with a unique least
	// fixpoint, so the final in/out sets are identical to the
	// full-sweep schedule's.
	wl := ws.worklist[:0]
	onWL := scratch.Slice(ws.onWorklist, nb)
	for _, b := range f.Blocks {
		wl = append(wl, int32(b.ID))
		onWL[b.ID] = true
	}
	for head := 0; head < len(wl); head++ {
		bid := wl[head]
		onWL[bid] = false
		b := f.Blocks[bid]
		rs := in[bid]
		mergeIn(b, out, rs)
		blockChanged := false
		bg, bo := gens[bid], out[bid]
		im, gm, om := inMask[bid], gensMask[bid], outMask[bid]
		for wi := range im {
			w := im[wi] | gm[wi]
			om[wi] = w
			base := wi << 6
			for t := w; t != 0; t &= t - 1 {
				r := base + bits.TrailingZeros64(t)
				sites := rs[r]
				if g := bg[r]; g != nil {
					sites = g
				}
				if !sitesEqual(bo[r], sites) {
					bo[r] = sites
					blockChanged = true
				}
			}
		}
		if blockChanged {
			for _, s := range b.Succs {
				if !onWL[s] {
					onWL[s] = true
					wl = append(wl, int32(s))
				}
			}
		}
	}
	ws.worklist, ws.onWorklist = wl[:0], onWL

	// Walk each block, unioning every use with all of its reaching
	// definitions.
	reachingAt := func(cur regSites, u ir.Reg) int32 {
		sites := cur[u.VirtNum()]
		if len(sites) == 0 {
			s := undefSite[u.VirtNum()]
			if s < 0 {
				s = int32(len(siteReg))
				siteReg = append(siteReg, u)
				undefSite[u.VirtNum()] = s
				uf.grow(len(siteReg))
			}
			return s
		}
		first := sites[0]
		for _, s := range sites[1:] {
			uf.union(int(first), int(s))
		}
		return first
	}
	ws.cur = scratch.Slice(ws.cur, nv)
	cur := ws.cur
	for _, b := range f.Blocks {
		copy(cur, in[b.ID])
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			for _, u := range instr.Uses {
				if u.IsVirt() {
					reachingAt(cur, u)
				}
			}
			if d := instr.Def(); d.IsVirt() {
				cur[d.VirtNum()] = single(siteAt[b.ID][i])
			}
		}
	}

	// Assign web numbers to union-find roots, in deterministic
	// (site-order) sequence, and rewrite operands in a second walk.
	// siteReg is final now: the second walk resolves the same uses, so
	// every undef site already exists.
	ws.webOf = scratch.Fill(ws.webOf, len(siteReg), int32(-1))
	webOf := ws.webOf
	info := &ws.info
	recycled := info.Origins // previous run's rows, recycled by index
	info.NumWebs = 0
	info.Origins = recycled[:0]
	webFor := func(site int32) ir.Reg {
		root := uf.find(int(site))
		w := webOf[root]
		if w < 0 {
			w = int32(info.NumWebs)
			webOf[root] = w
			var row []ir.Reg
			if info.NumWebs < len(recycled) {
				row = recycled[info.NumWebs][:0]
			}
			info.NumWebs++
			info.Origins = append(info.Origins, row)
		}
		orig := siteReg[site]
		found := false
		for _, r := range info.Origins[w] {
			if r == orig {
				found = true
				break
			}
		}
		if !found {
			info.Origins[w] = append(info.Origins[w], orig)
		}
		return ir.Virt(int(w))
	}

	// Parameters first, so their webs get the smallest numbers.
	newParams := make([]ir.Reg, len(f.Params))
	for i, p := range f.Params {
		if p.IsVirt() {
			newParams[i] = webFor(paramSite[p.VirtNum()])
		} else {
			newParams[i] = p
		}
	}

	for _, b := range f.Blocks {
		copy(cur, in[b.ID])
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			for ui, u := range instr.Uses {
				if u.IsVirt() {
					instr.Uses[ui] = webFor(reachingAt(cur, u))
				}
			}
			if d := instr.Def(); d.IsVirt() {
				site := siteAt[b.ID][i]
				instr.Defs[0] = webFor(site)
				cur[d.VirtNum()] = single(site)
			}
		}
	}

	f.Params = newParams
	f.NumVirt = info.NumWebs
	return info, nil
}

// siteSet is a sorted, deduplicated list of definition-site ids,
// treated as immutable once built so maps may share instances.
type siteSet []int32

// unionSites merges two site sets, returning an existing set when one
// contains the other.
func unionSites(a, b siteSet) siteSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	// Fast path: identical or containment.
	if sitesSubset(b, a) {
		return a
	}
	if sitesSubset(a, b) {
		return b
	}
	out := make(siteSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func sitesSubset(a, b siteSet) bool { // a ⊆ b
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
	}
	return true
}

func sitesEqual(a, b siteSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unionFind is a standard disjoint-set structure with path compression
// and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{}
	u.reinit(n)
	return u
}

// reinit resets u to n singleton sets, reusing its slices.
func (u *unionFind) reinit(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int, n)
		u.size = make([]int, n)
	}
	u.parent, u.size = u.parent[:n], u.size[:n]
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
}

func (u *unionFind) grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
		u.size = append(u.size, 1)
	}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}
