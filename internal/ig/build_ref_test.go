package ig

import (
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// buildReference is the pre-word-kernel builder: per-element AddEdge
// loops over map live sets, retained as the oracle the bulk-OR kernels
// must match bit for bit — adjacency, degrees, and move list included.
func buildReference(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo) *Graph {
	g := NewGraph(m.NumRegs, f.NumVirt)
	live := liveness.Compute(f)

	entryLive := live.LiveIn(0).Sorted()
	for i, a := range entryLive {
		for _, b := range entryLive[i+1:] {
			g.AddEdge(g.NodeOf(a), g.NodeOf(b))
		}
	}
	volatiles := make([]NodeID, 0, m.NumRegs)
	for _, v := range m.VolatileRegs() {
		volatiles = append(volatiles, NodeID(v))
	}

	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		live.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			for _, d := range in.Defs {
				dn := g.NodeOf(d)
				for l := range liveAfter {
					ln := g.NodeOf(l)
					if ln == dn {
						continue
					}
					if in.IsCopy() && l == in.Uses[0] {
						continue
					}
					g.AddEdge(dn, ln)
				}
			}
			if in.Op == ir.Call {
				def := in.Def()
				for l := range liveAfter {
					if l == def {
						continue
					}
					ln := g.NodeOf(l)
					for _, vn := range volatiles {
						if ln != vn {
							g.AddEdge(ln, vn)
						}
					}
				}
			}
			if in.IsCopy() {
				x, y := g.NodeOf(in.Defs[0]), g.NodeOf(in.Uses[0])
				if x != y {
					g.AddMove(x, y, freq)
				}
			}
		})
	}

	g.Freeze()
	return g
}

// TestBuildMatchesReference runs the word-kernel builder and the
// retained reference over the whole synthetic workload on several
// machines and demands identical graphs: same adjacency words, same
// degrees, same moves in the same order.
func TestBuildMatchesReference(t *testing.T) {
	machines := []*target.Machine{
		target.X86Like(8),
		target.S390Like(8),
		target.UsageModel(8),
	}
	profiles := append(workload.Benchmarks(), workload.Large())
	checked := 0
	for _, m := range machines {
		for _, p := range profiles {
			for _, f := range workload.Generate(p, m) {
				ssa.Destruct(f)
				if _, err := Renumber(f); err != nil {
					t.Fatalf("%s: Renumber: %v", f.Name, err)
				}
				dom := cfg.NewDomTree(f)
				loops := cfg.FindLoops(f, dom)

				got, err := Build(f, m, loops)
				if err != nil {
					t.Fatalf("%s: Build: %v", f.Name, err)
				}
				want := buildReference(f, m, loops)

				if got.n != want.n || got.nPhys != want.nPhys {
					t.Fatalf("%s on %s: shape %d/%d vs %d/%d", f.Name, m.Name, got.n, got.nPhys, want.n, want.nPhys)
				}
				for i := 0; i < got.n; i++ {
					for wi := 0; wi < got.words; wi++ {
						if got.adj[i][wi] != want.adj[i][wi] {
							t.Fatalf("%s on %s: adj[%d] word %d: %#x vs %#x", f.Name, m.Name, i, wi, got.adj[i][wi], want.adj[i][wi])
						}
					}
					if got.degree[i] != want.degree[i] {
						t.Fatalf("%s on %s: degree[%d]: %d vs %d", f.Name, m.Name, i, got.degree[i], want.degree[i])
					}
				}
				if len(got.moves) != len(want.moves) {
					t.Fatalf("%s on %s: %d moves vs %d", f.Name, m.Name, len(got.moves), len(want.moves))
				}
				for i := range got.moves {
					if got.moves[i] != want.moves[i] {
						t.Fatalf("%s on %s: move %d: %+v vs %+v", f.Name, m.Name, i, got.moves[i], want.moves[i])
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("empty corpus")
	}
}
