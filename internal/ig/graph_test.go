package ig

import (
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(2, 3) // nodes: 0,1 phys; 2,3,4 webs
	if g.NumPhys() != 2 || g.NumWebs() != 3 || g.NumNodes() != 5 {
		t.Fatal("counts wrong")
	}
	if !g.Interferes(0, 1) {
		t.Error("physical clique missing")
	}
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	if !g.Interferes(2, 3) || g.Interferes(3, 4) {
		t.Error("Interferes wrong")
	}
	if g.Degree(2) != 2 || g.Degree(3) != 1 {
		t.Errorf("degrees: %d, %d", g.Degree(2), g.Degree(3))
	}
	if g.Degree(0) < g.NumNodes() {
		t.Error("phys degree must be effectively infinite")
	}
	if !g.Significant(0, 2) || g.Significant(3, 2) || !g.Significant(2, 2) {
		t.Error("Significant wrong")
	}
}

func TestGraphNodeRegMapping(t *testing.T) {
	g := NewGraph(4, 2)
	if g.NodeOf(ir.Phys(3)) != 3 || g.NodeOf(ir.Virt(1)) != 5 {
		t.Error("NodeOf wrong")
	}
	if g.RegOf(3) != ir.Phys(3) || g.RegOf(5) != ir.Virt(1) {
		t.Error("RegOf wrong")
	}
	if g.PhysColor(2) != 2 {
		t.Error("PhysColor wrong")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.Remove(1)
	if g.Degree(0) != 0 || g.Degree(2) != 0 {
		t.Errorf("degrees after removal: %d, %d", g.Degree(0), g.Degree(2))
	}
	if !g.Removed(1) || g.Removed(0) {
		t.Error("Removed flags wrong")
	}
	// Adjacency membership survives removal (needed for select-time
	// color checks).
	if !g.Interferes(0, 1) {
		t.Error("removal dropped adjacency membership")
	}
}

func TestGraphCoalesce(t *testing.T) {
	// 0-1 interfere; 2 moves into 0's cluster; 2 interferes with 3.
	g := NewGraph(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.SetSpillCost(0, 5)
	g.SetSpillCost(2, 7)
	rep := g.Coalesce(0, 2)
	if rep != 0 {
		t.Fatalf("rep = %d, want 0", rep)
	}
	if g.Find(2) != 0 || !g.Aliased(2) {
		t.Error("alias not recorded")
	}
	if !g.Interferes(0, 1) || !g.Interferes(0, 3) {
		t.Error("merged adjacency wrong")
	}
	if g.Degree(0) != 2 {
		t.Errorf("merged degree = %d, want 2", g.Degree(0))
	}
	if g.SpillCost(0) != 12 {
		t.Errorf("merged spill cost = %v, want 12", g.SpillCost(0))
	}
	if len(g.Members(0)) != 2 {
		t.Errorf("members = %v", g.Members(0))
	}
	// Degree of 3: its neighbor 2 became 0, still one neighbor.
	if g.Degree(3) != 1 {
		t.Errorf("degree(3) = %d, want 1", g.Degree(3))
	}
}

func TestGraphCoalesceSharedNeighbor(t *testing.T) {
	// 0 and 2 both interfere with 1; coalescing 0,2 leaves 1 with one
	// distinct neighbor.
	g := NewGraph(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.Coalesce(0, 2)
	if g.Degree(1) != 1 {
		t.Errorf("degree(1) = %d, want 1", g.Degree(1))
	}
	if g.Degree(0) != 1 {
		t.Errorf("degree(0) = %d, want 1", g.Degree(0))
	}
}

func TestGraphCoalescePhysWins(t *testing.T) {
	g := NewGraph(2, 2)
	rep := g.Coalesce(2, 1) // web 2 with phys 1
	if rep != 1 {
		t.Errorf("rep = %d, want the physical node 1", rep)
	}
	if g.Find(2) != 1 {
		t.Error("web must alias to the physical node")
	}
}

func TestGraphCoalescePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	g := NewGraph(2, 2)
	g.AddEdge(2, 3)
	mustPanic("interfering", func() { g.Coalesce(2, 3) })
	mustPanic("same", func() { g.Coalesce(2, 2) })
	mustPanic("two phys", func() { g.Coalesce(0, 1) })
	mustPanic("remove phys", func() { g.Remove(0) })
}

func TestGraphMoves(t *testing.T) {
	g := NewGraph(0, 4)
	g.AddMove(0, 1, 10)
	g.AddMove(2, 3, 1)
	g.AddEdge(2, 3) // constrained move
	if !g.MoveRelated(0) || !g.MoveRelated(1) {
		t.Error("0/1 should be move-related")
	}
	if g.MoveRelated(2) {
		t.Error("2's only move is constrained; not move-related")
	}
	g.Coalesce(0, 1)
	if g.MoveRelated(0) {
		t.Error("coalesced move still counted")
	}
	if len(g.NodeMoves(0)) != 2 {
		t.Errorf("merged node moves = %d, want 2", len(g.NodeMoves(0)))
	}
}

func TestGraphFreezeOrigAdj(t *testing.T) {
	g := NewGraph(0, 3)
	g.AddEdge(0, 1)
	g.Freeze()
	g.Coalesce(0, 2)
	if !g.OrigInterferes(0, 1) || g.OrigInterferes(0, 2) {
		t.Error("OrigInterferes wrong")
	}
	if got := g.OrigNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("OrigNeighbors(0) = %v", got)
	}
}

func TestGraphActiveNodes(t *testing.T) {
	g := NewGraph(1, 3) // webs at 1,2,3
	g.Remove(2)
	g.Coalesce(1, 3)
	act := g.ActiveNodes()
	if len(act) != 1 || act[0] != 1 {
		t.Errorf("ActiveNodes = %v, want [1]", act)
	}
}

// buildFrom renumbers f and builds its interference graph.
func buildFrom(t *testing.T, src string, m *target.Machine) (*ir.Func, *Graph) {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	g, err := Build(f, m, loops)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f, g
}

func TestBuildSimpleInterference(t *testing.T) {
	f, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = loadimm 2
  v3 = add v1, v2
  v4 = add v3, v0
  ret v4
}
`, target.UsageModel(16))
	node := func(i int) NodeID { return g.NodeOf(ir.Virt(i)) }
	_ = f
	// v1 and v2 are simultaneously live.
	if !g.Interferes(node(1), node(2)) {
		t.Error("v1 and v2 must interfere")
	}
	// v1 dies at the add defining v3.
	if g.Interferes(node(1), node(4)) {
		t.Error("v1 and v4 must not interfere")
	}
	// v0 is live until the last add: interferes with v1, v2, v3.
	for _, w := range []int{1, 2, 3} {
		if !g.Interferes(node(0), node(w)) {
			t.Errorf("v0 and v%d must interfere", w)
		}
	}
}

func TestBuildMoveException(t *testing.T) {
	// v1 = move v0 with v0 still live after: no interference from the
	// copy itself.
	_, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = move v0
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	a, b := g.NodeOf(ir.Virt(0)), g.NodeOf(ir.Virt(1))
	if g.Interferes(a, b) {
		t.Error("copy-related nodes must not interfere (move exception)")
	}
	if len(g.Moves()) != 1 {
		t.Fatalf("moves = %d, want 1", len(g.Moves()))
	}
}

func TestBuildCallClobbers(t *testing.T) {
	m := target.UsageModel(16)
	_, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = loadimm 7
  call @g
  v2 = add v1, v0
  ret v2
}
`, m)
	n1 := g.NodeOf(ir.Virt(1))
	for _, v := range m.VolatileRegs() {
		if !g.Interferes(n1, NodeID(v)) {
			t.Errorf("call-crossing web must interfere with volatile r%d", v)
		}
	}
	for _, nv := range m.NonVolatileRegs() {
		if g.Interferes(n1, NodeID(nv)) {
			t.Errorf("call-crossing web must not interfere with non-volatile r%d", nv)
		}
	}
}

func TestBuildCallResultNotClobberInterfering(t *testing.T) {
	m := target.UsageModel(16)
	_, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = call @g v0
  ret v1
}
`, m)
	n1 := g.NodeOf(ir.Virt(1))
	// v1 is defined by the call, not live across it; it must be
	// allocatable to a volatile register.
	vol := 0
	for _, v := range m.VolatileRegs() {
		if g.Interferes(n1, NodeID(v)) {
			vol++
		}
	}
	if vol == len(m.VolatileRegs()) {
		t.Error("call result wrongly interferes with all volatile registers")
	}
}

func TestBuildMoveWeightByLoopDepth(t *testing.T) {
	_, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = move v1
  v1 = add v2, v0
  branch v1, b1, b2
b2:
  ret v1
}
`, target.UsageModel(16))
	if len(g.Moves()) != 1 {
		t.Fatalf("moves = %d, want 1", len(g.Moves()))
	}
	if g.Moves()[0].Weight != 10 {
		t.Errorf("loop move weight = %v, want 10", g.Moves()[0].Weight)
	}
}

func TestBuildRejectsPhi(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 1
  jump b3
b2:
  v2 = loadimm 2
  jump b3
b3:
  v3 = phi v1, v2
  ret v3
}
`)
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	if _, err := Build(f, target.UsageModel(16), loops); err == nil {
		t.Error("Build accepted φ")
	}
}

func TestBuildRejectsOutOfRangePhys(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  v0 = move r20
  ret v0
}
`)
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	if _, err := Build(f, target.Figure7Machine(), loops); err == nil {
		t.Error("Build accepted out-of-range physical register")
	}
}

func TestBuildDeadDefStillInterferes(t *testing.T) {
	// v1 is dead but its def still conflicts with what is live there.
	_, g := buildFrom(t, `
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = add v0, v0
  ret v2
}
`, target.UsageModel(16))
	if !g.Interferes(g.NodeOf(ir.Virt(0)), g.NodeOf(ir.Virt(1))) {
		t.Error("dead def must interfere with live values at its point")
	}
}
