package costmodel

import (
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/target"
)

func analyze(t *testing.T, src string, m *target.Machine) (*ir.Func, *Info, *cfg.LoopInfo) {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	live := liveness.Compute(f)
	return f, Analyze(f, m, loops, live), loops
}

func TestInstCost(t *testing.T) {
	if InstCost(ir.Load) != 2 || InstCost(ir.SpillLoad) != 2 {
		t.Error("loads must cost 2")
	}
	if InstCost(ir.Add) != 1 || InstCost(ir.Move) != 1 || InstCost(ir.Store) != 1 {
		t.Error("ordinary instructions must cost 1")
	}
	if InstCost(ir.Call) != 0 {
		t.Error("calls are outside the model")
	}
}

func TestSpillAndOpCosts(t *testing.T) {
	// v1: one def (loadimm, cost 1) + one use (add, cost 1), all at
	// frequency 1. SpillCost = 1 store + 1 load = 1 + 2 = 3.
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 4
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	w := 1 // web of v1 (v0 is web 0 as the parameter)
	if info.SpillCosts[w] != 3 {
		t.Errorf("SpillCost = %v, want 3", info.SpillCosts[w])
	}
	if info.OpCosts[w] != 2 {
		t.Errorf("OpCost = %v, want 2", info.OpCosts[w])
	}
	if info.MemCost(w) != 5 {
		t.Errorf("MemCost = %v, want 5", info.MemCost(w))
	}
}

func TestLoopFrequencyWeighting(t *testing.T) {
	// v1's def is outside the loop (freq 1), its use inside (freq 10):
	// SpillCost = 1·1 + 2·10 = 21.
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 4
  jump b1
b1:
  v2 = add v1, v0
  branch v2, b1, b2
b2:
  ret v1
}
`, target.UsageModel(16))
	w := 1
	want := 1.0 + 2.0*10 + 2.0 // def store + loop use load + exit use load
	if info.SpillCosts[w] != want {
		t.Errorf("SpillCost = %v, want %v", info.SpillCosts[w], want)
	}
}

func TestCrossFreqAndCallCost(t *testing.T) {
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 9
  call @g
  call @h
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	w := 1
	if info.CrossFreq[w] != 2 {
		t.Errorf("CrossFreq = %v, want 2", info.CrossFreq[w])
	}
	if got := info.CallCost(w, true); got != 6 {
		t.Errorf("volatile CallCost = %v, want 6 (3 per call)", got)
	}
	if got := info.CallCost(w, false); got != 2 {
		t.Errorf("non-volatile CallCost = %v, want 2", got)
	}
}

func TestStrPrefersNonVolatileForCallCrossing(t *testing.T) {
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 9
  call @g
  call @h
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	w := 1
	sv, snv := info.Str(w, true, 0), info.Str(w, false, 0)
	if snv <= sv {
		t.Errorf("call-crossing web: Str(nonvol)=%v must beat Str(vol)=%v", snv, sv)
	}
}

func TestStrPrefersVolatileWithoutCalls(t *testing.T) {
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 9
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	w := 1
	sv, snv := info.Str(w, true, 0), info.Str(w, false, 0)
	if sv <= snv {
		t.Errorf("no-call web: Str(vol)=%v must beat Str(nonvol)=%v", sv, snv)
	}
	if diff := sv - snv; diff != CalleeSaveCost {
		t.Errorf("difference = %v, want CalleeSaveCost (%v)", diff, CalleeSaveCost)
	}
}

func TestRegisterBenefitActiveSpill(t *testing.T) {
	// A web crossing many high-frequency calls with barely any uses:
	// memory is cheaper than any register.
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 9
  jump b1
b1:
  call @g
  call @h
  call @i
  branch v0, b1, b2
b2:
  ret v1
}
`, target.UsageModel(16))
	w := 1
	// MemCost: def(1 store=1·1) + use at ret (2·1) + op costs 1+1 = 5.
	// Volatile: 3·30 crossings = 90. Non-volatile: 2 ... wait,
	// non-volatile is cheap, so register benefit stays positive here.
	if info.RegisterBenefit(w) <= 0 {
		t.Errorf("benefit = %v; non-volatile residence should still win", info.RegisterBenefit(w))
	}
	// But against volatile alone it must lose badly.
	if info.Str(w, true, 0) >= 0 {
		t.Errorf("Str(vol) = %v, want negative", info.Str(w, true, 0))
	}
}

func TestFindLoadPairs(t *testing.T) {
	f, _, loops := analyze(t, `
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v1, v2
  ret v3
}
`, target.UsageModel(16))
	pairs := FindLoadPairs(f, target.UsageModel(16), loops)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	p := pairs[0]
	if p.I1 != 0 || p.I2 != 1 || p.Weight != 2 {
		t.Errorf("pair = %+v", p)
	}
}

func TestFindLoadPairsRejects(t *testing.T) {
	cases := map[string]string{
		"different base": `
func f(v0, v1) {
b0:
  v2 = load v0, 0
  v3 = load v1, 4
  v4 = add v2, v3
  ret v4
}
`,
		"wrong stride": `
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 12
  v3 = add v1, v2
  ret v3
}
`,
		"not adjacent": `
func f(v0) {
b0:
  v1 = load v0, 0
  v9 = loadimm 1
  v2 = load v0, 4
  v3 = add v1, v2
  ret v3
}
`,
		"first dst is base": `
func f(v0) {
b0:
  v0 = load v0, 0
  v2 = load v0, 4
  v3 = add v0, v2
  ret v3
}
`,
	}
	m := target.UsageModel(16)
	for name, src := range cases {
		f := ir.MustParse(src)
		loops := cfg.FindLoops(f, cfg.NewDomTree(f))
		if pairs := FindLoadPairs(f, m, loops); len(pairs) != 0 {
			t.Errorf("%s: found %d pairs, want 0", name, len(pairs))
		}
	}
}

func TestFindLoadPairsNoneOnPairlessMachine(t *testing.T) {
	m := target.UsageModel(16)
	m.PairRule = target.PairNone
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v1, v2
  ret v3
}
`)
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	if pairs := FindLoadPairs(f, m, loops); pairs != nil {
		t.Errorf("pairless machine returned %v", pairs)
	}
}

func TestStrSavingsRaiseStrength(t *testing.T) {
	_, info, _ := analyze(t, `
func f(v0) {
b0:
  v1 = loadimm 9
  v2 = add v1, v0
  ret v2
}
`, target.UsageModel(16))
	w := 1
	if info.Str(w, true, 5) != info.Str(w, true, 0)+5 {
		t.Error("savings must add linearly to strength")
	}
}

func TestFindLimitSites(t *testing.T) {
	f := ir.MustParse(`
func f(v0, v1) {
b0:
  v2 = loadimm 2
  jump b1
b1:
  v3 = shl v0, v1
  v2 = addimm v2, -1
  branch v2, b1, b2
b2:
  ret v3
}
`)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	m := target.X86Like(16)
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	sites := FindLimitSites(f, m, loops)
	if len(sites) != 1 {
		t.Fatalf("sites = %d, want 1 (the shift count)", len(sites))
	}
	s := sites[0]
	if s.Weight != 10 {
		t.Errorf("weight = %v, want 10 (fixup 1 x loop freq 10)", s.Weight)
	}
	if len(s.Allowed) != 1 || s.Allowed[0] != 2 {
		t.Errorf("allowed = %v, want [2]", s.Allowed)
	}
}

func TestFindLimitSitesNoneWithoutLimits(t *testing.T) {
	f := ir.MustParse(`
func f(v0, v1) {
b0:
  v2 = shl v0, v1
  ret v2
}
`)
	m := target.UsageModel(16)
	loops := cfg.FindLoops(f, cfg.NewDomTree(f))
	if sites := FindLimitSites(f, m, loops); sites != nil {
		t.Errorf("sites = %v on a limit-free machine", sites)
	}
}
