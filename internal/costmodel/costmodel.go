// Package costmodel implements the paper's Appendix cost functions
// over a renumbered function: spill costs, operation costs, call
// costs, and the preference strength
//
//	Str(V, P) = Mem_Cost(V) − Ideal_Cost(V, P)
//
// with the constants the paper fixes: Load_Cost = 2, Store_Cost = 1,
// Save_Restore_Cost = 3 per crossed call, Callee_Save_Cost = 2, and
// Freq_Fact = 10 per loop-nesting level.
package costmodel

import (
	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/target"
)

// The Appendix constants.
const (
	LoadCost        = 2
	StoreCost       = 1
	SaveRestoreCost = 3
	CalleeSaveCost  = 2
)

// InstCost is the Appendix's Inst_Cost: 2 for loads, 1 for everything
// else that executes, and 0 for calls (the paper leaves calls
// "undefined"; they cost the same under every allocation, so they drop
// out of every comparison).
func InstCost(op ir.Op) float64 {
	switch op {
	case ir.Load, ir.SpillLoad:
		return LoadCost
	case ir.Call, ir.Phi, ir.Nop:
		return 0
	default:
		return 1
	}
}

// Info carries the per-web cost analysis of one renumbered function.
type Info struct {
	// SpillCosts[w] = Σ Load_Cost·freq(use) + Σ Store_Cost·freq(def):
	// the traffic added if web w lives in memory.
	SpillCosts []float64

	// OpCosts[w] = Σ Inst_Cost·freq over w's defs and uses.
	OpCosts []float64

	// CrossFreq[w] is the frequency-weighted number of calls w is
	// live across.
	CrossFreq []float64
}

// Analyze computes the Appendix quantities for every web of f.
// The function must already be renumbered (webs == virtual registers).
func Analyze(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo, live *liveness.Info) *Info {
	info := &Info{
		SpillCosts: make([]float64, f.NumVirt),
		OpCosts:    make([]float64, f.NumVirt),
		CrossFreq:  make([]float64, f.NumVirt),
	}
	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			c := InstCost(in.Op)
			for _, d := range in.Defs {
				if d.IsVirt() {
					info.SpillCosts[d.VirtNum()] += StoreCost * freq
					info.OpCosts[d.VirtNum()] += c * freq
				}
			}
			// Uses lists are tiny (almost always ≤3), so dedup by
			// scanning the prefix instead of allocating a set per
			// instruction.
			for ui, u := range in.Uses {
				if !u.IsVirt() {
					continue
				}
				dup := false
				for _, prev := range in.Uses[:ui] {
					if prev == u {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				info.SpillCosts[u.VirtNum()] += LoadCost * freq
				info.OpCosts[u.VirtNum()] += c * freq
			}
		}
	}
	for r, w := range live.LiveAcrossCalls(loops.Freq) {
		if r.IsVirt() {
			info.CrossFreq[r.VirtNum()] = w
		}
	}
	return info
}

// MemCost returns Mem_Cost(w) = Spill_Cost(w) + Op_Cost(w).
func (in *Info) MemCost(w int) float64 { return in.SpillCosts[w] + in.OpCosts[w] }

// CallCost returns Call_Cost(w) when w resides in a volatile
// (Save_Restore_Cost per crossed call) or non-volatile register
// (Callee_Save_Cost, once).
func (in *Info) CallCost(w int, volatile bool) float64 {
	if volatile {
		return SaveRestoreCost * in.CrossFreq[w]
	}
	return CalleeSaveCost
}

// Str returns the preference strength Str(w, P) for a preference P
// honored with a register of the given volatility, where savings is
// the frequency-weighted Inst_Cost the preference zeroes out
// (Ideal_Inst_Cost): the move weight for a coalesce preference, the
// paired load's cost for sequential±, and 0 for a bare class
// preference.
func (in *Info) Str(w int, volatile bool, savings float64) float64 {
	ideal := in.CallCost(w, volatile) + in.OpCosts[w] - savings
	return in.MemCost(w) - ideal
}

// RegisterBenefit is the best-case benefit of keeping w in a register
// at all: max over volatilities of Str with no extra savings. A
// negative value means the web actively prefers memory (the paper's
// §5.4 active-spill criterion).
func (in *Info) RegisterBenefit(w int) float64 {
	v := in.Str(w, true, 0)
	nv := in.Str(w, false, 0)
	if v > nv {
		return v
	}
	return nv
}

// LoadPair is one paired-load candidate: two adjacent loads off the
// same base register with offsets one word apart (paper Figure 5(a)).
// Fusing them saves the second load's cost when the destination
// registers satisfy the machine's pair rule.
type LoadPair struct {
	Block  ir.BlockID
	I1, I2 int // instruction indices within Block; I2 == I1+1
	Dst1   ir.Reg
	Dst2   ir.Reg
	Weight float64 // frequency-weighted saved cost (Load_Cost · freq)
}

// LimitSite is one occurrence of a limited-register-usage constraint
// (the paper's second preference kind): the given register operand of
// the instruction prefers the machine's allowed subset, and violating
// it costs Weight (fixup cost × frequency).
type LimitSite struct {
	Block   ir.BlockID
	Instr   int
	Reg     ir.Reg
	Allowed []int
	Weight  float64
}

// FindLimitSites scans f for operands constrained by the machine's
// OpLimits.
func FindLimitSites(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo) []LimitSite {
	if len(m.Limits) == 0 {
		return nil
	}
	var out []LimitSite
	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for li := range m.Limits {
				l := &m.Limits[li]
				r, ok := l.Applies(in)
				if !ok || !r.Valid() {
					continue
				}
				out = append(out, LimitSite{
					Block: b.ID, Instr: i, Reg: r,
					Allowed: l.Regs, Weight: l.FixupCost * freq,
				})
			}
		}
	}
	return out
}

// FindLoadPairs scans f for paired-load candidates. The first load's
// destination must differ from the base (the fused load writes both
// destinations after reading the base once).
func FindLoadPairs(f *ir.Func, m *target.Machine, loops *cfg.LoopInfo) []LoadPair {
	if m.PairRule == target.PairNone {
		return nil
	}
	var out []LoadPair
	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		for i := 0; i+1 < len(b.Instrs); i++ {
			a, c := &b.Instrs[i], &b.Instrs[i+1]
			if a.Op != ir.Load || c.Op != ir.Load {
				continue
			}
			if a.Uses[0] != c.Uses[0] {
				continue
			}
			if c.Imm-a.Imm != m.WordSize {
				continue
			}
			if a.Defs[0] == a.Uses[0] || a.Defs[0] == c.Defs[0] {
				continue
			}
			out = append(out, LoadPair{
				Block:  b.ID,
				I1:     i,
				I2:     i + 1,
				Dst1:   a.Defs[0],
				Dst2:   c.Defs[0],
				Weight: LoadCost * freq,
			})
		}
	}
	return out
}
