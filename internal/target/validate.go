package target

import (
	"errors"
	"fmt"

	"prefcolor/internal/ir"
)

// Validate checks that the machine description is internally
// consistent, returning an error describing the first problem found.
// The allocation driver calls it on entry so a malformed description
// fails fast with a diagnostic instead of panicking or silently
// skewing the cost model deep in selection:
//
//   - NumRegs is positive and encodable as an ir.Reg;
//   - Volatile does not extend past the register file (extra entries
//     would make IsVolatile and the cost model disagree about
//     registers that do not exist);
//   - RetReg and every ParamRegs entry name real registers, with no
//     duplicate parameter registers;
//   - PairRule is a known rule, with a positive WordSize when paired
//     loads are enabled (offset adjacency is measured in words);
//   - every Limit has a non-negative operand index, a non-negative
//     fixup cost and immediate threshold, and a non-empty allowed
//     subset of real registers.
func (m *Machine) Validate() error {
	if m == nil {
		return errors.New("target: nil machine")
	}
	if m.NumRegs <= 0 {
		return fmt.Errorf("target: %s: NumRegs = %d, want positive", m.label(), m.NumRegs)
	}
	if m.NumRegs >= int(ir.FirstVirtual) {
		return fmt.Errorf("target: %s: NumRegs = %d exceeds the encodable register space (%d)",
			m.label(), m.NumRegs, int(ir.FirstVirtual)-1)
	}
	if len(m.Volatile) > m.NumRegs {
		return fmt.Errorf("target: %s: Volatile describes %d registers but the file has %d",
			m.label(), len(m.Volatile), m.NumRegs)
	}
	if m.RetReg < 0 || m.RetReg >= m.NumRegs {
		return fmt.Errorf("target: %s: RetReg r%d out of range [0, %d)", m.label(), m.RetReg, m.NumRegs)
	}
	seen := make([]bool, m.NumRegs)
	for i, p := range m.ParamRegs {
		if p < 0 || p >= m.NumRegs {
			return fmt.Errorf("target: %s: ParamRegs[%d] = r%d out of range [0, %d)", m.label(), i, p, m.NumRegs)
		}
		if seen[p] {
			return fmt.Errorf("target: %s: ParamRegs[%d] = r%d repeats an earlier parameter register", m.label(), i, p)
		}
		seen[p] = true
	}
	if m.PairRule > PairSequential {
		return fmt.Errorf("target: %s: unknown PairRule %d", m.label(), m.PairRule)
	}
	if m.PairRule != PairNone && m.WordSize <= 0 {
		return fmt.Errorf("target: %s: paired loads enabled with WordSize %d, want positive", m.label(), m.WordSize)
	}
	for i := range m.Limits {
		l := &m.Limits[i]
		if l.Operand < 0 {
			return fmt.Errorf("target: %s: limit %s: negative operand index %d", m.label(), l.label(i), l.Operand)
		}
		if l.MinImmBits < 0 {
			return fmt.Errorf("target: %s: limit %s: negative MinImmBits %d", m.label(), l.label(i), l.MinImmBits)
		}
		if l.FixupCost < 0 {
			return fmt.Errorf("target: %s: limit %s: negative FixupCost %g", m.label(), l.label(i), l.FixupCost)
		}
		if len(l.Regs) == 0 {
			return fmt.Errorf("target: %s: limit %s: empty allowed-register subset", m.label(), l.label(i))
		}
		for j, r := range l.Regs {
			if r < 0 || r >= m.NumRegs {
				return fmt.Errorf("target: %s: limit %s: Regs[%d] = r%d out of range [0, %d)",
					m.label(), l.label(i), j, r, m.NumRegs)
			}
		}
	}
	return nil
}

// label names the machine in diagnostics, tolerating an unset Name.
func (m *Machine) label() string {
	if m.Name != "" {
		return m.Name
	}
	return "machine"
}

// label names the limit in diagnostics, tolerating an unset Name.
func (l *Limit) label(i int) string {
	if l.Name != "" {
		return l.Name
	}
	return fmt.Sprintf("#%d", i)
}
