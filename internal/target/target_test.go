package target

import (
	"strings"
	"testing"

	"prefcolor/internal/ir"
)

func TestUsageModelShape(t *testing.T) {
	for _, k := range []int{16, 24, 32} {
		m := UsageModel(k)
		if m.NumRegs != k {
			t.Errorf("k=%d: NumRegs = %d", k, m.NumRegs)
		}
		if got := len(m.VolatileRegs()); got != k/2 {
			t.Errorf("k=%d: %d volatile registers, want %d", k, got, k/2)
		}
		if got := len(m.NonVolatileRegs()); got != k-k/2 {
			t.Errorf("k=%d: %d non-volatile registers, want %d", k, got, k-k/2)
		}
		wantParams := k / 2
		if wantParams > 8 {
			wantParams = 8
		}
		if got := len(m.ParamRegs); got != wantParams {
			t.Errorf("k=%d: %d parameter registers, want %d", k, got, wantParams)
		}
		// The paper's r1 analogue: first parameter register doubles as
		// the return register, and parameters travel in volatile regs.
		if m.RetReg != 0 || m.ParamRegs[0] != 0 {
			t.Errorf("k=%d: RetReg=%d ParamRegs[0]=%d, want 0, 0", k, m.RetReg, m.ParamRegs[0])
		}
		for _, p := range m.ParamRegs {
			if !m.IsVolatile(p) {
				t.Errorf("k=%d: parameter register r%d is not volatile", k, p)
			}
		}
		if m.PairRule != PairParity {
			t.Errorf("k=%d: PairRule = %v, want PairParity", k, m.PairRule)
		}
	}
}

func TestVolatilePartition(t *testing.T) {
	m := UsageModel(16)
	seen := map[int]bool{}
	for _, r := range m.VolatileRegs() {
		seen[r] = true
	}
	for _, r := range m.NonVolatileRegs() {
		if seen[r] {
			t.Errorf("r%d is both volatile and non-volatile", r)
		}
		seen[r] = true
	}
	if len(seen) != m.NumRegs {
		t.Errorf("partition covers %d of %d registers", len(seen), m.NumRegs)
	}
	// Out-of-range probes are non-volatile, per the field contract.
	if m.IsVolatile(-1) || m.IsVolatile(m.NumRegs+5) {
		t.Error("out-of-range register reported volatile")
	}
}

func TestPairOK(t *testing.T) {
	cases := []struct {
		rule   PairRule
		d1, d2 int
		want   bool
	}{
		{PairParity, 0, 1, true},
		{PairParity, 1, 0, true},
		{PairParity, 3, 6, true},
		{PairParity, 2, 4, false},
		{PairParity, 5, 5, false},
		{PairSequential, 4, 5, true},
		{PairSequential, 5, 4, false},
		{PairSequential, 4, 6, false},
		{PairSequential, 4, 4, false},
		{PairNone, 0, 1, false},
		{PairNone, 4, 5, false},
	}
	for _, c := range cases {
		m := &Machine{PairRule: c.rule}
		if got := m.PairOK(c.d1, c.d2); got != c.want {
			t.Errorf("rule %d PairOK(%d, %d) = %v, want %v", c.rule, c.d1, c.d2, got, c.want)
		}
	}
}

func TestCallClobbersMatchesVolatileSet(t *testing.T) {
	m := UsageModel(16)
	clob := m.CallClobbers()
	vol := m.VolatileRegs()
	if len(clob) != len(vol) {
		t.Fatalf("%d clobbers, %d volatile registers", len(clob), len(vol))
	}
	for i, r := range clob {
		if !r.IsPhys() || r.PhysNum() != vol[i] {
			t.Errorf("clobber %d = %v, want r%d", i, r, vol[i])
		}
	}
}

func TestLimitApplies(t *testing.T) {
	shl := Limit{Name: "shl-count", Op: ir.Shl, Operand: 1, Regs: []int{2}}
	in := ir.Instr{Op: ir.Shl, Defs: []ir.Reg{ir.Phys(4)}, Uses: []ir.Reg{ir.Phys(5), ir.Phys(6)}}
	r, ok := shl.Applies(&in)
	if !ok || r != ir.Phys(6) {
		t.Errorf("Applies = (%v, %v), want (r6, true)", r, ok)
	}
	if _, ok := shl.Applies(&ir.Instr{Op: ir.Shr, Uses: []ir.Reg{ir.Phys(1), ir.Phys(2)}}); ok {
		t.Error("limit applied to the wrong op")
	}
	// Operand index beyond the instruction's operand list: no match.
	if _, ok := shl.Applies(&ir.Instr{Op: ir.Shl, Uses: []ir.Reg{ir.Phys(1)}}); ok {
		t.Error("limit applied past the operand list")
	}
	def := Limit{Name: "div-result", Op: ir.Div, OperandIsDef: true, Regs: []int{0}}
	in = ir.Instr{Op: ir.Div, Defs: []ir.Reg{ir.Phys(7)}, Uses: []ir.Reg{ir.Phys(1), ir.Phys(2)}}
	if r, ok := def.Applies(&in); !ok || r != ir.Phys(7) {
		t.Errorf("def-limit Applies = (%v, %v), want (r7, true)", r, ok)
	}
}

func TestLimitAllows(t *testing.T) {
	l := Limit{Regs: []int{0, 1, 2, 3}}
	for r := 0; r < 4; r++ {
		if !l.Allows(r) {
			t.Errorf("Allows(%d) = false inside the subset", r)
		}
	}
	if l.Allows(4) || l.Allows(-1) {
		t.Error("Allows accepted a register outside the subset")
	}
}

func TestLimitMinImmBits(t *testing.T) {
	l := Limit{Op: ir.AddImm, Operand: 0, MinImmBits: 14, Regs: []int{0, 1, 2, 3}}
	small := ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ir.Phys(1)}, Uses: []ir.Reg{ir.Phys(5)}, Imm: 100}
	if _, ok := l.Applies(&small); ok {
		t.Error("limit activated for a short-form immediate")
	}
	// Signed 14-bit range is [-8192, 8191]; both boundaries inclusive.
	for _, imm := range []int64{8191, -8192} {
		in := small
		in.Imm = imm
		if _, ok := l.Applies(&in); ok {
			t.Errorf("limit activated for fitting immediate %d", imm)
		}
	}
	for _, imm := range []int64{8192, -8193} {
		in := small
		in.Imm = imm
		r, ok := l.Applies(&in)
		if !ok || r != ir.Phys(5) {
			t.Errorf("limit missed large immediate %d: (%v, %v)", imm, r, ok)
		}
	}
}

func TestX86LikeLimits(t *testing.T) {
	m := X86Like(16)
	if m.PairRule != PairNone {
		t.Error("x86 model has paired loads")
	}
	byName := map[string]*Limit{}
	for i := range m.Limits {
		byName[m.Limits[i].Name] = &m.Limits[i]
	}
	for _, want := range []string{"shl-count", "shr-count", "load-low", "div-result"} {
		if byName[want] == nil {
			t.Fatalf("missing limit %q", want)
		}
	}
	if l := byName["load-low"]; len(l.Regs) != 4 || !l.Allows(3) || l.Allows(4) {
		t.Errorf("load-low subset = %v, want the low quarter [0,4)", l.Regs)
	}
	if l := byName["shl-count"]; !l.Allows(2) || l.Allows(1) {
		t.Errorf("shl-count subset = %v, want exactly {2}", l.Regs)
	}
}

func TestS390LikeAndFigure7(t *testing.T) {
	s := S390Like(16)
	if s.PairRule != PairSequential {
		t.Error("S390Like is not sequential-paired")
	}
	f7 := Figure7Machine()
	if f7.NumRegs != 3 {
		t.Errorf("Figure7Machine has %d registers, want 3", f7.NumRegs)
	}
	if !f7.IsVolatile(0) || !f7.IsVolatile(1) || f7.IsVolatile(2) {
		t.Error("Figure7Machine volatility should be {r0, r1} volatile, r2 not")
	}
	if f7.PairRule != PairParity {
		t.Error("Figure7Machine pairs by parity")
	}
}

// TestLimitAppliesNegativeOperand: a negative operand index used to
// panic indexing ops[l.Operand]; Applies must defensively decline
// (Machine.Validate separately rejects the description).
func TestLimitAppliesNegativeOperand(t *testing.T) {
	l := Limit{Name: "bogus", Op: ir.Shl, Operand: -1, Regs: []int{2}}
	in := ir.Instr{Op: ir.Shl, Defs: []ir.Reg{ir.Phys(4)}, Uses: []ir.Reg{ir.Phys(5), ir.Phys(6)}}
	if r, ok := l.Applies(&in); ok {
		t.Errorf("Applies = (%v, true) for a negative operand index, want no match", r)
	}
	ld := Limit{Name: "bogus-def", Op: ir.Div, OperandIsDef: true, Operand: -3, Regs: []int{0}}
	if r, ok := ld.Applies(&ir.Instr{Op: ir.Div, Defs: []ir.Reg{ir.Phys(1)}, Uses: []ir.Reg{ir.Phys(2), ir.Phys(3)}}); ok {
		t.Errorf("def-side Applies = (%v, true) for a negative operand index, want no match", r)
	}
}

// TestFitsSignedBoundaries pins fitsSigned at the shift-overflow
// boundary: at bits=63 the limit still discriminates, and at bits>=64
// every int64 fits — 1<<63 used to overflow to zero, so no immediate
// ever "fit" and the limit silently always fired.
func TestFitsSignedBoundaries(t *testing.T) {
	const min63, max63 = -(int64(1) << 62), int64(1)<<62 - 1
	cases := []struct {
		bits int
		v    int64
		want bool
	}{
		{63, max63, true},
		{63, min63, true},
		{63, max63 + 1, false},
		{63, min63 - 1, false},
		{64, int64(^uint64(0) >> 1), true},    // MaxInt64
		{64, -int64(^uint64(0)>>1) - 1, true}, // MinInt64
		{64, 0, true},
		{65, 42, true},
		{14, 8191, true},
		{14, 8192, false},
	}
	for _, c := range cases {
		if got := fitsSigned(c.v, c.bits); got != c.want {
			t.Errorf("fitsSigned(%d, %d) = %v, want %v", c.v, c.bits, got, c.want)
		}
	}
}

// TestLimitMinImmBits64 is the end-to-end view of the fitsSigned fix:
// a 64-bit immediate field accommodates every immediate, so the limit
// must never activate.
func TestLimitMinImmBits64(t *testing.T) {
	l := Limit{Op: ir.AddImm, Operand: 0, MinImmBits: 64, Regs: []int{0}}
	for _, imm := range []int64{0, 1, -1, 1 << 40, int64(^uint64(0) >> 1)} {
		in := ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ir.Phys(1)}, Uses: []ir.Reg{ir.Phys(5)}, Imm: imm}
		if r, ok := l.Applies(&in); ok {
			t.Errorf("64-bit-field limit activated for immediate %d (operand %v)", imm, r)
		}
	}
}

func TestMachineValidate(t *testing.T) {
	valid := func() *Machine { return UsageModel(8) }
	cases := []struct {
		name    string
		mutate  func(*Machine)
		wantSub string
	}{
		{"stock-usage", func(*Machine) {}, ""},
		{"zero-regs", func(m *Machine) { m.NumRegs = 0; m.Volatile = nil; m.ParamRegs = nil }, "NumRegs"},
		{"negative-regs", func(m *Machine) { m.NumRegs = -4 }, "NumRegs"},
		{"unencodable-regs", func(m *Machine) { m.NumRegs = 300 }, "encodable"},
		{"volatile-too-long", func(m *Machine) { m.Volatile = make([]bool, 9) }, "Volatile"},
		{"retreg-high", func(m *Machine) { m.RetReg = 8 }, "RetReg"},
		{"retreg-negative", func(m *Machine) { m.RetReg = -1 }, "RetReg"},
		{"param-out-of-range", func(m *Machine) { m.ParamRegs = []int{0, 8} }, "ParamRegs"},
		{"param-negative", func(m *Machine) { m.ParamRegs = []int{-2} }, "ParamRegs"},
		{"param-duplicate", func(m *Machine) { m.ParamRegs = []int{0, 1, 0} }, "repeats"},
		{"bad-pair-rule", func(m *Machine) { m.PairRule = PairSequential + 1 }, "PairRule"},
		{"paired-zero-wordsize", func(m *Machine) { m.WordSize = 0 }, "WordSize"},
		{"limit-negative-operand", func(m *Machine) {
			m.Limits = []Limit{{Name: "neg", Op: ir.Shl, Operand: -1, Regs: []int{2}}}
		}, "operand"},
		{"limit-negative-immbits", func(m *Machine) {
			m.Limits = []Limit{{Name: "bits", Op: ir.AddImm, MinImmBits: -14, Regs: []int{0}}}
		}, "MinImmBits"},
		{"limit-negative-cost", func(m *Machine) {
			m.Limits = []Limit{{Name: "cost", Op: ir.Shl, Operand: 1, Regs: []int{2}, FixupCost: -1}}
		}, "FixupCost"},
		{"limit-empty-subset", func(m *Machine) {
			m.Limits = []Limit{{Name: "empty", Op: ir.Shl, Operand: 1}}
		}, "empty"},
		{"limit-reg-out-of-range", func(m *Machine) {
			m.Limits = []Limit{{Name: "range", Op: ir.Shl, Operand: 1, Regs: []int{2, 8}}}
		}, "Regs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := valid()
			c.mutate(m)
			err := m.Validate()
			if c.wantSub == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted a %s machine", c.name)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Validate() = %q, want mention of %q", err, c.wantSub)
			}
		})
	}
	var nilMachine *Machine
	if err := nilMachine.Validate(); err == nil {
		t.Error("Validate() accepted a nil machine")
	}
}

// TestStockMachinesValidate: every machine constructor in the package
// must produce a description that passes its own validator.
func TestStockMachinesValidate(t *testing.T) {
	machines := []*Machine{
		UsageModel(6), UsageModel(16), UsageModel(24), UsageModel(32),
		Figure7Machine(), S390Like(8), S390Like(24),
		X86Like(8), X86Like(16), UsageModel(16).WithIA64AddImmLimit(),
		X86Like(16).WithIA64AddImmLimit(),
	}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestWithIA64AddImmLimit(t *testing.T) {
	m := UsageModel(16).WithIA64AddImmLimit()
	var addl *Limit
	for i := range m.Limits {
		if m.Limits[i].Name == "ia64-addl" {
			addl = &m.Limits[i]
		}
	}
	if addl == nil {
		t.Fatal("ia64-addl limit not appended")
	}
	in := ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ir.Phys(1)}, Uses: []ir.Reg{ir.Phys(9)}, Imm: 1 << 20}
	if r, ok := addl.Applies(&in); !ok || r != ir.Phys(9) {
		t.Errorf("large-immediate addimm not constrained: (%v, %v)", r, ok)
	}
	if !addl.Allows(3) || addl.Allows(4) {
		t.Error("addl subset should be the first four registers")
	}
}
