// Package target models the register file and calling convention the
// allocators color against: how many registers exist, which are
// volatile (caller-saved) versus non-volatile (callee-saved), where
// parameters and results travel, the machine's paired-load rule
// (the paper's "dependent register usage", §3.1), and any
// limited-register-usage constraints (the paper's second preference
// kind: operands that strongly prefer a register subset, like x86
// shift counts in CL).
package target

import (
	"fmt"

	"prefcolor/internal/ir"
)

// PairRule says when two destination registers (d1, d2) of adjacent
// loads may fuse into one paired load.
type PairRule uint8

const (
	// PairNone disables paired loads entirely.
	PairNone PairRule = iota

	// PairParity accepts destinations of different parity (the
	// IA-64-flavored rule of the paper's worked example: Figure 7
	// honors the pair with an odd/even register combination).
	PairParity

	// PairSequential requires strictly consecutive destinations,
	// second = first + 1 (the S/390- and Power-like rule of §3.1).
	PairSequential
)

// Machine is one register-file and calling-convention model. Fields
// are exported and freely overridable: the examples shrink NumRegs and
// reshape Volatile to build the paper's three-register teaching
// machine out of the stock usage model.
type Machine struct {
	// Name labels the model in tool output.
	Name string

	// NumRegs is the number of allocatable machine registers
	// (the paper's K; its experiments use 16, 24, and 32).
	NumRegs int

	// Volatile[r] reports that register r is caller-saved (clobbered
	// by calls). Registers at or beyond len(Volatile) are treated as
	// non-volatile.
	Volatile []bool

	// ParamRegs lists the registers carrying the first arguments, in
	// order. RetReg carries the return value (and doubles as the first
	// parameter register in the usage model, like the paper's r1).
	ParamRegs []int
	RetReg    int

	// WordSize is the byte distance between paired-load offsets.
	WordSize int64

	// PairRule is the machine's paired-load destination constraint.
	PairRule PairRule

	// Limits are the machine's limited-register-usage constraints.
	Limits []Limit
}

// IsVolatile reports whether register r is caller-saved.
func (m *Machine) IsVolatile(r int) bool {
	return r >= 0 && r < len(m.Volatile) && m.Volatile[r]
}

// VolatileRegs returns the caller-saved register numbers in order.
func (m *Machine) VolatileRegs() []int {
	var out []int
	for r := 0; r < m.NumRegs; r++ {
		if m.IsVolatile(r) {
			out = append(out, r)
		}
	}
	return out
}

// NonVolatileRegs returns the callee-saved register numbers in order.
func (m *Machine) NonVolatileRegs() []int {
	var out []int
	for r := 0; r < m.NumRegs; r++ {
		if !m.IsVolatile(r) {
			out = append(out, r)
		}
	}
	return out
}

// PairOK reports whether destinations (d1, d2), in load order, satisfy
// the machine's paired-load rule.
func (m *Machine) PairOK(d1, d2 int) bool {
	switch m.PairRule {
	case PairParity:
		return d1%2 != d2%2
	case PairSequential:
		return d2 == d1+1
	}
	return false
}

// CallClobbers returns the physical registers every call destroys —
// the volatile set — as IR registers, for the interpreter.
func (m *Machine) CallClobbers() []ir.Reg {
	var out []ir.Reg
	for _, r := range m.VolatileRegs() {
		out = append(out, ir.Phys(r))
	}
	return out
}

// UsageModel returns the paper's IA-64-like model with k registers:
// the lower half volatile, up to eight parameter registers, r0
// doubling as first parameter and return register, and
// parity-constrained paired loads.
func UsageModel(k int) *Machine {
	m := &Machine{
		Name:     fmt.Sprintf("usage%d", k),
		NumRegs:  k,
		Volatile: make([]bool, k),
		RetReg:   0,
		WordSize: 4,
		PairRule: PairParity,
	}
	nVol := k / 2
	for r := 0; r < nVol; r++ {
		m.Volatile[r] = true
	}
	nParams := nVol
	if nParams > 8 {
		nParams = 8
	}
	for r := 0; r < nParams; r++ {
		m.ParamRegs = append(m.ParamRegs, r)
	}
	return m
}

// Figure7Machine returns the three-register machine of the paper's
// worked example (Figure 7): r0 and r1 volatile (r0 = first argument
// and return register, r1 = second argument), r2 non-volatile, and
// paired loads requiring destinations of different parity.
func Figure7Machine() *Machine {
	return &Machine{
		Name:      "figure7",
		NumRegs:   3,
		Volatile:  []bool{true, true, false},
		ParamRegs: []int{0, 1},
		RetReg:    0,
		WordSize:  4,
		PairRule:  PairParity,
	}
}

// S390Like returns a model whose paired loads require strictly
// sequential destination registers (S/390- and Power-like, §3.1).
func S390Like(k int) *Machine {
	m := UsageModel(k)
	m.Name = fmt.Sprintf("s390-%d", k)
	m.PairRule = PairSequential
	return m
}

// X86Like returns an x86-flavored model with the paper's §3.1 limited
// register usages — shift counts in the CL-like register r2, loads
// into the byte-addressable low quarter of the file, division results
// in the EAX-like register r0 — and no paired loads.
func X86Like(k int) *Machine {
	m := UsageModel(k)
	m.Name = fmt.Sprintf("x86-%d", k)
	m.PairRule = PairNone
	lowQuarter := make([]int, 0, k/4)
	for r := 0; r < k/4; r++ {
		lowQuarter = append(lowQuarter, r)
	}
	m.Limits = []Limit{
		{Name: "shl-count", Op: ir.Shl, Operand: 1, Regs: []int{2}, FixupCost: 1},
		{Name: "shr-count", Op: ir.Shr, Operand: 1, Regs: []int{2}, FixupCost: 1},
		{Name: "load-low", Op: ir.Load, OperandIsDef: true, Regs: lowQuarter, FixupCost: 1},
		{Name: "div-result", Op: ir.Div, OperandIsDef: true, Regs: []int{0}, FixupCost: 1},
	}
	return m
}

// WithIA64AddImmLimit appends the IA-64 large-immediate add
// constraint: an addimm whose immediate does not fit the short
// 14-bit form may only read its source from the first four registers
// (the 22-bit form's restricted source field). It returns m for
// chaining.
func (m *Machine) WithIA64AddImmLimit() *Machine {
	m.Limits = append(m.Limits, Limit{
		Name: "ia64-addl", Op: ir.AddImm, Operand: 0,
		MinImmBits: 14, Regs: []int{0, 1, 2, 3}, FixupCost: 1,
	})
	return m
}
