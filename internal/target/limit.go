package target

import "prefcolor/internal/ir"

// Limit is one limited-register-usage constraint (the paper's second
// preference kind, §3.1): a particular operand of a particular
// instruction kind prefers a subset of the register file, and landing
// outside the subset costs FixupCost extra cycles per execution
// (modeling the move the backend would insert).
type Limit struct {
	// Name labels the constraint in tool output.
	Name string

	// Op is the constrained instruction kind.
	Op ir.Op

	// The constrained operand: Defs[Operand] when OperandIsDef,
	// Uses[Operand] otherwise.
	OperandIsDef bool
	Operand      int

	// MinImmBits, when positive, activates the limit only for
	// instructions whose immediate does not fit a signed MinImmBits-bit
	// field (the IA-64 large-immediate add case).
	MinImmBits int

	// Regs is the allowed register subset.
	Regs []int

	// FixupCost is the per-execution cycle penalty of violating the
	// limit.
	FixupCost float64
}

// Applies reports whether the limit constrains instruction in, and if
// so returns the constrained register operand. A limit with an
// out-of-range Operand (including a negative one, which
// Machine.Validate rejects) never applies.
func (l *Limit) Applies(in *ir.Instr) (ir.Reg, bool) {
	if in.Op != l.Op {
		return ir.NoReg, false
	}
	if l.MinImmBits > 0 && fitsSigned(in.Imm, l.MinImmBits) {
		return ir.NoReg, false
	}
	ops := in.Uses
	if l.OperandIsDef {
		ops = in.Defs
	}
	if l.Operand < 0 || l.Operand >= len(ops) {
		return ir.NoReg, false
	}
	return ops[l.Operand], true
}

// Allows reports whether register r is in the limit's allowed subset.
func (l *Limit) Allows(r int) bool {
	for _, a := range l.Regs {
		if a == r {
			return true
		}
	}
	return false
}

// fitsSigned reports whether v fits a signed bits-wide immediate.
// Every int64 fits a field of 64 or more bits; without the guard the
// shift below would overflow to zero at bits=64 (and is undefined
// beyond), making no immediate ever "fit" so the limit always fired.
func fitsSigned(v int64, bits int) bool {
	if bits >= 64 {
		return true
	}
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}
