package scratch

import (
	"sync"
	"testing"
)

func TestSliceGrowsAndZeroes(t *testing.T) {
	s := Slice[int](nil, 4)
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
	for i := range s {
		s[i] = i + 1
	}
	// Shrinking within capacity must reuse the backing array and zero
	// the requested prefix.
	s2 := Slice(s, 2)
	if len(s2) != 2 || cap(s2) != cap(s) {
		t.Fatalf("len=%d cap=%d, want len=2 cap=%d", len(s2), cap(s2), cap(s))
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("s2[%d] = %d, want 0 (stale value observed)", i, v)
		}
	}
	// Growing past capacity allocates fresh (zeroed) storage.
	s3 := Slice(s2, 100)
	if len(s3) != 100 {
		t.Fatalf("len = %d, want 100", len(s3))
	}
	for i, v := range s3 {
		if v != 0 {
			t.Fatalf("s3[%d] = %d, want 0", i, v)
		}
	}
}

func TestSliceZeroLength(t *testing.T) {
	s := Slice[string](nil, 0)
	if len(s) != 0 {
		t.Fatalf("len = %d, want 0", len(s))
	}
}

func TestFillSetsEveryElement(t *testing.T) {
	s := Fill[int](nil, 3, -1)
	for i, v := range s {
		if v != -1 {
			t.Fatalf("s[%d] = %d, want -1", i, v)
		}
	}
	// Reuse within capacity: every element reset, stale values gone.
	s[0] = 99
	s2 := Fill(s[:1], 3, 7)
	if &s2[0] != &s[0] {
		t.Fatal("Fill within capacity did not reuse the backing array")
	}
	for i, v := range s2 {
		if v != 7 {
			t.Fatalf("s2[%d] = %d, want 7", i, v)
		}
	}
}

func TestRowsResetKeepsRowCapacity(t *testing.T) {
	rows := Rows[int](nil, 3)
	if len(rows) != 3 {
		t.Fatalf("len = %d, want 3", len(rows))
	}
	rows[1] = append(rows[1], 1, 2, 3)
	kept := cap(rows[1])
	rows = Rows(rows, 2)
	if len(rows) != 2 {
		t.Fatalf("len = %d, want 2", len(rows))
	}
	if len(rows[1]) != 0 || cap(rows[1]) != kept {
		t.Fatalf("row 1: len=%d cap=%d, want len=0 cap=%d (capacity must survive reset)",
			len(rows[1]), cap(rows[1]), kept)
	}
	// Growing appends empty rows and preserves the existing ones'
	// backing arrays.
	rows[1] = append(rows[1], 9)
	grown := Rows(rows, 5)
	if len(grown) != 5 {
		t.Fatalf("len = %d, want 5", len(grown))
	}
	for i, r := range grown {
		if len(r) != 0 {
			t.Fatalf("row %d not emptied", i)
		}
	}
	if cap(grown[1]) != kept {
		t.Fatalf("row 1 capacity lost on grow: %d, want %d", cap(grown[1]), kept)
	}
}

// TestConcurrentIndependentUse runs the helpers from many goroutines
// on independent buffers, the way parallel batch workers use pooled
// workspaces — under -race this pins that the package shares no
// hidden state between callers.
func TestConcurrentIndependentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ints []int
			var rows [][]int
			for i := 0; i < 200; i++ {
				n := (g+i)%17 + 1
				ints = Fill(Slice(ints, n), n, g)
				for j, v := range ints {
					if v != g {
						t.Errorf("goroutine %d: ints[%d] = %d", g, j, v)
						return
					}
				}
				rows = Rows(rows, n)
				rows[n-1] = append(rows[n-1], g)
			}
		}(g)
	}
	wg.Wait()
}
