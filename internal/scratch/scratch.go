// Package scratch holds the grow-and-clear slice helpers shared by the
// allocation workspace (regalloc.Workspace) and the per-phase scratch
// structs it aggregates. The contract everywhere is the same: resize a
// buffer to the requested length reusing its backing array when the
// capacity allows, and hand it back in a deterministic state (zeroed,
// filled, or emptied) so pooled reuse cannot observe stale values.
package scratch

// Slice returns s resized to length n with every element set to the
// zero value. The backing array is reused when cap(s) >= n.
func Slice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Fill returns s resized to length n with every element set to v,
// reusing the backing array when possible.
func Fill[T any](s []T, n int, v T) []T {
	if cap(s) < n {
		s = make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// Rows returns rows resized to n entries, each an empty slice that
// keeps whatever capacity it had from a previous use. Entries beyond
// the previous length start nil (capacity zero) and grow on demand.
func Rows[T any](rows [][]T, n int) [][]T {
	if cap(rows) < n {
		grown := make([][]T, n)
		copy(grown, rows)
		rows = grown
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}
