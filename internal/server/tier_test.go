package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// oracleDigest computes the digest a non-tiered daemon would serve for
// src under the default spec.
func oracleDigest(t *testing.T, src, allocator string) string {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := bench.NewAllocator(allocator)
	out, stats, err := regalloc.RunChecked(f, target.UsageModel(16), alloc, regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return bench.FuncDigest(f.Name, stats, out)
}

// TestTierFastThenUpgrade is the tier-mode contract end to end: the
// first response is a fast-tier allocation served inside the request,
// the background worker then re-runs pref-full, and polling the same
// request observes the cache entry atomically swapped to the full
// tier — with exactly the digest a non-tiered daemon would serve.
func TestTierFastThenUpgrade(t *testing.T) {
	_, ts := newTestServer(t, Config{Tier: true})

	resp, body := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first allocateResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Tier != "fast" {
		t.Fatalf("first response tier = %q, want fast", first.Tier)
	}
	if got := resp.Header.Get(TierHeader); got != "fast" {
		t.Fatalf("%s = %q, want fast", TierHeader, got)
	}
	if first.Stats.Allocator != "linearscan" {
		t.Fatalf("fast-tier allocator = %q, want linearscan", first.Stats.Allocator)
	}
	if first.Cycles <= 0 {
		t.Fatalf("fast-tier cycles = %g, want > 0", first.Cycles)
	}

	// The fast answer is itself a real allocation: it matches a local
	// fast-path run bit for bit.
	f, err := ir.Parse(smallFunc)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := linearscan.Run(f, target.UsageModel(16), linearscan.RunOptions{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := bench.FuncDigest(f.Name, stats, out); first.Digest != want {
		t.Fatalf("fast-tier digest = %s, want %s", first.Digest, want)
	}

	// Poll until the background upgrade swaps the entry.
	var full allocateResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &full); err != nil {
			t.Fatal(err)
		}
		if full.Tier == "full" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry never upgraded; last tier %q", full.Tier)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := resp.Header.Get(TierHeader); got != "full" {
		t.Fatalf("%s = %q, want full", TierHeader, got)
	}
	if !full.Cached {
		t.Error("upgraded response not served from cache")
	}
	if full.Stats.Allocator != "pref-full" {
		t.Errorf("upgraded allocator = %q, want pref-full", full.Stats.Allocator)
	}
	if want := oracleDigest(t, smallFunc, "pref-full"); full.Digest != want {
		t.Errorf("upgraded digest = %s, want the non-tiered oracle's %s", full.Digest, want)
	}

	// The escalation shows up on /metrics.
	mresp, mbody := get(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	for _, want := range []string{
		`prefgcd_tier_served_total{tier="fast"}`,
		`prefgcd_tier_served_total{tier="full"}`,
		"prefgcd_tier_upgrades_total 1",
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestTierScope pins which requests tier: only cacheable pref-full
// ones. An explicit baseline allocator and a no_cache request both
// take the ordinary path and carry no tier.
func TestTierScope(t *testing.T) {
	_, ts := newTestServer(t, Config{Tier: true})
	for _, req := range []allocateRequest{
		{Spec: Spec{Allocator: "chaitin"}, Source: smallFunc},
		{Spec: Spec{NoCache: true}, Source: smallFunc},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/allocate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var r allocateResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if r.Tier != "" {
			t.Errorf("%+v: tier = %q, want none", req.Spec, r.Tier)
		}
		if h := resp.Header.Get(TierHeader); h != "" {
			t.Errorf("%+v: header %s = %q, want unset", req.Spec, TierHeader, h)
		}
	}
}

// TestTierDrainStopsUpgrades pins the drain interaction: a draining
// server admits no new upgrade jobs, and Close returns promptly even
// with the upgrade worker mid-flight.
func TestTierDrainStopsUpgrades(t *testing.T) {
	s := New(Config{Tier: true})
	defer s.Close()
	s.StartDrain()
	key := Key{1}
	s.enqueueUpgrade(key, srcInput{text: smallFunc}, Spec{}, target.UsageModel(16), 1)
	if d, _ := s.upgradeDepth(); d != 0 {
		t.Fatalf("draining server queued an upgrade (depth %d)", d)
	}
	s.upgrades.pmu.Lock()
	pending := len(s.upgrades.pending)
	s.upgrades.pmu.Unlock()
	if pending != 0 {
		t.Fatalf("draining server left %d pending upgrade keys", pending)
	}
}

// TestTierUpgradeHotFirst pins the queue's escalation order: the
// worker pops the pending job whose cache entry has served the most
// hits, so one hot key enqueued behind a cold backlog upgrades first,
// while untouched keys keep their arrival (FIFO) order.
func TestTierUpgradeHotFirst(t *testing.T) {
	u := &upgrader{qcap: 8, notify: make(chan struct{}, 1), pending: map[Key]struct{}{}}
	cache := newLRUCache(8)
	for i := 0; i < 5; i++ {
		key := Key{byte(i)}
		cache.Add(key, &entry{Tier: tierFast})
		if !u.push(upgradeJob{key: key}) {
			t.Fatalf("push %d shed below capacity", i)
		}
	}
	// Key 3 arrives last in hit order but hottest: poll it a few times.
	hot := Key{3}
	for i := 0; i < 3; i++ {
		if _, ok := cache.Get(hot); !ok {
			t.Fatal("hot entry missing")
		}
	}
	if got := cache.Hits(hot); got != 3 {
		t.Fatalf("Hits(hot) = %d, want 3", got)
	}

	var order []byte
	for {
		job, ok := u.pop(cache.Hits)
		if !ok {
			break
		}
		order = append(order, job.key[0])
	}
	want := []byte{3, 0, 1, 2, 4}
	if string(order) != string(want) {
		t.Fatalf("pop order = %v, want hot key 3 first then FIFO %v", order, want)
	}
	if d := len(u.queue); d != 0 {
		t.Fatalf("queue not drained: %d left", d)
	}

	// Shedding: a full queue rejects the push.
	u.qcap = 1
	if !u.push(upgradeJob{key: Key{9}}) {
		t.Fatal("push into empty queue shed")
	}
	if u.push(upgradeJob{key: Key{10}}) {
		t.Fatal("push above capacity accepted")
	}
}

// TestTrustKeyHeader pins the trusted-key fast path: with
// Config.TrustKeyHeader on, a request carrying the router-computed
// X-Prefgcd-Key header probes the cache without the replica parsing
// the body at all — proven by hitting the cache with a body the parser
// would reject.
func TestTrustKeyHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{TrustKeyHeader: true})

	resolver := NewKeyResolver(0)
	canon, _, err := resolver.ResolveText(smallFunc)
	if err != nil {
		t.Fatal(err)
	}
	keyHdr := EncodeKeyHeader(canon)

	post := func(body string) (*http.Response, allocateResponse) {
		t.Helper()
		buf, _ := json.Marshal(allocateRequest{Source: body})
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate", strings.NewReader(string(buf)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(KeyHeader, keyHdr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r allocateResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				t.Fatal(err)
			}
		}
		return resp, r
	}

	resp, first := post(smallFunc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Same trusted key, unparseable body: the cache-hit path never
	// parses, so this must serve the cached entry.
	resp, second := post("func broken(")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trusted-key cache hit status %d", resp.StatusCode)
	}
	if !second.Cached || second.Digest != first.Digest {
		t.Fatalf("trusted-key request not served from cache (cached=%v digest match=%v)",
			second.Cached, second.Digest == first.Digest)
	}
	// A malformed header falls back to body resolution.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/allocate",
		strings.NewReader(`{"source":"func broken("}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(KeyHeader, "zz")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key + broken body: status %d, want 400", resp2.StatusCode)
	}
}
