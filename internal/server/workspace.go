package server

import (
	"sync"
	"sync/atomic"

	"prefcolor/internal/regalloc"
)

// wsPool hands out regalloc workspaces to allocation jobs. Workspaces
// are cleared on borrow by the driver, so they go back dirty; the pool
// only bounds how many live at once (roughly the worker count, since a
// job holds one for exactly the duration of its Run). The counters
// feed the /metrics hit-rate: a get that found a pooled workspace cost
// nothing, a get that had to construct one (news) will pay the arena's
// grow-to-steady-state allocations during its Run.
type wsPool struct {
	pool sync.Pool
	gets atomic.Int64
	news atomic.Int64
}

func newWSPool() *wsPool {
	p := &wsPool{}
	p.pool.New = func() any {
		p.news.Add(1)
		return regalloc.NewWorkspace()
	}
	return p
}

func (p *wsPool) get() *regalloc.Workspace {
	p.gets.Add(1)
	return p.pool.Get().(*regalloc.Workspace)
}

func (p *wsPool) put(ws *regalloc.Workspace) { p.pool.Put(ws) }

// counters returns (gets, news) so far.
func (p *wsPool) counters() (int64, int64) {
	return p.gets.Load(), p.news.Load()
}
