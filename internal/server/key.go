package server

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"

	"prefcolor/internal/ir"
)

// KeyResolver maps request payloads — textual or binary IR — to the
// canonical content hash the cache key is built from: sha256 over the
// function's ir.EncodeBinary encoding. It memoizes raw-bytes→hash so
// repeat payloads resolve without re-parsing, exactly the memo the
// server itself keys its cache with; the cluster router uses one to
// route a request to the shard that owns its cache entry without
// disagreeing with the replica about what "the same function" means.
type KeyResolver struct {
	memo *keyMemo
}

// NewKeyResolver builds a resolver whose raw-bytes memo holds up to
// entries mappings (entries <= 0 disables memoization; every call
// then parses or decodes).
func NewKeyResolver(entries int) *KeyResolver {
	return &KeyResolver{memo: newKeyMemo(entries)}
}

// resolve canonicalizes in: it ensures in.canonHash holds the sha256
// of the function's canonical binary encoding, parsing or decoding
// the input if no memoized mapping exists yet. On a memo hit the
// input is left unparsed — the steady state stays parse-free. The
// returned int is an HTTP status code for the error, when non-nil.
func (kr *KeyResolver) resolve(in *srcInput) (int, error) {
	if in.canonKnown {
		// A trusted router already resolved this payload's identity
		// (X-Prefgcd-Key); the cache-hit path stays parse-free.
		return 0, nil
	}
	if in.f != nil && in.binary != nil {
		// Already decoded by the handler; the bytes are our own
		// canonical re-encoding.
		in.canonHash = sha256.Sum256(in.binary)
		return 0, nil
	}
	// The raw-bytes memo key is domain-separated by wire form: the
	// same bytes mean different things as text and as binary.
	h := sha256.New()
	if in.binary != nil {
		h.Write([]byte("b\x00"))
		h.Write(in.binary)
	} else {
		h.Write([]byte("t\x00"))
		h.Write([]byte(in.text))
	}
	var raw [32]byte
	h.Sum(raw[:0])
	if canon, ok := kr.memo.get(raw); ok {
		in.canonHash = canon
		return 0, nil
	}
	f, code, err := in.decode()
	if err != nil {
		return code, err
	}
	in.f = f
	in.canonHash = sha256.Sum256(ir.EncodeBinary(f))
	kr.memo.add(raw, in.canonHash)
	return 0, nil
}

// ResolveText returns the canonical content hash for a textual IR
// payload. The error, when non-nil, is a parse failure; the int is
// the HTTP status a server would answer it with.
func (kr *KeyResolver) ResolveText(src string) ([32]byte, int, error) {
	in := srcInput{text: src}
	if code, err := kr.resolve(&in); err != nil {
		return [32]byte{}, code, err
	}
	return in.canonHash, 0, nil
}

// ResolveBinary returns the canonical content hash for a binary IR
// payload (which need not be in canonical byte form itself — the
// decoder re-encodes).
func (kr *KeyResolver) ResolveBinary(b []byte) ([32]byte, int, error) {
	in := srcInput{binary: b}
	if code, err := kr.resolve(&in); err != nil {
		return [32]byte{}, code, err
	}
	return in.canonHash, 0, nil
}

// Response headers a replica stamps so routers and load generators can
// attribute work without parsing response bodies.
const (
	// ReplicaHeader names the replica that served a response (set only
	// when Config.ReplicaID is non-empty).
	ReplicaHeader = "X-Prefgcd-Replica"

	// CacheHeader reports how /v1/allocate served a 200: "hit" from
	// the result cache, "miss" computed fresh.
	CacheHeader = "X-Prefgcd-Cache"

	// TierHeader reports which tier served a 200 in tier mode: "fast"
	// (linear-scan, upgrade pending) or "full" (the request's own
	// allocator).
	TierHeader = "X-Prefgcd-Tier"

	// KeyHeader carries a function's canonical content hash
	// (hex-encoded sha256 over its ir.EncodeBinary form) from a router
	// that has already resolved it. A replica honors it only with
	// Config.TrustKeyHeader on.
	KeyHeader = "X-Prefgcd-Key"
)

// EncodeKeyHeader renders a canonical content hash as the KeyHeader
// value a router forwards.
func EncodeKeyHeader(canon [32]byte) string { return hex.EncodeToString(canon[:]) }

// DecodeKeyHeader parses a KeyHeader value; ok is false for an absent
// or malformed header (the replica then resolves the body itself).
func DecodeKeyHeader(v string) (canon [32]byte, ok bool) {
	if len(v) != 2*len(canon) {
		return canon, false
	}
	b, err := hex.DecodeString(v)
	if err != nil {
		return canon, false
	}
	copy(canon[:], b)
	return canon, true
}

// DrainingStatus is the HTTP status a draining replica answers new
// allocation work with; routers treat it as "hand this request to
// another shard", not as a client-visible failure.
const DrainingStatus = http.StatusServiceUnavailable
