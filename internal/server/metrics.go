package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prefcolor/internal/telemetry"
)

// metrics is the daemon's counter registry, rendered as Prometheus
// text exposition on /metrics. Request counters are keyed by endpoint
// and status code; allocation telemetry is merged from every completed
// job, so the phase timers and preference counters of the whole
// service lifetime are one scrape away.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint -> status code -> count
	dropped  int64                    // jobs whose deadline expired while queued
	executed int64                    // jobs actually run by the pool
	tel      telemetry.Snapshot       // merged across all completed allocations
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]map[int]int64)}
}

// CountRequest tallies one finished HTTP request.
func (m *metrics) CountRequest(endpoint string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
}

// CountDropped tallies a job abandoned in the queue past its deadline.
func (m *metrics) CountDropped() {
	m.mu.Lock()
	m.dropped++
	m.mu.Unlock()
}

// CountExecuted merges one completed allocation's telemetry.
func (m *metrics) CountExecuted(snap *telemetry.Snapshot) {
	m.mu.Lock()
	m.executed++
	m.tel.Merge(snap)
	m.mu.Unlock()
}

// Render writes the Prometheus text exposition. The server passes in
// the live queue and cache gauges so the scrape reflects the moment.
func (m *metrics) Render(queueDepth, queueCapacity, cacheEntries int,
	cacheHits, cacheMisses, cacheEvictions, flightShared int64) string {

	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	b.WriteString("# HELP prefgcd_requests_total HTTP requests by endpoint and status code.\n")
	b.WriteString("# TYPE prefgcd_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "prefgcd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[ep][c])
		}
	}

	gauge("prefgcd_queue_depth", "Admitted jobs not yet finished.", queueDepth)
	gauge("prefgcd_queue_capacity", "Admission bound of the work queue.", queueCapacity)
	gauge("prefgcd_cache_entries", "Entries resident in the result cache.", cacheEntries)
	counter("prefgcd_cache_hits_total", "Allocate requests served from the result cache.", cacheHits)
	counter("prefgcd_cache_misses_total", "Allocate requests that missed the result cache.", cacheMisses)
	counter("prefgcd_cache_evictions_total", "Entries evicted from the result cache.", cacheEvictions)
	counter("prefgcd_singleflight_shared_total", "Requests served by another request's in-flight computation.", flightShared)
	counter("prefgcd_jobs_executed_total", "Allocation jobs run by the worker pool.", m.executed)
	counter("prefgcd_jobs_deadline_dropped_total", "Queued jobs abandoned because their deadline expired before a worker picked them up.", m.dropped)

	counter("prefgcd_alloc_functions_total", "Functions allocated.", int64(m.tel.Funcs))
	counter("prefgcd_alloc_rounds_total", "Spill rounds run.", int64(m.tel.Rounds))
	counter("prefgcd_alloc_selections_total", "CPG selection steps processed.", m.tel.Selections)
	counter("prefgcd_alloc_select_spills_total", "Selections spilled for want of a candidate register.", m.tel.SelectSpills)
	counter("prefgcd_alloc_active_spills_total", "Would-rather-be-in-memory active spills.", m.tel.ActiveSpills)
	counter("prefgcd_alloc_recolors_total", "Recoloring plans applied.", m.tel.Recolors)

	b.WriteString("# HELP prefgcd_alloc_phase_wall_seconds Cumulative wall time per allocation phase.\n")
	b.WriteString("# TYPE prefgcd_alloc_phase_wall_seconds counter\n")
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		fmt.Fprintf(&b, "prefgcd_alloc_phase_wall_seconds{phase=%q} %g\n",
			p.String(), m.tel.Phases[p].Wall.Seconds())
	}

	b.WriteString("# HELP prefgcd_alloc_prefs_total Preference dispositions by kind and outcome.\n")
	b.WriteString("# TYPE prefgcd_alloc_prefs_total counter\n")
	for c := telemetry.PrefClass(0); c < telemetry.NumPrefClasses; c++ {
		for o := telemetry.Outcome(0); o < telemetry.NumOutcomes; o++ {
			fmt.Fprintf(&b, "prefgcd_alloc_prefs_total{kind=%q,outcome=%q} %d\n",
				c.String(), o.String(), m.tel.Prefs[c][o])
		}
	}
	return b.String()
}
