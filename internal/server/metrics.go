package server

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prefcolor/internal/telemetry"
)

// metrics is the daemon's counter registry, rendered as Prometheus
// text exposition on /metrics. Request counters are keyed by endpoint
// and status code; allocation telemetry is merged from every completed
// job, so the phase timers and preference counters of the whole
// service lifetime are one scrape away.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint -> status code -> count
	dropped  int64                    // jobs whose deadline expired while queued
	executed int64                    // jobs actually run by the pool
	tel      telemetry.Snapshot       // merged across all completed allocations

	// Tier-mode counters (all zero when tiering is off).
	tierServed      map[string]int64 // responses by serving tier
	tierUpgrades    int64            // cache entries escalated to full
	tierUpgradeFail int64            // upgrades that errored
	tierSheds       int64            // upgrades dropped by a full queue
	tierUpgradeSec  float64          // total enqueue-to-swap upgrade time
	tierFastCycles  float64          // estimated cycles of upgraded entries, fast tier
	tierFullCycles  float64          // estimated cycles of upgraded entries, full tier
}

func newMetrics() *metrics {
	return &metrics{
		requests:   make(map[string]map[int]int64),
		tierServed: make(map[string]int64),
	}
}

// CountRequest tallies one finished HTTP request.
func (m *metrics) CountRequest(endpoint string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
}

// CountDropped tallies a job abandoned in the queue past its deadline.
func (m *metrics) CountDropped() {
	m.mu.Lock()
	m.dropped++
	m.mu.Unlock()
}

// CountTierServed tallies one response by the tier that produced it.
func (m *metrics) CountTierServed(tier string) {
	m.mu.Lock()
	m.tierServed[tier]++
	m.mu.Unlock()
}

// CountTierShed tallies an upgrade dropped by a full queue.
func (m *metrics) CountTierShed() {
	m.mu.Lock()
	m.tierSheds++
	m.mu.Unlock()
}

// CountTierUpgradeFailed tallies an upgrade whose full-pipeline
// re-computation errored.
func (m *metrics) CountTierUpgradeFailed() {
	m.mu.Lock()
	m.tierUpgradeFail++
	m.mu.Unlock()
}

// CountTierUpgrade tallies one completed cache-entry escalation: its
// enqueue-to-swap latency and the estimated cycles of the entry before
// (fast) and after (full), the service-level quality delta.
func (m *metrics) CountTierUpgrade(elapsed time.Duration, fastCycles, fullCycles float64) {
	m.mu.Lock()
	m.tierUpgrades++
	m.tierUpgradeSec += elapsed.Seconds()
	m.tierFastCycles += fastCycles
	m.tierFullCycles += fullCycles
	m.mu.Unlock()
}

// CountExecuted merges one completed allocation's telemetry.
func (m *metrics) CountExecuted(snap *telemetry.Snapshot) {
	m.mu.Lock()
	m.executed++
	m.tel.Merge(snap)
	m.mu.Unlock()
}

// Render writes the Prometheus text exposition. The server passes in
// the live queue, cache, and workspace-pool gauges so the scrape
// reflects the moment.
func (m *metrics) Render(queueDepth, queueCapacity, cacheEntries int,
	cacheHits, cacheMisses, cacheEvictions, flightShared, wsGets, wsNews int64,
	upgradeDepth, upgradeCapacity int) string {

	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	b.WriteString("# HELP prefgcd_requests_total HTTP requests by endpoint and status code.\n")
	b.WriteString("# TYPE prefgcd_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "prefgcd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[ep][c])
		}
	}

	gauge("prefgcd_queue_depth", "Admitted jobs not yet finished.", queueDepth)
	gauge("prefgcd_queue_capacity", "Admission bound of the work queue.", queueCapacity)
	gauge("prefgcd_cache_entries", "Entries resident in the result cache.", cacheEntries)
	counter("prefgcd_cache_hits_total", "Allocate requests served from the result cache.", cacheHits)
	counter("prefgcd_cache_misses_total", "Allocate requests that missed the result cache.", cacheMisses)
	counter("prefgcd_cache_evictions_total", "Entries evicted from the result cache.", cacheEvictions)
	counter("prefgcd_singleflight_shared_total", "Requests served by another request's in-flight computation.", flightShared)
	counter("prefgcd_jobs_executed_total", "Allocation jobs run by the worker pool.", m.executed)
	counter("prefgcd_jobs_deadline_dropped_total", "Queued jobs abandoned because their deadline expired before a worker picked them up.", m.dropped)

	// Workspace pool economics: a "hit" is a get that found a pooled
	// arena instead of constructing one.
	counter("prefgcd_workspace_pool_gets_total", "Workspace borrows by allocation jobs.", wsGets)
	counter("prefgcd_workspace_pool_news_total", "Workspace borrows that had to construct a fresh arena.", wsNews)
	hitRate := 0.0
	if wsGets > 0 {
		hitRate = float64(wsGets-wsNews) / float64(wsGets)
	}
	fmt.Fprintf(&b, "# HELP prefgcd_workspace_pool_hit_ratio Fraction of workspace borrows served from the pool.\n"+
		"# TYPE prefgcd_workspace_pool_hit_ratio gauge\nprefgcd_workspace_pool_hit_ratio %g\n", hitRate)

	// Tiered allocation: the fast/full serving mix, the background
	// escalation pipeline, and the quality delta the fast tier trades
	// for its latency (ratio of the two cycle counters).
	b.WriteString("# HELP prefgcd_tier_served_total Responses by the tier of the allocation served.\n")
	b.WriteString("# TYPE prefgcd_tier_served_total counter\n")
	tiers := make([]string, 0, len(m.tierServed))
	for t := range m.tierServed {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	for _, t := range tiers {
		fmt.Fprintf(&b, "prefgcd_tier_served_total{tier=%q} %d\n", t, m.tierServed[t])
	}
	counter("prefgcd_tier_upgrades_total", "Cache entries escalated from fast to full tier.", m.tierUpgrades)
	counter("prefgcd_tier_upgrade_failures_total", "Upgrades whose full re-computation errored.", m.tierUpgradeFail)
	counter("prefgcd_tier_upgrade_sheds_total", "Upgrades dropped because the upgrade queue was full.", m.tierSheds)
	fmt.Fprintf(&b, "# HELP prefgcd_tier_upgrade_seconds_total Cumulative enqueue-to-swap upgrade latency.\n"+
		"# TYPE prefgcd_tier_upgrade_seconds_total counter\nprefgcd_tier_upgrade_seconds_total %g\n", m.tierUpgradeSec)
	gauge("prefgcd_tier_upgrade_queue_depth", "Upgrade jobs waiting for the background worker.", upgradeDepth)
	gauge("prefgcd_tier_upgrade_queue_capacity", "Admission bound of the upgrade queue.", upgradeCapacity)
	fmt.Fprintf(&b, "# HELP prefgcd_tier_fast_cycles_total Estimated cycles of upgraded entries as served by the fast tier.\n"+
		"# TYPE prefgcd_tier_fast_cycles_total counter\nprefgcd_tier_fast_cycles_total %g\n", m.tierFastCycles)
	fmt.Fprintf(&b, "# HELP prefgcd_tier_full_cycles_total Estimated cycles of the same entries after their full-tier upgrade.\n"+
		"# TYPE prefgcd_tier_full_cycles_total counter\nprefgcd_tier_full_cycles_total %g\n", m.tierFullCycles)

	// Process-wide memory gauges, read at scrape time (go_memstats
	// style): live heap and completed GC cycles, putting the per-job
	// allocation counters below in context.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&b, "# HELP prefgcd_heap_inuse_bytes Bytes in in-use heap spans at scrape time.\n"+
		"# TYPE prefgcd_heap_inuse_bytes gauge\nprefgcd_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(&b, "# HELP prefgcd_heap_alloc_bytes_total Cumulative bytes allocated on the heap by the process.\n"+
		"# TYPE prefgcd_heap_alloc_bytes_total counter\nprefgcd_heap_alloc_bytes_total %d\n", ms.TotalAlloc)
	counter("prefgcd_gc_cycles_total", "Completed GC cycles over the process lifetime.", int64(ms.NumGC))

	counter("prefgcd_alloc_functions_total", "Functions allocated.", int64(m.tel.Funcs))
	counter("prefgcd_alloc_rounds_total", "Spill rounds run.", int64(m.tel.Rounds))
	counter("prefgcd_alloc_selections_total", "CPG selection steps processed.", m.tel.Selections)
	counter("prefgcd_alloc_select_spills_total", "Selections spilled for want of a candidate register.", m.tel.SelectSpills)
	counter("prefgcd_alloc_active_spills_total", "Would-rather-be-in-memory active spills.", m.tel.ActiveSpills)
	counter("prefgcd_alloc_recolors_total", "Recoloring plans applied.", m.tel.Recolors)
	counter("prefgcd_alloc_heap_bytes_total", "Heap bytes charged to allocation runs (telemetry deltas; over-approximates under concurrency).", int64(m.tel.BytesAllocated))
	counter("prefgcd_alloc_gc_cycles_total", "GC cycles completed during allocation runs (telemetry deltas).", int64(m.tel.GCCycles))

	b.WriteString("# HELP prefgcd_alloc_phase_wall_seconds Cumulative wall time per allocation phase.\n")
	b.WriteString("# TYPE prefgcd_alloc_phase_wall_seconds counter\n")
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		fmt.Fprintf(&b, "prefgcd_alloc_phase_wall_seconds{phase=%q} %g\n",
			p.String(), m.tel.Phases[p].Wall.Seconds())
	}

	b.WriteString("# HELP prefgcd_alloc_prefs_total Preference dispositions by kind and outcome.\n")
	b.WriteString("# TYPE prefgcd_alloc_prefs_total counter\n")
	for c := telemetry.PrefClass(0); c < telemetry.NumPrefClasses; c++ {
		for o := telemetry.Outcome(0); o < telemetry.NumOutcomes; o++ {
			fmt.Fprintf(&b, "prefgcd_alloc_prefs_total{kind=%q,outcome=%q} %d\n",
				c.String(), o.String(), m.tel.Prefs[c][o])
		}
	}
	return b.String()
}
