package server

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Key is the content address of one allocation request: the
// SHA-256 of the function's *canonical binary encoding* plus every
// setting that can steer the allocation outcome (machine model and
// register count, allocator name, pre-allocation optimization, driver
// options). Keying on ir.EncodeBinary bytes rather than raw request
// bytes means a textual and a binary request for the same function —
// comments, whitespace, and wire format notwithstanding — share one
// LRU entry. Telemetry settings are deliberately excluded —
// collection observes without steering, so instrumented and quiet
// runs share cache entries.
type Key [sha256.Size]byte

// KeyFor derives the cache key from the canonical-encoding hash
// (sha256 over ir.EncodeBinary of the function) and the normalized
// request spec.
func KeyFor(canonHash [sha256.Size]byte, spec Spec) Key {
	return sha256.Sum256([]byte(fmt.Sprintf(
		"src=%x|machine=%s|k=%d|alloc=%s|optimize=%t|remat=%t|bls=%t|rounds=%d",
		canonHash, spec.Machine, spec.K, spec.Allocator,
		spec.Optimize, spec.Rematerialize, spec.BlockLocalSpills, spec.MaxRounds)))
}

// keyMemo remembers the canonical-encoding hash for raw request bytes
// already seen (keyed by a hash of the raw text or binary body), so
// repeat requests reach the result cache without re-parsing or
// re-decoding. It is an optimization only — a missing or evicted memo
// entry just costs one parse — and it is spec-independent, since the
// canonicalization of a function does not depend on how it will be
// allocated.
type keyMemo struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *memoItem
	items    map[[sha256.Size]byte]*list.Element
}

type memoItem struct {
	raw   [sha256.Size]byte
	canon [sha256.Size]byte
}

func newKeyMemo(capacity int) *keyMemo {
	return &keyMemo{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[[sha256.Size]byte]*list.Element),
	}
}

func (m *keyMemo) get(raw [sha256.Size]byte) ([sha256.Size]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[raw]
	if !ok {
		return [sha256.Size]byte{}, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoItem).canon, true
}

func (m *keyMemo) add(raw, canon [sha256.Size]byte) {
	if m.capacity <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[raw]; ok {
		el.Value.(*memoItem).canon = canon
		m.order.MoveToFront(el)
		return
	}
	if m.order.Len() >= m.capacity {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memoItem).raw)
	}
	m.items[raw] = m.order.PushFront(&memoItem{raw: raw, canon: canon})
}

// entry is one cached allocation outcome. Entries are immutable after
// insertion, so readers share them without copying — a tier upgrade
// swaps the whole entry via Add, never mutates one in place.
type entry struct {
	Function string    // rewritten code, textual IR
	Digest   string    // bench.FuncDigest fingerprint
	Stats    statsJSON // allocation statistics
	Tier     string    // tier mode: "fast" or "full"; else empty
	Cycles   float64   // tier mode: perfmodel cycle estimate of Function
}

// lruCache is a fixed-capacity least-recently-used result cache. A
// zero capacity disables caching (every Get misses, Add drops).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruItem
	items    map[Key]*list.Element

	hits, misses, evictions int64
}

type lruItem struct {
	key  Key
	val  *entry
	hits int64 // Get count for this entry; hotness signal for upgrades
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Get returns the cached entry for key, refreshing its recency.
func (c *lruCache) Get(key Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	it := el.Value.(*lruItem)
	it.hits++
	c.order.MoveToFront(el)
	return it.val, true
}

// Hits returns how many Gets key's entry has served — the upgrade
// queue's hotness signal. Unlike Get it neither refreshes recency nor
// counts as a hit; an absent (or evicted) key reports zero.
func (c *lruCache) Hits(key Key) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruItem).hits
	}
	return 0
}

// Add inserts (or refreshes) key's entry, evicting the least recently
// used entry when the cache is at capacity.
func (c *lruCache) Add(key Key, val *entry) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.evictions++
	}
	c.items[key] = c.order.PushFront(&lruItem{key: key, val: val})
}

// Len is the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the hit/miss/eviction totals.
func (c *lruCache) Counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// flightGroup deduplicates concurrent identical computations: the
// first caller for a key becomes the leader and computes; callers that
// arrive while the leader is in flight just wait for its result. Each
// key computes at most once per flight — the cache, not the group,
// provides cross-flight reuse.
type flightGroup struct {
	mu     sync.Mutex
	flight map[Key]*flightCall

	shared int64 // waiters served by another caller's computation
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  *entry
	err  error
	code int // HTTP status for err; 0 when val is set
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[Key]*flightCall)}
}

// join returns the in-flight call for key, creating one when absent;
// leader reports whether this caller must compute and complete it.
func (g *flightGroup) join(key Key) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.flight[key]; ok {
		g.shared++
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.flight[key] = c
	return c, true
}

// complete publishes the leader's outcome and retires the flight, so
// later callers start fresh (hitting the cache on success).
func (g *flightGroup) complete(key Key, c *flightCall, val *entry, err error, code int) {
	c.val, c.err, c.code = val, err, code
	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	close(c.done)
}

// Shared returns the number of calls that piggybacked on another
// caller's computation.
func (g *flightGroup) Shared() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shared
}
