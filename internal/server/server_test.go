package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

const smallFunc = `func small(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = mul v2, v0
  branch v3, b1, b2
b1:
  v4 = sub v3, v1
  jump b2
b2:
  ret v3
}
`

// distinctFunc returns a unique small function per i, for tests that
// must bypass the cache and single-flight dedup.
func distinctFunc(i int) string {
	return fmt.Sprintf(`func distinct%d(v0) {
b0:
  v1 = add v0, v0
  v2 = addimm v1, %d
  ret v2
}
`, i, i)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestAllocateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r allocateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("first request reported cached")
	}
	if r.Stats.Allocator != "pref-full" {
		t.Errorf("allocator = %q, want pref-full", r.Stats.Allocator)
	}

	// The served function must match a local run bit for bit.
	f, err := ir.Parse(smallFunc)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := bench.NewAllocator("pref-full")
	out, stats, err := regalloc.RunChecked(f, target.UsageModel(16), alloc, regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Function != out.String() {
		t.Errorf("served function differs from local run:\n%s\nvs\n%s", r.Function, out)
	}
	if want := bench.FuncDigest(f.Name, stats, out); r.Digest != want {
		t.Errorf("digest = %s, want %s", r.Digest, want)
	}
}

// TestCachedResponseDeterminism is the cached-vs-fresh fingerprint
// assertion: the second identical request is served from the cache and
// must carry the same bench.AllocationDigest fingerprint as a freshly
// computed allocation.
func TestCachedResponseDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := allocateRequest{Source: smallFunc, Spec: Spec{Allocator: "pref-full"}}

	_, body1 := postJSON(t, ts.URL+"/v1/allocate", req)
	_, body2 := postJSON(t, ts.URL+"/v1/allocate", req)
	var r1, r2 allocateResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second identical request was not served from the cache")
	}
	if r1.Cached {
		t.Fatal("first request claimed to be cached")
	}
	if r1.Digest != r2.Digest || r1.Function != r2.Function {
		t.Errorf("cached response diverged from computed response")
	}

	// Fresh ground truth via the bench digest over the same input.
	f, err := ir.Parse(smallFunc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := bench.AllocationDigestOpts([]*ir.Func{f}, target.UsageModel(16), "pref-full", regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := sha256Single(t, r2)
	if single != fresh {
		t.Errorf("cached digest chain %s != fresh AllocationDigest %s", single, fresh)
	}
}

// sha256Single recomputes the whole-corpus AllocationDigest from one
// served response, proving the server's per-function record composes
// into the bench digest.
func sha256Single(t *testing.T, r allocateResponse) string {
	t.Helper()
	f, err := ir.Parse(r.Function)
	if err != nil {
		t.Fatalf("served function does not re-parse: %v", err)
	}
	st := &regalloc.Stats{
		SpilledWebs: r.Stats.SpilledWebs,
		SpillLoads:  r.Stats.SpillLoads,
		SpillStores: r.Stats.SpillStores,
	}
	// FuncDigest(name, …) over a single record is AllocationDigest of
	// the singleton corpus.
	return bench.FuncDigest(f.Name, st, f)
}

func TestAllocateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  allocateRequest
	}{
		{"empty source", allocateRequest{}},
		{"parse error", allocateRequest{Source: "func broken(... xxx"}},
		{"bad allocator", allocateRequest{Source: smallFunc, Spec: Spec{Allocator: "nope"}}},
		{"bad machine", allocateRequest{Source: smallFunc, Spec: Spec{Machine: "vax"}}},
		{"bad k", allocateRequest{Source: smallFunc, Spec: Spec{K: 1}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/allocate", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
}

// TestQueueSaturation429 fills the one-worker, one-slot queue with
// gated jobs and asserts the next interactive request is refused with
// 429 and a Retry-After hint, then drains and verifies the gated work
// still completed.
func TestQueueSaturation429(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueSize: 1})
	s.hookJobStart = func() { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: distinctFunc(i)})
			codes[i] = resp.StatusCode
		}(i)
	}

	// Wait until one job occupies the worker and one the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: distinctFunc(99)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue returned %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After hint")
	}

	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("gated request %d finished with %d, want 200", i, c)
		}
	}
}

// TestDeadlineDropsQueuedJob gates the worker long enough for the
// request's 1ms budget to lapse while queued; the worker must drop the
// job without allocating and the client must see 504.
func TestDeadlineDropsQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 4})
	s.hookJobStart = func() { time.Sleep(50 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, body := postJSON(t, ts.URL+"/v1/allocate",
		allocateRequest{Source: smallFunc, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("error body %q does not mention the deadline", body)
	}
}

// TestSingleFlightHTTP sends concurrent identical requests through the
// full HTTP path and asserts the allocator ran exactly once. Run under
// -race this pins the publication of the shared result.
func TestSingleFlightHTTP(t *testing.T) {
	var jobs atomic.Int64
	gate := make(chan struct{})
	s := New(Config{Workers: 2, QueueSize: 16})
	s.hookJobStart = func() {
		jobs.Add(1)
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	const callers = 8
	var wg sync.WaitGroup
	digests := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var r allocateResponse
			if err := json.Unmarshal(body, &r); err != nil {
				t.Error(err)
				return
			}
			digests[i] = r.Digest
		}(i)
	}

	// Wait for every caller to either join the flight or (the leader)
	// start the job, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for jobs.Load() < 1 || s.flights.Shared() < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("flights never converged: jobs=%d shared=%d", jobs.Load(), s.flights.Shared())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := jobs.Load(); got != 1 {
		t.Errorf("allocator ran %d times for %d identical requests, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if digests[i] != digests[0] {
			t.Errorf("caller %d digest %s != caller 0 digest %s", i, digests[i], digests[0])
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueSize: 8})
	req := batchRequest{Functions: []string{
		distinctFunc(1), "func broken(", distinctFunc(2), distinctFunc(1),
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r batchResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(r.Results))
	}
	if r.Results[0].Error != "" || r.Results[2].Error != "" {
		t.Errorf("valid items errored: %+v / %+v", r.Results[0], r.Results[2])
	}
	if r.Results[1].Code != http.StatusBadRequest {
		t.Errorf("broken item code = %d, want 400", r.Results[1].Code)
	}
	// Items 0 and 3 are identical: same digest whichever of cache or
	// single-flight served the duplicate.
	if r.Results[0].Digest != r.Results[3].Digest {
		t.Errorf("duplicate items disagree: %s vs %s", r.Results[0].Digest, r.Results[3].Digest)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`prefgcd_requests_total{endpoint="allocate",code="200"} 2`,
		"prefgcd_cache_hits_total 1",
		"prefgcd_cache_misses_total 1",
		"prefgcd_jobs_executed_total 1",
		"prefgcd_queue_capacity 64",
		`prefgcd_alloc_phase_wall_seconds{phase="select"}`,
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = s
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server returned %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz returned %d, want 503", hresp.StatusCode)
	}
}

func TestPprofExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}
}
