package server

import (
	"context"
	"sync"
	"sync/atomic"
)

// queue is the server's bounded work queue: a fixed-capacity channel
// drained by a fixed worker pool. Admission is explicit — TrySubmit
// refuses immediately when the buffer is full, which is what turns
// overload into fast 429 responses instead of unbounded goroutine
// pile-up; Submit blocks, the backpressure variant the batch endpoint
// uses. Close stops admission and drains: queued jobs still run, so a
// SIGTERM never abandons accepted work.
type queue struct {
	jobs   chan func()
	wg     sync.WaitGroup
	active atomic.Int64 // jobs currently executing

	mu     sync.RWMutex // guards closed vs. concurrent sends
	closed bool
}

// newQueue starts a queue with the given buffer capacity and worker
// count (both forced to at least 1).
func newQueue(capacity, workers int) *queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	q := &queue{jobs: make(chan func(), capacity)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				q.active.Add(1)
				job()
				q.active.Add(-1)
			}
		}()
	}
	return q
}

// TrySubmit enqueues job if there is buffer space, and reports whether
// it was admitted. A full buffer or a closed queue refuses instantly.
func (q *queue) TrySubmit(job func()) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	select {
	case q.jobs <- job:
		return true
	default:
		return false
	}
}

// Submit enqueues job, blocking until buffer space frees or ctx is
// done. It returns ctx.Err() on cancellation and ErrQueueClosed after
// Close.
func (q *queue) Submit(ctx context.Context, job func()) error {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth is the number of admitted jobs not yet finished (buffered plus
// executing).
func (q *queue) Depth() int { return len(q.jobs) + int(q.active.Load()) }

// Capacity is the admission bound.
func (q *queue) Capacity() int { return cap(q.jobs) }

// Close stops admission, lets the workers drain every queued job, and
// returns once the pool has exited.
func (q *queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}
