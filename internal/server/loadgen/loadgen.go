// Package loadgen drives sustained concurrent traffic against a live
// prefgcd daemon from the synthetic workload corpora and reports
// throughput, latency percentiles, and cache behavior — the harness
// behind BENCH_PR3.json and the CI service smoke.
//
// Each client goroutine draws functions from the corpus with its own
// seeded RNG, posts them to /v1/allocate, and records one sample per
// request. 429 responses (the daemon's admission control shedding
// load) are counted and retried after a short backoff; any two
// responses for the same corpus item must carry the same allocation
// digest, so the generator doubles as a cross-request determinism
// check against the service's cache and single-flight paths.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/server"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// Item is one corpus entry: a named function in the textual IR plus
// its canonical binary encoding (for Options.Binary runs).
type Item struct {
	Name   string
	Source string
	Binary []byte
}

// CorpusFromProfiles serializes the named workload profiles ("all"
// for every benchmark, "large" for the stress profile, or a comma
// list like "compress,jess") into a corpus lowered for machine m.
func CorpusFromProfiles(names string, m *target.Machine) ([]Item, error) {
	var profiles []workload.Profile
	switch names {
	case "", "all":
		profiles = workload.Benchmarks()
	default:
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "large" {
				profiles = append(profiles, workload.Large())
				continue
			}
			p, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	var corpus []Item
	for _, p := range profiles {
		for _, f := range workload.Generate(p, m) {
			corpus = append(corpus, Item{
				Name:   f.Name,
				Source: f.String(),
				Binary: ir.EncodeBinary(f),
			})
		}
	}
	return corpus, nil
}

// Options configures one load run.
type Options struct {
	// BaseURL locates the daemon (e.g. "http://localhost:8377").
	BaseURL string

	// Corpus is the function pool; required.
	Corpus []Item

	// Concurrency is the client goroutine count; 0 means 4.
	Concurrency int

	// Duration bounds the run; 0 means 5s.
	Duration time.Duration

	// MaxRequests, when positive, stops the run after that many
	// requests even if Duration has not elapsed.
	MaxRequests int

	// Allocator, Machine, K, and TimeoutMS are forwarded on every
	// request (zero values let the daemon's defaults apply).
	Allocator string
	Machine   string
	K         int
	TimeoutMS int

	// Seed makes the corpus-picking sequence deterministic; 0 means 1.
	Seed int64

	// Cold sends no_cache on every request, so the daemon parses (or
	// decodes) and allocates each one from scratch — the honest
	// cold-path measurement. Canonical cache keys make comment-salting
	// tricks ineffective, so this is the only way to measure cold
	// latency against a warm daemon.
	Cold bool

	// Binary posts each function's canonical binary encoding with the
	// binary IR content type (spec parameters ride in the query)
	// instead of the JSON/text body.
	Binary bool

	// Tier drives a tier-mode daemon: responses are bucketed by the
	// X-Prefgcd-Tier header, digests are checked per (item, tier), the
	// fast→full flip of each item is timed, and every full-tier digest
	// is verified against a locally computed pref-full oracle — the
	// proof that background upgrades land exactly the allocation a
	// non-tiered daemon would have served.
	Tier bool

	// KeepResponses retains the first successful response per corpus
	// item in Report.Responses, for offline re-validation.
	KeepResponses bool

	// TargetRPS, when positive, paces the clients toward an aggregate
	// request rate instead of running closed-loop flat out — the
	// cluster-mode driver, where the question is "does the fleet hold
	// an aggregate rate through faults", not "how fast can one client
	// hammer".
	TargetRPS float64

	// Observer, when set, is called once per completed HTTP exchange
	// (any status; transport failures carry Status 0) from the client
	// goroutines. Seq is the 1-based global completion sequence — the
	// deterministic clock the cluster simulator scripts its
	// kill/drain/resurrect schedule against. The callback may block;
	// only its own worker stalls.
	Observer func(Obs)

	// Client overrides the HTTP client; nil uses a pooled default.
	Client *http.Client
}

// Obs describes one completed request to an Observer.
type Obs struct {
	Seq       int     // 1-based completion order across all clients
	Item      int     // corpus index
	Status    int     // HTTP status; 0 for transport failure
	Digest    string  // allocation digest (200 only)
	Replica   string  // X-Prefgcd-Replica header, when the daemon runs in replica mode
	CacheHit  bool    // response was served from a result cache
	LatencyMS float64 // request wall time
}

// Response is one retained allocation response.
type Response struct {
	Item     int    `json:"item"`
	Name     string `json:"name"`
	Function string `json:"function"`
	Digest   string `json:"digest"`
}

// Report is one load run's outcome. Latencies cover successful (200)
// requests only.
type Report struct {
	DurationSec   float64 `json:"duration_sec"`
	Concurrency   int     `json:"concurrency"`
	CorpusSize    int     `json:"corpus_size"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	CacheHits     int     `json:"cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Rejected429   int     `json:"rejected_429"`
	Timeouts      int     `json:"timeouts"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`

	// Hot and Cold split the successful requests by how the daemon
	// served them: hot = from the result cache, cold = computed fresh.
	// In Options.Cold runs every request is cold by construction; in
	// mixed runs the split shows the cache's contribution directly.
	Hot  Bucket `json:"hot"`
	Cold Bucket `json:"cold"`

	// DigestMismatches counts responses whose digest disagreed with an
	// earlier response for the same item — always zero for a correct
	// daemon. In tier mode the comparison is per (item, tier), since
	// the fast and full allocations of one function legitimately
	// differ.
	DigestMismatches int `json:"digest_mismatches"`

	// Tier summarizes a tier-mode run (Options.Tier only).
	Tier *TierReport `json:"tier,omitempty"`

	// Server5xx counts 5xx responses (excluding 504, reported as
	// Timeouts). A router that hands off draining and dead shards
	// correctly shows zero here even while replicas churn.
	Server5xx int `json:"server_5xx"`

	// PerReplica counts successful responses by the serving replica's
	// X-Prefgcd-Replica header — the per-shard load split when the
	// target is a cluster router (empty against a plain daemon).
	PerReplica map[string]int `json:"per_replica,omitempty"`

	// Responses holds one retained response per corpus item reached
	// during the run (only with Options.KeepResponses).
	Responses []Response `json:"-"`
}

// TierReport summarizes one tier-mode run.
type TierReport struct {
	// FastServed and FullServed count successful responses by tier.
	FastServed int `json:"fast_served"`
	FullServed int `json:"full_served"`

	// Fast covers freshly computed fast-tier responses — the latency
	// the tier exists to deliver (cache hits excluded).
	Fast Bucket `json:"fast"`

	// UpgradedItems counts corpus items observed in both tiers;
	// the upgrade percentiles time each item's fast→full flip as seen
	// from the client (first full-tier response minus first fast-tier
	// response, an over-estimate bounded by the polling rate).
	UpgradedItems int     `json:"upgraded_items"`
	UpgradeP50MS  float64 `json:"upgrade_p50_ms"`
	UpgradeP90MS  float64 `json:"upgrade_p90_ms"`
	UpgradeP99MS  float64 `json:"upgrade_p99_ms"`

	// QualityRatio is fast-tier over full-tier estimated cycles,
	// summed across upgraded items — the quality the fast tier trades
	// until its upgrade lands.
	QualityRatio float64 `json:"quality_ratio"`

	// OracleMismatches counts full-tier responses whose digest
	// disagreed with a locally computed pref-full allocation of the
	// same item — always zero for a correct daemon.
	OracleMismatches int `json:"oracle_mismatches"`
}

// Bucket summarizes one class of successful requests.
type Bucket struct {
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
}

func bucketFrom(latencies []float64, durationSec float64) Bucket {
	b := Bucket{Requests: len(latencies)}
	n := len(latencies)
	if n == 0 {
		return b
	}
	if durationSec > 0 {
		b.ThroughputRPS = float64(n) / durationSec
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 { return latencies[int(p*float64(n-1))] }
	b.LatencyP50MS = pct(0.50)
	b.LatencyP90MS = pct(0.90)
	b.LatencyP99MS = pct(0.99)
	return b
}

type allocateBody struct {
	Source    string `json:"source"`
	Machine   string `json:"machine,omitempty"`
	K         int    `json:"k,omitempty"`
	Allocator string `json:"allocator,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

type allocateReply struct {
	Function string  `json:"function"`
	Digest   string  `json:"digest"`
	Cached   bool    `json:"cached"`
	Tier     string  `json:"tier"`
	Cycles   float64 `json:"cycles"`
	Error    string  `json:"error"`
}

// Run drives the daemon until the duration elapses, the request
// budget is spent, or ctx is cancelled.
func Run(ctx context.Context, o Options) (*Report, error) {
	if len(o.Corpus) == 0 {
		return nil, fmt.Errorf("loadgen: empty corpus")
	}
	if o.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: no base URL")
	}
	concurrency := o.Concurrency
	if concurrency <= 0 {
		concurrency = 4
	}
	duration := o.Duration
	if duration <= 0 {
		duration = 5 * time.Second
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	// Tier mode verifies full-tier responses against a local pref-full
	// oracle, so it only makes sense for the allocator tiering stands
	// in for, on cacheable requests.
	var oracle map[int]string
	if o.Tier {
		if o.Allocator != "" && o.Allocator != "pref-full" {
			return nil, fmt.Errorf("loadgen: tier mode requires the pref-full allocator, got %q", o.Allocator)
		}
		if o.Cold {
			return nil, fmt.Errorf("loadgen: tier mode is incompatible with cold (no_cache disables tiering)")
		}
		spec := server.Spec{Machine: o.Machine, K: o.K}
		m, err := spec.Normalize()
		if err != nil {
			return nil, err
		}
		oracle = make(map[int]string, len(o.Corpus))
		for i, item := range o.Corpus {
			f, err := ir.Parse(item.Source)
			if err != nil {
				return nil, fmt.Errorf("loadgen: oracle parse %s: %w", item.Name, err)
			}
			alloc, err := bench.NewAllocator("pref-full")
			if err != nil {
				return nil, err
			}
			out, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
			if err != nil {
				return nil, fmt.Errorf("loadgen: oracle allocation %s: %w", item.Name, err)
			}
			oracle[i] = bench.FuncDigest(f.Name, stats, out)
		}
	}
	client := o.Client
	if client == nil {
		client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: concurrency,
			},
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var (
		mu        sync.Mutex
		latencies []float64
		hotLat    []float64
		coldLat   []float64
		rep       = Report{Concurrency: concurrency, CorpusSize: len(o.Corpus)}
		digests   = make(map[int]string)
		kept      = make(map[int]Response)
		budget    = o.MaxRequests
		seq       atomic.Int64 // global completion counter for observers

		// Tier-mode state, all guarded by mu.
		tierRep     TierReport
		fastDigests = make(map[int]string)
		fullDigests = make(map[int]string)
		firstFast   = make(map[int]time.Time)
		firstFull   = make(map[int]time.Time)
		fastCyc     = make(map[int]float64)
		fullCyc     = make(map[int]float64)
		fastLat     []float64
	)
	rep.PerReplica = make(map[string]int)
	observe := func(item, status int, digest, replica string, hit bool, ms float64) {
		if o.Observer == nil {
			return
		}
		o.Observer(Obs{
			Seq: int(seq.Add(1)), Item: item, Status: status,
			Digest: digest, Replica: replica, CacheHit: hit, LatencyMS: ms,
		})
	}
	takeBudget := func() bool {
		mu.Lock()
		defer mu.Unlock()
		if o.MaxRequests > 0 && budget <= 0 {
			return false
		}
		budget--
		rep.Requests++
		return true
	}

	reqURL := strings.TrimSuffix(o.BaseURL, "/") + "/v1/allocate"
	if o.Binary {
		// Binary requests carry the whole spec in the query; the body
		// is the function itself.
		q := url.Values{}
		if o.Machine != "" {
			q.Set("machine", o.Machine)
		}
		if o.K != 0 {
			q.Set("k", strconv.Itoa(o.K))
		}
		if o.Allocator != "" {
			q.Set("allocator", o.Allocator)
		}
		if o.TimeoutMS != 0 {
			q.Set("timeout_ms", strconv.Itoa(o.TimeoutMS))
		}
		if o.Cold {
			q.Set("no_cache", "true")
		}
		if enc := q.Encode(); enc != "" {
			reqURL += "?" + enc
		}
	}
	// Target-rate pacing: each client holds a ticker at its share of
	// the aggregate rate and waits for a tick before each request.
	// Closed-loop behavior (as fast as responses return) when unset.
	var paceEvery time.Duration
	if o.TargetRPS > 0 {
		paceEvery = time.Duration(float64(time.Second) * float64(concurrency) / o.TargetRPS)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(rng *rand.Rand) {
			defer wg.Done()
			var pacer *time.Ticker
			if paceEvery > 0 {
				pacer = time.NewTicker(paceEvery)
				defer pacer.Stop()
			}
			for runCtx.Err() == nil {
				if pacer != nil {
					select {
					case <-pacer.C:
					case <-runCtx.Done():
						return
					}
				}
				if !takeBudget() {
					return
				}
				i := rng.Intn(len(o.Corpus))
				var body []byte
				contentType := "application/json"
				if o.Binary {
					body = o.Corpus[i].Binary
					contentType = server.BinaryContentType
				} else {
					body, _ = json.Marshal(allocateBody{
						Source: o.Corpus[i].Source, Machine: o.Machine, K: o.K,
						Allocator: o.Allocator, TimeoutMS: o.TimeoutMS,
						NoCache: o.Cold,
					})
				}
				t0 := time.Now()
				req, err := http.NewRequestWithContext(runCtx, http.MethodPost, reqURL, bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					rep.Errors++
					mu.Unlock()
					continue
				}
				req.Header.Set("Content-Type", contentType)
				resp, err := client.Do(req)
				if err != nil {
					if runCtx.Err() == nil {
						mu.Lock()
						rep.Errors++
						mu.Unlock()
						observe(i, 0, "", "", false, float64(time.Since(t0).Microseconds())/1000)
					}
					continue
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				elapsed := time.Since(t0)
				ms := float64(elapsed.Microseconds()) / 1000
				replica := resp.Header.Get(server.ReplicaHeader)

				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					var r allocateReply
					if err := json.Unmarshal(payload, &r); err != nil {
						rep.Errors++
						mu.Unlock()
						continue
					}
					rep.OK++
					if replica != "" {
						rep.PerReplica[replica]++
					}
					if r.Cached {
						rep.CacheHits++
						hotLat = append(hotLat, ms)
					} else {
						coldLat = append(coldLat, ms)
					}
					latencies = append(latencies, ms)
					dmap := digests
					if o.Tier {
						switch r.Tier {
						case "fast":
							dmap = fastDigests
							tierRep.FastServed++
							if _, ok := firstFast[i]; !ok {
								firstFast[i] = time.Now()
							}
							if !r.Cached {
								fastLat = append(fastLat, ms)
							}
							fastCyc[i] = r.Cycles
						case "full":
							dmap = fullDigests
							tierRep.FullServed++
							if _, ok := firstFull[i]; !ok {
								firstFull[i] = time.Now()
							}
							fullCyc[i] = r.Cycles
							if want := oracle[i]; want != "" && r.Digest != want {
								tierRep.OracleMismatches++
							}
						}
					}
					if prev, ok := dmap[i]; ok && prev != r.Digest {
						rep.DigestMismatches++
					} else {
						dmap[i] = r.Digest
					}
					if o.KeepResponses {
						if _, ok := kept[i]; !ok {
							kept[i] = Response{Item: i, Name: o.Corpus[i].Name, Function: r.Function, Digest: r.Digest}
						}
					}
					mu.Unlock()
					observe(i, http.StatusOK, r.Digest, replica, r.Cached, ms)
				case http.StatusTooManyRequests:
					rep.Rejected429++
					mu.Unlock()
					observe(i, resp.StatusCode, "", replica, false, ms)
					// Brief backoff: the daemon's Retry-After hint is
					// seconds-granular, too coarse for a tight load loop.
					select {
					case <-time.After(5 * time.Millisecond):
					case <-runCtx.Done():
					}
				case http.StatusGatewayTimeout:
					rep.Timeouts++
					mu.Unlock()
					observe(i, resp.StatusCode, "", replica, false, ms)
				default:
					rep.Errors++
					if resp.StatusCode >= 500 {
						rep.Server5xx++
					}
					mu.Unlock()
					observe(i, resp.StatusCode, "", replica, false, ms)
				}
			}
		}(rand.New(rand.NewSource(seed + int64(w))))
	}
	wg.Wait()

	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.ThroughputRPS = float64(rep.OK) / rep.DurationSec
	}
	if rep.OK > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.OK)
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		pct := func(p float64) float64 { return latencies[int(p*float64(n-1))] }
		rep.LatencyP50MS = pct(0.50)
		rep.LatencyP90MS = pct(0.90)
		rep.LatencyP99MS = pct(0.99)
		rep.LatencyMaxMS = latencies[n-1]
	}
	rep.Hot = bucketFrom(hotLat, rep.DurationSec)
	rep.Cold = bucketFrom(coldLat, rep.DurationSec)
	if o.Tier {
		var upLat []float64
		var fc, fl float64
		for i, t0 := range firstFast {
			t1, ok := firstFull[i]
			if !ok {
				continue
			}
			tierRep.UpgradedItems++
			if d := t1.Sub(t0); d >= 0 {
				upLat = append(upLat, float64(d.Microseconds())/1000)
			}
			fc += fastCyc[i]
			fl += fullCyc[i]
		}
		sort.Float64s(upLat)
		if n := len(upLat); n > 0 {
			pct := func(p float64) float64 { return upLat[int(p*float64(n-1))] }
			tierRep.UpgradeP50MS = pct(0.50)
			tierRep.UpgradeP90MS = pct(0.90)
			tierRep.UpgradeP99MS = pct(0.99)
		}
		if fl > 0 {
			tierRep.QualityRatio = fc / fl
		}
		tierRep.Fast = bucketFrom(fastLat, rep.DurationSec)
		rep.Tier = &tierRep
	}
	items := make([]int, 0, len(kept))
	for i := range kept {
		items = append(items, i)
	}
	sort.Ints(items)
	for _, i := range items {
		rep.Responses = append(rep.Responses, kept[i])
	}
	return &rep, nil
}
