package loadgen

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/server"
	"prefcolor/internal/target"
)

// TestLoadgenSmoke is the end-to-end service check: a live server
// under sustained concurrent traffic from the compress corpus, with a
// deliberately tiny queue so admission control engages. It asserts
//
//   - zero hard errors and zero cross-request digest mismatches,
//   - at least one cache hit (identical requests recur),
//   - 429s observed (the queue bound was exceeded and load was shed),
//   - every retained response re-validated: regalloc.RunChecked on the
//     same input reproduces the served code and digest bit for bit, so
//     the daemon returned zero invalid allocations. The daemon runs
//     every job on a sync.Pool-recycled workspace while the reference
//     here uses fresh state, so this doubles as the borrow/return
//     invariance check under concurrent load,
//   - the workspace pool reports borrows on /metrics (pooling actually
//     engaged during the run).
func TestLoadgenSmoke(t *testing.T) {
	srv := server.New(server.Config{Workers: 1, QueueSize: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// compress functions are cheap (cache hits recur fast); the large
	// profile's are expensive enough to keep the single worker busy, so
	// the 1-slot queue saturates and 429s are guaranteed, not lucky.
	m := target.UsageModel(16)
	corpus, err := CorpusFromProfiles("compress,large", m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Options{
		BaseURL:       ts.URL,
		Corpus:        corpus,
		Concurrency:   8,
		Duration:      1200 * time.Millisecond,
		Allocator:     "pref-full",
		Seed:          42,
		KeepResponses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("requests=%d ok=%d hits=%d rejected=%d timeouts=%d errors=%d rps=%.0f p50=%.2fms p99=%.2fms",
		rep.Requests, rep.OK, rep.CacheHits, rep.Rejected429, rep.Timeouts,
		rep.Errors, rep.ThroughputRPS, rep.LatencyP50MS, rep.LatencyP99MS)

	if rep.Errors != 0 {
		t.Errorf("hard errors: %d", rep.Errors)
	}
	if rep.DigestMismatches != 0 {
		t.Errorf("digest mismatches across requests: %d", rep.DigestMismatches)
	}
	if rep.OK == 0 {
		t.Fatal("no successful requests")
	}
	if rep.CacheHits < 1 {
		t.Error("no cache hits despite recurring requests")
	}
	if rep.Rejected429 < 1 {
		t.Error("queue bound never produced a 429 under 8-way load on a 1-slot queue")
	}
	if len(rep.Responses) == 0 {
		t.Fatal("no responses retained for validation")
	}

	// Re-validate every served allocation against the full oracle.
	for _, r := range rep.Responses {
		f, err := ir.Parse(corpus[r.Item].Source)
		if err != nil {
			t.Fatalf("%s: corpus source does not parse: %v", r.Name, err)
		}
		alloc, err := bench.NewAllocator("pref-full")
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := regalloc.RunChecked(f, m, alloc, regalloc.Options{})
		if err != nil {
			t.Errorf("%s: oracle rejects reference allocation: %v", r.Name, err)
			continue
		}
		if out.String() != r.Function {
			t.Errorf("%s: served code differs from RunChecked reference", r.Name)
		}
		if want := bench.FuncDigest(f.Name, stats, out); r.Digest != want {
			t.Errorf("%s: served digest %s != reference %s", r.Name, r.Digest, want)
		}
	}

	// The workspace pool must have been exercised: every executed job
	// borrows, and with one worker the second borrow onward is a hit.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	if !strings.Contains(metrics, "prefgcd_workspace_pool_gets_total") {
		t.Error("/metrics is missing the workspace pool counters")
	}
	if strings.Contains(metrics, "prefgcd_workspace_pool_gets_total 0\n") {
		t.Error("workspace pool reports zero borrows after a loaded run")
	}
}

func TestCorpusFromProfiles(t *testing.T) {
	m := target.UsageModel(16)
	corpus, err := CorpusFromProfiles("compress,jess", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 20 { // compress has 8 functions, jess 12
		t.Errorf("corpus size %d, want 20", len(corpus))
	}
	for _, item := range corpus {
		if _, err := ir.Parse(item.Source); err != nil {
			t.Errorf("%s does not re-parse: %v", item.Name, err)
		}
	}
	if _, err := CorpusFromProfiles("nosuch", m); err == nil {
		t.Error("unknown profile accepted")
	}
	large, err := CorpusFromProfiles("large", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(large) != 40 {
		t.Errorf("large corpus size %d, want 40", len(large))
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{BaseURL: "http://x"}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Run(context.Background(), Options{Corpus: []Item{{Name: "a", Source: "b"}}}); err == nil {
		t.Error("missing base URL accepted")
	}
}

// TestRunMaxRequests pins the request budget: the run must stop at the
// budget even with time left on the clock.
func TestRunMaxRequests(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	m := target.UsageModel(16)
	corpus, err := CorpusFromProfiles("compress", m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Corpus:      corpus[:2],
		Concurrency: 2,
		Duration:    30 * time.Second,
		MaxRequests: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6 {
		t.Errorf("requests = %d, want exactly 6", rep.Requests)
	}
	if rep.DurationSec > 20 {
		t.Errorf("run took %.1fs; budget did not stop it", rep.DurationSec)
	}
}

// TestRunColdBinary exercises the cold-path measurement mode over the
// binary wire format: every request must bypass the cache (zero hits,
// all samples in the cold bucket) while digests still agree with the
// textual path.
func TestRunColdBinary(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueSize: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	m := target.UsageModel(16)
	corpus, err := CorpusFromProfiles("compress", m)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range corpus {
		if len(item.Binary) == 0 {
			t.Fatalf("%s: corpus item has no binary encoding", item.Name)
		}
	}

	// Warm the cache via the textual path first, so any cache leak into
	// the cold run would show up as a hit.
	warm, err := Run(context.Background(), Options{
		BaseURL: ts.URL, Corpus: corpus[:2], Concurrency: 2,
		Duration: 30 * time.Second, MaxRequests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 || warm.OK == 0 {
		t.Fatalf("warm-up failed: %+v", warm)
	}

	rep, err := Run(context.Background(), Options{
		BaseURL: ts.URL, Corpus: corpus[:2], Concurrency: 2,
		Duration: 30 * time.Second, MaxRequests: 8,
		Cold: true, Binary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("hard errors: %d", rep.Errors)
	}
	if rep.OK == 0 {
		t.Fatal("no successful binary requests")
	}
	if rep.CacheHits != 0 {
		t.Errorf("cold run saw %d cache hits, want 0", rep.CacheHits)
	}
	if rep.Hot.Requests != 0 {
		t.Errorf("hot bucket holds %d samples in a cold run", rep.Hot.Requests)
	}
	if rep.Cold.Requests != rep.OK {
		t.Errorf("cold bucket %d != ok %d", rep.Cold.Requests, rep.OK)
	}
	if rep.Cold.LatencyP50MS <= 0 {
		t.Error("cold bucket has no p50")
	}
	if rep.DigestMismatches != 0 {
		t.Errorf("digest mismatches: %d", rep.DigestMismatches)
	}
}
