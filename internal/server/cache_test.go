package server

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(i int) Key {
	return KeyFor(sha256.Sum256([]byte(fmt.Sprintf("func k%d() {\nb0:\n  ret r0\n}\n", i))), Spec{})
}

func testEntry(i int) *entry {
	return &entry{Function: fmt.Sprintf("f%d", i), Digest: fmt.Sprintf("d%d", i)}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(2)
	kA, kB, kC := testKey(0), testKey(1), testKey(2)
	c.Add(kA, testEntry(0))
	c.Add(kB, testEntry(1))

	// Touch A so B becomes the least recently used entry.
	if _, ok := c.Get(kA); !ok {
		t.Fatal("A missing before eviction")
	}
	c.Add(kC, testEntry(2))

	if _, ok := c.Get(kB); ok {
		t.Error("B survived eviction; LRU order ignored the Get(A) refresh")
	}
	if _, ok := c.Get(kA); !ok {
		t.Error("A evicted despite being most recently used")
	}
	if e, ok := c.Get(kC); !ok || e.Function != "f2" {
		t.Errorf("C missing or wrong after insert: %+v ok=%v", e, ok)
	}
	if n := c.Len(); n != 2 {
		t.Errorf("len = %d, want 2", n)
	}
	hits, misses, evictions := c.Counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("hits=%d misses=%d, want both non-zero", hits, misses)
	}
}

func TestLRURefreshOnAdd(t *testing.T) {
	c := newLRUCache(2)
	kA, kB, kC := testKey(0), testKey(1), testKey(2)
	c.Add(kA, testEntry(0))
	c.Add(kB, testEntry(1))
	c.Add(kA, testEntry(10)) // refresh A: B is now oldest
	c.Add(kC, testEntry(2))
	if _, ok := c.Get(kB); ok {
		t.Error("B survived; re-Add of A did not refresh recency")
	}
	if e, ok := c.Get(kA); !ok || e.Function != "f10" {
		t.Errorf("A = %+v ok=%v, want refreshed value f10", e, ok)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Add(testKey(0), testEntry(0))
	if _, ok := c.Get(testKey(0)); ok {
		t.Error("zero-capacity cache returned a hit")
	}
}

// TestFlightGroupSingleLeader floods one key from many goroutines and
// asserts exactly one caller computes per flight; run under -race this
// also exercises the publication path.
func TestFlightGroupSingleLeader(t *testing.T) {
	g := newFlightGroup()
	key := testKey(0)
	const callers = 32

	var leaders, computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			call, leader := g.join(key)
			if leader {
				leaders.Add(1)
				computes.Add(1)
				g.complete(key, call, testEntry(7), nil, 0)
			}
			<-call.done
			if call.val == nil || call.val.Function != "f7" {
				t.Errorf("caller saw %+v, want shared f7", call.val)
			}
		}()
	}
	close(start)
	wg.Wait()

	// All callers overlapped one flight window or raced into several;
	// either way every flight had exactly one computation and leaders
	// plus shared waiters account for every caller.
	if computes.Load() != leaders.Load() {
		t.Errorf("computes=%d leaders=%d", computes.Load(), leaders.Load())
	}
	if leaders.Load()+g.Shared() != callers {
		t.Errorf("leaders=%d shared=%d, want sum %d", leaders.Load(), g.Shared(), callers)
	}
	if leaders.Load() < 1 {
		t.Error("no leader at all")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	src := sha256.Sum256([]byte("func f(v0) {\nb0:\n  ret v0\n}\n"))
	base := Spec{Machine: "ia64", K: 16, Allocator: "pref-full"}
	if KeyFor(src, base) != KeyFor(src, base) {
		t.Error("identical requests produced different keys")
	}
	variants := []Spec{
		{Machine: "x86", K: 16, Allocator: "pref-full"},
		{Machine: "ia64", K: 24, Allocator: "pref-full"},
		{Machine: "ia64", K: 16, Allocator: "chaitin"},
		{Machine: "ia64", K: 16, Allocator: "pref-full", Optimize: true},
		{Machine: "ia64", K: 16, Allocator: "pref-full", Rematerialize: true},
		{Machine: "ia64", K: 16, Allocator: "pref-full", BlockLocalSpills: true},
		{Machine: "ia64", K: 16, Allocator: "pref-full", MaxRounds: 3},
	}
	seen := map[Key]bool{KeyFor(src, base): true}
	for _, v := range variants {
		k := KeyFor(src, v)
		if seen[k] {
			t.Errorf("spec %+v collided with another key", v)
		}
		seen[k] = true
	}
	if seen[KeyFor(sha256.Sum256([]byte("func g() {\nb0:\n  ret r0\n}\n")), base)] {
		t.Error("different source collided")
	}
}
