// Package server turns the allocation pipeline into a long-running
// service: an HTTP/JSON daemon exposing the preference-directed
// allocator (and every baseline) behind a bounded work queue with
// admission control, a content-addressed single-flight LRU result
// cache, and per-request deadlines that thread down to the driver's
// phase boundaries via regalloc.Options.Context.
//
// Endpoints:
//
//	POST /v1/allocate  one function (textual IR) -> rewritten code + stats
//	POST /v1/batch     many functions, backpressure instead of load-shedding
//	GET  /healthz      liveness + queue/cache gauges
//	GET  /metrics      Prometheus text exposition
//	     /debug/pprof  the standard profiling handlers
//
// Overload policy: /v1/allocate refuses instantly with 429 and a
// Retry-After hint when the queue is saturated (interactive callers
// shed load); /v1/batch blocks for queue space up to the request's
// deadline (bulk callers get backpressure).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/opt"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
)

// ErrQueueClosed reports a submission to a draining queue.
var ErrQueueClosed = errors.New("server: queue closed")

// errQueueFull reports a refused admission.
var errQueueFull = errors.New("server: queue full")

// Config sizes the daemon. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the allocation worker-pool size; 0 means 4.
	Workers int

	// QueueSize bounds the admission queue; 0 means 64.
	QueueSize int

	// CacheEntries bounds the LRU result cache; 0 means 1024, and a
	// negative value disables caching.
	CacheEntries int

	// MaxBodyBytes bounds a request body; 0 means 4 MiB.
	MaxBodyBytes int64

	// DefaultTimeout applies when a request carries no timeout_ms;
	// 0 means 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps any requested timeout; 0 means 120s.
	MaxTimeout time.Duration

	// MaxBatch bounds the functions of one /v1/batch request; 0 means
	// 256.
	MaxBatch int

	// ReplicaID, when non-empty, switches the server into replica
	// mode: every response carries the ID in the X-Prefgcd-Replica
	// header, /v1/allocate responses report cache disposition in
	// X-Prefgcd-Cache, and /healthz includes the ID — the handles a
	// cluster router needs to attribute work and track shard health.
	ReplicaID string

	// JobStartHook, when set, runs at the start of every allocation
	// job in a worker. It is a test seam: holding the hook on a
	// condition variable makes queue saturation (and therefore 429
	// admission refusals) deterministic in backpressure tests.
	JobStartHook func()

	// Tier enables tiered allocation: cacheable pref-full requests
	// are answered first by the linear-scan fast path and their cache
	// entries upgraded to the full preference-directed result in the
	// background. See tier.go.
	Tier bool

	// TierAllocator names the fast-tier algorithm; empty means
	// "linearscan" (the graph-free fast path). Any registered
	// allocator name selects a driver-based fast tier instead.
	TierAllocator string

	// UpgradeQueueSize bounds the background upgrade queue; 0 means
	// 256. A full queue sheds upgrades (the fast entry remains).
	UpgradeQueueSize int

	// TrustKeyHeader accepts the X-Prefgcd-Key request header as the
	// function's canonical content hash, skipping the parse or decode
	// the replica would otherwise need before probing its cache.
	// Enable only behind a router that computes keys the same way
	// (server.KeyResolver): a wrong header caches a result under the
	// wrong identity.
	TrustKeyHeader bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.TierAllocator == "" {
		c.TierAllocator = "linearscan"
	}
	if c.UpgradeQueueSize <= 0 {
		c.UpgradeQueueSize = 256
	}
	return c
}

// Server is the allocation service. Construct with New, serve
// Handler(), and Close to drain.
type Server struct {
	cfg        Config
	queue      *queue
	cache      *lruCache
	keys       *KeyResolver
	flights    *flightGroup
	metrics    *metrics
	workspaces *wsPool
	fastWS     sync.Pool // *linearscan.Workspace, for the fast tier
	upgrades   *upgrader
	mux        *http.ServeMux
	draining   atomic.Bool

	// hookJobStart, when set, runs at the start of every allocation
	// job — the test seam that makes queue saturation deterministic.
	hookJobStart func()
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		queue:      newQueue(cfg.QueueSize, cfg.Workers),
		cache:      newLRUCache(cfg.CacheEntries),
		keys:       NewKeyResolver(4 * cfg.CacheEntries),
		flights:    newFlightGroup(),
		metrics:    newMetrics(),
		workspaces: newWSPool(),

		hookJobStart: cfg.JobStartHook,
	}
	s.fastWS.New = func() any { return linearscan.NewFastWorkspace() }
	if cfg.Tier {
		s.startUpgrader(cfg.UpgradeQueueSize)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/allocate", s.counted("allocate", s.handleAllocate))
	s.mux.HandleFunc("POST /v1/batch", s.counted("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: admission stops (new work gets 503), every
// already-queued job runs to completion, and the worker pool exits.
func (s *Server) Close() {
	s.StartDrain()
	s.queue.Close()
	s.stopUpgrader()
}

// StartDrain begins a graceful drain without stopping the worker
// pool: /healthz flips to 503 "draining", new allocation work is
// refused with DrainingStatus, and every request already admitted —
// queued or executing — runs to completion. A cluster router that
// sees the refusal (or the health flip) hands new work to other
// shards while this replica's in-flight responses finish normally.
// Close completes the drain by also stopping the pool.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Spec is the allocation configuration shared by both
// endpoints, normalized for cache keying.
type Spec struct {
	Machine          string `json:"machine,omitempty"`   // ia64 (default), x86, s390
	K                int    `json:"k,omitempty"`         // register count, default 16
	Allocator        string `json:"allocator,omitempty"` // default pref-full
	Optimize         bool   `json:"optimize,omitempty"`  // SSA scalar opts before allocation
	Rematerialize    bool   `json:"rematerialize,omitempty"`
	BlockLocalSpills bool   `json:"block_local_spills,omitempty"`
	MaxRounds        int    `json:"max_rounds,omitempty"`

	// NoCache bypasses the result cache and single-flight join (the
	// admission queue still applies): the request parses or decodes
	// and allocates from scratch in a worker, and the result is not
	// stored. This is the harness's honest cold-path measurement mode
	// — canonical cache keys defeat comment-salting tricks — and it is
	// deliberately excluded from the cache key.
	NoCache bool `json:"no_cache,omitempty"`
}

// Normalize fills defaults and validates; it returns the machine the
// spec names. Routers normalize before keying so that a request with
// defaults spelled out and one with them omitted hash to the same
// shard — the same identity the replica's own cache uses.
func (spec *Spec) Normalize() (*target.Machine, error) {
	if spec.Machine == "" {
		spec.Machine = "ia64"
	}
	if spec.K == 0 {
		spec.K = 16
	}
	if spec.K < 2 || spec.K > 256 {
		return nil, fmt.Errorf("k must be in [2, 256], got %d", spec.K)
	}
	if spec.Allocator == "" {
		spec.Allocator = "pref-full"
	}
	if _, err := bench.NewAllocator(spec.Allocator); err != nil {
		return nil, err
	}
	if spec.MaxRounds < 0 {
		return nil, fmt.Errorf("max_rounds must be non-negative, got %d", spec.MaxRounds)
	}
	switch spec.Machine {
	case "ia64":
		return target.UsageModel(spec.K), nil
	case "x86":
		return target.X86Like(spec.K), nil
	case "s390":
		return target.S390Like(spec.K), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want ia64, x86, or s390)", spec.Machine)
}

// allocateRequest is the /v1/allocate body.
type allocateRequest struct {
	Spec
	Source    string `json:"source"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// batchRequest is the /v1/batch body; the spec and timeout apply to
// every function.
type batchRequest struct {
	Spec
	Functions []string `json:"functions"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// statsJSON is the wire form of regalloc.Stats.
type statsJSON struct {
	Allocator        string `json:"allocator"`
	Rounds           int    `json:"rounds"`
	MovesBefore      int    `json:"moves_before"`
	MovesRemaining   int    `json:"moves_remaining"`
	MovesEliminated  int    `json:"moves_eliminated"`
	SpillLoads       int    `json:"spill_loads"`
	SpillStores      int    `json:"spill_stores"`
	SpilledWebs      int    `json:"spilled_webs"`
	Remats           int    `json:"remats"`
	CallerSaveStores int    `json:"caller_save_stores"`
	CallerSaveLoads  int    `json:"caller_save_loads"`
	UsedRegs         int    `json:"used_regs"`
	UsedNonVolatile  int    `json:"used_non_volatile"`
}

func statsFrom(st *regalloc.Stats) statsJSON {
	return statsJSON{
		Allocator: st.Allocator, Rounds: st.Rounds,
		MovesBefore: st.MovesBefore, MovesRemaining: st.MovesRemaining,
		MovesEliminated: st.MovesEliminated,
		SpillLoads:      st.SpillLoads, SpillStores: st.SpillStores,
		SpilledWebs: st.SpilledWebs, Remats: st.Remats,
		CallerSaveStores: st.CallerSaveStores, CallerSaveLoads: st.CallerSaveLoads,
		UsedRegs: st.UsedRegs, UsedNonVolatile: st.UsedNonVolatile,
	}
}

// allocateResponse is the /v1/allocate reply (and one /v1/batch item).
type allocateResponse struct {
	Function string    `json:"function"`
	Digest   string    `json:"digest"`
	Stats    statsJSON `json:"stats"`
	Cached   bool      `json:"cached"`
	Tier     string    `json:"tier,omitempty"`   // tier mode: "fast" or "full"
	Cycles   float64   `json:"cycles,omitempty"` // tier mode: perfmodel estimate
	Error    string    `json:"error,omitempty"`  // batch items only
	Code     int       `json:"code,omitempty"`   // batch items only
}

type batchResponse struct {
	Results []allocateResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// counted wraps a handler so every response lands in the request
// counters (and, in replica mode, carries the replica's identity).
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.ReplicaID != "" {
			w.Header().Set(ReplicaHeader, s.cfg.ReplicaID)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.CountRequest(endpoint, rec.code)
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// timeout clamps a request's timeout_ms to the configured bounds.
func (s *Server) timeout(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest // e.g. client went away mid-body
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

// BinaryContentType selects the binary IR wire format on /v1/allocate
// (one ir.EncodeBinary function as the body) and /v1/batch (a sequence
// of ir.AppendBinaryFrame frames). Binary requests carry the
// allocation spec in query parameters, since the body is the function
// itself.
const BinaryContentType = "application/x-prefgcd-ir"

func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == BinaryContentType || strings.HasPrefix(ct, BinaryContentType+";")
}

// SpecFromQuery builds the request spec for a binary request from the
// URL query: machine, k, allocator, optimize, rematerialize,
// block_local_spills, max_rounds, timeout_ms, no_cache.
func SpecFromQuery(r *http.Request) (Spec, int, error) {
	q := r.URL.Query()
	var spec Spec
	spec.Machine = q.Get("machine")
	spec.Allocator = q.Get("allocator")
	timeoutMS := 0
	for _, p := range []struct {
		name string
		dst  *int
	}{{"k", &spec.K}, {"max_rounds", &spec.MaxRounds}, {"timeout_ms", &timeoutMS}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return spec, 0, fmt.Errorf("query %s=%q: %w", p.name, v, err)
			}
			*p.dst = n
		}
	}
	for _, p := range []struct {
		name string
		dst  *bool
	}{
		{"optimize", &spec.Optimize}, {"rematerialize", &spec.Rematerialize},
		{"block_local_spills", &spec.BlockLocalSpills}, {"no_cache", &spec.NoCache},
	} {
		if v := q.Get(p.name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return spec, 0, fmt.Errorf("query %s=%q: %w", p.name, v, err)
			}
			*p.dst = b
		}
	}
	return spec, timeoutMS, nil
}

// readRawBody reads a binary request body under the size limit.
func (s *Server) readRawBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var in srcInput
	var spec Spec
	var timeoutMS int
	if isBinaryRequest(r) {
		body, ok := s.readRawBody(w, r)
		if !ok {
			return
		}
		if len(body) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("empty source"))
			return
		}
		if !ir.IsBinary(body) {
			writeError(w, http.StatusBadRequest, errors.New("body is not binary IR (bad magic)"))
			return
		}
		var err error
		if spec, timeoutMS, err = SpecFromQuery(r); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		in = srcInput{binary: body}
	} else {
		var req allocateRequest
		if !s.readBody(w, r, &req) {
			return
		}
		if req.Source == "" {
			writeError(w, http.StatusBadRequest, errors.New("empty source"))
			return
		}
		spec, timeoutMS = req.Spec, req.TimeoutMS
		in = srcInput{text: req.Source}
	}
	machine, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.TrustKeyHeader {
		if canon, ok := DecodeKeyHeader(r.Header.Get(KeyHeader)); ok {
			in.canonHash, in.canonKnown = canon, true
		}
	}
	resp, code, err := s.doOne(r.Context(), in, spec, machine, s.timeout(timeoutMS), false)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	if resp.Cached {
		w.Header().Set(CacheHeader, "hit")
	} else {
		w.Header().Set(CacheHeader, "miss")
	}
	if resp.Tier != "" {
		w.Header().Set(TierHeader, resp.Tier)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryRequest(r) {
		s.handleBatchBinary(w, r)
		return
	}
	var req batchRequest
	if !s.readBody(w, r, &req) {
		return
	}
	machine, err := req.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Functions) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Functions) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Functions), s.cfg.MaxBatch))
		return
	}
	d := s.timeout(req.TimeoutMS)

	// Items run through the same cache/flight/queue path as single
	// allocations, but submission blocks (backpressure) and fan-out is
	// capped so one batch cannot occupy every queue slot at once.
	results := make([]allocateResponse, len(req.Functions))
	sem := make(chan struct{}, min(s.cfg.Workers, 8))
	var wg sync.WaitGroup
	for i, src := range req.Functions {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if src == "" {
				results[i] = allocateResponse{Error: "empty source", Code: http.StatusBadRequest}
				return
			}
			resp, code, err := s.doOne(r.Context(), srcInput{text: src}, req.Spec, machine, d, true)
			if err != nil {
				results[i] = allocateResponse{Error: err.Error(), Code: code}
				return
			}
			results[i] = *resp
		}(i, src)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

// handleBatchBinary serves a /v1/batch request whose body is a stream
// of length-prefixed binary functions. Frames decode one at a time in
// the handler while already-decoded functions are being allocated by
// the pool — ingesting function N+1 overlaps allocating function N —
// so a large batch never sits fully parsed in memory before the first
// allocation starts.
func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	spec, timeoutMS, err := SpecFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	machine, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.timeout(timeoutMS)

	dec := ir.NewStreamDecoder(bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)))
	dec.MaxFrame = int(s.cfg.MaxBodyBytes)

	var (
		mu      sync.Mutex
		results []allocateResponse
		sem     = make(chan struct{}, min(s.cfg.Workers, 8))
		wg      sync.WaitGroup
		decErr  error
	)
	n := 0
	for ; ; n++ {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			decErr = err
			break
		}
		if n >= s.cfg.MaxBatch {
			decErr = fmt.Errorf("batch exceeds limit %d", s.cfg.MaxBatch)
			break
		}
		mu.Lock()
		results = append(results, allocateResponse{})
		mu.Unlock()
		wg.Add(1)
		go func(i int, in srcInput) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, code, err := s.doOne(r.Context(), in, spec, machine, d, true)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				results[i] = allocateResponse{Error: err.Error(), Code: code}
				return
			}
			results[i] = *resp
		}(n, srcInput{binary: ir.EncodeBinary(f), f: f})
	}
	wg.Wait()
	if decErr != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", n, decErr))
		return
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	health := map[string]any{
		"status":         status,
		"queue_depth":    s.queue.Depth(),
		"queue_capacity": s.queue.Capacity(),
		"cache_entries":  s.cache.Len(),
	}
	if s.cfg.ReplicaID != "" {
		health["replica"] = s.cfg.ReplicaID
	}
	writeJSON(w, code, health)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evictions := s.cache.Counters()
	wsGets, wsNews := s.workspaces.counters()
	upDepth, upCap := s.upgradeDepth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, s.metrics.Render(
		s.queue.Depth(), s.queue.Capacity(), s.cache.Len(),
		hits, misses, evictions, s.flights.Shared(), wsGets, wsNews,
		upDepth, upCap))
}

// srcInput is one function input in whichever wire form it arrived:
// textual IR, the canonical binary encoding, or (when a handler has
// already decoded it) the function itself alongside its canonical
// bytes.
type srcInput struct {
	text   string   // textual IR; empty when binary is set
	binary []byte   // binary IR encoding; nil for text requests
	f      *ir.Func // decoded form, when already known

	// canonHash is sha256 over the function's canonical binary
	// encoding, filled in by resolveKey — or, when canonKnown is set,
	// taken on trust from the X-Prefgcd-Key request header.
	canonHash  [32]byte
	canonKnown bool
}

// decode produces the function from whichever wire form in carries.
func (in *srcInput) decode() (*ir.Func, int, error) {
	if in.f != nil {
		return in.f, 0, nil
	}
	var f *ir.Func
	var err error
	if in.binary != nil {
		f, err = ir.DecodeBinary(in.binary)
	} else {
		f, err = ir.Parse(in.text)
	}
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return f, 0, nil
}

// doOne resolves one allocation request: result cache, then
// single-flight join, then the work queue. reqCtx bounds only this
// caller's wait — the computation itself runs under its own deadline
// so one impatient caller cannot poison the shared flight. block
// selects the batch endpoint's blocking submission. Requests with
// spec.NoCache skip the cache and flight entirely (but still queue).
func (s *Server) doOne(reqCtx context.Context, in srcInput, spec Spec,
	machine *target.Machine, d time.Duration, block bool) (*allocateResponse, int, error) {

	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, errors.New("server draining")
	}
	if spec.NoCache {
		return s.doUncached(reqCtx, in, spec, machine, d, block)
	}
	if code, err := s.keys.resolve(&in); err != nil {
		return nil, code, err
	}
	key := KeyFor(in.canonHash, spec)
	if e, ok := s.cache.Get(key); ok {
		return s.respFrom(e, true), 0, nil
	}
	tier := s.tierApplies(spec)

	call, leader := s.flights.join(key)
	if leader {
		// The job's deadline starts at admission, so time spent queued
		// counts against it; a job whose deadline lapses in the queue
		// is dropped by the worker without running the allocator.
		jobCtx, cancel := context.WithTimeout(context.Background(), d)
		job := func() {
			defer cancel()
			if s.hookJobStart != nil {
				s.hookJobStart()
			}
			if jobCtx.Err() != nil {
				s.metrics.CountDropped()
				s.flights.complete(key, call, nil,
					fmt.Errorf("dropped after %v in queue: %w", d, jobCtx.Err()),
					http.StatusGatewayTimeout)
				return
			}
			var e *entry
			var code int
			var err error
			if tier {
				// Fast tier first; any fast-path failure falls back to
				// the full pipeline so tiering never loses a request.
				if e, code, err = s.computeFast(jobCtx, in, spec, machine); err != nil && jobCtx.Err() == nil {
					e, code, err = s.compute(jobCtx, in, spec, machine, true)
				}
			} else {
				e, code, err = s.compute(jobCtx, in, spec, machine, false)
			}
			if err == nil {
				s.cache.Add(key, e)
				if tier && e.Tier == tierFast {
					s.enqueueUpgrade(key, in, spec, machine, e.Cycles)
				}
			}
			s.flights.complete(key, call, e, err, code)
		}
		var admitted bool
		if block {
			err := s.queue.Submit(reqCtx, job)
			admitted = err == nil
			if errors.Is(err, ErrQueueClosed) {
				cancel()
				s.flights.complete(key, call, nil, err, http.StatusServiceUnavailable)
				return nil, http.StatusServiceUnavailable, err
			}
			if err != nil {
				cancel()
				s.flights.complete(key, call, nil, err, http.StatusGatewayTimeout)
				return nil, http.StatusGatewayTimeout, err
			}
		} else {
			admitted = s.queue.TrySubmit(job)
			if !admitted {
				cancel()
				s.flights.complete(key, call, nil, errQueueFull, http.StatusTooManyRequests)
				return nil, http.StatusTooManyRequests, errQueueFull
			}
		}
	}

	select {
	case <-call.done:
	case <-reqCtx.Done():
		// This caller gave up; the flight (if any) keeps computing so
		// other waiters — and the cache — still benefit.
		return nil, statusClientGone, reqCtx.Err()
	}
	if call.err != nil {
		return nil, call.code, call.err
	}
	return s.respFrom(call.val, false), 0, nil
}

// respFrom shapes a cache entry into the wire response and tallies the
// serving tier when the entry carries one.
func (s *Server) respFrom(e *entry, cached bool) *allocateResponse {
	if e.Tier != "" {
		s.metrics.CountTierServed(e.Tier)
	}
	return &allocateResponse{Function: e.Function, Digest: e.Digest, Stats: e.Stats,
		Cached: cached, Tier: e.Tier, Cycles: e.Cycles}
}

// doUncached runs one allocation through the admission queue without
// consulting or filling the cache and without single-flight joining:
// parse/decode and allocation both happen in the worker, so the
// measured latency is the whole cold path.
func (s *Server) doUncached(reqCtx context.Context, in srcInput, spec Spec,
	machine *target.Machine, d time.Duration, block bool) (*allocateResponse, int, error) {

	jobCtx, cancel := context.WithTimeout(context.Background(), d)
	done := make(chan struct{})
	var (
		e    *entry
		code int
		err  error
	)
	job := func() {
		defer close(done)
		defer cancel()
		if s.hookJobStart != nil {
			s.hookJobStart()
		}
		if jobCtx.Err() != nil {
			s.metrics.CountDropped()
			code, err = http.StatusGatewayTimeout,
				fmt.Errorf("dropped after %v in queue: %w", d, jobCtx.Err())
			return
		}
		e, code, err = s.compute(jobCtx, in, spec, machine, false)
	}
	if block {
		if serr := s.queue.Submit(reqCtx, job); serr != nil {
			cancel()
			if errors.Is(serr, ErrQueueClosed) {
				return nil, http.StatusServiceUnavailable, serr
			}
			return nil, http.StatusGatewayTimeout, serr
		}
	} else if !s.queue.TrySubmit(job) {
		cancel()
		return nil, http.StatusTooManyRequests, errQueueFull
	}

	select {
	case <-done:
	case <-reqCtx.Done():
		return nil, statusClientGone, reqCtx.Err()
	}
	if err != nil {
		return nil, code, err
	}
	return &allocateResponse{Function: e.Function, Digest: e.Digest, Stats: e.Stats, Cached: false}, 0, nil
}

// statusClientGone is nginx's 499 "client closed request", reported
// when the caller's own context dies while waiting on a shared flight.
const statusClientGone = 499

// compute parses or decodes, optionally optimizes, and allocates one
// function under ctx, which regalloc.Run polls at its phase
// boundaries. tier stamps the entry as a full-tier result (with its
// estimated cycle count) for responses that must name their tier.
func (s *Server) compute(ctx context.Context, in srcInput, spec Spec,
	machine *target.Machine, tier bool) (*entry, int, error) {

	f, code, err := in.decode()
	if err != nil {
		return nil, code, err
	}
	if spec.Optimize {
		ssa.Build(f)
		opt.Optimize(f)
		ssa.Destruct(f)
		f.CompactNops()
	}
	alloc, err := bench.NewAllocator(spec.Allocator)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Borrow a pooled workspace for the Run; it returns to the pool
	// dirty (the driver clears on borrow), so steady-state requests
	// allocate almost nothing beyond what the function itself needs.
	ws := s.workspaces.get()
	defer s.workspaces.put(ws)
	out, stats, err := regalloc.Run(f, machine, alloc, regalloc.Options{
		Context:          ctx,
		MaxRounds:        spec.MaxRounds,
		Rematerialize:    spec.Rematerialize,
		BlockLocalSpills: spec.BlockLocalSpills,
		CollectTelemetry: true,
		Workspace:        ws,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, http.StatusGatewayTimeout, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	s.metrics.CountExecuted(stats.Telemetry)
	e := &entry{
		Function: out.String(),
		Digest:   bench.FuncDigest(f.Name, stats, out),
		Stats:    statsFrom(stats),
	}
	if tier {
		e.Tier = tierFull
		e.Cycles = perfmodel.Estimate(out, machine).Cycles
	}
	return e, 0, nil
}
