// Package server turns the allocation pipeline into a long-running
// service: an HTTP/JSON daemon exposing the preference-directed
// allocator (and every baseline) behind a bounded work queue with
// admission control, a content-addressed single-flight LRU result
// cache, and per-request deadlines that thread down to the driver's
// phase boundaries via regalloc.Options.Context.
//
// Endpoints:
//
//	POST /v1/allocate  one function (textual IR) -> rewritten code + stats
//	POST /v1/batch     many functions, backpressure instead of load-shedding
//	GET  /healthz      liveness + queue/cache gauges
//	GET  /metrics      Prometheus text exposition
//	     /debug/pprof  the standard profiling handlers
//
// Overload policy: /v1/allocate refuses instantly with 429 and a
// Retry-After hint when the queue is saturated (interactive callers
// shed load); /v1/batch blocks for queue space up to the request's
// deadline (bulk callers get backpressure).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/opt"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
)

// ErrQueueClosed reports a submission to a draining queue.
var ErrQueueClosed = errors.New("server: queue closed")

// errQueueFull reports a refused admission.
var errQueueFull = errors.New("server: queue full")

// Config sizes the daemon. The zero value of any field selects its
// default.
type Config struct {
	// Workers is the allocation worker-pool size; 0 means 4.
	Workers int

	// QueueSize bounds the admission queue; 0 means 64.
	QueueSize int

	// CacheEntries bounds the LRU result cache; 0 means 1024, and a
	// negative value disables caching.
	CacheEntries int

	// MaxBodyBytes bounds a request body; 0 means 4 MiB.
	MaxBodyBytes int64

	// DefaultTimeout applies when a request carries no timeout_ms;
	// 0 means 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps any requested timeout; 0 means 120s.
	MaxTimeout time.Duration

	// MaxBatch bounds the functions of one /v1/batch request; 0 means
	// 256.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Server is the allocation service. Construct with New, serve
// Handler(), and Close to drain.
type Server struct {
	cfg        Config
	queue      *queue
	cache      *lruCache
	flights    *flightGroup
	metrics    *metrics
	workspaces *wsPool
	mux        *http.ServeMux
	draining   atomic.Bool

	// hookJobStart, when set, runs at the start of every allocation
	// job — the test seam that makes queue saturation deterministic.
	hookJobStart func()
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		queue:      newQueue(cfg.QueueSize, cfg.Workers),
		cache:      newLRUCache(cfg.CacheEntries),
		flights:    newFlightGroup(),
		metrics:    newMetrics(),
		workspaces: newWSPool(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/allocate", s.counted("allocate", s.handleAllocate))
	s.mux.HandleFunc("POST /v1/batch", s.counted("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: admission stops (new work gets 503), every
// already-queued job runs to completion, and the worker pool exits.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.Close()
}

// requestSpec is the allocation configuration shared by both
// endpoints, normalized for cache keying.
type requestSpec struct {
	Machine          string `json:"machine,omitempty"`   // ia64 (default), x86, s390
	K                int    `json:"k,omitempty"`         // register count, default 16
	Allocator        string `json:"allocator,omitempty"` // default pref-full
	Optimize         bool   `json:"optimize,omitempty"`  // SSA scalar opts before allocation
	Rematerialize    bool   `json:"rematerialize,omitempty"`
	BlockLocalSpills bool   `json:"block_local_spills,omitempty"`
	MaxRounds        int    `json:"max_rounds,omitempty"`
}

// normalize fills defaults and validates; it returns the machine the
// spec names.
func (spec *requestSpec) normalize() (*target.Machine, error) {
	if spec.Machine == "" {
		spec.Machine = "ia64"
	}
	if spec.K == 0 {
		spec.K = 16
	}
	if spec.K < 2 || spec.K > 256 {
		return nil, fmt.Errorf("k must be in [2, 256], got %d", spec.K)
	}
	if spec.Allocator == "" {
		spec.Allocator = "pref-full"
	}
	if _, err := bench.NewAllocator(spec.Allocator); err != nil {
		return nil, err
	}
	if spec.MaxRounds < 0 {
		return nil, fmt.Errorf("max_rounds must be non-negative, got %d", spec.MaxRounds)
	}
	switch spec.Machine {
	case "ia64":
		return target.UsageModel(spec.K), nil
	case "x86":
		return target.X86Like(spec.K), nil
	case "s390":
		return target.S390Like(spec.K), nil
	}
	return nil, fmt.Errorf("unknown machine %q (want ia64, x86, or s390)", spec.Machine)
}

// allocateRequest is the /v1/allocate body.
type allocateRequest struct {
	requestSpec
	Source    string `json:"source"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// batchRequest is the /v1/batch body; the spec and timeout apply to
// every function.
type batchRequest struct {
	requestSpec
	Functions []string `json:"functions"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// statsJSON is the wire form of regalloc.Stats.
type statsJSON struct {
	Allocator        string `json:"allocator"`
	Rounds           int    `json:"rounds"`
	MovesBefore      int    `json:"moves_before"`
	MovesRemaining   int    `json:"moves_remaining"`
	MovesEliminated  int    `json:"moves_eliminated"`
	SpillLoads       int    `json:"spill_loads"`
	SpillStores      int    `json:"spill_stores"`
	SpilledWebs      int    `json:"spilled_webs"`
	Remats           int    `json:"remats"`
	CallerSaveStores int    `json:"caller_save_stores"`
	CallerSaveLoads  int    `json:"caller_save_loads"`
	UsedRegs         int    `json:"used_regs"`
	UsedNonVolatile  int    `json:"used_non_volatile"`
}

func statsFrom(st *regalloc.Stats) statsJSON {
	return statsJSON{
		Allocator: st.Allocator, Rounds: st.Rounds,
		MovesBefore: st.MovesBefore, MovesRemaining: st.MovesRemaining,
		MovesEliminated: st.MovesEliminated,
		SpillLoads:      st.SpillLoads, SpillStores: st.SpillStores,
		SpilledWebs: st.SpilledWebs, Remats: st.Remats,
		CallerSaveStores: st.CallerSaveStores, CallerSaveLoads: st.CallerSaveLoads,
		UsedRegs: st.UsedRegs, UsedNonVolatile: st.UsedNonVolatile,
	}
}

// allocateResponse is the /v1/allocate reply (and one /v1/batch item).
type allocateResponse struct {
	Function string    `json:"function"`
	Digest   string    `json:"digest"`
	Stats    statsJSON `json:"stats"`
	Cached   bool      `json:"cached"`
	Error    string    `json:"error,omitempty"` // batch items only
	Code     int       `json:"code,omitempty"`  // batch items only
}

type batchResponse struct {
	Results []allocateResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// counted wraps a handler so every response lands in the request
// counters.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.CountRequest(endpoint, rec.code)
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// timeout clamps a request's timeout_ms to the configured bounds.
func (s *Server) timeout(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest // e.g. client went away mid-body
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading body: %w", err))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var req allocateRequest
	if !s.readBody(w, r, &req) {
		return
	}
	machine, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty source"))
		return
	}
	resp, code, err := s.doOne(r.Context(), req.Source, req.requestSpec, machine,
		s.timeout(req.TimeoutMS), false)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.readBody(w, r, &req) {
		return
	}
	machine, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Functions) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Functions) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Functions), s.cfg.MaxBatch))
		return
	}
	d := s.timeout(req.TimeoutMS)

	// Items run through the same cache/flight/queue path as single
	// allocations, but submission blocks (backpressure) and fan-out is
	// capped so one batch cannot occupy every queue slot at once.
	results := make([]allocateResponse, len(req.Functions))
	sem := make(chan struct{}, min(s.cfg.Workers, 8))
	var wg sync.WaitGroup
	for i, src := range req.Functions {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if src == "" {
				results[i] = allocateResponse{Error: "empty source", Code: http.StatusBadRequest}
				return
			}
			resp, code, err := s.doOne(r.Context(), src, req.requestSpec, machine, d, true)
			if err != nil {
				results[i] = allocateResponse{Error: err.Error(), Code: code}
				return
			}
			results[i] = *resp
		}(i, src)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"queue_depth":    s.queue.Depth(),
		"queue_capacity": s.queue.Capacity(),
		"cache_entries":  s.cache.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, evictions := s.cache.Counters()
	wsGets, wsNews := s.workspaces.counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, s.metrics.Render(
		s.queue.Depth(), s.queue.Capacity(), s.cache.Len(),
		hits, misses, evictions, s.flights.Shared(), wsGets, wsNews))
}

// doOne resolves one allocation request: result cache, then
// single-flight join, then the work queue. reqCtx bounds only this
// caller's wait — the computation itself runs under its own deadline
// so one impatient caller cannot poison the shared flight. block
// selects the batch endpoint's blocking submission.
func (s *Server) doOne(reqCtx context.Context, source string, spec requestSpec,
	machine *target.Machine, d time.Duration, block bool) (*allocateResponse, int, error) {

	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, errors.New("server draining")
	}
	key := keyFor(source, spec)
	if e, ok := s.cache.Get(key); ok {
		return &allocateResponse{Function: e.Function, Digest: e.Digest, Stats: e.Stats, Cached: true}, 0, nil
	}

	call, leader := s.flights.join(key)
	if leader {
		// The job's deadline starts at admission, so time spent queued
		// counts against it; a job whose deadline lapses in the queue
		// is dropped by the worker without running the allocator.
		jobCtx, cancel := context.WithTimeout(context.Background(), d)
		job := func() {
			defer cancel()
			if s.hookJobStart != nil {
				s.hookJobStart()
			}
			if jobCtx.Err() != nil {
				s.metrics.CountDropped()
				s.flights.complete(key, call, nil,
					fmt.Errorf("dropped after %v in queue: %w", d, jobCtx.Err()),
					http.StatusGatewayTimeout)
				return
			}
			e, code, err := s.compute(jobCtx, source, spec, machine)
			if err == nil {
				s.cache.Add(key, e)
			}
			s.flights.complete(key, call, e, err, code)
		}
		var admitted bool
		if block {
			err := s.queue.Submit(reqCtx, job)
			admitted = err == nil
			if errors.Is(err, ErrQueueClosed) {
				cancel()
				s.flights.complete(key, call, nil, err, http.StatusServiceUnavailable)
				return nil, http.StatusServiceUnavailable, err
			}
			if err != nil {
				cancel()
				s.flights.complete(key, call, nil, err, http.StatusGatewayTimeout)
				return nil, http.StatusGatewayTimeout, err
			}
		} else {
			admitted = s.queue.TrySubmit(job)
			if !admitted {
				cancel()
				s.flights.complete(key, call, nil, errQueueFull, http.StatusTooManyRequests)
				return nil, http.StatusTooManyRequests, errQueueFull
			}
		}
	}

	select {
	case <-call.done:
	case <-reqCtx.Done():
		// This caller gave up; the flight (if any) keeps computing so
		// other waiters — and the cache — still benefit.
		return nil, statusClientGone, reqCtx.Err()
	}
	if call.err != nil {
		return nil, call.code, call.err
	}
	e := call.val
	return &allocateResponse{Function: e.Function, Digest: e.Digest, Stats: e.Stats, Cached: false}, 0, nil
}

// statusClientGone is nginx's 499 "client closed request", reported
// when the caller's own context dies while waiting on a shared flight.
const statusClientGone = 499

// compute parses, optionally optimizes, and allocates one function
// under ctx, which regalloc.Run polls at its phase boundaries.
func (s *Server) compute(ctx context.Context, source string, spec requestSpec,
	machine *target.Machine) (*entry, int, error) {

	f, err := ir.Parse(source)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if spec.Optimize {
		ssa.Build(f)
		opt.Optimize(f)
		ssa.Destruct(f)
		f.CompactNops()
	}
	alloc, err := bench.NewAllocator(spec.Allocator)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Borrow a pooled workspace for the Run; it returns to the pool
	// dirty (the driver clears on borrow), so steady-state requests
	// allocate almost nothing beyond what the function itself needs.
	ws := s.workspaces.get()
	defer s.workspaces.put(ws)
	out, stats, err := regalloc.Run(f, machine, alloc, regalloc.Options{
		Context:          ctx,
		MaxRounds:        spec.MaxRounds,
		Rematerialize:    spec.Rematerialize,
		BlockLocalSpills: spec.BlockLocalSpills,
		CollectTelemetry: true,
		Workspace:        ws,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, http.StatusGatewayTimeout, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	s.metrics.CountExecuted(stats.Telemetry)
	return &entry{
		Function: out.String(),
		Digest:   bench.FuncDigest(f.Name, stats, out),
		Stats:    statsFrom(stats),
	}, 0, nil
}
