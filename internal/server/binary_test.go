package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"prefcolor/internal/ir"
)

// postBinary sends body with the binary IR content type and the given
// query string (no leading "?").
func postBinary(t *testing.T, url, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, BinaryContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func mustEncode(t *testing.T, src string) (*ir.Func, []byte) {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f, ir.EncodeBinary(f)
}

// A binary /v1/allocate request must produce exactly the response a
// textual request for the same function produces, and the two must
// share one cache entry: whichever arrives second is a hit.
func TestAllocateBinaryMatchesTextAndSharesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	_, bin := mustEncode(t, smallFunc)

	resp, body := postBinary(t, ts.URL+"/v1/allocate", "", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", resp.StatusCode, body)
	}
	var binOut allocateResponse
	if err := json.Unmarshal(body, &binOut); err != nil {
		t.Fatal(err)
	}
	if binOut.Cached {
		t.Error("first (binary) request reported cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text status %d: %s", resp.StatusCode, body)
	}
	var txtOut allocateResponse
	if err := json.Unmarshal(body, &txtOut); err != nil {
		t.Fatal(err)
	}
	if !txtOut.Cached {
		t.Error("textual request for the same function missed the cache; text and binary keys diverge")
	}
	if txtOut.Digest != binOut.Digest || txtOut.Function != binOut.Function {
		t.Error("text and binary requests returned different allocations")
	}
	if n := s.cache.Len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1 shared entry", n)
	}
}

// Spec settings ride in the query for binary requests.
func TestAllocateBinaryQuerySpec(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, bin := mustEncode(t, smallFunc)

	resp, body := postBinary(t, ts.URL+"/v1/allocate", "machine=x86&k=8&allocator=chaitin", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out allocateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Allocator != "chaitin" {
		t.Errorf("allocator = %q, want chaitin from query", out.Stats.Allocator)
	}

	resp, body = postBinary(t, ts.URL+"/v1/allocate", "k=banana", bin)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// Garbage with the binary content type is a 400, not a hang or a 500.
func TestAllocateBinaryRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for name, body := range map[string][]byte{
		"empty":     nil,
		"bad magic": []byte("not binary ir at all"),
		"truncated": ir.EncodeBinary(mustParse(t, smallFunc))[:10],
	} {
		resp, out := postBinary(t, ts.URL+"/v1/allocate", "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, out)
		}
	}
}

func mustParse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A binary batch streams frames and returns index-aligned results that
// match the textual batch for the same functions.
func TestBatchBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var sources []string
	var wire []byte
	for i := 0; i < 5; i++ {
		src := distinctFunc(i)
		sources = append(sources, src)
		wire = ir.AppendBinaryFrame(wire, mustParse(t, src))
	}

	resp, body := postBinary(t, ts.URL+"/v1/batch", "", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch status %d: %s", resp.StatusCode, body)
	}
	var binOut batchResponse
	if err := json.Unmarshal(body, &binOut); err != nil {
		t.Fatal(err)
	}
	if len(binOut.Results) != len(sources) {
		t.Fatalf("binary batch returned %d results, want %d", len(binOut.Results), len(sources))
	}

	resp, body = postJSON(t, ts.URL+"/v1/batch", batchRequest{Functions: sources})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text batch status %d: %s", resp.StatusCode, body)
	}
	var txtOut batchResponse
	if err := json.Unmarshal(body, &txtOut); err != nil {
		t.Fatal(err)
	}
	for i := range binOut.Results {
		if binOut.Results[i].Error != "" {
			t.Errorf("result %d failed: %s", i, binOut.Results[i].Error)
			continue
		}
		if binOut.Results[i].Digest != txtOut.Results[i].Digest {
			t.Errorf("result %d: binary digest differs from text digest", i)
		}
	}
}

// A corrupt frame mid-stream fails the whole batch with its position.
func TestBatchBinaryCorruptFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	wire := ir.AppendBinaryFrame(nil, mustParse(t, distinctFunc(0)))
	wire = append(wire, 0x05, 'j', 'u', 'n', 'k', '!') // framed garbage

	resp, body := postBinary(t, ts.URL+"/v1/batch", "", wire)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("frame 1")) {
		t.Errorf("error %s does not name the corrupt frame", body)
	}
}

// no_cache requests never read or write the cache: two identical
// requests both compute, and the result never lands in the LRU.
func TestNoCacheBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := allocateRequest{Source: smallFunc}
	req.NoCache = true

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/allocate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		var out allocateResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Cached {
			t.Errorf("request %d: no_cache request reported cached", i)
		}
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cache holds %d entries after no_cache requests, want 0", n)
	}

	// A cached entry must not leak into a no_cache request either.
	resp, _ := postJSON(t, ts.URL+"/v1/allocate", allocateRequest{Source: smallFunc})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("warm-up request failed")
	}
	resp, body := postJSON(t, ts.URL+"/v1/allocate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out allocateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("no_cache request served from cache after warm-up")
	}
}

// The binary query path accepts no_cache too (the loadgen cold mode).
func TestNoCacheBinaryQuery(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	_, bin := mustEncode(t, smallFunc)
	resp, body := postBinary(t, ts.URL+"/v1/allocate", "no_cache=true", bin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cache holds %d entries, want 0", n)
	}
}
