package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/opt"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
)

// Tiered allocation: with Config.Tier on, a cacheable pref-full
// request is first answered by the linear-scan fast path — a valid
// allocation, produced in a small fraction of pref-full's latency —
// and the cache entry is then upgraded in the background by re-running
// the request through the full preference-directed pipeline and
// atomically swapping the entry. The response (and the cache entry it
// came from) names its tier in the X-Prefgcd-Tier header and the
// "tier" body field, so callers that care about allocation quality can
// poll the same request until it reports "full"; callers that only
// need a correct allocation quickly take the first answer.
//
// The upgrade pipeline is deliberately decoupled from the serving
// pool: one background worker drains a bounded queue, a pending set
// single-flights upgrades per cache key, and a full queue sheds the
// upgrade (the fast entry simply remains) rather than blocking any
// serving path. The queue is hotness-ordered, not FIFO: the worker
// always takes the pending job whose cache entry has served the most
// hits (ties broken by arrival order), so a key being polled by many
// callers upgrades ahead of a cold backlog. Draining stops new upgrade
// admissions immediately; Close cancels the in-flight upgrade, since
// an upgrade is a quality improvement to an already-correct cached
// result, never owed work.

// Entry (and response) tier names.
const (
	tierFast = "fast" // linear-scan fast path; upgrade pending or shed
	tierFull = "full" // the request's own allocator ran to completion
)

// tierApplies reports whether a request takes the tiered path: the
// tier serves as a stand-in for the preference-directed default only,
// and an uncacheable request has no entry to upgrade.
func (s *Server) tierApplies(spec Spec) bool {
	return s.cfg.Tier && !spec.NoCache && spec.Allocator == "pref-full"
}

// computeFast is the fast-tier counterpart of compute: same decode and
// optional SSA optimization, but allocation through the linear-scan
// fast path (or, with a non-default Config.TierAllocator, the standard
// driver under that allocator). Rematerialize and BlockLocalSpills are
// driver spill refinements the fast path does not implement; they
// reach the full-tier upgrade untouched, since the spec — options
// included — keys the entry being upgraded.
func (s *Server) computeFast(ctx context.Context, in srcInput, spec Spec,
	machine *target.Machine) (*entry, int, error) {

	f, code, err := in.decode()
	if err != nil {
		return nil, code, err
	}
	if spec.Optimize {
		ssa.Build(f)
		opt.Optimize(f)
		ssa.Destruct(f)
		f.CompactNops()
	}
	if ctx.Err() != nil {
		return nil, http.StatusGatewayTimeout, ctx.Err()
	}
	var out *ir.Func
	var stats *regalloc.Stats
	if s.cfg.TierAllocator == "linearscan" {
		ws := s.fastWS.Get().(*linearscan.Workspace)
		defer s.fastWS.Put(ws)
		out, stats, err = linearscan.Run(f, machine, linearscan.RunOptions{
			MaxRounds: spec.MaxRounds,
			Workspace: ws,
		})
	} else {
		var alloc regalloc.Allocator
		if alloc, err = bench.NewAllocator(s.cfg.TierAllocator); err != nil {
			return nil, http.StatusBadRequest, err
		}
		ws := s.workspaces.get()
		defer s.workspaces.put(ws)
		out, stats, err = regalloc.Run(f, machine, alloc, regalloc.Options{
			Context:   ctx,
			MaxRounds: spec.MaxRounds,
			Workspace: ws,
		})
	}
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	return &entry{
		Function: out.String(),
		Digest:   bench.FuncDigest(f.Name, stats, out),
		Stats:    statsFrom(stats),
		Tier:     tierFast,
		Cycles:   perfmodel.Estimate(out, machine).Cycles,
	}, 0, nil
}

// upgrader is the background escalation pipeline: a bounded
// hotness-ordered job queue, a single worker, and a pending set that
// single-flights upgrades per cache key.
type upgrader struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// qmu guards the queue, which stays in arrival order; pop scans it
	// for the hottest key at pop time (hit counts keep changing while a
	// job waits, so ordering at push time would go stale). The queue is
	// bounded by qcap and small, so the scan is cheap next to the
	// pref-full run each pop triggers. notify has one slot: a push's
	// non-blocking send either wakes the idle worker or is redundant
	// with a wake-up already due.
	qmu    sync.Mutex
	queue  []upgradeJob
	qcap   int
	notify chan struct{}

	pmu     sync.Mutex
	pending map[Key]struct{}
}

// push appends job in arrival order, reporting false when the queue is
// at capacity (the caller sheds).
func (u *upgrader) push(job upgradeJob) bool {
	u.qmu.Lock()
	if len(u.queue) >= u.qcap {
		u.qmu.Unlock()
		return false
	}
	u.queue = append(u.queue, job)
	u.qmu.Unlock()
	select {
	case u.notify <- struct{}{}:
	default:
	}
	return true
}

// pop removes and returns the hottest queued job: the maximum
// hits(key) at pop time, earliest-arrived on ties (strict > over the
// arrival-ordered queue keeps the FIFO tie-break). ok is false when
// the queue is empty.
func (u *upgrader) pop(hits func(Key) int64) (job upgradeJob, ok bool) {
	u.qmu.Lock()
	defer u.qmu.Unlock()
	if len(u.queue) == 0 {
		return upgradeJob{}, false
	}
	best := 0
	bestHits := hits(u.queue[0].key)
	for i := 1; i < len(u.queue); i++ {
		if h := hits(u.queue[i].key); h > bestHits {
			best, bestHits = i, h
		}
	}
	job = u.queue[best]
	u.queue = append(u.queue[:best], u.queue[best+1:]...)
	return job, true
}

// upgradeJob re-derives one cache entry at full quality. It carries
// the request's wire form, never the decoded function — the fast
// compute may have rewritten the decoded form in place (SSA
// optimization mutates), so the upgrade decodes fresh.
type upgradeJob struct {
	key        Key
	in         srcInput
	spec       Spec
	machine    *target.Machine
	fastCycles float64
	enqueued   time.Time
}

func (s *Server) startUpgrader(queueSize int) {
	ctx, cancel := context.WithCancel(context.Background())
	s.upgrades = &upgrader{
		cancel:  cancel,
		qcap:    queueSize,
		notify:  make(chan struct{}, 1),
		pending: make(map[Key]struct{}),
	}
	s.upgrades.wg.Add(1)
	go s.upgradeLoop(ctx)
}

// stopUpgrader cancels the in-flight upgrade (if any) and waits for
// the worker to exit. Queued jobs are abandoned: their fast-tier cache
// entries are correct allocations, just not upgraded ones.
func (s *Server) stopUpgrader() {
	if s.upgrades == nil {
		return
	}
	s.upgrades.cancel()
	s.upgrades.wg.Wait()
}

// upgradeDepth returns the queue's (depth, capacity) for metrics.
func (s *Server) upgradeDepth() (int, int) {
	if s.upgrades == nil {
		return 0, 0
	}
	s.upgrades.qmu.Lock()
	defer s.upgrades.qmu.Unlock()
	return len(s.upgrades.queue), s.upgrades.qcap
}

// enqueueUpgrade schedules the background escalation of key's cache
// entry. A key already pending is skipped (single flight); a full
// queue sheds the job and counts the shed; a draining server admits no
// new upgrades.
func (s *Server) enqueueUpgrade(key Key, in srcInput, spec Spec,
	machine *target.Machine, fastCycles float64) {

	if s.draining.Load() {
		return
	}
	u := s.upgrades
	u.pmu.Lock()
	if _, dup := u.pending[key]; dup {
		u.pmu.Unlock()
		return
	}
	u.pending[key] = struct{}{}
	u.pmu.Unlock()

	in.f = nil // force a fresh decode; see upgradeJob
	if !u.push(upgradeJob{key: key, in: in, spec: spec, machine: machine,
		fastCycles: fastCycles, enqueued: time.Now()}) {
		s.metrics.CountTierShed()
		u.pmu.Lock()
		delete(u.pending, key)
		u.pmu.Unlock()
	}
}

func (s *Server) upgradeLoop(ctx context.Context) {
	u := s.upgrades
	defer u.wg.Done()
	for {
		job, ok := u.pop(s.cache.Hits)
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-u.notify:
				continue
			}
		}
		if ctx.Err() != nil {
			return
		}
		s.runUpgrade(ctx, job)
	}
}

// runUpgrade re-computes one entry through the standard full pipeline
// and atomically swaps the cache entry (lruCache.Add refreshes in
// place under the cache lock). An entry evicted between fast compute
// and upgrade completion is simply re-inserted at full quality —
// harmless, and the next request hits it.
func (s *Server) runUpgrade(ctx context.Context, job upgradeJob) {
	u := s.upgrades
	defer func() {
		u.pmu.Lock()
		delete(u.pending, job.key)
		u.pmu.Unlock()
	}()
	jobCtx, cancel := context.WithTimeout(ctx, s.cfg.MaxTimeout)
	defer cancel()
	e, _, err := s.compute(jobCtx, job.in, job.spec, job.machine, true)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a failed upgrade
		}
		s.metrics.CountTierUpgradeFailed()
		return
	}
	s.cache.Add(job.key, e)
	s.metrics.CountTierUpgrade(time.Since(job.enqueued), job.fastCycles, e.Cycles)
}
