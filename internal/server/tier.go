package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/opt"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
)

// Tiered allocation: with Config.Tier on, a cacheable pref-full
// request is first answered by the linear-scan fast path — a valid
// allocation, produced in a small fraction of pref-full's latency —
// and the cache entry is then upgraded in the background by re-running
// the request through the full preference-directed pipeline and
// atomically swapping the entry. The response (and the cache entry it
// came from) names its tier in the X-Prefgcd-Tier header and the
// "tier" body field, so callers that care about allocation quality can
// poll the same request until it reports "full"; callers that only
// need a correct allocation quickly take the first answer.
//
// The upgrade pipeline is deliberately decoupled from the serving
// pool: one background worker drains a bounded queue, a pending set
// single-flights upgrades per cache key, and a full queue sheds the
// upgrade (the fast entry simply remains) rather than blocking any
// serving path. Draining stops new upgrade admissions immediately;
// Close cancels the in-flight upgrade, since an upgrade is a quality
// improvement to an already-correct cached result, never owed work.

// Entry (and response) tier names.
const (
	tierFast = "fast" // linear-scan fast path; upgrade pending or shed
	tierFull = "full" // the request's own allocator ran to completion
)

// tierApplies reports whether a request takes the tiered path: the
// tier serves as a stand-in for the preference-directed default only,
// and an uncacheable request has no entry to upgrade.
func (s *Server) tierApplies(spec Spec) bool {
	return s.cfg.Tier && !spec.NoCache && spec.Allocator == "pref-full"
}

// computeFast is the fast-tier counterpart of compute: same decode and
// optional SSA optimization, but allocation through the linear-scan
// fast path (or, with a non-default Config.TierAllocator, the standard
// driver under that allocator). Rematerialize and BlockLocalSpills are
// driver spill refinements the fast path does not implement; they
// reach the full-tier upgrade untouched, since the spec — options
// included — keys the entry being upgraded.
func (s *Server) computeFast(ctx context.Context, in srcInput, spec Spec,
	machine *target.Machine) (*entry, int, error) {

	f, code, err := in.decode()
	if err != nil {
		return nil, code, err
	}
	if spec.Optimize {
		ssa.Build(f)
		opt.Optimize(f)
		ssa.Destruct(f)
		f.CompactNops()
	}
	if ctx.Err() != nil {
		return nil, http.StatusGatewayTimeout, ctx.Err()
	}
	var out *ir.Func
	var stats *regalloc.Stats
	if s.cfg.TierAllocator == "linearscan" {
		ws := s.fastWS.Get().(*linearscan.Workspace)
		defer s.fastWS.Put(ws)
		out, stats, err = linearscan.Run(f, machine, linearscan.RunOptions{
			MaxRounds: spec.MaxRounds,
			Workspace: ws,
		})
	} else {
		var alloc regalloc.Allocator
		if alloc, err = bench.NewAllocator(s.cfg.TierAllocator); err != nil {
			return nil, http.StatusBadRequest, err
		}
		ws := s.workspaces.get()
		defer s.workspaces.put(ws)
		out, stats, err = regalloc.Run(f, machine, alloc, regalloc.Options{
			Context:   ctx,
			MaxRounds: spec.MaxRounds,
			Workspace: ws,
		})
	}
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	return &entry{
		Function: out.String(),
		Digest:   bench.FuncDigest(f.Name, stats, out),
		Stats:    statsFrom(stats),
		Tier:     tierFast,
		Cycles:   perfmodel.Estimate(out, machine).Cycles,
	}, 0, nil
}

// upgrader is the background escalation pipeline: a bounded job queue,
// a single worker, and a pending set that single-flights upgrades per
// cache key.
type upgrader struct {
	jobs   chan upgradeJob
	cancel context.CancelFunc
	wg     sync.WaitGroup

	pmu     sync.Mutex
	pending map[Key]struct{}
}

// upgradeJob re-derives one cache entry at full quality. It carries
// the request's wire form, never the decoded function — the fast
// compute may have rewritten the decoded form in place (SSA
// optimization mutates), so the upgrade decodes fresh.
type upgradeJob struct {
	key        Key
	in         srcInput
	spec       Spec
	machine    *target.Machine
	fastCycles float64
	enqueued   time.Time
}

func (s *Server) startUpgrader(queueSize int) {
	ctx, cancel := context.WithCancel(context.Background())
	s.upgrades = &upgrader{
		jobs:    make(chan upgradeJob, queueSize),
		cancel:  cancel,
		pending: make(map[Key]struct{}),
	}
	s.upgrades.wg.Add(1)
	go s.upgradeLoop(ctx)
}

// stopUpgrader cancels the in-flight upgrade (if any) and waits for
// the worker to exit. Queued jobs are abandoned: their fast-tier cache
// entries are correct allocations, just not upgraded ones.
func (s *Server) stopUpgrader() {
	if s.upgrades == nil {
		return
	}
	s.upgrades.cancel()
	s.upgrades.wg.Wait()
}

// upgradeDepth returns the queue's (depth, capacity) for metrics.
func (s *Server) upgradeDepth() (int, int) {
	if s.upgrades == nil {
		return 0, 0
	}
	return len(s.upgrades.jobs), cap(s.upgrades.jobs)
}

// enqueueUpgrade schedules the background escalation of key's cache
// entry. A key already pending is skipped (single flight); a full
// queue sheds the job and counts the shed; a draining server admits no
// new upgrades.
func (s *Server) enqueueUpgrade(key Key, in srcInput, spec Spec,
	machine *target.Machine, fastCycles float64) {

	if s.draining.Load() {
		return
	}
	u := s.upgrades
	u.pmu.Lock()
	if _, dup := u.pending[key]; dup {
		u.pmu.Unlock()
		return
	}
	u.pending[key] = struct{}{}
	u.pmu.Unlock()

	in.f = nil // force a fresh decode; see upgradeJob
	select {
	case u.jobs <- upgradeJob{key: key, in: in, spec: spec, machine: machine,
		fastCycles: fastCycles, enqueued: time.Now()}:
	default:
		s.metrics.CountTierShed()
		u.pmu.Lock()
		delete(u.pending, key)
		u.pmu.Unlock()
	}
}

func (s *Server) upgradeLoop(ctx context.Context) {
	u := s.upgrades
	defer u.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-u.jobs:
			s.runUpgrade(ctx, job)
		}
	}
}

// runUpgrade re-computes one entry through the standard full pipeline
// and atomically swaps the cache entry (lruCache.Add refreshes in
// place under the cache lock). An entry evicted between fast compute
// and upgrade completion is simply re-inserted at full quality —
// harmless, and the next request hits it.
func (s *Server) runUpgrade(ctx context.Context, job upgradeJob) {
	u := s.upgrades
	defer func() {
		u.pmu.Lock()
		delete(u.pending, job.key)
		u.pmu.Unlock()
	}()
	jobCtx, cancel := context.WithTimeout(ctx, s.cfg.MaxTimeout)
	defer cancel()
	e, _, err := s.compute(jobCtx, job.in, job.spec, job.machine, true)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a failed upgrade
		}
		s.metrics.CountTierUpgradeFailed()
		return
	}
	s.cache.Add(job.key, e)
	s.metrics.CountTierUpgrade(time.Since(job.enqueued), job.fastCycles, e.Cycles)
}
