package ssa

import (
	"testing"

	"prefcolor/internal/ir"
)

// interpEq runs both functions on the same inputs and fails the test
// on any observable difference.
func interpEq(t *testing.T, a, b *ir.Func, inputs []map[ir.Reg]int64) {
	t.Helper()
	for _, init := range inputs {
		ra, err := ir.Interp(a, init, ir.InterpOptions{})
		if err != nil {
			t.Fatalf("interp %s: %v", a.Name, err)
		}
		rb, err := ir.Interp(b, init, ir.InterpOptions{})
		if err != nil {
			t.Fatalf("interp %s: %v", b.Name, err)
		}
		if ra.HasRet != rb.HasRet || ra.Ret != rb.Ret {
			t.Errorf("init %v: ret %d/%v vs %d/%v", init, ra.Ret, ra.HasRet, rb.Ret, rb.HasRet)
		}
		if len(ra.Stores) != len(rb.Stores) {
			t.Errorf("init %v: %d stores vs %d", init, len(ra.Stores), len(rb.Stores))
			continue
		}
		for i := range ra.Stores {
			if ra.Stores[i] != rb.Stores[i] {
				t.Errorf("init %v: store %d: %+v vs %+v", init, i, ra.Stores[i], rb.Stores[i])
			}
		}
	}
}

func inputs1(f *ir.Func, vals ...int64) []map[ir.Reg]int64 {
	var out []map[ir.Reg]int64
	for _, v := range vals {
		out = append(out, map[ir.Reg]int64{f.Params[0]: v})
	}
	return out
}

func TestBuildStraightLine(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v1 = add v1, v0
  v1 = add v1, v1
  ret v1
}
`)
	orig := f.Clone()
	Build(f)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify after Build: %v", err)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1, 7, -3))
}

func TestBuildDiamondInsertsPhi(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  branch v0, b1, b2
b1:
  v1 = loadimm 10
  jump b3
b2:
  v1 = loadimm 20
  jump b3
b3:
  ret v1
}
`)
	orig := f.Clone()
	Build(f)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := f.CountOp(ir.Phi); got != 1 {
		t.Errorf("φ count = %d, want 1", got)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1))
}

func TestBuildPrunesDeadPhis(t *testing.T) {
	// v1 is redefined in both arms but never used after the join:
	// pruned SSA must not place a φ for it.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 9
  branch v0, b1, b2
b1:
  v1 = loadimm 10
  jump b3
b2:
  v1 = loadimm 20
  jump b3
b3:
  ret v2
}
`)
	Build(f)
	if got := f.CountOp(ir.Phi); got != 0 {
		t.Errorf("φ count = %d, want 0 (dead φ not pruned)", got)
	}
}

func TestBuildLoop(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  jump b1
b1:
  v3 = cmp v2, v0
  branch v3, b2, b3
b2:
  v1 = add v1, v2
  v4 = loadimm 1
  v2 = add v2, v4
  jump b1
b3:
  ret v1
}
`)
	orig := f.Clone()
	Build(f)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Loop header needs φs for v1 and v2.
	if got := f.CountOp(ir.Phi); got != 2 {
		t.Errorf("φ count = %d, want 2", got)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1, 5, 10))
}

func TestRoundTripLoop(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  jump b1
b1:
  v3 = cmp v2, v0
  branch v3, b2, b3
b2:
  v1 = add v1, v2
  v4 = loadimm 1
  v2 = add v2, v4
  jump b1
b3:
  ret v1
}
`)
	orig := f.Clone()
	Build(f)
	Destruct(f)
	if got := f.CountOp(ir.Phi); got != 0 {
		t.Fatalf("φs remain after Destruct: %d", got)
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate after Destruct: %v", err)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1, 5, 10))
	// Destruction must introduce copies (the coalescing fodder).
	if f.CountOp(ir.Move) == 0 {
		t.Error("no copies introduced by Destruct")
	}
}

func TestDestructSplitsCriticalEdges(t *testing.T) {
	// b1 -> b1 (back edge from a branch) with b1 having 2 preds is
	// critical.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = add v1, v0
  v1 = move v2
  v3 = cmp v1, v0
  branch v3, b1, b2
b2:
  ret v1
}
`)
	orig := f.Clone()
	nBlocks := len(f.Blocks)
	Build(f)
	Destruct(f)
	if len(f.Blocks) <= nBlocks {
		t.Errorf("expected edge splitting to add blocks (%d -> %d)", nBlocks, len(f.Blocks))
	}
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 3, 9))
}

func TestSequenceParallelMoveSwap(t *testing.T) {
	next := 100
	newTemp := func() ir.Reg { next++; return ir.Virt(next) }
	a, b := ir.Virt(0), ir.Virt(1)
	moves := SequenceParallelMove([]ir.Reg{a, b}, []ir.Reg{b, a}, newTemp)
	// Simulate.
	vals := map[ir.Reg]int64{a: 1, b: 2}
	for _, m := range moves {
		vals[m.Defs[0]] = vals[m.Uses[0]]
	}
	if vals[a] != 2 || vals[b] != 1 {
		t.Errorf("swap failed: a=%d b=%d (moves=%v)", vals[a], vals[b], moves)
	}
	if len(moves) != 3 {
		t.Errorf("swap used %d moves, want 3", len(moves))
	}
}

func TestSequenceParallelMoveChainAndCycle(t *testing.T) {
	next := 100
	newTemp := func() ir.Reg { next++; return ir.Virt(next) }
	r := func(i int) ir.Reg { return ir.Virt(i) }
	// (v0,v1,v2,v3) := (v1,v2,v0,v3): 3-cycle plus identity.
	dsts := []ir.Reg{r(0), r(1), r(2), r(3)}
	srcs := []ir.Reg{r(1), r(2), r(0), r(3)}
	moves := SequenceParallelMove(dsts, srcs, newTemp)
	vals := map[ir.Reg]int64{r(0): 0, r(1): 1, r(2): 2, r(3): 3}
	for _, m := range moves {
		vals[m.Defs[0]] = vals[m.Uses[0]]
	}
	if vals[r(0)] != 1 || vals[r(1)] != 2 || vals[r(2)] != 0 || vals[r(3)] != 3 {
		t.Errorf("cycle result %v (moves=%v)", vals, moves)
	}
}

func TestSequenceParallelMoveIndependent(t *testing.T) {
	newTemp := func() ir.Reg { t.Fatal("temp must not be needed"); return ir.NoReg }
	r := func(i int) ir.Reg { return ir.Virt(i) }
	moves := SequenceParallelMove([]ir.Reg{r(10), r(11)}, []ir.Reg{r(0), r(1)}, newTemp)
	if len(moves) != 2 {
		t.Errorf("independent moves = %d, want 2", len(moves))
	}
}

func TestVerifyCatchesDoubleDef(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v1 = loadimm 2
  ret v1
}
`)
	if err := Verify(f); err == nil {
		t.Error("double definition not caught")
	}
}

func TestVerifyCatchesUndominatedUse(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 1
  jump b3
b2:
  jump b3
b3:
  ret v1
}
`)
	if err := Verify(f); err == nil {
		t.Error("undominated use not caught")
	}
}

func TestBuildParamsKeepNames(t *testing.T) {
	f := ir.MustParse(`
func f(v0, v1) {
b0:
  v2 = add v0, v1
  ret v2
}
`)
	Build(f)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.Params[0] != ir.Virt(0) || f.Params[1] != ir.Virt(1) {
		t.Errorf("params renamed: %v", f.Params)
	}
}

func TestBuildIdempotentOnSSA(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 1
  jump b3
b2:
  v2 = loadimm 2
  jump b3
b3:
  v3 = phi v1, v2
  ret v3
}
`)
	orig := f.Clone()
	Build(f)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1))
}

func TestDestructDuplicateEdgeTargets(t *testing.T) {
	// A branch whose both targets are the same block gives the join
	// two predecessor entries from one source; both edges are
	// critical and splitting must disambiguate the φ argument flow.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 3
  branch v0, b1, b1
b1:
  v2 = add v1, v0
  ret v2
}
`)
	orig := f.Clone()
	Build(f)
	Destruct(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	interpEq(t, orig, f, inputs1(orig, 0, 1, 5))
}

func TestBuildWithUndefinedUse(t *testing.T) {
	// v1 is defined only on one path but used after the join: SSA
	// construction must not crash, and executions staying on the
	// defined path must be preserved.
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 9
  jump b3
b2:
  jump b3
b3:
  v2 = addimm v0, 1
  branch v0, b4, b5
b4:
  v3 = add v1, v2
  ret v3
b5:
  ret v2
}
`)
	orig := f.Clone()
	Build(f)
	Destruct(f)
	if err := ir.Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// v0 = 1 takes the defined path end to end.
	a, err := ir.Interp(orig, map[ir.Reg]int64{orig.Params[0]: 1}, ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: 1}, ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ret != b.Ret {
		t.Errorf("defined path changed: %d vs %d", a.Ret, b.Ret)
	}
}
