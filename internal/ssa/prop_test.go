package ssa_test

import (
	"testing"
	"testing/quick"

	"prefcolor/internal/ir"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// propProfile is a small, branchy, loopy program shape for property
// tests.
var propProfile = workload.Profile{
	Name: "prop", Funcs: 1, Stmts: 14, MaxDepth: 2,
	LoopProb: 0.12, IfProb: 0.18, CallProb: 0.08, PairProb: 0.06,
	StoreProb: 0.12, Vars: 7, Params: 2,
}

func interpBoth(t *testing.T, a, b *ir.Func, m *target.Machine, seed int64) bool {
	t.Helper()
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	for _, base := range []int64{0, 1, seed % 13} {
		init := map[ir.Reg]int64{}
		initB := map[ir.Reg]int64{}
		for i, p := range a.Params {
			init[p] = base + int64(i)
			initB[b.Params[i]] = base + int64(i)
		}
		ra, err := ir.Interp(a, init, opts)
		if err != nil {
			t.Fatalf("seed %d: interp a: %v", seed, err)
		}
		rb, err := ir.Interp(b, initB, opts)
		if err != nil {
			t.Fatalf("seed %d: interp b: %v", seed, err)
		}
		if ra.HasRet != rb.HasRet || ra.Ret != rb.Ret || len(ra.Stores) != len(rb.Stores) {
			t.Logf("seed %d base %d: %v/%d vs %v/%d", seed, base, ra.Ret, len(ra.Stores), rb.Ret, len(rb.Stores))
			return false
		}
		for i := range ra.Stores {
			if ra.Stores[i] != rb.Stores[i] {
				return false
			}
		}
	}
	return true
}

// TestPropSSARoundTripPreservesSemantics: for random programs,
// Build+Destruct yields valid IR observably equivalent to the input.
func TestPropSSARoundTripPreservesSemantics(t *testing.T) {
	m := target.UsageModel(16)
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		f := workload.GenerateRawFunc(propProfile, m, seed)
		g := f.Clone()
		ssa.Build(g)
		if err := ssa.Verify(g); err != nil {
			t.Logf("seed %d: SSA verify: %v", seed, err)
			return false
		}
		ssa.Destruct(g)
		g.CompactNops()
		if err := ir.Validate(g); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		if g.CountOp(ir.Phi) != 0 {
			t.Logf("seed %d: φ survived destruction", seed)
			return false
		}
		return interpBoth(t, f, g, m, seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSSASingleAssignment: after Build, every virtual register
// has at most one definition and uses are dominated by their defs
// (Verify), and rebuilding SSA on SSA form stays stable and correct.
func TestPropSSAIdempotent(t *testing.T) {
	m := target.UsageModel(16)
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		f := workload.GenerateRawFunc(propProfile, m, seed)
		ssa.Build(f)
		before := f.Clone()
		ssa.Build(f) // again, on SSA input
		if err := ssa.Verify(f); err != nil {
			t.Logf("seed %d: verify after rebuild: %v", seed, err)
			return false
		}
		return interpBoth(t, before, f, m, seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
