package ssa

import (
	"fmt"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
)

// Verify checks that f is in valid SSA form:
//
//   - every virtual register has at most one definition (parameters
//     count as definitions at entry);
//   - every non-φ use is dominated by its definition;
//   - every φ argument's definition dominates the exit of the
//     corresponding predecessor.
//
// Physical registers are exempt (they are machine state). Unreachable
// blocks are ignored.
func Verify(f *ir.Func) error {
	dom := cfg.NewDomTree(f)

	type defsite struct {
		b   ir.BlockID
		idx int
	}
	defs := map[ir.Reg]defsite{}
	for _, p := range f.Params {
		if p.IsVirt() {
			defs[p] = defsite{0, -1}
		}
	}
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for i := range b.Instrs {
			for _, d := range b.Instrs[i].Defs {
				if !d.IsVirt() {
					continue
				}
				if prev, ok := defs[d]; ok {
					return fmt.Errorf("ssa.Verify: %v defined twice (b%d:%d and b%d:%d)", d, prev.b, prev.idx, b.ID, i)
				}
				defs[d] = defsite{b.ID, i}
			}
		}
	}

	dominatesUse := func(d defsite, ub ir.BlockID, uidx int) bool {
		if d.b == ub {
			return d.idx < uidx
		}
		return dom.Dominates(d.b, ub)
	}

	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				for pi, u := range in.Uses {
					if !u.IsVirt() {
						continue
					}
					d, ok := defs[u]
					if !ok {
						return fmt.Errorf("ssa.Verify: φ in b%d uses undefined %v", b.ID, u)
					}
					pred := b.Preds[pi]
					if !dom.Reachable(pred) {
						continue
					}
					// The def must dominate the predecessor's exit.
					if d.b != pred && !dom.Dominates(d.b, pred) {
						return fmt.Errorf("ssa.Verify: φ arg %v (def in b%d) does not dominate pred b%d exit", u, d.b, pred)
					}
				}
				continue
			}
			for _, u := range in.Uses {
				if !u.IsVirt() {
					continue
				}
				d, ok := defs[u]
				if !ok {
					return fmt.Errorf("ssa.Verify: b%d:%d uses undefined %v", b.ID, i, u)
				}
				if !dominatesUse(d, b.ID, i) {
					return fmt.Errorf("ssa.Verify: use of %v at b%d:%d not dominated by def at b%d:%d", u, b.ID, i, d.b, d.idx)
				}
			}
		}
	}
	return nil
}
