// Package ssa converts functions into and out of static single
// assignment form.
//
// Construction follows Cytron et al.: φ-functions are placed at the
// iterated dominance frontier of each variable's definition sites
// (pruned by liveness so dead φs are not created), then a
// dominator-tree walk renames every definition to a fresh virtual
// register. Destruction splits critical edges and lowers each φ to a
// parallel copy in the predecessor, sequentialized with Leroy's
// parallel-move algorithm. The copies that destruction introduces are
// exactly the copy-related live ranges the paper's coalescing
// machinery targets.
//
// Physical registers are machine state, not variables; they are never
// renamed and never get φs.
package ssa

import (
	"prefcolor/internal/cfg"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
)

// Build rewrites f into pruned SSA form in place.
func Build(f *ir.Func) {
	dom := cfg.NewDomTree(f)
	df := dom.Frontiers()
	live := liveness.Compute(f)

	// Definition sites per virtual register.
	defsites := map[ir.Reg][]ir.BlockID{}
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		seen := ir.NewRegSet()
		for i := range b.Instrs {
			for _, d := range b.Instrs[i].Defs {
				if d.IsVirt() && !seen.Has(d) {
					seen.Add(d)
					defsites[d] = append(defsites[d], b.ID)
				}
			}
		}
	}
	// Parameters are defined at entry.
	entrySeen := ir.NewRegSet()
	for _, p := range f.Params {
		if p.IsVirt() && !entrySeen.Has(p) {
			entrySeen.Add(p)
			defsites[p] = append(defsites[p], 0)
		}
	}

	// Place φs at iterated dominance frontiers, pruned by liveness.
	phiFor := map[ir.BlockID]map[ir.Reg]bool{} // block -> var needing φ
	for v, sites := range defsites {
		work := append([]ir.BlockID(nil), sites...)
		inWork := map[ir.BlockID]bool{}
		for _, s := range work {
			inWork[s] = true
		}
		placed := map[ir.BlockID]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if placed[y] || !live.LiveIn(y).Has(v) {
					continue
				}
				placed[y] = true
				if phiFor[y] == nil {
					phiFor[y] = map[ir.Reg]bool{}
				}
				phiFor[y][v] = true
				if !inWork[y] {
					inWork[y] = true
					work = append(work, y)
				}
			}
		}
	}

	// Materialize φ instructions (arguments temporarily the original
	// variable; renaming fills real versions).
	for bid, vars := range phiFor {
		b := f.Blocks[bid]
		var phis []ir.Instr
		for _, v := range sortedRegs(vars) {
			args := make([]ir.Reg, len(b.Preds))
			for i := range args {
				args[i] = v
			}
			phis = append(phis, ir.MakePhi(v, args...))
		}
		b.Instrs = append(phis, b.Instrs...)
	}

	// Rename with a dominator-tree walk.
	rn := &renamer{
		f:       f,
		dom:     dom,
		stacks:  map[ir.Reg][]ir.Reg{},
		phiOrig: map[phiKey]ir.Reg{},
	}
	// Record which original variable each φ stands for, keyed by block
	// and instruction index (both stable during renaming).
	for bid := range phiFor {
		b := f.Blocks[bid]
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.Phi {
				break
			}
			rn.phiOrig[phiKey{bid, i}] = b.Instrs[i].Def()
		}
	}
	// Parameters enter with their own names as version 0.
	for _, p := range f.Params {
		if p.IsVirt() {
			rn.stacks[p] = append(rn.stacks[p], p)
		}
	}
	rn.walk(0)
}

type phiKey struct {
	b   ir.BlockID
	idx int
}

type renamer struct {
	f       *ir.Func
	dom     *cfg.DomTree
	stacks  map[ir.Reg][]ir.Reg
	phiOrig map[phiKey]ir.Reg
}

func (rn *renamer) top(v ir.Reg) ir.Reg {
	s := rn.stacks[v]
	if len(s) == 0 {
		// Use without a dominating definition (possible on paths the
		// generator never executes); keep the original name.
		return v
	}
	return s[len(s)-1]
}

// origOf returns the pre-SSA variable a φ at (b, idx) stands for.
func (rn *renamer) origOf(b ir.BlockID, idx int) (ir.Reg, bool) {
	r, ok := rn.phiOrig[phiKey{b, idx}]
	return r, ok
}

func (rn *renamer) walk(bid ir.BlockID) {
	b := rn.f.Blocks[bid]
	var pushed []ir.Reg // originals pushed in this block, for popping

	define := func(in *ir.Instr, di int, v ir.Reg) {
		if !v.IsVirt() {
			return
		}
		nv := rn.f.NewReg()
		rn.stacks[v] = append(rn.stacks[v], nv)
		pushed = append(pushed, v)
		in.Defs[di] = nv
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op == ir.Phi {
			orig, ok := rn.origOf(bid, i)
			if !ok {
				orig = in.Def()
			}
			nv := rn.f.NewReg()
			rn.stacks[orig] = append(rn.stacks[orig], nv)
			pushed = append(pushed, orig)
			in.Defs[0] = nv
			continue
		}
		for ui, u := range in.Uses {
			if u.IsVirt() {
				in.Uses[ui] = rn.top(u)
			}
		}
		for di, d := range in.Defs {
			define(in, di, d)
		}
	}

	// Fill φ arguments in successors for edges leaving this block.
	for _, sid := range b.Succs {
		s := rn.f.Blocks[sid]
		for i := range s.Instrs {
			if s.Instrs[i].Op != ir.Phi {
				break
			}
			orig, ok := rn.origOf(sid, i)
			for pi, p := range s.Preds {
				if p != bid {
					continue
				}
				if ok {
					s.Instrs[i].Uses[pi] = rn.top(orig)
				} else if u := s.Instrs[i].Uses[pi]; u.IsVirt() {
					// A φ that predates this Build call: rename its
					// argument like an ordinary use at the pred exit.
					s.Instrs[i].Uses[pi] = rn.top(u)
				}
			}
		}
	}

	for _, c := range rn.dom.Children(bid) {
		rn.walk(c)
	}

	for i := len(pushed) - 1; i >= 0; i-- {
		v := pushed[i]
		rn.stacks[v] = rn.stacks[v][:len(rn.stacks[v])-1]
	}
}

func sortedRegs(m map[ir.Reg]bool) []ir.Reg {
	out := make([]ir.Reg, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
