package ssa

import (
	"prefcolor/internal/ir"
)

// Destruct lowers every φ-function into explicit copies, leaving the
// copy-heavy non-SSA form the paper's allocators start from.
//
// Critical edges (from a block with several successors to a block with
// several predecessors) are split first, so each φ's incoming copy has
// a place of its own. The copies implied by one edge form a parallel
// move; they are sequentialized, introducing a temporary only when a
// cyclic permutation requires one.
func Destruct(f *ir.Func) {
	splitCriticalEdges(f)

	for _, b := range f.Blocks {
		nPhi := 0
		for nPhi < len(b.Instrs) && b.Instrs[nPhi].Op == ir.Phi {
			nPhi++
		}
		if nPhi == 0 {
			continue
		}
		// For each predecessor, collect the parallel move and place
		// its sequentialization at the end of the predecessor (before
		// the terminator).
		for pi, pid := range b.Preds {
			var dsts, srcs []ir.Reg
			for i := 0; i < nPhi; i++ {
				dsts = append(dsts, b.Instrs[i].Def())
				srcs = append(srcs, b.Instrs[i].Uses[pi])
			}
			moves := SequenceParallelMove(dsts, srcs, f.NewReg)
			insertBeforeTerminator(f.Blocks[pid], moves)
		}
		b.Instrs = b.Instrs[nPhi:]
	}
}

// splitCriticalEdges inserts an empty block on every edge whose source
// has multiple successors and whose destination has multiple
// predecessors. φ argument positions in the destination are preserved:
// the predecessor entry is rewritten in place to the new middle block.
func splitCriticalEdges(f *ir.Func) {
	// Normalize Preds so succ-slot → pred-slot correspondence is the
	// one RecomputePreds produces, then enumerate edges with both
	// indices before mutating anything.
	f.RecomputePreds()
	type edge struct {
		from    ir.BlockID
		succIdx int
		to      ir.BlockID
		predIdx int
	}
	var critical []edge
	counters := make([]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for si, s := range b.Succs {
			predIdx := counters[s]
			counters[s]++
			if len(b.Succs) >= 2 && len(f.Blocks[s].Preds) >= 2 {
				critical = append(critical, edge{b.ID, si, s, predIdx})
			}
		}
	}
	for _, e := range critical {
		from, to := f.Blocks[e.from], f.Blocks[e.to]
		mid := f.NewBlock()
		mid.Instrs = []ir.Instr{{Op: ir.Jump}}
		mid.Succs = []ir.BlockID{to.ID}
		mid.Preds = []ir.BlockID{from.ID}
		from.Succs[e.succIdx] = mid.ID
		to.Preds[e.predIdx] = mid.ID
	}
}

func insertBeforeTerminator(b *ir.Block, moves []ir.Instr) {
	if len(moves) == 0 {
		return
	}
	n := len(b.Instrs)
	if n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		out := make([]ir.Instr, 0, n+len(moves))
		out = append(out, b.Instrs[:n-1]...)
		out = append(out, moves...)
		out = append(out, b.Instrs[n-1])
		b.Instrs = out
		return
	}
	b.Instrs = append(b.Instrs, moves...)
}

// SequenceParallelMove orders the parallel assignment dsts[i] :=
// srcs[i] into a sequence of Move instructions with equivalent
// semantics, allocating a temporary via newTemp only when a cycle
// forces one (Leroy's algorithm, as used in CompCert).
func SequenceParallelMove(dsts, srcs []ir.Reg, newTemp func() ir.Reg) []ir.Instr {
	type mv struct{ dst, src ir.Reg }
	var pending []mv
	for i := range dsts {
		if dsts[i] != srcs[i] {
			pending = append(pending, mv{dsts[i], srcs[i]})
		}
	}
	var out []ir.Instr
	// status: 0 = to move, 1 = being moved, 2 = moved
	status := make([]int, len(pending))
	var moveOne func(i int)
	moveOne = func(i int) {
		if pending[i].src == pending[i].dst {
			status[i] = 2
			return
		}
		status[i] = 1
		for j := range pending {
			if status[j] == 0 && pending[j].src == pending[i].dst {
				moveOne(j)
			} else if status[j] == 1 && j != i && pending[j].src == pending[i].dst {
				// Cycle: save the endangered source in a temp and
				// redirect the later move to read the temp.
				t := newTemp()
				out = append(out, ir.MakeMove(t, pending[j].src))
				pending[j].src = t
			}
		}
		out = append(out, ir.MakeMove(pending[i].dst, pending[i].src))
		status[i] = 2
	}
	for i := range pending {
		if status[i] == 0 {
			moveOne(i)
		}
	}
	return out
}
