package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// AllocationDigest allocates every function sequentially, in order,
// and hashes each one's complete allocation outcome — spilled-web
// count, spill code, and the final rewritten code with its register
// assignments. Two implementations of the allocation pipeline that
// produce identical assignments and spill sets produce identical
// digests, so this is the before/after fingerprint the performance
// work is checked against.
func AllocationDigest(funcs []*ir.Func, m *target.Machine, allocName string) (string, error) {
	return AllocationDigestOpts(funcs, m, allocName, regalloc.Options{})
}

// AllocationDigestOpts is AllocationDigest with explicit driver
// options. The digest hashes only the allocation outcome, never the
// telemetry, so it is the tool for asserting that instrumentation
// observes without steering: digests must match with collection on
// and off.
func AllocationDigestOpts(funcs []*ir.Func, m *target.Machine, allocName string, opts regalloc.Options) (string, error) {
	h := sha256.New()
	for _, f := range funcs {
		alloc, err := NewAllocator(allocName)
		if err != nil {
			return "", err
		}
		out, stats, err := regalloc.Run(f, m, alloc, opts)
		if err != nil {
			return "", fmt.Errorf("bench: digest %s/%s: %w", allocName, f.Name, err)
		}
		writeFuncDigest(h, f.Name, stats, out)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FuncDigest fingerprints one already-completed allocation with the
// same per-function record AllocationDigest hashes, so a result served
// from a cache can be compared bit-for-bit against a fresh
// single-function AllocationDigest run. name is the input function's
// name (identical to out.Name under the driver, which never renames).
func FuncDigest(name string, stats *regalloc.Stats, out *ir.Func) string {
	h := sha256.New()
	writeFuncDigest(h, name, stats, out)
	return hex.EncodeToString(h.Sum(nil))
}

// writeFuncDigest appends one function's allocation-outcome record —
// spilled-web count, spill code, final rewritten code — to h.
func writeFuncDigest(h io.Writer, name string, stats *regalloc.Stats, out *ir.Func) {
	fmt.Fprintf(h, "%s|webs=%d|loads=%d|stores=%d\n%s\n",
		name, stats.SpilledWebs, stats.SpillLoads, stats.SpillStores, out.String())
}
