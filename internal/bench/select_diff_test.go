package bench

import (
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// statsRecord strips the telemetry pointer so two Stats can be
// compared with == — every per-phase counter the driver reports must
// match, not just the digest.
func statsRecord(s *regalloc.Stats) regalloc.Stats {
	c := *s
	c.Telemetry = nil
	return c
}

// diffSelect runs f through alloc twice — incremental selector and
// the retained reference oracle — and requires a bit-identical
// outcome: same FuncDigest (assignments, spill code, rewritten code)
// and same driver statistics.
func diffSelect(t *testing.T, f *ir.Func, m *target.Machine, alloc *core.Allocator, label string) {
	t.Helper()
	outF, statsF, err := regalloc.Run(f, m, alloc, regalloc.Options{})
	if err != nil {
		t.Fatalf("%s/%s: incremental: %v", label, f.Name, err)
	}
	outR, statsR, err := regalloc.Run(f, m, alloc.WithReferenceSelector(), regalloc.Options{})
	if err != nil {
		t.Fatalf("%s/%s: reference: %v", label, f.Name, err)
	}
	if df, dr := FuncDigest(f.Name, statsF, outF), FuncDigest(f.Name, statsR, outR); df != dr {
		t.Errorf("%s/%s: digest diverged from reference selector:\n  incremental %s\n  reference   %s",
			label, f.Name, df, dr)
	}
	if rf, rr := statsRecord(statsF), statsRecord(statsR); rf != rr {
		t.Errorf("%s/%s: stats diverged from reference selector:\n  incremental %+v\n  reference   %+v",
			label, f.Name, rf, rr)
	}
}

// TestSelectorMatchesReference pins the tentpole equivalence: the
// incremental selector (lazy max-heap ready set, maintained forbidden-
// register masks) is bit-identical to the retained full-scan reference
// across every workload profile, both preference modes, and every
// ablation variant.
func TestSelectorMatchesReference(t *testing.T) {
	m := target.UsageModel(16)
	profiles := append(workload.Benchmarks(), workload.Large())
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, f := range workload.Generate(p, m) {
				diffSelect(t, f, m, core.New(), "pref-full")
				diffSelect(t, f, m, core.NewCoalesceOnly(), "pref-coalesce")
			}
		})
	}
	t.Run("ablations", func(t *testing.T) {
		t.Parallel()
		p := workload.Benchmarks()[4] // mpegaudio: pair-rich, loop-heavy
		funcs := workload.Generate(p, m)
		for _, v := range core.Variants() {
			for _, f := range funcs {
				diffSelect(t, f, m, core.NewAblated(v.Ablation), v.Label)
			}
		}
	})
}
