package bench

import (
	"io"
	"testing"

	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// TestAllocationDeterminism runs the full pipeline twice over the
// same generated workload and asserts bit-identical assignments and
// spill sets. This guards the dense (slice-indexed) state migration
// and any future parallel tie-breaking: the map-based implementation
// left a few iteration-order hazards (selector queues, limit-derived
// preferences) that only surfaced as run-to-run jitter.
func TestAllocationDeterminism(t *testing.T) {
	machines := []*target.Machine{
		target.UsageModel(16),
		// X86Like carries limited-register-usage constraints, the one
		// preference source that used to be emitted in map order.
		target.X86Like(16).WithIA64AddImmLimit(),
		target.S390Like(24),
	}
	for _, m := range machines {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			p := workload.Benchmarks()[4] // mpegaudio: pair-rich, loop-heavy
			funcs := workload.Generate(p, m)
			for _, alloc := range []string{"pref-full", "pref-coalesce", "chaitin"} {
				first, err := AllocationDigest(funcs, m, alloc)
				if err != nil {
					t.Fatalf("%s first run: %v", alloc, err)
				}
				second, err := AllocationDigest(funcs, m, alloc)
				if err != nil {
					t.Fatalf("%s second run: %v", alloc, err)
				}
				if first != second {
					t.Errorf("%s: allocation digest differs between identical runs:\n  %s\n  %s", alloc, first, second)
				}
				// Telemetry is observation-only: full collection plus
				// an event trace must leave every assignment, spill
				// set, and rewrite bit-identical.
				instrumented, err := AllocationDigestOpts(funcs, m, alloc, regalloc.Options{
					CollectTelemetry: true,
					TraceWriter:      io.Discard,
				})
				if err != nil {
					t.Fatalf("%s instrumented run: %v", alloc, err)
				}
				if instrumented != first {
					t.Errorf("%s: telemetry perturbed the allocation:\n  quiet %s\n  loud  %s", alloc, first, instrumented)
				}
			}
		})
	}
}
