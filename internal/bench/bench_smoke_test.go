package bench

import (
	"testing"
	"time"

	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

func TestNewAllocator(t *testing.T) {
	for _, name := range AllocatorNames() {
		a, err := NewAllocator(name)
		if err != nil {
			t.Errorf("NewAllocator(%q): %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("allocator %q reports name %q", name, a.Name())
		}
	}
	if _, err := NewAllocator("bogus"); err == nil {
		t.Error("NewAllocator accepted bogus name")
	}
}

func TestRatioAndGeoMean(t *testing.T) {
	if Ratio(3, 6) != 0.5 || Ratio(0, 0) != 1 || Ratio(5, 0) != 5 {
		t.Error("Ratio wrong")
	}
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestRunProgramSmoke(t *testing.T) {
	start := time.Now()
	p, _ := workload.ByName("db")
	m := target.UsageModel(16)
	base, err := RunProgram(p, m, "chaitin")
	if err != nil {
		t.Fatalf("chaitin: %v", err)
	}
	ours, err := RunProgram(p, m, "pref-full")
	if err != nil {
		t.Fatalf("pref-full: %v", err)
	}
	if base.MovesBefore == 0 || base.Cycles == 0 {
		t.Errorf("degenerate base result: %+v", base)
	}
	if ours.MovesBefore != base.MovesBefore {
		t.Errorf("input moves differ: %d vs %d (generation must be identical)", ours.MovesBefore, base.MovesBefore)
	}
	t.Logf("db/16: chaitin %+v", *base)
	t.Logf("db/16: pref-full %+v", *ours)
	t.Logf("elapsed: %v", time.Since(start))
}
