package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// digestAllocators are the configurations the golden digest pins: the
// full preference allocator (core package) and the Chaitin base
// (regalloc helpers), together covering both allocation code paths.
var digestAllocators = []string{"chaitin", "pref-full"}

const digestGolden = "testdata/digest_large.txt"

// TestLargeWorkloadDigestGolden pins the complete allocation outcome
// (spill sets and register assignments) of the large workload against
// a committed golden digest. Any change to the allocation data
// structures — the dense interference graph, the slice-indexed
// selector state — must reproduce these digests bit for bit.
// Regenerate with UPDATE_DIGESTS=1 only alongside an intentional
// allocation-behavior change.
func TestLargeWorkloadDigestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload digest is slow")
	}
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	var lines []string
	for _, name := range digestAllocators {
		d, err := AllocationDigest(funcs, m, name)
		if err != nil {
			t.Fatalf("digest %s: %v", name, err)
		}
		lines = append(lines, name+" "+d)
	}
	got := strings.Join(lines, "\n") + "\n"

	if os.Getenv("UPDATE_DIGESTS") != "" {
		if err := os.MkdirAll(filepath.Dir(digestGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", digestGolden)
		return
	}

	want, err := os.ReadFile(digestGolden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_DIGESTS=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("allocation digest changed:\ngot:\n%swant:\n%s", got, want)
	}
}

// BenchmarkAllocateAllLarge times the parallel batch driver over the
// whole large workload, per allocator — the sequential benchmark's
// wall-clock divided by whatever the worker pool can extract.
func BenchmarkAllocateAllLarge(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	for _, name := range digestAllocators {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
					NewAllocator: func() regalloc.Allocator {
						alloc, _ := NewAllocator(name)
						return alloc
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateLarge times sequential allocation of the whole
// large workload, per allocator — the headline number for the dense
// data-structure work. Run with -benchmem: the allocs/op column is
// what the workspace pooling is accountable to.
func BenchmarkAllocateLarge(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	for _, name := range digestAllocators {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, f := range funcs {
					alloc, err := NewAllocator(name)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := regalloc.Run(f, m, alloc, regalloc.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAllocateLargePooled is BenchmarkAllocateLarge with one
// workspace reused across every Run — the daemon's steady state, where
// cross-function buffer reuse comes on top of the per-round reuse the
// plain benchmark already gets.
func BenchmarkAllocateLargePooled(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	for _, name := range digestAllocators {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			ws := regalloc.NewWorkspace()
			for i := 0; i < b.N; i++ {
				for _, f := range funcs {
					alloc, err := NewAllocator(name)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := regalloc.Run(f, m, alloc, regalloc.Options{Workspace: ws}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
