// Package bench is the experiment harness: it runs the allocator
// configurations of the paper's evaluation over the synthetic
// SPECjvm98 workloads and reproduces every series of Figures 9, 10,
// and 11.
package bench

import (
	"fmt"
	"math"

	"prefcolor/internal/core"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
	"prefcolor/internal/regalloc/callcost"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/regalloc/iterated"
	"prefcolor/internal/regalloc/optimistic"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
	"prefcolor/internal/workload"
)

// The canonical allocator configurations register once, in
// presentation order (baselines, the linear-scan fast tier, then the
// preference-directed configurations). Further families drop in by
// calling regalloc.Register from their own package init and blank-
// importing that package here (or anywhere on the binary's import
// graph).
func init() {
	regalloc.Register("chaitin", func() regalloc.Allocator { return chaitin.New() })
	regalloc.Register("briggs-aggressive", func() regalloc.Allocator { return briggs.New() })
	regalloc.Register("briggs-conservative", func() regalloc.Allocator { return briggs.NewConservative() })
	regalloc.Register("iterated", func() regalloc.Allocator { return iterated.New() })
	regalloc.Register("optimistic", func() regalloc.Allocator { return optimistic.New() })
	regalloc.Register("priority", func() regalloc.Allocator { return priority.New() })
	regalloc.Register("callcost", func() regalloc.Allocator { return callcost.New() })
	regalloc.Register("linearscan", func() regalloc.Allocator { return linearscan.New() })
	regalloc.Register("pref-coalesce", func() regalloc.Allocator { return core.NewCoalesceOnly() })
	regalloc.Register("pref-full", func() regalloc.Allocator { return core.New() })
}

// NewAllocator builds a fresh allocator by registered name. Fresh
// instances keep runs independent.
func NewAllocator(name string) (regalloc.Allocator, error) {
	alloc, err := regalloc.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return alloc, nil
}

// AllocatorNames lists every available configuration, in registration
// order.
func AllocatorNames() []string { return regalloc.RegisteredNames() }

// ProgramResult aggregates one allocator over one whole benchmark.
type ProgramResult struct {
	Benchmark string
	Allocator string

	MovesBefore     int
	MovesEliminated int
	MovesRemaining  int
	SpillInstrs     int
	CallerSaves     int
	Cycles          float64
	FusedPairs      int
	MissedPairs     int
	LimitViolations int
	Funcs           int

	// Telemetry is the batch's merged instrumentation report: phase
	// timers, preference-outcome counters, and the ready-set
	// histogram, so benchmark records carry a phase breakdown
	// alongside the end-to-end numbers.
	Telemetry *telemetry.Snapshot
}

// RunProgram allocates every function of the benchmark through the
// parallel batch driver (each function's allocation is independent
// and generation is deterministic) and sums the statistics and cycle
// estimates. Aggregation walks the batch results in function order,
// so the floating-point cycle totals are reproducible run to run.
func RunProgram(p workload.Profile, m *target.Machine, allocName string) (*ProgramResult, error) {
	if _, err := NewAllocator(allocName); err != nil {
		return nil, err
	}
	funcs := workload.Generate(p, m)
	batch, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
		Options: regalloc.Options{CollectTelemetry: true},
		NewAllocator: func() regalloc.Allocator {
			alloc, _ := NewAllocator(allocName)
			return alloc
		},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%s: %w", p.Name, allocName, err)
	}

	res := &ProgramResult{
		Benchmark: p.Name, Allocator: allocName, Funcs: len(funcs),
		Telemetry: batch.Telemetry,
	}
	for i := range funcs {
		stats := batch.Stats[i]
		est := perfmodel.Estimate(batch.Funcs[i], m)
		res.MovesBefore += stats.MovesBefore
		res.MovesEliminated += stats.MovesEliminated
		res.MovesRemaining += stats.MovesRemaining
		res.SpillInstrs += stats.SpillInstrs()
		res.CallerSaves += stats.CallerSaveStores + stats.CallerSaveLoads
		res.Cycles += est.Cycles
		res.FusedPairs += est.FusedPairs
		res.MissedPairs += est.MissedPairs
		res.LimitViolations += est.LimitViolations
	}
	return res, nil
}

// Ratio is a smoothed quotient: zero denominators are lifted to one
// so an experiment where both sides eliminated the phenomenon
// entirely reads as 1.0 rather than dividing by zero.
func Ratio(num, den int) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		den = 1
	}
	return float64(num) / float64(den)
}

// GeoMean returns the geometric mean of strictly positive values;
// non-positive entries are clamped to a small epsilon, as the paper's
// "geo." columns do for vanishing bars.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Fig9Series are the algorithms Figure 9 compares against the Chaitin
// base: ours restricted to coalescing, Park–Moon optimistic
// coalescing, and Briggs with aggressive coalescing.
var Fig9Series = []string{"pref-coalesce", "optimistic", "briggs-aggressive"}

// Fig9Row is one benchmark's bars: ratio of moves eliminated and of
// spill instructions generated, per series, relative to Chaitin.
type Fig9Row struct {
	Benchmark  string
	MoveRatio  map[string]float64
	SpillRatio map[string]float64
}

// Figure9 reproduces Figure 9's two panels for one register count
// (16 for panels (a)/(b), 32 for (c)/(d)), returning one row per
// benchmark plus a final geometric-mean row. An optional benchmark
// subset restricts the run (used by fast tests); no names means all.
func Figure9(k int, benches ...string) ([]Fig9Row, error) {
	m := target.UsageModel(k)
	var rows []Fig9Row
	geoMove := map[string][]float64{}
	geoSpill := map[string][]float64{}
	for _, p := range selectBenchmarks(benches) {
		base, err := RunProgram(p, m, "chaitin")
		if err != nil {
			return nil, err
		}
		row := Fig9Row{
			Benchmark:  p.Name,
			MoveRatio:  map[string]float64{},
			SpillRatio: map[string]float64{},
		}
		for _, name := range Fig9Series {
			r, err := RunProgram(p, m, name)
			if err != nil {
				return nil, err
			}
			mv := Ratio(r.MovesEliminated, base.MovesEliminated)
			sp := Ratio(r.SpillInstrs, base.SpillInstrs)
			row.MoveRatio[name] = mv
			row.SpillRatio[name] = sp
			geoMove[name] = append(geoMove[name], mv)
			geoSpill[name] = append(geoSpill[name], sp)
		}
		rows = append(rows, row)
	}
	geo := Fig9Row{Benchmark: "geo.", MoveRatio: map[string]float64{}, SpillRatio: map[string]float64{}}
	for _, name := range Fig9Series {
		geo.MoveRatio[name] = GeoMean(geoMove[name])
		geo.SpillRatio[name] = GeoMean(geoSpill[name])
	}
	rows = append(rows, geo)
	return rows, nil
}

// Fig10Series are Figure 10's three configurations.
var Fig10Series = []string{"pref-coalesce", "optimistic", "pref-full"}

// Fig10Row is one benchmark's estimated execution cost per series.
type Fig10Row struct {
	Benchmark string
	Cycles    map[string]float64
}

// Figure10 reproduces one panel of Figure 10 (k = 16, 24, or 32):
// estimated execution cost of each benchmark under the coalescing-
// only configurations and the full-preference allocator, plus a
// geometric-mean row.
func Figure10(k int, benches ...string) ([]Fig10Row, error) {
	return cycleFigure(k, Fig10Series, benches)
}

// Fig11Series are Figure 11's five configurations.
var Fig11Series = []string{"pref-coalesce", "optimistic", "briggs-aggressive", "callcost", "pref-full"}

// Fig11Row is one benchmark's cost relative to full preferences.
type Fig11Row struct {
	Benchmark string
	Relative  map[string]float64
}

// Figure11 reproduces Figure 11: relative estimated execution cost
// against our full-preference allocator on the middle-pressure
// (24-register) model, for the three coalescing-only approaches and
// the aggressive+volatility (call-cost) configuration.
func Figure11(benches ...string) ([]Fig11Row, error) {
	rows, err := cycleFigure(24, Fig11Series, benches)
	if err != nil {
		return nil, err
	}
	var out []Fig11Row
	for _, r := range rows {
		rel := Fig11Row{Benchmark: r.Benchmark, Relative: map[string]float64{}}
		full := r.Cycles["pref-full"]
		for _, name := range Fig11Series {
			rel.Relative[name] = r.Cycles[name] / full
		}
		out = append(out, rel)
	}
	return out, nil
}

func cycleFigure(k int, series []string, benches []string) ([]Fig10Row, error) {
	m := target.UsageModel(k)
	var rows []Fig10Row
	geo := map[string][]float64{}
	for _, p := range selectBenchmarks(benches) {
		row := Fig10Row{Benchmark: p.Name, Cycles: map[string]float64{}}
		for _, name := range series {
			r, err := RunProgram(p, m, name)
			if err != nil {
				return nil, err
			}
			row.Cycles[name] = r.Cycles
			geo[name] = append(geo[name], r.Cycles)
		}
		rows = append(rows, row)
	}
	gr := Fig10Row{Benchmark: "geo.", Cycles: map[string]float64{}}
	for _, name := range series {
		gr.Cycles[name] = GeoMean(geo[name])
	}
	rows = append(rows, gr)
	return rows, nil
}

// selectBenchmarks resolves a benchmark-name subset, defaulting to
// the full suite; unknown names are ignored.
func selectBenchmarks(names []string) []workload.Profile {
	all := workload.Benchmarks()
	if len(names) == 0 {
		return all
	}
	var out []workload.Profile
	for _, n := range names {
		for _, p := range all {
			if p.Name == n {
				out = append(out, p)
			}
		}
	}
	return out
}
