package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// workspaceAllocators covers both pipeline code paths plus the
// coalesce-only preference mode, whose selector takes different
// branches through the pooled buffers.
var workspaceAllocators = []string{"chaitin", "pref-full", "pref-coalesce"}

// TestWorkspaceReuseDigestsMatch is the pooling correctness bar: one
// workspace reused across every function of a workload must produce
// the exact allocation outcome of fresh per-Run state. The workspace
// is shared sequentially across all functions (and all their spill
// rounds), so every scratch buffer gets borrowed dirty many times.
func TestWorkspaceReuseDigestsMatch(t *testing.T) {
	m := target.UsageModel(16)
	for _, p := range []workload.Profile{workload.Benchmarks()[4], workload.Benchmarks()[1]} {
		funcs := workload.Generate(p, m)
		for _, name := range workspaceAllocators {
			fresh, err := AllocationDigest(funcs, m, name)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", p.Name, name, err)
			}
			reused, err := AllocationDigestOpts(funcs, m, name,
				regalloc.Options{Workspace: regalloc.NewWorkspace()})
			if err != nil {
				t.Fatalf("%s/%s reused: %v", p.Name, name, err)
			}
			if fresh != reused {
				t.Errorf("%s/%s: workspace reuse changed the allocation outcome\nfresh:  %s\nreused: %s",
					p.Name, name, fresh, reused)
			}
		}
	}
}

// TestWorkspaceReuseAcrossSpillRounds pins the round-loop hygiene: a
// register-starved machine forces several spill rounds through one
// workspace, and a workspace pre-dirtied by a different function must
// still reproduce the fresh outcome bit for bit. This is the
// regression test for stale per-round state (marker sets, spill-temp
// flags, selector buffers) surviving a borrow.
func TestWorkspaceReuseAcrossSpillRounds(t *testing.T) {
	m := target.UsageModel(4) // starved: every heavy function iterates
	funcs := workload.Generate(workload.Benchmarks()[4], m)

	maxRounds := 0
	for i, f := range funcs {
		alloc, err := NewAllocator("pref-full")
		if err != nil {
			t.Fatal(err)
		}
		freshOut, freshStats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
		if err != nil {
			t.Fatalf("func %d fresh: %v", i, err)
		}
		if freshStats.Rounds > maxRounds {
			maxRounds = freshStats.Rounds
		}

		// Dirty a workspace on a *different* function first, then reuse
		// it: everything left behind must be invisible.
		ws := regalloc.NewWorkspace()
		warm, err := NewAllocator("pref-full")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := regalloc.Run(funcs[(i+1)%len(funcs)], m, warm, regalloc.Options{Workspace: ws}); err != nil {
			t.Fatalf("func %d warmup: %v", i, err)
		}
		alloc2, err := NewAllocator("pref-full")
		if err != nil {
			t.Fatal(err)
		}
		reusedOut, reusedStats, err := regalloc.Run(f, m, alloc2, regalloc.Options{Workspace: ws})
		if err != nil {
			t.Fatalf("func %d reused: %v", i, err)
		}
		if FuncDigest(f.Name, freshStats, freshOut) != FuncDigest(f.Name, reusedStats, reusedOut) {
			t.Errorf("func %d (%s): dirty-workspace run diverged after %d rounds",
				i, f.Name, freshStats.Rounds)
		}
	}
	if maxRounds < 3 {
		t.Fatalf("workload only reached %d spill rounds; the test needs ≥3 to exercise per-round clearing", maxRounds)
	}
}

// TestAllocateAllWorkerCountInvariance runs the batch driver at
// several pool widths — each worker owning a private reused workspace
// — and checks every width reproduces the sequential digest. Under
// -race this also exercises concurrent workspace ownership.
func TestAllocateAllWorkerCountInvariance(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[4], m)
	want, err := AllocationDigest(funcs, m, "pref-full")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
			Options: regalloc.Options{},
			NewAllocator: func() regalloc.Allocator {
				alloc, _ := NewAllocator("pref-full")
				return alloc
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := sha256.New()
		for i, f := range funcs {
			writeFuncDigest(h, f.Name, res.Stats[i], res.Funcs[i])
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != want {
			t.Errorf("workers=%d: batch digest %s != sequential %s", workers, got, want)
		}
	}
}

// TestTelemetryMemCountersPopulated checks the new memory observables:
// a telemetry-enabled run reports its allocation delta, and the digest
// stays byte-identical with the counters on (instrumentation observes,
// never steers).
func TestTelemetryMemCountersPopulated(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[1], m)
	plain, err := AllocationDigest(funcs, m, "pref-full")
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := AllocationDigestOpts(funcs, m, "pref-full",
		regalloc.Options{CollectTelemetry: true, Workspace: regalloc.NewWorkspace()})
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Errorf("telemetry + workspace changed the outcome: %s != %s", plain, instrumented)
	}

	alloc, err := NewAllocator("pref-full")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := regalloc.Run(funcs[0], m, alloc, regalloc.Options{CollectTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Telemetry == nil {
		t.Fatal("no telemetry snapshot")
	}
	if stats.Telemetry.BytesAllocated == 0 {
		t.Error("BytesAllocated not populated")
	}
	_ = fmt.Sprintf("%d", stats.Telemetry.GCCycles) // GC cycles may legitimately be zero
}
