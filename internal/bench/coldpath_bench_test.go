package bench

import (
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// coldCorpus is the large workload in both wire forms, the input to
// the cold-path microbenchmarks.
func coldCorpus(b *testing.B) (texts []string, wires [][]byte, bytesText, bytesBin int64) {
	b.Helper()
	m := target.UsageModel(16)
	for _, f := range workload.Generate(workload.Large(), m) {
		text := f.String()
		wire := ir.EncodeBinary(f)
		texts = append(texts, text)
		wires = append(wires, wire)
		bytesText += int64(len(text))
		bytesBin += int64(len(wire))
	}
	return
}

// BenchmarkParseText times the textual front end over the large
// workload — the cold path every /v1/allocate text request pays before
// the binary format existed.
func BenchmarkParseText(b *testing.B) {
	texts, _, nbytes, _ := coldCorpus(b)
	b.SetBytes(nbytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range texts {
			if _, err := ir.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDecodeBinary is BenchmarkParseText over the binary wire
// format; the ratio of the two ns/op columns is the decode speedup the
// format is accountable to.
func BenchmarkDecodeBinary(b *testing.B) {
	_, wires, _, nbytes := coldCorpus(b)
	b.SetBytes(nbytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wire := range wires {
			if _, err := ir.DecodeBinary(wire); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEncodeBinary times the producer side (prefgc -emit-binary,
// the daemon's canonicalization).
func BenchmarkEncodeBinary(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			buf = ir.AppendBinary(buf[:0], f)
		}
	}
}

// BenchmarkGraphBuild times interference-graph construction alone —
// the functions are destructed and renumbered once outside the loop,
// liveness is precomputed, and the graph is rebuilt into a reused
// scratch every iteration — so the word-at-a-time build kernel's gain
// is visible without allocator noise.
func BenchmarkGraphBuild(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	type prepared struct {
		f     *ir.Func
		loops *cfg.LoopInfo
		live  *liveness.Info
	}
	var prep []prepared
	for _, f := range funcs {
		ssa.Destruct(f)
		if _, err := ig.Renumber(f); err != nil {
			b.Fatal(err)
		}
		dom := cfg.NewDomTree(f)
		prep = append(prep, prepared{f: f, loops: cfg.FindLoops(f, dom), live: liveness.Compute(f)})
	}
	ws := &ig.GraphScratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range prep {
			if _, err := ig.BuildInto(ws, p.f, m, p.loops, p.live); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRenumber times web discovery (reaching defs + union-find)
// with a reused scratch, covering the occupancy-mask fast paths. The
// functions are already in web form after the first pass, which is
// exactly the driver's steady state: every spill round renumbers
// already-renumbered code.
func BenchmarkRenumber(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	ws := &ig.RenumberScratch{}
	for _, f := range funcs {
		ssa.Destruct(f)
		if _, err := ig.RenumberInto(f, ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			if _, err := ig.RenumberInto(f, ws); err != nil {
				b.Fatal(err)
			}
		}
	}
}
