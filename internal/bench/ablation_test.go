package bench

import "testing"

func TestAblationVariantsNamed(t *testing.T) {
	if AblationVariants[0].Label != "full" {
		t.Fatal("first variant must be the full algorithm")
	}
	seen := map[string]bool{}
	for _, v := range AblationVariants {
		if seen[v.Label] {
			t.Errorf("duplicate label %q", v.Label)
		}
		seen[v.Label] = true
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run skipped in -short mode")
	}
	rows, err := Ablations(16, "mpegaudio", "jess")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants) {
		t.Fatalf("rows = %d, want %d", len(rows), len(AblationVariants))
	}
	full := rows[0]
	if full.Cycles <= 0 {
		t.Fatalf("degenerate full row: %+v", full)
	}
	for _, r := range rows[1:] {
		t.Logf("%-20s cycles=%.0f (full %.0f) moves-left=%d (full %d) fused=%d (full %d)",
			r.Label, r.Cycles, full.Cycles, r.MovesRemaining, full.MovesRemaining, r.FusedPairs, full.FusedPairs)
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// The differential priority (§5.3 step 3) matters: FIFO costs
	// cycles.
	if byLabel["fifo-priority"].Cycles <= full.Cycles {
		t.Errorf("FIFO priority did not cost cycles: %.0f vs %.0f",
			byLabel["fifo-priority"].Cycles, full.Cycles)
	}
	// The recoloring fixup only ever removes copies.
	if byLabel["no-recolor"].MovesRemaining < full.MovesRemaining {
		t.Errorf("recoloring increased remaining moves: %d vs %d",
			full.MovesRemaining, byLabel["no-recolor"].MovesRemaining)
	}
	// The CPG's contribution, isolated from the fixup: stack-order
	// (no CPG, no fixup) must be worse than no-recolor (CPG, no
	// fixup). With the fixup on, the two mechanisms overlap and
	// no-cpg may tie the full algorithm — that is the measured
	// finding recorded in EXPERIMENTS.md.
	if byLabel["stack-order"].Cycles <= byLabel["no-recolor"].Cycles {
		t.Errorf("CPG shows no benefit without the fixup: stack-order %.0f vs no-recolor %.0f",
			byLabel["stack-order"].Cycles, byLabel["no-recolor"].Cycles)
	}
}
