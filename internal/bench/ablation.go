package bench

import (
	"fmt"

	"prefcolor/internal/core"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// AblationVariants are the design-choice knock-outs studied by the
// ablation harness, in report order (the shared registry lives in
// internal/core so the metamorphic matrix replays the same variants).
var AblationVariants = core.Variants()

// AblationRow is one variant's aggregate over a benchmark set.
type AblationRow struct {
	Label           string
	Cycles          float64
	MovesRemaining  int
	SpillInstrs     int
	FusedPairs      int
	MissedPairs     int
	LimitViolations int
}

// Ablations runs the full-preference allocator and its knock-out
// variants over the named benchmarks (all nine when empty) with k
// registers.
func Ablations(k int, benches ...string) ([]AblationRow, error) {
	m := target.UsageModel(k)
	var rows []AblationRow
	for _, v := range AblationVariants {
		row := AblationRow{Label: v.Label}
		for _, p := range selectBenchmarks(benches) {
			r, err := runAblated(p, m, v.Ablation)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %s: %w", v.Label, err)
			}
			row.Cycles += r.Cycles
			row.MovesRemaining += r.MovesRemaining
			row.SpillInstrs += r.SpillInstrs
			row.FusedPairs += r.FusedPairs
			row.MissedPairs += r.MissedPairs
			row.LimitViolations += r.LimitViolations
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runAblated(p workload.Profile, m *target.Machine, ab core.Ablation) (*ProgramResult, error) {
	funcs := workload.Generate(p, m)
	res := &ProgramResult{Benchmark: p.Name}
	for i, f := range funcs {
		alloc := core.NewAblated(ab)
		out, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s func %d: %w", p.Name, i, err)
		}
		est := perfmodel.Estimate(out, m)
		res.MovesRemaining += stats.MovesRemaining
		res.SpillInstrs += stats.SpillInstrs()
		res.Cycles += est.Cycles
		res.FusedPairs += est.FusedPairs
		res.MissedPairs += est.MissedPairs
		res.LimitViolations += est.LimitViolations
	}
	return res, nil
}
