package bench

import (
	"testing"

	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// The figure tests assert the qualitative claims of the paper's
// evaluation on a benchmark subset (full runs live in cmd/figures and
// the root benchmarks). They are skipped under -short.

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	rows, err := Figure9(16, "jess", "db", "mpegaudio")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[3].Benchmark != "geo." {
		t.Fatalf("rows = %d (last %q), want 3 benchmarks + geo", len(rows), rows[len(rows)-1].Benchmark)
	}
	geo := rows[3]
	for _, series := range Fig9Series {
		// Paper: all approaches remove the vast majority of what the
		// base removes.
		if geo.MoveRatio[series] < 0.80 {
			t.Errorf("%s move ratio %.3f < 0.80", series, geo.MoveRatio[series])
		}
		// Paper: all approaches generate clearly less spill code than
		// Chaitin at 16 registers.
		if geo.SpillRatio[series] >= 1.0 {
			t.Errorf("%s spill ratio %.3f >= 1", series, geo.SpillRatio[series])
		}
	}
	// Paper: ours suppresses spill code best.
	ours := geo.SpillRatio["pref-coalesce"]
	if ours > geo.SpillRatio["optimistic"] || ours > geo.SpillRatio["briggs-aggressive"] {
		t.Errorf("pref-coalesce spill ratio %.3f is not the best of %v", ours, geo.SpillRatio)
	}
}

func TestFigure9HighRegsSpillsVanish(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	// Paper: "about 90% of the spill instructions [are] eliminated
	// when using 32 registers" — compare each algorithm's absolute
	// spill code at 32 registers against its own at 16.
	import16 := target.UsageModel(16)
	import32 := target.UsageModel(32)
	for _, name := range []string{"chaitin", "pref-coalesce"} {
		s16, s32 := 0, 0
		for _, bn := range []string{"jess", "db", "compress"} {
			p, err := workload.ByName(bn)
			if err != nil {
				t.Fatal(err)
			}
			r16, err := RunProgram(p, import16, name)
			if err != nil {
				t.Fatal(err)
			}
			r32, err := RunProgram(p, import32, name)
			if err != nil {
				t.Fatal(err)
			}
			s16 += r16.SpillInstrs
			s32 += r32.SpillInstrs
		}
		if s16 == 0 {
			t.Fatalf("%s: no spills at 16 registers; workloads too light", name)
		}
		if ratio := float64(s32) / float64(s16); ratio > 0.15 {
			t.Errorf("%s: 32-register spills are %.0f%% of 16-register spills (%d/%d); paper expects ~90%% elimination",
				name, ratio*100, s32, s16)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	rows, err := Figure10(16, "mpegaudio", "jess", "compress")
	if err != nil {
		t.Fatal(err)
	}
	geo := rows[len(rows)-1]
	full := geo.Cycles["pref-full"]
	// Paper: the full-preference configuration clearly beats both
	// coalescing-only configurations.
	if full >= geo.Cycles["pref-coalesce"] {
		t.Errorf("full (%.0f) not better than coalesce-only (%.0f)", full, geo.Cycles["pref-coalesce"])
	}
	if full >= geo.Cycles["optimistic"] {
		t.Errorf("full (%.0f) not better than optimistic (%.0f)", full, geo.Cycles["optimistic"])
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	rows, err := Figure11("jess", "mpegaudio", "db", "compress")
	if err != nil {
		t.Fatal(err)
	}
	geo := rows[len(rows)-1]
	// Paper: ours wins overall against aggressive+volatility, and the
	// coalescing-only approaches trail; db may go either way (the
	// paper's own worst case loses 4% there).
	if geo.Relative["callcost"] <= 1.0 {
		t.Errorf("callcost relative %.3f; ours should win on the geometric mean", geo.Relative["callcost"])
	}
	if geo.Relative["pref-coalesce"] <= 1.0 {
		t.Errorf("pref-coalesce relative %.3f; full preferences should win", geo.Relative["pref-coalesce"])
	}
	for _, r := range rows {
		if r.Benchmark == "db" {
			if r.Relative["callcost"] < 0.9 {
				t.Errorf("db callcost relative %.3f implausibly low", r.Relative["callcost"])
			}
		}
	}
}
