package cfg

import (
	"math"

	"prefcolor/internal/ir"
)

// Loop is one natural loop: a header and the set of blocks that reach
// a back edge's source without leaving the header's dominance region.
type Loop struct {
	Header ir.BlockID
	Blocks map[ir.BlockID]bool

	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop

	// Depth is the nesting depth; outermost loops have depth 1.
	Depth int
}

// LoopInfo holds the natural loops of a function and each block's
// nesting depth.
type LoopInfo struct {
	Loops []*Loop

	// depth[b] is the number of loops containing b (0 outside loops).
	depth []int
}

// FindLoops detects natural loops via back edges (edges t→h where h
// dominates t), merging loops that share a header, and computes
// nesting by containment.
func FindLoops(f *ir.Func, dom *DomTree) *LoopInfo {
	byHeader := map[ir.BlockID]*Loop{}
	for _, b := range f.Blocks {
		if !dom.Reachable(b.ID) {
			continue
		}
		for _, s := range b.Succs {
			if !dom.Dominates(s, b.ID) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[ir.BlockID]bool{s: true}}
				byHeader[s] = l
			}
			collectLoopBody(f, dom, l, b.ID)
		}
	}

	li := &LoopInfo{depth: make([]int, len(f.Blocks))}
	for _, l := range byHeader {
		li.Loops = append(li.Loops, l)
	}
	// Deterministic order: by header.
	for i := 1; i < len(li.Loops); i++ {
		for j := i; j > 0 && li.Loops[j].Header < li.Loops[j-1].Header; j-- {
			li.Loops[j], li.Loops[j-1] = li.Loops[j-1], li.Loops[j]
		}
	}

	// Nesting: loop A is the parent of B if A strictly contains B's
	// header and A != B; pick the smallest such container.
	for _, inner := range li.Loops {
		var best *Loop
		for _, outer := range li.Loops {
			if outer == inner || !outer.Blocks[inner.Header] {
				continue
			}
			if best == nil || len(outer.Blocks) < len(best.Blocks) {
				best = outer
			}
		}
		inner.Parent = best
	}
	for _, l := range li.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
		for b := range l.Blocks {
			if d > li.depth[b] {
				li.depth[b] = d
			}
		}
	}
	return li
}

// collectLoopBody adds to l every reachable block that reaches tail
// backwards without passing through the header. Unreachable
// predecessors are excluded: they are not dominated by the header and
// do not execute, so counting them into the loop would inflate their
// frequency estimates.
func collectLoopBody(f *ir.Func, dom *DomTree, l *Loop, tail ir.BlockID) {
	if l.Blocks[tail] {
		return
	}
	stack := []ir.BlockID{tail}
	l.Blocks[tail] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range f.Blocks[b].Preds {
			if !l.Blocks[p] && dom.Reachable(p) {
				l.Blocks[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// Depth returns the loop-nesting depth of block b (0 outside loops).
func (li *LoopInfo) Depth(b ir.BlockID) int { return li.depth[b] }

// maxFreqDepth caps the exponent so frequencies stay finite and
// comparable; the paper's single example uses one level (factor 10).
const maxFreqDepth = 8

// Freq returns the paper's execution-frequency heuristic for block b:
// 10^depth, capped at 10^8. Blocks outside loops have frequency 1,
// matching Freq_Fact(i0)=Freq_Fact(i9)=1 and 10 inside the loop in the
// Appendix.
func (li *LoopInfo) Freq(b ir.BlockID) float64 {
	d := li.depth[b]
	if d > maxFreqDepth {
		d = maxFreqDepth
	}
	return math.Pow(10, float64(d))
}
