// Package cfg provides control-flow analyses over ir.Func: dominator
// trees, dominance frontiers, natural-loop detection with nesting
// depths, and the execution-frequency estimate the paper's cost model
// uses (Freq_Fact = 10^loop-depth).
package cfg

import (
	"prefcolor/internal/ir"
)

// DomTree is the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm").
type DomTree struct {
	f *ir.Func

	// idom[b] is the immediate dominator of block b; the entry block's
	// idom is itself. Unreachable blocks have idom -1.
	idom []ir.BlockID

	// children[b] lists the blocks immediately dominated by b.
	children [][]ir.BlockID

	// postorder holds reachable blocks in a reverse-postorder walk of
	// the CFG (entry first).
	rpo []ir.BlockID

	// rpoNum[b] is b's reverse-postorder number, or -1 if unreachable.
	rpoNum []int
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *ir.Func) *DomTree {
	n := len(f.Blocks)
	d := &DomTree{
		f:        f,
		idom:     make([]ir.BlockID, n),
		children: make([][]ir.BlockID, n),
		rpoNum:   make([]int, n),
	}
	for i := range d.idom {
		d.idom[i] = -1
		d.rpoNum[i] = -1
	}

	// Depth-first walk to a postorder, then reverse it.
	visited := make([]bool, n)
	var post []ir.BlockID
	var dfs func(b ir.BlockID)
	dfs = func(b ir.BlockID) {
		visited[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	d.rpo = make([]ir.BlockID, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		d.rpo = append(d.rpo, post[i])
	}
	for i, b := range d.rpo {
		d.rpoNum[b] = i
	}

	// Iterate to a fixed point.
	d.idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom ir.BlockID = -1
			for _, p := range f.Blocks[b].Preds {
				if d.rpoNum[p] < 0 || d.idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}

	for _, b := range d.rpo {
		if b == 0 {
			continue
		}
		if p := d.idom[b]; p >= 0 {
			d.children[p] = append(d.children[p], b)
		}
	}
	return d
}

func (d *DomTree) intersect(a, b ir.BlockID) ir.BlockID {
	for a != b {
		for d.rpoNum[a] > d.rpoNum[b] {
			a = d.idom[a]
		}
		for d.rpoNum[b] > d.rpoNum[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b; the entry returns itself
// and unreachable blocks return -1.
func (d *DomTree) Idom(b ir.BlockID) ir.BlockID { return d.idom[b] }

// Children returns the blocks whose immediate dominator is b.
func (d *DomTree) Children(b ir.BlockID) []ir.BlockID { return d.children[b] }

// Reachable reports whether b is reachable from the entry.
func (d *DomTree) Reachable(b ir.BlockID) bool { return d.rpoNum[b] >= 0 }

// RPO returns the reachable blocks in reverse postorder (entry first).
func (d *DomTree) RPO() []ir.BlockID { return d.rpo }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b ir.BlockID) bool {
	if !d.Reachable(a) || !d.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = d.idom[b]
	}
}

// Frontiers computes dominance frontiers per block (Cytron et al. via
// the Cooper–Harvey–Kennedy formulation): DF[b] contains each block j
// with a predecessor dominated by b (or equal to b) that b does not
// strictly dominate.
func (d *DomTree) Frontiers() [][]ir.BlockID {
	n := len(d.f.Blocks)
	df := make([]map[ir.BlockID]bool, n)
	for _, b := range d.rpo {
		blk := d.f.Blocks[b]
		if len(blk.Preds) < 2 {
			continue
		}
		for _, p := range blk.Preds {
			if !d.Reachable(p) {
				continue
			}
			runner := p
			for runner != d.idom[b] {
				if df[runner] == nil {
					df[runner] = map[ir.BlockID]bool{}
				}
				df[runner][b] = true
				runner = d.idom[runner]
			}
		}
	}
	out := make([][]ir.BlockID, n)
	for i, m := range df {
		for b := range m {
			out[i] = append(out[i], b)
		}
		sortBlockIDs(out[i])
	}
	return out
}

func sortBlockIDs(s []ir.BlockID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
