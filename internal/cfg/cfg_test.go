package cfg

import (
	"testing"

	"prefcolor/internal/ir"
)

// chain builds b0 -> b1 -> b2 -> ret.
func chain(t *testing.T) *ir.Func {
	t.Helper()
	f := ir.MustParse(`
func chain() {
b0:
  jump b1
b1:
  jump b2
b2:
  ret
}
`)
	return f
}

// diamond builds b0 -> {b1,b2} -> b3.
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	return ir.MustParse(`
func d(v0) {
b0:
  branch v0, b1, b2
b1:
  jump b3
b2:
  jump b3
b3:
  ret
}
`)
}

// loopFunc builds b0 -> b1 (header) -> b2 (body) -> b1, b1 -> b3.
func loopFunc(t *testing.T) *ir.Func {
	t.Helper()
	return ir.MustParse(`
func l(v0) {
b0:
  jump b1
b1:
  branch v0, b2, b3
b2:
  jump b1
b3:
  ret
}
`)
}

// nested builds a two-level loop nest:
// b0 -> b1(outer hdr) -> b2(inner hdr) -> b3(inner body) -> b2,
// b2 -> b4 -> b1, b1 -> b5(exit).
func nested(t *testing.T) *ir.Func {
	t.Helper()
	return ir.MustParse(`
func n(v0) {
b0:
  jump b1
b1:
  branch v0, b2, b5
b2:
  branch v0, b3, b4
b3:
  jump b2
b4:
  jump b1
b5:
  ret
}
`)
}

func TestDomChain(t *testing.T) {
	f := chain(t)
	d := NewDomTree(f)
	want := []ir.BlockID{0, 0, 1}
	for b, w := range want {
		if got := d.Idom(ir.BlockID(b)); got != w {
			t.Errorf("idom(b%d) = b%d, want b%d", b, got, w)
		}
	}
	if !d.Dominates(0, 2) || !d.Dominates(1, 2) || d.Dominates(2, 1) {
		t.Error("Dominates wrong on chain")
	}
}

func TestDomDiamond(t *testing.T) {
	f := diamond(t)
	d := NewDomTree(f)
	for b, w := range map[ir.BlockID]ir.BlockID{1: 0, 2: 0, 3: 0} {
		if got := d.Idom(b); got != w {
			t.Errorf("idom(b%d) = b%d, want b%d", b, got, w)
		}
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("branch arms must not dominate join")
	}
	if len(d.Children(0)) != 3 {
		t.Errorf("children(b0) = %v, want three blocks", d.Children(0))
	}
}

func TestDomLoop(t *testing.T) {
	f := loopFunc(t)
	d := NewDomTree(f)
	for b, w := range map[ir.BlockID]ir.BlockID{1: 0, 2: 1, 3: 1} {
		if got := d.Idom(b); got != w {
			t.Errorf("idom(b%d) = b%d, want b%d", b, got, w)
		}
	}
}

func TestDomUnreachable(t *testing.T) {
	f := chain(t)
	// Add an unreachable block.
	ub := f.NewBlock()
	ub.Instrs = []ir.Instr{ir.MakeRet(ir.NoReg)}
	f.RecomputePreds()
	d := NewDomTree(f)
	if d.Reachable(ub.ID) {
		t.Error("unreachable block reported reachable")
	}
	if d.Idom(ub.ID) != -1 {
		t.Errorf("idom(unreachable) = %d, want -1", d.Idom(ub.ID))
	}
	if d.Dominates(0, ub.ID) {
		t.Error("Dominates must be false for unreachable blocks")
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	f := nested(t)
	d := NewDomTree(f)
	rpo := d.RPO()
	if len(rpo) != 6 || rpo[0] != 0 {
		t.Fatalf("RPO = %v", rpo)
	}
	// Every block must appear after its idom.
	pos := map[ir.BlockID]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, b := range rpo[1:] {
		if pos[d.Idom(b)] >= pos[b] {
			t.Errorf("b%d appears before its idom b%d in RPO", b, d.Idom(b))
		}
	}
}

func TestFrontiersDiamond(t *testing.T) {
	f := diamond(t)
	d := NewDomTree(f)
	df := d.Frontiers()
	if len(df[1]) != 1 || df[1][0] != 3 {
		t.Errorf("DF(b1) = %v, want [b3]", df[1])
	}
	if len(df[2]) != 1 || df[2][0] != 3 {
		t.Errorf("DF(b2) = %v, want [b3]", df[2])
	}
	if len(df[0]) != 0 {
		t.Errorf("DF(b0) = %v, want empty", df[0])
	}
	if len(df[3]) != 0 {
		t.Errorf("DF(b3) = %v, want empty", df[3])
	}
}

func TestFrontiersLoop(t *testing.T) {
	f := loopFunc(t)
	d := NewDomTree(f)
	df := d.Frontiers()
	// The loop header is in its own frontier (via the back edge).
	found := false
	for _, x := range df[1] {
		if x == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(b1) = %v, want to contain b1", df[1])
	}
	if len(df[2]) != 1 || df[2][0] != 1 {
		t.Errorf("DF(b2) = %v, want [b1]", df[2])
	}
}

func TestFindLoopsSimple(t *testing.T) {
	f := loopFunc(t)
	d := NewDomTree(f)
	li := FindLoops(f, d)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != 1 || !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Errorf("loop = header b%d blocks %v", l.Header, l.Blocks)
	}
	if li.Depth(0) != 0 || li.Depth(1) != 1 || li.Depth(2) != 1 || li.Depth(3) != 0 {
		t.Errorf("depths = %v %v %v %v", li.Depth(0), li.Depth(1), li.Depth(2), li.Depth(3))
	}
}

func TestFindLoopsNested(t *testing.T) {
	f := nested(t)
	d := NewDomTree(f)
	li := FindLoops(f, d)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	outer, inner := li.Loops[0], li.Loops[1]
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers = b%d, b%d; want b1, b2", outer.Header, inner.Header)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if li.Depth(3) != 2 || li.Depth(4) != 1 || li.Depth(5) != 0 {
		t.Errorf("block depths: b3=%d b4=%d b5=%d", li.Depth(3), li.Depth(4), li.Depth(5))
	}
}

func TestFreq(t *testing.T) {
	f := nested(t)
	d := NewDomTree(f)
	li := FindLoops(f, d)
	if li.Freq(0) != 1 {
		t.Errorf("Freq(b0) = %v, want 1", li.Freq(0))
	}
	if li.Freq(1) != 10 {
		t.Errorf("Freq(b1) = %v, want 10", li.Freq(1))
	}
	if li.Freq(3) != 100 {
		t.Errorf("Freq(b3) = %v, want 100", li.Freq(3))
	}
}

func TestFreqCap(t *testing.T) {
	li := &LoopInfo{depth: []int{50}}
	if got := li.Freq(0); got != 1e8 {
		t.Errorf("capped Freq = %v, want 1e8", got)
	}
}

func TestSelfLoop(t *testing.T) {
	f := ir.MustParse(`
func s(v0) {
b0:
  jump b1
b1:
  branch v0, b1, b2
b2:
  ret
}
`)
	d := NewDomTree(f)
	li := FindLoops(f, d)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != 1 || len(l.Blocks) != 1 || !l.Blocks[1] {
		t.Errorf("self-loop = %+v", l)
	}
}

func TestIrreducibleDoesNotCrash(t *testing.T) {
	// Two-entry cycle b1 <-> b2, entered at both b1 and b2: no natural
	// loop (neither header dominates the other's source), but analyses
	// must still terminate and be sane.
	f := ir.MustParse(`
func irr(v0) {
b0:
  branch v0, b1, b2
b1:
  branch v0, b2, b3
b2:
  branch v0, b1, b3
b3:
  ret
}
`)
	d := NewDomTree(f)
	li := FindLoops(f, d)
	if len(li.Loops) != 0 {
		t.Errorf("irreducible CFG produced %d natural loops, want 0", len(li.Loops))
	}
	if li.Depth(1) != 0 || li.Depth(2) != 0 {
		t.Error("irreducible cycle blocks should have depth 0")
	}
}
