package cfg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"prefcolor/internal/ir"
)

// randomCFG builds a function with n blocks and random jump/branch
// structure; every block reaches a terminator so Validate accepts it.
func randomCFG(rng *rand.Rand, n int) *ir.Func {
	var b strings.Builder
	fmt.Fprintf(&b, "func r(v0) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "b%d:\n", i)
		switch {
		case i == n-1 || rng.Float64() < 0.15:
			b.WriteString("  ret v0\n")
		case rng.Float64() < 0.5:
			fmt.Fprintf(&b, "  jump b%d\n", rng.Intn(n))
		default:
			fmt.Fprintf(&b, "  branch v0, b%d, b%d\n", rng.Intn(n), rng.Intn(n))
		}
	}
	b.WriteString("}\n")
	return ir.MustParse(b.String())
}

// bruteDominates computes dominance by definition: a dominates b iff
// removing a disconnects b from the entry (or a == b).
func bruteDominates(f *ir.Func, a, b ir.BlockID) bool {
	if a == b {
		return true
	}
	seen := map[ir.BlockID]bool{a: true} // block a is "removed"
	var stack []ir.BlockID
	if a != 0 {
		stack = append(stack, 0)
		seen[0] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return false // reached b without passing through a
		}
		for _, s := range f.Blocks[x].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true // b unreachable without a
}

func bruteReachable(f *ir.Func, b ir.BlockID) bool {
	seen := map[ir.BlockID]bool{0: true}
	stack := []ir.BlockID{0}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		for _, s := range f.Blocks[x].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// TestPropDominatorsMatchBruteForce checks the Cooper–Harvey–Kennedy
// dominator tree against the definitional computation on random CFGs
// (including irreducible ones).
func TestPropDominatorsMatchBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(rng, 3+rng.Intn(8))
		dom := NewDomTree(f)
		n := len(f.Blocks)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				ab, bb := ir.BlockID(a), ir.BlockID(b)
				if !bruteReachable(f, ab) || !bruteReachable(f, bb) {
					continue // dominance undefined off the entry's region
				}
				want := bruteDominates(f, ab, bb)
				got := dom.Dominates(ab, bb)
				if got != want {
					t.Logf("seed %d: Dominates(b%d, b%d) = %v, want %v\n%s", seed, a, b, got, want, f)
					return false
				}
			}
		}
		// Reachability agreement.
		for b := 0; b < n; b++ {
			if dom.Reachable(ir.BlockID(b)) != bruteReachable(f, ir.BlockID(b)) {
				t.Logf("seed %d: Reachable(b%d) mismatch", seed, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPropLoopBlocksAreDominatedByHeader: every block of every natural
// loop is dominated by the loop's header (by construction of back
// edges, but worth pinning against the implementation).
func TestPropLoopBlocksAreDominatedByHeader(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(rng, 4+rng.Intn(8))
		dom := NewDomTree(f)
		li := FindLoops(f, dom)
		for _, l := range li.Loops {
			for b := range l.Blocks {
				if !dom.Dominates(l.Header, b) {
					t.Logf("seed %d: loop header b%d does not dominate member b%d", seed, l.Header, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
