// Package opt provides the standard SSA-form scalar optimizations the
// paper's pipeline runs before register allocation ("after performing
// many advanced optimizations, the SSA-transformed intermediate code
// reaches our register allocator", §6): constant folding, copy
// propagation, and dead-code elimination. They operate on functions in
// SSA form (every virtual register has a single definition) and keep
// the function in SSA form.
package opt

import (
	"prefcolor/internal/ir"
)

// Optimize runs constant folding, copy propagation, and dead-code
// elimination to a combined fixed point (bounded). The function must
// be in SSA form.
func Optimize(f *ir.Func) {
	for i := 0; i < 8; i++ {
		changed := ConstFold(f)
		changed = CopyProp(f) || changed
		changed = DeadCode(f) || changed
		if !changed {
			return
		}
	}
}

// defsOf builds the SSA definition map: register → defining
// instruction.
func defsOf(f *ir.Func) map[ir.Reg]*ir.Instr {
	defs := map[ir.Reg]*ir.Instr{}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if d := in.Def(); d.IsVirt() {
			defs[d] = in
		}
	})
	return defs
}

// ConstFold replaces operations over constant operands with the
// constant result, and reports whether anything changed. Division by
// zero folds to zero, matching the reference interpreter.
func ConstFold(f *ir.Func) bool {
	defs := defsOf(f)
	constOf := func(r ir.Reg) (int64, bool) {
		if !r.IsVirt() {
			return 0, false
		}
		d, ok := defs[r]
		if !ok || d.Op != ir.LoadImm {
			return 0, false
		}
		return d.Imm, true
	}

	changed := false
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		var v int64
		switch {
		case in.Op.IsArith() && in.Op != ir.Neg && len(in.Uses) == 2:
			a, okA := constOf(in.Uses[0])
			b, okB := constOf(in.Uses[1])
			if !okA || !okB {
				return
			}
			v = foldBin(in.Op, a, b)
		case in.Op == ir.Neg:
			a, ok := constOf(in.Uses[0])
			if !ok {
				return
			}
			v = -a
		case in.Op == ir.AddImm:
			a, ok := constOf(in.Uses[0])
			if !ok {
				return
			}
			v = a + in.Imm
		default:
			return
		}
		*in = ir.MakeLoadImm(in.Defs[0], v)
		changed = true
	})
	return changed
}

func foldBin(op ir.Op, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.Cmp:
		if a < b {
			return 1
		}
		return 0
	}
	panic("opt.foldBin: not a foldable op")
}

// CopyProp replaces uses of SSA copies with their sources
// (transitively) and reports whether anything changed. Only copies of
// virtual registers propagate: physical registers are mutable machine
// state (clobbered by calls and convention code), so a use must keep
// reading the copy.
func CopyProp(f *ir.Func) bool {
	defs := defsOf(f)
	resolve := func(r ir.Reg) ir.Reg {
		for hops := 0; hops < 64; hops++ {
			if !r.IsVirt() {
				return r
			}
			d, ok := defs[r]
			if !ok || !d.IsCopy() || !d.Uses[0].IsVirt() {
				return r
			}
			r = d.Uses[0]
		}
		return r
	}

	changed := false
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		for ui, u := range in.Uses {
			if nu := resolve(u); nu != u {
				in.Uses[ui] = nu
				changed = true
			}
		}
	})
	return changed
}

// DeadCode removes instructions whose results are never used and that
// have no side effects, reporting whether anything changed. Roots are
// stores, spill traffic, calls, terminators, and definitions of
// physical registers.
func DeadCode(f *ir.Func) bool {
	defs := defsOf(f)
	live := map[ir.Reg]bool{}
	var work []ir.Reg
	markUses := func(in *ir.Instr) {
		for _, u := range in.Uses {
			if u.IsVirt() && !live[u] {
				live[u] = true
				work = append(work, u)
			}
		}
	}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if hasSideEffects(in) {
			markUses(in)
		}
	})
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		if d, ok := defs[r]; ok {
			markUses(d)
		}
	}

	changed := false
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			d := in.Def()
			if !hasSideEffects(&in) && d.IsVirt() && !live[d] {
				changed = true
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return changed
}

// hasSideEffects reports whether the instruction must stay regardless
// of whether its result is used.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.Store, ir.SpillStore, ir.SpillLoad, ir.Call, ir.Ret, ir.Jump, ir.Branch, ir.Nop:
		return true
	}
	// Defining a physical register is an effect (convention code).
	if d := in.Def(); d.IsPhys() {
		return true
	}
	return false
}
