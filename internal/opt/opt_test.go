package opt_test

import (
	"testing"
	"testing/quick"

	"prefcolor/internal/ir"
	"prefcolor/internal/opt"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

func TestConstFold(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 6
  v2 = loadimm 7
  v3 = mul v1, v2
  v4 = addimm v3, 8
  v5 = neg v4
  v6 = add v5, v0
  ret v6
}
`)
	if !opt.ConstFold(f) {
		t.Fatal("ConstFold reported no change")
	}
	// v3 = 42, v4 = 50, v5 = -50 should all be loadimms now.
	wantImms := map[int]int64{3: 42, 4: 50, 5: -50}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if d := in.Def(); d.IsVirt() {
			if want, ok := wantImms[d.VirtNum()]; ok {
				if in.Op != ir.LoadImm || in.Imm != want {
					t.Errorf("%v not folded to loadimm %d: %v", d, want, in)
				}
			}
		}
	})
}

func TestConstFoldDivByZero(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  v0 = loadimm 5
  v1 = loadimm 0
  v2 = div v0, v1
  ret v2
}
`)
	opt.ConstFold(f)
	res, err := ir.Interp(f, nil, ir.InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0 {
		t.Errorf("folded 5/0 = %d, want 0 (interpreter semantics)", res.Ret)
	}
}

func TestCopyPropChainsAndPhys(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  v0 = move r0
  v1 = move v0
  v2 = move v1
  v3 = add v2, v2
  ret v3
}
`)
	if !opt.CopyProp(f) {
		t.Fatal("CopyProp reported no change")
	}
	// v3's operands must resolve to v0 (the copy of the physical
	// register), never to r0 itself.
	add := f.Blocks[0].Instrs[3]
	if add.Uses[0] != ir.Virt(0) || add.Uses[1] != ir.Virt(0) {
		t.Errorf("add uses = %v, want v0, v0", add.Uses)
	}
}

func TestDeadCodeKeepsEffects(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = loadimm 2
  v3 = add v1, v2
  store v0, v0, 0
  call @g
  r0 = move v0
  ret r0
}
`)
	if !opt.DeadCode(f) {
		t.Fatal("DeadCode reported no change")
	}
	// v1, v2, v3 are dead; store, call, phys move, ret stay.
	ops := map[ir.Op]int{}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) { ops[in.Op]++ })
	if ops[ir.LoadImm] != 0 || ops[ir.Add] != 0 {
		t.Errorf("dead arithmetic survived: %v", ops)
	}
	if ops[ir.Store] != 1 || ops[ir.Call] != 1 || ops[ir.Move] != 1 || ops[ir.Ret] != 1 {
		t.Errorf("effectful instructions dropped: %v", ops)
	}
}

func TestDeadCodeKeepsLoopCarried(t *testing.T) {
	// φ-cycle feeding the return must survive.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = phi v1, v3
  v3 = addimm v2, 1
  v4 = cmp v3, v0
  branch v4, b1, b2
b2:
  ret v3
}
`)
	opt.DeadCode(f)
	if got := f.CountOp(ir.Phi); got != 1 {
		t.Errorf("live φ removed (count %d)", got)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	m := target.UsageModel(16)
	profile := workload.Profile{
		Name: "optprop", Funcs: 1, Stmts: 14, MaxDepth: 2,
		LoopProb: 0.12, IfProb: 0.15, CallProb: 0.08, PairProb: 0.06,
		StoreProb: 0.12, Vars: 7, Params: 2,
	}
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		raw := workload.GenerateRawFunc(profile, m, seed)
		g := raw.Clone()
		ssa.Build(g)
		opt.Optimize(g)
		if err := ssa.Verify(g); err != nil {
			t.Logf("seed %d: SSA broken after Optimize: %v", seed, err)
			return false
		}
		ssa.Destruct(g)
		g.CompactNops()
		if err := ir.Validate(g); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
		for _, base := range []int64{0, 4} {
			init, initG := map[ir.Reg]int64{}, map[ir.Reg]int64{}
			for i, p := range raw.Params {
				init[p] = base + int64(i)
				initG[g.Params[i]] = base + int64(i)
			}
			a, err := ir.Interp(raw, init, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			b, err := ir.Interp(g, initG, opts)
			if err != nil {
				t.Logf("seed %d: interp optimized: %v", seed, err)
				return false
			}
			if a.HasRet != b.HasRet || a.Ret != b.Ret || len(a.Stores) != len(b.Stores) {
				t.Logf("seed %d: behavior changed", seed)
				return false
			}
			for i := range a.Stores {
				if a.Stores[i] != b.Stores[i] {
					t.Logf("seed %d: store %d differs", seed, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeShrinksCode(t *testing.T) {
	m := target.UsageModel(16)
	p, err := workload.ByName("javac")
	if err != nil {
		t.Fatal(err)
	}
	raw := workload.GenerateRawFunc(p, m, 1234)
	g := raw.Clone()
	ssa.Build(g)
	before := g.NumInstrs()
	opt.Optimize(g)
	after := g.NumInstrs()
	if after >= before {
		t.Errorf("Optimize did not shrink SSA code: %d -> %d", before, after)
	}
}
