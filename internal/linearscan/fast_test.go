package linearscan_test

import (
	"testing"

	"prefcolor/internal/bench"
	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// checkFastOutput audits a fast-path allocation end to end: the
// output is fully lowered (phys-only, in-range), and interpreting
// input and output under call-clobbering semantics gives identical
// observable behavior on two parameter bases. Interference validity
// is covered separately by RunOptions.Validate, which replays every
// round through the standard CheckResult.
func checkFastOutput(t *testing.T, input, out *ir.Func, m *target.Machine) {
	t.Helper()
	out.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		for _, r := range append(append([]ir.Reg{}, in.Defs...), in.Uses...) {
			if r.IsVirt() {
				t.Fatalf("%s: virtual register %v survives at b%d[%d]", input.Name, r, b.ID, i)
			}
			if r.IsPhys() && r.PhysNum() >= m.NumRegs {
				t.Fatalf("%s: register %v out of machine range at b%d[%d]", input.Name, r, b.ID, i)
			}
		}
	})
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	for _, base := range []int64{0, 3} {
		init, outInit := map[ir.Reg]int64{}, map[ir.Reg]int64{}
		for i, p := range input.Params {
			init[p] = base + int64(i)
			outInit[out.Params[i]] = base + int64(i)
		}
		a, err := ir.Interp(input, init, opts)
		if err != nil {
			return // non-terminating input: structural checks suffice
		}
		b, err := ir.Interp(out, outInit, opts)
		if err != nil {
			t.Fatalf("%s: interpreting output: %v", input.Name, err)
		}
		if a.HasRet != b.HasRet || a.Ret != b.Ret {
			t.Fatalf("%s: base %d: return differs: input (%v, %d) output (%v, %d)",
				input.Name, base, a.HasRet, a.Ret, b.HasRet, b.Ret)
		}
		if len(a.Stores) != len(b.Stores) {
			t.Fatalf("%s: base %d: store count differs: %d vs %d", input.Name, base, len(a.Stores), len(b.Stores))
		}
		for i := range a.Stores {
			if a.Stores[i] != b.Stores[i] {
				t.Fatalf("%s: base %d: store %d differs: %+v vs %+v", input.Name, base, i, a.Stores[i], b.Stores[i])
			}
		}
	}
}

// TestFastWorkloadSweep runs the graph-free fast path over the full
// benchmark suite on every machine model with per-round CheckResult
// validation on, then audits the rewritten output behaviorally.
func TestFastWorkloadSweep(t *testing.T) {
	profiles := append(workload.Benchmarks(), workload.Large())
	for _, m := range machines() {
		ws := linearscan.NewFastWorkspace()
		for _, p := range profiles {
			for i, f := range workload.Generate(p, m) {
				out, stats, err := linearscan.Run(f, m, linearscan.RunOptions{Validate: true, Workspace: ws})
				if err != nil {
					t.Fatalf("%s/%s func %d: %v", m.Name, p.Name, i, err)
				}
				if stats.Rounds < 1 {
					t.Fatalf("%s/%s func %d: no rounds recorded", m.Name, p.Name, i)
				}
				checkFastOutput(t, f, out, m)
			}
		}
	}
}

// TestFastFuzzSweep drives the metamorphic harness's seeded random
// programs through the fast path with validation on.
func TestFastFuzzSweep(t *testing.T) {
	ms := []*target.Machine{
		target.UsageModel(8),
		target.S390Like(8),
		target.X86Like(8).WithIA64AddImmLimit(),
	}
	for seed := int64(1); seed <= 64; seed++ {
		for _, m := range ms {
			f := workload.GenerateRawFunc(workload.Fuzz(), m, seed)
			out, _, err := linearscan.Run(f, m, linearscan.RunOptions{Validate: true})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name, err)
			}
			checkFastOutput(t, f, out, m)
		}
	}
}

// TestFastDeterministic pins digest stability of the fast path, with
// and without workspace reuse.
func TestFastDeterministic(t *testing.T) {
	m := target.UsageModel(16)
	ws := linearscan.NewFastWorkspace()
	for _, f := range workload.Generate(workload.Benchmarks()[0], m) {
		out1, st1, err := linearscan.Run(f, m, linearscan.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out2, st2, err := linearscan.Run(f, m, linearscan.RunOptions{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		d1 := bench.FuncDigest(f.Name, st1, out1)
		d2 := bench.FuncDigest(f.Name, st2, out2)
		if d1 != d2 {
			t.Fatalf("%s: digest diverges with workspace reuse: %s vs %s", f.Name, d1, d2)
		}
	}
}

// TestFastQualitySane bounds the fast path's quality loss on the
// large workload: register-granularity hulls spill more than the
// renumbered adapter, but estimated cycles must stay within a small
// multiple of pref-full.
func TestFastQualitySane(t *testing.T) {
	m := target.UsageModel(16)
	var fast, full float64
	for _, f := range workload.Generate(workload.Large(), m) {
		out, _, err := linearscan.Run(f, m, linearscan.RunOptions{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		fast += perfmodel.Estimate(out, m).Cycles
		out, _, err = regalloc.RunChecked(f, m, core.New(), regalloc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		full += perfmodel.Estimate(out, m).Cycles
	}
	if fast > 3*full {
		t.Fatalf("fast-path estimated cycles %.0f vs pref-full %.0f: more than 3x worse", fast, full)
	}
	t.Logf("estimated cycles: linearscan fast %.0f, pref-full %.0f (ratio %.2f)", fast, full, fast/full)
}

// BenchmarkLinearScanFastLarge measures the serving fast path — the
// latency the daemon's fast tier pays per large-workload sweep.
func BenchmarkLinearScanFastLarge(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	ws := linearscan.NewFastWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			if _, _, err := linearscan.Run(f, m, linearscan.RunOptions{Workspace: ws}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLinearScanFastValidated is the fast path with per-round
// graph validation — what the check costs if a deployment wants it.
func BenchmarkLinearScanFastValidated(b *testing.B) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	ws := linearscan.NewFastWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			if _, _, err := linearscan.Run(f, m, linearscan.RunOptions{Validate: true, Workspace: ws}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
