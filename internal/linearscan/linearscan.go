// Package linearscan is the fast-tier register allocator: a
// linear-scan allocation over conservative live-interval hulls, built
// directly from the liveness sets the driver already computes.
//
// Where the preference-directed allocator builds a precedence graph
// and runs a global selection loop, this allocator flattens the
// function into one linear position sequence (blocks in layout order)
// and gives every web a single interval — the hull from its first to
// its last program point. A block's live-in covers the block start, a
// block's live-out covers the block end, and every def or use covers
// its own instruction, so two webs whose hulls are disjoint can never
// interfere: any Chaitin interference (a def with the other web live
// after it) puts the defining position inside both hulls. Hull
// overlap is therefore a conservative superset of interference, and a
// hull-disjoint assignment passes the same CheckResult oracle every
// other allocator answers to. Interference against physical registers
// (call clobbers, explicit phys operands) is not approximated at all:
// the allocator probes the interference graph's exact
// phys-versus-web edges when picking a register.
//
// The package has two faces over one scan core. Alloc plugs into the
// standard regalloc driver — renumbered webs, full analyses, the
// per-round CheckResult and the RunChecked oracle — and is how the
// harness, the metamorphic matrix, and the figures run the algorithm.
// Run is the serving fast path: it skips web renumbering (a register
// is its own web; the hull of a register covers every web it carries,
// so hull disjointness is still a superset of interference) and never
// builds an interference graph, deriving the exact phys-versus-web
// conflicts in one backward walk instead. That removes the two
// dominant per-round analyses and is what makes the daemon's fast
// tier several times cheaper than any driver-based allocation.
//
// The price of the hull approximation is quality — webs that are
// live in disjoint regions still conflict, and no coalescing is
// attempted beyond a cheap move-preference when several registers are
// free — which is exactly the trade a serving tier makes: the daemon
// returns this allocation inside the request deadline and upgrades
// the cache entry with the pref-full result in the background.
package linearscan

import (
	"fmt"
	"sort"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/regalloc"
)

// Alloc is the linear-scan allocator. The zero value is ready; New is
// the conventional constructor.
type Alloc struct{}

// New returns a linear-scan allocator.
func New() *Alloc { return &Alloc{} }

// Name identifies the algorithm in stats and figures.
func (*Alloc) Name() string { return "linearscan" }

// scratch is the per-round working state, parked on the workspace so
// steady-state rounds reuse the slices.
type scratch struct {
	start, end []int32 // interval hull per web; start < 0 = never seen
	order      []int32 // web indices sorted by interval start
	color      []int32 // assigned register per web; -1 = none yet
	active     []activeInterval
	regOwner   []int32 // active web holding each register; -1 = free
}

type activeInterval struct {
	web int32
	end int32
	reg int32
}

func scratchFor(ws *regalloc.Workspace) *scratch {
	if ws != nil {
		if s, ok := ws.AllocatorScratch().(*scratch); ok {
			return s
		}
	}
	s := &scratch{}
	if ws != nil {
		ws.SetAllocatorScratch(s)
	}
	return s
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	return s[:n]
}

// reset sizes the scratch for nw webs and k registers and clears it.
func (s *scratch) reset(nw, k int) {
	s.start = grow32(s.start, nw)
	s.end = grow32(s.end, nw)
	s.color = grow32(s.color, nw)
	s.order = grow32(s.order, nw)
	s.regOwner = grow32(s.regOwner, k)
	s.active = s.active[:0]
	for w := 0; w < nw; w++ {
		s.start[w], s.end[w], s.color[w] = -1, -1, -1
		s.order[w] = int32(w)
	}
	for r := 0; r < k; r++ {
		s.regOwner[r] = -1
	}
}

// buildHulls computes the interval hulls in one forward walk and
// sorts the scan order. Positions number block boundaries and
// instructions consecutively in layout order; the block-start
// position carries the live-in set and the block-end position the
// live-out set, so liveness spanning a block edge always lands inside
// both hulls. Webs never touched (dead parameters) keep start -1 and
// sort first.
func (s *scratch) buildHulls(f *ir.Func, live *liveness.Info) {
	touch := func(w int, p int32) {
		if s.start[w] < 0 {
			s.start[w], s.end[w] = p, p
			return
		}
		if p < s.start[w] {
			s.start[w] = p
		}
		if p > s.end[w] {
			s.end[w] = p
		}
	}
	pos := int32(0)
	for _, b := range f.Blocks {
		for r := range live.LiveIn(b.ID) {
			if r.IsVirt() {
				touch(r.VirtNum(), pos)
			}
		}
		for i := range b.Instrs {
			pos++
			in := &b.Instrs[i]
			for _, u := range in.Uses {
				if u.IsVirt() {
					touch(u.VirtNum(), pos)
				}
			}
			for _, d := range in.Defs {
				if d.IsVirt() {
					touch(d.VirtNum(), pos)
				}
			}
		}
		pos++
		for r := range live.LiveOut(b.ID) {
			if r.IsVirt() {
				touch(r.VirtNum(), pos)
			}
		}
		pos++
	}

	s.sortOrder()
}

// sortOrder sorts the scan order by (start, end, web).
func (s *scratch) sortOrder() {
	order := s.order
	sort.Slice(order, func(i, j int) bool {
		wi, wj := order[i], order[j]
		if s.start[wi] != s.start[wj] {
			return s.start[wi] < s.start[wj]
		}
		if s.end[wi] != s.end[wj] {
			return s.end[wi] < s.end[wj]
		}
		return wi < wj
	})
}

// scanOps parameterizes the scan over its environment: the driver
// face answers allowed/preferred from the interference graph and
// records into a regalloc.Result; the fast path answers from its
// forbid masks and records into a dense color table.
type scanOps struct {
	// allowed reports whether web w may sit in register r (no
	// phys-versus-web conflict).
	allowed func(w, r int32) bool
	// preferred returns a register whose use would eliminate a copy
	// involving w, or -1. The scan honors it only when it is free and
	// allowed.
	preferred func(w int32) int32
	// spillTemp reports whether w is allocator-created spill traffic,
	// which must never spill again.
	spillTemp func(w int32) bool
	// assign and unassign mirror color decisions outward; spill
	// records that w's live range gets spill code this round.
	assign   func(w, r int32)
	unassign func(w int32)
	spill    func(w int32)
}

// scan colors the sorted interval hulls in one pass: expire, then
// take a free non-conflicting register (preferring a move partner's),
// else spill the furthest-ending finite-cost interval among the
// current one and the active ones whose register the current web may
// use. Spill temporaries are never spilled; a stranded temporary
// evicts a finite-cost neighbor instead.
func (s *scratch) scan(k int, ops scanOps) error {
	assign := func(w, r int32) {
		s.color[w] = r
		ops.assign(w, r)
	}
	for _, w := range s.order {
		cur := s.start[w]
		if cur < 0 {
			// Dead web: no program point, no interference. Any
			// phys-compatible register will do (and no phys edges can
			// exist for a web never seen live, so register 0 is always
			// legal; probe anyway for symmetry).
			for r := int32(0); r < int32(k); r++ {
				if ops.allowed(w, r) {
					assign(w, r)
					break
				}
			}
			if s.color[w] < 0 {
				return fmt.Errorf("linearscan: dead web v%d conflicts with every register", w)
			}
			continue
		}

		// Expire intervals that ended before this one starts.
		live := s.active[:0]
		for _, ai := range s.active {
			if ai.end < cur {
				s.regOwner[ai.reg] = -1
				continue
			}
			live = append(live, ai)
		}
		s.active = live

		// Free, phys-compatible register? Prefer a move partner's.
		pick := int32(-1)
		if p := ops.preferred(w); p >= 0 && p < int32(k) && s.regOwner[p] < 0 && ops.allowed(w, p) {
			pick = p
		} else {
			for r := int32(0); r < int32(k); r++ {
				if s.regOwner[r] < 0 && ops.allowed(w, r) {
					pick = r
					break
				}
			}
		}
		if pick >= 0 {
			assign(w, pick)
			s.regOwner[pick] = w
			s.active = append(s.active, activeInterval{web: w, end: s.end[w], reg: pick})
			continue
		}

		// No register: spill the furthest-ending finite-cost interval
		// among this one and the active holders of registers this web
		// may use. A spill temporary is never a candidate — the spill
		// code that created it must keep its register.
		victim := -1 // index into s.active; -1 = spill w itself
		bestEnd := int32(-1)
		if !ops.spillTemp(w) {
			bestEnd = s.end[w]
		}
		for i, ai := range s.active {
			if ops.spillTemp(ai.web) || !ops.allowed(w, ai.reg) {
				continue
			}
			if ai.end > bestEnd {
				victim, bestEnd = i, ai.end
			}
		}
		if bestEnd < 0 {
			return fmt.Errorf(
				"linearscan: spill temporary v%d stranded: every compatible register is held by another temporary", w)
		}
		if victim < 0 {
			ops.spill(w)
			continue
		}
		v := s.active[victim]
		s.color[v.web] = -1
		ops.unassign(v.web)
		ops.spill(v.web)
		assign(w, v.reg)
		s.regOwner[v.reg] = w
		s.active[victim] = activeInterval{web: w, end: s.end[w], reg: v.reg}
	}
	return nil
}

// Allocate colors ctx.Graph by one scan over the interval hulls,
// answering phys-conflict and move-preference queries from the
// round's interference graph.
func (a *Alloc) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g := ctx.Graph
	f := ctx.F
	nw := f.NumVirt
	k := ctx.K()
	res := regalloc.NewResult()
	if nw == 0 {
		return res, nil
	}

	s := scratchFor(ctx.Workspace)
	s.reset(nw, k)
	s.buildHulls(f, ctx.Live)

	node := func(w int32) ig.NodeID { return ig.NodeID(g.NumPhys() + int(w)) }
	ops := scanOps{
		allowed: func(w, r int32) bool {
			return !g.OrigInterferes(node(w), ig.NodeID(r))
		},
		// preferred returns the register of the heaviest move partner
		// already resolved to a color (a physical endpoint or an
		// earlier-scanned web), or -1. Honoring it when it happens to
		// be free removes the copy at zero cost.
		preferred: func(w int32) int32 {
			best, bestWeight := int32(-1), 0.0
			n := node(w)
			for _, mi := range g.NodeMoves(n) {
				m := g.Moves()[mi]
				other := m.X
				if other == n {
					other = m.Y
				}
				var c int32
				switch {
				case g.IsPhys(other):
					c = int32(g.PhysColor(other))
				case s.color[int(other)-g.NumPhys()] >= 0:
					c = s.color[int(other)-g.NumPhys()]
				default:
					continue
				}
				if m.Weight > bestWeight {
					best, bestWeight = c, m.Weight
				}
			}
			return best
		},
		spillTemp: func(w int32) bool { return ctx.SpillTemp[w] },
		assign:    func(w, r int32) { res.Colors[node(w)] = int(r) },
		unassign:  func(w int32) { delete(res.Colors, node(w)) },
		spill:     func(w int32) { res.Spilled = append(res.Spilled, node(w)) },
	}
	if err := s.scan(k, ops); err != nil {
		return nil, err
	}
	return res, nil
}
