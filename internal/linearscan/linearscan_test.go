package linearscan_test

import (
	"testing"

	"prefcolor/internal/bench"
	"prefcolor/internal/core"
	"prefcolor/internal/linearscan"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// machines are the models the sweep allocates on: the paper's usage
// model at the figures' register counts plus the irregular x86- and
// s390-flavored models, and a low-pressure 8-register configuration
// that forces spilling on the larger functions.
func machines() []*target.Machine {
	return []*target.Machine{
		target.UsageModel(8),
		target.UsageModel(16),
		target.UsageModel(32),
		target.X86Like(16),
		target.S390Like(16),
	}
}

// TestWorkloadSweep runs the full benchmark suite (and the oversized
// large profile) through the RunChecked oracle on every machine
// model: every allocation must be valid, spill temporaries must never
// re-spill, and the rewrite must produce well-formed phys-only code.
func TestWorkloadSweep(t *testing.T) {
	profiles := append(workload.Benchmarks(), workload.Large())
	for _, m := range machines() {
		for _, p := range profiles {
			funcs := workload.Generate(p, m)
			for i, f := range funcs {
				if _, _, err := regalloc.RunChecked(f, m, linearscan.New(), regalloc.Options{}); err != nil {
					t.Fatalf("%s/%s func %d: %v", m.Name, p.Name, i, err)
				}
			}
		}
	}
}

// TestSpillOptions exercises the driver's optional spill strategies —
// rematerialization and block-local spill code — under the low-
// pressure model where they actually trigger.
func TestSpillOptions(t *testing.T) {
	m := target.UsageModel(8)
	for _, opts := range []regalloc.Options{
		{Rematerialize: true},
		{BlockLocalSpills: true},
		{Rematerialize: true, BlockLocalSpills: true},
	} {
		for _, f := range workload.Generate(workload.Large(), m) {
			if _, _, err := regalloc.RunChecked(f, m, linearscan.New(), opts); err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
		}
	}
}

// TestFuzzSweep drives seeded random raw programs (the metamorphic
// harness's generator and machine trio) through the oracle.
func TestFuzzSweep(t *testing.T) {
	ms := []*target.Machine{
		target.UsageModel(8),
		target.S390Like(8),
		target.X86Like(8).WithIA64AddImmLimit(),
	}
	for seed := int64(1); seed <= 64; seed++ {
		for _, m := range ms {
			f := workload.GenerateRawFunc(workload.Fuzz(), m, seed)
			if _, _, err := regalloc.RunChecked(f, m, linearscan.New(), regalloc.Options{}); err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name, err)
			}
		}
	}
}

// TestDeterministic pins digest stability: two runs over clones of
// the same input produce identical rewritten code, with and without a
// reused workspace.
func TestDeterministic(t *testing.T) {
	m := target.UsageModel(16)
	ws := regalloc.NewWorkspace()
	for _, f := range workload.Generate(workload.Benchmarks()[0], m) {
		out1, st1, err := regalloc.RunChecked(f, m, linearscan.New(), regalloc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out2, st2, err := regalloc.RunChecked(f, m, linearscan.New(), regalloc.Options{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		d1 := bench.FuncDigest(f.Name, st1, out1)
		d2 := bench.FuncDigest(f.Name, st2, out2)
		if d1 != d2 {
			t.Fatalf("%s: digest diverges with workspace reuse: %s vs %s", f.Name, d1, d2)
		}
	}
}

// TestRegistered pins the registry wiring: the daemon and harness
// resolve the allocator by name.
func TestRegistered(t *testing.T) {
	a, err := bench.NewAllocator("linearscan")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "linearscan" {
		t.Fatalf("Name() = %q", a.Name())
	}
	found := false
	for _, n := range bench.AllocatorNames() {
		if n == "linearscan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("linearscan missing from AllocatorNames: %v", bench.AllocatorNames())
	}
}

// TestQualitySane bounds the fast tier's quality loss on the large
// workload: the hull approximation costs spills and moves, but the
// estimated cycles must stay within a small multiple of pref-full —
// a tripled estimate would mean the intervals or the spill heuristic
// regressed to nonsense.
func TestQualitySane(t *testing.T) {
	m := target.UsageModel(16)
	var fast, full float64
	for _, f := range workload.Generate(workload.Large(), m) {
		out, _, err := regalloc.RunChecked(f, m, linearscan.New(), regalloc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fast += perfmodel.Estimate(out, m).Cycles
		out, _, err = regalloc.RunChecked(f, m, core.New(), regalloc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		full += perfmodel.Estimate(out, m).Cycles
	}
	if fast > 3*full {
		t.Fatalf("linearscan estimated cycles %.0f vs pref-full %.0f: more than 3x worse", fast, full)
	}
	t.Logf("estimated cycles: linearscan %.0f, pref-full %.0f (ratio %.2f)", fast, full, fast/full)
}

// benchAllocator measures end-to-end driver latency per large-
// workload function for one allocator configuration.
func benchAllocator(b *testing.B, name string) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Large(), m)
	ws := regalloc.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			alloc, _ := bench.NewAllocator(name)
			if _, _, err := regalloc.Run(f, m, alloc, regalloc.Options{Workspace: ws}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkLinearScanLarge(b *testing.B) { benchAllocator(b, "linearscan") }
func BenchmarkPrefFullLarge(b *testing.B)   { benchAllocator(b, "pref-full") }
