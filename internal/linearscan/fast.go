package linearscan

import (
	"fmt"
	"math/bits"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	buf "prefcolor/internal/scratch"
	"prefcolor/internal/target"
)

// This file is the serving fast path: a self-contained driver loop
// that allocates with the same interval-hull scan as the Alloc
// adapter but skips the analyses that dominate driver latency.
//
//   - No web renumbering. A virtual register is its own web, so a
//     register's hull covers every live range it carries. Coarser
//     webs can only widen hulls, and hull disjointness stays a
//     superset of non-interference — the assignment is still valid,
//     it just spills more than the renumbered adapter would.
//   - No interference graph. The scan needs web-versus-web conflicts
//     (answered by hull overlap) and exact web-versus-phys conflicts.
//     The latter are Chaitin's rules restricted to mixed pairs — a
//     def conflicts with everything live after it, values live
//     across a call conflict with the volatile registers, and the
//     entry point defines everything live into it — which one
//     backward walk over the liveness solution collects into a
//     per-register forbidden-set bitmask.
//   - No map-based liveness. The general analysis tracks RegSet maps
//     so φ-aware consumers can iterate registers by identity; the
//     fast path re-solves the same backward dataflow on dense bit
//     rows, and the hulls, conflict masks, and copy partners all
//     fall out of one backward walk over that solution.
//   - No caller-save scan. The clobber masks forbid volatile
//     registers to every value live across a call, so the rewrite
//     can never need a save — it passes a nil liveness to
//     regalloc.RewriteColored, which skips the scan.
//
// Spill rounds reuse the driver's spill-everywhere inserter and the
// final round reuses the driver's rewrite (phys mapping,
// redundant-copy deletion, validation), so the output is well-formed
// by the same code paths every other allocator exits through.

// RunOptions configures the fast-path driver loop.
type RunOptions struct {
	// MaxRounds bounds the spill-and-retry loop; 0 means 16.
	MaxRounds int

	// Validate cross-checks every round's assignment against a
	// freshly built interference graph (the same CheckResult the
	// standard driver runs). It exists for tests and paranoid
	// callers; it rebuilds per round the very analyses the fast path
	// is designed to skip.
	Validate bool

	// Workspace, when non-nil, supplies reusable buffers across Run
	// calls. A workspace serves one Run at a time; reuse is
	// observationally pure.
	Workspace *Workspace
}

// Workspace is the fast path's scratch arena: the dense liveness
// solution, the scan state, the forbidden-set masks, and the spill
// bookkeeping, reused across rounds and across Run calls.
type Workspace struct {
	s scratch

	// Dense liveness rows, one stride per block: virtual registers
	// (vw words) and physical registers (pw words) kept separate so
	// the conflict rules can iterate exactly the kind they need.
	genV, killV, inV, outV []uint64
	genP, killP, inP, outP []uint64

	forbid   []uint64   // per web, pw words of forbidden registers
	livePhys []uint64   // backward-walk live physical registers
	liveVirt []uint64   // backward-walk live virtual registers
	partners [][]ir.Reg // per web, copy partners in reverse order
	colors   []int
	spilled  []int
	temp     []bool // spill temporaries, by register number
}

// NewFastWorkspace returns an empty fast-path workspace. The zero
// value also works.
func NewFastWorkspace() *Workspace { return &Workspace{} }

// Run allocates registers for input on machine m through the fast
// path and returns the rewritten function and statistics, exactly
// like regalloc.Run but without renumbering or graph construction.
// The input function is not modified.
func Run(input *ir.Func, m *target.Machine, opts RunOptions) (*ir.Func, *regalloc.Stats, error) {
	if err := regalloc.ValidateInput(input, m); err != nil {
		return nil, nil, err
	}
	var phiErr error
	input.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if phiErr == nil && in.Op == ir.Phi {
			phiErr = fmt.Errorf("linearscan: b%d[%d]: φ-functions must be lowered first", b.ID, i)
		}
	})
	if phiErr != nil {
		return nil, nil, phiErr
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16
	}
	ws := opts.Workspace
	if ws == nil {
		ws = NewFastWorkspace()
	}

	f := input.Clone()
	stats := &regalloc.Stats{
		Allocator:   "linearscan",
		MovesBefore: f.CountOp(ir.Move),
	}
	k := m.NumRegs
	pw := (k + 63) / 64
	volMask := make([]uint64, pw)
	for _, v := range m.VolatileRegs() {
		volMask[v>>6] |= 1 << (uint(v) & 63)
	}

	ws.temp = ws.temp[:0]
	for round := 1; round <= maxRounds; round++ {
		stats.Rounds = round
		nw := f.NumVirt
		for len(ws.temp) < nw {
			ws.temp = append(ws.temp, false)
		}
		s := &ws.s
		s.reset(nw, k)
		ws.solveLiveness(f, nw, pw)
		ws.prepare(f, nw, pw, volMask)
		s.sortOrder()

		ws.colors = buf.Fill(ws.colors, nw, -1)
		ws.spilled = ws.spilled[:0]
		ops := scanOps{
			allowed: func(w, r int32) bool {
				return ws.forbid[int(w)*pw+int(r>>6)]&(1<<(uint(r)&63)) == 0
			},
			// preferred probes the copy partners for a register that
			// is already resolved, free, and compatible; partner
			// order (reverse program order) breaks ties.
			preferred: func(w int32) int32 {
				for _, p := range ws.partners[w] {
					var c int32
					switch {
					case p.IsPhys():
						c = int32(p.PhysNum())
					case ws.colors[p.VirtNum()] >= 0:
						c = int32(ws.colors[p.VirtNum()])
					default:
						continue
					}
					if s.regOwner[c] < 0 && ws.forbid[int(w)*pw+int(c>>6)]&(1<<(uint(c)&63)) == 0 {
						return c
					}
				}
				return -1
			},
			spillTemp: func(w int32) bool { return ws.temp[w] },
			assign:    func(w, r int32) { ws.colors[w] = int(r) },
			unassign:  func(w int32) { ws.colors[w] = -1 },
			spill:     func(w int32) { ws.spilled = append(ws.spilled, int(w)) },
		}
		if err := s.scan(k, ops); err != nil {
			return nil, nil, err
		}
		if opts.Validate {
			if err := checkRound(f, m, ws.colors, ws.spilled, ws.temp); err != nil {
				return nil, nil, fmt.Errorf("linearscan: round %d: %w", round, err)
			}
		}
		if len(ws.spilled) == 0 {
			out, err := regalloc.RewriteColored(f, m, nil, ws.colors, stats)
			if err != nil {
				return nil, nil, err
			}
			return out, stats, nil
		}
		stats.SpilledWebs += len(ws.spilled)
		temps := regalloc.InsertSpillEverywhere(f, ws.spilled)
		temps = append(temps, splitSpilledDefs(f, ws.spilled)...)
		for _, t := range temps {
			for len(ws.temp) < f.NumVirt {
				ws.temp = append(ws.temp, false)
			}
			ws.temp[t.VirtNum()] = true
		}
	}
	return nil, nil, fmt.Errorf("linearscan: did not converge in %d rounds", maxRounds)
}

// solveLiveness runs the standard backward live-variable dataflow on
// dense bit rows: per block, in = gen ∪ (out ∖ kill) and out is the
// union of successors' in, iterated in reverse layout order to a
// fixed point. The input is φ-free (Run rejects φ up front), so the
// general analysis's φ edge handling has nothing to do here and the
// two solutions agree.
func (ws *Workspace) solveLiveness(f *ir.Func, nw, pw int) {
	nb := len(f.Blocks)
	vw := (nw + 63) / 64
	ws.genV = buf.Slice(ws.genV, nb*vw)
	ws.killV = buf.Slice(ws.killV, nb*vw)
	ws.inV = buf.Slice(ws.inV, nb*vw)
	ws.outV = buf.Slice(ws.outV, nb*vw)
	ws.genP = buf.Slice(ws.genP, nb*pw)
	ws.killP = buf.Slice(ws.killP, nb*pw)
	ws.inP = buf.Slice(ws.inP, nb*pw)
	ws.outP = buf.Slice(ws.outP, nb*pw)

	set := func(row []uint64, n int) { row[n>>6] |= 1 << (uint(n) & 63) }
	clr := func(row []uint64, n int) { row[n>>6] &^= 1 << (uint(n) & 63) }

	for _, b := range f.Blocks {
		gV, kV := ws.genV[int(b.ID)*vw:][:vw], ws.killV[int(b.ID)*vw:][:vw]
		gP, kP := ws.genP[int(b.ID)*pw:][:pw], ws.killP[int(b.ID)*pw:][:pw]
		for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
			in := &b.Instrs[idx]
			for _, d := range in.Defs {
				if d.IsVirt() {
					set(kV, d.VirtNum())
					clr(gV, d.VirtNum())
				} else if d.IsPhys() {
					set(kP, d.PhysNum())
					clr(gP, d.PhysNum())
				}
			}
			for _, u := range in.Uses {
				if u.IsVirt() {
					set(gV, u.VirtNum())
				} else if u.IsPhys() {
					set(gP, u.PhysNum())
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := f.Blocks[i]
			oV, oP := ws.outV[i*vw:][:vw], ws.outP[i*pw:][:pw]
			for _, sc := range b.Succs {
				sV, sP := ws.inV[int(sc)*vw:][:vw], ws.inP[int(sc)*pw:][:pw]
				for j := range oV {
					oV[j] |= sV[j]
				}
				for j := range oP {
					oP[j] |= sP[j]
				}
			}
			iV, iP := ws.inV[i*vw:][:vw], ws.inP[i*pw:][:pw]
			gV, kV := ws.genV[i*vw:][:vw], ws.killV[i*vw:][:vw]
			gP, kP := ws.genP[i*pw:][:pw], ws.killP[i*pw:][:pw]
			for j := range iV {
				n := gV[j] | (oV[j] &^ kV[j])
				if n != iV[j] {
					iV[j] = n
					changed = true
				}
			}
			for j := range iP {
				n := gP[j] | (oP[j] &^ kP[j])
				if n != iP[j] {
					iP[j] = n
					changed = true
				}
			}
		}
	}
}

// prepare derives everything the scan needs from the dense liveness
// solution in one backward walk per block: the interval hulls (block
// boundaries carry the live-in/live-out sets, each def or use covers
// its own position), the exact phys-versus-web conflict masks
// (mirroring the graph builder's Chaitin rules for mixed pairs: the
// entry clique, defs against everything live after them minus the
// copy-source exception, call clobbers against everything live
// across the call), and each web's copy partners.
func (ws *Workspace) prepare(f *ir.Func, nw, pw int, volMask []uint64) {
	s := &ws.s
	vw := (nw + 63) / 64
	ws.forbid = buf.Slice(ws.forbid, nw*pw)
	ws.livePhys = buf.Slice(ws.livePhys, pw)
	ws.liveVirt = buf.Slice(ws.liveVirt, vw)
	ws.partners = buf.Rows(ws.partners, nw)

	forbidRow := func(w int) []uint64 { return ws.forbid[w*pw : (w+1)*pw] }
	touch := func(w int, p int32) {
		if s.start[w] < 0 {
			s.start[w], s.end[w] = p, p
			return
		}
		if p < s.start[w] {
			s.start[w] = p
		}
		if p > s.end[w] {
			s.end[w] = p
		}
	}
	touchLiveVirt := func(p int32) {
		for wi, wbits := range ws.liveVirt {
			for t := wbits; t != 0; t &= t - 1 {
				touch(wi<<6+bits.TrailingZeros64(t), p)
			}
		}
	}
	// eachLiveVirt visits the live virtual registers, skipping skip
	// (-1 skips nothing).
	eachLiveVirt := func(skip int, fn func(v int)) {
		for wi, wbits := range ws.liveVirt {
			for t := wbits; t != 0; t &= t - 1 {
				v := wi<<6 + bits.TrailingZeros64(t)
				if v != skip {
					fn(v)
				}
			}
		}
	}

	// Function entry defines every value live into it simultaneously:
	// each virtual member conflicts with each physical member.
	entryP := ws.inP[:pw]
	anyPhys := false
	for _, m := range entryP {
		if m != 0 {
			anyPhys = true
		}
	}
	if anyPhys {
		for wi, wbits := range ws.inV[:vw] {
			for t := wbits; t != 0; t &= t - 1 {
				row := forbidRow(wi<<6 + bits.TrailingZeros64(t))
				for j, m := range entryP {
					row[j] |= m
				}
			}
		}
	}

	pos := int32(0)
	for _, b := range f.Blocks {
		startPos := pos
		endPos := startPos + int32(len(b.Instrs)) + 1
		pos = endPos + 1

		copy(ws.liveVirt, ws.outV[int(b.ID)*vw:][:vw])
		copy(ws.livePhys, ws.outP[int(b.ID)*pw:][:pw])
		touchLiveVirt(endPos)

		for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
			in := &b.Instrs[idx]
			ipos := startPos + 1 + int32(idx)
			isCopy := in.IsCopy()
			for _, d := range in.Defs {
				if d.IsVirt() {
					row := forbidRow(d.VirtNum())
					// The copy-source exception skips adding that one
					// bit at this def event only; a conflict some
					// other def already established must survive, so
					// mask the addition rather than clearing the row.
					exclW, exclM := -1, uint64(0)
					if isCopy && in.Uses[0].IsPhys() {
						p := in.Uses[0].PhysNum()
						exclW, exclM = p>>6, 1<<(uint(p)&63)
					}
					for j, m := range ws.livePhys {
						if j == exclW {
							m &^= exclM
						}
						row[j] |= m
					}
				} else if d.IsPhys() {
					p := d.PhysNum()
					bitW, bitM := p>>6, uint64(1)<<(uint(p)&63)
					excl := -1
					if isCopy && in.Uses[0].IsVirt() {
						excl = in.Uses[0].VirtNum()
					}
					eachLiveVirt(excl, func(v int) {
						forbidRow(v)[bitW] |= bitM
					})
				}
			}
			if in.Op == ir.Call {
				defV := -1
				if d := in.Def(); d.IsVirt() {
					defV = d.VirtNum()
				}
				eachLiveVirt(defV, func(v int) {
					row := forbidRow(v)
					for j, m := range volMask {
						row[j] |= m
					}
				})
			}
			if isCopy {
				d, u := in.Defs[0], in.Uses[0]
				if d != u {
					if d.IsVirt() {
						ws.partners[d.VirtNum()] = append(ws.partners[d.VirtNum()], u)
					}
					if u.IsVirt() {
						ws.partners[u.VirtNum()] = append(ws.partners[u.VirtNum()], d)
					}
				}
			}
			for _, d := range in.Defs {
				if d.IsVirt() {
					v := d.VirtNum()
					ws.liveVirt[v>>6] &^= 1 << (uint(v) & 63)
					touch(v, ipos)
				} else if d.IsPhys() {
					p := d.PhysNum()
					ws.livePhys[p>>6] &^= 1 << (uint(p) & 63)
				}
			}
			for _, u := range in.Uses {
				if u.IsVirt() {
					v := u.VirtNum()
					ws.liveVirt[v>>6] |= 1 << (uint(v) & 63)
					touch(v, ipos)
				} else if u.IsPhys() {
					p := u.PhysNum()
					ws.livePhys[p>>6] |= 1 << (uint(p) & 63)
				}
			}
		}

		// The walk has stepped back to the block's live-in set.
		touchLiveVirt(startPos)
	}
}

// splitSpilledDefs gives each definition site of a spilled register
// its own fresh register. The spill inserter leaves every def of a
// spilled register followed immediately by its slot store, so without
// renumbering the register's hull would still span all of its defs —
// one function-wide unspillable interval, which strands the scan. The
// standard driver escapes this by renumbering the split ranges into
// separate webs; the fast path does the same surgically: rename each
// def and its adjacent store to a fresh temporary, leaving the
// original register at most its entry capture (parameters and
// upward-exposed entry values), a minimal interval at position zero.
// It returns the fresh temporaries.
func splitSpilledDefs(f *ir.Func, spilled []int) []ir.Reg {
	isSpilled := map[ir.Reg]bool{}
	for _, w := range spilled {
		isSpilled[ir.Virt(w)] = true
	}
	var temps []ir.Reg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Def()
			if !isSpilled[d] || in.Op == ir.SpillStore {
				continue
			}
			if i+1 >= len(b.Instrs) {
				continue
			}
			st := &b.Instrs[i+1]
			if st.Op != ir.SpillStore || len(st.Uses) != 1 || st.Uses[0] != d {
				continue
			}
			t := f.NewReg()
			temps = append(temps, t)
			in.Defs[0] = t
			st.Uses[0] = t
		}
	}
	return temps
}

// checkRound validates one fast-path round against a freshly built
// interference graph using the standard CheckResult, converting the
// dense color table into the driver's Result shape.
func checkRound(f *ir.Func, m *target.Machine, colors []int, spilled []int, temp []bool) error {
	spillTemp := make([]bool, f.NumVirt)
	copy(spillTemp, temp)
	ctx, err := regalloc.NewContext(f, m, spillTemp)
	if err != nil {
		return err
	}
	res := regalloc.NewResult()
	for w, c := range colors {
		if c >= 0 {
			res.Colors[ctx.Graph.NodeOf(ir.Virt(w))] = c
		}
	}
	for _, w := range spilled {
		res.Spilled = append(res.Spilled, ctx.Graph.NodeOf(ir.Virt(w)))
	}
	return regalloc.CheckResult(ctx, res)
}
