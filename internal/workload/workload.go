// Package workload generates the deterministic synthetic programs
// that stand in for the SPECjvm98 benchmarks of the paper's
// evaluation (compress, jess, db, javac, mpegaudio, mtrt, jack, plus
// the floating-point views of mpegaudio and mtrt that Figure 9
// reports separately).
//
// Each profile controls the structural dimensions that drive the
// paper's results: call density (volatile/non-volatile pressure),
// loop depth (frequency weighting), register pressure (spill
// behavior), copy density (coalescing opportunity), and paired-load
// density (irregular-register opportunity). The generated code goes
// through the real pipeline — SSA construction and destruction — so
// the copies the allocators coalesce are the ones φ-elimination
// actually produces. Programs always terminate: loops are counted,
// so the reference interpreter can validate allocations end to end.
package workload

import (
	"fmt"
	"math/rand"

	"prefcolor/internal/ir"
	"prefcolor/internal/opt"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string

	// Funcs is the number of functions to generate.
	Funcs int

	// Stmts is the approximate number of statements per function
	// body at nesting depth zero.
	Stmts int

	// MaxDepth bounds structured-control nesting (ifs and loops).
	MaxDepth int

	// LoopProb and IfProb are per-statement probabilities of opening
	// a nested loop or conditional.
	LoopProb, IfProb float64

	// CallProb is the per-statement probability of a convention-
	// lowered call (argument moves, call, result move).
	CallProb float64

	// PairProb is the per-statement probability of a paired-load
	// candidate (two adjacent loads, one word apart).
	PairProb float64

	// StoreProb is the per-statement probability of a store
	// (observable output for the equivalence interpreter).
	StoreProb float64

	// Vars is the local variable pool size: larger pools mean more
	// simultaneously-live values (register pressure).
	Vars int

	// Params is the number of function parameters.
	Params int

	// Seed makes generation deterministic.
	Seed int64
}

// Benchmarks returns the nine profiles of the paper's figures, in
// presentation order. The shape parameters encode the paper's own
// characterization: "jess, db, javac, and jack make frequent function
// calls"; compress and mpegaudio are loop-dominated; mpegaudio (and
// its fp view) is rich in adjacent array loads.
func Benchmarks() []Profile {
	return []Profile{
		{Name: "compress", Funcs: 8, Stmts: 26, MaxDepth: 3, LoopProb: 0.16, IfProb: 0.10, CallProb: 0.02, PairProb: 0.10, StoreProb: 0.10, Vars: 14, Params: 3, Seed: 0xC0},
		{Name: "jess", Funcs: 12, Stmts: 18, MaxDepth: 2, LoopProb: 0.09, IfProb: 0.14, CallProb: 0.16, PairProb: 0.03, StoreProb: 0.08, Vars: 15, Params: 4, Seed: 0x1E55},
		{Name: "db", Funcs: 10, Stmts: 16, MaxDepth: 2, LoopProb: 0.09, IfProb: 0.12, CallProb: 0.18, PairProb: 0.02, StoreProb: 0.12, Vars: 14, Params: 3, Seed: 0xDB},
		{Name: "javac", Funcs: 14, Stmts: 24, MaxDepth: 2, LoopProb: 0.07, IfProb: 0.18, CallProb: 0.13, PairProb: 0.03, StoreProb: 0.08, Vars: 16, Params: 5, Seed: 0x7AC},
		{Name: "mpegaudio", Funcs: 8, Stmts: 28, MaxDepth: 3, LoopProb: 0.15, IfProb: 0.08, CallProb: 0.03, PairProb: 0.22, StoreProb: 0.10, Vars: 14, Params: 3, Seed: 0x3E6},
		{Name: "mtrt", Funcs: 10, Stmts: 20, MaxDepth: 2, LoopProb: 0.10, IfProb: 0.12, CallProb: 0.10, PairProb: 0.10, StoreProb: 0.08, Vars: 14, Params: 4, Seed: 0x317},
		{Name: "jack", Funcs: 12, Stmts: 17, MaxDepth: 2, LoopProb: 0.09, IfProb: 0.15, CallProb: 0.15, PairProb: 0.02, StoreProb: 0.10, Vars: 15, Params: 3, Seed: 0x7ACC},
		{Name: "mpegaudio-fp", Funcs: 6, Stmts: 24, MaxDepth: 3, LoopProb: 0.16, IfProb: 0.06, CallProb: 0.02, PairProb: 0.30, StoreProb: 0.10, Vars: 13, Params: 2, Seed: 0x3E6F},
		{Name: "mtrt-fp", Funcs: 7, Stmts: 18, MaxDepth: 2, LoopProb: 0.11, IfProb: 0.08, CallProb: 0.05, PairProb: 0.18, StoreProb: 0.08, Vars: 11, Params: 3, Seed: 0x317F},
	}
}

// Fuzz returns the compact but adversarial profile the correctness
// harnesses share: branchy, loopy, call-bearing, with paired loads
// and stores, sized so randomized banks stay fast while still
// engaging spilling on small machines. Callers choose seeds per
// function via GenerateRawFunc.
func Fuzz() Profile {
	return Profile{
		Name: "fuzz", Funcs: 1, Stmts: 12, MaxDepth: 2,
		LoopProb: 0.12, IfProb: 0.16, CallProb: 0.10, PairProb: 0.08,
		StoreProb: 0.12, Vars: 8, Params: 2,
	}
}

// Large returns the oversized stress profile the performance
// benchmarks allocate: many functions at the statement-budget
// ceiling with a wide variable pool, so interference graphs are as
// big and dense as the generator produces and spill rounds engage.
func Large() Profile {
	return Profile{
		Name: "large", Funcs: 40, Stmts: 100, MaxDepth: 3,
		LoopProb: 0.12, IfProb: 0.12, CallProb: 0.08,
		PairProb: 0.08, StoreProb: 0.10,
		Vars: 48, Params: 6, Seed: 0x1A26E,
	}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Generate produces the profile's functions, convention-lowered for
// machine m (parameters arrive in m.ParamRegs, results leave in
// m.RetReg) and taken through the paper's pipeline: SSA construction,
// scalar optimization (constant folding, copy propagation, dead-code
// elimination), and SSA destruction.
func Generate(p Profile, m *target.Machine) []*ir.Func {
	rng := rand.New(rand.NewSource(p.Seed))
	funcs := make([]*ir.Func, 0, p.Funcs)
	for i := 0; i < p.Funcs; i++ {
		f := genFunc(fmt.Sprintf("%s_%d", p.Name, i), p, m, rng)
		ssa.Build(f)
		opt.Optimize(f)
		ssa.Destruct(f)
		f.CompactNops()
		if err := ir.Validate(f); err != nil {
			panic(fmt.Sprintf("workload: generated invalid function: %v", err))
		}
		funcs = append(funcs, f)
	}
	return funcs
}

// GenerateRawFunc produces a single function of the profile without
// the SSA round trip, for property tests that exercise the SSA,
// renumber, and allocation passes on arbitrary (multi-assignment)
// input. The seed overrides the profile's.
func GenerateRawFunc(p Profile, m *target.Machine, seed int64) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	f := genFunc(fmt.Sprintf("%s_raw%d", p.Name, seed), p, m, rng)
	if err := ir.Validate(f); err != nil {
		panic(fmt.Sprintf("workload: generated invalid raw function: %v", err))
	}
	return f
}

// maxStmtsPerFunc caps a function's statement count so nested
// control structures cannot blow generated functions up past the
// size the profiles intend (a few hundred instructions).
const maxStmtsPerFunc = 110

type gen struct {
	b      *ir.Builder
	p      Profile
	m      *target.Machine
	rng    *rand.Rand
	vars   []ir.Reg
	sym    int
	budget int
}

func genFunc(name string, p Profile, m *target.Machine, rng *rand.Rand) *ir.Func {
	g := &gen{b: ir.NewBuilder(name), p: p, m: m, rng: rng, budget: maxStmtsPerFunc}

	// Convention entry: parameters arrive in physical registers and
	// are copied into the pool.
	nParams := p.Params
	if nParams > len(m.ParamRegs) {
		nParams = len(m.ParamRegs)
	}
	for i := 0; i < nParams; i++ {
		v := g.b.Reg()
		g.b.F.Params = append(g.b.F.Params, ir.Phys(m.ParamRegs[i]))
		g.b.Move(v, ir.Phys(m.ParamRegs[i]))
		g.vars = append(g.vars, v)
	}
	// Initialize the rest of the pool.
	for len(g.vars) < p.Vars {
		v := g.b.Reg()
		g.b.LoadImm(v, int64(rng.Intn(64)+1))
		g.vars = append(g.vars, v)
	}

	g.body(p.Stmts, 0)

	// Convention return.
	ret := ir.Phys(m.RetReg)
	g.b.Move(ret, g.pick())
	g.b.Ret(ret)
	return g.b.Finish()
}

func (g *gen) pick() ir.Reg { return g.vars[g.rng.Intn(len(g.vars))] }

// body emits approximately n statements at the given nesting depth,
// within the function-wide budget.
func (g *gen) body(n, depth int) {
	for i := 0; i < n; i++ {
		if g.budget <= 0 {
			return
		}
		g.budget--
		r := g.rng.Float64()
		switch {
		case r < g.p.LoopProb:
			// At maximum nesting the control-structure probability
			// mass degrades to plain arithmetic, never to another
			// statement kind (profiles' call/pair densities stay
			// honest).
			if depth < g.p.MaxDepth {
				g.loop(n/2+2, depth+1)
			} else {
				g.arith()
			}
		case r < g.p.LoopProb+g.p.IfProb:
			if depth < g.p.MaxDepth {
				g.ifElse(n/3+1, depth+1)
			} else {
				g.arith()
			}
		case r < g.p.LoopProb+g.p.IfProb+g.p.CallProb:
			g.call()
		case r < g.p.LoopProb+g.p.IfProb+g.p.CallProb+g.p.PairProb:
			g.loadPair()
		case r < g.p.LoopProb+g.p.IfProb+g.p.CallProb+g.p.PairProb+g.p.StoreProb:
			g.b.Store(g.pick(), g.pick(), int64(g.rng.Intn(8))*g.m.WordSize)
		default:
			g.arith()
		}
	}
}

var binOps = []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Cmp}

func (g *gen) arith() {
	dst := g.pick()
	op := binOps[g.rng.Intn(len(binOps))]
	g.b.Bin(op, dst, g.pick(), g.pick())
}

func (g *gen) loadPair() {
	base := g.pick()
	d1, d2 := g.pick(), g.pick()
	for d1 == base {
		d1 = g.vars[g.rng.Intn(len(g.vars))]
	}
	for d2 == base || d2 == d1 {
		d2 = g.vars[g.rng.Intn(len(g.vars))]
	}
	off := int64(g.rng.Intn(8)) * g.m.WordSize
	g.b.Load(d1, base, off)
	g.b.Load(d2, base, off+g.m.WordSize)
}

func (g *gen) call() {
	nArgs := g.rng.Intn(3)
	if nArgs > len(g.m.ParamRegs) {
		nArgs = len(g.m.ParamRegs)
	}
	var args []ir.Reg
	for i := 0; i < nArgs; i++ {
		a := ir.Phys(g.m.ParamRegs[i])
		g.b.Move(a, g.pick())
		args = append(args, a)
	}
	g.sym++
	ret := ir.Phys(g.m.RetReg)
	g.b.Call(fmt.Sprintf("callee%d", g.sym%7), ret, args...)
	g.b.Move(g.pick(), ret)
}

func (g *gen) ifElse(n, depth int) {
	cond := g.pick()
	then, els, join := g.b.Block(), g.b.Block(), g.b.Block()
	g.b.Branch(cond, then, els)
	g.b.SetBlock(then)
	g.body(n, depth)
	g.b.Jump(join)
	g.b.SetBlock(els)
	g.body(n, depth)
	g.b.Jump(join)
	g.b.SetBlock(join)
}

func (g *gen) loop(n, depth int) {
	iters := int64(g.rng.Intn(3) + 2)
	ctr := g.b.Reg()
	g.b.LoadImm(ctr, iters)
	header, exit := g.b.Block(), g.b.Block()
	g.b.Jump(header)
	g.b.SetBlock(header)
	g.body(n, depth)
	g.b.Emit(ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ctr}, Uses: []ir.Reg{ctr}, Imm: -1})
	g.b.Branch(ctr, header, exit)
	g.b.SetBlock(exit)
}
