package workload

import (
	"testing"

	"prefcolor/internal/cfg"
	"prefcolor/internal/costmodel"
	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

func TestBenchmarksNamed(t *testing.T) {
	want := []string{"compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack", "mpegaudio-fp", "mtrt-fp"}
	bs := Benchmarks()
	if len(bs) != len(want) {
		t.Fatalf("%d benchmarks, want %d", len(bs), len(want))
	}
	for i, p := range bs {
		if p.Name != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, p.Name, want[i])
		}
	}
	if _, err := ByName("jess"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	m := target.UsageModel(16)
	for _, p := range Benchmarks() {
		fs1 := Generate(p, m)
		fs2 := Generate(p, m)
		if len(fs1) != p.Funcs {
			t.Errorf("%s: %d funcs, want %d", p.Name, len(fs1), p.Funcs)
		}
		for i := range fs1 {
			if err := ir.Validate(fs1[i]); err != nil {
				t.Errorf("%s[%d]: %v", p.Name, i, err)
			}
			if fs1[i].String() != fs2[i].String() {
				t.Errorf("%s[%d]: generation is not deterministic", p.Name, i)
			}
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	m := target.UsageModel(16)
	p, _ := ByName("compress")
	for i, f := range Generate(p, m) {
		init := map[ir.Reg]int64{}
		for _, pr := range f.Params {
			init[pr] = int64(i + 3)
		}
		res, err := ir.Interp(f, init, ir.InterpOptions{CallClobbers: m.CallClobbers()})
		if err != nil {
			t.Fatalf("func %d: %v", i, err)
		}
		if !res.HasRet {
			t.Errorf("func %d returned nothing", i)
		}
	}
}

func TestGeneratedCodeHasCopies(t *testing.T) {
	m := target.UsageModel(16)
	for _, name := range []string{"jess", "compress"} {
		p, _ := ByName(name)
		moves := 0
		for _, f := range Generate(p, m) {
			moves += f.CountOp(ir.Move)
		}
		if moves < 20 {
			t.Errorf("%s: only %d copies; SSA destruction should produce many", name, moves)
		}
	}
}

func TestGeneratedPairDensityOrdering(t *testing.T) {
	m := target.UsageModel(16)
	count := func(name string) int {
		p, _ := ByName(name)
		total := 0
		for _, f := range Generate(p, m) {
			loops := cfg.FindLoops(f, cfg.NewDomTree(f))
			total += len(costmodel.FindLoadPairs(f, m, loops))
		}
		return total
	}
	mp, db := count("mpegaudio"), count("db")
	if mp <= db {
		t.Errorf("mpegaudio should have more paired loads than db (%d vs %d)", mp, db)
	}
	if mp == 0 {
		t.Error("mpegaudio has no paired-load candidates at all")
	}
}

func TestGeneratedCallDensityOrdering(t *testing.T) {
	m := target.UsageModel(16)
	count := func(name string) float64 {
		p, _ := ByName(name)
		calls, instrs := 0, 0
		for _, f := range Generate(p, m) {
			calls += f.CountOp(ir.Call)
			instrs += f.NumInstrs()
		}
		return float64(calls) / float64(instrs)
	}
	if count("db") <= count("compress") {
		t.Error("db must be more call-dense than compress")
	}
	if count("jess") <= count("mpegaudio") {
		t.Error("jess must be more call-dense than mpegaudio")
	}
}

func TestGeneratedLoopsExist(t *testing.T) {
	m := target.UsageModel(16)
	p, _ := ByName("compress")
	deep := 0
	for _, f := range Generate(p, m) {
		li := cfg.FindLoops(f, cfg.NewDomTree(f))
		for _, l := range li.Loops {
			if l.Depth >= 2 {
				deep++
			}
		}
	}
	if deep == 0 {
		t.Error("compress generated no nested loops")
	}
}
