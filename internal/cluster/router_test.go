package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prefcolor/internal/ir"
	"prefcolor/internal/server"
)

// distinctFunc returns a unique small function per i, so tests can
// spread keys across shards and bypass caches at will.
func distinctFunc(i int) string {
	return fmt.Sprintf(`func distinct%d(v0) {
b0:
  v1 = add v0, v0
  v2 = addimm v1, %d
  ret v2
}
`, i, i)
}

type testReplica struct {
	s  *server.Server
	ts *httptest.Server
}

// startReplicas brings up n in-process replicas r0..r(n-1) with the
// given per-replica sizing.
func startReplicas(t *testing.T, n int, cfg server.Config) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	for i := range reps {
		c := cfg
		c.ReplicaID = fmt.Sprintf("r%d", i)
		s := server.New(c)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		reps[i] = &testReplica{s: s, ts: ts}
	}
	return reps
}

func newTestRouter(t *testing.T, reps []*testReplica, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	for i, rep := range reps {
		cfg.Replicas = append(cfg.Replicas, ReplicaConfig{
			ID:      fmt.Sprintf("r%d", i),
			BaseURL: rep.ts.URL,
		})
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // deterministic: passive detection only
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { front.Close(); rt.Close() })
	return rt, front
}

func postAllocate(t *testing.T, url, src string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(allocateBody{Source: src})
	resp, err := http.Post(url+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// digestOf extracts the allocation digest from a 200 body.
func digestOf(t *testing.T, body []byte) string {
	t.Helper()
	var r struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("parsing response %q: %v", body, err)
	}
	if r.Digest == "" {
		t.Fatalf("response has no digest: %s", body)
	}
	return r.Digest
}

// oracleDigest asks a standalone replica — outside the cluster under
// test — for the ground-truth digest.
func oracleDigest(t *testing.T, oracle *httptest.Server, src string) string {
	t.Helper()
	resp, body := postAllocate(t, oracle.URL, src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle: HTTP %d: %s", resp.StatusCode, body)
	}
	return digestOf(t, body)
}

// keyOf mirrors the router's keying for a default-spec text request.
func keyOf(t *testing.T, src string) server.Key {
	t.Helper()
	keys := server.NewKeyResolver(16)
	canon, _, err := keys.ResolveText(src)
	if err != nil {
		t.Fatal(err)
	}
	var spec server.Spec
	if _, err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	return server.KeyFor(canon, spec)
}

// TestRouterRoutesToHomeShard pins the sharding contract: every
// request lands on the shard the ring names as its key's home, and a
// repeat of the same function hits that shard's cache.
func TestRouterRoutesToHomeShard(t *testing.T) {
	reps := startReplicas(t, 3, server.Config{Workers: 2, QueueSize: 16, CacheEntries: 64})
	rt, front := newTestRouter(t, reps, Config{})
	homes := map[string]bool{}
	for i := 0; i < 12; i++ {
		src := distinctFunc(i)
		want := rt.Home(keyOf(t, src))
		homes[want] = true
		resp, body := postAllocate(t, front.URL, src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("func %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(server.ReplicaHeader); got != want {
			t.Errorf("func %d served by %s, home is %s", i, got, want)
		}
		if got := resp.Header.Get(server.CacheHeader); got != "miss" {
			t.Errorf("func %d first request: cache %q, want miss", i, got)
		}
		resp2, _ := postAllocate(t, front.URL, src)
		if got := resp2.Header.Get(server.CacheHeader); got != "hit" {
			t.Errorf("func %d repeat: cache %q, want hit", i, got)
		}
		if got := resp2.Header.Get(server.ReplicaHeader); got != want {
			t.Errorf("func %d repeat served by %s, home is %s", i, got, want)
		}
	}
	if len(homes) < 2 {
		t.Errorf("12 distinct functions all homed on %v — ring not spreading", homes)
	}
}

// TestDrainHandoffMidBatch drains a replica while a routed batch has
// requests in flight on it. The contract: requests already admitted
// run to completion on the draining replica, refused ones hand off to
// ring successors — the client sees zero 5xx and every digest matches
// a standalone oracle.
func TestDrainHandoffMidBatch(t *testing.T) {
	const n = 40
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	var once sync.Once

	reps := make([]*testReplica, 0, 3)
	for i := 0; i < 3; i++ {
		cfg := server.Config{
			Workers: 2, QueueSize: 64, CacheEntries: 64,
			ReplicaID: fmt.Sprintf("r%d", i),
		}
		if i == 1 { // the victim: first job announces itself, all jobs block
			cfg.JobStartHook = func() {
				once.Do(func() { started <- struct{}{} })
				<-gate
			}
		}
		s := server.New(cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		reps = append(reps, &testReplica{s: s, ts: ts})
	}
	rt, front := newTestRouter(t, reps, Config{})
	victim := reps[1]

	oracleSrv := server.New(server.Config{Workers: 2, QueueSize: 64, CacheEntries: 64})
	oracle := httptest.NewServer(oracleSrv.Handler())
	t.Cleanup(func() { oracle.Close(); oracleSrv.Close() })

	funcs := make([]string, n)
	homedOnVictim := 0
	for i := range funcs {
		funcs[i] = distinctFunc(i)
		if rt.Home(keyOf(t, funcs[i])) == "r1" {
			homedOnVictim++
		}
	}
	if homedOnVictim == 0 {
		t.Fatal("no batch function homes on the victim — test proves nothing")
	}

	type batchResult struct {
		Results []struct {
			Digest string `json:"digest"`
			Error  string `json:"error"`
			Code   int    `json:"code"`
		} `json:"results"`
	}
	done := make(chan batchResult, 1)
	go func() {
		body, _ := json.Marshal(struct {
			Functions []string `json:"functions"`
		}{funcs})
		resp, err := http.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		defer resp.Body.Close()
		var br batchResult
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Errorf("decoding batch response: %v", err)
		}
		done <- br
	}()

	// A victim worker has a batch item in flight; drain the victim
	// now, then let its admitted work finish.
	<-started
	victim.s.StartDrain()
	close(gate)

	br := <-done
	if len(br.Results) != n {
		t.Fatalf("batch returned %d results, want %d", len(br.Results), n)
	}
	for i, r := range br.Results {
		if r.Code >= 500 {
			t.Errorf("result %d: client-visible %d (%s) despite handoff", i, r.Code, r.Error)
			continue
		}
		if r.Error != "" {
			t.Errorf("result %d: error %q", i, r.Error)
			continue
		}
		if want := oracleDigest(t, oracle, funcs[i]); r.Digest != want {
			t.Errorf("result %d: digest %s, oracle says %s", i, r.Digest, want)
		}
	}
	if state, _ := rt.ReplicaState("r1"); state != "draining" {
		t.Errorf("router believes victim is %q, want draining", state)
	}
}

// retries429 reads the router's 429-retry counter.
func retries429(rt *Router) int64 {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	return rt.metrics.retries["429"]
}

// TestQueueBackpressureUnderRestart saturates a one-worker replica's
// admission queue and pins the router's backpressure path: the
// replica's 429 + Retry-After is honored (bounded pause, same-replica
// retry) rather than failed over, and the same contract holds after
// the replica is killed and resurrected at a new address.
func TestQueueBackpressureUnderRestart(t *testing.T) {
	var mu sync.Mutex
	gate := make(chan struct{})
	blocking := true
	hook := func() {
		mu.Lock()
		b, g := blocking, gate
		mu.Unlock()
		if b {
			<-g
		}
	}
	mkServer := func() (*server.Server, *httptest.Server) {
		s := server.New(server.Config{
			Workers: 1, QueueSize: 1, CacheEntries: 16,
			ReplicaID: "r0", JobStartHook: hook,
		})
		return s, httptest.NewServer(s.Handler())
	}
	s0, ts0 := mkServer()
	t.Cleanup(func() { ts0.Close(); s0.Close() })
	rep := &testReplica{s: s0, ts: ts0}
	rt, front := newTestRouter(t, []*testReplica{rep}, Config{
		Retry429:   50,
		Max429Wait: 2 * time.Millisecond,
	})

	saturate := func(base int) (release func(), wait func()) {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ { // one in the worker, one queued
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, body := postAllocate(t, front.URL, distinctFunc(base+i))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("saturating request %d: HTTP %d: %s", i, resp.StatusCode, body)
				}
			}(i)
		}
		// Wait until the queue is actually full: a probe request must
		// bounce with 429 at the replica (observed via router retries).
		before := retries429(rt)
		probe := make(chan struct{})
		go func() {
			defer close(probe)
			resp, body := postAllocate(t, front.URL, distinctFunc(base+2))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("probe request: HTTP %d: %s", resp.StatusCode, body)
			}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for retries429(rt) == before {
			if time.Now().After(deadline) {
				t.Fatal("router never saw a 429 from the saturated replica")
			}
			time.Sleep(time.Millisecond)
		}
		return func() {
				mu.Lock()
				blocking = false
				g := gate
				mu.Unlock()
				close(g)
			}, func() {
				wg.Wait()
				<-probe
			}
	}

	release, wait := saturate(0)
	if got := retries429(rt); got == 0 {
		t.Fatalf("429 retries = %d, want > 0", got)
	}
	release()
	wait() // every request — including the 429-bounced probe — ends 200

	// Restart: kill the replica (connections sever), point the router
	// at the resurrected instance on a fresh address, and require the
	// backpressure contract to hold across the restart.
	ts0.CloseClientConnections()
	ts0.Close()
	if resp, _ := postAllocate(t, front.URL, distinctFunc(100)); resp.StatusCode != http.StatusBadGateway {
		t.Errorf("request against dead single replica: HTTP %d, want 502", resp.StatusCode)
	}
	if state, _ := rt.ReplicaState("r0"); state != "down" {
		t.Errorf("router believes dead replica is %q, want down", state)
	}

	mu.Lock()
	gate = make(chan struct{})
	blocking = true
	mu.Unlock()
	s1, ts1 := mkServer()
	t.Cleanup(func() { ts1.Close(); s1.Close() })
	if err := rt.UpdateReplica("r0", ts1.URL); err != nil {
		t.Fatal(err)
	}
	if state, _ := rt.ReplicaState("r0"); state != "healthy" {
		t.Errorf("resurrected replica is %q, want healthy", state)
	}
	release2, wait2 := saturate(200)
	release2()
	wait2()
}

// TestRouter429Propagates pins the give-up path: when retries are
// disabled the replica's refusal reaches the client as a 429 with its
// Retry-After hint intact, so backpressure composes through the
// router.
func TestRouter429Propagates(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	var once sync.Once
	s := server.New(server.Config{
		Workers: 1, QueueSize: 1, CacheEntries: 16, ReplicaID: "r0",
		JobStartHook: func() {
			once.Do(func() { started <- struct{}{} })
			<-gate
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	_, front := newTestRouter(t, []*testReplica{{s: s, ts: ts}}, Config{Retry429: -1})

	fire := func(i int) { // fire-and-forget saturating request
		body, _ := json.Marshal(allocateBody{Source: distinctFunc(i)})
		resp, err := http.Post(front.URL+"/v1/allocate", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	go fire(0) // occupies the worker
	<-started

	// Probe with fresh keys and a short client timeout: a probe that
	// wins the lone queue slot hangs on the gated worker (the timeout
	// abandons it), and every probe after that must bounce with 429.
	probe := &http.Client{Timeout: 200 * time.Millisecond}
	deadline := time.Now().Add(5 * time.Second)
	for i := 1; ; i++ {
		body, _ := json.Marshal(allocateBody{Source: distinctFunc(i)})
		resp, err := probe.Post(front.URL+"/v1/allocate", "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 lost its Retry-After through the router")
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw a 429 through the router")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterBinaryAllocate pins cross-format keying: the binary wire
// form of a function routes to the same shard and digest as its text
// form — content addressing is format-independent end to end.
func TestRouterBinaryAllocate(t *testing.T) {
	reps := startReplicas(t, 3, server.Config{Workers: 2, QueueSize: 16, CacheEntries: 64})
	rt, front := newTestRouter(t, reps, Config{})

	src := distinctFunc(7)
	resp, body := postAllocate(t, front.URL, src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text allocate: HTTP %d: %s", resp.StatusCode, body)
	}
	textDigest := digestOf(t, body)
	textReplica := resp.Header.Get(server.ReplicaHeader)

	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	breq, err := http.NewRequest(http.MethodPost, front.URL+"/v1/allocate",
		bytes.NewReader(ir.EncodeBinary(f)))
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("Content-Type", server.BinaryContentType)
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	bbody, _ := io.ReadAll(bresp.Body)
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("binary allocate: HTTP %d: %s", bresp.StatusCode, bbody)
	}
	if got := digestOf(t, bbody); got != textDigest {
		t.Errorf("binary digest %s != text digest %s", got, textDigest)
	}
	if got := bresp.Header.Get(server.ReplicaHeader); got != textReplica {
		t.Errorf("binary served by %s, text by %s — formats shard apart", got, textReplica)
	}
	if got := bresp.Header.Get(server.CacheHeader); got != "hit" {
		t.Errorf("binary request after text: cache %q, want hit (same key)", got)
	}
	_ = rt
}

// TestRouterHealthzAndMetrics exercises the operational surface:
// aggregate health degrades as shards go down and the Prometheus
// rendering carries the per-shard counters.
func TestRouterHealthzAndMetrics(t *testing.T) {
	reps := startReplicas(t, 2, server.Config{Workers: 1, QueueSize: 8, CacheEntries: 16})
	_, front := newTestRouter(t, reps, Config{})

	for i := 0; i < 4; i++ {
		resp, body := postAllocate(t, front.URL, distinctFunc(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with all replicas up: HTTP %d", hresp.StatusCode)
	}

	// Sever both replicas; passive detection marks them down.
	for _, rep := range reps {
		rep.ts.CloseClientConnections()
		rep.ts.Close()
	}
	postAllocate(t, front.URL, distinctFunc(50))
	hresp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with all replicas down: HTTP %d, want 503", hresp.StatusCode)
	}

	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"prefgcd_router_requests_total",
		"prefgcd_router_forwards_total",
		`prefgcd_router_cache_misses_total{replica="r0"}`,
		"prefgcd_router_retries_total",
		`prefgcd_router_replica_state{replica="r0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics rendering missing %q", want)
		}
	}
}

// TestRouterActiveProber covers the wall-clock path the simulator
// turns off: with probing enabled a downed replica is discovered and
// a resurrected one returns to rotation without any client traffic.
func TestRouterActiveProber(t *testing.T) {
	reps := startReplicas(t, 2, server.Config{Workers: 1, QueueSize: 8, CacheEntries: 16})
	rt, _ := newTestRouter(t, reps, Config{HealthInterval: 10 * time.Millisecond})

	reps[1].ts.CloseClientConnections()
	reps[1].ts.Close()
	waitState := func(id, want string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if got, _ := rt.ReplicaState(id); got == want {
				return
			}
			if time.Now().After(deadline) {
				got, _ := rt.ReplicaState(id)
				t.Fatalf("replica %s stuck in %q, want %q", id, got, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitState("r1", "down")

	s := server.New(server.Config{Workers: 1, QueueSize: 8, CacheEntries: 16, ReplicaID: "r1"})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	if err := rt.UpdateReplica("r1", ts.URL); err != nil {
		t.Fatal(err)
	}
	waitState("r1", "healthy")

	s.StartDrain()
	waitState("r1", "draining")
}

// TestRouterBodyMemoAndKeyHeader pins the parse-free forwarding path:
// a repeat JSON body routes from the raw-body memo without re-parsing,
// the forwarded request carries the router-resolved X-Prefgcd-Key, and
// a replica trusting that header serves its cache hit without parsing
// the body itself.
func TestRouterBodyMemoAndKeyHeader(t *testing.T) {
	reps := startReplicas(t, 2, server.Config{
		Workers: 2, QueueSize: 16, CacheEntries: 64, TrustKeyHeader: true,
	})
	rt, front := newTestRouter(t, reps, Config{})

	src := distinctFunc(3)
	resp, body := postAllocate(t, front.URL, src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: HTTP %d: %s", resp.StatusCode, body)
	}
	first := digestOf(t, body)
	resp2, body2 := postAllocate(t, front.URL, src)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat request: HTTP %d: %s", resp2.StatusCode, body2)
	}
	if got := digestOf(t, body2); got != first {
		t.Errorf("repeat digest %s != first %s", got, first)
	}
	if got := resp2.Header.Get(server.CacheHeader); got != "hit" {
		t.Errorf("repeat request: cache %q, want hit", got)
	}

	rt.metrics.mu.Lock()
	hits, parses := rt.metrics.bodyHits, rt.metrics.bodyParses
	rt.metrics.mu.Unlock()
	if parses != 1 || hits != 1 {
		t.Errorf("body memo: %d parses, %d hits; want 1 and 1", parses, hits)
	}

	// The memo routes by raw bytes, so the decision must match a fresh
	// parse: same canonical key both times.
	want := keyOf(t, src)
	bodyJSON, _ := json.Marshal(allocateBody{Source: src})
	canon, spec, _, err := rt.routeJSON(bodyJSON)
	if err != nil {
		t.Fatal(err)
	}
	if got := server.KeyFor(canon, spec); got != want {
		t.Errorf("memoized route key %v != fresh key %v", got, want)
	}

	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `prefgcd_router_body_memo_total{outcome="hit"}`) {
		t.Error("metrics missing body memo counters")
	}
}

func TestRouterConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no replicas: want error")
	}
	if _, err := New(Config{Replicas: []ReplicaConfig{{ID: "a"}}}); err == nil {
		t.Error("missing BaseURL: want error")
	}
	if _, err := New(Config{Replicas: []ReplicaConfig{
		{ID: "a", BaseURL: "http://x"}, {ID: "a", BaseURL: "http://y"},
	}}); err == nil {
		t.Error("duplicate ID: want error")
	}
	rt, err := New(Config{
		Replicas:       []ReplicaConfig{{ID: "a", BaseURL: "http://x"}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.UpdateReplica("nope", "http://y"); err == nil {
		t.Error("unknown replica update: want error")
	}
	if _, ok := rt.ReplicaState("nope"); ok {
		t.Error("unknown replica state: want ok=false")
	}
}
