package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prefcolor/internal/ir"
	"prefcolor/internal/server"
)

// ReplicaConfig names one prefgcd replica the router shards across.
type ReplicaConfig struct {
	ID      string // stable identity; the ring hashes this
	BaseURL string // e.g. "http://localhost:8401"
}

// Config sizes the router. The zero value of any field selects its
// default.
type Config struct {
	// Replicas is the shard set; at least one is required.
	Replicas []ReplicaConfig

	// Vnodes is the virtual-node count per replica; 0 means 128.
	Vnodes int

	// MaxAttempts bounds how many distinct replicas one request may
	// be forwarded to before the router gives up; 0 means 3 (capped
	// at the replica count).
	MaxAttempts int

	// RetryBackoff is the base delay between failover attempts,
	// doubling per attempt; 0 means 2ms.
	RetryBackoff time.Duration

	// Retry429 is how many times a 429 admission refusal is retried
	// against the same replica (honoring its Retry-After) before the
	// refusal propagates to the client; 0 means 2, negative disables.
	Retry429 int

	// Max429Wait caps one honored Retry-After pause — replicas hint
	// in whole seconds, far too coarse for an in-datacenter retry;
	// 0 means 50ms.
	Max429Wait time.Duration

	// HealthInterval is the active /healthz probe period; 0 means
	// 250ms, negative disables active probing (passive detection
	// through forwarded traffic still applies — the deterministic
	// simulator runs this way so no wall-clock prober races the
	// scripted schedule).
	HealthInterval time.Duration

	// MaxBodyBytes bounds a routed request body; 0 means 4 MiB.
	MaxBodyBytes int64

	// KeyMemoEntries sizes the raw-payload→canonical-hash memo; 0
	// means 4096.
	KeyMemoEntries int

	// MaxBatch bounds the functions of one routed /v1/batch; 0 means
	// 256.
	MaxBatch int

	// Client overrides the forwarding HTTP client; nil uses a pooled
	// default.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts > len(c.Replicas) {
		c.MaxAttempts = len(c.Replicas)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Retry429 == 0 {
		c.Retry429 = 2
	}
	if c.Retry429 < 0 {
		c.Retry429 = 0
	}
	if c.Max429Wait <= 0 {
		c.Max429Wait = 50 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.KeyMemoEntries <= 0 {
		c.KeyMemoEntries = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	return c
}

// Replica health states, as the router believes them.
const (
	stateHealthy int32 = iota
	stateDraining
	stateDown
)

func stateName(s int32) string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	}
	return "down"
}

// replica is the router's view of one shard: its address (swappable,
// so a resurrected replica can come back on a new port) and health.
type replica struct {
	id    string
	state atomic.Int32

	mu      sync.RWMutex
	baseURL string
}

func (rep *replica) url() string {
	rep.mu.RLock()
	defer rep.mu.RUnlock()
	return rep.baseURL
}

// Router is the stateless cluster front door. Construct with New,
// serve Handler(), Close to stop the health prober.
type Router struct {
	cfg      Config
	ring     *ring
	replicas map[string]*replica
	keys     *server.KeyResolver
	bodies   *bodyMemo
	metrics  *routerMetrics
	client   *http.Client
	mux      *http.ServeMux

	stopProbe context.CancelFunc
	probeDone chan struct{}
}

// New builds a router over the configured replicas and, unless
// HealthInterval is negative, starts its active health prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	cfg = cfg.withDefaults()
	ids := make([]string, 0, len(cfg.Replicas))
	replicas := make(map[string]*replica, len(cfg.Replicas))
	for _, rc := range cfg.Replicas {
		if rc.ID == "" || rc.BaseURL == "" {
			return nil, fmt.Errorf("cluster: replica needs both ID and BaseURL, got %+v", rc)
		}
		if _, dup := replicas[rc.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica ID %q", rc.ID)
		}
		ids = append(ids, rc.ID)
		replicas[rc.ID] = &replica{id: rc.ID, baseURL: rc.BaseURL}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 3 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
			},
		}
	}
	rt := &Router{
		cfg:      cfg,
		ring:     newRing(ids, cfg.Vnodes),
		replicas: replicas,
		keys:     server.NewKeyResolver(cfg.KeyMemoEntries),
		bodies:   newBodyMemo(cfg.KeyMemoEntries),
		metrics:  newRouterMetrics(ids),
		client:   client,
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/allocate", rt.counted("allocate", rt.handleAllocate))
	rt.mux.HandleFunc("POST /v1/batch", rt.counted("batch", rt.handleBatch))
	rt.mux.HandleFunc("GET /healthz", rt.counted("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /metrics", rt.counted("metrics", rt.handleMetrics))
	if cfg.HealthInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		rt.stopProbe = cancel
		rt.probeDone = make(chan struct{})
		go rt.probeLoop(ctx)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober. Forwarding keeps working (the router
// is stateless); Close exists so tests and drains don't leak the
// prober goroutine.
func (rt *Router) Close() {
	if rt.stopProbe != nil {
		rt.stopProbe()
		<-rt.probeDone
	}
}

// UpdateReplica points an existing replica ID at a new base URL — the
// service-discovery hook a resurrected replica uses when it comes
// back on a different address — and marks it healthy so traffic
// returns immediately.
func (rt *Router) UpdateReplica(id, baseURL string) error {
	rep, ok := rt.replicas[id]
	if !ok {
		return fmt.Errorf("cluster: unknown replica %q", id)
	}
	rep.mu.Lock()
	rep.baseURL = baseURL
	rep.mu.Unlock()
	rt.setState(rep, stateHealthy)
	return nil
}

// ReplicaState reports the router's current belief about one replica:
// "healthy", "draining", or "down".
func (rt *Router) ReplicaState(id string) (string, bool) {
	rep, ok := rt.replicas[id]
	if !ok {
		return "", false
	}
	return stateName(rep.state.Load()), true
}

// Home returns the ID of the shard that owns key — exposed for tests
// and the simulator's no-double-flight accounting.
func (rt *Router) Home(key server.Key) string { return rt.ring.home(key) }

func (rt *Router) setState(rep *replica, s int32) {
	if rep.state.Swap(s) != s {
		rt.metrics.SetState(rep.id, s)
	}
}

// probeLoop actively probes every replica's /healthz so downed
// replicas are discovered without waiting for a request to fail into
// them, and resurrected replicas return to rotation without traffic.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, id := range rt.ring.ids {
			rep := rt.replicas[id]
			rt.probe(ctx, rep)
		}
	}
}

func (rt *Router) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url()+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.setState(rep, stateDown)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		rt.setState(rep, stateHealthy)
	case resp.StatusCode == server.DrainingStatus:
		rt.setState(rep, stateDraining)
	default:
		rt.setState(rep, stateDown)
	}
}

// counted wraps a handler so every router response lands in the
// endpoint counters.
func (rt *Router) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		rt.metrics.CountRequest(endpoint, rec.code)
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// allocateBody mirrors the server's /v1/allocate request so the
// router can extract the source and spec for keying while forwarding
// the original bytes untouched.
type allocateBody struct {
	server.Spec
	Source    string `json:"source"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// batchBody mirrors the server's textual /v1/batch request.
type batchBody struct {
	server.Spec
	Functions []string `json:"functions"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

func (rt *Router) readRawBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == server.BinaryContentType ||
		len(ct) > len(server.BinaryContentType) && ct[:len(server.BinaryContentType)+1] == server.BinaryContentType+";"
}

// handleAllocate routes one allocation to its home shard. The router
// resolves the same canonical content key the replica will cache
// under (both the JSON parse and the IR decode are memoized, so the
// steady state is hash-only), picks the shard by consistent hashing,
// and forwards the original body verbatim — stamping the resolved key
// into the KeyHeader so a trusting replica need not parse it either.
func (rt *Router) handleAllocate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readRawBody(w, r)
	if !ok {
		return
	}
	var (
		spec        server.Spec
		canon       [32]byte
		contentType string
		code        int
		err         error
	)
	if isBinaryRequest(r) {
		if len(body) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("empty source"))
			return
		}
		if !ir.IsBinary(body) {
			writeError(w, http.StatusBadRequest, errors.New("body is not binary IR (bad magic)"))
			return
		}
		if spec, _, err = server.SpecFromQuery(r); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		contentType = server.BinaryContentType
		if canon, code, err = rt.keys.ResolveBinary(body); err != nil {
			writeError(w, code, err)
			return
		}
		if _, err = spec.Normalize(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		contentType = "application/json"
		canon, spec, code, err = rt.routeJSON(body)
	}
	if err != nil {
		writeError(w, code, err)
		return
	}
	key := server.KeyFor(canon, spec)
	rt.forward(w, r, key, canon, body, contentType, r.URL.RawQuery)
}

// routeJSON resolves a JSON allocate body to its canonical content
// hash and normalized spec, memoized on the raw bytes: a repeat body
// costs one hash and one map probe, not a JSON parse. Only fully
// validated bodies enter the memo, so the hit path needs no re-checks.
func (rt *Router) routeJSON(body []byte) (canon [32]byte, spec server.Spec, code int, err error) {
	raw := sha256.Sum256(body)
	if info, ok := rt.bodies.get(raw); ok {
		rt.metrics.CountBody(true)
		return info.canon, info.spec, 0, nil
	}
	rt.metrics.CountBody(false)
	var req allocateBody
	if err := json.Unmarshal(body, &req); err != nil {
		return canon, spec, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err)
	}
	if req.Source == "" {
		return canon, spec, http.StatusBadRequest, errors.New("empty source")
	}
	if canon, code, err = rt.keys.ResolveText(req.Source); err != nil {
		return canon, spec, code, err
	}
	if _, err := req.Spec.Normalize(); err != nil {
		return canon, spec, http.StatusBadRequest, err
	}
	rt.bodies.add(raw, routeInfo{canon: canon, spec: req.Spec})
	return canon, req.Spec, 0, nil
}

// forward sends body to the key's home shard, failing over along the
// ring with bounded backoff when shards are down or draining, and
// honoring 429 Retry-After pauses. The winning replica's response —
// success or final refusal — streams back to the client unchanged.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request,
	key server.Key, canon [32]byte, body []byte, contentType, rawQuery string) {

	resp, servedBy, err := rt.tryReplicas(r.Context(), key, canon, body, contentType, rawQuery)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	rt.accountResponse(key, servedBy, resp)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// tryReplicas runs the retry policy and returns the first final
// response. Retryable outcomes — connection failure, 503 (down or
// draining), 500/502 — advance to the next replica in ring order;
// 429 waits out the Retry-After (bounded) and retries the same
// replica; everything else (200, 4xx, 504) is final.
func (rt *Router) tryReplicas(ctx context.Context, key server.Key,
	canon [32]byte, body []byte, contentType, rawQuery string) (*http.Response, string, error) {

	order := rt.ring.lookup(key)
	// First preference: replicas believed healthy, in ring order.
	// Fallback: every replica in ring order — a "down" mark may be
	// stale, and trying is better than refusing outright.
	candidates := make([]*replica, 0, len(order))
	for _, id := range order {
		if rep := rt.replicas[id]; rep.state.Load() == stateHealthy {
			candidates = append(candidates, rep)
		}
	}
	if len(candidates) == 0 {
		for _, id := range order {
			candidates = append(candidates, rt.replicas[id])
		}
	}
	if len(candidates) > rt.cfg.MaxAttempts {
		candidates = candidates[:rt.cfg.MaxAttempts]
	}

	var lastErr error
	for attempt, rep := range candidates {
		if attempt > 0 {
			// Bounded exponential backoff between failover attempts.
			delay := rt.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, "", ctx.Err()
			}
		}
		tries429 := 0
		for {
			resp, err := rt.send(ctx, rep, canon, body, contentType, rawQuery)
			if err != nil {
				if ctx.Err() != nil {
					return nil, "", ctx.Err()
				}
				rt.setState(rep, stateDown)
				rt.metrics.CountRetry("conn")
				lastErr = fmt.Errorf("replica %s: %w", rep.id, err)
				break // next replica
			}
			switch {
			case resp.StatusCode == server.DrainingStatus:
				// The replica refused at admission (draining or
				// closed); its in-flight work is unaffected — hand
				// this request to the next shard.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.setState(rep, stateDraining)
				rt.metrics.CountRetry("draining")
				lastErr = fmt.Errorf("replica %s: draining", rep.id)
			case resp.StatusCode == http.StatusInternalServerError ||
				resp.StatusCode == http.StatusBadGateway:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.metrics.CountRetry("http5xx")
				lastErr = fmt.Errorf("replica %s: HTTP %d", rep.id, resp.StatusCode)
			case resp.StatusCode == http.StatusTooManyRequests && tries429 < rt.cfg.Retry429:
				// Honor the replica's Retry-After (capped — the hint
				// is seconds-granular) and re-offer to the same
				// replica: its queue drains in milliseconds, and
				// rerouting would cold-compute on a foreign shard.
				wait := retryAfter(resp, rt.cfg.Max429Wait)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rt.metrics.CountRetry("429")
				tries429++
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return nil, "", ctx.Err()
				}
				continue // same replica
			default:
				rt.setState(rep, stateHealthy)
				return resp, rep.id, nil
			}
			break // next replica
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no replicas available")
	}
	return nil, "", fmt.Errorf("all replicas failed: %w", lastErr)
}

// send forwards one request body to one replica, carrying the
// already-resolved content key so a replica with TrustKeyHeader on can
// probe its cache without parsing the body.
func (rt *Router) send(ctx context.Context, rep *replica,
	canon [32]byte, body []byte, contentType, rawQuery string) (*http.Response, error) {

	u := rep.url() + "/v1/allocate"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(server.KeyHeader, server.EncodeKeyHeader(canon))
	return rt.client.Do(req)
}

// retryAfter reads a 429's Retry-After hint, capped at max.
func retryAfter(resp *http.Response, max time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			if d := time.Duration(secs) * time.Second; d < max {
				return d
			}
		}
	}
	return max
}

// accountResponse feeds the per-shard counters: requests by replica
// and status, cache hit/miss from the replica's X-Prefgcd-Cache
// header, and a rehash when a non-home shard served the key.
func (rt *Router) accountResponse(key server.Key, servedBy string, resp *http.Response) {
	rt.metrics.CountForward(servedBy, resp.StatusCode)
	switch resp.Header.Get(server.CacheHeader) {
	case "hit":
		rt.metrics.CountCache(servedBy, true)
	case "miss":
		rt.metrics.CountCache(servedBy, false)
	}
	if home := rt.ring.home(key); home != servedBy {
		rt.metrics.CountRehash(servedBy)
	}
}

// handleBatch splits a batch across shards: each function routes to
// its own home replica as an individual allocation (the whole point
// of the cluster is that no single replica owns a batch's key
// range), and the responses reassemble in order.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryRequest(r) {
		rt.handleBatchBinary(w, r)
		return
	}
	body, ok := rt.readRawBody(w, r)
	if !ok {
		return
	}
	var req batchBody
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	if len(req.Functions) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Functions) > rt.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Functions), rt.cfg.MaxBatch))
		return
	}
	if _, err := req.Spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items := make([]batchItem, len(req.Functions))
	for i, src := range req.Functions {
		if src == "" {
			items[i] = batchItem{err: "empty source", code: http.StatusBadRequest}
			continue
		}
		one, _ := json.Marshal(allocateBody{
			Spec: req.Spec, Source: src, TimeoutMS: req.TimeoutMS,
		})
		canon, code, err := rt.keys.ResolveText(src)
		if err != nil {
			items[i] = batchItem{err: err.Error(), code: code}
			continue
		}
		items[i] = batchItem{body: one, key: server.KeyFor(canon, req.Spec), canon: canon}
	}
	rt.fanOut(w, r, items, "application/json", "")
}

// handleBatchBinary splits a binary frame stream the same way: each
// frame re-encodes canonically and routes to its home shard.
func (rt *Router) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	spec, _, err := server.SpecFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := ir.NewStreamDecoder(bufio.NewReader(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)))
	dec.MaxFrame = int(rt.cfg.MaxBodyBytes)
	var items []batchItem
	for n := 0; ; n++ {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", n, err))
			return
		}
		if n >= rt.cfg.MaxBatch {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch exceeds limit %d", rt.cfg.MaxBatch))
			return
		}
		enc := ir.EncodeBinary(f)
		canon, _, err := rt.keys.ResolveBinary(enc)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", n, err))
			return
		}
		items = append(items, batchItem{body: enc, key: server.KeyFor(canon, spec), canon: canon})
	}
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	rt.fanOut(w, r, items, server.BinaryContentType, r.URL.RawQuery)
}

type batchItem struct {
	body  []byte
	key   server.Key
	canon [32]byte
	err   string
	code  int
}

// fanOut forwards every batch item to its home shard concurrently
// (bounded) and reassembles the per-item responses in order.
func (rt *Router) fanOut(w http.ResponseWriter, r *http.Request,
	items []batchItem, contentType, rawQuery string) {

	type itemResult struct {
		payload json.RawMessage
		err     string
		code    int
	}
	results := make([]itemResult, len(items))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := range items {
		if items[i].err != "" {
			results[i] = itemResult{err: items[i].err, code: items[i].code}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, servedBy, err := rt.tryReplicas(r.Context(), items[i].key, items[i].canon, items[i].body, contentType, rawQuery)
			if err != nil {
				results[i] = itemResult{err: err.Error(), code: http.StatusBadGateway}
				return
			}
			defer resp.Body.Close()
			rt.accountResponse(items[i].key, servedBy, resp)
			payload, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				results[i] = itemResult{err: rerr.Error(), code: http.StatusBadGateway}
				return
			}
			if resp.StatusCode != http.StatusOK {
				var e errorResponse
				_ = json.Unmarshal(payload, &e)
				if e.Error == "" {
					e.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
				}
				results[i] = itemResult{err: e.Error, code: resp.StatusCode}
				return
			}
			results[i] = itemResult{payload: payload}
		}(i)
	}
	wg.Wait()

	// Reassemble in the server's batch shape: {"results":[...]}.
	var b bytes.Buffer
	b.WriteString(`{"results":[`)
	for i, res := range results {
		if i > 0 {
			b.WriteByte(',')
		}
		if res.err != "" {
			item, _ := json.Marshal(struct {
				Error string `json:"error"`
				Code  int    `json:"code"`
			}{res.err, res.code})
			b.Write(item)
			continue
		}
		b.Write(bytes.TrimRight(res.payload, "\n"))
	}
	b.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

// handleHealthz aggregates replica health: 200 while at least one
// shard is believed healthy, 503 otherwise.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	states := make(map[string]string, len(rt.replicas))
	healthy := 0
	for id, rep := range rt.replicas {
		s := rep.state.Load()
		states[id] = stateName(s)
		if s == stateHealthy {
			healthy++
		}
	}
	code := http.StatusOK
	status := "ok"
	if healthy == 0 {
		code, status = http.StatusServiceUnavailable, "no healthy replicas"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"healthy":  healthy,
		"replicas": states,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, rt.metrics.Render())
}
