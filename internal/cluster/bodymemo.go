package cluster

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"prefcolor/internal/server"
)

// routeInfo is one JSON allocate body's routing decision: the canonical
// content hash of its function and its normalized spec. Memoizing the
// pair on the raw body bytes lets a repeat request skip the JSON parse
// entirely — the router's hot path on a steady workload is then
// hash + ring lookup, no decoding at all.
type routeInfo struct {
	canon [sha256.Size]byte
	spec  server.Spec
}

// bodyMemo is a fixed-capacity LRU from raw-body hash to routing
// decision. Only bodies that validated end to end (parse, key
// resolution, spec normalization) are stored, so a memo hit needs no
// re-checks. A zero capacity disables memoization: get always misses,
// add drops.
type bodyMemo struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *bodyItem
	items    map[[sha256.Size]byte]*list.Element
}

type bodyItem struct {
	raw  [sha256.Size]byte
	info routeInfo
}

func newBodyMemo(capacity int) *bodyMemo {
	return &bodyMemo{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[[sha256.Size]byte]*list.Element),
	}
}

func (m *bodyMemo) get(raw [sha256.Size]byte) (routeInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[raw]
	if !ok {
		return routeInfo{}, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*bodyItem).info, true
}

func (m *bodyMemo) add(raw [sha256.Size]byte, info routeInfo) {
	if m.capacity <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[raw]; ok {
		el.Value.(*bodyItem).info = info
		m.order.MoveToFront(el)
		return
	}
	if m.order.Len() >= m.capacity {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*bodyItem).raw)
	}
	m.items[raw] = m.order.PushFront(&bodyItem{raw: raw, info: info})
}
