package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"prefcolor/internal/server"
)

// benchFunc builds a mid-sized function (~3n instructions) so the
// routing benchmarks below measure a realistic JSON body, not a toy.
func benchFunc(n int) string {
	var b strings.Builder
	b.WriteString("func routed(v0) {\nb0:\n")
	v := 0
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  v%d = add v%d, v%d\n", v+1, v, v)
		fmt.Fprintf(&b, "  v%d = addimm v%d, %d\n", v+2, v+1, i)
		fmt.Fprintf(&b, "  v%d = mul v%d, v%d\n", v+3, v+2, v+1)
		v += 3
	}
	fmt.Fprintf(&b, "  ret v%d\n}\n", v)
	return b.String()
}

func benchRouter(b *testing.B) *Router {
	b.Helper()
	rt, err := New(Config{
		Replicas:       []ReplicaConfig{{ID: "r0", BaseURL: "http://unused"}},
		HealthInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	return rt
}

// BenchmarkRouterRouteJSON pins the routing-decision cost for a repeat
// JSON allocate body — the router's steady state on a production
// workload. "memo" is the shipped path (raw-body memo hit: one hash,
// one map probe); "reparse" disables both memos and pays the full JSON
// parse + IR parse every time, the cost of every request before this
// change.
func BenchmarkRouterRouteJSON(b *testing.B) {
	body, _ := json.Marshal(allocateBody{Source: benchFunc(40)})
	b.Logf("body: %d bytes", len(body))

	b.Run("memo", func(b *testing.B) {
		rt := benchRouter(b)
		if _, _, _, err := rt.routeJSON(body); err != nil { // warm the memo
			b.Fatal(err)
		}
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := rt.routeJSON(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reparse", func(b *testing.B) {
		rt := benchRouter(b)
		rt.bodies = newBodyMemo(0)         // capacity 0: every get misses
		rt.keys = server.NewKeyResolver(0) // 0 entries: every resolve parses
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := rt.routeJSON(body); err != nil {
				b.Fatal(err)
			}
		}
	})
}
