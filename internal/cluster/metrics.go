package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// routerMetrics is the router's counter registry, rendered as
// Prometheus text exposition on the router's /metrics. Everything is
// keyed per shard so per-shard rps (rate of forwards_total), hit
// ratio (hits vs misses), and rehash counts are one scrape away.
type routerMetrics struct {
	mu       sync.Mutex
	ids      []string                 // stable label order
	requests map[string]map[int]int64 // endpoint -> status -> count (router's own)
	forwards map[string]map[int]int64 // replica -> status -> count
	hits     map[string]int64         // replica -> cache hits observed
	misses   map[string]int64         // replica -> cache misses observed
	rehashes map[string]int64         // replica -> non-home serves
	retries  map[string]int64         // reason -> count
	states   map[string]int32         // replica -> health state

	bodyHits   int64 // JSON allocate bodies routed from the body memo
	bodyParses int64 // JSON allocate bodies that needed a full parse
}

func newRouterMetrics(ids []string) *routerMetrics {
	m := &routerMetrics{
		ids:      append([]string(nil), ids...),
		requests: make(map[string]map[int]int64),
		forwards: make(map[string]map[int]int64),
		hits:     make(map[string]int64),
		misses:   make(map[string]int64),
		rehashes: make(map[string]int64),
		retries:  make(map[string]int64),
		states:   make(map[string]int32),
	}
	sort.Strings(m.ids)
	return m
}

// CountRequest tallies one finished router HTTP request.
func (m *routerMetrics) CountRequest(endpoint string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
}

// CountForward tallies one response obtained from a replica.
func (m *routerMetrics) CountForward(replica string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.forwards[replica]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.forwards[replica] = byCode
	}
	byCode[code]++
}

// CountCache tallies a replica-reported cache disposition.
func (m *routerMetrics) CountCache(replica string, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.hits[replica]++
	} else {
		m.misses[replica]++
	}
}

// CountRehash tallies a request served by a shard that is not the
// key's home — the cost of failover, paid as a cold compute on a
// foreign shard.
func (m *routerMetrics) CountRehash(replica string) {
	m.mu.Lock()
	m.rehashes[replica]++
	m.mu.Unlock()
}

// CountRetry tallies one retry by reason (conn, draining, http5xx, 429).
func (m *routerMetrics) CountRetry(reason string) {
	m.mu.Lock()
	m.retries[reason]++
	m.mu.Unlock()
}

// CountBody tallies one JSON allocate routing decision: served from
// the raw-body memo (hit) or paid for with a JSON parse.
func (m *routerMetrics) CountBody(hit bool) {
	m.mu.Lock()
	if hit {
		m.bodyHits++
	} else {
		m.bodyParses++
	}
	m.mu.Unlock()
}

// SetState records the router's belief about a replica's health.
func (m *routerMetrics) SetState(replica string, state int32) {
	m.mu.Lock()
	m.states[replica] = state
	m.mu.Unlock()
}

// Counters returns per-replica (forwards, hits, misses, rehashes)
// totals — the simulator's accounting hook.
func (m *routerMetrics) Counters(replica string) (forwards, hits, misses, rehashes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.forwards[replica] {
		forwards += n
	}
	return forwards, m.hits[replica], m.misses[replica], m.rehashes[replica]
}

// Render writes the Prometheus text exposition.
func (m *routerMetrics) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	labeled := func(name, help string, byKey map[string]map[int]int64, keyLabel string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			codes := make([]int, 0, len(byKey[k]))
			for c := range byKey[k] {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			for _, c := range codes {
				fmt.Fprintf(&b, "%s{%s=%q,code=\"%d\"} %d\n", name, keyLabel, k, c, byKey[k][c])
			}
		}
	}
	perReplica := func(name, help string, vals map[string]int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, id := range m.ids {
			fmt.Fprintf(&b, "%s{replica=%q} %d\n", name, id, vals[id])
		}
	}

	labeled("prefgcd_router_requests_total",
		"Router HTTP requests by endpoint and status code.", m.requests, "endpoint")
	labeled("prefgcd_router_forwards_total",
		"Responses obtained from replicas, by replica and status code.", m.forwards, "replica")
	perReplica("prefgcd_router_cache_hits_total",
		"Forwarded requests the replica served from its result cache.", m.hits)
	perReplica("prefgcd_router_cache_misses_total",
		"Forwarded requests the replica computed fresh.", m.misses)
	perReplica("prefgcd_router_rehash_total",
		"Requests served by a non-home shard after failover.", m.rehashes)

	b.WriteString("# HELP prefgcd_router_retries_total Forwarding retries by reason.\n")
	b.WriteString("# TYPE prefgcd_router_retries_total counter\n")
	reasons := make([]string, 0, len(m.retries))
	for r := range m.retries {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "prefgcd_router_retries_total{reason=%q} %d\n", r, m.retries[r])
	}

	fmt.Fprintf(&b, "# HELP prefgcd_router_body_memo_total JSON allocate routing decisions by source.\n"+
		"# TYPE prefgcd_router_body_memo_total counter\n"+
		"prefgcd_router_body_memo_total{outcome=\"hit\"} %d\n"+
		"prefgcd_router_body_memo_total{outcome=\"parse\"} %d\n", m.bodyHits, m.bodyParses)

	b.WriteString("# HELP prefgcd_router_replica_state Router's belief about each replica (0 healthy, 1 draining, 2 down).\n")
	b.WriteString("# TYPE prefgcd_router_replica_state gauge\n")
	for _, id := range m.ids {
		fmt.Fprintf(&b, "prefgcd_router_replica_state{replica=%q} %d\n", id, m.states[id])
	}
	return b.String()
}
