package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"prefcolor/internal/server"
)

func testKey(i int) server.Key {
	return server.Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", i))))
}

func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"r0", "r1", "r2"}, 128)
	b := newRing([]string{"r2", "r0", "r1"}, 128) // order must not matter
	for i := 0; i < 200; i++ {
		k := testKey(i)
		if a.home(k) != b.home(k) {
			t.Fatalf("key %d: home differs across construction order: %s vs %s",
				i, a.home(k), b.home(k))
		}
	}
}

func TestRingLookupOrder(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"}, 128)
	for i := 0; i < 100; i++ {
		k := testKey(i)
		order := r.lookup(k)
		if len(order) != 3 {
			t.Fatalf("key %d: lookup returned %d replicas, want 3", i, len(order))
		}
		if order[0] != r.home(k) {
			t.Fatalf("key %d: home %s not first in %v", i, r.home(k), order)
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("key %d: duplicate %s in preference order %v", i, id, order)
			}
			seen[id] = true
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"}, 128)
	counts := map[string]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		counts[r.home(testKey(i))]++
	}
	for id, c := range counts {
		// With 128 vnodes the shares should be within a loose band of
		// the fair third — the point is no shard is starved or doubled.
		if c < n/5 || c > n/2 {
			t.Errorf("replica %s owns %d of %d keys — outside [%d, %d]", id, c, n, n/5, n/2)
		}
	}
}

// TestRingConsistency pins the property the whole design leans on:
// removing one replica only moves the keys that lived on it — every
// other key keeps its home, so failover does not reshuffle the
// cluster's caches.
func TestRingConsistency(t *testing.T) {
	full := newRing([]string{"r0", "r1", "r2"}, 128)
	reduced := newRing([]string{"r0", "r2"}, 128)
	moved := 0
	for i := 0; i < 2000; i++ {
		k := testKey(i)
		before, after := full.home(k), reduced.home(k)
		if before == "r1" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d: home moved %s -> %s though r1 never owned it", i, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("r1 owned no keys — distribution test should have caught this")
	}
}

// TestRingFailoverSuccessor pins that lookup's second choice is the
// reduced ring's home — the router's failover lands exactly where the
// keys would live if the shard were gone for good.
func TestRingFailoverSuccessor(t *testing.T) {
	full := newRing([]string{"r0", "r1", "r2"}, 128)
	reduced := newRing([]string{"r0", "r2"}, 128)
	for i := 0; i < 2000; i++ {
		k := testKey(i)
		if full.home(k) != "r1" {
			continue
		}
		if got, want := full.lookup(k)[1], reduced.home(k); got != want {
			t.Fatalf("key %d: failover successor %s, want %s", i, got, want)
		}
	}
}
