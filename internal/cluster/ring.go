// Package cluster scales the prefgcd daemon horizontally: a stateless
// router consistent-hashes each request's content-addressed cache key
// (the same sha256(EncodeBinary(f))+spec identity the replica caches
// under, via server.KeyResolver and server.KeyFor) across N prefgcd
// replicas. Each shard therefore owns a disjoint slice of the key
// space and its LRU stays hot: a key never computes on two shards at
// once in a healthy cluster, so the replica-local single-flight is
// also the cluster-wide single-flight.
//
// The router tracks replica health both passively (connection
// failures and draining refusals observed on forwarded requests) and
// actively (periodic /healthz probes), retries shard failures on the
// ring's successor replicas with bounded backoff, honors 429
// Retry-After admission refusals, and exposes per-shard Prometheus
// metrics (requests, cache hits, rehashes, retries).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node count per replica: enough that
// three replicas split the key space within a few percent of evenly,
// small enough that ring rebuilds are trivially cheap.
const defaultVnodes = 128

// ring is an immutable consistent-hash ring over replica IDs. Lookup
// walks the ring clockwise from the key's point and returns replicas
// in preference order: the first is the key's home shard, the rest
// are the failover order. The ring depends only on the replica ID
// set and vnode count — not on join order or URLs — so any router
// instance with the same membership routes identically (statelessness
// across router restarts and router fleets).
type ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct replica IDs, sorted
}

type ringPoint struct {
	hash uint64
	id   string
}

// newRing builds the ring for the given replica IDs.
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{ids: append([]string(nil), ids...)}
	sort.Strings(r.ids)
	r.points = make([]ringPoint, 0, len(r.ids)*vnodes)
	for _, id := range r.ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // deterministic tie-break
	})
	return r
}

// pointHash places vnode v of replica id on the ring.
func pointHash(id string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", id, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPoint places a request key on the ring. The key is already a
// sha256 output, so its first word is uniformly distributed.
func keyPoint(key [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// lookup returns every replica ID in preference order for key: the
// home shard first, then each distinct successor clockwise. The
// caller applies health filtering — the ring itself is pure topology.
func (r *ring) lookup(key [sha256.Size]byte) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]string, 0, len(r.ids))
	seen := make(map[string]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(order) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			order = append(order, p.id)
		}
	}
	return order
}

// home returns only the key's first-choice shard.
func (r *ring) home(key [sha256.Size]byte) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].id
}
