package sim

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Seeded-round flags. A simulator failure prints one reproducer line
// built from exactly these, e.g.:
//
//	go test ./internal/cluster/sim -run TestSimSeeded -sim.seed=7 -sim.replicas=3 -sim.requests=240 -sim.schedule="kill@60:1,resurrect@120:1"
var (
	simSeed = flag.Int64("sim.seed", 0,
		"run one simulation round with this seed (0 = the default seed sweep)")
	simRounds = flag.Int("sim.rounds", 0,
		"extra seeded rounds beyond the default sweep")
	simReplicas = flag.Int("sim.replicas", 0,
		"replica count for seeded rounds (0 = simulator default)")
	simRequests = flag.Int("sim.requests", 0,
		"request budget per round (0 = test default)")
	simSchedule = flag.String("sim.schedule", "",
		"explicit fault schedule, overriding the seed-derived one")
	simCorpus = flag.String("sim.corpus", "",
		"workload profiles for seeded rounds (0 = simulator default)")
)

// testRequests picks the per-round budget: enough for every corpus
// item to be requested several times so the caches matter, small
// enough for the suite to stay quick.
func testRequests() int {
	if *simRequests > 0 {
		return *simRequests
	}
	if testing.Short() {
		return 120
	}
	return 240
}

// runRound executes one simulation and turns violations into test
// failures carrying the reproducer line; with SIM_ARTIFACT_DIR set
// (the CI job sets it) the failing scenario is also archived as a
// .schedule script plus the full result JSON.
func runRound(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("sim harness: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Logf("seed %d schedule %s: %d ok, %.1f rps, p99 %.1fms, hit rate %.2f",
			res.Seed, res.Schedule, res.OK, res.AggregateRPS, res.P99MS, res.CacheHitRate)
		return res
	}
	if dir := os.Getenv("SIM_ARTIFACT_DIR"); dir != "" {
		sched, _ := ParseSchedule(res.Schedule)
		script := &Script{
			Seed: res.Seed, Replicas: res.Replicas,
			Requests: res.Requests, Corpus: res.Corpus, Schedule: sched,
		}
		name := fmt.Sprintf("seed%d.schedule", res.Seed)
		if path, err := WriteScript(dir, name, script); err == nil {
			t.Logf("failing scenario written to %s", path)
		} else {
			t.Logf("writing scenario failed: %v", err)
		}
		if data, err := json.MarshalIndent(res, "", "  "); err == nil {
			_ = os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed%d.json", res.Seed)), data, 0o644)
		}
	}
	for _, v := range res.Violations {
		t.Errorf("seed %d: %s", res.Seed, v)
	}
	t.Errorf("reproduce with:\n  %s", res.Reproducer)
	return res
}

// TestSimSeeded is the seeded fault-injection sweep: each seed derives
// a kill/drain/resurrect schedule and the full invariant set is
// asserted — zero oracle divergence, zero client-visible 5xx, bounded
// p99, and no key computing on more shards than the fault count
// allows.
func TestSimSeeded(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for i := 0; i < *simRounds; i++ {
		seeds = append(seeds, int64(3+i))
	}
	if *simSeed != 0 {
		seeds = []int64{*simSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := Config{
				Seed:     seed,
				Replicas: *simReplicas,
				Requests: testRequests(),
				Corpus:   *simCorpus,
			}
			if *simSchedule != "" {
				sched, err := ParseSchedule(*simSchedule)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Schedule = sched
			}
			runRound(t, cfg)
		})
	}
}

// TestSimFaultFree pins the healthy-cluster baseline: with no faults
// every request succeeds, all replicas serve traffic (the ring
// actually spreads the key space), and repeated requests hit the
// shard caches.
func TestSimFaultFree(t *testing.T) {
	res := runRound(t, Config{
		Seed:     11,
		Schedule: Schedule{}, // non-nil: explicitly fault-free
		Requests: testRequests(),
	})
	if res.OK != res.Requests {
		t.Errorf("fault-free round: %d of %d requests ok", res.OK, res.Requests)
	}
	if got := len(res.PerReplica); got < 2 {
		t.Errorf("fault-free round: only %d replicas served traffic: %v", got, res.PerReplica)
	}
	if res.CacheHitRate < 0.5 {
		t.Errorf("fault-free round: cache hit rate %.2f, want >= 0.5 once the corpus is resident",
			res.CacheHitRate)
	}
}

// TestScheduleReplay replays every committed regression script — these
// scenarios exposed real bugs (or pin subtle handoff behavior) and
// must keep passing bit for bit.
func TestScheduleReplay(t *testing.T) {
	scripts, err := LoadScripts("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no regression scripts in testdata/")
	}
	for name, script := range scripts {
		name, script := name, script
		t.Run(name, func(t *testing.T) {
			cfg := script.Config()
			if testing.Short() && cfg.Requests > 120 {
				cfg.Requests = 120
			}
			runRound(t, cfg)
		})
	}
}
