package sim

import (
	"strings"
	"testing"
)

func TestScheduleStringRoundtrip(t *testing.T) {
	cases := []string{
		"none",
		"kill@120:1",
		"kill@60:1,drain@110:0,resurrect@150:1",
		"drain@50:2,kill@90:2,resurrect@200:2",
	}
	for _, s := range cases {
		sched, err := ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s, err)
		}
		if got := sched.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
	if sched, err := ParseSchedule(""); err != nil || len(sched) != 0 {
		t.Errorf("empty string: got %v, %v", sched, err)
	}
}

func TestParseScheduleSorts(t *testing.T) {
	sched, err := ParseSchedule("resurrect@300:1,kill@100:1")
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].Action != Kill || sched[1].Action != Resurrect {
		t.Errorf("schedule not sorted by request count: %s", sched)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, s := range []string{
		"kill",             // no @
		"explode@10:0",     // unknown action
		"kill@ten:0",       // bad count
		"kill@10",          // no replica
		"kill@10:x",        // bad replica
		"kill@-5:0",        // negative count
		"kill@10:-1",       // negative replica
		"kill@10:0,,what",  // malformed tail
		"kill@10:0 junk:1", // not comma-separated
	} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q): want error", s)
		}
	}
}

func TestValidateLastReplicaRules(t *testing.T) {
	mustFail := func(s string, replicas int, wantSub string) {
		t.Helper()
		sched, err := ParseSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		err = sched.Validate(replicas)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Validate(%q, %d) = %v, want error containing %q", s, replicas, err, wantSub)
		}
	}
	mustFail("kill@10:0,kill@20:1,kill@30:2", 3, "last live")
	mustFail("drain@10:0,drain@20:1", 2, "last live")
	mustFail("kill@10:0,kill@20:0", 3, "already dead")
	mustFail("resurrect@10:0", 3, "already live")
	mustFail("drain@10:0,drain@20:0", 3, "not live")
	mustFail("kill@10:5", 3, "out of range")

	// Kill after drain on the same replica is legal — a draining
	// process can still crash.
	ok, err := ParseSchedule("drain@10:0,kill@20:0,resurrect@30:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(3); err != nil {
		t.Errorf("drain-then-kill-then-resurrect should validate: %v", err)
	}
}

func TestRandomScheduleDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := RandomSchedule(seed, 3, 4, 600)
		b := RandomSchedule(seed, 3, 4, 600)
		if a.String() != b.String() {
			t.Fatalf("seed %d: nondeterministic schedule: %s vs %s", seed, a, b)
		}
		if err := a.Validate(3); err != nil {
			t.Fatalf("seed %d: derived schedule invalid: %v (%s)", seed, err, a)
		}
		for _, e := range a {
			if e.AtRequest < 60 || e.AtRequest > 510 {
				t.Fatalf("seed %d: event %v outside [10%%, 85%%] of horizon", seed, e)
			}
		}
	}
	// Different seeds should not all collapse to one script.
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		distinct[RandomSchedule(seed, 3, 4, 600).String()] = true
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct schedules across 20 seeds", len(distinct))
	}
}

func TestScriptRoundtrip(t *testing.T) {
	sched, err := ParseSchedule("kill@60:1,resurrect@120:1")
	if err != nil {
		t.Fatal(err)
	}
	s := &Script{Seed: 7, Replicas: 3, Requests: 240, Corpus: "all", Schedule: sched}
	parsed, err := ParseScript(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Seed != 7 || parsed.Replicas != 3 || parsed.Requests != 240 ||
		parsed.Corpus != "all" || parsed.Schedule.String() != sched.String() {
		t.Errorf("roundtrip mismatch: %+v", parsed)
	}
}

func TestParseScriptErrors(t *testing.T) {
	for name, text := range map[string]string{
		"missing schedule": "seed: 1\nreplicas: 3\n",
		"bad key":          "schedule: none\nbogus: 1\n",
		"bad value":        "seed: seven\nschedule: none\n",
		"invalid schedule": "replicas: 2\nschedule: kill@10:0,kill@20:1\n",
		"no colon":         "schedule none\n",
	} {
		if _, err := ParseScript([]byte(text)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
