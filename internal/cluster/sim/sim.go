package sim

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"prefcolor/internal/bench"
	"prefcolor/internal/cluster"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/server"
	"prefcolor/internal/server/loadgen"
	"prefcolor/internal/target"
)

// Config sizes one simulation. The zero value of any field selects
// its default.
type Config struct {
	// Replicas is the shard count; 0 means 3.
	Replicas int

	// Seed drives both the fault schedule (when Schedule is nil) and
	// the load generator's corpus picking; 0 means 1.
	Seed int64

	// Schedule is the fault script; nil derives one from the seed
	// with RandomSchedule(Seed, Replicas, Events, Requests). An empty
	// non-nil schedule runs fault-free.
	Schedule Schedule

	// Events sizes the derived schedule; 0 means 4.
	Events int

	// Requests is the total request budget; 0 means 600.
	Requests int

	// Concurrency is the client goroutine count; 0 means 6.
	Concurrency int

	// TargetRPS, when positive, paces the clients toward an aggregate
	// rate; 0 runs closed-loop.
	TargetRPS float64

	// Corpus names the workload profiles ("all", "large", or a comma
	// list); empty means "all".
	Corpus string

	// Allocator, Machine, K configure the allocation spec; defaults
	// pref-full / ia64 / 16.
	Allocator string
	Machine   string
	K         int

	// CacheEntries is each replica's LRU capacity; 0 means 32 —
	// deliberately smaller than the default corpus, so the sharded
	// cluster's disjoint caches hold the working set while a single
	// replica thrashes. That gap is the cluster's whole reason to
	// exist, and the Baseline comparison measures it.
	CacheEntries int

	// Workers and QueueSize size each replica's pool; defaults 2/32.
	Workers   int
	QueueSize int

	// MaxP99MS is the bounded-tail assertion; 0 means 5000.
	MaxP99MS float64

	// Baseline also measures a single replica (same per-replica
	// sizing, no router) over the same request budget, recording the
	// aggregate speedup.
	Baseline bool

	// Timeout guards one phase of the simulation; 0 means 120s.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.Requests <= 0 {
		c.Requests = 600
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 6
	}
	if c.Corpus == "" {
		c.Corpus = "all"
	}
	if c.Allocator == "" {
		c.Allocator = "pref-full"
	}
	if c.Machine == "" {
		c.Machine = "ia64"
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 32
	}
	if c.MaxP99MS <= 0 {
		c.MaxP99MS = 5000
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// Result is one simulation's outcome. Violations is empty iff every
// invariant held; Reproducer replays the exact scenario.
type Result struct {
	Seed     int64  `json:"seed"`
	Replicas int    `json:"replicas"`
	Schedule string `json:"schedule"`
	Corpus   string `json:"corpus"`

	Requests         int            `json:"requests"`
	OK               int            `json:"ok"`
	Rejected429      int            `json:"rejected_429"`
	Timeouts         int            `json:"timeouts"`
	TransportErrors  int            `json:"transport_errors"`
	Server5xx        int            `json:"server_5xx"`
	DigestMismatches int            `json:"digest_mismatches"`
	OracleMismatches int            `json:"oracle_mismatches"`
	DoubleFlights    int            `json:"double_flights"`
	CacheHitRate     float64        `json:"cache_hit_rate"`
	AggregateRPS     float64        `json:"aggregate_rps"`
	P50MS            float64        `json:"latency_p50_ms"`
	P99MS            float64        `json:"latency_p99_ms"`
	PerReplica       map[string]int `json:"per_replica"`

	BaselineRPS float64 `json:"baseline_rps,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`

	Violations []string `json:"violations,omitempty"`
	Reproducer string   `json:"reproducer"`
}

// proc is one in-process replica: a server.Server behind a real TCP
// listener, so kills sever connections exactly as a crash would.
type proc struct {
	srv *server.Server
	hs  *http.Server
	url string
}

func startProc(id string, cfg Config) (*proc, error) {
	s := server.New(server.Config{
		Workers:      cfg.Workers,
		QueueSize:    cfg.QueueSize,
		CacheEntries: cfg.CacheEntries,
		ReplicaID:    id,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return &proc{srv: s, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

// kill severs the replica: listener and every open connection close
// immediately. The worker pool drains in the background — a real
// crash would lose that work; here it just finishes into a cache
// nobody will read, which is the harsher test for the router.
func (p *proc) kill() {
	_ = p.hs.Close()
	go p.srv.Close()
}

// replicaID names shard i.
func replicaID(i int) string { return fmt.Sprintf("r%d", i) }

// Run executes one simulation. The returned error covers harness
// failures (listen, corpus generation); invariant violations land in
// Result.Violations so the caller can print the reproducer.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	schedule := cfg.Schedule
	if schedule == nil {
		schedule = RandomSchedule(cfg.Seed, cfg.Replicas, cfg.Events, cfg.Requests)
	}
	if err := schedule.Validate(cfg.Replicas); err != nil {
		return nil, err
	}

	var machine *target.Machine
	switch cfg.Machine {
	case "ia64":
		machine = target.UsageModel(cfg.K)
	case "x86":
		machine = target.X86Like(cfg.K)
	case "s390":
		machine = target.S390Like(cfg.K)
	default:
		return nil, fmt.Errorf("sim: unknown machine %q", cfg.Machine)
	}
	corpus, err := loadgen.CorpusFromProfiles(cfg.Corpus, machine)
	if err != nil {
		return nil, err
	}

	// Single-process oracle: the digest every replica must reproduce,
	// computed with the same spec the requests will carry. PCSP-style
	// correctness under any routing: a replica may only ever return
	// exactly this.
	oracle, err := oracleDigests(corpus, machine, cfg.Allocator)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Seed:     cfg.Seed,
		Replicas: cfg.Replicas,
		Schedule: schedule.String(),
		Corpus:   cfg.Corpus,
		Reproducer: fmt.Sprintf(
			"go test ./internal/cluster/sim -run TestSimSeeded -sim.seed=%d -sim.replicas=%d -sim.requests=%d -sim.schedule=%q",
			cfg.Seed, cfg.Replicas, cfg.Requests, schedule.String()),
	}

	// Optional baseline: one replica, no router, same budget.
	if cfg.Baseline {
		rps, err := baselineRPS(ctx, cfg, corpus)
		if err != nil {
			return nil, err
		}
		res.BaselineRPS = rps
	}

	// The cluster: N replicas behind a router. Active health probing
	// is off — the router learns about faults passively from the
	// requests themselves, so no wall-clock prober races the
	// scripted schedule.
	procs := make([]*proc, cfg.Replicas)
	replicas := make([]cluster.ReplicaConfig, cfg.Replicas)
	for i := range procs {
		p, err := startProc(replicaID(i), cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				procs[j].kill()
			}
			return nil, err
		}
		procs[i] = p
		replicas[i] = cluster.ReplicaConfig{ID: replicaID(i), BaseURL: p.url}
	}
	router, err := cluster.New(cluster.Config{
		Replicas:       replicas,
		HealthInterval: -1,
		MaxAttempts:    cfg.Replicas,
		Retry429:       3,
	})
	if err != nil {
		return nil, err
	}
	front := &http.Server{Handler: router.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go front.Serve(ln)
	defer func() {
		_ = front.Close()
		router.Close()
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()

	// Shared simulation state, advanced by the loadgen observer.
	var (
		mu        sync.Mutex
		nextEvent int
		alive     = make([]bool, cfg.Replicas) // process exists
		missOn    = make(map[int]map[string]bool)
	)
	for i := range alive {
		alive[i] = true
	}
	apply := func(e Event) error {
		i := e.Replica
		switch e.Action {
		case Kill:
			if alive[i] {
				procs[i].kill()
				alive[i] = false
			}
		case Drain:
			if alive[i] {
				procs[i].srv.StartDrain()
			}
		case Resurrect:
			if alive[i] {
				// Drained, not killed: retire the old process first.
				procs[i].kill()
			}
			p, err := startProc(replicaID(i), cfg)
			if err != nil {
				return err
			}
			procs[i] = p
			alive[i] = true
			return router.UpdateReplica(replicaID(i), p.url)
		}
		return nil
	}
	var applyErr error
	observer := func(o loadgen.Obs) {
		mu.Lock()
		defer mu.Unlock()
		for nextEvent < len(schedule) && o.Seq >= schedule[nextEvent].AtRequest {
			e := schedule[nextEvent]
			nextEvent++
			if err := apply(e); err != nil && applyErr == nil {
				applyErr = fmt.Errorf("sim: applying %v: %w", e, err)
			}
		}
		if o.Status == http.StatusOK {
			if want := oracle[o.Item]; o.Digest != want {
				res.OracleMismatches++
			}
			if !o.CacheHit && o.Replica != "" {
				set := missOn[o.Item]
				if set == nil {
					set = make(map[string]bool)
					missOn[o.Item] = set
				}
				set[o.Replica] = true
			}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	rep, err := loadgen.Run(runCtx, loadgen.Options{
		BaseURL:     "http://" + ln.Addr().String(),
		Corpus:      corpus,
		Concurrency: cfg.Concurrency,
		Duration:    cfg.Timeout,
		MaxRequests: cfg.Requests,
		Allocator:   cfg.Allocator,
		Machine:     cfg.Machine,
		K:           cfg.K,
		Seed:        cfg.Seed,
		TargetRPS:   cfg.TargetRPS,
		Observer:    observer,
	})
	if err != nil {
		return nil, err
	}
	if applyErr != nil {
		return nil, applyErr
	}

	res.Requests = rep.Requests
	res.OK = rep.OK
	res.Rejected429 = rep.Rejected429
	res.Timeouts = rep.Timeouts
	res.TransportErrors = rep.Errors - rep.Server5xx
	res.Server5xx = rep.Server5xx
	res.DigestMismatches = rep.DigestMismatches
	res.CacheHitRate = rep.CacheHitRate
	res.AggregateRPS = rep.ThroughputRPS
	res.P50MS = rep.LatencyP50MS
	res.P99MS = rep.LatencyP99MS
	res.PerReplica = rep.PerReplica
	if res.BaselineRPS > 0 {
		res.Speedup = res.AggregateRPS / res.BaselineRPS
	}

	// No double-flight across shards: a key computes on exactly one
	// shard, except that each kill/drain may push its keys one shard
	// along the ring. Bound the distinct fresh-computing shards per
	// key by 1 + the number of displacing events.
	displacing := 0
	for _, e := range schedule {
		if e.Action == Kill || e.Action == Drain {
			displacing++
		}
	}
	for item, set := range missOn {
		if len(set) > 1+displacing {
			res.DoubleFlights++
			res.Violations = append(res.Violations, fmt.Sprintf(
				"double-flight: corpus item %d computed fresh on %d shards (bound %d)",
				item, len(set), 1+displacing))
		}
	}
	if res.OracleMismatches > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"%d responses diverged from the single-process oracle digest", res.OracleMismatches))
	}
	if res.DigestMismatches > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"%d cross-request digest mismatches", res.DigestMismatches))
	}
	if res.Server5xx > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"%d client-visible 5xx despite handoff", res.Server5xx))
	}
	if res.P99MS > cfg.MaxP99MS {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"p99 %.1fms exceeds bound %.1fms", res.P99MS, cfg.MaxP99MS))
	}
	if res.OK == 0 {
		res.Violations = append(res.Violations, "no successful requests")
	}
	sort.Strings(res.Violations)
	return res, nil
}

// oracleDigests computes the ground-truth digest per corpus item in
// this process, with the exact spec the simulated requests carry.
func oracleDigests(corpus []loadgen.Item, machine *target.Machine, allocName string) ([]string, error) {
	alloc, err := bench.NewAllocator(allocName)
	if err != nil {
		return nil, err
	}
	ws := regalloc.NewWorkspace()
	digests := make([]string, len(corpus))
	for i, item := range corpus {
		f, err := ir.Parse(item.Source)
		if err != nil {
			return nil, fmt.Errorf("sim: oracle parse %s: %w", item.Name, err)
		}
		out, stats, err := regalloc.Run(f, machine, alloc, regalloc.Options{Workspace: ws})
		if err != nil {
			return nil, fmt.Errorf("sim: oracle run %s: %w", item.Name, err)
		}
		digests[i] = bench.FuncDigest(f.Name, stats, out)
	}
	return digests, nil
}

// baselineRPS measures one replica, no router, same budget — the
// denominator of the cluster's aggregate speedup.
func baselineRPS(ctx context.Context, cfg Config, corpus []loadgen.Item) (float64, error) {
	p, err := startProc("baseline", cfg)
	if err != nil {
		return 0, err
	}
	defer p.kill()
	runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	rep, err := loadgen.Run(runCtx, loadgen.Options{
		BaseURL:     p.url,
		Corpus:      corpus,
		Concurrency: cfg.Concurrency,
		Duration:    cfg.Timeout,
		MaxRequests: cfg.Requests,
		Allocator:   cfg.Allocator,
		Machine:     cfg.Machine,
		K:           cfg.K,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	return rep.ThroughputRPS, nil
}
