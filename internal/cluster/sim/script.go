package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Script pairs a fault schedule with the sizing that makes it
// meaningful — the same schedule against a different replica count or
// request budget is a different scenario. Scripts serialize to the
// testdata/*.schedule regression format: `key: value` lines plus `#`
// comments, one scenario per file.
type Script struct {
	Seed     int64
	Replicas int
	Requests int
	Corpus   string
	Schedule Schedule
}

// Config expands the script into a runnable simulation config; zero
// fields fall back to the simulator defaults.
func (s *Script) Config() Config {
	return Config{
		Seed:     s.Seed,
		Replicas: s.Replicas,
		Requests: s.Requests,
		Corpus:   s.Corpus,
		Schedule: s.Schedule,
	}
}

// Encode renders the testdata file format.
func (s *Script) Encode() []byte {
	var b strings.Builder
	b.WriteString("# prefgcd cluster-sim fault script\n")
	fmt.Fprintf(&b, "seed: %d\n", s.Seed)
	fmt.Fprintf(&b, "replicas: %d\n", s.Replicas)
	fmt.Fprintf(&b, "requests: %d\n", s.Requests)
	fmt.Fprintf(&b, "corpus: %s\n", s.Corpus)
	fmt.Fprintf(&b, "schedule: %s\n", s.Schedule.String())
	return []byte(b.String())
}

// ParseScript reads the Encode format back.
func ParseScript(data []byte) (*Script, error) {
	s := &Script{}
	sawSchedule := false
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("sim: script line %d: want key: value, got %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "replicas":
			s.Replicas, err = strconv.Atoi(val)
		case "requests":
			s.Requests, err = strconv.Atoi(val)
		case "corpus":
			s.Corpus = val
		case "schedule":
			s.Schedule, err = ParseSchedule(val)
			sawSchedule = true
		default:
			return nil, fmt.Errorf("sim: script line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: script line %d: %v", ln+1, err)
		}
	}
	if !sawSchedule {
		return nil, fmt.Errorf("sim: script missing schedule line")
	}
	if s.Replicas > 0 {
		if err := s.Schedule.Validate(s.Replicas); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// LoadScripts reads every *.schedule file under dir, sorted by name.
func LoadScripts(dir string) (map[string]*Script, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.schedule"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]*Script, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		s, err := ParseScript(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out[filepath.Base(path)] = s
	}
	return out, nil
}

// WriteScript archives a failing scenario for artifact upload or for
// committing to testdata/ as a regression script.
func WriteScript(dir, name string, s *Script) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, s.Encode(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
