// Package sim is the deterministic cluster simulator: it drives a
// router plus N in-process prefgcd replicas to a request budget while
// killing, draining, and resurrecting replicas on a scripted
// schedule, and checks the invariants every scaling PR must preserve
// — zero digest divergence from a single-process oracle, zero
// client-visible 5xx, bounded tail latency, and no key computing on
// more shards than the fault count allows.
//
// Determinism is the metamorph-corpus kind: the fault schedule is a
// pure function of a seed (or an explicit schedule string), events
// fire at exact global request counts rather than wall-clock
// moments, and every assertion is interleaving-independent — so a
// failure prints one `-sim.seed`/`-sim.schedule` line that replays
// the same kill/drain/resurrect sequence, and shrunk schedules can
// be committed to testdata/ as regression scripts.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Action is one fault-injection verb.
type Action string

const (
	// Kill abruptly severs a replica: its listener and every open
	// connection close mid-flight, as a crash would.
	Kill Action = "kill"

	// Drain gracefully drains a replica: new admissions are refused
	// with 503 while requests already admitted run to completion —
	// the router must hand new work elsewhere with zero client 5xx.
	Drain Action = "drain"

	// Resurrect brings a killed or drained replica back as a fresh
	// process: empty cache, new listener, same identity. Recomputed
	// results must still match the oracle bit for bit.
	Resurrect Action = "resurrect"
)

// Event is one scripted fault: when the global completed-request
// counter reaches AtRequest, Action applies to Replica.
type Event struct {
	AtRequest int
	Action    Action
	Replica   int
}

// Schedule is a fault script, ordered by AtRequest.
type Schedule []Event

// String renders the schedule in the reproducer format:
// "kill@120:1,drain@240:0,resurrect@400:1" (action@request:replica).
func (s Schedule) String() string {
	if len(s) == 0 {
		return "none"
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = fmt.Sprintf("%s@%d:%d", e.Action, e.AtRequest, e.Replica)
	}
	return strings.Join(parts, ",")
}

// ParseSchedule reads the String format back. "none" and "" parse to
// an empty schedule.
func ParseSchedule(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var sched Schedule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		action, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("sim: event %q: want action@request:replica", part)
		}
		switch Action(action) {
		case Kill, Drain, Resurrect:
		default:
			return nil, fmt.Errorf("sim: event %q: unknown action %q", part, action)
		}
		atStr, repStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("sim: event %q: want action@request:replica", part)
		}
		at, err := strconv.Atoi(atStr)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("sim: event %q: bad request count %q", part, atStr)
		}
		rep, err := strconv.Atoi(repStr)
		if err != nil || rep < 0 {
			return nil, fmt.Errorf("sim: event %q: bad replica index %q", part, repStr)
		}
		sched = append(sched, Event{AtRequest: at, Action: Action(action), Replica: rep})
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].AtRequest < sched[j].AtRequest })
	return sched, nil
}

// Validate checks a schedule against a replica count and confirms the
// cluster is never left without a live replica: kills and drains may
// not take down the last standing shard, resurrects must target a
// replica that is actually down or draining, and kills must target a
// live one. (A drained replica counts as not-live for the "last
// standing" rule — it refuses new work.)
func (s Schedule) Validate(replicas int) error {
	live := make([]bool, replicas) // accepting new work
	up := make([]bool, replicas)   // process exists (live or draining)
	for i := range live {
		live[i], up[i] = true, true
	}
	liveCount := replicas
	for _, e := range s {
		if e.Replica < 0 || e.Replica >= replicas {
			return fmt.Errorf("sim: event %v: replica out of range [0,%d)", e, replicas)
		}
		switch e.Action {
		case Kill:
			if !up[e.Replica] {
				return fmt.Errorf("sim: event %v: replica already dead", e)
			}
			if live[e.Replica] {
				if liveCount == 1 {
					return fmt.Errorf("sim: event %v: would kill the last live replica", e)
				}
				liveCount--
			}
			live[e.Replica], up[e.Replica] = false, false
		case Drain:
			if !up[e.Replica] || !live[e.Replica] {
				return fmt.Errorf("sim: event %v: replica not live", e)
			}
			if liveCount == 1 {
				return fmt.Errorf("sim: event %v: would drain the last live replica", e)
			}
			liveCount--
			live[e.Replica] = false
		case Resurrect:
			if live[e.Replica] {
				return fmt.Errorf("sim: event %v: replica already live", e)
			}
			live[e.Replica], up[e.Replica] = true, true
			liveCount++
		default:
			return fmt.Errorf("sim: event %v: unknown action", e)
		}
	}
	return nil
}

// RandomSchedule derives a valid fault script from a seed: events
// spaced through [10%, 85%] of the request horizon, actions drawn
// among the feasible ones at each point (never killing or draining
// the last live replica), with killed and drained replicas eligible
// for resurrection. The same (seed, replicas, events, horizon)
// always yields the same schedule — the seed IS the scenario.
func RandomSchedule(seed int64, replicas, events, horizon int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	live := make([]bool, replicas)
	up := make([]bool, replicas)
	for i := range live {
		live[i], up[i] = true, true
	}
	liveCount := replicas

	var sched Schedule
	lo, hi := horizon/10, horizon*85/100
	if hi <= lo {
		hi = lo + 1
	}
	ats := make([]int, 0, events)
	for i := 0; i < events; i++ {
		ats = append(ats, lo+rng.Intn(hi-lo))
	}
	sort.Ints(ats)
	for _, at := range ats {
		// Enumerate feasible (action, replica) pairs, then pick one.
		type choice struct {
			a Action
			r int
		}
		var choices []choice
		for r := 0; r < replicas; r++ {
			if up[r] && live[r] && liveCount > 1 {
				choices = append(choices, choice{Kill, r}, choice{Drain, r})
			} else if up[r] && !live[r] && liveCount > 1 {
				choices = append(choices, choice{Kill, r}) // kill a draining replica
			}
			if !live[r] {
				choices = append(choices, choice{Resurrect, r})
			}
		}
		if len(choices) == 0 {
			continue
		}
		c := choices[rng.Intn(len(choices))]
		switch c.a {
		case Kill:
			if live[c.r] {
				liveCount--
			}
			live[c.r], up[c.r] = false, false
		case Drain:
			liveCount--
			live[c.r] = false
		case Resurrect:
			liveCount++
			live[c.r], up[c.r] = true, true
		}
		sched = append(sched, Event{AtRequest: at, Action: c.a, Replica: c.r})
	}
	return sched
}
