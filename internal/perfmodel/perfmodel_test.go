package perfmodel

import (
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

func TestEstimateStraightLine(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r0 = loadimm 1
  r1 = add r0, r0
  store r1, r0, 0
  ret
}
`)
	m := target.UsageModel(16)
	res := Estimate(f, m)
	// loadimm 1 + add 1 + store 1 + ret 1 = 4, no non-volatile regs.
	if res.Cycles != 4 {
		t.Errorf("Cycles = %v, want 4", res.Cycles)
	}
	if res.CalleeSaveRegs != 0 {
		t.Errorf("CalleeSaveRegs = %d, want 0", res.CalleeSaveRegs)
	}
}

func TestEstimateLoopWeighting(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r0 = loadimm 1
  jump b1
b1:
  r1 = add r0, r0
  branch r1, b1, b2
b2:
  ret
}
`)
	res := Estimate(f, target.UsageModel(16))
	// b0: 1+1 = 2; b1: (1+1)×10 = 20; b2: 1 → 23.
	if res.Cycles != 25-2 {
		t.Errorf("Cycles = %v, want 23", res.Cycles)
	}
}

func TestEstimateCalleeSaves(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r8 = loadimm 1
  r9 = add r8, r8
  ret r9
}
`)
	m := target.UsageModel(16) // r8..r15 non-volatile
	res := Estimate(f, m)
	if res.CalleeSaveRegs != 2 {
		t.Errorf("CalleeSaveRegs = %d, want 2", res.CalleeSaveRegs)
	}
	// 1 + 1 + 1 = 3 plus 2×2 callee save = 7.
	if res.Cycles != 7 {
		t.Errorf("Cycles = %v, want 7", res.Cycles)
	}
}

func TestEstimateCallerSavePairCostsThree(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  spillstore r0, 0
  call @g
  r0 = spillload 0
  ret
}
`)
	res := Estimate(f, target.UsageModel(16))
	// store 1 + call 1 + load 2 + ret 1 = 5; the save/restore pair
	// contributes exactly Save_Restore_Cost = 3.
	if res.Cycles != 5 {
		t.Errorf("Cycles = %v, want 5", res.Cycles)
	}
}

func TestEstimateFusedPair(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r2 = load r0, 0
  r3 = load r0, 4
  r4 = add r2, r3
  ret r4
}
`)
	m := target.UsageModel(16)
	res := Estimate(f, m)
	if res.FusedPairs != 1 || res.MissedPairs != 0 {
		t.Fatalf("fused/missed = %d/%d, want 1/0", res.FusedPairs, res.MissedPairs)
	}
	// First load 2, second free, add 1, ret 1 = 4.
	if res.Cycles != 4 {
		t.Errorf("Cycles = %v, want 4", res.Cycles)
	}
}

func TestEstimateMissedPair(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r2 = load r0, 0
  r4 = load r0, 4
  r5 = add r2, r4
  ret r5
}
`)
	m := target.UsageModel(16) // r2 and r4 share parity: pair illegal
	res := Estimate(f, m)
	if res.FusedPairs != 0 || res.MissedPairs != 1 {
		t.Fatalf("fused/missed = %d/%d, want 0/1", res.FusedPairs, res.MissedPairs)
	}
	// Both loads cost 2 each: 2+2+1+1 = 6.
	if res.Cycles != 6 {
		t.Errorf("Cycles = %v, want 6", res.Cycles)
	}
}

func TestEstimateNoPairsOnPairlessMachine(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  r2 = load r0, 0
  r3 = load r0, 4
  r4 = add r2, r3
  ret r4
}
`)
	m := target.UsageModel(16)
	m.PairRule = target.PairNone
	res := Estimate(f, m)
	if res.FusedPairs != 0 || res.MissedPairs != 0 {
		t.Errorf("pairless machine fused/missed = %d/%d", res.FusedPairs, res.MissedPairs)
	}
	if res.Cycles != 6 {
		t.Errorf("Cycles = %v, want 6", res.Cycles)
	}
}
