// Package perfmodel statically estimates the execution cost of
// allocated (physical-register) code. It is this reproduction's
// substitute for the paper's Itanium elapsed-time measurements: the
// estimator charges exactly the Appendix cost constants the paper's
// own allocator reasons with — loads 2, stores 1 (which makes each
// caller save/restore pair cost the paper's Save_Restore_Cost of 3),
// Callee_Save_Cost 2 per used non-volatile register, one cycle for
// ordinary instructions — weighted by the same 10-per-loop-level
// frequency heuristic, and it recognizes fused paired loads.
package perfmodel

import (
	"prefcolor/internal/cfg"
	"prefcolor/internal/costmodel"
	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

// CallOverhead is the fixed per-call cost. Every allocator pays it
// identically (the paper's Inst_Cost leaves calls out of the model);
// it is included so absolute estimates stay plausible.
const CallOverhead = 1

// Result is the estimate for one function.
type Result struct {
	// Cycles is the frequency-weighted cost estimate.
	Cycles float64

	// FusedPairs counts paired loads whose destination registers
	// satisfied the machine's pair rule (each saves one load).
	FusedPairs int

	// MissedPairs counts paired-load candidates whose registers
	// violate the rule.
	MissedPairs int

	// CalleeSaveRegs is the number of distinct non-volatile registers
	// the function uses (charged Callee_Save_Cost each).
	CalleeSaveRegs int

	// LimitViolations counts operands that landed outside their
	// limited-register-usage subset (each charged its fixup cost);
	// LimitsHonored counts constrained operands that complied.
	LimitViolations int
	LimitsHonored   int
}

// Estimate computes the cost of f on machine m. The function should
// be fully allocated (virtual registers are tolerated and charged
// like physical ones, but pair rules only apply to physical
// destinations).
func Estimate(f *ir.Func, m *target.Machine) Result {
	dom := cfg.NewDomTree(f)
	loops := cfg.FindLoops(f, dom)

	var res Result
	nonVol := map[int]bool{}
	note := func(r ir.Reg) {
		if r.IsPhys() && r.PhysNum() < m.NumRegs && !m.IsVolatile(r.PhysNum()) {
			nonVol[r.PhysNum()] = true
		}
	}

	for _, b := range f.Blocks {
		freq := loops.Freq(b.ID)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, d := range in.Defs {
				note(d)
			}
			for _, u := range in.Uses {
				note(u)
			}
			cost := instrCost(in)
			// Fused paired load: the second load of a legal pair is
			// free.
			if in.Op == ir.Load && i > 0 {
				prev := &b.Instrs[i-1]
				if isPairSecond(prev, in, m) {
					if pairLegal(prev, in, m) {
						res.FusedPairs++
						cost = 0
					} else {
						res.MissedPairs++
					}
				}
			}
			// Limited register usage: violations pay their fixup.
			for li := range m.Limits {
				l := &m.Limits[li]
				r, ok := l.Applies(in)
				if !ok || !r.IsPhys() {
					continue
				}
				if l.Allows(r.PhysNum()) {
					res.LimitsHonored++
				} else {
					res.LimitViolations++
					cost += l.FixupCost
				}
			}
			res.Cycles += cost * freq
		}
	}
	res.CalleeSaveRegs = len(nonVol)
	res.Cycles += costmodel.CalleeSaveCost * float64(res.CalleeSaveRegs)
	return res
}

// instrCost is the per-instruction cycle charge.
func instrCost(in *ir.Instr) float64 {
	switch in.Op {
	case ir.Nop, ir.Phi:
		return 0
	case ir.Load, ir.SpillLoad:
		return costmodel.LoadCost
	case ir.Store, ir.SpillStore:
		return costmodel.StoreCost
	case ir.Call:
		return CallOverhead
	default:
		return 1
	}
}

// isPairSecond reports whether (a, b) are adjacent loads off one base
// with offsets one word apart — a paired-load candidate.
func isPairSecond(a, b *ir.Instr, m *target.Machine) bool {
	if m.PairRule == target.PairNone {
		return false
	}
	if a.Op != ir.Load || b.Op != ir.Load {
		return false
	}
	if a.Uses[0] != b.Uses[0] || b.Imm-a.Imm != m.WordSize {
		return false
	}
	if a.Defs[0] == a.Uses[0] || a.Defs[0] == b.Defs[0] {
		return false
	}
	return true
}

// pairLegal reports whether the candidate's destination registers
// satisfy the machine's pair rule.
func pairLegal(a, b *ir.Instr, m *target.Machine) bool {
	d1, d2 := a.Defs[0], b.Defs[0]
	if !d1.IsPhys() || !d2.IsPhys() {
		return false
	}
	return m.PairOK(d1.PhysNum(), d2.PhysNum())
}
