package liveness

import (
	"testing"

	"prefcolor/internal/ir"
)

func TestStraightLine(t *testing.T) {
	f := ir.MustParse(`
func f(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = add v2, v0
  ret v3
}
`)
	li := Compute(f)
	in := li.LiveIn(0)
	if !in.Has(ir.Virt(0)) || !in.Has(ir.Virt(1)) {
		t.Errorf("live-in = %v, want v0 and v1", in)
	}
	if in.Has(ir.Virt(2)) || in.Has(ir.Virt(3)) {
		t.Errorf("live-in = %v has locally-defined regs", in)
	}
	if len(li.LiveOut(0)) != 0 {
		t.Errorf("live-out of exit block = %v, want empty", li.LiveOut(0))
	}
}

func TestLoopLiveness(t *testing.T) {
	// v1 (the accumulator) must be live around the loop; v9 unused.
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = add v1, v0
  v1 = move v2
  v3 = cmp v1, v0
  branch v3, b1, b2
b2:
  ret v1
}
`)
	li := Compute(f)
	if !li.LiveOut(1).Has(ir.Virt(1)) {
		t.Errorf("v1 not live out of loop body: %v", li.LiveOut(1))
	}
	if !li.LiveIn(1).Has(ir.Virt(1)) || !li.LiveIn(1).Has(ir.Virt(0)) {
		t.Errorf("live-in(b1) = %v, want v0, v1", li.LiveIn(1))
	}
	if !li.LiveOut(0).Has(ir.Virt(1)) {
		t.Errorf("live-out(b0) = %v, want v1", li.LiveOut(0))
	}
}

func TestPhiLiveness(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  v1 = loadimm 1
  jump b3
b2:
  v2 = loadimm 2
  jump b3
b3:
  v3 = phi v1, v2
  ret v3
}
`)
	li := Compute(f)
	// φ uses are live out of the matching predecessor only.
	if !li.LiveOut(1).Has(ir.Virt(1)) || li.LiveOut(1).Has(ir.Virt(2)) {
		t.Errorf("live-out(b1) = %v, want {v1}", li.LiveOut(1))
	}
	if !li.LiveOut(2).Has(ir.Virt(2)) || li.LiveOut(2).Has(ir.Virt(1)) {
		t.Errorf("live-out(b2) = %v, want {v2}", li.LiveOut(2))
	}
	// φ def is not live-in to its own block.
	if li.LiveIn(3).Has(ir.Virt(3)) {
		t.Errorf("live-in(b3) = %v contains φ def", li.LiveIn(3))
	}
	// And the φ arguments are not live-in to b3 either.
	if li.LiveIn(3).Has(ir.Virt(1)) || li.LiveIn(3).Has(ir.Virt(2)) {
		t.Errorf("live-in(b3) = %v contains φ uses", li.LiveIn(3))
	}
}

func TestPhysRegLiveness(t *testing.T) {
	f := ir.MustParse(`
func f() {
b0:
  v0 = move r0
  r0 = move v0
  call @g r0
  ret
}
`)
	li := Compute(f)
	if !li.LiveIn(0).Has(ir.Phys(0)) {
		t.Errorf("live-in = %v, want r0 (param register read at entry)", li.LiveIn(0))
	}
}

func TestForEachInstrReverse(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = add v0, v1
  ret v2
}
`)
	li := Compute(f)
	var liveAfterAdd, liveAfterLoad ir.RegSet
	li.ForEachInstrReverse(f.Blocks[0], func(idx int, in *ir.Instr, live ir.RegSet) {
		switch idx {
		case 1:
			liveAfterAdd = live.Clone()
		case 0:
			liveAfterLoad = live.Clone()
		}
	})
	if !liveAfterAdd.Has(ir.Virt(2)) || liveAfterAdd.Has(ir.Virt(1)) {
		t.Errorf("live after add = %v, want {v2}", liveAfterAdd)
	}
	if !liveAfterLoad.Has(ir.Virt(0)) || !liveAfterLoad.Has(ir.Virt(1)) {
		t.Errorf("live after loadimm = %v, want v0 and v1", liveAfterLoad)
	}
}

func TestLiveAcrossCalls(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 5
  v2 = call @g v0
  v3 = add v1, v2
  ret v3
}
`)
	li := Compute(f)
	across := li.LiveAcrossCalls(func(ir.BlockID) float64 { return 1 })
	if across[ir.Virt(1)] != 1 {
		t.Errorf("v1 across-call weight = %v, want 1", across[ir.Virt(1)])
	}
	if _, ok := across[ir.Virt(0)]; ok {
		t.Errorf("v0 dies at the call but counted as across: %v", across)
	}
	if _, ok := across[ir.Virt(2)]; ok {
		t.Errorf("v2 is defined by the call but counted as across: %v", across)
	}
}

func TestLiveAcrossCallsFrequencyWeighted(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = loadimm 5
  jump b1
b1:
  call @g
  branch v1, b1, b2
b2:
  ret v1
}
`)
	li := Compute(f)
	across := li.LiveAcrossCalls(func(b ir.BlockID) float64 {
		if b == 1 {
			return 10
		}
		return 1
	})
	if across[ir.Virt(1)] != 10 {
		t.Errorf("v1 across-call weight = %v, want 10", across[ir.Virt(1)])
	}
}

func TestRegSetOps(t *testing.T) {
	s := ir.NewRegSet(ir.Virt(1), ir.Virt(2))
	if !s.Has(ir.Virt(1)) || s.Has(ir.Virt(3)) {
		t.Error("Has wrong")
	}
	s.Add(ir.NoReg)
	if len(s) != 2 {
		t.Error("NoReg was added")
	}
	c := s.Clone()
	c.Remove(ir.Virt(1))
	if !s.Has(ir.Virt(1)) {
		t.Error("Clone aliases")
	}
	if s.Equal(c) {
		t.Error("Equal wrong after removal")
	}
	grew := c.AddAll(s)
	if !grew || !c.Equal(s) {
		t.Error("AddAll wrong")
	}
	if got := ir.NewRegSet(ir.Virt(2), ir.Phys(0), ir.Virt(1)).String(); got != "{r0, v1, v2}" {
		t.Errorf("String = %q", got)
	}
}
