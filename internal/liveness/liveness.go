// Package liveness computes live-variable information over ir.Func by
// backward dataflow iteration.
//
// φ-functions get the standard SSA treatment: a φ's uses are live out
// of the corresponding predecessor block (not live into the φ's own
// block), and its definition happens at the block head.
package liveness

import (
	"prefcolor/internal/ir"
)

// Info holds per-block live-in/live-out sets. An Info is not safe for
// concurrent use: ForEachInstrReverse reuses an internal set between
// calls.
type Info struct {
	f       *ir.Func
	liveIn  []ir.RegSet
	liveOut []ir.RegSet
	iter    ir.RegSet // reused by ForEachInstrReverse
}

// Scratch holds the buffers Compute needs, so repeated analyses (one
// per spill round, per function) reuse the register sets instead of
// reallocating them. The zero value is ready to use. A Scratch owns
// the *Info it returns: the Info is valid only until the next
// ComputeInto on the same Scratch, and a Scratch must not be shared
// between goroutines.
type Scratch struct {
	info    Info
	gen     []ir.RegSet
	kill    []ir.RegSet
	phiDefs []ir.RegSet
	out     ir.RegSet
	in      ir.RegSet
}

// Compute runs the backward dataflow to a fixed point and returns the
// per-block liveness information. Both virtual and physical registers
// are tracked; implicit call clobbers are not (they are interference
// facts, handled by the interference-graph builder).
func Compute(f *ir.Func) *Info { return ComputeInto(f, nil) }

// ComputeInto is Compute reusing ws's buffers. A nil ws behaves like
// Compute. The liveness equations have a unique least fixed point, so
// the result is identical no matter how the scratch sets are reused.
func ComputeInto(f *ir.Func, ws *Scratch) *Info {
	if ws == nil {
		ws = &Scratch{}
	}
	n := len(f.Blocks)
	info := &ws.info
	info.f = f
	info.liveIn = growSets(info.liveIn, n)
	info.liveOut = growSets(info.liveOut, n)

	// Precompute per-block gen (upward-exposed uses, φ excluded),
	// kill (all defs including φ), and the φ definitions at the block
	// head (consulted once per edge per iteration below).
	ws.gen = growSets(ws.gen, n)
	ws.kill = growSets(ws.kill, n)
	ws.phiDefs = growSets(ws.phiDefs, n)
	for _, b := range f.Blocks {
		g, k := ws.gen[b.ID], ws.kill[b.ID]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				for _, d := range in.Defs {
					k.Add(d)
				}
				continue
			}
			for _, u := range in.Uses {
				if !k.Has(u) {
					g.Add(u)
				}
			}
			for _, d := range in.Defs {
				k.Add(d)
			}
		}
		pd := ws.phiDefs[b.ID]
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.Phi {
				break
			}
			pd.Add(b.Instrs[i].Def())
		}
	}

	if ws.out == nil {
		ws.out = ir.NewRegSet()
		ws.in = ir.NewRegSet()
	}
	out, in := ws.out, ws.in
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			clear(out)
			for _, sid := range b.Succs {
				s := f.Blocks[sid]
				// live-in of successor minus its φ defs...
				pd := ws.phiDefs[sid]
				for r := range info.liveIn[sid] {
					if !pd.Has(r) {
						out.Add(r)
					}
				}
				// ...plus the φ arguments flowing along this edge.
				// A block can appear several times in Preds (e.g. a
				// branch with both targets equal); every matching
				// position contributes.
				for pi, p := range s.Preds {
					if p != b.ID {
						continue
					}
					for j := range s.Instrs {
						if s.Instrs[j].Op != ir.Phi {
							break
						}
						out.Add(s.Instrs[j].Uses[pi])
					}
				}
			}
			clear(in)
			for r := range ws.gen[b.ID] {
				in[r] = struct{}{}
			}
			kill := ws.kill[b.ID]
			for r := range out {
				if !kill.Has(r) {
					in.Add(r)
				}
			}
			if !out.Equal(info.liveOut[b.ID]) {
				copySet(info.liveOut[b.ID], out)
				changed = true
			}
			if !in.Equal(info.liveIn[b.ID]) {
				copySet(info.liveIn[b.ID], in)
				changed = true
			}
		}
	}
	return info
}

// growSets resizes sets to n entries, reusing (and clearing) existing
// maps and allocating only the missing ones.
func growSets(sets []ir.RegSet, n int) []ir.RegSet {
	if cap(sets) < n {
		grown := make([]ir.RegSet, n)
		copy(grown, sets)
		sets = grown
	}
	sets = sets[:n]
	for i := range sets {
		if sets[i] == nil {
			sets[i] = ir.NewRegSet()
		} else {
			clear(sets[i])
		}
	}
	return sets
}

func copySet(dst, src ir.RegSet) {
	clear(dst)
	for r := range src {
		dst[r] = struct{}{}
	}
}

// LiveIn returns registers live at entry to b. φ definitions are not
// live-in (they are defined at the block head); φ uses are live-out of
// the corresponding predecessors.
func (i *Info) LiveIn(b ir.BlockID) ir.RegSet { return i.liveIn[b] }

// LiveOut returns registers live at exit from b.
func (i *Info) LiveOut(b ir.BlockID) ir.RegSet { return i.liveOut[b] }

// ForEachInstrReverse walks block b backwards, maintaining the live
// set *after* each instruction and calling fn(i, instr, liveAfter)
// from the last instruction to the first. φ-functions are visited too
// (their live-after is the set after all φs executed in parallel).
// The callback must not retain live, which is reused between calls —
// including across calls to ForEachInstrReverse itself — and must not
// re-enter ForEachInstrReverse on the same Info.
func (i *Info) ForEachInstrReverse(b *ir.Block, fn func(idx int, in *ir.Instr, liveAfter ir.RegSet)) {
	live := i.iter
	if live == nil {
		live = ir.NewRegSet()
		i.iter = live
	}
	copySet(live, i.liveOut[b.ID])
	for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
		in := &b.Instrs[idx]
		fn(idx, in, live)
		for _, d := range in.Defs {
			live.Remove(d)
		}
		if in.Op != ir.Phi {
			for _, u := range in.Uses {
				live.Add(u)
			}
		}
	}
}

// LiveAcrossCalls returns, for every register, the number of call
// instructions it is live across, weighted by block frequency
// (freq[b] per call in block b). A register is live across a call when
// it is live immediately after the call and is not defined by it.
func (i *Info) LiveAcrossCalls(freq func(ir.BlockID) float64) map[ir.Reg]float64 {
	out := map[ir.Reg]float64{}
	for _, b := range i.f.Blocks {
		w := freq(b.ID)
		i.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			if in.Op != ir.Call {
				return
			}
			for r := range liveAfter {
				if in.Def() == r {
					continue
				}
				out[r] += w
			}
		})
	}
	return out
}
