// Package liveness computes live-variable information over ir.Func by
// backward dataflow iteration.
//
// φ-functions get the standard SSA treatment: a φ's uses are live out
// of the corresponding predecessor block (not live into the φ's own
// block), and its definition happens at the block head.
package liveness

import (
	"math/bits"

	"prefcolor/internal/ir"
	"prefcolor/internal/scratch"
)

// Info holds per-block live-in/live-out sets. An Info is not safe for
// concurrent use: ForEachInstrReverse reuses an internal set between
// calls.
type Info struct {
	f       *ir.Func
	liveIn  []ir.RegSet
	liveOut []ir.RegSet
	iter    ir.RegSet // reused by ForEachInstrReverse
}

// Scratch holds the buffers Compute needs, so repeated analyses (one
// per spill round, per function) reuse them instead of reallocating.
// The zero value is ready to use. A Scratch owns the *Info it returns:
// the Info is valid only until the next ComputeInto on the same
// Scratch, and a Scratch must not be shared between goroutines.
//
// The dataflow itself runs on flat per-block bitsets over the dense
// Reg encoding (physical registers below FirstVirtual, virtuals
// above), so the iteration is word operations; the RegSet maps the
// Info API exposes are materialized once, after the fixpoint.
type Scratch struct {
	info     Info
	genBits  []uint64 // nb rows of `words` words each
	killBits []uint64
	phiBits  []uint64
	inBits   []uint64
	outBits  []uint64
	tmp      []uint64 // one row: the out set being merged
}

// Compute runs the backward dataflow to a fixed point and returns the
// per-block liveness information. Both virtual and physical registers
// are tracked; implicit call clobbers are not (they are interference
// facts, handled by the interference-graph builder).
func Compute(f *ir.Func) *Info { return ComputeInto(f, nil) }

// ComputeInto is Compute reusing ws's buffers. A nil ws behaves like
// Compute. The liveness equations have a unique least fixed point, so
// the result is identical no matter how the scratch sets are reused.
func ComputeInto(f *ir.Func, ws *Scratch) *Info {
	if ws == nil {
		ws = &Scratch{}
	}
	n := len(f.Blocks)
	info := &ws.info
	info.f = f
	info.liveIn = growSets(info.liveIn, n)
	info.liveOut = growSets(info.liveOut, n)

	// One bit per encodable register: NoReg and the physical range
	// below FirstVirtual, then f's virtuals.
	words := (int(ir.FirstVirtual) + f.NumVirt + 63) / 64
	ws.genBits = scratch.Slice(ws.genBits, n*words)
	ws.killBits = scratch.Slice(ws.killBits, n*words)
	ws.phiBits = scratch.Slice(ws.phiBits, n*words)
	ws.inBits = scratch.Slice(ws.inBits, n*words)
	ws.outBits = scratch.Slice(ws.outBits, n*words)
	ws.tmp = scratch.Slice(ws.tmp, words)

	// Precompute per-block gen (upward-exposed uses, φ excluded),
	// kill (all defs including φ), and the φ definitions at the block
	// head (consulted once per edge per iteration below). NoReg never
	// enters a set, matching RegSet.Add.
	for _, b := range f.Blocks {
		g := ws.genBits[int(b.ID)*words : (int(b.ID)+1)*words]
		k := ws.killBits[int(b.ID)*words : (int(b.ID)+1)*words]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				for _, d := range in.Defs {
					setBit(k, d)
				}
				continue
			}
			for _, u := range in.Uses {
				if !hasBit(k, u) {
					setBit(g, u)
				}
			}
			for _, d := range in.Defs {
				setBit(k, d)
			}
		}
		pd := ws.phiBits[int(b.ID)*words : (int(b.ID)+1)*words]
		for i := range b.Instrs {
			if b.Instrs[i].Op != ir.Phi {
				break
			}
			setBit(pd, b.Instrs[i].Def())
		}
	}

	out := ws.tmp
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			clear(out)
			for _, sid := range b.Succs {
				s := f.Blocks[sid]
				// live-in of successor minus its φ defs...
				sIn := ws.inBits[int(sid)*words : (int(sid)+1)*words]
				pd := ws.phiBits[int(sid)*words : (int(sid)+1)*words]
				for w := range out {
					out[w] |= sIn[w] &^ pd[w]
				}
				// ...plus the φ arguments flowing along this edge.
				// A block can appear several times in Preds (e.g. a
				// branch with both targets equal); every matching
				// position contributes.
				for pi, p := range s.Preds {
					if p != b.ID {
						continue
					}
					for j := range s.Instrs {
						if s.Instrs[j].Op != ir.Phi {
							break
						}
						setBit(out, s.Instrs[j].Uses[pi])
					}
				}
			}
			// in = gen | (out &^ kill), written straight into the
			// block's row with change detection fused in.
			g := ws.genBits[int(b.ID)*words : (int(b.ID)+1)*words]
			k := ws.killBits[int(b.ID)*words : (int(b.ID)+1)*words]
			bin := ws.inBits[int(b.ID)*words : (int(b.ID)+1)*words]
			bout := ws.outBits[int(b.ID)*words : (int(b.ID)+1)*words]
			for w := range out {
				if bout[w] != out[w] {
					bout[w] = out[w]
					changed = true
				}
				if v := g[w] | out[w]&^k[w]; bin[w] != v {
					bin[w] = v
					changed = true
				}
			}
		}
	}

	// Materialize the RegSet views the Info API exposes, once.
	for _, b := range f.Blocks {
		fillSet(info.liveIn[b.ID], ws.inBits[int(b.ID)*words:(int(b.ID)+1)*words])
		fillSet(info.liveOut[b.ID], ws.outBits[int(b.ID)*words:(int(b.ID)+1)*words])
	}
	return info
}

// setBit marks r in the row; NoReg is ignored, like RegSet.Add.
func setBit(row []uint64, r ir.Reg) {
	if r != ir.NoReg {
		row[int(r)>>6] |= 1 << (uint(r) & 63)
	}
}

// hasBit reports r's membership in the row (NoReg is never a member).
func hasBit(row []uint64, r ir.Reg) bool {
	return row[int(r)>>6]&(1<<(uint(r)&63)) != 0
}

// fillSet replaces dst's contents with the row's members.
func fillSet(dst ir.RegSet, row []uint64) {
	clear(dst)
	for wi, w := range row {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst[ir.Reg(base+bits.TrailingZeros64(w))] = struct{}{}
		}
	}
}

// growSets resizes sets to n entries, reusing (and clearing) existing
// maps and allocating only the missing ones.
func growSets(sets []ir.RegSet, n int) []ir.RegSet {
	if cap(sets) < n {
		grown := make([]ir.RegSet, n)
		copy(grown, sets)
		sets = grown
	}
	sets = sets[:n]
	for i := range sets {
		if sets[i] == nil {
			sets[i] = ir.NewRegSet()
		} else {
			clear(sets[i])
		}
	}
	return sets
}

func copySet(dst, src ir.RegSet) {
	clear(dst)
	for r := range src {
		dst[r] = struct{}{}
	}
}

// LiveIn returns registers live at entry to b. φ definitions are not
// live-in (they are defined at the block head); φ uses are live-out of
// the corresponding predecessors.
func (i *Info) LiveIn(b ir.BlockID) ir.RegSet { return i.liveIn[b] }

// LiveOut returns registers live at exit from b.
func (i *Info) LiveOut(b ir.BlockID) ir.RegSet { return i.liveOut[b] }

// ForEachInstrReverse walks block b backwards, maintaining the live
// set *after* each instruction and calling fn(i, instr, liveAfter)
// from the last instruction to the first. φ-functions are visited too
// (their live-after is the set after all φs executed in parallel).
// The callback must not retain live, which is reused between calls —
// including across calls to ForEachInstrReverse itself — and must not
// re-enter ForEachInstrReverse on the same Info.
func (i *Info) ForEachInstrReverse(b *ir.Block, fn func(idx int, in *ir.Instr, liveAfter ir.RegSet)) {
	live := i.iter
	if live == nil {
		live = ir.NewRegSet()
		i.iter = live
	}
	copySet(live, i.liveOut[b.ID])
	for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
		in := &b.Instrs[idx]
		fn(idx, in, live)
		for _, d := range in.Defs {
			live.Remove(d)
		}
		if in.Op != ir.Phi {
			for _, u := range in.Uses {
				live.Add(u)
			}
		}
	}
}

// LiveAcrossCalls returns, for every register, the number of call
// instructions it is live across, weighted by block frequency
// (freq[b] per call in block b). A register is live across a call when
// it is live immediately after the call and is not defined by it.
func (i *Info) LiveAcrossCalls(freq func(ir.BlockID) float64) map[ir.Reg]float64 {
	out := map[ir.Reg]float64{}
	for _, b := range i.f.Blocks {
		w := freq(b.ID)
		i.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			if in.Op != ir.Call {
				return
			}
			for r := range liveAfter {
				if in.Def() == r {
					continue
				}
				out[r] += w
			}
		})
	}
	return out
}
