// Package liveness computes live-variable information over ir.Func by
// backward dataflow iteration.
//
// φ-functions get the standard SSA treatment: a φ's uses are live out
// of the corresponding predecessor block (not live into the φ's own
// block), and its definition happens at the block head.
package liveness

import (
	"prefcolor/internal/ir"
)

// Info holds per-block live-in/live-out sets.
type Info struct {
	f       *ir.Func
	liveIn  []ir.RegSet
	liveOut []ir.RegSet
}

// Compute runs the backward dataflow to a fixed point and returns the
// per-block liveness information. Both virtual and physical registers
// are tracked; implicit call clobbers are not (they are interference
// facts, handled by the interference-graph builder).
func Compute(f *ir.Func) *Info {
	n := len(f.Blocks)
	info := &Info{
		f:       f,
		liveIn:  make([]ir.RegSet, n),
		liveOut: make([]ir.RegSet, n),
	}
	for i := 0; i < n; i++ {
		info.liveIn[i] = ir.NewRegSet()
		info.liveOut[i] = ir.NewRegSet()
	}

	// Precompute per-block gen (upward-exposed uses, φ excluded),
	// kill (all defs including φ), and φ contributions per incoming
	// edge.
	gen := make([]ir.RegSet, n)
	kill := make([]ir.RegSet, n)
	for _, b := range f.Blocks {
		g, k := ir.NewRegSet(), ir.NewRegSet()
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Phi {
				for _, d := range in.Defs {
					k.Add(d)
				}
				continue
			}
			for _, u := range in.Uses {
				if !k.Has(u) {
					g.Add(u)
				}
			}
			for _, d := range in.Defs {
				k.Add(d)
			}
		}
		gen[b.ID] = g
		kill[b.ID] = k
	}

	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := ir.NewRegSet()
			for _, sid := range b.Succs {
				s := f.Blocks[sid]
				// live-in of successor minus its φ defs...
				phiDefs := ir.NewRegSet()
				for j := range s.Instrs {
					if s.Instrs[j].Op != ir.Phi {
						break
					}
					phiDefs.Add(s.Instrs[j].Def())
				}
				for r := range info.liveIn[sid] {
					if !phiDefs.Has(r) {
						out.Add(r)
					}
				}
				// ...plus the φ arguments flowing along this edge.
				// A block can appear several times in Preds (e.g. a
				// branch with both targets equal); every matching
				// position contributes.
				for pi, p := range s.Preds {
					if p != b.ID {
						continue
					}
					for j := range s.Instrs {
						if s.Instrs[j].Op != ir.Phi {
							break
						}
						out.Add(s.Instrs[j].Uses[pi])
					}
				}
			}
			in := gen[b.ID].Clone()
			for r := range out {
				if !kill[b.ID].Has(r) {
					in.Add(r)
				}
			}
			if !out.Equal(info.liveOut[b.ID]) {
				info.liveOut[b.ID] = out
				changed = true
			}
			if !in.Equal(info.liveIn[b.ID]) {
				info.liveIn[b.ID] = in
				changed = true
			}
		}
	}
	return info
}

// LiveIn returns registers live at entry to b. φ definitions are not
// live-in (they are defined at the block head); φ uses are live-out of
// the corresponding predecessors.
func (i *Info) LiveIn(b ir.BlockID) ir.RegSet { return i.liveIn[b] }

// LiveOut returns registers live at exit from b.
func (i *Info) LiveOut(b ir.BlockID) ir.RegSet { return i.liveOut[b] }

// ForEachInstrReverse walks block b backwards, maintaining the live
// set *after* each instruction and calling fn(i, instr, liveAfter)
// from the last instruction to the first. φ-functions are visited too
// (their live-after is the set after all φs executed in parallel).
// The callback must not retain live, which is reused between calls.
func (i *Info) ForEachInstrReverse(b *ir.Block, fn func(idx int, in *ir.Instr, liveAfter ir.RegSet)) {
	live := i.liveOut[b.ID].Clone()
	for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
		in := &b.Instrs[idx]
		fn(idx, in, live)
		for _, d := range in.Defs {
			live.Remove(d)
		}
		if in.Op != ir.Phi {
			for _, u := range in.Uses {
				live.Add(u)
			}
		}
	}
}

// LiveAcrossCalls returns, for every register, the number of call
// instructions it is live across, weighted by block frequency
// (freq[b] per call in block b). A register is live across a call when
// it is live immediately after the call and is not defined by it.
func (i *Info) LiveAcrossCalls(freq func(ir.BlockID) float64) map[ir.Reg]float64 {
	out := map[ir.Reg]float64{}
	for _, b := range i.f.Blocks {
		w := freq(b.ID)
		i.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			if in.Op != ir.Call {
				return
			}
			for r := range liveAfter {
				if in.Def() == r {
					continue
				}
				out[r] += w
			}
		})
	}
	return out
}
