package telemetry

import "runtime/metrics"

// memSampleNames are the runtime/metrics keys behind ReadMemCounters.
// Both are cheap monotonic counters — reading them does not force a GC
// or stop the world, so the driver can sample per allocation.
var memSampleNames = [2]string{
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
}

// ReadMemCounters returns the process-wide cumulative heap bytes
// allocated and completed GC cycles. Callers subtract two samples to
// charge an interval; the counters are process-global, so under
// concurrent workers the deltas over-approximate a single run's own
// allocation (they measure the daemon's steady state, not one
// goroutine's).
func ReadMemCounters() (heapBytes, gcCycles uint64) {
	var samples [2]metrics.Sample
	samples[0].Name = memSampleNames[0]
	samples[1].Name = memSampleNames[1]
	metrics.Read(samples[:])
	if samples[0].Value.Kind() == metrics.KindUint64 {
		heapBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		gcCycles = samples[1].Value.Uint64()
	}
	return heapBytes, gcCycles
}
