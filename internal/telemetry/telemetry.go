// Package telemetry is the allocation pipeline's instrumentation
// layer: per-phase wall/CPU timers, counters keyed by preference kind
// and outcome, a ready-set size histogram for the CPG traversal, and
// an optional structured event trace (one JSON line per selection or
// spill decision).
//
// The layer is designed to cost nothing when off: a nil *Collector is
// the disabled state, every method is nil-receiver safe, and the hot
// paths guard their argument construction behind Enabled/Tracing so a
// disabled pipeline performs no allocation and no time syscalls.
// Telemetry only observes — it never influences an allocation
// decision, so enabling it must leave assignments and spill sets
// bit-identical (the determinism test pins this).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Phase enumerates the pipeline stages the timers decompose an
// allocation into.
type Phase uint8

const (
	// PhaseRenumber is live-range construction (ig.Renumber).
	PhaseRenumber Phase = iota
	// PhaseBuildIG covers the per-round analyses and interference-
	// graph construction (regalloc.NewContext).
	PhaseBuildIG
	// PhaseRPG is Register Preference Graph construction.
	PhaseRPG
	// PhaseSimplify is the optimistic simplification pass.
	PhaseSimplify
	// PhaseCPG is Coloring Precedence Graph construction.
	PhaseCPG
	// PhaseSelect is the CPG-directed register selection.
	PhaseSelect
	// PhaseRecolor is the post-selection recoloring fixup.
	PhaseRecolor
	// PhaseSpill is spill-code insertion between rounds.
	PhaseSpill

	// NumPhases bounds the Phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"renumber", "build-ig", "rpg", "simplify", "cpg", "select",
	"recolor", "spill",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase%d", p)
}

// PrefClass is telemetry's preference-kind axis. It splits the
// paper's Prefers edges into class preferences (volatile versus
// non-volatile residence) and limited-register-usage preferences
// (explicit register subsets), which the counters report separately.
type PrefClass uint8

const (
	// PrefCoalesce counts coalescing preferences from copies.
	PrefCoalesce PrefClass = iota
	// PrefSeqPlus counts first-destination paired-load preferences.
	PrefSeqPlus
	// PrefSeqMinus counts second-destination paired-load preferences.
	PrefSeqMinus
	// PrefRegClass counts volatile/non-volatile class preferences.
	PrefRegClass
	// PrefLimit counts limited-register-usage preferences.
	PrefLimit

	// NumPrefClasses bounds the PrefClass enum.
	NumPrefClasses
)

var prefClassNames = [NumPrefClasses]string{
	"coalesce", "sequential+", "sequential-", "class", "limit",
}

func (c PrefClass) String() string {
	if int(c) < len(prefClassNames) {
		return prefClassNames[c]
	}
	return fmt.Sprintf("pref%d", c)
}

// Outcome is what became of one preference at the decision that
// settled (or postponed) it.
type Outcome uint8

const (
	// Honored: the chosen register satisfies the preference.
	Honored Outcome = iota
	// Deferred: the partner was not yet allocated when the holder was
	// colored; the preference's fate belongs to a later decision.
	Deferred
	// Broken: the preference can no longer be honored (partner
	// spilled, holder spilled, or the pick missed it).
	Broken

	// NumOutcomes bounds the Outcome enum.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"honored", "deferred", "broken"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome%d", o)
}

// NumReadyBuckets is the ready-set histogram's bucket count: sizes
// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, and 65+.
const NumReadyBuckets = 8

// readyBucket maps a ready-set size to its histogram bucket.
func readyBucket(n int) int {
	b := 0
	for n > 1 && b < NumReadyBuckets-1 {
		n = (n + 1) / 2
		b++
	}
	return b
}

// ReadyBucketLabel names histogram bucket b ("1", "2", "3-4", …).
func ReadyBucketLabel(b int) string {
	if b == 0 {
		return "1"
	}
	if b == 1 {
		return "2"
	}
	lo, hi := 1<<b>>1+1, 1<<b
	if b == NumReadyBuckets-1 {
		return fmt.Sprintf("%d+", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// PhaseTimes is one phase's accumulated timing. CPU is thread CPU
// time sampled at the phase boundaries; Go may migrate a goroutine
// between OS threads mid-phase, so treat it as an estimate (wall time
// is exact).
type PhaseTimes struct {
	Wall time.Duration `json:"wall_ns"`
	CPU  time.Duration `json:"cpu_ns"`
}

// Snapshot is one allocation's (or one merged batch's) telemetry.
// Every field is a plain sum, so Merge is commutative and
// order-independent — per-worker snapshots combine into the same
// batch report whatever the scheduling.
type Snapshot struct {
	// Funcs and Rounds count completed allocations and spill rounds.
	Funcs  int
	Rounds int

	// Selections counts processed CPG nodes; SelectSpills the nodes
	// spilled for want of a candidate register; ActiveSpills the §5.4
	// would-rather-be-in-memory spills; Recolors the recoloring plans
	// the fixup pass applied.
	Selections   int64
	SelectSpills int64
	ActiveSpills int64
	Recolors     int64

	// TraceEvents counts emitted trace lines (zero unless tracing).
	TraceEvents int64

	// Phases accumulates per-phase timing, indexed by Phase.
	Phases [NumPhases]PhaseTimes

	// Prefs counts preference dispositions, indexed by PrefClass and
	// Outcome.
	Prefs [NumPrefClasses][NumOutcomes]int64

	// ReadyHist is the CPG ready-set size histogram, one sample per
	// selection step, indexed by readyBucket.
	ReadyHist [NumReadyBuckets]int64

	// BytesAllocated and GCCycles are the heap bytes allocated and
	// garbage-collection cycles observed over the run (runtime/metrics
	// deltas sampled by the driver at Run entry and exit). Like the
	// timers they vary run to run, so they appear in JSON and /metrics
	// but not in the deterministic counter lines of Report.
	BytesAllocated uint64
	GCCycles       uint64
}

// Merge adds o into s.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.Funcs += o.Funcs
	s.Rounds += o.Rounds
	s.Selections += o.Selections
	s.SelectSpills += o.SelectSpills
	s.ActiveSpills += o.ActiveSpills
	s.Recolors += o.Recolors
	s.TraceEvents += o.TraceEvents
	for p := range s.Phases {
		s.Phases[p].Wall += o.Phases[p].Wall
		s.Phases[p].CPU += o.Phases[p].CPU
	}
	for c := range s.Prefs {
		for out := range s.Prefs[c] {
			s.Prefs[c][out] += o.Prefs[c][out]
		}
	}
	for b := range s.ReadyHist {
		s.ReadyHist[b] += o.ReadyHist[b]
	}
	s.BytesAllocated += o.BytesAllocated
	s.GCCycles += o.GCCycles
}

// Clone returns a copy of s.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	return &c
}

// PrefTotal sums a preference class across outcomes.
func (s *Snapshot) PrefTotal(c PrefClass) int64 {
	var t int64
	for _, v := range s.Prefs[c] {
		t += v
	}
	return t
}

// MarshalJSON renders the snapshot with named phases, preference
// kinds, and histogram buckets, so BENCH_*.json files stay readable
// without the enum definitions at hand.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	phases := map[string]PhaseTimes{}
	for p := Phase(0); p < NumPhases; p++ {
		if s.Phases[p].Wall != 0 || s.Phases[p].CPU != 0 {
			phases[p.String()] = s.Phases[p]
		}
	}
	prefs := map[string]map[string]int64{}
	for c := PrefClass(0); c < NumPrefClasses; c++ {
		if s.PrefTotal(c) == 0 {
			continue
		}
		m := map[string]int64{}
		for o := Outcome(0); o < NumOutcomes; o++ {
			m[o.String()] = s.Prefs[c][o]
		}
		prefs[c.String()] = m
	}
	hist := map[string]int64{}
	for b := 0; b < NumReadyBuckets; b++ {
		if s.ReadyHist[b] != 0 {
			hist[ReadyBucketLabel(b)] = s.ReadyHist[b]
		}
	}
	return json.Marshal(struct {
		Funcs          int                         `json:"funcs"`
		Rounds         int                         `json:"rounds"`
		Selections     int64                       `json:"selections"`
		SelectSpills   int64                       `json:"select_spills"`
		ActiveSpills   int64                       `json:"active_spills"`
		Recolors       int64                       `json:"recolors"`
		TraceEvents    int64                       `json:"trace_events,omitempty"`
		BytesAllocated uint64                      `json:"bytes_allocated,omitempty"`
		GCCycles       uint64                      `json:"gc_cycles,omitempty"`
		Phases         map[string]PhaseTimes       `json:"phases"`
		Prefs          map[string]map[string]int64 `json:"prefs"`
		ReadyHist      map[string]int64            `json:"ready_hist"`
	}{
		Funcs: s.Funcs, Rounds: s.Rounds,
		Selections: s.Selections, SelectSpills: s.SelectSpills,
		ActiveSpills: s.ActiveSpills, Recolors: s.Recolors,
		TraceEvents:    s.TraceEvents,
		BytesAllocated: s.BytesAllocated, GCCycles: s.GCCycles,
		Phases: phases, Prefs: prefs, ReadyHist: hist,
	})
}

// Report renders the snapshot as the aligned text block the CLI and
// bench harness print. Counter lines are deterministic; only the
// duration columns vary run to run.
func (s *Snapshot) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d function(s), %d round(s), %d selections (%d spilled, %d active-spills), %d recolors\n",
		s.Funcs, s.Rounds, s.Selections, s.SelectSpills, s.ActiveSpills, s.Recolors)
	b.WriteString("phase        wall          cpu\n")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(&b, "%-12s %-13v %v\n", p, s.Phases[p].Wall, s.Phases[p].CPU)
	}
	b.WriteString("preference   honored  deferred  broken\n")
	for c := PrefClass(0); c < NumPrefClasses; c++ {
		fmt.Fprintf(&b, "%-12s %-8d %-9d %d\n", c,
			s.Prefs[c][Honored], s.Prefs[c][Deferred], s.Prefs[c][Broken])
	}
	b.WriteString("ready-set size:")
	any := false
	for i := 0; i < NumReadyBuckets; i++ {
		if s.ReadyHist[i] != 0 {
			fmt.Fprintf(&b, " %s:%d", ReadyBucketLabel(i), s.ReadyHist[i])
			any = true
		}
	}
	if !any {
		b.WriteString(" (empty)")
	}
	b.WriteByte('\n')
	return b.String()
}

// Span is an open phase timing started by Collector.Begin.
type Span struct {
	wall time.Time
	cpu  time.Duration
	live bool
}

// Event is one trace line: a selection or spill decision with the
// candidate screen results and the strength differential that ranked
// the node.
type Event struct {
	Func   string  `json:"func"`
	Round  int     `json:"round"`
	Action string  `json:"action"` // "select" | "spill" | "active-spill"
	Node   int     `json:"node"`
	Reg    string  `json:"reg"`
	Pri    float64 `json:"strength_differential"`
	// Avail is the candidate set before preference screening, Cands
	// what survived it; Chosen is the granted register (-1 on spill).
	Avail   []int    `json:"avail,omitempty"`
	Cands   []int    `json:"cands,omitempty"`
	Chosen  int      `json:"chosen"`
	Honored []string `json:"honored,omitempty"`
}

// Collector accumulates one allocation run's telemetry. The zero
// value is unusable — construct with New. A nil collector is the
// disabled instrument: every method returns immediately.
//
// A Collector is not safe for concurrent use; the batch driver gives
// every worker its own and merges snapshots after the pool drains.
type Collector struct {
	snap  Snapshot
	fn    string
	round int
	trace io.Writer
	buf   []byte
}

// New returns a collector; trace may be nil to collect counters and
// timers without an event stream. Trace lines are emitted with a
// single Write each, so a mutex-wrapped writer makes the stream safe
// under the batch driver's concurrency.
func New(trace io.Writer) *Collector {
	return &Collector{trace: trace}
}

// Enabled reports whether the collector is live; use it to guard
// argument construction on hot paths.
func (c *Collector) Enabled() bool { return c != nil }

// Tracing reports whether an event stream is attached.
func (c *Collector) Tracing() bool { return c != nil && c.trace != nil }

// BeginFunc marks the start of one function's allocation.
func (c *Collector) BeginFunc(name string) {
	if c == nil {
		return
	}
	c.fn = name
	c.snap.Funcs++
}

// BeginRound marks the start of spill round r (1-based).
func (c *Collector) BeginRound(r int) {
	if c == nil {
		return
	}
	c.round = r
	c.snap.Rounds++
}

// Begin opens a phase timing span; pair with End.
func (c *Collector) Begin() Span {
	if c == nil {
		return Span{}
	}
	return Span{wall: time.Now(), cpu: threadCPUTime(), live: true}
}

// End closes span sp, charging the elapsed wall and CPU time to
// phase p.
func (c *Collector) End(p Phase, sp Span) {
	if c == nil || !sp.live {
		return
	}
	c.snap.Phases[p].Wall += time.Since(sp.wall)
	if cpu := threadCPUTime(); cpu > 0 && sp.cpu > 0 && cpu >= sp.cpu {
		c.snap.Phases[p].CPU += cpu - sp.cpu
	}
}

// CountPref tallies one preference disposition.
func (c *Collector) CountPref(class PrefClass, o Outcome) {
	if c == nil {
		return
	}
	c.snap.Prefs[class][o]++
}

// ObserveReady records one CPG ready-set size sample.
func (c *Collector) ObserveReady(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.snap.ReadyHist[readyBucket(n)]++
}

// NoteSelection records a processed node: colored, spilled for want
// of a register, or actively spilled.
func (c *Collector) NoteSelection(spilled, active bool) {
	if c == nil {
		return
	}
	c.snap.Selections++
	if active {
		c.snap.ActiveSpills++
	} else if spilled {
		c.snap.SelectSpills++
	}
}

// AddMem charges bytes of heap allocation and gcs garbage-collection
// cycles to the run (deltas of ReadMemCounters at the driver's entry
// and exit).
func (c *Collector) AddMem(bytes, gcs uint64) {
	if c == nil {
		return
	}
	c.snap.BytesAllocated += bytes
	c.snap.GCCycles += gcs
}

// NoteRecolor records one applied recoloring plan.
func (c *Collector) NoteRecolor() {
	if c == nil {
		return
	}
	c.snap.Recolors++
}

// TraceEvent emits one JSON trace line. The collector fills Func and
// Round; a marshalling failure is swallowed (telemetry must never
// fail an allocation).
func (c *Collector) TraceEvent(e *Event) {
	if c == nil || c.trace == nil {
		return
	}
	e.Func, e.Round = c.fn, c.round
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	c.buf = append(c.buf[:0], line...)
	c.buf = append(c.buf, '\n')
	if _, err := c.trace.Write(c.buf); err == nil {
		c.snap.TraceEvents++
	}
}

// Snapshot returns a copy of the accumulated telemetry; nil when the
// collector is disabled.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	return c.snap.Clone()
}

// LockedWriter wraps w so each Write is serialized — the adapter the
// batch driver uses to share one trace stream across workers.
type LockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLockedWriter returns a mutex-serialized writer over w.
func NewLockedWriter(w io.Writer) *LockedWriter { return &LockedWriter{w: w} }

// Write implements io.Writer under the lock.
func (l *LockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
