//go:build linux

package telemetry

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is Linux's CLOCK_THREAD_CPUTIME_ID.
const clockThreadCPUTimeID = 3

// threadCPUTime returns the calling OS thread's consumed CPU time.
// Goroutines may migrate between threads, so per-phase CPU deltas are
// estimates; zero means the clock is unavailable.
func threadCPUTime() time.Duration {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec)
}
