//go:build !linux

package telemetry

import "time"

// threadCPUTime is unavailable off Linux; phase CPU columns read zero
// and only wall time is reported.
func threadCPUTime() time.Duration { return 0 }
