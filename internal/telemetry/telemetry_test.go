package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilCollectorIsInert pins the disabled-state contract: every
// method on a nil collector is a no-op, so the pipeline can thread a
// nil pointer unconditionally.
func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Enabled() || c.Tracing() {
		t.Fatal("nil collector claims to be enabled")
	}
	c.BeginFunc("f")
	c.BeginRound(1)
	sp := c.Begin()
	c.End(PhaseSelect, sp)
	c.CountPref(PrefCoalesce, Honored)
	c.ObserveReady(3)
	c.NoteSelection(true, false)
	c.NoteRecolor()
	c.TraceEvent(&Event{})
	if snap := c.Snapshot(); snap != nil {
		t.Fatalf("nil collector produced a snapshot: %+v", snap)
	}
}

// TestDisabledPathAllocatesNothing pins the zero-allocation claim for
// the guarded hot-path calls.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(100, func() {
		sp := c.Begin()
		c.CountPref(PrefSeqPlus, Deferred)
		c.ObserveReady(7)
		c.NoteSelection(false, false)
		c.End(PhaseSelect, sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f times per op", allocs)
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	c := New(nil)
	c.BeginFunc("f")
	c.BeginRound(1)
	c.CountPref(PrefCoalesce, Honored)
	c.CountPref(PrefCoalesce, Honored)
	c.CountPref(PrefLimit, Broken)
	c.ObserveReady(1)
	c.ObserveReady(5)
	c.NoteSelection(false, false)
	c.NoteSelection(true, false)
	c.NoteSelection(true, true)
	c.NoteRecolor()

	s := c.Snapshot()
	if s.Funcs != 1 || s.Rounds != 1 {
		t.Errorf("funcs/rounds = %d/%d, want 1/1", s.Funcs, s.Rounds)
	}
	if s.Prefs[PrefCoalesce][Honored] != 2 || s.Prefs[PrefLimit][Broken] != 1 {
		t.Errorf("pref counters wrong: %+v", s.Prefs)
	}
	if s.Selections != 3 || s.SelectSpills != 1 || s.ActiveSpills != 1 {
		t.Errorf("selections=%d spills=%d active=%d", s.Selections, s.SelectSpills, s.ActiveSpills)
	}
	if s.Recolors != 1 {
		t.Errorf("recolors = %d", s.Recolors)
	}
	if s.ReadyHist[readyBucket(1)] != 1 || s.ReadyHist[readyBucket(5)] != 1 {
		t.Errorf("ready histogram wrong: %v", s.ReadyHist)
	}
	// Snapshot is a copy: further counting must not leak into it.
	c.NoteRecolor()
	if s.Recolors != 1 {
		t.Error("snapshot aliases the live collector state")
	}
}

func TestReadyBuckets(t *testing.T) {
	cases := []struct {
		n, bucket int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {17, 5}, {32, 5}, {33, 6}, {64, 6}, {65, 7}, {1000, 7},
	}
	for _, tc := range cases {
		if got := readyBucket(tc.n); got != tc.bucket {
			t.Errorf("readyBucket(%d) = %d, want %d", tc.n, got, tc.bucket)
		}
	}
	labels := []string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}
	for b, want := range labels {
		if got := ReadyBucketLabel(b); got != want {
			t.Errorf("ReadyBucketLabel(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestMergeIsCommutativeSum(t *testing.T) {
	a := &Snapshot{Funcs: 1, Rounds: 2, Selections: 10}
	a.Prefs[PrefCoalesce][Honored] = 3
	a.Phases[PhaseSelect].Wall = 5 * time.Millisecond
	a.ReadyHist[0] = 4
	b := &Snapshot{Funcs: 2, Rounds: 1, Selections: 7}
	b.Prefs[PrefCoalesce][Honored] = 2
	b.Phases[PhaseSelect].Wall = 3 * time.Millisecond
	b.ReadyHist[0] = 1

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if *ab != *ba {
		t.Fatalf("merge not commutative:\n%+v\n%+v", ab, ba)
	}
	if ab.Funcs != 3 || ab.Selections != 17 || ab.Prefs[PrefCoalesce][Honored] != 5 {
		t.Errorf("merge sums wrong: %+v", ab)
	}
	if ab.Phases[PhaseSelect].Wall != 8*time.Millisecond || ab.ReadyHist[0] != 5 {
		t.Errorf("merge sums wrong: %+v", ab)
	}
	ab.Merge(nil) // nil-safe
}

func TestPhaseTimers(t *testing.T) {
	c := New(nil)
	sp := c.Begin()
	busy := 0
	deadline := time.Now().Add(2 * time.Millisecond)
	for time.Now().Before(deadline) {
		busy++
	}
	c.End(PhaseRPG, sp)
	s := c.Snapshot()
	if s.Phases[PhaseRPG].Wall < 2*time.Millisecond {
		t.Errorf("wall time %v shorter than the busy loop", s.Phases[PhaseRPG].Wall)
	}
	if s.Phases[PhaseSelect].Wall != 0 {
		t.Errorf("untouched phase has wall time %v", s.Phases[PhaseSelect].Wall)
	}
	_ = busy
}

func TestTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	c := New(&buf)
	if !c.Tracing() {
		t.Fatal("collector with writer reports Tracing() == false")
	}
	c.BeginFunc("f")
	c.BeginRound(2)
	c.TraceEvent(&Event{Action: "select", Node: 5, Reg: "v3", Pri: 1.5,
		Avail: []int{0, 1}, Cands: []int{1}, Chosen: 1, Honored: []string{"coalesce"}})
	c.TraceEvent(&Event{Action: "spill", Node: 6, Reg: "v4", Chosen: -1})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("trace line is not JSON: %v", err)
	}
	if e.Func != "f" || e.Round != 2 || e.Action != "select" || e.Chosen != 1 {
		t.Errorf("decoded event wrong: %+v", e)
	}
	if c.Snapshot().TraceEvents != 2 {
		t.Errorf("TraceEvents = %d, want 2", c.Snapshot().TraceEvents)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	s := &Snapshot{Funcs: 1, Rounds: 2, Selections: 3}
	s.Prefs[PrefCoalesce][Honored] = 4
	s.Phases[PhaseSelect].Wall = time.Millisecond
	s.ReadyHist[2] = 9

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	phases, ok := decoded["phases"].(map[string]any)
	if !ok || phases["select"] == nil {
		t.Errorf("phases not keyed by name: %s", raw)
	}
	prefs, ok := decoded["prefs"].(map[string]any)
	if !ok || prefs["coalesce"] == nil {
		t.Errorf("prefs not keyed by kind: %s", raw)
	}
	hist, ok := decoded["ready_hist"].(map[string]any)
	if !ok || hist["3-4"] == nil {
		t.Errorf("ready_hist not keyed by bucket label: %s", raw)
	}
}

func TestReportShape(t *testing.T) {
	s := &Snapshot{Funcs: 2, Rounds: 3, Selections: 40, SelectSpills: 1}
	s.Prefs[PrefCoalesce][Honored] = 7
	s.ReadyHist[0] = 12
	r := s.Report()
	for _, want := range []string{
		"telemetry: 2 function(s), 3 round(s)",
		"renumber", "select", "recolor",
		"coalesce", "sequential+", "limit",
		"ready-set size: 1:12",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestLockedWriter(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLockedWriter(&buf)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				if _, err := lw.Write([]byte("0123456789\n")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 200 {
		t.Fatalf("got %d lines, want 200", len(lines))
	}
	for _, l := range lines {
		if l != "0123456789" {
			t.Fatalf("interleaved write: %q", l)
		}
	}
}
