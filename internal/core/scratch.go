package core

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

// coreScratch is the preference allocator's per-workspace scratch: the
// RPG, CPG, selector, and simplification buffers reused across spill
// rounds. It lives on regalloc.Workspace's opaque allocator slot
// (core imports regalloc, so the workspace cannot name this type).
// Like the workspace itself, everything here is cleared on borrow and
// owned by one Run at a time.
type coreScratch struct {
	rpg       RPG
	cpg       CPG
	sel       selector
	order     []ig.NodeID
	potential []bool
}

// coreScratchFor recovers (or installs) the allocator scratch on the
// context's workspace; without a workspace it returns a fresh one, so
// one-shot contexts behave exactly as before pooling existed.
func coreScratchFor(ctx *regalloc.Context) *coreScratch {
	w := ctx.Workspace
	if w == nil {
		return &coreScratch{}
	}
	if cs, ok := w.AllocatorScratch().(*coreScratch); ok {
		return cs
	}
	cs := &coreScratch{}
	w.SetAllocatorScratch(cs)
	return cs
}
