package core

import (
	"math"

	"prefcolor/internal/ig"
)

// The reference selection oracle: the pre-incremental chooseNode and
// availRegsInto, kept verbatim (membership now reads the ready bitset
// instead of the old queue []bool, which held identical contents).
// WithReferenceSelector routes the allocator through these, and the
// differential tests pin the heap/forbid-mask implementations against
// them bit for bit — the same role TestBuildMatchesReference plays for
// the graph builder.

// chooseNodeRef scans every node ascending and keeps the first
// strict-maximum priority, computing stale priorities inline.
func (s *selector) chooseNodeRef() ig.NodeID {
	// The scan runs in ascending node order, which both keeps
	// tie-breaking deterministic and matches the sorted iteration the
	// map-based implementation paid a sort for.
	best := ig.NodeID(-1)
	bestPri := math.Inf(-1)
	for i := 0; i < s.ctx.Graph.NumNodes(); i++ {
		n := ig.NodeID(i)
		if !s.isReady(n) {
			continue
		}
		if s.ab.FIFOPriority {
			return n
		}
		if !s.priOK[n] {
			s.priVal[n] = s.priority(n)
			s.priOK[n] = true
		}
		if pri := s.priVal[n]; best < 0 || pri > bestPri {
			best, bestPri = n, pri
		}
	}
	return best
}

// availRegsIntoRef rebuilds n's candidate set from a full neighbor
// walk: mark every color a colored original-graph neighbor holds, then
// list the unmarked registers ascending.
func (s *selector) availRegsIntoRef(out []int, n ig.NodeID) []int {
	g, k := s.ctx.Graph, s.ctx.K()
	if cap(s.availMask) < k {
		s.availMask = make([]bool, k)
	}
	used := s.availMask[:k]
	clear(used)
	g.ForEachOrigNeighbor(n, func(nb ig.NodeID) {
		if c := s.color[nb]; c >= 0 && c < k {
			used[c] = true
		}
	})
	for r := 0; r < k; r++ {
		if !used[r] {
			out = append(out, r)
		}
	}
	return out
}
