package core

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/scratch"
	"prefcolor/internal/telemetry"
)

// Allocator is the paper's full coloring system (Figure 8): renumber
// and build happen in the driver; here we build the RPG, run
// optimistic simplification, derive the CPG, and perform the
// integrated preference-directed selection with deferred coalescing
// and active spilling.
type Allocator struct {
	mode     Mode
	ablation Ablation

	// refSelect routes selection through the reference oracle
	// (select_ref.go) instead of the incremental ready-set structures.
	// Name() is unchanged so stats and digests stay comparable — the
	// two paths are pinned bit-identical.
	refSelect bool
}

// New returns the full-preference allocator ("full preferences" in
// Figures 10 and 11).
func New() *Allocator { return &Allocator{mode: FullPreferences} }

// NewCoalesceOnly returns the configuration of §6.1 that reflects
// only coalescing preferences ("only coalescing" in the figures).
func NewCoalesceOnly() *Allocator { return &Allocator{mode: CoalesceOnly} }

// WithReferenceSelector returns a copy of a that selects with the
// retained full-scan reference implementation. The differential tests
// use it as the oracle the incremental selector must match exactly.
func (a *Allocator) WithReferenceSelector() *Allocator {
	c := *a
	c.refSelect = true
	return &c
}

// Name implements regalloc.Allocator.
func (a *Allocator) Name() string {
	if a.mode == CoalesceOnly {
		return "pref-coalesce" + a.ablation.suffix()
	}
	return "pref-full" + a.ablation.suffix()
}

// Mode returns the preference mode.
func (a *Allocator) Mode() Mode { return a.mode }

// Allocate implements regalloc.Allocator.
//
// All phase-local structures (RPG, simplification stack, CPG,
// selector state) live on the context workspace's allocator scratch,
// so repeated rounds — and repeated Runs on a pooled workspace —
// rebuild into the same backing arrays instead of reallocating them.
func (a *Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k, tel := ctx.Graph, ctx.K(), ctx.Telemetry
	cs := coreScratchFor(ctx)
	sp := tel.Begin()
	rpg := BuildRPGInto(&cs.rpg, ctx, a.mode)
	tel.End(telemetry.PhaseRPG, sp)
	sp = tel.Begin()
	stack, potential := simplifyOptimisticInto(cs, g, k)
	tel.End(telemetry.PhaseSimplify, sp)
	sp = tel.Begin()
	cpg := &cs.cpg
	if a.ablation.NoCPG {
		chainCPG(cpg, stack)
	} else if err := buildCPGInto(cpg, g, stack, potential, k); err != nil {
		return nil, err
	}
	tel.End(telemetry.PhaseCPG, sp)
	s := newSelectorIn(&cs.sel, ctx, rpg, cpg, a.mode)
	s.ab = a.ablation
	s.refSelect = a.refSelect
	return s.run()
}

// SimplifyForBench exposes the optimistic simplification for the
// repository's benchmarks, which time CPG construction in isolation.
func SimplifyForBench(g *ig.Graph, k int) ([]ig.NodeID, []bool) {
	return simplifyOptimistic(g, k)
}

// simplifyOptimistic empties the graph in Briggs fashion, returning
// the removal order and which nodes were removed at significant
// degree (the potential spills of step 4's "spilled node" clause),
// as a node-id-indexed mark slice. The graph is left fully removed;
// selection works off the original adjacency, as §5.3 prescribes
// ("add the chosen node to the interference graph").
func simplifyOptimistic(g *ig.Graph, k int) ([]ig.NodeID, []bool) {
	return simplifyOptimisticInto(nil, g, k)
}

// simplifyOptimisticInto is simplifyOptimistic drawing its stack and
// mark slice from the workspace scratch (nil cs allocates fresh). The
// sweep iterates the live graph directly instead of snapshotting
// ActiveNodes: removing the visited node never changes which later
// nodes the sweep sees, and degrees are read at visit time in both
// forms, so the removal order is unchanged.
func simplifyOptimisticInto(cs *coreScratch, g *ig.Graph, k int) ([]ig.NodeID, []bool) {
	var order []ig.NodeID
	var potential []bool
	if cs != nil {
		order = cs.order[:0]
		cs.potential = scratch.Slice(cs.potential, g.NumNodes())
		potential = cs.potential
	} else {
		potential = make([]bool, g.NumNodes())
	}
	for {
		progress := false
		g.ForEachActive(func(n ig.NodeID) {
			if g.Degree(n) < k {
				g.Remove(n)
				order = append(order, n)
				progress = true
			}
		})
		if progress {
			continue
		}
		cand := regalloc.SpillCandidate(g)
		if cand < 0 {
			break
		}
		potential[cand] = true
		g.Remove(cand)
		order = append(order, cand)
	}
	if cs != nil {
		cs.order = order
	}
	return order, potential
}
