package core

import (
	"fmt"
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// buildCPGReference is the nine-step construction with the general
// addEdgeReduced call per step-7 edge — the form buildCPGInto
// specializes by exploiting the replay's pop ordering. The optimized
// builder must produce identical edge rows, in identical order.
func buildCPGReference(g *ig.Graph, stack []ig.NodeID, potentialSpill []bool, k int) *CPG {
	c := &CPG{}
	present := make([]bool, g.NumNodes())
	for _, n := range stack {
		present[n] = true
	}
	wigDeg := make([]int, g.NumNodes())
	for _, n := range stack {
		d := 0
		g.ForEachOrigNeighbor(n, func(nb ig.NodeID) {
			if present[nb] {
				d++
			}
		})
		wigDeg[n] = d
	}
	inCPG := make([]bool, g.NumNodes())
	ready := make([]bool, g.NumNodes())
	for _, n := range stack {
		switch {
		case wigDeg[n] < k:
			inCPG[n] = true
			c.addEdge(n, Bottom)
			ready[n] = true
		case int(n) < len(potentialSpill) && potentialSpill[n]:
			inCPG[n] = true
			c.addEdge(n, Bottom)
		}
	}
	for _, n := range stack {
		present[n] = false
		var remaining []ig.NodeID
		g.ForEachOrigNeighbor(n, func(nb ig.NodeID) {
			if present[nb] {
				remaining = append(remaining, nb)
			}
		})
		for _, nb := range remaining {
			inCPG[nb] = true
		}
		sawNonReady := false
		for _, nb := range remaining {
			if !ready[nb] {
				sawNonReady = true
				c.addEdgeReduced(nb, n)
			}
		}
		if !sawNonReady {
			c.addEdge(Top, n)
		}
		for _, nb := range remaining {
			wigDeg[nb]--
			if wigDeg[nb] < k {
				ready[nb] = true
			}
		}
	}
	return c
}

// TestCPGBuildMatchesReference checks the optimized builder against
// the reference over random programs: same edge sets AND same row
// order, so everything downstream (selection order, digests) is
// bit-identical.
func TestCPGBuildMatchesReference(t *testing.T) {
	m := target.UsageModel(8)
	k := m.NumRegs
	for seed := int64(1); seed <= 60; seed++ {
		f := workload.GenerateRawFunc(propProfile, m, seed)
		if _, err := ig.Renumber(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ctx, err := regalloc.NewContext(f, m, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := ctx.Graph
		stack, potential := simplifyOptimistic(g, k)
		got, err := BuildCPG(g, stack, potential, k)
		if err != nil {
			t.Fatalf("seed %d: BuildCPG: %v", seed, err)
		}
		want := buildCPGReference(g, stack, potential, k)
		for n := Bottom; int(n) < g.NumNodes(); n++ {
			gs, ws := fmt.Sprint(got.succsOf(n)), fmt.Sprint(want.succsOf(n))
			if gs != ws {
				t.Fatalf("seed %d: succs(%d) = %s, reference %s", seed, n, gs, ws)
			}
			gp, wp := fmt.Sprint(got.predsOf(n)), fmt.Sprint(want.predsOf(n))
			if gp != wp {
				t.Fatalf("seed %d: preds(%d) = %s, reference %s", seed, n, gp, wp)
			}
		}
	}
}
