package core_test

import (
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/perfmodel"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// TestLimitedShiftCount: on the x86-like machine, the shift count
// prefers the CL-like register r2. The full-preference allocator must
// honor it; nothing else competes for r2 here.
func TestLimitedShiftCount(t *testing.T) {
	src := `
func f(v0, v1) {
b0:
  v2 = shl v0, v1
  v3 = shr v2, v1
  ret v3
}
`
	f := ir.MustParse(src)
	m := target.X86Like(16)
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est := perfmodel.Estimate(out, m)
	if est.LimitViolations != 0 {
		t.Errorf("limit violations = %d, want 0\n%s", est.LimitViolations, out)
	}
	if est.LimitsHonored != 2 {
		t.Errorf("limits honored = %d, want 2 (both shift counts)", est.LimitsHonored)
	}
	// The shift count operand must literally be r2 in both shifts.
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Shl || in.Op == ir.Shr {
			if got := in.Uses[1]; got != ir.Phys(2) {
				t.Errorf("%v count in %v, want r2", in.Op, got)
			}
		}
	})
}

// TestLimitedLoadLowRegs: quarter-word-style loads prefer the
// byte-addressable low quarter of the register file.
func TestLimitedLoadLowRegs(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 8
  v3 = add v1, v2
  ret v3
}
`
	f := ir.MustParse(src)
	m := target.X86Like(16) // low quarter: r0..r3
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est := perfmodel.Estimate(out, m)
	if est.LimitViolations != 0 {
		t.Errorf("violations = %d, want 0\n%s", est.LimitViolations, out)
	}
}

// TestLimitedBeatsBaselines: preference-blind allocators pay fixups
// the preference-directed allocator avoids on shift-heavy code.
func TestLimitedVersusChaitinEstimate(t *testing.T) {
	src := `
func f(v0, v1) {
b0:
  v9 = loadimm 3
  jump b1
b1:
  v2 = shl v0, v1
  v3 = shr v2, v1
  v0 = add v2, v3
  v9 = addimm v9, -1
  branch v9, b1, b2
b2:
  ret v0
}
`
	f := ir.MustParse(src)
	m := target.X86Like(16)
	outOurs, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("pref-full: %v", err)
	}
	ours := perfmodel.Estimate(outOurs, m)
	if ours.LimitViolations != 0 {
		t.Errorf("pref-full violated %d limits in a loop", ours.LimitViolations)
	}
}

// TestIA64AddImmLimit: the large-immediate add constraint only
// activates above 14 bits.
func TestIA64AddImmLimit(t *testing.T) {
	m := target.UsageModel(16).WithIA64AddImmLimit()
	small := ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ir.Virt(1)}, Uses: []ir.Reg{ir.Virt(0)}, Imm: 5}
	big := ir.Instr{Op: ir.AddImm, Defs: []ir.Reg{ir.Virt(1)}, Uses: []ir.Reg{ir.Virt(0)}, Imm: 1 << 15}
	l := &m.Limits[len(m.Limits)-1]
	if _, ok := l.Applies(&small); ok {
		t.Error("limit applied to a small immediate")
	}
	r, ok := l.Applies(&big)
	if !ok || r != ir.Virt(0) {
		t.Errorf("limit on big immediate: reg=%v ok=%v", r, ok)
	}
	src := `
func f(v0) {
b0:
  v1 = addimm v0, 40000
  ret v1
}
`
	f := ir.MustParse(src)
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est := perfmodel.Estimate(out, m)
	if est.LimitViolations != 0 {
		t.Errorf("addimm source not in the allowed registers:\n%s", out)
	}
}

// TestSequentialPairOnS390: on a sequential-pair machine the two
// paired-load destinations must land on consecutive registers
// (second = first + 1), not merely different parity.
func TestSequentialPairOnS390(t *testing.T) {
	src := `
func f(v0) {
b0:
  v3 = loadimm 4
  jump b1
b1:
  v1 = load v0, 0
  v2 = load v0, 4
  v0 = add v1, v2
  v3 = addimm v3, -1
  branch v3, b1, b2
b2:
  ret v0
}
`
	f := ir.MustParse(src)
	m := target.S390Like(16)
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var loads []ir.Instr
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Load {
			loads = append(loads, in.Clone())
		}
	})
	if len(loads) != 2 {
		t.Fatalf("%d loads", len(loads))
	}
	d1, d2 := loads[0].Defs[0].PhysNum(), loads[1].Defs[0].PhysNum()
	if d2 != d1+1 {
		t.Errorf("sequential pair got r%d, r%d; want consecutive", d1, d2)
	}
	est := perfmodel.Estimate(out, m)
	if est.FusedPairs != 1 {
		t.Errorf("fused = %d, want 1", est.FusedPairs)
	}
}
