package core

import (
	"strings"

	"prefcolor/internal/ig"
)

// Ablation switches off individual design choices of the full
// coloring system, for the ablation studies in the benchmark harness.
// Every field zero-valued reproduces the paper's full algorithm.
type Ablation struct {
	// NoCPG replaces the Coloring Precedence Graph's partial order
	// with the simplification stack's total order (Chaitin/Briggs
	// pop order), isolating the contribution of §5.2's relaxation.
	NoCPG bool

	// FIFOPriority disables the strength-differential node choice of
	// §5.3 step 3; ready nodes are processed in node order.
	FIFOPriority bool

	// NoRecolor disables the post-selection greedy recoloring fixup.
	NoRecolor bool

	// NoActiveSpill disables §5.4's active spilling of
	// memory-preferring nodes.
	NoActiveSpill bool

	// NoDeferredScreen disables step 4.3 (avoiding registers that
	// block a not-yet-allocated partner's preference).
	NoDeferredScreen bool
}

func (a Ablation) suffix() string {
	var parts []string
	if a.NoCPG {
		parts = append(parts, "nocpg")
	}
	if a.FIFOPriority {
		parts = append(parts, "fifo")
	}
	if a.NoRecolor {
		parts = append(parts, "norecolor")
	}
	if a.NoActiveSpill {
		parts = append(parts, "nospill")
	}
	if a.NoDeferredScreen {
		parts = append(parts, "nodefer")
	}
	if len(parts) == 0 {
		return ""
	}
	return "-" + strings.Join(parts, "-")
}

// NewAblated returns the full-preference allocator with the given
// design choices disabled.
func NewAblated(ab Ablation) *Allocator {
	return &Allocator{mode: FullPreferences, ablation: ab}
}

// AblationVariant is one labeled design-choice knock-out.
type AblationVariant struct {
	Label    string
	Ablation Ablation
}

// Variants returns the design-choice knock-outs studied by the
// ablation harness (and replayed by the metamorphic correctness
// matrix), in report order. The first entry is the unablated full
// algorithm.
func Variants() []AblationVariant {
	return []AblationVariant{
		{"full", Ablation{}},
		{"no-cpg", Ablation{NoCPG: true}},
		{"fifo-priority", Ablation{FIFOPriority: true}},
		{"no-recolor", Ablation{NoRecolor: true}},
		{"no-active-spill", Ablation{NoActiveSpill: true}},
		{"no-deferred-screen", Ablation{NoDeferredScreen: true}},
		// stack-order isolates the CPG against the recoloring fixup: it
		// removes both, versus no-recolor which removes only the fixup.
		{"stack-order", Ablation{NoCPG: true, NoRecolor: true}},
	}
}

// chainCPG builds, into c, the degenerate precedence graph of the
// NoCPG ablation: a single chain in Chaitin select order (reverse of
// the removal stack), every node also pointing at Bottom.
func chainCPG(c *CPG, stack []ig.NodeID) {
	c.reset()
	if len(stack) == 0 {
		return
	}
	// Reverse stack order: last removed is colored first.
	first := stack[len(stack)-1]
	c.addEdge(Top, first)
	for i := len(stack) - 1; i > 0; i-- {
		c.addEdge(stack[i], stack[i-1])
	}
	c.addEdge(stack[0], Bottom)
}
