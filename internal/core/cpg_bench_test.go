package core

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// BenchmarkBuildCPG measures the steady-state CPG rebuild (the
// buildCPGInto path every spill round pays). The "large" shape at low k
// is the removeEdge stress: most nodes hang off Bottom, so each
// transitive-reduction prune of an n→Bottom edge used to scan the
// near-full preds[Bottom] row.
func BenchmarkBuildCPG(b *testing.B) {
	for _, sz := range []struct {
		name        string
		stmts, vars int
	}{
		{"small", 16, 8},
		{"large", 512, 160},
	} {
		b.Run(sz.name, func(b *testing.B) {
			profile := workload.Profile{
				Name: "cpgbench", Funcs: 1, Stmts: sz.stmts, MaxDepth: 3,
				LoopProb: 0.12, IfProb: 0.16, CallProb: 0, PairProb: 0.05,
				StoreProb: 0.10, Vars: sz.vars, Params: 0,
			}
			m := target.UsageModel(6)
			k := m.NumRegs
			f := workload.GenerateRawFunc(profile, m, 1)
			if _, err := ig.Renumber(f); err != nil {
				b.Fatal(err)
			}
			ctx, err := regalloc.NewContext(f, m, nil)
			if err != nil {
				b.Fatal(err)
			}
			stack, potential := simplifyOptimistic(ctx.Graph, k)
			b.Logf("nodes %d, stack %d", ctx.Graph.NumNodes(), len(stack))
			c := &CPG{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := buildCPGInto(c, ctx.Graph, stack, potential, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
