package core

import (
	"testing"

	"prefcolor/internal/ig"
)

// lineGraph builds a fresh graph with n web nodes and no physical
// nodes, with the given edges.
func lineGraph(n int, edges [][2]int) *ig.Graph {
	g := ig.NewGraph(0, n)
	for _, e := range edges {
		g.AddEdge(ig.NodeID(e[0]), ig.NodeID(e[1]))
	}
	g.Freeze()
	return g
}

func TestCPGIsolatedNodes(t *testing.T) {
	g := lineGraph(3, nil)
	cpg, err := BuildCPG(g, []ig.NodeID{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	for n := ig.NodeID(0); n < 3; n++ {
		if !cpg.HasEdge(Top, n) || !cpg.HasEdge(n, Bottom) {
			t.Errorf("isolated node %d should hang between top and bottom", n)
		}
	}
}

func TestCPGChainOrder(t *testing.T) {
	// Path 0-1-2 with K=2: all low degree; removal order 0,1,2.
	// Popping 0: neighbor 1 is ready (deg 2 < 2? deg(1)=2 not <2...).
	// With K=2: deg(1)=2 → not ready initially; 0 and 2 are ready.
	g := lineGraph(3, [][2]int{{0, 1}, {1, 2}})
	cpg, err := BuildCPG(g, []ig.NodeID{0, 1, 2}, nil, 2)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	// Node 1 (non-ready) must precede node 0.
	if !cpg.HasEdge(1, 0) {
		t.Errorf("want edge 1 -> 0; cpg:\n%s", cpg.Dump(g))
	}
	// After 0's removal node 1 becomes ready; popping 1 finds ready 2
	// only → top -> 1.
	if !cpg.HasEdge(Top, 1) {
		t.Errorf("want top -> 1; cpg:\n%s", cpg.Dump(g))
	}
	if !cpg.HasEdge(Top, 2) {
		t.Errorf("want top -> 2; cpg:\n%s", cpg.Dump(g))
	}
}

func TestCPGPotentialSpillNotReady(t *testing.T) {
	// Triangle with K=2: simplification must optimistically remove
	// one node at significant degree.
	g := lineGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	pot := make([]bool, 3)
	pot[0] = true
	cpg, err := BuildCPG(g, []ig.NodeID{0, 1, 2}, pot, 2)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	// 0 is a potential spill: created with an edge to bottom but not
	// ready, so when it pops first, neighbors 1 and 2 (non-ready,
	// degree 2 each) must precede it.
	if !cpg.HasEdge(0, Bottom) {
		t.Error("potential spill should point to bottom")
	}
	if !cpg.HasEdge(1, 0) || !cpg.HasEdge(2, 0) {
		t.Errorf("non-ready neighbors must precede the first pop; cpg:\n%s", cpg.Dump(g))
	}
}

func TestCPGTransitiveReduction(t *testing.T) {
	c := &CPG{}
	c.addEdgeReduced(1, 2)
	c.addEdgeReduced(2, 3)
	// 1→3 is implied by 1→2→3 and must be skipped.
	c.addEdgeReduced(1, 3)
	if c.HasEdge(1, 3) {
		t.Error("transitive edge 1->3 was added")
	}
	// Adding 4→2 then 2→... and a pre-existing 4→3 must drop 4→3 when
	// 3 becomes reachable through the new edge.
	c.addEdgeReduced(4, 3)
	c.addEdgeReduced(4, 2) // 4→2→3 makes 4→3 transitive
	if c.HasEdge(4, 3) {
		t.Error("edge 4->3 should have been removed as transitive")
	}
	if !c.HasEdge(4, 2) || !c.HasEdge(2, 3) {
		t.Error("reduction removed a needed edge")
	}
}

func TestCPGReachable(t *testing.T) {
	c := &CPG{}
	c.addEdge(1, 2)
	c.addEdge(2, 3)
	if !c.reachable(1, 3) || c.reachable(3, 1) || !c.reachable(2, 2) {
		t.Error("reachable wrong")
	}
}

func TestCPGRejectsBadStack(t *testing.T) {
	g := ig.NewGraph(2, 2)
	g.Freeze()
	if _, err := BuildCPG(g, []ig.NodeID{0}, nil, 2); err == nil {
		t.Error("physical node on stack not rejected")
	}
	if _, err := BuildCPG(g, []ig.NodeID{2, 2}, nil, 2); err == nil {
		t.Error("duplicate stack entry not rejected")
	}
}

func TestCPGEveryNodeReachesProcessing(t *testing.T) {
	// Random-ish denser graph: build, simplify, CPG, and check that a
	// topological traversal visits every node (no deadlock).
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}}
	g := lineGraph(6, edges)
	stack, pot := simplifyOptimistic(g, 3)
	if len(stack) != 6 {
		t.Fatalf("stack = %v", stack)
	}
	cpg, err := BuildCPG(g, stack, pot, 3)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	// Kahn's walk.
	pc := map[ig.NodeID]int{}
	for _, n := range cpg.Nodes() {
		for _, p := range cpg.Preds(n) {
			if p != Top {
				pc[n]++
			}
		}
	}
	var q []ig.NodeID
	for _, n := range cpg.Nodes() {
		if pc[n] == 0 {
			q = append(q, n)
		}
	}
	visited := 0
	for len(q) > 0 {
		n := q[len(q)-1]
		q = q[:len(q)-1]
		visited++
		for _, s := range cpg.Succs(n) {
			if s == Bottom {
				continue
			}
			pc[s]--
			if pc[s] == 0 {
				q = append(q, s)
			}
		}
	}
	if visited != 6 {
		t.Errorf("topological walk visited %d of 6 nodes; cpg:\n%s", visited, cpg.Dump(g))
	}
}
