package core

import (
	"math/bits"

	"prefcolor/internal/ig"
)

// The ready set and its lazy priority heap. Membership lives in a
// bitset (readyBits) with a maintained count; the heap carries
// (priority, node) entries that chooseNode validates on pop, so
// superseded entries cost one comparison instead of a tombstone
// protocol. Entries are pushed when a node becomes ready and whenever
// a ready node's priority is refreshed (invalidate, or chooseNode
// finding priOK down), which keeps the invariant chooseNode relies
// on: every ready node always has an entry carrying its current
// priVal, so the true maximum is never buried under a stale key.

// priEntry is one lazy-heap element: a node and the priority it was
// pushed under.
type priEntry struct {
	pri  float64
	node ig.NodeID
}

// priBefore orders the heap: higher priority first, ties to the lower
// node id — exactly the winner the reference scan's ascending
// strict-maximum sweep selects. Priorities are never NaN (strength
// differentials are finite, no-preference nodes rank -Inf), so the
// comparison is total.
func priBefore(a, b priEntry) bool {
	return a.pri > b.pri || (a.pri == b.pri && a.node < b.node)
}

func (s *selector) heapPush(e priEntry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !priBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

func (s *selector) heapPop() {
	h := s.heap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h) && priBefore(h[l], h[m]) {
			m = l
		}
		if r < len(h) && priBefore(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.heap = h
}

// isReady reports ready-set membership in O(1).
func (s *selector) isReady(n ig.NodeID) bool {
	return s.readyBits[int(n)>>6]&(1<<(uint(n)&63)) != 0
}

// pushReady admits n to the ready set. In incremental mode its
// priority is computed here — n was never ready before, so priOK is
// necessarily down, and no state changes between this step-5 release
// and the next chooseNode, so the value is exactly what the reference
// computes there — and a heap entry is pushed under it.
func (s *selector) pushReady(n ig.NodeID) {
	s.readyBits[int(n)>>6] |= 1 << (uint(n) & 63)
	s.readyCount++
	if !s.refSelect && !s.ab.FIFOPriority {
		pri := s.priority(n)
		s.priVal[n], s.priOK[n] = pri, true
		s.heapPush(priEntry{pri: pri, node: n})
	}
}

// dropReady removes n from the ready set; its heap entries die lazily
// on their next pop.
func (s *selector) dropReady(n ig.NodeID) {
	s.readyBits[int(n)>>6] &^= 1 << (uint(n) & 63)
	s.readyCount--
}

// firstReady returns the lowest-id ready node (the FIFOPriority
// ablation's pick), or -1 when none is ready.
func (s *selector) firstReady() ig.NodeID {
	for wi, w := range s.readyBits {
		if w != 0 {
			return ig.NodeID(wi<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}
