package core

import (
	"sort"

	"prefcolor/internal/ig"
)

// recolorPasses bounds the greedy fixup iterations.
const recolorPasses = 3

// recolorCand is one unhonored-copy repair candidate.
type recolorCand struct {
	x, y ig.NodeID
	w    float64
}

// planOverlay is a proposed recoloring: a handful of (node, color)
// overrides on top of the current assignment. Plans never exceed
// maxCompPlan entries, so lookups are a linear scan over a pair of
// small slices — cheaper than a hash table at this size, and
// iteration order is insertion order (deterministic).
type planOverlay struct {
	nodes  []ig.NodeID
	colors []int
}

// lookup returns the planned color for n, if the plan covers it.
func (p *planOverlay) lookup(n ig.NodeID) (int, bool) {
	if p == nil {
		return 0, false
	}
	for i, m := range p.nodes {
		if m == n {
			return p.colors[i], true
		}
	}
	return 0, false
}

func (p *planOverlay) add(n ig.NodeID, c int) {
	p.nodes = append(p.nodes, n)
	p.colors = append(p.colors, c)
}

func (p *planOverlay) removeLast() {
	p.nodes = p.nodes[:len(p.nodes)-1]
	p.colors = p.colors[:len(p.colors)-1]
}

func (p *planOverlay) len() int {
	if p == nil {
		return 0
	}
	return len(p.nodes)
}

func (p *planOverlay) clone() *planOverlay {
	return &planOverlay{
		nodes:  append([]ig.NodeID(nil), p.nodes...),
		colors: append([]int(nil), p.colors...),
	}
}

// recolorFixup is a post-selection cleanup in the direction of the
// paper's closing remark ("we are working on a heuristic algorithm …
// that allows aggressive preference resolutions"): after the CPG
// traversal, copies and pairs can remain unhonored merely because an
// earlier pick took the partner register while a conflict-free
// recoloring still exists. The pass walks unhonored copies from
// heaviest to lightest and greedily recolors one or both endpoints
// whenever the move, pair, and class strengths of the RPG say the
// change is a net win; validity is checked against the original
// interference graph, so the assignment stays correct by
// construction.
func (s *selector) recolorFixup() {
	g := s.ctx.Graph
	moves := s.rcMoves[:0]
	if s.rcSeen == nil {
		s.rcSeen = map[[2]ig.NodeID]bool{}
	}
	seen := s.rcSeen
	clear(seen)
	for _, m := range g.Moves() {
		key := [2]ig.NodeID{m.X, m.Y}
		if m.Y < m.X {
			key = [2]ig.NodeID{m.Y, m.X}
		}
		if seen[key] || g.OrigInterferes(m.X, m.Y) {
			continue
		}
		seen[key] = true
		moves = append(moves, recolorCand{m.X, m.Y, m.Weight})
	}
	s.rcMoves = moves
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].w > moves[j].w })

	for pass := 0; pass < recolorPasses; pass++ {
		changed := false
		for _, mv := range moves {
			cx, cy := s.colorOf(mv.x), s.colorOf(mv.y)
			if cx < 0 || cy < 0 || cx == cy {
				continue
			}
			if s.tryPlans(mv.x, mv.y) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (s *selector) colorOf(n ig.NodeID) int {
	if s.ctx.Graph.IsPhys(n) {
		return int(n)
	}
	return s.color[n]
}

// tryPlans evaluates the three repair plans for an unhonored copy —
// move x to y's register, y to x's, or both to a third — and applies
// the best strictly-positive one.
func (s *selector) tryPlans(x, y ig.NodeID) bool {
	g, k := s.ctx.Graph, s.ctx.K()
	cx, cy := s.colorOf(x), s.colorOf(y)

	bestDelta := 0.0
	var bestPlan *planOverlay

	consider := func(plan *planOverlay) {
		delta := 0.0
		for i, n := range plan.nodes {
			nc := plan.colors[i]
			if g.IsPhys(n) || !s.colorFreeFor(n, nc, plan) {
				return
			}
			delta += s.nodeScore(n, nc, plan) - s.nodeScore(n, s.colorOf(n), nil)
		}
		if delta > bestDelta+1e-9 {
			bestDelta = delta
			bestPlan = plan.clone()
		}
	}

	var scratch planOverlay
	single := func(n ig.NodeID, c int) {
		scratch.nodes = append(scratch.nodes[:0], n)
		scratch.colors = append(scratch.colors[:0], c)
		consider(&scratch)
	}
	double := func(c int) {
		scratch.nodes = append(scratch.nodes[:0], x, y)
		scratch.colors = append(scratch.colors[:0], c, c)
		consider(&scratch)
	}

	if !g.IsPhys(x) {
		single(x, cy)
	}
	if !g.IsPhys(y) {
		single(y, cx)
	}
	if !g.IsPhys(x) && !g.IsPhys(y) {
		for c := 0; c < k; c++ {
			if c != cx && c != cy {
				double(c)
			}
		}
	}
	// Component plan: migrate as much of the copy component as fits
	// onto a single color (star- and chain-shaped copy groups need
	// more than two nodes to move together).
	if members := s.compMembers(x); len(members) > 2 && len(members) <= maxCompPlan {
		var plan planOverlay
		for c := 0; c < k; c++ {
			s.componentPlan(members, c, &plan)
			if plan.len() >= 2 {
				consider(&plan)
			}
		}
	}
	if bestPlan == nil {
		return false
	}
	for i, n := range bestPlan.nodes {
		s.color[n] = bestPlan.colors[i]
	}
	s.ctx.Telemetry.NoteRecolor()
	return true
}

// maxCompPlan bounds the component-migration plan size.
const maxCompPlan = 12

// compMembers lists the colored, non-physical members of n's copy
// component.
func (s *selector) compMembers(n ig.NodeID) []ig.NodeID {
	comp := s.compOf(n)
	out := s.compBuf[:0]
	for i := s.ctx.Graph.NumPhys(); i < s.ctx.Graph.NumNodes(); i++ {
		m := ig.NodeID(i)
		if s.compOf(m) == comp && s.color[m] >= 0 {
			out = append(out, m)
			if len(out) > maxCompPlan {
				break
			}
		}
	}
	s.compBuf = out
	return out
}

// componentPlan greedily gathers into plan the members that can all
// wear color c simultaneously, skipping those already on c.
func (s *selector) componentPlan(members []ig.NodeID, c int, plan *planOverlay) {
	plan.nodes = plan.nodes[:0]
	plan.colors = plan.colors[:0]
	for _, m := range members {
		if s.color[m] == c {
			continue
		}
		plan.add(m, c)
		if !s.colorFreeFor(m, c, plan) {
			plan.removeLast()
		}
	}
}

// colorFreeFor reports whether node n may wear color c given current
// colors with the plan's overrides (plan members never interfere with
// each other here, but the check stays general).
func (s *selector) colorFreeFor(n ig.NodeID, c int, plan *planOverlay) bool {
	free := true
	s.ctx.Graph.ForEachOrigNeighbor(n, func(nb ig.NodeID) {
		if !free {
			return
		}
		nbc, ok := plan.lookup(nb)
		if !ok {
			nbc = s.colorOf(nb)
		}
		if nbc == c {
			free = false
		}
	})
	return free
}

// nodeScore values node n wearing color c for recoloring decisions:
// the structural savings of honored copies and pairs minus the
// residence call cost of c's volatility class. The memory-versus-
// register baselines of the full Str values cancel between the
// before and after of any recoloring, so only these terms matter.
// Coalesce and sequential preferences exist in both directions, so
// scoring only the recolored nodes still sees every affected edge.
func (s *selector) nodeScore(n ig.NodeID, c int, plan *planOverlay) float64 {
	m := s.ctx.Machine
	vol := m.IsVolatile(c)
	total := 0.0
	if s.mode == FullPreferences {
		// In coalesce-only mode volatility is outside the objective,
		// mirroring the figure configurations' naive class handling.
		w := int(n) - s.ctx.Graph.NumPhys()
		total -= s.ctx.Costs.CallCost(w, vol)
	}
	for _, pi := range s.rpg.Prefs(n) {
		p := s.rpg.Pref(pi)
		honored := false
		switch p.Kind {
		case Coalesce, SeqPlus, SeqMinus:
			tc, ok := plan.lookup(p.To)
			if !ok {
				tc = s.colorOf(p.To)
			}
			if tc < 0 {
				continue
			}
			switch p.Kind {
			case Coalesce:
				honored = c == tc
			case SeqPlus:
				honored = m.PairOK(c, tc)
			case SeqMinus:
				honored = m.PairOK(tc, c)
			}
		case Prefers:
			if p.Allowed == nil {
				continue // class preference: covered by the call-cost term
			}
			for _, a := range p.Allowed {
				if a == c {
					honored = true
					break
				}
			}
		default:
			continue
		}
		if honored {
			total += p.Savings
		}
	}
	return total
}
