package core

import (
	"math/bits"
	"sort"

	"prefcolor/internal/ig"
	"prefcolor/internal/scratch"
)

// recolorPasses bounds the greedy fixup iterations.
const recolorPasses = 3

// recolorCand is one unhonored-copy repair candidate.
type recolorCand struct {
	x, y ig.NodeID
	w    float64
}

// planOverlay is a proposed recoloring: a handful of (node, color)
// overrides on top of the current assignment. Plans never exceed
// maxCompPlan entries, so lookups are a linear scan over a pair of
// small slices — cheaper than a hash table at this size, and
// iteration order is insertion order (deterministic).
type planOverlay struct {
	nodes  []ig.NodeID
	colors []int
}

// lookup returns the planned color for n, if the plan covers it.
func (p *planOverlay) lookup(n ig.NodeID) (int, bool) {
	if p == nil {
		return 0, false
	}
	for i, m := range p.nodes {
		if m == n {
			return p.colors[i], true
		}
	}
	return 0, false
}

func (p *planOverlay) add(n ig.NodeID, c int) {
	p.nodes = append(p.nodes, n)
	p.colors = append(p.colors, c)
}

func (p *planOverlay) removeLast() {
	p.nodes = p.nodes[:len(p.nodes)-1]
	p.colors = p.colors[:len(p.colors)-1]
}

func (p *planOverlay) len() int {
	if p == nil {
		return 0
	}
	return len(p.nodes)
}

// recolorFixup is a post-selection cleanup in the direction of the
// paper's closing remark ("we are working on a heuristic algorithm …
// that allows aggressive preference resolutions"): after the CPG
// traversal, copies and pairs can remain unhonored merely because an
// earlier pick took the partner register while a conflict-free
// recoloring still exists. The pass walks unhonored copies from
// heaviest to lightest and greedily recolors one or both endpoints
// whenever the move, pair, and class strengths of the RPG say the
// change is a net win; validity is checked against the original
// interference graph, so the assignment stays correct by
// construction.
func (s *selector) recolorFixup() {
	g := s.ctx.Graph
	s.buildRecolorIndex()
	moves := s.rcMoves[:0]
	if s.rcSeen == nil {
		s.rcSeen = map[[2]ig.NodeID]bool{}
	}
	seen := s.rcSeen
	clear(seen)
	for _, m := range g.Moves() {
		key := [2]ig.NodeID{m.X, m.Y}
		if m.Y < m.X {
			key = [2]ig.NodeID{m.Y, m.X}
		}
		if seen[key] || g.OrigInterferes(m.X, m.Y) {
			continue
		}
		seen[key] = true
		moves = append(moves, recolorCand{m.X, m.Y, m.Weight})
	}
	s.rcMoves = moves
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].w > moves[j].w })

	for pass := 0; pass < recolorPasses; pass++ {
		changed := false
		for _, mv := range moves {
			cx, cy := s.colorOf(mv.x), s.colorOf(mv.y)
			if cx < 0 || cy < 0 || cx == cy {
				continue
			}
			if s.tryPlans(mv.x, mv.y) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (s *selector) colorOf(n ig.NodeID) int {
	if s.ctx.Graph.IsPhys(n) {
		return int(n)
	}
	return s.color[n]
}

// tryPlans evaluates the three repair plans for an unhonored copy —
// move x to y's register, y to x's, or both to a third — and applies
// the best strictly-positive one. The candidate and best overlays are
// selector-owned buffers, so the whole evaluation allocates nothing.
func (s *selector) tryPlans(x, y ig.NodeID) bool {
	g, k := s.ctx.Graph, s.ctx.K()
	cx, cy := s.colorOf(x), s.colorOf(y)

	bestDelta := 0.0
	haveBest := false
	plan := &s.rcPlan

	if !g.IsPhys(x) {
		plan.nodes = append(plan.nodes[:0], x)
		plan.colors = append(plan.colors[:0], cy)
		bestDelta, haveBest = s.considerPlan(plan, bestDelta, haveBest)
	}
	if !g.IsPhys(y) {
		plan.nodes = append(plan.nodes[:0], y)
		plan.colors = append(plan.colors[:0], cx)
		bestDelta, haveBest = s.considerPlan(plan, bestDelta, haveBest)
	}
	if !g.IsPhys(x) && !g.IsPhys(y) {
		for c := 0; c < k; c++ {
			if c != cx && c != cy {
				plan.nodes = append(plan.nodes[:0], x, y)
				plan.colors = append(plan.colors[:0], c, c)
				bestDelta, haveBest = s.considerPlan(plan, bestDelta, haveBest)
			}
		}
	}
	// Component plan: migrate as much of the copy component as fits
	// onto a single color (star- and chain-shaped copy groups need
	// more than two nodes to move together).
	if members := s.compMembers(x); len(members) > 2 && len(members) <= maxCompPlan {
		for c := 0; c < k; c++ {
			s.componentPlan(members, c, plan)
			if plan.len() >= 2 {
				bestDelta, haveBest = s.considerPlan(plan, bestDelta, haveBest)
			}
		}
	}
	if !haveBest {
		return false
	}
	for i, n := range s.rcBest.nodes {
		s.recolorTo(n, s.rcBest.colors[i])
	}
	s.ctx.Telemetry.NoteRecolor()
	return true
}

// considerPlan scores plan against the current assignment; when it
// strictly beats bestDelta it is copied into s.rcBest. Returns the
// updated running best.
func (s *selector) considerPlan(plan *planOverlay, bestDelta float64, haveBest bool) (float64, bool) {
	g := s.ctx.Graph
	delta := 0.0
	for i, n := range plan.nodes {
		nc := plan.colors[i]
		if g.IsPhys(n) || !s.colorFreeFor(n, nc, plan) {
			return bestDelta, haveBest
		}
		delta += s.nodeScore(n, nc, plan) - s.nodeScore(n, s.colorOf(n), nil)
	}
	if delta > bestDelta+1e-9 {
		s.rcBest.nodes = append(s.rcBest.nodes[:0], plan.nodes...)
		s.rcBest.colors = append(s.rcBest.colors[:0], plan.colors...)
		return delta, true
	}
	return bestDelta, haveBest
}

// recolorTo commits node n to color c, keeping the per-color
// occupancy bitsets in sync.
func (s *selector) recolorTo(n ig.NodeID, c int) {
	words := s.ctx.Graph.WordsPerRow()
	wi, m := int(n)>>6, uint64(1)<<(uint(n)&63)
	if old := s.color[n]; old >= 0 && old < s.ctx.K() {
		s.rcColorBits[old*words+wi] &^= m
	}
	s.color[n] = c
	if c >= 0 && c < s.ctx.K() {
		s.rcColorBits[c*words+wi] |= m
	}
}

// maxCompPlan bounds the component-migration plan size.
const maxCompPlan = 12

// buildRecolorIndex prepares the two structures the recolor pass
// queries constantly: per-color occupancy bitsets (node n set in color
// c's row when n currently wears c) and the copy components bucketed
// by root in CSR form. Both stay valid for the whole pass — recoloring
// updates the bitsets via recolorTo, and the colored set itself is
// static (plans change colors, never colored-ness).
func (s *selector) buildRecolorIndex() {
	g, k := s.ctx.Graph, s.ctx.K()
	n, words := g.NumNodes(), g.WordsPerRow()

	s.rcColorBits = scratch.Slice(s.rcColorBits, k*words)
	for i := 0; i < g.NumPhys() && i < k; i++ {
		s.rcColorBits[i*words+(i>>6)] |= 1 << (uint(i) & 63)
	}
	for i := g.NumPhys(); i < n; i++ {
		if c := s.color[i]; c >= 0 && c < k {
			s.rcColorBits[c*words+(i>>6)] |= 1 << (uint(i) & 63)
		}
	}

	// CSR buckets: off[r+1] holds component r's member count during the
	// first pass, then the prefix sums turn it into row boundaries.
	off := scratch.Slice(s.rcCompOff, n+1)
	for i := g.NumPhys(); i < n; i++ {
		if s.color[i] >= 0 {
			off[s.compOf(ig.NodeID(i))+1]++
		}
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	s.rcCompOff = off
	mem := scratch.Slice(s.rcCompMem, int(off[n]))
	next := s.rcCompNext[:0]
	next = append(next, off[:n]...)
	s.rcCompNext = next
	for i := g.NumPhys(); i < n; i++ {
		if s.color[i] >= 0 {
			r := s.compOf(ig.NodeID(i))
			mem[next[r]] = ig.NodeID(i)
			next[r]++
		}
	}
	s.rcCompMem = mem
}

// compMembers lists the colored, non-physical members of n's copy
// component — a CSR row lookup, truncated where the pre-indexed scan
// stopped (one past maxCompPlan, enough for the caller's size gate).
func (s *selector) compMembers(n ig.NodeID) []ig.NodeID {
	r := s.compOf(n)
	row := s.rcCompMem[s.rcCompOff[r]:s.rcCompOff[r+1]]
	if len(row) > maxCompPlan+1 {
		row = row[:maxCompPlan+1]
	}
	return row
}

// componentPlan greedily gathers into plan the members that can all
// wear color c simultaneously, skipping those already on c.
func (s *selector) componentPlan(members []ig.NodeID, c int, plan *planOverlay) {
	plan.nodes = plan.nodes[:0]
	plan.colors = plan.colors[:0]
	for _, m := range members {
		if s.color[m] == c {
			continue
		}
		plan.add(m, c)
		if !s.colorFreeFor(m, c, plan) {
			plan.removeLast()
		}
	}
}

// colorFreeFor reports whether node n may wear color c given current
// colors with the plan's overrides (plan members never interfere with
// each other here, but the check stays general). The usual case is one
// AND pass of n's adjacency row against color c's occupancy bitset —
// nonzero words are resolved bit by bit against the plan, and the
// plan's own recolorings get a direct interference test. Colors the
// bitsets don't track (a physical neighbor's id at or above K) take
// the plain per-neighbor walk.
func (s *selector) colorFreeFor(n ig.NodeID, c int, plan *planOverlay) bool {
	g := s.ctx.Graph
	if c < 0 || c >= s.ctx.K() {
		for wi, w := range g.OrigRow(n) {
			base := ig.NodeID(wi << 6)
			for w != 0 {
				nb := base + ig.NodeID(bits.TrailingZeros64(w))
				w &= w - 1
				nbc, ok := plan.lookup(nb)
				if !ok {
					nbc = s.colorOf(nb)
				}
				if nbc == c {
					return false
				}
			}
		}
		return true
	}
	words := g.WordsPerRow()
	cb := s.rcColorBits[c*words : c*words+words]
	for wi, w := range g.OrigRow(n) {
		w &= cb[wi]
		base := ig.NodeID(wi << 6)
		for w != 0 {
			nb := base + ig.NodeID(bits.TrailingZeros64(w))
			w &= w - 1
			// A plan member's current color is overridden; its planned
			// color is checked below.
			if _, ok := plan.lookup(nb); !ok {
				return false
			}
		}
	}
	if plan != nil {
		for i, m := range plan.nodes {
			if m != n && plan.colors[i] == c && g.OrigInterferes(n, m) {
				return false
			}
		}
	}
	return true
}

// nodeScore values node n wearing color c for recoloring decisions:
// the structural savings of honored copies and pairs minus the
// residence call cost of c's volatility class. The memory-versus-
// register baselines of the full Str values cancel between the
// before and after of any recoloring, so only these terms matter.
// Coalesce and sequential preferences exist in both directions, so
// scoring only the recolored nodes still sees every affected edge.
func (s *selector) nodeScore(n ig.NodeID, c int, plan *planOverlay) float64 {
	m := s.ctx.Machine
	vol := m.IsVolatile(c)
	total := 0.0
	if s.mode == FullPreferences {
		// In coalesce-only mode volatility is outside the objective,
		// mirroring the figure configurations' naive class handling.
		w := int(n) - s.ctx.Graph.NumPhys()
		total -= s.ctx.Costs.CallCost(w, vol)
	}
	for _, pi := range s.rpg.Prefs(n) {
		p := s.rpg.Pref(pi)
		honored := false
		switch p.Kind {
		case Coalesce, SeqPlus, SeqMinus:
			tc, ok := plan.lookup(p.To)
			if !ok {
				tc = s.colorOf(p.To)
			}
			if tc < 0 {
				continue
			}
			switch p.Kind {
			case Coalesce:
				honored = c == tc
			case SeqPlus:
				honored = m.PairOK(c, tc)
			case SeqMinus:
				honored = m.PairOK(tc, c)
			}
		case Prefers:
			if p.Allowed == nil {
				continue // class preference: covered by the call-cost term
			}
			for _, a := range p.Allowed {
				if a == c {
					honored = true
					break
				}
			}
		default:
			continue
		}
		if honored {
			total += p.Savings
		}
	}
	return total
}
