package core

import (
	"fmt"
	"math"
	"math/bits"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/scratch"
	"prefcolor/internal/telemetry"
)

// selector runs the §5.3 register-selection algorithm: a traversal of
// the Coloring Precedence Graph directed by the Register Preference
// Graph.
type selector struct {
	ctx  *regalloc.Context
	rpg  *RPG
	cpg  *CPG
	mode Mode
	ab   Ablation

	// All per-node state is indexed by node id — like the graph
	// itself, dense slices instead of hash tables.
	color      []int // per node id; physical nodes preset
	spilled    []bool
	processed  []bool
	nProcessed int
	predCount  []int

	// The ready set (nodes whose CPG predecessors are all processed):
	// a bitset with an O(1) membership test plus a maintained count,
	// so the telemetry histogram costs nothing per pop. In the default
	// incremental mode a lazy max-heap over (priority, node) entries
	// sits on top — see chooseNode — so a pop costs O(log r) instead
	// of a full scan of every node.
	readyBits  []uint64
	readyCount int
	heap       []priEntry

	// forbid is the per-node forbidden-register mask (kwords words of
	// k bits each, flat): bit c set when some colored original-graph
	// neighbor holds register c. It is maintained incrementally —
	// noteColored sets one bit per neighbor as a node is colored,
	// noteUncolored re-derives the freed bit on the rare eviction path
	// — so availRegsInto reads a mask instead of rebuilding it from a
	// full neighbor walk on every priority recompute.
	forbid []uint64
	kwords int

	// refSelect routes chooseNode and availRegsInto through the
	// retained reference implementations (full ready-set scan,
	// per-query neighbor walk — select_ref.go), which the differential
	// tests pin the incremental structures against bit for bit.
	refSelect bool

	// comp groups copy-related nodes into components (transitive
	// closure over non-interfering copies); compColors counts, per
	// component, how often each register was granted inside it (nil
	// until the component first receives a color, rows carved from
	// compArena). The final pick prefers a component's established
	// registers, which recovers the transitive-chain coalesces the
	// paper's §6.1 notes its one-at-a-time scheme can miss.
	comp       []int32
	compColors [][]int
	compArena  []int

	// priVal/priOK memoize queue priorities; processing a node
	// invalidates its interference neighbors (their available sets
	// changed) and its preference partners (their honorable sets
	// changed). prefSources[t] lists nodes holding a preference
	// aimed at t.
	priVal      []float64
	priOK       []bool
	prefSources [][]ig.NodeID

	// Reusable per-call buffers. Each availRegs-style query writes into
	// a buffer dedicated to its call path, so results that must stay
	// live across a nested query never share backing: availOut carries
	// processNode's candidate set, priBuf the one priority() ranks
	// with, and tAvail the partner set partnerStillPossible consults
	// while availOut is still being screened. hrBuf holds honoringRegs
	// results (always consumed before the next preference is
	// classified), and candA/candB ping-pong as chooseReg's screening
	// write targets — the invariant there is that the current candidate
	// set never aliases the buffer being written.
	availMask []bool
	availOut  []int
	priBuf    []int
	tAvail    []int
	hrBuf     []int
	candA     []int
	candB     []int
	strengths []float64
	honorable []rankedPref
	deferred  []*Pref

	// Recolor-fixup scratch (see recolor.go): candidate moves, the
	// per-color occupancy bitsets, the copy-component CSR buckets, and
	// the reusable plan overlays.
	rcMoves     []recolorCand
	rcSeen      map[[2]ig.NodeID]bool
	rcColorBits []uint64
	rcCompOff   []int32
	rcCompNext  []int32
	rcCompMem   []ig.NodeID
	rcPlan      planOverlay
	rcBest      planOverlay
}

// rankedPref pairs a preference with its current honoring strength for
// chooseReg's strongest-first screening order.
type rankedPref struct {
	p  *Pref
	st float64
}

func newSelector(ctx *regalloc.Context, rpg *RPG, cpg *CPG, mode Mode) *selector {
	return newSelectorIn(nil, ctx, rpg, cpg, mode)
}

// newSelectorIn initializes s (or a fresh selector when s is nil) for
// one round, reusing every per-node slice the previous round left
// behind. A recycled selector starts from the same observable state as
// a brand-new one.
func newSelectorIn(s *selector, ctx *regalloc.Context, rpg *RPG, cpg *CPG, mode Mode) *selector {
	if s == nil {
		s = &selector{}
	}
	g := ctx.Graph
	n := g.NumNodes()
	s.ctx, s.rpg, s.cpg, s.mode = ctx, rpg, cpg, mode
	s.ab = Ablation{}
	s.refSelect = false
	s.nProcessed = 0

	s.color = scratch.Fill(s.color, n, -1)
	for i := 0; i < g.NumPhys(); i++ {
		s.color[i] = i
	}
	s.spilled = scratch.Slice(s.spilled, n)
	s.processed = scratch.Slice(s.processed, n)
	s.predCount = scratch.Slice(s.predCount, n)
	s.readyBits = scratch.Slice(s.readyBits, (n+63)/64)
	s.readyCount = 0
	s.heap = s.heap[:0]
	s.compArena = s.compArena[:0]
	s.initForbid(g, ctx.K())

	if cap(s.comp) < n {
		s.comp = make([]int32, n)
	}
	s.comp = s.comp[:n]
	for i := range s.comp {
		s.comp[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for s.comp[x] != x {
			s.comp[x] = s.comp[s.comp[x]]
			x = s.comp[x]
		}
		return x
	}
	for _, m := range g.Moves() {
		if !g.OrigInterferes(m.X, m.Y) {
			rx, ry := find(int32(m.X)), find(int32(m.Y))
			if rx != ry {
				s.comp[ry] = rx
			}
		}
	}
	// Count rows must read as nil until a component's first grant, so
	// recycled rows are dropped rather than cleared.
	s.compColors = scratch.Slice(s.compColors, n)
	for i := 0; i < g.NumPhys(); i++ {
		s.noteCompColor(ig.NodeID(i), i)
	}

	s.priVal = scratch.Slice(s.priVal, n)
	s.priOK = scratch.Slice(s.priOK, n)
	s.prefSources = scratch.Rows(s.prefSources, n)
	for i := 0; i < rpg.NumPrefs(); i++ {
		p := rpg.Pref(i)
		if p.To >= 0 {
			s.prefSources[p.To] = append(s.prefSources[p.To], p.From)
		}
	}
	return s
}

func (s *selector) compOf(n ig.NodeID) int32 {
	x := int32(n)
	for s.comp[x] != x {
		s.comp[x] = s.comp[s.comp[x]]
		x = s.comp[x]
	}
	return x
}

// noteCompColor records that node n's component now holds register c.
// Count rows are carved out of a selector-owned arena so the per-
// component allocations don't recur every round; a row handed out
// before an arena growth stays valid in the old backing.
func (s *selector) noteCompColor(n ig.NodeID, c int) {
	comp := s.compOf(n)
	counts := s.compColors[comp]
	if counts == nil {
		size := s.ctx.Graph.NumPhys()
		if k := s.ctx.K(); k > size {
			size = k
		}
		off, need := len(s.compArena), len(s.compArena)+size
		if cap(s.compArena) < need {
			grown := make([]int, need, 2*need)
			copy(grown, s.compArena[:off])
			s.compArena = grown
		} else {
			s.compArena = s.compArena[:need]
			clear(s.compArena[off:need])
		}
		counts = s.compArena[off:need:need]
		s.compColors[comp] = counts
	}
	if c < len(counts) {
		counts[c]++
	}
}

// run processes every web node in a CPG-respecting order and returns
// the round's result.
func (s *selector) run() (*regalloc.Result, error) {
	g, tel := s.ctx.Graph, s.ctx.Telemetry
	numWebs := g.NumWebs()

	sp := tel.Begin()
	// Step 1: Q starts as the successors of Top. The CPG's rows are
	// walked in place (ascending, like Nodes(), and counting needs no
	// sorted order); empty rows — including leftovers from a larger
	// previous round — describe no node and are skipped.
	for i := cpgIdx(0); i < len(s.cpg.succs); i++ {
		if len(s.cpg.succs[i]) == 0 && len(s.cpg.preds[i]) == 0 {
			continue
		}
		n := ig.NodeID(i - 2)
		cnt := 0
		for _, p := range s.cpg.preds[i] {
			if p != Top {
				cnt++
			}
		}
		s.predCount[n] = cnt
		if cnt == 0 {
			s.pushReady(n)
		}
	}

	res := regalloc.NewResult()
	for s.nProcessed < numWebs {
		if tel.Enabled() {
			tel.ObserveReady(s.readyCount)
		}
		n := s.chooseNode()
		if n < 0 {
			return nil, fmt.Errorf("core: CPG traversal stuck with %d of %d nodes processed", s.nProcessed, numWebs)
		}
		s.processNode(n, res)
	}
	tel.End(telemetry.PhaseSelect, sp)
	if !s.ab.NoRecolor {
		sp = tel.Begin()
		s.recolorFixup()
		tel.End(telemetry.PhaseRecolor, sp)
	}
	for n := ig.NodeID(g.NumPhys()); int(n) < g.NumNodes(); n++ {
		if c := s.color[n]; c >= 0 {
			res.Colors[n] = c
		}
	}
	return res, nil
}

// chooseNode is steps 2–3: among ready nodes, pick the one with the
// largest strength differential between its strongest and weakest
// honorable preference (a single preference's differential is its own
// strength — the regret of missing it).
//
// The incremental form works off the lazy max-heap: entries are pushed
// when a node becomes ready and whenever a stale priority is
// recomputed, and validated on pop — an entry for a node that is no
// longer ready, was invalidated since (priOK down), or no longer
// carries the node's current priority is discarded. The heap orders by
// (priority descending, node id ascending), which reproduces exactly
// the winner of the reference's ascending full scan with its strict
// keep-first maximum: highest priority, ties to the lowest node id.
func (s *selector) chooseNode() ig.NodeID {
	if s.refSelect {
		return s.chooseNodeRef()
	}
	if s.ab.FIFOPriority {
		return s.firstReady()
	}
	for len(s.heap) > 0 {
		top := s.heap[0]
		n := top.node
		switch {
		case !s.isReady(n):
			s.heapPop()
		case !s.priOK[n]:
			s.heapPop()
			pri := s.priority(n)
			s.priVal[n], s.priOK[n] = pri, true
			s.heapPush(priEntry{pri: pri, node: n})
		case top.pri != s.priVal[n]:
			// A superseded entry; the recompute that changed priVal
			// pushed a current one, which is still in the heap.
			s.heapPop()
		default:
			return n
		}
	}
	return -1
}

// invalidate drops node n's cached priority. In incremental mode a
// ready n is recomputed and repushed on the spot: priorities can rise
// as well as fall (a deferred preference turning honorable), and a
// risen priority buried in the heap under its old value would pop too
// late — the reference scan, which recomputes every stale ready node
// each pop, sees the rise immediately, so the heap must too. The
// recompute count matches the reference exactly (one per invalidation
// of a ready node); the scan per pop is what the heap saves.
func (s *selector) invalidate(n ig.NodeID) {
	if !s.refSelect && !s.ab.FIFOPriority && s.isReady(n) {
		pri := s.priority(n)
		s.priVal[n], s.priOK[n] = pri, true
		s.heapPush(priEntry{pri: pri, node: n})
		return
	}
	s.priOK[n] = false
}

// invalidateAround drops cached priorities that the (un)coloring of n
// may have changed: interference neighbors (available registers
// changed) and preference partners (a deferred preference may now be
// honorable). The neighbor walk is a closure-free word loop over the
// original adjacency row.
func (s *selector) invalidateAround(n ig.NodeID) {
	for wi, w := range s.ctx.Graph.OrigRow(n) {
		base := ig.NodeID(wi << 6)
		for w != 0 {
			s.invalidate(base + ig.NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	for _, src := range s.prefSources[n] {
		s.invalidate(src)
	}
}

// noteColored is invalidateAround fused with the incremental forbid-
// mask update for the hot path: granting register c to n sets bit c in
// every original neighbor's mask in the same walk that refreshes their
// cached priorities. The mask bit lands before the neighbor's
// recompute, so the recompute reads the post-coloring candidate set —
// the same state the reference's next-pop rebuild reads.
func (s *selector) noteColored(n ig.NodeID, c int) {
	cw, cm := c>>6, uint64(1)<<(uint(c)&63)
	kw := s.kwords
	for wi, w := range s.ctx.Graph.OrigRow(n) {
		base := int(wi << 6)
		for w != 0 {
			nb := base + bits.TrailingZeros64(w)
			s.forbid[nb*kw+cw] |= cm
			s.invalidate(ig.NodeID(nb))
			w &= w - 1
		}
	}
	for _, src := range s.prefSources[n] {
		s.invalidate(src)
	}
}

// noteUncolored is the eviction-path counterpart: n just lost register
// old, so each neighbor's mask keeps bit old only if another of its
// colored neighbors still holds it. The per-neighbor re-derivation is
// the one place a full walk survives — evictions are rare (spill-
// temporary rescue only), and a plain counter per (node, color) would
// cost k counters per node on the hot path to serve it.
func (s *selector) noteUncolored(n ig.NodeID, old int) {
	g := s.ctx.Graph
	ow, om := old>>6, uint64(1)<<(uint(old)&63)
	kw := s.kwords
	for wi, w := range g.OrigRow(n) {
		base := int(wi << 6)
		for w != 0 {
			nb := base + bits.TrailingZeros64(w)
			still := false
			for wj, w2 := range g.OrigRow(ig.NodeID(nb)) {
				base2 := int(wj << 6)
				for w2 != 0 {
					if s.color[base2+bits.TrailingZeros64(w2)] == old {
						still = true
						break
					}
					w2 &= w2 - 1
				}
				if still {
					break
				}
			}
			if !still {
				s.forbid[nb*kw+ow] &^= om
			}
			s.invalidate(ig.NodeID(nb))
			w &= w - 1
		}
	}
	for _, src := range s.prefSources[n] {
		s.invalidate(src)
	}
}

// priority computes the step-2.3/3 strength differential for node n.
// It works out of its own avail buffer (priBuf) because tracing may
// ask for a priority while processNode's candidate sets are still
// live in availOut.
func (s *selector) priority(n ig.NodeID) float64 {
	s.priBuf = s.availRegsInto(s.priBuf[:0], n)
	avail := s.priBuf
	strengths := s.strengths[:0]
	for _, pi := range s.rpg.Prefs(n) {
		p := s.rpg.Pref(pi)
		st, state := s.prefState(p, avail)
		if state == prefHonorable {
			strengths = append(strengths, st)
		}
	}
	s.strengths = strengths
	switch len(strengths) {
	case 0:
		return math.Inf(-1)
	case 1:
		return strengths[0]
	}
	minS, maxS := strengths[0], strengths[0]
	for _, v := range strengths[1:] {
		minS = math.Min(minS, v)
		maxS = math.Max(maxS, v)
	}
	return maxS - minS
}

type prefStatus uint8

const (
	prefHonorable prefStatus = iota // honorable now, with given strength
	prefDeferred                    // target not yet allocated (step 2.2)
	prefDead                        // can never be honored (step 2.1)
)

// prefState classifies preference p for a node whose available
// registers are avail, returning the best honoring strength when
// honorable.
func (s *selector) prefState(p *Pref, avail []int) (float64, prefStatus) {
	g, m := s.ctx.Graph, s.ctx.Machine
	if p.To >= 0 {
		if s.spilled[p.To] {
			return 0, prefDead
		}
		if p.Kind == Coalesce && g.OrigInterferes(p.From, p.To) {
			return 0, prefDead
		}
		if s.color[p.To] < 0 {
			return 0, prefDeferred
		}
	}
	regs := s.honoringRegs(p, avail)
	if len(regs) == 0 {
		return 0, prefDead
	}
	best := math.Inf(-1)
	for _, r := range regs {
		best = math.Max(best, p.StrengthFor(m.IsVolatile(r)))
	}
	return best, prefHonorable
}

// honoringRegs filters avail down to the registers that honor p, in
// the selector's hrBuf (valid until the next honoringRegs call).
func (s *selector) honoringRegs(p *Pref, avail []int) []int {
	s.hrBuf = s.honoringRegsInto(s.hrBuf[:0], p, avail)
	return s.hrBuf
}

// honoringRegsInto appends to out the members of avail that honor p.
// out must not alias avail.
func (s *selector) honoringRegsInto(out []int, p *Pref, avail []int) []int {
	m := s.ctx.Machine
	switch p.Kind {
	case Coalesce:
		tc := s.color[p.To]
		for _, r := range avail {
			if r == tc {
				out = append(out, r)
			}
		}
	case SeqPlus:
		tc := s.color[p.To]
		for _, r := range avail {
			if m.PairOK(r, tc) {
				out = append(out, r)
			}
		}
	case SeqMinus:
		tc := s.color[p.To]
		for _, r := range avail {
			if m.PairOK(tc, r) {
				out = append(out, r)
			}
		}
	case Prefers:
		if p.Allowed != nil {
			for _, r := range avail {
				for _, a := range p.Allowed {
					if r == a {
						out = append(out, r)
						break
					}
				}
			}
			return out
		}
		for _, r := range avail {
			if (p.Class == ClassVolatile) == m.IsVolatile(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// availRegsInto appends step 4.1's candidate set to out: machine
// registers not used by any colored node interfering with n in the
// original graph. The incremental form just reads n's maintained
// forbid mask — free registers are the clear bits, listed ascending
// exactly as the reference's 0..k-1 sweep lists them.
func (s *selector) availRegsInto(out []int, n ig.NodeID) []int {
	if s.refSelect {
		return s.availRegsIntoRef(out, n)
	}
	k, kw := s.ctx.K(), s.kwords
	row := s.forbid[int(n)*kw : int(n)*kw+kw]
	for wi, w := range row {
		base := wi << 6
		hi := k - base
		if hi <= 0 {
			break
		}
		free := ^w
		if hi < 64 {
			free &= 1<<uint(hi) - 1
		}
		for free != 0 {
			out = append(out, base+bits.TrailingZeros64(free))
			free &= free - 1
		}
	}
	return out
}

// initForbid seeds every web's forbidden-register mask with its
// physical neighbors — the only colored nodes at round start — by
// copying the phys-register prefix of the original adjacency row word
// for word (a phys node's color is its own id, and only colors below
// k count).
func (s *selector) initForbid(g *ig.Graph, k int) {
	kw := (k + 63) / 64
	s.kwords = kw
	n := g.NumNodes()
	s.forbid = scratch.Slice(s.forbid, n*kw)
	limit := g.NumPhys()
	if k < limit {
		limit = k
	}
	lw, rem := limit>>6, uint(limit&63)
	for i := g.NumPhys(); i < n; i++ {
		row := g.OrigRow(ig.NodeID(i))
		dst := s.forbid[i*kw : i*kw+kw]
		copy(dst[:lw], row[:lw])
		if rem != 0 {
			dst[lw] = row[lw] & (1<<rem - 1)
		}
	}
}

// availRegs returns n's candidate set in the selector's primary avail
// buffer, valid until the next availRegs call.
func (s *selector) availRegs(n ig.NodeID) []int {
	s.availOut = s.availRegsInto(s.availOut[:0], n)
	return s.availOut
}

// processNode is step 4 plus the §5.4 active spill, followed by
// step 5's edge release.
func (s *selector) processNode(n ig.NodeID, res *regalloc.Result) {
	tel := s.ctx.Telemetry
	s.dropReady(n)
	s.processed[n] = true
	s.nProcessed++

	chosen, active := -1, false
	var avail, cands []int
	switch {
	case s.shouldActivelySpill(n):
		active = true
		s.spilled[n] = true
		res.Spilled = append(res.Spilled, n)
	default:
		avail = s.availRegs(n)
		if len(avail) == 0 && s.isSpillTemp(n) {
			// A spill temporary must not re-enter the spill set: its
			// spill code is what created it, so the driver would spin
			// (CheckResult rejects the cycle). Free a register at a
			// neighbor's expense instead.
			for len(avail) == 0 && s.evictForTemp(n, res) {
				avail = s.availRegs(n)
			}
		}
		if len(avail) == 0 {
			s.spilled[n] = true
			res.Spilled = append(res.Spilled, n)
		} else {
			c, screened := s.chooseReg(n, avail)
			cands = screened
			s.color[n] = c
			s.noteCompColor(n, c)
			chosen = c
		}
	}
	if tel.Enabled() {
		tel.NoteSelection(chosen < 0, active)
		honored := s.tallyPrefs(n, chosen, tel)
		if tel.Tracing() {
			action := "select"
			switch {
			case active:
				action = "active-spill"
			case chosen < 0:
				action = "spill"
			}
			tel.TraceEvent(&telemetry.Event{
				Action: action,
				Node:   int(n),
				Reg:    s.ctx.Graph.RegOf(n).String(),
				Pri:    s.tracePriority(n),
				Avail:  avail, Cands: cands,
				Chosen: chosen, Honored: honored,
			})
		}
	}
	if chosen >= 0 && !s.refSelect {
		s.noteColored(n, chosen)
	} else {
		s.invalidateAround(n)
	}

	// Step 5: release successors. The raw (unsorted) list is fine:
	// each successor is touched once and the decrements commute.
	for _, succ := range s.cpg.succsOf(n) {
		if succ == Bottom {
			continue
		}
		s.predCount[succ]--
		if s.predCount[succ] == 0 && !s.processed[succ] {
			s.pushReady(succ)
		}
	}
}

// tracePriority reports the strength differential that ranked n, for
// telemetry only. Nodes with no honorable preference rank at -Inf,
// which JSON cannot carry; they trace as 0.
func (s *selector) tracePriority(n ig.NodeID) float64 {
	pri := s.priVal[n]
	if !s.priOK[n] {
		pri = s.priority(n)
	}
	if math.IsInf(pri, 0) {
		return 0
	}
	return pri
}

// prefTelemetryClass maps an RPG edge onto telemetry's preference
// axis, splitting Prefers into class and limited-usage edges.
func prefTelemetryClass(p *Pref) telemetry.PrefClass {
	switch p.Kind {
	case Coalesce:
		return telemetry.PrefCoalesce
	case SeqPlus:
		return telemetry.PrefSeqPlus
	case SeqMinus:
		return telemetry.PrefSeqMinus
	}
	if p.Allowed != nil {
		return telemetry.PrefLimit
	}
	return telemetry.PrefRegClass
}

// honorsReg reports whether granting register r honors preference p
// under the current partner colors.
func (s *selector) honorsReg(p *Pref, r int) bool {
	m := s.ctx.Machine
	switch p.Kind {
	case Coalesce:
		return r == s.color[p.To]
	case SeqPlus:
		return m.PairOK(r, s.color[p.To])
	case SeqMinus:
		return m.PairOK(s.color[p.To], r)
	case Prefers:
		if p.Allowed != nil {
			for _, a := range p.Allowed {
				if a == r {
					return true
				}
			}
			return false
		}
		return (p.Class == ClassVolatile) == m.IsVolatile(r)
	}
	return false
}

// tallyPrefs classifies every preference held by n after its decision
// (chosen < 0 means n spilled) into honored/deferred/broken counters,
// returning the honored kind names when tracing wants them. Pure
// observation: it reads the same state the decision read and mutates
// nothing but the collector.
func (s *selector) tallyPrefs(n ig.NodeID, chosen int, tel *telemetry.Collector) []string {
	var honored []string
	for _, pi := range s.rpg.Prefs(n) {
		p := s.rpg.Pref(pi)
		cl := prefTelemetryClass(p)
		if chosen < 0 {
			tel.CountPref(cl, telemetry.Broken)
			continue
		}
		if p.To >= 0 {
			if s.spilled[p.To] || (p.Kind == Coalesce && s.ctx.Graph.OrigInterferes(p.From, p.To)) {
				tel.CountPref(cl, telemetry.Broken)
				continue
			}
			if s.color[p.To] < 0 {
				tel.CountPref(cl, telemetry.Deferred)
				continue
			}
		}
		if s.honorsReg(p, chosen) {
			tel.CountPref(cl, telemetry.Honored)
			if tel.Tracing() {
				honored = append(honored, cl.String())
			}
		} else {
			tel.CountPref(cl, telemetry.Broken)
		}
	}
	return honored
}

// isSpillTemp reports whether n is a web the spiller itself created
// in an earlier round.
func (s *selector) isSpillTemp(n ig.NodeID) bool {
	w := int(n) - s.ctx.Graph.NumPhys()
	return w >= 0 && s.ctx.SpillTemp[w]
}

// evictForTemp frees a register for spill temporary n by spilling the
// cheapest already-colored ordinary neighbor instead. Optimistic
// simplification can leave a temporary stranded behind K colored
// neighbors even though the temporary's range is only a couple of
// instructions; the pressure excess is real, but it is the neighbor —
// whose spill cost is finite — that must pay for it. Removing a color
// never violates an interference constraint, so already-made decisions
// stay valid. Returns false when every interfering color is pinned by
// a physical node or another temporary (no progress possible; the
// caller falls through to the ordinary spill path and CheckResult
// reports the impasse).
func (s *selector) evictForTemp(n ig.NodeID, res *regalloc.Result) bool {
	g := s.ctx.Graph
	best, bestCost := ig.NodeID(-1), math.Inf(1)
	for wi, w := range g.OrigRow(n) {
		base := ig.NodeID(wi << 6)
		for w != 0 {
			nb := base + ig.NodeID(bits.TrailingZeros64(w))
			w &= w - 1
			if g.IsPhys(nb) || s.color[nb] < 0 || s.spilled[nb] || s.isSpillTemp(nb) {
				continue
			}
			if c := g.SpillCost(nb); c < bestCost {
				best, bestCost = nb, c
			}
		}
	}
	if best < 0 {
		return false
	}
	old := s.color[best]
	s.color[best] = -1
	s.spilled[best] = true
	res.Spilled = append(res.Spilled, best)
	if s.refSelect {
		s.invalidateAround(best)
	} else {
		s.noteUncolored(best, old)
	}
	return true
}

// shouldActivelySpill implements §5.4: a node whose strongest
// preference (over everything the RPG knows) is negative would rather
// live in memory. Spill temporaries are exempt.
func (s *selector) shouldActivelySpill(n ig.NodeID) bool {
	if s.mode != FullPreferences || s.ab.NoActiveSpill {
		return false
	}
	w := int(n) - s.ctx.Graph.NumPhys()
	if s.ctx.SpillTemp[w] {
		return false
	}
	prefs := s.rpg.Prefs(n)
	if len(prefs) == 0 {
		return false
	}
	best := math.Inf(-1)
	for _, pi := range prefs {
		best = math.Max(best, s.rpg.Pref(pi).MaxStrength())
	}
	return best < 0
}

// chooseReg is steps 4.2–4.4: screen candidates by honorable
// preferences from strongest to weakest, then keep registers that
// leave deferred live-range-to-live-range preferences honorable, then
// pick. It returns the chosen register and the candidate set that
// survived screening (the trace's "cands").
func (s *selector) chooseReg(n ig.NodeID, avail []int) (int, []int) {
	honorable := s.honorable[:0]
	deferred := s.deferred[:0]
	for _, pi := range s.rpg.Prefs(n) {
		p := s.rpg.Pref(pi)
		st, state := s.prefState(p, avail)
		switch state {
		case prefHonorable:
			honorable = append(honorable, rankedPref{p, st})
		case prefDeferred:
			deferred = append(deferred, p)
		}
	}
	s.honorable, s.deferred = honorable, deferred
	// Stable insertion sort, descending by strength: equal strengths
	// keep RPG order, so this produces exactly the (unique) ordering a
	// stable library sort would — without its reflection allocation.
	for i := 1; i < len(honorable); i++ {
		for j := i; j > 0 && honorable[j].st > honorable[j-1].st; j-- {
			honorable[j], honorable[j-1] = honorable[j-1], honorable[j]
		}
	}

	// The screening passes ping-pong between two write buffers so that
	// cands — which starts as avail and becomes whichever buffer last
	// accepted a filter — never aliases the buffer being written.
	cands := avail
	a, b := s.candA, s.candB
	// Step 4.2: strongest-first screening; a preference that would
	// empty the candidate set is skipped.
	for _, h := range honorable {
		sub := s.honoringRegsInto(a[:0], h.p, cands)
		a = sub
		if len(sub) > 0 {
			cands = sub
			a, b = b, a
		}
	}
	// Step 4.3: avoid registers that make deferred partner
	// preferences impossible.
	if s.ab.NoDeferredScreen {
		deferred = nil
	}
	for _, p := range deferred {
		sub := a[:0]
		for _, r := range cands {
			if s.partnerStillPossible(p, r) {
				sub = append(sub, r)
			}
		}
		a = sub
		if len(sub) > 0 {
			cands = sub
			a, b = b, a
		}
	}
	s.candA, s.candB = a, b
	// Step 4.4: pick. Prefer a register the node's copy component
	// already holds (transitive deferred coalescing); then, in
	// coalesce-only mode, the paper's "non-volatile first" heuristic.
	if counts := s.compColors[s.compOf(n)]; counts != nil {
		best, bestCount := -1, 0
		for _, r := range cands {
			if r < len(counts) && counts[r] > bestCount {
				best, bestCount = r, counts[r]
			}
		}
		if best >= 0 {
			return best, cands
		}
	}
	if s.mode == CoalesceOnly {
		for _, r := range cands {
			if !s.ctx.Machine.IsVolatile(r) {
				return r, cands
			}
		}
	}
	return cands[0], cands
}

// partnerStillPossible reports whether giving n register r leaves the
// deferred preference p (whose target is unallocated) honorable later.
func (s *selector) partnerStillPossible(p *Pref, r int) bool {
	g, m := s.ctx.Graph, s.ctx.Machine
	t := p.To
	// The partner's avail set gets its own buffer: the caller's
	// candidate sets (availOut and the screening buffers) are still
	// live while this query runs.
	s.tAvail = s.availRegsInto(s.tAvail[:0], t)
	tAvail := s.tAvail
	interferes := g.OrigInterferes(p.From, t)
	usable := func(reg int) bool {
		if interferes && reg == r {
			return false
		}
		for _, a := range tAvail {
			if a == reg {
				return true
			}
		}
		return false
	}
	switch p.Kind {
	case Coalesce:
		return usable(r)
	case SeqPlus:
		for reg := 0; reg < s.ctx.K(); reg++ {
			if m.PairOK(r, reg) && usable(reg) {
				return true
			}
		}
	case SeqMinus:
		for reg := 0; reg < s.ctx.K(); reg++ {
			if m.PairOK(reg, r) && usable(reg) {
				return true
			}
		}
	}
	return false
}
