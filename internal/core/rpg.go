// Package core implements the paper's contribution: preference-
// directed graph coloring. A Register Preference Graph (RPG, §5.1)
// records every register preference with cost-model strengths; a
// Coloring Precedence Graph (CPG, §5.2) relaxes the simplification
// stack's total order into a colorability-preserving partial order;
// and the integrated select phase (§5.3) walks the CPG choosing, at
// every step, the ready node with the most at stake and the register
// that honors the most valuable preferences — folding spilling,
// coalescing, and irregular-register handling into one phase (§5.4).
package core

import (
	"fmt"
	"sort"
	"strings"

	"prefcolor/internal/costmodel"
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/scratch"
)

// PrefKind is the paper's preference vocabulary (Figure 7(c)).
type PrefKind uint8

const (
	// Coalesce: use the same register as the destination node.
	Coalesce PrefKind = iota

	// SeqPlus: this node is the first destination of a paired load;
	// its register must pair (machine rule) with the destination
	// node's register, in (this, other) order.
	SeqPlus

	// SeqMinus: this node is the second destination of a paired load;
	// its register must pair with the destination node's register in
	// (other, this) order.
	SeqMinus

	// Prefers: use any register of the preference's class.
	Prefers
)

func (k PrefKind) String() string {
	switch k {
	case Coalesce:
		return "coalesce"
	case SeqPlus:
		return "sequential+"
	case SeqMinus:
		return "sequential-"
	case Prefers:
		return "prefers"
	}
	return "pref?"
}

// Class is the register class of a Prefers edge.
type Class uint8

const (
	// ClassNone marks node-target preferences.
	ClassNone Class = iota
	// ClassVolatile prefers caller-saved registers.
	ClassVolatile
	// ClassNonVolatile prefers callee-saved registers.
	ClassNonVolatile
)

func (c Class) String() string {
	switch c {
	case ClassVolatile:
		return "volatile"
	case ClassNonVolatile:
		return "non-volatile"
	}
	return "none"
}

// Pref is one directed preference edge of the RPG.
type Pref struct {
	// From is the live-range node holding the preference.
	From ig.NodeID

	// To is the destination node for Coalesce/SeqPlus/SeqMinus
	// (a web or a physical-register node); -1 for class preferences.
	To ig.NodeID

	// Class is the register class for Prefers edges.
	Class Class

	// Allowed, when non-nil, restricts a Prefers edge to an explicit
	// register subset — the paper's second preference kind (limited
	// register usage). Class is ClassNone for such edges.
	Allowed []int

	Kind PrefKind

	// StrVol and StrNonVol are the strengths Str(V, P) when the
	// honoring register is volatile respectively non-volatile — the
	// parameterized weights of Figure 7(c) (e.g. the "40/38" coalesce
	// edge).
	StrVol    float64
	StrNonVol float64

	// Savings is the structural Ideal_Inst_Cost reduction honoring
	// the preference buys (the copy's weighted cost for Coalesce, the
	// saved load for sequential±, zero for class preferences). It is
	// the residence-independent part of the strength, which is what
	// recoloring decisions compare.
	Savings float64
}

// StrengthFor returns the strength of honoring the preference with a
// register of the given volatility.
func (p *Pref) StrengthFor(volatile bool) float64 {
	if volatile {
		return p.StrVol
	}
	return p.StrNonVol
}

// MaxStrength is the best-case strength over register volatilities
// admissible for this preference.
func (p *Pref) MaxStrength() float64 {
	switch p.Class {
	case ClassVolatile:
		return p.StrVol
	case ClassNonVolatile:
		return p.StrNonVol
	}
	if p.StrVol > p.StrNonVol {
		return p.StrVol
	}
	return p.StrNonVol
}

// String renders the edge for debugging and golden tests.
func (p *Pref) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v", p.Kind, p.From)
	if p.To >= 0 {
		fmt.Fprintf(&b, " -> node %v", p.To)
	} else {
		fmt.Fprintf(&b, " -> class %v", p.Class)
	}
	fmt.Fprintf(&b, " (vol:%.6g, n-vol:%.6g)", p.StrVol, p.StrNonVol)
	return b.String()
}

// RPG is the Register Preference Graph: preferences indexed by their
// holder (a node-id-indexed slice, grown on demand).
type RPG struct {
	prefs  []Pref
	byNode [][]int
}

// Prefs returns the indices of the preferences held by node n.
func (r *RPG) Prefs(n ig.NodeID) []int {
	if int(n) < len(r.byNode) {
		return r.byNode[n]
	}
	return nil
}

// Pref returns the preference with index i.
func (r *RPG) Pref(i int) *Pref { return &r.prefs[i] }

// NumPrefs returns the total preference count.
func (r *RPG) NumPrefs() int { return len(r.prefs) }

// add appends a preference and indexes it.
func (r *RPG) add(p Pref) {
	for int(p.From) >= len(r.byNode) {
		r.byNode = append(r.byNode, nil)
	}
	r.byNode[p.From] = append(r.byNode[p.From], len(r.prefs))
	r.prefs = append(r.prefs, p)
}

// Mode selects which preference kinds the allocator honors.
type Mode uint8

const (
	// CoalesceOnly builds an RPG holding nothing but coalesce
	// preferences — the §6.1 configuration ("only coalescing").
	CoalesceOnly Mode = iota

	// FullPreferences builds the complete RPG: coalescing, paired
	// loads, dedicated registers, and volatile/non-volatile class
	// preferences — the §6.2 "full preference" configuration.
	FullPreferences
)

// BuildRPG constructs the Register Preference Graph for the current
// round, deriving every strength from the Appendix cost model.
func BuildRPG(ctx *regalloc.Context, mode Mode) *RPG {
	return BuildRPGInto(nil, ctx, mode)
}

// BuildRPGInto is BuildRPG reusing r's edge and index storage (nil r
// allocates fresh). The rebuilt graph is identical to a fresh one; only
// the backing arrays survive.
func BuildRPGInto(r *RPG, ctx *regalloc.Context, mode Mode) *RPG {
	g, costs := ctx.Graph, ctx.Costs
	if r == nil {
		r = &RPG{}
	}
	r.prefs = r.prefs[:0]
	r.byNode = scratch.Rows(r.byNode, g.NumNodes())

	strengths := func(n ig.NodeID, savings float64) (sv, snv float64) {
		w := int(n) - g.NumPhys()
		return costs.Str(w, true, savings), costs.Str(w, false, savings)
	}

	// Coalesce preferences from copies: both web endpoints want the
	// other's register; the savings is the copy's weighted cost.
	for _, m := range g.Moves() {
		for _, dir := range [2][2]ig.NodeID{{m.X, m.Y}, {m.Y, m.X}} {
			from, to := dir[0], dir[1]
			if g.IsPhys(from) {
				continue
			}
			// Savings: the copy's Inst_Cost (1) times its frequency.
			sv, snv := strengths(from, m.Weight)
			r.add(Pref{From: from, To: to, Kind: Coalesce, StrVol: sv, StrNonVol: snv, Savings: m.Weight})
		}
	}

	if mode == CoalesceOnly {
		return r
	}

	// Paired-load preferences (sequential±).
	pairs := costmodel.FindLoadPairs(ctx.F, ctx.Machine, ctx.Loops)
	for _, p := range pairs {
		n1, n2 := g.NodeOf(p.Dst1), g.NodeOf(p.Dst2)
		if n1 == n2 {
			continue
		}
		if !g.IsPhys(n1) {
			sv, snv := strengths(n1, p.Weight)
			r.add(Pref{From: n1, To: n2, Kind: SeqPlus, StrVol: sv, StrNonVol: snv, Savings: p.Weight})
		}
		if !g.IsPhys(n2) {
			sv, snv := strengths(n2, p.Weight)
			r.add(Pref{From: n2, To: n1, Kind: SeqMinus, StrVol: sv, StrNonVol: snv, Savings: p.Weight})
		}
	}

	// Limited register usages (second preference kind): one Prefers
	// edge with an explicit register set per (web, allowed-set),
	// weighted by the total fixup cost the limit avoids. Sites are
	// accumulated in first-occurrence order — emitting preferences in
	// map-iteration order here used to be a source of run-to-run
	// nondeterminism on machines with limits.
	type limitEntry struct {
		n      ig.NodeID
		setKey string
		set    []int
		weight float64
	}
	var entries []limitEntry
	for _, site := range costmodel.FindLimitSites(ctx.F, ctx.Machine, ctx.Loops) {
		if !site.Reg.IsVirt() {
			continue
		}
		n, setKey := g.NodeOf(site.Reg), fmt.Sprint(site.Allowed)
		found := false
		for i := range entries {
			if entries[i].n == n && entries[i].setKey == setKey {
				entries[i].weight += site.Weight
				found = true
				break
			}
		}
		if !found {
			entries = append(entries, limitEntry{n: n, setKey: setKey, set: site.Allowed, weight: site.Weight})
		}
	}
	for _, e := range entries {
		sv, snv := strengths(e.n, e.weight)
		r.add(Pref{
			From: e.n, To: -1, Kind: Prefers,
			Allowed: e.set,
			StrVol:  sv, StrNonVol: snv, Savings: e.weight,
		})
	}

	// Class preferences: every web gets a volatile and a non-volatile
	// preference whose strengths are the plain residence benefits.
	for w := 0; w < g.NumWebs(); w++ {
		n := ig.NodeID(g.NumPhys() + w)
		sv, snv := strengths(n, 0)
		r.add(Pref{From: n, To: -1, Kind: Prefers, Class: ClassVolatile, StrVol: sv, StrNonVol: snv})
		r.add(Pref{From: n, To: -1, Kind: Prefers, Class: ClassNonVolatile, StrVol: sv, StrNonVol: snv})
	}
	return r
}

// DumpRPG renders the graph deterministically for golden tests.
func DumpRPG(r *RPG, g *ig.Graph) string {
	var lines []string
	for i := range r.prefs {
		p := &r.prefs[i]
		from := g.RegOf(p.From).String()
		to := "-"
		switch {
		case p.To >= 0:
			to = g.RegOf(p.To).String()
		case p.Allowed != nil:
			to = fmt.Sprintf("regs%v", p.Allowed)
		default:
			to = p.Class.String()
		}
		lines = append(lines, fmt.Sprintf("%s: %s -> %s (vol:%.6g, n-vol:%.6g)", p.Kind, from, to, p.StrVol, p.StrNonVol))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
