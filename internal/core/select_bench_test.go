package core

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// selBenchSetup builds everything the selection phase consumes — a
// renumbered function, its context, the RPG, the simplification stack,
// and the CPG — so benchmarks can time selection in isolation.
func selBenchSetup(b *testing.B) (*regalloc.Context, *target.Machine) {
	profile := workload.Profile{
		Name: "selbench", Funcs: 1, Stmts: 256, MaxDepth: 3,
		LoopProb: 0.12, IfProb: 0.14, CallProb: 0.06, PairProb: 0.08,
		StoreProb: 0.10, Vars: 96, Params: 4,
	}
	m := target.UsageModel(16)
	f := workload.GenerateRawFunc(profile, m, 7)
	if _, err := ig.Renumber(f); err != nil {
		b.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, m, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, m
}

// BenchmarkSelectLarge times one full §5.3 selection pass (ready-set
// maintenance, priority ordering, register choice, deferred
// coalescing, recoloring) over a large graph. Simplification empties
// the graph and selection refills it, so each iteration rebuilds the
// pre-selection state off the clock.
func BenchmarkSelectLarge(b *testing.B) {
	ctx, m := selBenchSetup(b)
	f := ctx.F
	k := m.NumRegs
	cs := &coreScratch{}
	var ws regalloc.Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx, err := regalloc.NewContextIn(&ws, f, m, nil)
		if err != nil {
			b.Fatal(err)
		}
		rpg := BuildRPGInto(&cs.rpg, ctx, FullPreferences)
		stack, potential := simplifyOptimisticInto(cs, ctx.Graph, k)
		if err := buildCPGInto(&cs.cpg, ctx.Graph, stack, potential, k); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s := newSelectorIn(&cs.sel, ctx, rpg, &cs.cpg, FullPreferences)
		if _, err := s.run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriorityRecompute times the strength-differential priority
// function itself — the computation the incremental selector's
// forbidden-register masks exist to keep cheap — swept over every web
// node of a freshly initialized selector.
func BenchmarkPriorityRecompute(b *testing.B) {
	ctx, m := selBenchSetup(b)
	k := m.NumRegs
	cs := &coreScratch{}
	rpg := BuildRPGInto(&cs.rpg, ctx, FullPreferences)
	stack, potential := simplifyOptimisticInto(cs, ctx.Graph, k)
	if err := buildCPGInto(&cs.cpg, ctx.Graph, stack, potential, k); err != nil {
		b.Fatal(err)
	}
	s := newSelectorIn(&cs.sel, ctx, rpg, &cs.cpg, FullPreferences)
	g := ctx.Graph
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < g.NumWebs(); w++ {
			sink += s.priority(ig.NodeID(g.NumPhys() + w))
		}
	}
	benchSink = sink
}

var benchSink float64
