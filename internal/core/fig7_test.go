package core

import (
	"strings"
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// fig7Source is the paper's Figure 7(a) sample code, transcribed with
// our conventions: the paper's r1 (first argument and return register)
// is our r0, its r2 (second argument) our r1, its non-volatile r3 our
// r2.
//
//	i0: v0 = [arg0]
//	i1: L1: v1 = [v0]
//	i2: v2 = [v0+4]
//	i3: v3 = v0
//	i4: v4 = v1 + v2
//	i5: arg0 = v3
//	i6: call
//	i7: v0 = v4+1
//	i8: if v0 != 0 goto L1
//	i9: ret
const fig7Source = `
func fig7() {
b0:
  v0 = load r0, 0
  jump b1
b1:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = move v0
  v4 = add v1, v2
  r0 = move v3
  call @f r0
  v0 = addimm v4, 1
  branch v0, b1, b2
b2:
  ret
}
`

// fig7Context renumbers the sample and builds the analyses on the
// three-register machine. Web numbering comes out the identity
// (v0..v4 are webs 0..4).
func fig7Context(t *testing.T) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(fig7Source)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	ctx, err := regalloc.NewContext(f, target.Figure7Machine(), nil)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

func node(ctx *regalloc.Context, w int) ig.NodeID {
	return ctx.Graph.NodeOf(ir.Virt(w))
}

// TestFigure7Interference checks the interference graph of Figure
// 7(b) as reconstructed in DESIGN.md: edges v0–v1, v0–v2, v1–v2,
// v1–v3, v2–v3, v3–v4, and v4 against both volatile registers (it is
// live across the call).
func TestFigure7Interference(t *testing.T) {
	ctx := fig7Context(t)
	g := ctx.Graph
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}
	for _, e := range wantEdges {
		if !g.Interferes(node(ctx, e[0]), node(ctx, e[1])) {
			t.Errorf("v%d and v%d must interfere", e[0], e[1])
		}
	}
	wantAbsent := [][2]int{{0, 3}, {0, 4}, {1, 4}, {2, 4}}
	for _, e := range wantAbsent {
		if g.Interferes(node(ctx, e[0]), node(ctx, e[1])) {
			t.Errorf("v%d and v%d must not interfere", e[0], e[1])
		}
	}
	for _, vol := range []int{0, 1} {
		if !g.Interferes(node(ctx, 4), ig.NodeID(vol)) {
			t.Errorf("v4 must interfere with volatile r%d (call clobber)", vol)
		}
	}
	if g.Interferes(node(ctx, 4), ig.NodeID(2)) {
		t.Error("v4 must not interfere with non-volatile r2")
	}
}

// TestFigure7RPGStrengths checks every strength the paper prints in
// Figure 7(c): the v3→v0 coalesce edge at 40/38, the v1/v2 sequential
// edges at 50/48, and v4's non-volatile preference at 28.
func TestFigure7RPGStrengths(t *testing.T) {
	ctx := fig7Context(t)
	rpg := BuildRPG(ctx, FullPreferences)

	find := func(from int, kind PrefKind, to ig.NodeID, class Class) *Pref {
		t.Helper()
		for _, pi := range rpg.Prefs(node(ctx, from)) {
			p := rpg.Pref(pi)
			if p.Kind == kind && p.To == to && p.Class == class {
				return p
			}
		}
		t.Fatalf("no %v preference from v%d to %v/%v\nRPG:\n%s", kind, from, to, class, DumpRPG(rpg, ctx.Graph))
		return nil
	}

	// v3 coalesce v0: 40 volatile / 38 non-volatile.
	p := find(3, Coalesce, node(ctx, 0), ClassNone)
	if p.StrVol != 40 || p.StrNonVol != 38 {
		t.Errorf("v3 coalesce v0 = %v/%v, want 40/38", p.StrVol, p.StrNonVol)
	}
	// v3 coalesce arg0 (r0): same strengths.
	p = find(3, Coalesce, ig.NodeID(0), ClassNone)
	if p.StrVol != 40 || p.StrNonVol != 38 {
		t.Errorf("v3 coalesce r0 = %v/%v, want 40/38", p.StrVol, p.StrNonVol)
	}
	// v1 sequential+ v2 and v2 sequential- v1: 50/48.
	p = find(1, SeqPlus, node(ctx, 2), ClassNone)
	if p.StrVol != 50 || p.StrNonVol != 48 {
		t.Errorf("v1 seq+ v2 = %v/%v, want 50/48", p.StrVol, p.StrNonVol)
	}
	p = find(2, SeqMinus, node(ctx, 1), ClassNone)
	if p.StrVol != 50 || p.StrNonVol != 48 {
		t.Errorf("v2 seq- v1 = %v/%v, want 50/48", p.StrVol, p.StrNonVol)
	}
	// v4 prefers non-volatile at 28 (and volatile residence is worth
	// exactly 0: three save/restore units per loop iteration eat the
	// whole benefit).
	p = find(4, Prefers, -1, ClassNonVolatile)
	if p.StrNonVol != 28 {
		t.Errorf("v4 prefers non-volatile = %v, want 28", p.StrNonVol)
	}
	p = find(4, Prefers, -1, ClassVolatile)
	if p.StrVol != 0 {
		t.Errorf("v4 prefers volatile = %v, want 0", p.StrVol)
	}
}

// TestFigure7CPG feeds the construction the exact stack of Figure
// 7(d) — removal order v0, v4, v1, v2, v3 — and expects the CPG of
// Figure 7(e): top→{v1,v2,v3}, v1→v0, v2→v0, v3→v4, v0→bottom,
// v4→bottom.
func TestFigure7CPG(t *testing.T) {
	ctx := fig7Context(t)
	g := ctx.Graph
	stack := []ig.NodeID{node(ctx, 0), node(ctx, 4), node(ctx, 1), node(ctx, 2), node(ctx, 3)}
	cpg, err := BuildCPG(g, stack, nil, 3)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	want := strings.TrimSpace(`
top -> v1
top -> v2
top -> v3
v0 -> bottom
v1 -> v0
v2 -> v0
v3 -> v4
v4 -> bottom
`)
	if got := cpg.Dump(g); got != want {
		t.Errorf("CPG mismatch.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestFigure7CPGRelaxed checks the K≥4 CPG of Figure 7(f): with four
// colors every node is initially removable, so the order collapses to
// top→each→bottom.
func TestFigure7CPGFourColors(t *testing.T) {
	f := ir.MustParse(fig7Source)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatalf("Renumber: %v", err)
	}
	m := target.Figure7Machine()
	m.NumRegs = 4
	m.Volatile = []bool{true, true, false, false}
	ctx, err := regalloc.NewContext(f, m, nil)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	g := ctx.Graph
	stack := []ig.NodeID{node(ctx, 0), node(ctx, 4), node(ctx, 1), node(ctx, 2), node(ctx, 3)}
	cpg, err := BuildCPG(g, stack, nil, 4)
	if err != nil {
		t.Fatalf("BuildCPG: %v", err)
	}
	for w := 0; w < 5; w++ {
		n := node(ctx, w)
		if !cpg.HasEdge(Top, n) {
			t.Errorf("K=4: want top -> v%d", w)
		}
		if !cpg.HasEdge(n, Bottom) {
			t.Errorf("K=4: want v%d -> bottom", w)
		}
		if len(cpg.Preds(n)) != 1 || len(cpg.Succs(n)) != 1 {
			t.Errorf("K=4: v%d should have exactly top and bottom as neighbors", w)
		}
	}
}

// TestFigure7Assignment runs the full allocator and expects exactly
// the register selection of Figure 7(g): v0→r0, v1→r1, v2→r2 (paired
// load honored with different parity), v3→r0 (both copies coalesced
// away), v4→r2 (non-volatile preference honored).
func TestFigure7Assignment(t *testing.T) {
	ctx := fig7Context(t)
	res, err := New().Allocate(ctx)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatalf("CheckResult: %v", err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v, want none", res.Spilled)
	}
	want := map[int]int{0: 0, 1: 1, 2: 2, 3: 0, 4: 2}
	for w, reg := range want {
		got, ok := res.ColorOf(ctx.Graph, node(ctx, w))
		if !ok || got != reg {
			t.Errorf("v%d -> r%d (ok=%v), want r%d", w, got, ok, reg)
		}
	}
}

// TestFigure7FinalCode runs the driver end to end and checks the
// shape of Figure 7(h): both copies deleted, no spill code, the
// paired load on different-parity registers, and semantic
// equivalence under call clobbering.
func TestFigure7FinalCode(t *testing.T) {
	f := ir.MustParse(fig7Source)
	m := target.Figure7Machine()
	out, stats, err := regalloc.Run(f, m, New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MovesRemaining != 0 || stats.MovesEliminated != 2 {
		t.Errorf("moves: eliminated %d remaining %d, want 2/0", stats.MovesEliminated, stats.MovesRemaining)
	}
	if stats.SpillInstrs() != 0 {
		t.Errorf("spill instructions = %d, want 0", stats.SpillInstrs())
	}
	if stats.CallerSaveStores != 0 {
		t.Errorf("caller saves = %d, want 0 (v4 is in a non-volatile register)", stats.CallerSaveStores)
	}
	// The two loop loads must form a legal pair.
	loop := out.Blocks[1]
	var loads []ir.Instr
	for _, in := range loop.Instrs {
		if in.Op == ir.Load {
			loads = append(loads, in)
		}
	}
	if len(loads) != 2 {
		t.Fatalf("loop has %d loads, want 2:\n%s", len(loads), out)
	}
	if !m.PairOK(loads[0].Defs[0].PhysNum(), loads[1].Defs[0].PhysNum()) {
		t.Errorf("paired load destinations %v, %v violate the pair rule", loads[0].Defs[0], loads[1].Defs[0])
	}
	// Equivalence: seed r0 with an address; the loop runs until the
	// chained loads hit a zero... the interpreter's synthetic memory
	// never returns 0 for the addresses involved, so bound the check
	// to the clobber-visible first iterations via MaxSteps and accept
	// the step-budget error on both sides equally. Simpler: compare a
	// bounded prefix by limiting steps identically.
	in1, e1 := ir.Interp(f, map[ir.Reg]int64{ir.Phys(0): 1000}, ir.InterpOptions{CallClobbers: m.CallClobbers(), MaxSteps: 200})
	in2, e2 := ir.Interp(out, map[ir.Reg]int64{ir.Phys(0): 1000}, ir.InterpOptions{CallClobbers: m.CallClobbers(), MaxSteps: 200})
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("interp termination differs: %v vs %v", e1, e2)
	}
	if e1 == nil && (in1.Ret != in2.Ret || in1.HasRet != in2.HasRet) {
		t.Errorf("results differ: %+v vs %+v", in1, in2)
	}
}
