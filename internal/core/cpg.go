package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"prefcolor/internal/ig"
	"prefcolor/internal/scratch"
)

// Top and Bottom are the CPG's order-boundary pseudo-nodes. An edge
// a→b means a must be colored no later than b becomes colorable; Top
// precedes everything it points to, Bottom follows everything pointing
// to it.
const (
	Top    ig.NodeID = -1
	Bottom ig.NodeID = -2
)

// cpgIdx maps a node id to its slot in the CPG's slice-indexed
// storage: Bottom and Top occupy the first two slots, real nodes
// follow at id+2.
func cpgIdx(n ig.NodeID) int { return int(n) + 2 }

// CPG is the Coloring Precedence Graph (§5.2): the partial order on
// register-selection obtained by relaxing the simplification stack's
// total order without giving up the colorability the stack guarantees.
// Successor and predecessor lists are slices indexed by node id + 2
// (dense, like everything downstream of the renumbered graph), grown
// on demand.
type CPG struct {
	succs [][]ig.NodeID
	preds [][]ig.NodeID

	// Positional back-pointers pairing the two views of each edge:
	// succPos[a][j] is the index of a's entry in preds[b] for the edge
	// a→b = succs[a][j], and predPos mirrors it. They make removeEdge a
	// pair of O(1) swap-removes — without them the removal had to
	// re-find a by scanning preds[b], and preds[Bottom] holds nearly
	// every node, so each transitive-reduction prune paid a full pass
	// over that row. Nothing downstream reads row order (selection
	// counts rows and walks nodes in ascending id; Succs/Preds/Dump
	// sort), so swap-remove is observationally free.
	succPos [][]int32
	predPos [][]int32

	// Epoch-marked visited buffer for reachability queries, indexed
	// like succs/preds, plus reusable DFS scratch space.
	visitMark  []uint32
	visitEpoch uint32
	work       []ig.NodeID
	scratch    []ig.NodeID

	// Construction-only scratch, reused across rebuilds of this CPG
	// (buildCPGInto): stack membership as a bitset shaped like the
	// graph's adjacency rows (so degree restriction is a word-AND and
	// popcount against OrigRow), WIG degrees, CPG membership,
	// readiness, and the per-pop remaining-neighbor list.
	presentBits []uint64
	wigDeg      []int
	inCPG       []bool
	ready       []bool
	remaining   []ig.NodeID
}

// reset empties the graph for a rebuild while keeping every backing
// array. Edge rows are truncated in place, the visit marks return to a
// fresh epoch-zero state, and the next build starts from the exact
// observable state of a zero-valued CPG.
func (c *CPG) reset() {
	for i := range c.succs {
		c.succs[i] = c.succs[i][:0]
		c.preds[i] = c.preds[i][:0]
		c.succPos[i] = c.succPos[i][:0]
		c.predPos[i] = c.predPos[i][:0]
	}
	clear(c.visitMark)
	c.visitEpoch = 0
}

// ensure grows the edge storage to cover slot i.
func (c *CPG) ensure(i int) {
	for i >= len(c.succs) {
		c.succs = append(c.succs, nil)
		c.preds = append(c.preds, nil)
		c.succPos = append(c.succPos, nil)
		c.predPos = append(c.predPos, nil)
	}
	for i >= len(c.visitMark) {
		c.visitMark = append(c.visitMark, 0)
	}
}

// succsOf returns n's successor list (nil when n has none).
func (c *CPG) succsOf(n ig.NodeID) []ig.NodeID {
	if i := cpgIdx(n); i < len(c.succs) {
		return c.succs[i]
	}
	return nil
}

// predsOf returns n's predecessor list (nil when n has none).
func (c *CPG) predsOf(n ig.NodeID) []ig.NodeID {
	if i := cpgIdx(n); i < len(c.preds) {
		return c.preds[i]
	}
	return nil
}

// BuildCPG runs the paper's nine-step construction.
//
// stack is the simplification stack in removal order (stack[0] was
// removed first — the paper's RS pops in exactly this order);
// potentialSpill, indexed by node id, marks the stack entries that
// were removed at significant degree (optimistic simplification's
// "spilled" marks). The working interference graph is the original
// graph minus its physical nodes, per step 2.
func BuildCPG(g *ig.Graph, stack []ig.NodeID, potentialSpill []bool, k int) (*CPG, error) {
	c := &CPG{}
	if err := buildCPGInto(c, g, stack, potentialSpill, k); err != nil {
		return nil, err
	}
	return c, nil
}

// buildCPGInto is BuildCPG targeting a caller-owned (possibly
// previously used) CPG: the graph is reset and rebuilt in its existing
// storage, and all construction scratch lives on the CPG itself.
func buildCPGInto(c *CPG, g *ig.Graph, stack []ig.NodeID, potentialSpill []bool, k int) error {
	c.reset()
	c.ensure(cpgIdx(ig.NodeID(g.NumNodes() - 1)))

	c.presentBits = scratch.Slice(c.presentBits, g.WordsPerRow())
	present := c.presentBits
	for _, n := range stack {
		if g.IsPhys(n) {
			return fmt.Errorf("core.BuildCPG: physical node %d on the stack", n)
		}
		if present[int(n)>>6]&(1<<(uint(n)&63)) != 0 {
			return fmt.Errorf("core.BuildCPG: node %d on the stack twice", n)
		}
		present[int(n)>>6] |= 1 << (uint(n) & 63)
	}

	// WIG degrees: original adjacency restricted to stack (web) nodes —
	// per node, one AND-and-popcount pass over the row instead of a
	// closure call per set bit.
	c.wigDeg = scratch.Slice(c.wigDeg, g.NumNodes())
	wigDeg := c.wigDeg
	for _, n := range stack {
		d := 0
		for wi, w := range g.OrigRow(n) {
			d += bits.OnesCount64(w & present[wi])
		}
		wigDeg[n] = d
	}

	c.inCPG = scratch.Slice(c.inCPG, g.NumNodes())
	c.ready = scratch.Slice(c.ready, g.NumNodes())
	inCPG, ready := c.inCPG, c.ready

	// Step 4: initial low-degree nodes (ready) and potential-spill
	// nodes (not ready) hang off Bottom. addEdgeNew is safe here and
	// throughout the replay: every slot was ensured above, and each edge
	// the construction requests is provably new (one Bottom edge per
	// stack node, one pop per node, deduplicated neighbor lists).
	for _, n := range stack {
		switch {
		case wigDeg[n] < k:
			inCPG[n] = true
			c.addEdgeNew(n, Bottom)
			ready[n] = true
		case int(n) < len(potentialSpill) && potentialSpill[n]:
			inCPG[n] = true
			c.addEdgeNew(n, Bottom)
		}
	}

	// Steps 5–9: replay the removal sequence.
	remaining := c.remaining
	defer func() { c.remaining = remaining }()
	for _, n := range stack {
		present[int(n)>>6] &^= 1 << (uint(n) & 63)
		if !inCPG[n] {
			return fmt.Errorf("core.BuildCPG: node %d popped before appearing in the CPG (stack inconsistent with graph)", n)
		}
		// The word loop visits bits in ascending node order, so
		// remaining is already sorted.
		remaining = remaining[:0]
		for wi, w := range g.OrigRow(n) {
			base := ig.NodeID(wi << 6)
			for m := w & present[wi]; m != 0; m &= m - 1 {
				remaining = append(remaining, base+ig.NodeID(bits.TrailingZeros64(m)))
			}
		}

		// Step 6: materialize remaining neighbors.
		for _, nb := range remaining {
			inCPG[nb] = true
		}
		// Step 7: non-ready remaining neighbors must precede n. This
		// is addEdgeReduced specialized to the replay's ordering: every
		// edge inserted so far points at an earlier-popped node and n
		// gains its first in-edges right here, so no path nb⇝n can
		// exist yet and the transitive-skip test is vacuous. What n
		// reaches is likewise fixed for the whole pop (n gains only
		// in-edges, and the removals happen at unpopped nodes n cannot
		// reach), so a single DFS from n serves every neighbor instead
		// of the two DFS walks addEdgeReduced pays per edge.
		sawNonReady := false
		descMarked := false
		for _, nb := range remaining {
			if ready[nb] {
				continue
			}
			sawNonReady = true
			c.addEdgeNew(nb, n)
			succs := c.succsOf(nb)
			if len(succs) == 1 {
				continue
			}
			if !descMarked {
				c.markFrom(n)
				descMarked = true
			}
			// Snapshot-then-find, not index-based removal: repeated
			// swap-removes permute the survivors differently depending
			// on iteration direction, and downstream selection order
			// (hence the golden digests) observes row order.
			c.scratch = append(c.scratch[:0], succs...)
			for _, x := range c.scratch {
				if x != n && c.marked(x) {
					c.removeEdge(nb, x)
				}
			}
		}
		if !sawNonReady {
			c.addEdgeNew(Top, n)
		}
		// Step 8: removal may make neighbors removable.
		for _, nb := range remaining {
			wigDeg[nb]--
			if wigDeg[nb] < k {
				ready[nb] = true
			}
		}
	}
	return nil
}

func (c *CPG) addEdge(a, b ig.NodeID) {
	ai, bi := cpgIdx(a), cpgIdx(b)
	if ai > bi {
		c.ensure(ai)
	} else {
		c.ensure(bi)
	}
	for _, s := range c.succs[ai] {
		if s == b {
			return
		}
	}
	c.addEdgeAt(ai, bi, a, b)
}

// addEdgeNew is addEdge for callers that guarantee both slots exist
// and the edge is absent, skipping the growth and duplicate checks.
// buildCPGInto satisfies both by construction, and the checks were a
// measurable share of its replay loop.
func (c *CPG) addEdgeNew(a, b ig.NodeID) {
	c.addEdgeAt(cpgIdx(a), cpgIdx(b), a, b)
}

func (c *CPG) addEdgeAt(ai, bi int, a, b ig.NodeID) {
	c.succPos[ai] = append(c.succPos[ai], int32(len(c.preds[bi])))
	c.predPos[bi] = append(c.predPos[bi], int32(len(c.succs[ai])))
	c.succs[ai] = append(c.succs[ai], b)
	c.preds[bi] = append(c.preds[bi], a)
}

// removeEdge deletes a→b. Cost: one scan of a's successor row (small —
// bounded by what transitive reduction leaves) plus two swap-removes;
// b's predecessor row, which may be huge (Bottom's holds almost every
// node), is never scanned thanks to the positional back-pointers.
func (c *CPG) removeEdge(a, b ig.NodeID) {
	ai := cpgIdx(a)
	sl := c.succs[ai]
	j := -1
	for idx, s := range sl {
		if s == b {
			j = idx
			break
		}
	}
	if j < 0 {
		return
	}
	c.removeEdgeAt(ai, j)
}

// removeEdgeAt deletes the edge at index j of slot ai's successor row,
// for callers that already know the position.
func (c *CPG) removeEdgeAt(ai, j int) {
	sl := c.succs[ai]
	bi := cpgIdx(sl[j])
	pi := int(c.succPos[ai][j])

	last := len(sl) - 1
	if j != last {
		moved := sl[last] // edge a→moved slides into slot j
		c.predPos[cpgIdx(moved)][c.succPos[ai][last]] = int32(j)
		sl[j] = moved
		c.succPos[ai][j] = c.succPos[ai][last]
	}
	c.succs[ai] = sl[:last]
	c.succPos[ai] = c.succPos[ai][:last]

	pl := c.preds[bi]
	last = len(pl) - 1
	if pi != last {
		moved := pl[last] // edge moved→b slides into slot pi
		c.succPos[cpgIdx(moved)][c.predPos[bi][last]] = int32(pi)
		pl[pi] = moved
		c.predPos[bi][pi] = c.predPos[bi][last]
	}
	c.preds[bi] = pl[:last]
	c.predPos[bi] = c.predPos[bi][:last]
}

// addEdgeReduced adds u→n keeping the graph transitively reduced: the
// edge is skipped if a path u⇝n already exists, and existing edges
// u→x that the new edge makes transitive (n⇝x) are removed. One DFS
// from n marks everything n reaches; testing each successor against
// the marks replaces the per-successor DFS the naive form needs (the
// CPG is a DAG, so edge removals at u cannot change what n reaches).
func (c *CPG) addEdgeReduced(u, n ig.NodeID) {
	if c.reachable(u, n) {
		return
	}
	c.addEdge(u, n)
	succs := c.succsOf(u)
	if len(succs) == 1 {
		return
	}
	c.markFrom(n)
	c.scratch = append(c.scratch[:0], succs...)
	for _, x := range c.scratch {
		if x != n && c.marked(x) {
			c.removeEdge(u, x)
		}
	}
}

// mark records n as visited in the current epoch, reporting whether it
// was newly marked.
func (c *CPG) mark(n ig.NodeID) bool {
	i := cpgIdx(n)
	for i >= len(c.visitMark) {
		c.visitMark = append(c.visitMark, 0)
	}
	if c.visitMark[i] == c.visitEpoch {
		return false
	}
	c.visitMark[i] = c.visitEpoch
	return true
}

// marked reports whether n was visited in the current epoch.
func (c *CPG) marked(n ig.NodeID) bool {
	i := cpgIdx(n)
	return i < len(c.visitMark) && c.visitMark[i] == c.visitEpoch
}

// markFrom starts a fresh epoch and marks every node reachable from a
// (including a itself).
func (c *CPG) markFrom(a ig.NodeID) {
	c.visitEpoch++
	c.mark(a)
	c.work = append(c.work[:0], a)
	for len(c.work) > 0 {
		x := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		for _, s := range c.succsOf(x) {
			if c.mark(s) {
				c.work = append(c.work, s)
			}
		}
	}
}

// reachable reports whether a path a⇝b exists.
func (c *CPG) reachable(a, b ig.NodeID) bool {
	if a == b {
		return true
	}
	c.visitEpoch++
	c.mark(a)
	c.work = append(c.work[:0], a)
	for len(c.work) > 0 {
		x := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		for _, s := range c.succsOf(x) {
			if s == b {
				return true
			}
			if c.mark(s) {
				c.work = append(c.work, s)
			}
		}
	}
	return false
}

// Succs returns the successors of n (sorted copy).
func (c *CPG) Succs(n ig.NodeID) []ig.NodeID {
	out := append([]ig.NodeID(nil), c.succsOf(n)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Preds returns the predecessors of n (sorted copy).
func (c *CPG) Preds(n ig.NodeID) []ig.NodeID {
	out := append([]ig.NodeID(nil), c.predsOf(n)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEdge reports whether the edge a→b is present.
func (c *CPG) HasEdge(a, b ig.NodeID) bool {
	for _, s := range c.succsOf(a) {
		if s == b {
			return true
		}
	}
	return false
}

// Nodes returns every real (non-pseudo) node mentioned by the CPG,
// sorted.
func (c *CPG) Nodes() []ig.NodeID {
	var out []ig.NodeID
	for i := cpgIdx(0); i < len(c.succs); i++ {
		if len(c.succs[i]) > 0 || len(c.preds[i]) > 0 {
			out = append(out, ig.NodeID(i-2))
		}
	}
	return out
}

// Dump renders the CPG deterministically for golden tests, naming
// nodes through the graph's register mapping.
func (c *CPG) Dump(g *ig.Graph) string {
	name := func(n ig.NodeID) string {
		switch n {
		case Top:
			return "top"
		case Bottom:
			return "bottom"
		default:
			return g.RegOf(n).String()
		}
	}
	var lines []string
	emit := func(from ig.NodeID) {
		for _, s := range c.Succs(from) {
			lines = append(lines, fmt.Sprintf("%s -> %s", name(from), name(s)))
		}
	}
	emit(Top)
	for _, n := range c.Nodes() {
		emit(n)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
