package core

import (
	"fmt"
	"sort"
	"strings"

	"prefcolor/internal/ig"
)

// Top and Bottom are the CPG's order-boundary pseudo-nodes. An edge
// a→b means a must be colored no later than b becomes colorable; Top
// precedes everything it points to, Bottom follows everything pointing
// to it.
const (
	Top    ig.NodeID = -1
	Bottom ig.NodeID = -2
)

// CPG is the Coloring Precedence Graph (§5.2): the partial order on
// register-selection obtained by relaxing the simplification stack's
// total order without giving up the colorability the stack guarantees.
type CPG struct {
	succs map[ig.NodeID][]ig.NodeID
	preds map[ig.NodeID][]ig.NodeID

	// Epoch-marked visited buffer for reachability queries, indexed
	// by node id + 2 (Top and Bottom occupy the first two slots).
	visitMark  []uint32
	visitEpoch uint32
}

// BuildCPG runs the paper's nine-step construction.
//
// stack is the simplification stack in removal order (stack[0] was
// removed first — the paper's RS pops in exactly this order);
// potentialSpill marks the stack entries that were removed at
// significant degree (optimistic simplification's "spilled" marks).
// The working interference graph is the original graph minus its
// physical nodes, per step 2.
func BuildCPG(g *ig.Graph, stack []ig.NodeID, potentialSpill map[ig.NodeID]bool, k int) (*CPG, error) {
	c := &CPG{
		succs: map[ig.NodeID][]ig.NodeID{},
		preds: map[ig.NodeID][]ig.NodeID{},
	}

	present := map[ig.NodeID]bool{}
	for _, n := range stack {
		if g.IsPhys(n) {
			return nil, fmt.Errorf("core.BuildCPG: physical node %d on the stack", n)
		}
		if present[n] {
			return nil, fmt.Errorf("core.BuildCPG: node %d on the stack twice", n)
		}
		present[n] = true
	}

	// WIG degrees: original adjacency restricted to stack (web) nodes.
	wigDeg := map[ig.NodeID]int{}
	for n := range present {
		d := 0
		for _, nb := range g.OrigNeighbors(n) {
			if present[nb] {
				d++
			}
		}
		wigDeg[n] = d
	}

	inCPG := map[ig.NodeID]bool{}
	ready := map[ig.NodeID]bool{}
	create := func(n ig.NodeID) {
		if !inCPG[n] {
			inCPG[n] = true
		}
	}

	// Step 4: initial low-degree nodes (ready) and potential-spill
	// nodes (not ready) hang off Bottom.
	for _, n := range stack {
		switch {
		case wigDeg[n] < k:
			create(n)
			c.addEdge(n, Bottom)
			ready[n] = true
		case potentialSpill[n]:
			create(n)
			c.addEdge(n, Bottom)
		}
	}

	// Steps 5–9: replay the removal sequence.
	for _, n := range stack {
		present[n] = false
		if !inCPG[n] {
			return nil, fmt.Errorf("core.BuildCPG: node %d popped before appearing in the CPG (stack inconsistent with graph)", n)
		}
		var remaining []ig.NodeID
		for _, nb := range g.OrigNeighbors(n) {
			if present[nb] {
				remaining = append(remaining, nb)
			}
		}
		sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })

		// Step 6: materialize remaining neighbors.
		for _, nb := range remaining {
			create(nb)
		}
		// Step 7: non-ready remaining neighbors must precede n.
		sawNonReady := false
		for _, nb := range remaining {
			if !ready[nb] {
				sawNonReady = true
				c.addEdgeReduced(nb, n)
			}
		}
		if !sawNonReady {
			c.addEdge(Top, n)
		}
		// Step 8: removal may make neighbors removable.
		for _, nb := range remaining {
			wigDeg[nb]--
			if wigDeg[nb] < k {
				ready[nb] = true
			}
		}
	}
	return c, nil
}

func (c *CPG) addEdge(a, b ig.NodeID) {
	for _, s := range c.succs[a] {
		if s == b {
			return
		}
	}
	c.succs[a] = append(c.succs[a], b)
	c.preds[b] = append(c.preds[b], a)
}

func (c *CPG) removeEdge(a, b ig.NodeID) {
	c.succs[a] = removeFrom(c.succs[a], b)
	c.preds[b] = removeFrom(c.preds[b], a)
}

func removeFrom(s []ig.NodeID, x ig.NodeID) []ig.NodeID {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// addEdgeReduced adds u→n keeping the graph transitively reduced: the
// edge is skipped if a path u⇝n already exists, and existing edges
// u→x that the new edge makes transitive (n⇝x) are removed.
func (c *CPG) addEdgeReduced(u, n ig.NodeID) {
	if c.reachable(u, n) {
		return
	}
	c.addEdge(u, n)
	for _, x := range append([]ig.NodeID(nil), c.succs[u]...) {
		if x == n {
			continue
		}
		if c.reachable(n, x) {
			c.removeEdge(u, x)
		}
	}
}

// reachable reports whether a path a⇝b exists.
func (c *CPG) reachable(a, b ig.NodeID) bool {
	if a == b {
		return true
	}
	c.visitEpoch++
	mark := func(n ig.NodeID) bool { // returns true if newly marked
		i := int(n) + 2
		for i >= len(c.visitMark) {
			c.visitMark = append(c.visitMark, 0)
		}
		if c.visitMark[i] == c.visitEpoch {
			return false
		}
		c.visitMark[i] = c.visitEpoch
		return true
	}
	mark(a)
	work := []ig.NodeID{a}
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range c.succs[x] {
			if s == b {
				return true
			}
			if mark(s) {
				work = append(work, s)
			}
		}
	}
	return false
}

// Succs returns the successors of n (sorted copy).
func (c *CPG) Succs(n ig.NodeID) []ig.NodeID {
	out := append([]ig.NodeID(nil), c.succs[n]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Preds returns the predecessors of n (sorted copy).
func (c *CPG) Preds(n ig.NodeID) []ig.NodeID {
	out := append([]ig.NodeID(nil), c.preds[n]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEdge reports whether the edge a→b is present.
func (c *CPG) HasEdge(a, b ig.NodeID) bool {
	for _, s := range c.succs[a] {
		if s == b {
			return true
		}
	}
	return false
}

// Nodes returns every real (non-pseudo) node mentioned by the CPG,
// sorted.
func (c *CPG) Nodes() []ig.NodeID {
	seen := map[ig.NodeID]bool{}
	for n := range c.succs {
		if n >= 0 {
			seen[n] = true
		}
	}
	for n := range c.preds {
		if n >= 0 {
			seen[n] = true
		}
	}
	var out []ig.NodeID
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dump renders the CPG deterministically for golden tests, naming
// nodes through the graph's register mapping.
func (c *CPG) Dump(g *ig.Graph) string {
	name := func(n ig.NodeID) string {
		switch n {
		case Top:
			return "top"
		case Bottom:
			return "bottom"
		default:
			return g.RegOf(n).String()
		}
	}
	var lines []string
	emit := func(from ig.NodeID) {
		for _, s := range c.Succs(from) {
			lines = append(lines, fmt.Sprintf("%s -> %s", name(from), name(s)))
		}
	}
	emit(Top)
	for _, n := range c.Nodes() {
		emit(n)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
