package core_test

import (
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

var corePrograms = map[string]string{
	"straightline": `
func f(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = mul v2, v0
  v4 = xor v3, v1
  ret v4
}
`,
	"copychain": `
func f(v0) {
b0:
  v1 = move v0
  v2 = move v1
  v3 = add v2, v2
  ret v3
}
`,
	"loop": `
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  jump b1
b1:
  v3 = cmp v2, v0
  branch v3, b2, b3
b2:
  v1 = add v1, v2
  v4 = loadimm 1
  v2 = add v2, v4
  jump b1
b3:
  ret v1
}
`,
	"pressure": `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  v6 = add v0, v5
  v7 = add v1, v2
  v8 = add v7, v3
  v9 = add v8, v4
  v10 = add v9, v5
  v11 = add v10, v6
  ret v11
}
`,
	"calls": `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = call @g v0
  v3 = add v1, v2
  v4 = call @h v3
  v5 = add v1, v4
  ret v5
}
`,
	"pairs": `
func f(v0) {
b0:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v1, v2
  ret v3
}
`,
	"conventions": `
func f() {
b0:
  v0 = move r0
  v1 = move r1
  v2 = mul v0, v1
  r0 = move v2
  v3 = call @g r0
  v4 = add v3, v1
  r0 = move v4
  ret r0
}
`,
}

func checkEquiv(t *testing.T, m *target.Machine, input, output *ir.Func, name string) {
	t.Helper()
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	var inits []map[ir.Reg]int64
	if name == "conventions" {
		inits = []map[ir.Reg]int64{{ir.Phys(0): 6, ir.Phys(1): 7}}
	} else {
		for _, base := range []int64{0, 1, 5, -4} {
			init := map[ir.Reg]int64{}
			for i, p := range input.Params {
				init[p] = base + int64(i)
			}
			inits = append(inits, init)
		}
	}
	for _, init := range inits {
		outInit := make(map[ir.Reg]int64, len(init))
		for r, v := range init {
			mapped := r
			for pi, p := range input.Params {
				if p == r {
					mapped = output.Params[pi]
				}
			}
			outInit[mapped] = v
		}
		a, err := ir.Interp(input, init, opts)
		if err != nil {
			t.Fatalf("%s: interp input: %v", name, err)
		}
		b, err := ir.Interp(output, outInit, opts)
		if err != nil {
			t.Fatalf("%s: interp output: %v", name, err)
		}
		if a.HasRet != b.HasRet || a.Ret != b.Ret || len(a.Stores) != len(b.Stores) {
			t.Errorf("%s: init %v: behavior differs (%v/%d vs %v/%d)\n%s",
				name, init, a.Ret, len(a.Stores), b.Ret, len(b.Stores), output)
		}
	}
}

// TestCoreCorrectnessMatrix: both core modes, several machines, all
// programs — outputs must be valid physical code with unchanged
// semantics.
func TestCoreCorrectnessMatrix(t *testing.T) {
	allocs := []regalloc.Allocator{core.New(), core.NewCoalesceOnly()}
	for _, k := range []int{4, 8, 16, 24} {
		m := target.UsageModel(k)
		for name, src := range corePrograms {
			f := ir.MustParse(src)
			for _, alloc := range allocs {
				out, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
				if err != nil {
					t.Errorf("k=%d %s/%s: %v", k, name, alloc.Name(), err)
					continue
				}
				checkEquiv(t, m, f, out, name)
				if stats.MovesBefore != stats.MovesEliminated+stats.MovesRemaining {
					t.Errorf("k=%d %s/%s: move identity: %+v", k, name, alloc.Name(), stats)
				}
			}
		}
	}
}

func TestCoreCoalescesChains(t *testing.T) {
	f := ir.MustParse(corePrograms["copychain"])
	m := target.UsageModel(16)
	for _, alloc := range []regalloc.Allocator{core.New(), core.NewCoalesceOnly()} {
		_, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		if stats.MovesRemaining != 0 {
			t.Errorf("%s left %d moves", alloc.Name(), stats.MovesRemaining)
		}
	}
}

// TestCoreHonorsNonVolatilePreference: the full allocator keeps
// call-crossing webs out of volatile registers when a non-volatile
// one is free.
func TestCoreHonorsNonVolatilePreference(t *testing.T) {
	f := ir.MustParse(corePrograms["calls"])
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.CallerSaveStores != 0 {
		t.Errorf("full preferences produced %d caller saves; call-crossing webs should sit in non-volatile registers", stats.CallerSaveStores)
	}
}

// TestCoreAvoidsNonVolatileWithoutCalls mirrors the callcost test:
// call-free code should use only volatile registers under full
// preferences.
func TestCoreAvoidsNonVolatileWithoutCalls(t *testing.T) {
	f := ir.MustParse(corePrograms["straightline"])
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.UsedNonVolatile != 0 {
		t.Errorf("used %d non-volatile registers in call-free code", stats.UsedNonVolatile)
	}
}

// TestCorePairedLoadParity: the full allocator must give the two
// paired-load destinations pair-compatible registers.
func TestCorePairedLoadParity(t *testing.T) {
	f := ir.MustParse(corePrograms["pairs"])
	m := target.UsageModel(16)
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var loads []ir.Instr
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Load {
			loads = append(loads, in.Clone())
		}
	})
	if len(loads) != 2 {
		t.Fatalf("%d loads in output", len(loads))
	}
	if !m.PairOK(loads[0].Defs[0].PhysNum(), loads[1].Defs[0].PhysNum()) {
		t.Errorf("paired loads got %v and %v: not pair-compatible", loads[0].Defs[0], loads[1].Defs[0])
	}
}

// TestCoreActiveSpill: a web crossing many hot calls with almost no
// uses is cheaper in memory; the full allocator must spill it even
// though registers are available.
func TestCoreActiveSpill(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = loadimm 3
  jump b1
b1:
  call @g
  call @h
  call @i
  call @j
  v2 = addimm v2, -1
  branch v2, b1, b2
b2:
  ret v1
}
`
	f := ir.MustParse(src)
	// Tiny machine with a single non-volatile register, occupied by
	// making v0 also cross the loop's calls: v1's only refuge would be
	// volatile registers, whose save/restore cost dwarfs its value.
	m := target.UsageModel(4) // r0,r1 volatile; r2,r3 non-volatile
	out, stats, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// v1 crosses 4 calls × freq 10: volatile residence costs 120,
	// non-volatile 2. With two non-volatile registers free it will sit
	// there — unless volatile is the only choice. Either way the
	// allocator must not buy volatile residence at 120 for a value
	// worth ~8: no caller saves for v1-scale webs.
	if stats.CallerSaveStores > 0 {
		t.Errorf("active spill failed: %d caller saves inserted\n%s", stats.CallerSaveStores, out)
	}
	checkEquiv(t, m, f, out, "activespill")
}

// TestCoreFigure5aPathology reproduces Figure 5(a): two paired-load
// destinations are copied into the same-parity argument registers r0
// and r2. Preference-blind coalescing binds v1→r0 and v2→r2 and loses
// the pair; the full allocator must keep the hot pair legal and
// sacrifice the cold copies instead.
func TestCoreFigure5aPathology(t *testing.T) {
	src := `
func f(v0) {
b0:
  v3 = loadimm 0
  v4 = loadimm 2
  jump b1
b1:
  v1 = load v0, 0
  v2 = load v0, 4
  v3 = add v3, v1
  v3 = add v3, v2
  v4 = addimm v4, -1
  branch v4, b1, b2
b2:
  r0 = move v1
  r2 = move v2
  call @g r0, r2
  ret v3
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	out, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var loads []ir.Instr
	out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Op == ir.Load {
			loads = append(loads, in.Clone())
		}
	})
	if len(loads) != 2 {
		t.Fatalf("%d loads in output", len(loads))
	}
	d1, d2 := loads[0].Defs[0].PhysNum(), loads[1].Defs[0].PhysNum()
	if !m.PairOK(d1, d2) {
		t.Errorf("full preferences lost the paired load: destinations r%d, r%d", d1, d2)
	}
	checkEquiv(t, m, f, out, "fig5a")
}
