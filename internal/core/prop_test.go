package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// propProfile generates call-free, convention-free programs so that
// no physical-register interference muddies the CPG colorability
// invariant (see TestPropCPGTopologicalColorability).
var propProfile = workload.Profile{
	Name: "cpgprop", Funcs: 1, Stmts: 16, MaxDepth: 2,
	LoopProb: 0.12, IfProb: 0.16, CallProb: 0, PairProb: 0.05,
	StoreProb: 0.10, Vars: 8, Params: 0,
}

// TestPropCPGTopologicalColorability checks the paper's §5.2 claim:
// "Any topologically-sorted order from the partial order preserves
// its colorability." For random programs and random CPG-respecting
// orders with adversarial (random) color picks, every node that was
// simplified at low degree must still find a free register when its
// turn comes. Optimistically-removed nodes (potential spills) carry
// no guarantee and are allowed to fail.
func TestPropCPGTopologicalColorability(t *testing.T) {
	m := target.UsageModel(8)
	k := m.NumRegs
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		f := workload.GenerateRawFunc(propProfile, m, seed)
		if _, err := ig.Renumber(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ctx, err := regalloc.NewContext(f, m, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := ctx.Graph
		stack, potential := simplifyOptimistic(g, k)
		cpg, err := BuildCPG(g, stack, potential, k)
		if err != nil {
			t.Fatalf("seed %d: BuildCPG: %v", seed, err)
		}

		// Three random topological traversals per program.
		for trial := 0; trial < 3; trial++ {
			color := map[ig.NodeID]int{}
			pc := map[ig.NodeID]int{}
			var ready []ig.NodeID
			for _, n := range cpg.Nodes() {
				cnt := 0
				for _, p := range cpg.Preds(n) {
					if p != Top {
						cnt++
					}
				}
				pc[n] = cnt
				if cnt == 0 {
					ready = append(ready, n)
				}
			}
			done := 0
			for len(ready) > 0 {
				i := rng.Intn(len(ready))
				n := ready[i]
				ready[i] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				done++

				used := map[int]bool{}
				for _, nb := range g.OrigNeighbors(n) {
					if g.IsPhys(nb) {
						used[int(nb)] = true
					} else if c, ok := color[nb]; ok {
						used[c] = true
					}
				}
				var avail []int
				for c := 0; c < k; c++ {
					if !used[c] {
						avail = append(avail, c)
					}
				}
				if len(avail) == 0 {
					if !potential[n] {
						t.Logf("seed %d trial %d: low-degree node %d uncolorable", seed, trial, n)
						return false
					}
					// Potential spill: may fail; leave uncolored.
				} else {
					color[n] = avail[rng.Intn(len(avail))]
				}
				for _, sc := range cpg.Succs(n) {
					if sc == Bottom {
						continue
					}
					pc[sc]--
					if pc[sc] == 0 {
						ready = append(ready, sc)
					}
				}
			}
			if done != len(cpg.Nodes()) {
				t.Logf("seed %d trial %d: traversal stuck (%d of %d)", seed, trial, done, len(cpg.Nodes()))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCPGIsAcyclicAndComplete: the CPG mentions every stacked
// node, reaches each from Top, and contains no cycle.
func TestPropCPGStructure(t *testing.T) {
	m := target.UsageModel(8)
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		f := workload.GenerateRawFunc(propProfile, m, seed)
		if _, err := ig.Renumber(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ctx, err := regalloc.NewContext(f, m, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := ctx.Graph
		stack, potential := simplifyOptimistic(g, m.NumRegs)
		cpg, err := BuildCPG(g, stack, potential, m.NumRegs)
		if err != nil {
			t.Fatalf("seed %d: BuildCPG: %v", seed, err)
		}
		nodes := cpg.Nodes()
		if len(nodes) != len(stack) {
			t.Logf("seed %d: CPG has %d nodes, stack %d", seed, len(nodes), len(stack))
			return false
		}
		// Acyclic: reachable(n, n) only via the trivial path.
		for _, n := range nodes {
			for _, s := range cpg.Succs(n) {
				if s == Bottom {
					continue
				}
				if cpg.reachable(s, n) {
					t.Logf("seed %d: cycle through %d -> %d", seed, n, s)
					return false
				}
			}
		}
		// Every node has a predecessor (Top counts).
		for _, n := range nodes {
			if len(cpg.Preds(n)) == 0 {
				t.Logf("seed %d: node %d has no predecessors", seed, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
