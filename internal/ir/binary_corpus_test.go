package ir_test

import (
	"bytes"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// Round-trip property over the full synthetic workload: decode∘encode
// is the identity and the encoding is canonical (a fixed point).
func TestBinaryRoundTripWorkload(t *testing.T) {
	m := target.X86Like(8)
	profiles := append(workload.Benchmarks(), workload.Large())
	n := 0
	for _, p := range profiles {
		for _, raw := range workload.Generate(p, m) {
			n++
			// Normalize through one parse: the generator pads NumVirt
			// with never-used registers, which the text form cannot
			// represent, so the wire contract is stated over the
			// parse-normalized function.
			f, err := ir.Parse(raw.String())
			if err != nil {
				t.Fatalf("%s: parse: %v", raw.Name, err)
			}
			f.Name = raw.Name
			enc := ir.EncodeBinary(f)
			g, err := ir.DecodeBinary(enc)
			if err != nil {
				t.Fatalf("%s: DecodeBinary: %v", f.Name, err)
			}
			if g.String() != f.String() {
				t.Fatalf("%s: round trip changed text", f.Name)
			}
			if g.NumVirt != f.NumVirt || g.NumSpillSlots != f.NumSpillSlots {
				t.Fatalf("%s: round trip changed counters", f.Name)
			}
			if !bytes.Equal(ir.EncodeBinary(g), enc) {
				t.Fatalf("%s: encoding is not canonical", f.Name)
			}
			// Text and binary ingestion of the same function must agree
			// on the canonical bytes — the server's cache-key contract.
			reparsed, err := ir.Parse(f.String())
			if err != nil {
				t.Fatalf("%s: reparse: %v", f.Name, err)
			}
			if !bytes.Equal(ir.EncodeBinary(reparsed), enc) {
				t.Fatalf("%s: text and binary paths disagree on canonical bytes", f.Name)
			}
		}
	}
	if n == 0 {
		t.Fatal("workload corpus is empty")
	}
}
