package ir

import (
	"errors"
	"fmt"
)

// InterpOptions configures the reference interpreter.
type InterpOptions struct {
	// MaxSteps bounds execution; 0 means the default of 1,000,000
	// instructions. Exceeding the bound is an error.
	MaxSteps int

	// CallClobbers lists physical registers destroyed by every call
	// (the machine's volatile set). Each is overwritten with a
	// deterministic poison value derived from the call, so code that
	// keeps a live value in a volatile register across a call without
	// saving it computes a different result.
	CallClobbers []Reg
}

// ExecResult is the observable behavior of one interpreted execution:
// the returned value, every store in program order, and the step
// count. Two functions are semantically equivalent for one input when
// their ExecResults agree on Ret/HasRet and Stores.
type ExecResult struct {
	Ret    int64
	HasRet bool
	Stores []StoreRecord
	Steps  int
}

// StoreRecord is one executed Store: its address and stored value.
type StoreRecord struct {
	Addr  int64
	Value int64
}

// Interp executes f under the reference semantics.
//
// init seeds register values (typically the function's parameter
// registers, virtual or physical). Memory starts zeroed; loads from
// unwritten addresses read a deterministic value derived from the
// address, so address-dependent control flow is stable across
// rewrites. Calls are uninterpreted: a call of sym with arguments
// a1..an returns hash(sym, a1..an) and clobbers opts.CallClobbers.
// Division or modulus by zero yields zero.
func Interp(f *Func, init map[Reg]int64, opts InterpOptions) (ExecResult, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	regs := make(map[Reg]int64, len(init)+16)
	for r, v := range init {
		regs[r] = v
	}
	mem := map[int64]int64{}
	spill := map[int64]int64{}
	var res ExecResult

	cur := f.Entry()
	prev := BlockID(-1)
	for {
		// φ-functions execute in parallel at block entry.
		var phiVals []int64
		var phiDsts []Reg
		predIdx := -1
		for i, in := range cur.Instrs {
			if in.Op != Phi {
				break
			}
			if predIdx < 0 {
				for pi, p := range cur.Preds {
					if p == prev {
						predIdx = pi
						break
					}
				}
				if predIdx < 0 {
					return res, fmt.Errorf("ir.Interp: b%d: φ with unknown incoming edge from b%d", cur.ID, prev)
				}
			}
			if predIdx >= len(in.Uses) {
				return res, fmt.Errorf("ir.Interp: b%d instr %d: φ missing arg %d", cur.ID, i, predIdx)
			}
			phiVals = append(phiVals, regs[in.Uses[predIdx]])
			phiDsts = append(phiDsts, in.Def())
		}
		for i, d := range phiDsts {
			regs[d] = phiVals[i]
		}

		next := BlockID(-1)
		done := false
		for i := range cur.Instrs {
			in := &cur.Instrs[i]
			if in.Op == Phi {
				continue
			}
			res.Steps++
			if res.Steps > maxSteps {
				return res, errors.New("ir.Interp: step budget exceeded (non-terminating program?)")
			}
			switch in.Op {
			case Nop:
			case Move:
				regs[in.Defs[0]] = regs[in.Uses[0]]
			case LoadImm:
				regs[in.Defs[0]] = in.Imm
			case Load:
				addr := regs[in.Uses[0]] + in.Imm
				v, ok := mem[addr]
				if !ok {
					v = defaultMem(addr)
				}
				regs[in.Defs[0]] = v
			case Store:
				addr := regs[in.Uses[1]] + in.Imm
				v := regs[in.Uses[0]]
				mem[addr] = v
				res.Stores = append(res.Stores, StoreRecord{Addr: addr, Value: v})
			case SpillStore:
				spill[in.Imm] = regs[in.Uses[0]]
			case SpillLoad:
				regs[in.Defs[0]] = spill[in.Imm]
			case Add:
				regs[in.Defs[0]] = regs[in.Uses[0]] + regs[in.Uses[1]]
			case Sub:
				regs[in.Defs[0]] = regs[in.Uses[0]] - regs[in.Uses[1]]
			case Mul:
				regs[in.Defs[0]] = regs[in.Uses[0]] * regs[in.Uses[1]]
			case Div:
				d := regs[in.Uses[1]]
				if d == 0 {
					regs[in.Defs[0]] = 0
				} else {
					regs[in.Defs[0]] = regs[in.Uses[0]] / d
				}
			case And:
				regs[in.Defs[0]] = regs[in.Uses[0]] & regs[in.Uses[1]]
			case Or:
				regs[in.Defs[0]] = regs[in.Uses[0]] | regs[in.Uses[1]]
			case Xor:
				regs[in.Defs[0]] = regs[in.Uses[0]] ^ regs[in.Uses[1]]
			case Shl:
				regs[in.Defs[0]] = regs[in.Uses[0]] << (uint64(regs[in.Uses[1]]) & 63)
			case Shr:
				regs[in.Defs[0]] = int64(uint64(regs[in.Uses[0]]) >> (uint64(regs[in.Uses[1]]) & 63))
			case Cmp:
				if regs[in.Uses[0]] < regs[in.Uses[1]] {
					regs[in.Defs[0]] = 1
				} else {
					regs[in.Defs[0]] = 0
				}
			case Neg:
				regs[in.Defs[0]] = -regs[in.Uses[0]]
			case AddImm:
				regs[in.Defs[0]] = regs[in.Uses[0]] + in.Imm
			case Call:
				h := hashCall(in.Sym, regs, in.Uses)
				for _, c := range opts.CallClobbers {
					regs[c] = int64(uint64(h) ^ 0xdeadbeefcafe ^ uint64(c))
				}
				if len(in.Defs) == 1 {
					regs[in.Defs[0]] = h
				}
			case Ret:
				if len(in.Uses) == 1 {
					res.Ret = regs[in.Uses[0]]
					res.HasRet = true
				}
				done = true
			case Jump:
				next = cur.Succs[0]
			case Branch:
				if regs[in.Uses[0]] != 0 {
					next = cur.Succs[0]
				} else {
					next = cur.Succs[1]
				}
			default:
				return res, fmt.Errorf("ir.Interp: unhandled op %v", in.Op)
			}
			if done {
				return res, nil
			}
		}
		if next < 0 {
			return res, fmt.Errorf("ir.Interp: b%d fell off the end without a terminator", cur.ID)
		}
		prev = cur.ID
		cur = f.Blocks[next]
	}
}

// defaultMem gives unwritten memory a deterministic, address-derived
// value so that load results are stable but not uniformly zero.
func defaultMem(addr int64) int64 {
	x := uint64(addr) * 0x9e3779b97f4a7c15
	x ^= x >> 31
	return int64(x & 0xffff)
}

// hashCall mixes the callee name and argument values into a
// deterministic 48-bit result.
func hashCall(sym string, regs map[Reg]int64, args []Reg) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(sym); i++ {
		h = (h ^ uint64(sym[i])) * 1099511628211
	}
	for _, a := range args {
		v := uint64(regs[a])
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	return int64(h & 0xffffffffffff)
}
