package ir

import (
	"fmt"
	"strings"
)

// Instr is a single register-transfer instruction.
//
// Defs and Uses hold register operands; Imm carries immediates and
// memory/spill offsets; Sym names call targets. Control-flow targets
// live on the enclosing Block (Succs), not on the instruction, so
// instructions can be moved and rewritten without touching block
// structure.
type Instr struct {
	Op   Op
	Defs []Reg
	Uses []Reg
	Imm  int64
	Sym  string
}

// MakeMove builds a Move instruction copying src into dst.
func MakeMove(dst, src Reg) Instr {
	return Instr{Op: Move, Defs: []Reg{dst}, Uses: []Reg{src}}
}

// MakeLoadImm builds a LoadImm instruction setting dst to imm.
func MakeLoadImm(dst Reg, imm int64) Instr {
	return Instr{Op: LoadImm, Defs: []Reg{dst}, Imm: imm}
}

// MakeLoad builds a Load of [base+off] into dst.
func MakeLoad(dst, base Reg, off int64) Instr {
	return Instr{Op: Load, Defs: []Reg{dst}, Uses: []Reg{base}, Imm: off}
}

// MakeStore builds a Store of src to [base+off].
func MakeStore(src, base Reg, off int64) Instr {
	return Instr{Op: Store, Uses: []Reg{src, base}, Imm: off}
}

// MakeBin builds a two-operand arithmetic instruction dst = a op b.
func MakeBin(op Op, dst, a, b Reg) Instr {
	if !op.IsArith() || op == Neg {
		panic(fmt.Sprintf("ir.MakeBin: %v is not a binary arithmetic op", op))
	}
	return Instr{Op: op, Defs: []Reg{dst}, Uses: []Reg{a, b}}
}

// MakeCall builds a call of sym with the given argument registers and
// optional result register (NoReg for none).
func MakeCall(sym string, result Reg, args ...Reg) Instr {
	in := Instr{Op: Call, Sym: sym, Uses: args}
	if result.Valid() {
		in.Defs = []Reg{result}
	}
	return in
}

// MakeRet builds a return; v may be NoReg for a void return.
func MakeRet(v Reg) Instr {
	if !v.Valid() {
		return Instr{Op: Ret}
	}
	return Instr{Op: Ret, Uses: []Reg{v}}
}

// MakePhi builds a φ-function with one argument per predecessor.
func MakePhi(dst Reg, args ...Reg) Instr {
	return Instr{Op: Phi, Defs: []Reg{dst}, Uses: args}
}

// Def returns the single definition of the instruction, or NoReg if it
// defines nothing.
func (in *Instr) Def() Reg {
	if len(in.Defs) == 0 {
		return NoReg
	}
	return in.Defs[0]
}

// IsCopy reports whether the instruction is a register-to-register
// move, the coalescing candidate shape.
func (in *Instr) IsCopy() bool {
	return in.Op == Move && len(in.Defs) == 1 && len(in.Uses) == 1
}

// Clone returns a deep copy of the instruction.
func (in Instr) Clone() Instr {
	out := in
	if in.Defs != nil {
		out.Defs = append([]Reg(nil), in.Defs...)
	}
	if in.Uses != nil {
		out.Uses = append([]Reg(nil), in.Uses...)
	}
	return out
}

// String renders the instruction in the textual IR syntax, e.g.
// "v3 = add v1, v2" or "store v1, v2, 8".
func (in Instr) String() string {
	var b strings.Builder
	if len(in.Defs) > 0 {
		for i, d := range in.Defs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.String())
		}
		b.WriteString(" = ")
	}
	b.WriteString(in.Op.String())
	if in.Op == Call {
		b.WriteString(" @")
		b.WriteString(in.Sym)
	}
	for i, u := range in.Uses {
		if i == 0 {
			if in.Op != Call {
				b.WriteByte(' ')
			} else {
				b.WriteString(" ")
			}
		} else {
			b.WriteString(", ")
		}
		b.WriteString(u.String())
	}
	switch in.Op {
	case LoadImm, SpillLoad:
		fmt.Fprintf(&b, " %d", in.Imm)
	case Load, Store, SpillStore, AddImm:
		fmt.Fprintf(&b, ", %d", in.Imm)
	}
	return b.String()
}
