package ir

import (
	"errors"
	"strings"
	"testing"
)

// Validation failures discovered after parsing must still point at the
// offending source line — the parser's own line counter stops at the
// end of the scan, so coordinates flow back through *PosError.
func TestParseValidationErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine string
	}{
		{
			"terminator mid-block",
			"func f() {\nb0:\n  v0 = loadimm 1\n  ret v0\n  v1 = loadimm 2\n}\n",
			"line 4:", // the ret is the violation site
		},
		{
			"phi after non-phi",
			"func f() {\nb0:\n  jump b1\nb1:\n  v0 = loadimm 1\n  v1 = phi v0\n  ret v1\n}\n",
			"line 6:",
		},
		{
			"missing terminator",
			"func f() {\nb0:\n  v0 = loadimm 1\n}\n",
			"line 2:", // block-level violation points at b0's label line
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded on invalid input")
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not carry %q", err, tc.wantLine)
			}
			var pe *PosError
			if !errors.As(err, &pe) {
				t.Errorf("error %q is not a *PosError", err)
			}
		})
	}
}
