package ir

import (
	"fmt"
	"strings"
)

// BlockID indexes a block within its function's Blocks slice.
type BlockID int32

// Block is a basic block: a straight-line instruction sequence ending
// in at most one terminator, with explicit successor edges.
type Block struct {
	ID     BlockID
	Instrs []Instr

	// Succs are the control-flow successors, in branch order: for a
	// Branch terminator Succs[0] is the taken (non-zero) target and
	// Succs[1] the fall-through.
	Succs []BlockID

	// Preds are the control-flow predecessors, maintained by
	// Func.RecomputePreds. φ-argument order follows Preds order.
	Preds []BlockID
}

// Terminator returns the block's final instruction, or nil for an
// empty block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Func is a single function: an entry block (Blocks[0]), a block list,
// and a virtual-register counter.
type Func struct {
	Name   string
	Blocks []*Block

	// Params are the virtual registers holding the incoming
	// parameters, in order. Convention lowering materializes them as
	// moves from the machine's parameter registers at function entry.
	Params []Reg

	// NumVirt is the number of virtual registers allocated so far;
	// virtual registers are Virt(0) .. Virt(NumVirt-1).
	NumVirt int

	// NumSpillSlots counts allocator-created spill slots.
	NumSpillSlots int
}

// NewFunc returns an empty function with the given name.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Virt(f.NumVirt)
	f.NumVirt++
	return r
}

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: BlockID(len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir.Func.Entry: function has no blocks")
	}
	return f.Blocks[0]
}

// Block returns the block with the given ID.
func (f *Func) Block(id BlockID) *Block { return f.Blocks[id] }

// NewSpillSlot allocates a fresh spill slot and returns its index.
func (f *Func) NewSpillSlot() int64 {
	s := f.NumSpillSlots
	f.NumSpillSlots++
	return int64(s)
}

// RecomputePreds rebuilds every block's Preds list from the Succs
// lists. Callers that edit control flow must invoke it before running
// analyses. φ-functions are not re-ordered; a pass that changes edge
// order is responsible for permuting φ arguments itself.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			sb := f.Blocks[s]
			sb.Preds = append(sb.Preds, b.ID)
		}
	}
}

// ForEachInstr calls fn for every instruction in block/program order.
func (f *Func) ForEachInstr(fn func(b *Block, i int, in *Instr)) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			fn(b, i, &b.Instrs[i])
		}
	}
}

// CountOp returns the number of instructions with the given Op.
func (f *Func) CountOp(op Op) int {
	n := 0
	f.ForEachInstr(func(_ *Block, _ int, in *Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

// NumInstrs returns the total instruction count.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	out := &Func{
		Name:          f.Name,
		Params:        append([]Reg(nil), f.Params...),
		NumVirt:       f.NumVirt,
		NumSpillSlots: f.NumSpillSlots,
	}
	out.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{
			ID:    b.ID,
			Succs: append([]BlockID(nil), b.Succs...),
			Preds: append([]BlockID(nil), b.Preds...),
		}
		nb.Instrs = make([]Instr, len(b.Instrs))
		for j := range b.Instrs {
			nb.Instrs[j] = b.Instrs[j].Clone()
		}
		out.Blocks[i] = nb
	}
	return out
}

// CompactNops removes Nop instructions in place.
func (f *Func) CompactNops() {
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != Nop {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
}

// String renders the function in the textual IR syntax accepted by
// Parse.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if len(b.Succs) > 0 {
			sb.WriteString(" ; succs:")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		sb.WriteByte('\n')
		for i := range b.Instrs {
			in := &b.Instrs[i]
			sb.WriteString("  ")
			sb.WriteString(in.String())
			switch in.Op {
			case Jump:
				fmt.Fprintf(&sb, " b%d", b.Succs[0])
			case Branch:
				fmt.Fprintf(&sb, ", b%d, b%d", b.Succs[0], b.Succs[1])
			}
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
