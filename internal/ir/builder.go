package ir

// Builder is a small convenience layer for constructing functions in
// tests, examples, and the workload generators. It tracks a current
// block and appends instructions to it.
type Builder struct {
	F   *Func
	cur *Block
}

// NewBuilder returns a Builder over a fresh function with an entry
// block already created and selected.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	b := &Builder{F: f}
	b.cur = f.NewBlock()
	return b
}

// Block creates a new block without selecting it.
func (b *Builder) Block() *Block { return b.F.NewBlock() }

// SetBlock selects the block subsequent emissions append to.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Cur returns the currently selected block.
func (b *Builder) Cur() *Block { return b.cur }

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg { return b.F.NewReg() }

// Param allocates a fresh virtual register and records it as the next
// function parameter.
func (b *Builder) Param() Reg {
	r := b.F.NewReg()
	b.F.Params = append(b.F.Params, r)
	return r
}

// Emit appends an arbitrary instruction to the current block.
func (b *Builder) Emit(in Instr) *Builder {
	b.cur.Instrs = append(b.cur.Instrs, in)
	return b
}

// Move emits dst = src.
func (b *Builder) Move(dst, src Reg) *Builder { return b.Emit(MakeMove(dst, src)) }

// LoadImm emits dst = imm.
func (b *Builder) LoadImm(dst Reg, imm int64) *Builder { return b.Emit(MakeLoadImm(dst, imm)) }

// Load emits dst = [base+off].
func (b *Builder) Load(dst, base Reg, off int64) *Builder { return b.Emit(MakeLoad(dst, base, off)) }

// Store emits [base+off] = src.
func (b *Builder) Store(src, base Reg, off int64) *Builder { return b.Emit(MakeStore(src, base, off)) }

// Bin emits dst = a op b.
func (b *Builder) Bin(op Op, dst, a, bb Reg) *Builder { return b.Emit(MakeBin(op, dst, a, bb)) }

// Neg emits dst = -a.
func (b *Builder) Neg(dst, a Reg) *Builder {
	return b.Emit(Instr{Op: Neg, Defs: []Reg{dst}, Uses: []Reg{a}})
}

// Call emits a call; result may be NoReg.
func (b *Builder) Call(sym string, result Reg, args ...Reg) *Builder {
	return b.Emit(MakeCall(sym, result, args...))
}

// Ret emits a return and leaves the block terminated.
func (b *Builder) Ret(v Reg) *Builder { return b.Emit(MakeRet(v)) }

// Jump terminates the current block with an unconditional jump to t.
func (b *Builder) Jump(t *Block) *Builder {
	b.cur.Succs = []BlockID{t.ID}
	return b.Emit(Instr{Op: Jump})
}

// Branch terminates the current block with a conditional branch on
// cond: taken to t, otherwise to e.
func (b *Builder) Branch(cond Reg, t, e *Block) *Builder {
	b.cur.Succs = []BlockID{t.ID, e.ID}
	return b.Emit(Instr{Op: Branch, Uses: []Reg{cond}})
}

// Phi emits a φ-function; args must follow the block's predecessor
// order once predecessors are final.
func (b *Builder) Phi(dst Reg, args ...Reg) *Builder { return b.Emit(MakePhi(dst, args...)) }

// Finish recomputes predecessor lists and returns the function.
func (b *Builder) Finish() *Func {
	b.F.RecomputePreds()
	return b.F
}
