package ir

import (
	"strings"
	"testing"
)

func TestRegEncoding(t *testing.T) {
	if NoReg.Valid() {
		t.Errorf("NoReg.Valid() = true")
	}
	r := Phys(3)
	if !r.IsPhys() || r.IsVirt() || r.PhysNum() != 3 {
		t.Errorf("Phys(3) misbehaves: %v", r)
	}
	v := Virt(7)
	if !v.IsVirt() || v.IsPhys() || v.VirtNum() != 7 {
		t.Errorf("Virt(7) misbehaves: %v", v)
	}
	if got := r.String(); got != "r3" {
		t.Errorf("Phys(3).String() = %q, want r3", got)
	}
	if got := v.String(); got != "v7" {
		t.Errorf("Virt(7).String() = %q, want v7", got)
	}
	if got := NoReg.String(); got != "<none>" {
		t.Errorf("NoReg.String() = %q", got)
	}
}

func TestRegEncodingPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("Phys(-1)", func() { Phys(-1) })
	mustPanic("Phys(255)", func() { Phys(255) })
	mustPanic("Virt(-1)", func() { Virt(-1) })
	mustPanic("NoReg.PhysNum", func() { NoReg.PhysNum() })
	mustPanic("phys VirtNum", func() { Phys(0).VirtNum() })
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		Move: "move", Load: "load", Store: "store", Call: "call",
		Branch: "branch", Phi: "phi", SpillLoad: "spillload",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
		if opByName[want] != op {
			t.Errorf("opByName[%q] = %v, want %v", want, opByName[want], op)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	for _, op := range []Op{Ret, Jump, Branch} {
		if !op.IsTerminator() {
			t.Errorf("%v.IsTerminator() = false", op)
		}
	}
	for _, op := range []Op{Move, Add, Call, Phi} {
		if op.IsTerminator() {
			t.Errorf("%v.IsTerminator() = true", op)
		}
	}
	if !Add.IsArith() || !Neg.IsArith() || Move.IsArith() || Call.IsArith() {
		t.Error("IsArith misclassifies")
	}
	if !SpillLoad.IsSpill() || !SpillStore.IsSpill() || Load.IsSpill() {
		t.Error("IsSpill misclassifies")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{MakeMove(Virt(1), Virt(0)), "v1 = move v0"},
		{MakeLoadImm(Virt(2), 42), "v2 = loadimm 42"},
		{MakeLoad(Virt(1), Virt(0), 8), "v1 = load v0, 8"},
		{MakeStore(Virt(1), Virt(0), 4), "store v1, v0, 4"},
		{MakeBin(Add, Virt(2), Virt(0), Virt(1)), "v2 = add v0, v1"},
		{MakeCall("f", Virt(3), Phys(0), Phys(1)), "v3 = call @f r0, r1"},
		{MakeCall("g", NoReg), "call @g"},
		{MakeRet(Virt(0)), "ret v0"},
		{MakeRet(NoReg), "ret"},
		{MakePhi(Virt(2), Virt(0), Virt(1)), "v2 = phi v0, v1"},
		{Instr{Op: SpillLoad, Defs: []Reg{Virt(1)}, Imm: 3}, "v1 = spillload 3"},
		{Instr{Op: SpillStore, Uses: []Reg{Virt(1)}, Imm: 3}, "spillstore v1, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instr.String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder("loop")
	n := b.Param()
	i := b.Reg()
	sum := b.Reg()
	b.LoadImm(i, 0).LoadImm(sum, 0)
	head, body, exit := b.Block(), b.Block(), b.Block()
	b.Jump(head)
	b.SetBlock(head)
	cond := b.Reg()
	b.Bin(Cmp, cond, i, n)
	b.Branch(cond, body, exit)
	b.SetBlock(body)
	one := b.Reg()
	b.LoadImm(one, 1)
	b.Bin(Add, sum, sum, i)
	b.Bin(Add, i, i, one)
	b.Jump(head)
	b.SetBlock(exit)
	b.Ret(sum)
	f := b.Finish()

	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res, err := Interp(f, map[Reg]int64{n: 5}, InterpOptions{})
	if err != nil {
		t.Fatalf("Interp: %v", err)
	}
	if !res.HasRet || res.Ret != 0+1+2+3+4 {
		t.Errorf("sum(5) = %d (hasRet=%v), want 10", res.Ret, res.HasRet)
	}
}

func makeDiamond(t *testing.T) *Func {
	t.Helper()
	b := NewBuilder("diamond")
	x := b.Param()
	t1, t2, join := b.Block(), b.Block(), b.Block()
	b.Branch(x, t1, t2)
	b.SetBlock(t1)
	a := b.Reg()
	b.LoadImm(a, 10)
	b.Jump(join)
	b.SetBlock(t2)
	c := b.Reg()
	b.LoadImm(c, 20)
	b.Jump(join)
	b.SetBlock(join)
	d := b.Reg()
	b.Phi(d, a, c)
	b.Ret(d)
	return b.Finish()
}

func TestInterpPhi(t *testing.T) {
	f := makeDiamond(t)
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for in, want := range map[int64]int64{1: 10, 0: 20} {
		res, err := Interp(f, map[Reg]int64{f.Params[0]: in}, InterpOptions{})
		if err != nil {
			t.Fatalf("Interp(%d): %v", in, err)
		}
		if res.Ret != want {
			t.Errorf("diamond(%d) = %d, want %d", in, res.Ret, want)
		}
	}
}

func TestInterpCallClobbers(t *testing.T) {
	// Keep a value in r5 across a call that clobbers r5: result must
	// differ from the unclobbered version.
	src := `
func f(v0) {
b0:
  r5 = move v0
  call @g v0
  v1 = move r5
  ret v1
}
`
	f := MustParse(src)
	init := map[Reg]int64{f.Params[0]: 7}
	clob, err := Interp(f, init, InterpOptions{CallClobbers: []Reg{Phys(5)}})
	if err != nil {
		t.Fatalf("Interp: %v", err)
	}
	clean, err := Interp(f, init, InterpOptions{})
	if err != nil {
		t.Fatalf("Interp: %v", err)
	}
	if clean.Ret != 7 {
		t.Errorf("unclobbered ret = %d, want 7", clean.Ret)
	}
	if clob.Ret == 7 {
		t.Errorf("clobbered ret = 7; call clobber had no effect")
	}
}

func TestInterpSpillSlots(t *testing.T) {
	src := `
func f(v0) {
b0:
  spillstore v0, 2
  v1 = loadimm 0
  v2 = spillload 2
  ret v2
}
`
	f := MustParse(src)
	res, err := Interp(f, map[Reg]int64{f.Params[0]: 99}, InterpOptions{})
	if err != nil {
		t.Fatalf("Interp: %v", err)
	}
	if res.Ret != 99 {
		t.Errorf("ret = %d, want 99", res.Ret)
	}
}

func TestInterpStepBudget(t *testing.T) {
	src := `
func f() {
b0:
  jump b0
}
`
	f := MustParse(src)
	_, err := Interp(f, nil, InterpOptions{MaxSteps: 100})
	if err == nil {
		t.Fatal("expected step-budget error for infinite loop")
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := makeDiamond(t)
	text := f.String()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse of printed function failed: %v\ntext:\n%s", err, text)
	}
	if g.String() != text {
		t.Errorf("round trip mismatch:\nfirst:\n%s\nsecond:\n%s", text, g.String())
	}
	// Behavior must match too.
	for _, in := range []int64{0, 1} {
		a, err := Interp(f, map[Reg]int64{f.Params[0]: in}, InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Interp(g, map[Reg]int64{g.Params[0]: in}, InterpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ret != b.Ret {
			t.Errorf("input %d: ret %d vs %d", in, a.Ret, b.Ret)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"func f() {",                        // no close
		"func f() {\nb0:\n  bogus v0\n}",    // unknown op
		"func f() {\n  v0 = move v1\n}",     // instr outside block
		"func f() {\nb0:\n  jump b0, b1\n}", // jump arity
		"func f() {\nb0:\n  v0 = load v1\n}",
		"func f(q0) {\nb0:\n  ret\n}", // bad register
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestValidateCatches(t *testing.T) {
	// Terminator not at end.
	f := NewFunc("bad")
	b := f.NewBlock()
	b.Instrs = []Instr{MakeRet(NoReg), {Op: Nop}}
	if err := Validate(f); err == nil {
		t.Error("terminator mid-block not caught")
	}

	// φ arity mismatch.
	g := makeDiamond(t)
	join := g.Blocks[3]
	join.Instrs[0].Uses = join.Instrs[0].Uses[:1]
	if err := Validate(g); err == nil {
		t.Error("φ arity mismatch not caught")
	}

	// Out-of-range virtual register.
	h := NewFunc("oor")
	hb := h.NewBlock()
	hb.Instrs = []Instr{MakeMove(Virt(3), Virt(4)), MakeRet(NoReg)}
	if err := Validate(h); err == nil {
		t.Error("out-of-range vreg not caught")
	}

	// Inconsistent preds.
	d := makeDiamond(t)
	d.Blocks[3].Preds = nil
	if err := Validate(d); err == nil {
		t.Error("pred/succ inconsistency not caught")
	}

	// Branch with one successor.
	e := makeDiamond(t)
	e.Blocks[0].Succs = e.Blocks[0].Succs[:1]
	e.RecomputePreds()
	// Note: φ in join now has 2 args but 1 pred, also invalid; either way
	// Validate must fail.
	if err := Validate(e); err == nil {
		t.Error("branch with one successor not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := makeDiamond(t)
	g := f.Clone()
	g.Blocks[0].Instrs[0].Uses[0] = Virt(90)
	g.Blocks[0].Succs[0] = 2
	if f.Blocks[0].Instrs[0].Uses[0] == Virt(90) {
		t.Error("Clone shares instruction operand slices")
	}
	if f.Blocks[0].Succs[0] == 2 {
		t.Error("Clone shares Succs")
	}
}

func TestCompactNops(t *testing.T) {
	f := NewFunc("n")
	b := f.NewBlock()
	b.Instrs = []Instr{{Op: Nop}, MakeRet(NoReg), {}}
	b.Instrs = b.Instrs[:2]
	f.CompactNops()
	if len(b.Instrs) != 1 || b.Instrs[0].Op != Ret {
		t.Errorf("CompactNops left %v", b.Instrs)
	}
}

func TestCountHelpers(t *testing.T) {
	f := makeDiamond(t)
	if got := f.CountOp(LoadImm); got != 2 {
		t.Errorf("CountOp(LoadImm) = %d, want 2", got)
	}
	if got := f.NumInstrs(); got != 7 {
		t.Errorf("NumInstrs = %d, want 7", got)
	}
}

func TestDefaultMemDeterministic(t *testing.T) {
	if defaultMem(100) != defaultMem(100) {
		t.Error("defaultMem not deterministic")
	}
	if defaultMem(100) == defaultMem(101) {
		t.Error("defaultMem(100) == defaultMem(101); too degenerate")
	}
}

func TestHashCallSensitivity(t *testing.T) {
	regs := map[Reg]int64{Virt(0): 1, Virt(1): 2}
	a := hashCall("f", regs, []Reg{Virt(0)})
	b := hashCall("g", regs, []Reg{Virt(0)})
	c := hashCall("f", regs, []Reg{Virt(1)})
	if a == b || a == c {
		t.Error("hashCall insensitive to sym or args")
	}
}

func TestStringContainsBlocksAndSuccs(t *testing.T) {
	f := makeDiamond(t)
	s := f.String()
	for _, want := range []string{"func diamond(v0)", "b0:", "branch v0, b1, b2", "jump b3", "v3 = phi v1, v2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestInterpArithOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{Add, 7, 5, 12},
		{Sub, 7, 5, 2},
		{Mul, 7, 5, 35},
		{Div, 7, 5, 1},
		{Div, 7, 0, 0}, // division by zero yields zero by definition
		{And, 6, 3, 2},
		{Or, 6, 3, 7},
		{Xor, 6, 3, 5},
		{Shl, 3, 2, 12},
		{Shr, 12, 2, 3},
		{Shl, 1, 64, 1}, // shift counts mask to 63
		{Shr, -8, 1, int64(uint64(0xfffffffffffffff8) >> 1)},
		{Cmp, 3, 5, 1},
		{Cmp, 5, 3, 0},
		{Cmp, 4, 4, 0},
	}
	for _, c := range cases {
		f := NewFunc("t")
		b := f.NewBlock()
		f.NumVirt = 3
		b.Instrs = []Instr{
			MakeBin(c.op, Virt(2), Virt(0), Virt(1)),
			MakeRet(Virt(2)),
		}
		res, err := Interp(f, map[Reg]int64{Virt(0): c.a, Virt(1): c.b}, InterpOptions{})
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if res.Ret != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, res.Ret, c.want)
		}
	}
}

func TestInterpUnaryAndImmOps(t *testing.T) {
	f := MustParse(`
func f(v0) {
b0:
  v1 = neg v0
  v2 = addimm v1, 10
  ret v2
}
`)
	res, err := Interp(f, map[Reg]int64{Virt(0): 4}, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 6 {
		t.Errorf("neg/addimm chain = %d, want 6", res.Ret)
	}
}

func TestInterpStoreRecords(t *testing.T) {
	f := MustParse(`
func f(v0) {
b0:
  v1 = loadimm 9
  store v1, v0, 4
  store v0, v0, 8
  ret v1
}
`)
	res, err := Interp(f, map[Reg]int64{Virt(0): 100}, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stores) != 2 {
		t.Fatalf("stores = %d, want 2", len(res.Stores))
	}
	if res.Stores[0] != (StoreRecord{Addr: 104, Value: 9}) {
		t.Errorf("store 0 = %+v", res.Stores[0])
	}
	if res.Stores[1] != (StoreRecord{Addr: 108, Value: 100}) {
		t.Errorf("store 1 = %+v", res.Stores[1])
	}
}

func TestInterpLoadAfterStore(t *testing.T) {
	f := MustParse(`
func f(v0) {
b0:
  v1 = loadimm 55
  store v1, v0, 0
  v2 = load v0, 0
  ret v2
}
`)
	res, err := Interp(f, map[Reg]int64{Virt(0): 32}, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 55 {
		t.Errorf("load-after-store = %d, want 55", res.Ret)
	}
}

func TestParseAddImmRoundTrip(t *testing.T) {
	src := `func f(v0) {
b0:
  v1 = addimm v0, -3
  ret v1
}
`
	f := MustParse(src)
	if got := f.String(); got != src {
		t.Errorf("round trip:\n%q\nvs\n%q", got, src)
	}
}

func TestInterpRetVoid(t *testing.T) {
	f := MustParse(`
func f() {
b0:
  ret
}
`)
	res, err := Interp(f, nil, InterpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRet {
		t.Error("void return reported a value")
	}
}
