package ir

import (
	"sort"
	"strings"
)

// RegSet is a set of registers. The zero value is not usable; call
// NewRegSet.
type RegSet map[Reg]struct{}

// NewRegSet returns a set holding the given registers.
func NewRegSet(regs ...Reg) RegSet {
	s := make(RegSet, len(regs))
	for _, r := range regs {
		s.Add(r)
	}
	return s
}

// Add inserts r; NoReg is ignored.
func (s RegSet) Add(r Reg) {
	if r != NoReg {
		s[r] = struct{}{}
	}
}

// Remove deletes r.
func (s RegSet) Remove(r Reg) { delete(s, r) }

// Has reports membership.
func (s RegSet) Has(r Reg) bool {
	_, ok := s[r]
	return ok
}

// AddAll inserts every member of t and reports whether s grew.
func (s RegSet) AddAll(t RegSet) bool {
	grew := false
	for r := range t {
		if !s.Has(r) {
			s[r] = struct{}{}
			grew = true
		}
	}
	return grew
}

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet {
	out := make(RegSet, len(s))
	for r := range s {
		out[r] = struct{}{}
	}
	return out
}

// Equal reports whether s and t hold the same registers.
func (s RegSet) Equal(t RegSet) bool {
	if len(s) != len(t) {
		return false
	}
	for r := range s {
		if !t.Has(r) {
			return false
		}
	}
	return true
}

// Sorted returns the members in increasing order.
func (s RegSet) Sorted() []Reg {
	out := make([]Reg, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as "{v0, v3, r1}" in sorted order.
func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
