package ir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary wire format
//
// The binary encoding is the cold-path alternative to the textual IR:
// a compact, versioned, length-delimited form of one Func that decodes
// several times faster than Parse and whose bytes are *canonical* — a
// pure function of the Func's structure — so sha256 over the encoding
// is a content address that text and binary requests for the same
// function share.
//
// Layout (all integers are unsigned LEB128 varints unless noted;
// "sreg" is the register encoding below, "zint" is zigzag varint):
//
//	magic      4 bytes "PGIR"
//	version    1 byte (currently 1)
//	name       varint length + bytes
//	numVirt    varint
//	numSpill   varint
//	params     varint count, then count × sreg
//	symbols    varint count, then count × (varint length + bytes)
//	blocks     varint count, then per block:
//	  succs    varint count, then count × varint block id
//	  instrs   varint count, then per instruction:
//	    op     1 byte
//	    flags  1 byte (bit0 = has imm, bit1 = has sym)
//	    defs   varint count, then count × sreg
//	    uses   varint count, then count × sreg
//	    imm    zint, only when flags bit0
//	    sym    varint symbol-table index, only when flags bit1
//
// Register encoding (sreg): NoReg is 0, physical register n is 2n+1,
// virtual register n is 2n+2, so the common small virtual registers
// stay single-byte where the raw Reg value (offset by FirstVirtual)
// would not.
//
// Symbols are call targets, interned in first-occurrence order over
// the instruction walk. Imm and Sym are present-only-when-nonzero,
// which keeps the encoding canonical: EncodeBinary(f) is deterministic
// and DecodeBinary(EncodeBinary(f)) reproduces f exactly.
//
// Versioning: the version byte bumps on any layout change; decoders
// reject versions they do not know. Fields are never reinterpreted
// within a version.

// binaryMagic introduces every binary-encoded function.
const binaryMagic = "PGIR"

// BinaryVersion is the wire-format version EncodeBinary emits.
const BinaryVersion = 1

// IsBinary reports whether data begins with the binary IR magic, the
// sniff used to accept binary and text on the same endpoints and
// files.
func IsBinary(data []byte) bool {
	return len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic
}

// EncodeBinary returns the canonical binary encoding of f.
func EncodeBinary(f *Func) []byte {
	return AppendBinary(nil, f)
}

// AppendBinary appends the canonical binary encoding of f to dst and
// returns the extended slice, so encoders with a buffer to reuse avoid
// the allocation.
func AppendBinary(dst []byte, f *Func) []byte {
	dst = append(dst, binaryMagic...)
	dst = append(dst, BinaryVersion)
	dst = appendString(dst, f.Name)
	dst = binary.AppendUvarint(dst, uint64(f.NumVirt))
	dst = binary.AppendUvarint(dst, uint64(f.NumSpillSlots))
	dst = binary.AppendUvarint(dst, uint64(len(f.Params)))
	for _, p := range f.Params {
		dst = appendReg(dst, p)
	}

	// Symbol table: call targets in first-occurrence order.
	var syms []string
	symIndex := map[string]uint64{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if s := b.Instrs[i].Sym; s != "" {
				if _, ok := symIndex[s]; !ok {
					symIndex[s] = uint64(len(syms))
					syms = append(syms, s)
				}
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	for _, s := range syms {
		dst = appendString(dst, s)
	}

	dst = binary.AppendUvarint(dst, uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		dst = binary.AppendUvarint(dst, uint64(len(b.Succs)))
		for _, s := range b.Succs {
			dst = binary.AppendUvarint(dst, uint64(s))
		}
		dst = binary.AppendUvarint(dst, uint64(len(b.Instrs)))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var flags byte
			if in.Imm != 0 {
				flags |= flagImm
			}
			if in.Sym != "" {
				flags |= flagSym
			}
			dst = append(dst, byte(in.Op), flags)
			dst = binary.AppendUvarint(dst, uint64(len(in.Defs)))
			for _, d := range in.Defs {
				dst = appendReg(dst, d)
			}
			dst = binary.AppendUvarint(dst, uint64(len(in.Uses)))
			for _, u := range in.Uses {
				dst = appendReg(dst, u)
			}
			if flags&flagImm != 0 {
				dst = binary.AppendVarint(dst, in.Imm)
			}
			if flags&flagSym != 0 {
				dst = binary.AppendUvarint(dst, symIndex[in.Sym])
			}
		}
	}
	return dst
}

const (
	flagImm = 1 << 0
	flagSym = 1 << 1
)

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendReg writes the sreg encoding: NoReg=0, phys n=2n+1, virt n=2n+2.
func appendReg(dst []byte, r Reg) []byte {
	var v uint64
	switch {
	case r == NoReg:
		v = 0
	case r.IsPhys():
		v = uint64(r.PhysNum())<<1 + 1
	default:
		v = uint64(r.VirtNum())<<1 + 2
	}
	return binary.AppendUvarint(dst, v)
}

// DecodeBinary decodes one binary-encoded function. The whole input
// must be consumed; the decoded function is validated exactly as
// Parse validates, so corrupted or truncated inputs produce an error,
// never a panic, and a successful decode is structurally sound.
func DecodeBinary(data []byte) (*Func, error) {
	f, err := decodeBinary(data)
	if err != nil {
		return nil, fmt.Errorf("ir.DecodeBinary: %w", err)
	}
	f.RecomputePreds()
	if err := Validate(f); err != nil {
		return nil, fmt.Errorf("ir.DecodeBinary: invalid function: %w", err)
	}
	return f, nil
}

func decodeBinary(data []byte) (*Func, error) {
	d := &binDecoder{buf: data}
	if len(data) < len(binaryMagic)+1 || string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, errors.New("bad magic")
	}
	d.pos = len(binaryMagic)
	if v := data[d.pos]; v != BinaryVersion {
		return nil, fmt.Errorf("unsupported version %d (have %d)", v, BinaryVersion)
	}
	d.pos++

	f := NewFunc(d.str("name"))
	f.NumVirt = int(d.count("numVirt", 1<<31))
	f.NumSpillSlots = int(d.count("numSpillSlots", 1<<31))
	if n := d.len("params"); n > 0 {
		f.Params = make([]Reg, n)
		for i := range f.Params {
			f.Params[i] = d.reg("param")
		}
	}
	var syms []string
	if n := d.len("symbols"); n > 0 {
		syms = make([]string, n)
		for i := range syms {
			syms[i] = d.str("symbol")
		}
	}
	nBlocks := d.len("blocks")
	for bi := 0; bi < int(nBlocks) && d.err == nil; bi++ {
		b := f.NewBlock()
		if n := d.len("succs"); n > 0 {
			b.Succs = make([]BlockID, n)
			for i := range b.Succs {
				b.Succs[i] = BlockID(d.count("succ", uint64(nBlocks)))
			}
		}
		nInstrs := d.len("instrs")
		if d.err == nil && nInstrs > 0 {
			b.Instrs = make([]Instr, nInstrs)
		}
		for i := 0; i < int(nInstrs) && d.err == nil; i++ {
			in := &b.Instrs[i]
			op := d.byte("op")
			if Op(op) >= numOps {
				d.fail("op", fmt.Errorf("unknown op %d", op))
				break
			}
			in.Op = Op(op)
			flags := d.byte("flags")
			if flags&^(flagImm|flagSym) != 0 {
				d.fail("flags", fmt.Errorf("unknown flag bits %#x", flags))
				break
			}
			if n := d.len("defs"); n > 0 {
				in.Defs = make([]Reg, n)
				for j := range in.Defs {
					in.Defs[j] = d.reg("def")
				}
			}
			if n := d.len("uses"); n > 0 {
				in.Uses = make([]Reg, n)
				for j := range in.Uses {
					in.Uses[j] = d.reg("use")
				}
			}
			if flags&flagImm != 0 {
				in.Imm = d.int("imm")
			}
			if flags&flagSym != 0 {
				si := d.count("sym index", uint64(len(syms)))
				if d.err == nil {
					in.Sym = syms[si]
				}
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%d trailing bytes after function", len(d.buf)-d.pos)
	}
	return f, nil
}

// binDecoder reads the wire primitives with saturating error handling:
// the first failure sticks, and every later read returns zero values,
// so decode loops need no per-read error plumbing.
type binDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *binDecoder) fail(what string, err error) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d: %w", what, d.pos, err)
	}
}

func (d *binDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(what, io.ErrUnexpectedEOF)
		return 0
	}
	d.pos += n
	return v
}

// count reads a uvarint and rejects values >= limit.
func (d *binDecoder) count(what string, limit uint64) uint64 {
	v := d.uvarint(what)
	if d.err == nil && v >= limit {
		d.fail(what, fmt.Errorf("value %d out of range (limit %d)", v, limit))
		return 0
	}
	return v
}

// len reads an element count and bounds it by the remaining input —
// every element takes at least one byte, so a count beyond that is
// corrupt and must not drive an allocation.
func (d *binDecoder) len(what string) uint64 {
	v := d.uvarint(what)
	if d.err == nil && v > uint64(len(d.buf)-d.pos) {
		d.fail(what, fmt.Errorf("count %d exceeds %d remaining bytes", v, len(d.buf)-d.pos))
		return 0
	}
	return v
}

func (d *binDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail(what, io.ErrUnexpectedEOF)
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *binDecoder) int(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(what, io.ErrUnexpectedEOF)
		return 0
	}
	d.pos += n
	return v
}

func (d *binDecoder) str(what string) string {
	n := d.len(what)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *binDecoder) reg(what string) Reg {
	v := d.uvarint(what)
	if d.err != nil {
		return NoReg
	}
	switch {
	case v == 0:
		return NoReg
	case v&1 == 1: // physical
		n := (v - 1) >> 1
		if n >= uint64(FirstVirtual)-1 {
			d.fail(what, fmt.Errorf("physical register %d out of range", n))
			return NoReg
		}
		return Phys(int(n))
	default: // virtual
		n := (v - 2) >> 1
		if n > uint64(math.MaxInt32)-uint64(FirstVirtual) {
			d.fail(what, fmt.Errorf("virtual register %d out of range", n))
			return NoReg
		}
		return Virt(int(n))
	}
}

// AppendBinaryFrame appends one length-prefixed binary function to
// dst: a uvarint byte length followed by the EncodeBinary bytes. A
// sequence of frames is the streaming batch wire format — functions
// decode one at a time as they arrive, so a consumer can overlap
// decoding function N+1 with allocating function N.
func AppendBinaryFrame(dst []byte, f *Func) []byte {
	body := AppendBinary(nil, f)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// StreamDecoder reads a sequence of length-prefixed binary functions
// (AppendBinaryFrame's format) from a reader, decoding lazily: each
// Next call reads and decodes exactly one frame.
type StreamDecoder struct {
	// MaxFrame bounds one frame's byte length; 0 means 64 MiB. A
	// corrupt length prefix must not drive a huge allocation.
	MaxFrame int

	r   io.ByteReader
	in  io.Reader
	buf []byte
	n   int // frames decoded so far
}

// NewStreamDecoder wraps r. The reader should be buffered; a plain
// io.Reader is adapted byte-by-byte for the length prefixes.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	d := &StreamDecoder{in: r}
	if br, ok := r.(io.ByteReader); ok {
		d.r = br
	} else {
		d.r = &oneByteReader{r: r}
	}
	return d
}

// Next decodes the next function. It returns io.EOF at a clean end of
// stream; a frame cut off mid-way is an error.
func (d *StreamDecoder) Next() (*Func, error) {
	size, err := binary.ReadUvarint(d.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("ir.StreamDecoder: frame %d length: %w", d.n, err)
	}
	max := d.MaxFrame
	if max <= 0 {
		max = 64 << 20
	}
	if size > uint64(max) {
		return nil, fmt.Errorf("ir.StreamDecoder: frame %d of %d bytes exceeds limit %d", d.n, size, max)
	}
	if uint64(cap(d.buf)) < size {
		d.buf = make([]byte, size)
	}
	buf := d.buf[:size]
	if _, err := io.ReadFull(d.in, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("ir.StreamDecoder: frame %d body: %w", d.n, err)
	}
	f, err := DecodeBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("ir.StreamDecoder: frame %d: %w", d.n, err)
	}
	d.n++
	return f, nil
}

// oneByteReader adapts an unbuffered reader for ReadUvarint. The
// length prefix is a handful of bytes per frame, so the single-byte
// reads cost little even unbuffered.
type oneByteReader struct {
	r io.Reader
	b [1]byte
}

func (o *oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func (o *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(o.r, o.b[:]); err != nil {
		return 0, err
	}
	return o.b[0], nil
}
