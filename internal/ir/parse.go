package ir

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function in the textual syntax produced by
// Func.String. The grammar, line oriented:
//
//	func NAME(v0, v1) {
//	b0:
//	  v2 = load v0, 0
//	  v3 = add v2, v1
//	  branch v3, b1, b2
//	b1:
//	  v4 = call @f v3
//	  jump b2
//	b2:
//	  v5 = phi v3, v4
//	  ret v5
//	}
//
// Text after ';' on any line is a comment. Jump and branch targets
// become the block's successor list. The parsed function is validated
// before being returned.
func Parse(src string) (*Func, error) {
	p := &parser{}
	if err := p.run(src); err != nil {
		return nil, err
	}
	p.f.RecomputePreds()
	if err := Validate(p.f); err != nil {
		var pe *PosError
		if errors.As(err, &pe) {
			if line := p.lineOf(pe); line > 0 {
				return nil, fmt.Errorf("ir.Parse: line %d: invalid function: %w", line, err)
			}
		}
		return nil, fmt.Errorf("ir.Parse: invalid function: %w", err)
	}
	return p.f, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	f      *Func
	cur    *Block
	blocks map[string]*Block
	line   int

	// Source coordinates for post-parse validation diagnostics: the
	// line of each block's label and of each instruction appended to
	// it, keyed by block since IDs may be assigned by forward
	// reference before the label line is seen.
	blockLine  map[*Block]int
	instrLines map[*Block][]int
}

// lineOf maps a validation error's (block, instr) coordinates back to
// a source line; 0 when unknown.
func (p *parser) lineOf(pe *PosError) int {
	if int(pe.Block) >= len(p.f.Blocks) {
		return 0
	}
	b := p.f.Blocks[pe.Block]
	if pe.Instr >= 0 {
		if lines := p.instrLines[b]; pe.Instr < len(lines) {
			return lines[pe.Instr]
		}
		return 0
	}
	return p.blockLine[b]
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir.Parse: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// block returns (creating on demand) the block with the given label,
// so forward references to not-yet-declared blocks work.
func (p *parser) block(label string) (*Block, error) {
	if b, ok := p.blocks[label]; ok {
		return b, nil
	}
	if !strings.HasPrefix(label, "b") {
		return nil, p.errf("bad block label %q", label)
	}
	n, err := strconv.Atoi(label[1:])
	if err != nil || n < 0 {
		return nil, p.errf("bad block label %q", label)
	}
	for len(p.f.Blocks) <= n {
		p.f.NewBlock()
	}
	b := p.f.Blocks[n]
	p.blocks[label] = b
	return b, nil
}

func (p *parser) reg(tok string) (Reg, error) {
	if len(tok) < 2 {
		return NoReg, p.errf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return NoReg, p.errf("bad register %q", tok)
	}
	switch tok[0] {
	case 'v':
		if n >= p.f.NumVirt {
			p.f.NumVirt = n + 1
		}
		return Virt(n), nil
	case 'r':
		return Phys(n), nil
	}
	return NoReg, p.errf("bad register %q", tok)
}

func (p *parser) run(src string) error {
	p.f = NewFunc("")
	p.blocks = map[string]*Block{}
	p.blockLine = map[*Block]int{}
	p.instrLines = map[*Block][]int{}
	sawHeader, sawClose := false, false
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if sawHeader {
				return p.errf("duplicate func header")
			}
			if err := p.header(line); err != nil {
				return err
			}
			sawHeader = true
		case line == "}":
			sawClose = true
		case strings.HasSuffix(line, ":"):
			b, err := p.block(strings.TrimSuffix(line, ":"))
			if err != nil {
				return err
			}
			p.cur = b
			p.blockLine[b] = p.line
		default:
			if !sawHeader {
				return p.errf("instruction before func header")
			}
			if p.cur == nil {
				return p.errf("instruction outside any block")
			}
			if err := p.instr(line); err != nil {
				return err
			}
		}
	}
	if !sawHeader {
		return fmt.Errorf("ir.Parse: no func header")
	}
	if !sawClose {
		return fmt.Errorf("ir.Parse: missing closing brace")
	}
	return nil
}

func (p *parser) header(line string) error {
	rest := strings.TrimPrefix(line, "func ")
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return p.errf("malformed func header")
	}
	p.f.Name = strings.TrimSpace(rest[:open])
	params := strings.TrimSpace(rest[open+1 : closeIdx])
	if params != "" {
		for _, tok := range splitOperands(params) {
			r, err := p.reg(tok)
			if err != nil {
				return err
			}
			p.f.Params = append(p.f.Params, r)
		}
	}
	return nil
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func (p *parser) instr(line string) error {
	var defs []Reg
	body := line
	if i := strings.Index(line, " = "); i >= 0 {
		for _, tok := range splitOperands(line[:i]) {
			r, err := p.reg(tok)
			if err != nil {
				return err
			}
			defs = append(defs, r)
		}
		body = strings.TrimSpace(line[i+3:])
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return p.errf("empty instruction")
	}
	op, ok := opByName[fields[0]]
	if !ok {
		return p.errf("unknown op %q", fields[0])
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, fields[0]))
	in := Instr{Op: op, Defs: defs}

	if op == Call {
		if !strings.HasPrefix(rest, "@") {
			return p.errf("call needs @target")
		}
		rest = rest[1:]
		if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
			in.Sym = rest[:sp]
			rest = strings.TrimSpace(rest[sp:])
		} else {
			in.Sym = rest
			rest = ""
		}
	}

	operands := splitOperands(rest)
	takesImm := false
	switch op {
	case LoadImm, Load, Store, SpillLoad, SpillStore, AddImm:
		takesImm = true
	}
	if takesImm {
		if len(operands) == 0 {
			return p.errf("%v needs an immediate", op)
		}
		imm, err := strconv.ParseInt(operands[len(operands)-1], 10, 64)
		if err != nil {
			return p.errf("bad immediate %q", operands[len(operands)-1])
		}
		in.Imm = imm
		operands = operands[:len(operands)-1]
	}

	// Control-flow targets come last for jump/branch.
	switch op {
	case Jump:
		if len(operands) != 1 {
			return p.errf("jump wants one target")
		}
		t, err := p.block(operands[0])
		if err != nil {
			return err
		}
		p.cur.Succs = []BlockID{t.ID}
		operands = nil
	case Branch:
		if len(operands) != 3 {
			return p.errf("branch wants cond and two targets")
		}
		cond, err := p.reg(operands[0])
		if err != nil {
			return err
		}
		t1, err := p.block(operands[1])
		if err != nil {
			return err
		}
		t2, err := p.block(operands[2])
		if err != nil {
			return err
		}
		in.Uses = []Reg{cond}
		p.cur.Succs = []BlockID{t1.ID, t2.ID}
		operands = nil
	}

	for _, tok := range operands {
		r, err := p.reg(tok)
		if err != nil {
			return err
		}
		in.Uses = append(in.Uses, r)
	}
	p.cur.Instrs = append(p.cur.Instrs, in)
	p.instrLines[p.cur] = append(p.instrLines[p.cur], p.line)
	return nil
}
