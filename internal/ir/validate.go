package ir

import (
	"errors"
	"fmt"
)

// Validate checks the structural invariants the analyses and
// allocators rely on and returns an error describing the first
// violation found, or nil.
//
// Checked invariants:
//   - the function has an entry block;
//   - terminators appear only as final instructions, and every block
//     with successors ends in the matching terminator;
//   - successor/predecessor lists are mutually consistent;
//   - Branch blocks have exactly two successors, Jump blocks one,
//     Ret blocks none;
//   - φ-functions appear only at block heads and have exactly one
//     argument per predecessor;
//   - operand registers are in range (virtual numbers < NumVirt);
//   - instruction operand arities match their opcodes.
func Validate(f *Func) error {
	if len(f.Blocks) == 0 {
		return errors.New("function has no blocks")
	}
	for i, b := range f.Blocks {
		if b.ID != BlockID(i) {
			return fmt.Errorf("block at index %d has ID b%d", i, b.ID)
		}
	}
	for _, b := range f.Blocks {
		if err := validateBlock(f, b); err != nil {
			return fmt.Errorf("b%d: %w", b.ID, err)
		}
	}
	// Succ/pred consistency.
	type edge struct{ from, to BlockID }
	succEdges := map[edge]int{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if int(s) >= len(f.Blocks) || s < 0 {
				return fmt.Errorf("b%d: successor b%d out of range", b.ID, s)
			}
			succEdges[edge{b.ID, s}]++
		}
	}
	predEdges := map[edge]int{}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			if int(p) >= len(f.Blocks) || p < 0 {
				return fmt.Errorf("b%d: predecessor b%d out of range", b.ID, p)
			}
			predEdges[edge{p, b.ID}]++
		}
	}
	for e, n := range succEdges {
		if predEdges[e] != n {
			return fmt.Errorf("edge b%d->b%d: %d succ entries but %d pred entries (run RecomputePreds?)", e.from, e.to, n, predEdges[e])
		}
	}
	for e, n := range predEdges {
		if succEdges[e] != n {
			return fmt.Errorf("edge b%d->b%d: %d pred entries but %d succ entries", e.from, e.to, n, succEdges[e])
		}
	}
	return nil
}

func validateBlock(f *Func, b *Block) error {
	sawNonPhi := false
	for i := range b.Instrs {
		in := &b.Instrs[i]
		last := i == len(b.Instrs)-1
		if in.Op.IsTerminator() && !last {
			return fmt.Errorf("instr %d: terminator %v not at block end", i, in.Op)
		}
		if in.Op == Phi {
			if sawNonPhi {
				return fmt.Errorf("instr %d: φ after non-φ instruction", i)
			}
			if len(in.Uses) != len(b.Preds) {
				return fmt.Errorf("instr %d: φ has %d args for %d predecessors", i, len(in.Uses), len(b.Preds))
			}
		} else if in.Op != Nop {
			sawNonPhi = true
		}
		if err := validateArity(in); err != nil {
			return fmt.Errorf("instr %d (%v): %w", i, in, err)
		}
		for _, r := range in.Defs {
			if err := checkReg(f, r); err != nil {
				return fmt.Errorf("instr %d: def %w", i, err)
			}
		}
		for _, r := range in.Uses {
			if err := checkReg(f, r); err != nil {
				return fmt.Errorf("instr %d: use %w", i, err)
			}
		}
	}
	term := b.Terminator()
	switch {
	case term != nil && term.Op == Branch:
		if len(b.Succs) != 2 {
			return fmt.Errorf("branch block has %d successors", len(b.Succs))
		}
	case term != nil && term.Op == Jump:
		if len(b.Succs) != 1 {
			return fmt.Errorf("jump block has %d successors", len(b.Succs))
		}
	case term != nil && term.Op == Ret:
		if len(b.Succs) != 0 {
			return fmt.Errorf("ret block has %d successors", len(b.Succs))
		}
	default:
		if len(b.Succs) != 0 {
			return fmt.Errorf("block with successors lacks a terminator")
		}
		// A block with no successors and no Ret is tolerated only if
		// empty (it may be under construction); otherwise require Ret.
		if len(b.Instrs) > 0 {
			return errors.New("non-empty block has no terminator and no successors")
		}
	}
	return nil
}

func checkReg(f *Func, r Reg) error {
	if r == NoReg {
		return errors.New("operand is NoReg")
	}
	if r.IsVirt() && r.VirtNum() >= f.NumVirt {
		return fmt.Errorf("virtual register %v out of range (NumVirt=%d)", r, f.NumVirt)
	}
	return nil
}

func validateArity(in *Instr) error {
	type arity struct{ defs, uses int }
	want := map[Op]arity{
		Nop:        {0, 0},
		Move:       {1, 1},
		LoadImm:    {1, 0},
		Load:       {1, 1},
		Store:      {0, 2},
		SpillStore: {0, 1},
		SpillLoad:  {1, 0},
		Neg:        {1, 1},
		AddImm:     {1, 1},
		Ret:        {0, -1}, // 0 or 1 use
		Jump:       {0, 0},
		Branch:     {0, 1},
	}
	if in.Op.IsArith() && in.Op != Neg {
		want[in.Op] = arity{1, 2}
	}
	w, ok := want[in.Op]
	switch in.Op {
	case Call:
		if len(in.Defs) > 1 {
			return fmt.Errorf("call with %d defs", len(in.Defs))
		}
		return nil
	case Phi:
		if len(in.Defs) != 1 {
			return fmt.Errorf("φ with %d defs", len(in.Defs))
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("unknown op %d", in.Op)
	}
	if len(in.Defs) != w.defs {
		return fmt.Errorf("want %d defs, have %d", w.defs, len(in.Defs))
	}
	if w.uses >= 0 && len(in.Uses) != w.uses {
		return fmt.Errorf("want %d uses, have %d", w.uses, len(in.Uses))
	}
	if in.Op == Ret && len(in.Uses) > 1 {
		return fmt.Errorf("ret with %d uses", len(in.Uses))
	}
	return nil
}
