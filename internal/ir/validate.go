package ir

import (
	"errors"
	"fmt"
	"slices"
)

// PosError is a validation failure located at a block (and, when
// Instr >= 0, a specific instruction within it). Parse and
// DecodeBinary use the coordinates to point diagnostics at the
// offending source line.
type PosError struct {
	Block BlockID
	Instr int // instruction index within the block, -1 for block-level
	Err   error
}

func (e *PosError) Error() string {
	if e.Instr < 0 {
		return fmt.Sprintf("b%d: %v", e.Block, e.Err)
	}
	return fmt.Sprintf("b%d: instr %d: %v", e.Block, e.Instr, e.Err)
}

func (e *PosError) Unwrap() error { return e.Err }

// Validate checks the structural invariants the analyses and
// allocators rely on and returns an error describing the first
// violation found, or nil. Violations inside a block are reported as
// *PosError, so callers with source positions can map them back.
//
// Checked invariants:
//   - the function has an entry block;
//   - terminators appear only as final instructions, and every block
//     with successors ends in the matching terminator;
//   - successor/predecessor lists are mutually consistent;
//   - Branch blocks have exactly two successors, Jump blocks one,
//     Ret blocks none;
//   - φ-functions appear only at block heads and have exactly one
//     argument per predecessor;
//   - operand registers are in range (virtual numbers < NumVirt);
//   - instruction operand arities match their opcodes.
func Validate(f *Func) error {
	if len(f.Blocks) == 0 {
		return errors.New("function has no blocks")
	}
	for i, b := range f.Blocks {
		if b.ID != BlockID(i) {
			return fmt.Errorf("block at index %d has ID b%d", i, b.ID)
		}
	}
	for _, b := range f.Blocks {
		if err := validateBlock(f, b); err != nil {
			return err
		}
	}
	// Succ/pred consistency: the two edge multisets must be equal.
	// Packed-and-sorted slices keep this allocation-light on the hot
	// path; the map-based diagnosis runs only on mismatch.
	var succs, preds []uint64
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if int(s) >= len(f.Blocks) || s < 0 {
				return fmt.Errorf("b%d: successor b%d out of range", b.ID, s)
			}
			succs = append(succs, uint64(b.ID)<<32|uint64(uint32(s)))
		}
	}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			if int(p) >= len(f.Blocks) || p < 0 {
				return fmt.Errorf("b%d: predecessor b%d out of range", b.ID, p)
			}
			preds = append(preds, uint64(p)<<32|uint64(uint32(b.ID)))
		}
	}
	slices.Sort(succs)
	slices.Sort(preds)
	if slices.Equal(succs, preds) {
		return nil
	}
	return describeEdgeMismatch(succs, preds)
}

// describeEdgeMismatch names the first edge whose succ and pred entry
// counts disagree. Only reached on invalid input.
func describeEdgeMismatch(succs, preds []uint64) error {
	succEdges := map[uint64]int{}
	for _, e := range succs {
		succEdges[e]++
	}
	predEdges := map[uint64]int{}
	for _, e := range preds {
		predEdges[e]++
	}
	unpack := func(e uint64) (from, to BlockID) {
		return BlockID(e >> 32), BlockID(uint32(e))
	}
	for _, e := range succs {
		if n := succEdges[e]; predEdges[e] != n {
			from, to := unpack(e)
			return fmt.Errorf("edge b%d->b%d: %d succ entries but %d pred entries (run RecomputePreds?)", from, to, n, predEdges[e])
		}
	}
	for _, e := range preds {
		if n := predEdges[e]; succEdges[e] != n {
			from, to := unpack(e)
			return fmt.Errorf("edge b%d->b%d: %d pred entries but %d succ entries", from, to, n, succEdges[e])
		}
	}
	return errors.New("edge multisets differ")
}

func validateBlock(f *Func, b *Block) error {
	at := func(i int, err error) error { return &PosError{Block: b.ID, Instr: i, Err: err} }
	sawNonPhi := false
	for i := range b.Instrs {
		in := &b.Instrs[i]
		last := i == len(b.Instrs)-1
		if in.Op.IsTerminator() && !last {
			return at(i, fmt.Errorf("terminator %v not at block end", in.Op))
		}
		if in.Op == Phi {
			if sawNonPhi {
				return at(i, errors.New("φ after non-φ instruction"))
			}
			if len(in.Uses) != len(b.Preds) {
				return at(i, fmt.Errorf("φ has %d args for %d predecessors", len(in.Uses), len(b.Preds)))
			}
		} else if in.Op != Nop {
			sawNonPhi = true
		}
		if err := validateArity(in); err != nil {
			return at(i, fmt.Errorf("%v: %w", in, err))
		}
		for _, r := range in.Defs {
			if err := checkReg(f, r); err != nil {
				return at(i, fmt.Errorf("def %w", err))
			}
		}
		for _, r := range in.Uses {
			if err := checkReg(f, r); err != nil {
				return at(i, fmt.Errorf("use %w", err))
			}
		}
	}
	term := b.Terminator()
	blockErr := func(err error) error { return &PosError{Block: b.ID, Instr: -1, Err: err} }
	switch {
	case term != nil && term.Op == Branch:
		if len(b.Succs) != 2 {
			return blockErr(fmt.Errorf("branch block has %d successors", len(b.Succs)))
		}
	case term != nil && term.Op == Jump:
		if len(b.Succs) != 1 {
			return blockErr(fmt.Errorf("jump block has %d successors", len(b.Succs)))
		}
	case term != nil && term.Op == Ret:
		if len(b.Succs) != 0 {
			return blockErr(fmt.Errorf("ret block has %d successors", len(b.Succs)))
		}
	default:
		if len(b.Succs) != 0 {
			return blockErr(errors.New("block with successors lacks a terminator"))
		}
		// A block with no successors and no Ret is tolerated only if
		// empty (it may be under construction); otherwise require Ret.
		if len(b.Instrs) > 0 {
			return blockErr(errors.New("non-empty block has no terminator and no successors"))
		}
	}
	return nil
}

func checkReg(f *Func, r Reg) error {
	if r == NoReg {
		return errors.New("operand is NoReg")
	}
	if r.IsVirt() && r.VirtNum() >= f.NumVirt {
		return fmt.Errorf("virtual register %v out of range (NumVirt=%d)", r, f.NumVirt)
	}
	return nil
}

type arity struct {
	defs, uses int8
	known      bool
}

// arityTable is the fixed def/use shape per opcode, indexed by Op so
// the per-instruction check is two array loads — validation runs on
// every Parse and DecodeBinary, so this is decode-hot.
var arityTable = func() [numOps]arity {
	var t [numOps]arity
	set := func(op Op, defs, uses int8) { t[op] = arity{defs, uses, true} }
	set(Nop, 0, 0)
	set(Move, 1, 1)
	set(LoadImm, 1, 0)
	set(Load, 1, 1)
	set(Store, 0, 2)
	set(SpillStore, 0, 1)
	set(SpillLoad, 1, 0)
	set(Neg, 1, 1)
	set(AddImm, 1, 1)
	set(Ret, 0, -1) // 0 or 1 use
	set(Jump, 0, 0)
	set(Branch, 0, 1)
	for op := Op(0); op < numOps; op++ {
		if op.IsArith() && op != Neg {
			set(op, 1, 2)
		}
	}
	return t
}()

func validateArity(in *Instr) error {
	var w arity
	ok := false
	if int(in.Op) < len(arityTable) {
		w = arityTable[in.Op]
		ok = w.known
	}
	switch in.Op {
	case Call:
		if len(in.Defs) > 1 {
			return fmt.Errorf("call with %d defs", len(in.Defs))
		}
		return nil
	case Phi:
		if len(in.Defs) != 1 {
			return fmt.Errorf("φ with %d defs", len(in.Defs))
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("unknown op %d", in.Op)
	}
	if len(in.Defs) != int(w.defs) {
		return fmt.Errorf("want %d defs, have %d", w.defs, len(in.Defs))
	}
	if w.uses >= 0 && len(in.Uses) != int(w.uses) {
		return fmt.Errorf("want %d uses, have %d", w.uses, len(in.Uses))
	}
	if in.Op == Ret && len(in.Uses) > 1 {
		return fmt.Errorf("ret with %d uses", len(in.Uses))
	}
	return nil
}
