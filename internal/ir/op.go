package ir

// Op identifies the operation an instruction performs. The set is the
// minimal register-transfer vocabulary the paper's examples use:
// copies, memory traffic, integer/float arithmetic, calls, control
// flow, and φ-functions for SSA form.
type Op uint8

const (
	// Nop does nothing. Deleted moves become Nops until compaction.
	Nop Op = iota

	// Move copies Uses[0] into Defs[0]. Moves are the coalescing
	// candidates ("copy-related" nodes in the paper's terminology).
	Move

	// LoadImm sets Defs[0] to the immediate Imm.
	LoadImm

	// Load reads Defs[0] from memory at address Uses[0]+Imm.
	// Adjacent loads off one base register are paired-load candidates
	// on machines with LoadPairRule set (paper §3.1, "dependent
	// register usage").
	Load

	// Store writes Uses[0] to memory at address Uses[1]+Imm.
	Store

	// SpillStore writes Uses[0] to spill slot Imm. Inserted by the
	// allocation driver; counted as spill code.
	SpillStore

	// SpillLoad reads Defs[0] from spill slot Imm. Inserted by the
	// allocation driver; counted as spill code.
	SpillLoad

	// Two-operand arithmetic: Defs[0] = Uses[0] op Uses[1].
	Add
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
	Cmp // Defs[0] = (Uses[0] < Uses[1]) ? 1 : 0

	// Neg is unary: Defs[0] = -Uses[0].
	Neg

	// AddImm computes Defs[0] = Uses[0] + Imm (the add-immediate form
	// the paper's Figure 7 uses at i7, and the instruction whose
	// large-immediate variant has limited register choices on IA-64,
	// §3.1).
	AddImm

	// Call invokes the function named Sym. Uses holds the argument
	// registers (physical parameter registers after convention
	// lowering), Defs holds the result register if any. A call
	// additionally clobbers every volatile physical register of the
	// target machine; the interference builder and the interpreter
	// both honor that.
	Call

	// Ret returns from the function; Uses[0], if present, is the
	// return value register.
	Ret

	// Jump transfers control to Block.Succs[0].
	Jump

	// Branch transfers control to Block.Succs[0] when Uses[0] is
	// non-zero and to Block.Succs[1] otherwise.
	Branch

	// Phi is an SSA φ-function: Defs[0] selects Uses[i] when control
	// arrived from Block.Preds[i].
	Phi

	numOps
)

var opNames = [numOps]string{
	Nop:        "nop",
	Move:       "move",
	LoadImm:    "loadimm",
	Load:       "load",
	Store:      "store",
	SpillStore: "spillstore",
	SpillLoad:  "spillload",
	Add:        "add",
	Sub:        "sub",
	Mul:        "mul",
	Div:        "div",
	And:        "and",
	Or:         "or",
	Xor:        "xor",
	Shl:        "shl",
	Shr:        "shr",
	Cmp:        "cmp",
	Neg:        "neg",
	AddImm:     "addimm",
	Call:       "call",
	Ret:        "ret",
	Jump:       "jump",
	Branch:     "branch",
	Phi:        "phi",
}

// String returns the lower-case mnemonic used by the textual IR.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// opByName maps mnemonics back to Ops for the parser.
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// IsTerminator reports whether op must appear only as the final
// instruction of a block.
func (op Op) IsTerminator() bool {
	return op == Ret || op == Jump || op == Branch
}

// IsArith reports whether op is a pure arithmetic operation
// (two-operand or unary, no memory or control effects).
func (op Op) IsArith() bool {
	switch op {
	case Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Cmp, Neg:
		return true
	}
	return false
}

// IsSpill reports whether op is allocator-inserted spill traffic.
func (op Op) IsSpill() bool { return op == SpillLoad || op == SpillStore }
