package ir

import (
	"bytes"
	"encoding/hex"
	"io"
	"strings"
	"testing"
)

// binTestSrc exercises every wire feature: params, an immediate op, a
// call with a symbol (used twice, so interning matters), branch/jump
// control flow, and a φ.
const binTestSrc = `func wire(v0, v1) {
b0:
  v2 = load v0, 8
  v3 = add v2, v1
  branch v3, b1, b2
b1:
  v4 = call @helper v3
  v5 = call @helper v4
  jump b2
b2:
  v6 = phi v3, v5
  ret v6
}
`

func TestBinaryRoundTrip(t *testing.T) {
	f := MustParse(binTestSrc)
	enc := EncodeBinary(f)
	if !IsBinary(enc) {
		t.Fatalf("IsBinary(EncodeBinary(f)) = false")
	}
	g, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got, want := g.String(), f.String(); got != want {
		t.Errorf("round trip changed text:\n got: %s\nwant: %s", got, want)
	}
	if g.NumVirt != f.NumVirt || g.NumSpillSlots != f.NumSpillSlots {
		t.Errorf("round trip changed counters: NumVirt %d/%d NumSpillSlots %d/%d",
			g.NumVirt, f.NumVirt, g.NumSpillSlots, f.NumSpillSlots)
	}
	// Canonical: re-encoding the decoded function reproduces the bytes.
	if !bytes.Equal(EncodeBinary(g), enc) {
		t.Errorf("EncodeBinary(DecodeBinary(enc)) != enc")
	}
}

// TestBinaryGolden pins the exact wire bytes of a small function. A
// mismatch means the format changed: bump BinaryVersion and regenerate
// (the failure message prints the new bytes).
func TestBinaryGolden(t *testing.T) {
	f := MustParse(`func g(v0) {
b0:
  v1 = addimm v0, -3
  v2 = call @f v1
  ret v2
}
`)
	const want = "50474952" + // "PGIR"
		"01" + // version 1
		"0167" + // name "g"
		"03" + "00" + // numVirt=3 numSpill=0
		"0102" + // params: 1 × v0 (sreg 2·0+2)
		"010166" + // symbols: 1 × "f"
		"01" + // 1 block
		"00" + "03" + // 0 succs, 3 instrs
		"1201010401" + "02" + "05" + // v1 = addimm v0, -3: op flags=imm defs=[v1] uses=[v0] zigzag(-3)=5
		"1302010601" + "04" + "00" + // v2 = call @f v1: flags=sym, sym index 0
		"1400000106" // ret v2: op flags=0 defs=[] uses=[v2]
	got := hex.EncodeToString(EncodeBinary(f))
	if got != want {
		t.Errorf("golden encoding changed:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	enc := EncodeBinary(MustParse(binTestSrc))

	// Every truncation must error, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeBinary(enc[:n]); err == nil {
			t.Errorf("DecodeBinary(enc[:%d]) succeeded on truncated input", n)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeBinary(append(append([]byte{}, enc...), 0)); err == nil {
		t.Errorf("DecodeBinary accepted trailing bytes")
	}
	// Every single-byte flip either errors or yields a function that
	// still validates (flips in name/symbol bytes are legal).
	for i := range enc {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0x2a
		f, err := DecodeBinary(mut)
		if err == nil {
			if err := Validate(f); err != nil {
				t.Errorf("flip at %d: decode succeeded but Validate fails: %v", i, err)
			}
		}
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XGIR\x01")},
		{"future version", []byte("PGIR\x63")},
		{"huge count", append(append([]byte{}, enc[:6]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
	}
	for _, tc := range cases {
		if _, err := DecodeBinary(tc.data); err == nil {
			t.Errorf("%s: DecodeBinary succeeded", tc.name)
		}
	}
}

func FuzzDecodeBinary(f *testing.F) {
	f.Add(EncodeBinary(MustParse(binTestSrc)))
	f.Add(EncodeBinary(MustParse("func empty() {\nb0:\n  ret\n}\n")))
	f.Add([]byte("PGIR\x01"))
	f.Add([]byte("PGIR\x01\x00\x05\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeBinary(data) // must never panic
		if err != nil {
			return
		}
		// Anything accepted must be canonical and validated.
		if err := Validate(g); err != nil {
			t.Fatalf("accepted function fails Validate: %v", err)
		}
		re, err := DecodeBinary(EncodeBinary(g))
		if err != nil {
			t.Fatalf("re-decode of accepted function: %v", err)
		}
		if re.String() != g.String() {
			t.Fatalf("re-decode changed function")
		}
	})
}

func TestStreamDecoder(t *testing.T) {
	fs := []*Func{
		MustParse(binTestSrc),
		MustParse("func second() {\nb0:\n  v0 = loadimm 7\n  ret v0\n}\n"),
	}
	var wire []byte
	for _, f := range fs {
		wire = AppendBinaryFrame(wire, f)
	}
	d := NewStreamDecoder(bytes.NewReader(wire))
	for i, f := range fs {
		g, err := d.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if g.String() != f.String() {
			t.Errorf("frame %d decoded differently", i)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}

	// Truncated mid-frame: ErrUnexpectedEOF, not io.EOF.
	d = NewStreamDecoder(bytes.NewReader(wire[:len(wire)-3]))
	if _, err := d.Next(); err != nil {
		t.Fatalf("first frame of truncated stream: %v", err)
	}
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated frame: err = %v, want mid-frame error", err)
	}

	// Oversized frame limit enforced before allocation.
	d = NewStreamDecoder(strings.NewReader("\xff\xff\xff\xff\x7f"))
	d.MaxFrame = 1 << 20
	if _, err := d.Next(); err == nil {
		t.Errorf("oversized frame accepted")
	}
}
