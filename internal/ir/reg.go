// Package ir defines the register-transfer intermediate representation
// consumed by the register allocators in this repository.
//
// A function (Func) is a list of basic blocks (Block) holding
// instructions (Instr) over virtual and physical registers (Reg).
// The representation is deliberately close to the one the paper's
// allocators operate on inside the IBM IA-64 JIT: an infinite supply of
// virtual registers, explicit copies for calling conventions, and
// explicit φ-functions when a function is in SSA form.
package ir

import "fmt"

// Reg names a register operand. The zero value, NoReg, means "no
// register". Physical machine registers occupy the small positive
// numbers below FirstVirtual; virtual registers occupy FirstVirtual and
// above. The encoding keeps Reg a simple comparable scalar that can be
// used as a map key or array index.
type Reg int32

const (
	// NoReg is the absent register; it is the zero Reg.
	NoReg Reg = 0

	// FirstVirtual is the encoding boundary between physical and
	// virtual registers. Physical register n is encoded as Reg(n+1),
	// so at most FirstVirtual-1 physical registers can be named.
	FirstVirtual Reg = 256
)

// Phys returns the Reg naming physical register n (0-based machine
// register number). It panics if n is out of the encodable range.
func Phys(n int) Reg {
	if n < 0 || n >= int(FirstVirtual)-1 {
		panic(fmt.Sprintf("ir.Phys: register number %d out of range", n))
	}
	return Reg(n + 1)
}

// Virt returns the Reg naming virtual register n (0-based).
func Virt(n int) Reg {
	if n < 0 {
		panic(fmt.Sprintf("ir.Virt: negative virtual register %d", n))
	}
	return FirstVirtual + Reg(n)
}

// IsPhys reports whether r names a physical machine register.
func (r Reg) IsPhys() bool { return r > NoReg && r < FirstVirtual }

// IsVirt reports whether r names a virtual register.
func (r Reg) IsVirt() bool { return r >= FirstVirtual }

// Valid reports whether r names any register at all.
func (r Reg) Valid() bool { return r != NoReg }

// PhysNum returns the 0-based machine register number of a physical
// register. It panics if r is not physical.
func (r Reg) PhysNum() int {
	if !r.IsPhys() {
		panic(fmt.Sprintf("ir.Reg.PhysNum: %v is not physical", r))
	}
	return int(r) - 1
}

// VirtNum returns the 0-based virtual register number. It panics if r
// is not virtual.
func (r Reg) VirtNum() int {
	if !r.IsVirt() {
		panic(fmt.Sprintf("ir.Reg.VirtNum: %v is not virtual", r))
	}
	return int(r - FirstVirtual)
}

// String renders physical registers as r<n> and virtual registers as
// v<n>, matching the textual IR syntax.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "<none>"
	case r.IsPhys():
		return fmt.Sprintf("r%d", r.PhysNum())
	default:
		return fmt.Sprintf("v%d", r.VirtNum())
	}
}
