package regalloc_test

import (
	"strings"
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

func TestAllocateAllMatchesSequentialRun(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[0], m)

	batch, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
		NewAllocator: func() regalloc.Allocator { return core.New() },
		Workers:      4,
	})
	if err != nil {
		t.Fatalf("AllocateAll: %v", err)
	}
	if len(batch.Funcs) != len(funcs) || len(batch.Stats) != len(funcs) {
		t.Fatalf("batch sized %d/%d funcs/stats, want %d", len(batch.Funcs), len(batch.Stats), len(funcs))
	}
	for i, f := range funcs {
		out, stats, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
		if err != nil {
			t.Fatalf("Run(%s): %v", f.Name, err)
		}
		if got, want := batch.Funcs[i].String(), out.String(); got != want {
			t.Errorf("func %d (%s): batch output differs from sequential Run", i, f.Name)
		}
		if batch.Stats[i].SpilledWebs != stats.SpilledWebs || batch.Stats[i].MovesEliminated != stats.MovesEliminated {
			t.Errorf("func %d (%s): batch stats differ: %+v vs %+v", i, f.Name, batch.Stats[i], stats)
		}
	}
}

func TestAllocateAllWorkerCountInvariance(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[1], m)

	render := func(workers int) string {
		batch, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
			NewAllocator: func() regalloc.Allocator { return core.New() },
			Workers:      workers,
		})
		if err != nil {
			t.Fatalf("AllocateAll(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for _, f := range batch.Funcs {
			b.WriteString(f.String())
		}
		return b.String()
	}

	want := render(1)
	for _, workers := range []int{2, 8, 0} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d produced different allocations than workers=1", workers)
		}
	}
}

func TestAllocateAllRequiresFactory(t *testing.T) {
	m := target.UsageModel(16)
	if _, err := regalloc.AllocateAll(nil, m, regalloc.BatchOptions{}); err == nil {
		t.Fatal("want error for missing NewAllocator factory")
	}
}
