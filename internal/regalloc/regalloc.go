// Package regalloc is the shared register-allocation framework: the
// per-round Context handed to every allocator, the Result contract,
// assignment validation, and the driver that iterates
// renumber → build → allocate → spill-code insertion to a fixed point
// and finally rewrites the function onto physical registers.
package regalloc

import (
	"fmt"
	"math/bits"

	"prefcolor/internal/cfg"
	"prefcolor/internal/costmodel"
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
)

// InfiniteCost marks spill temporaries: live ranges the spiller just
// created, which must never be chosen for spilling again.
const InfiniteCost = 1e18

// Context is one allocation round's view of the function: renumbered
// code plus every analysis the allocators consume.
type Context struct {
	F       *ir.Func
	Machine *target.Machine
	Graph   *ig.Graph
	Loops   *cfg.LoopInfo
	Live    *liveness.Info
	Costs   *costmodel.Info

	// SpillTemp[w] marks web w as allocator-created spill traffic.
	SpillTemp []bool

	// Telemetry is the round's instrumentation collector; nil (the
	// common case) disables collection, and every collector method is
	// nil-safe, so allocators thread it unconditionally. Telemetry
	// observes only — it must never steer an allocation decision.
	Telemetry *telemetry.Collector

	// Workspace is the scratch arena this context was built in, or nil
	// for a one-shot context. Allocators may park reusable buffers on
	// it via SetAllocatorScratch; they must tolerate it being nil.
	Workspace *Workspace
}

// NewContext runs the standard analyses over a renumbered function.
// spillTemp may be nil.
func NewContext(f *ir.Func, m *target.Machine, spillTemp []bool) (*Context, error) {
	return NewContextIn(nil, f, m, spillTemp)
}

// NewContextIn is NewContext with the analyses computed into ws's
// reusable buffers (nil ws allocates fresh). Either way the liveness
// solution is computed once and shared by the cost model and the
// graph builder.
func NewContextIn(ws *Workspace, f *ir.Func, m *target.Machine, spillTemp []bool) (*Context, error) {
	dom := cfg.NewDomTree(f)
	loops := cfg.FindLoops(f, dom)
	var live *liveness.Info
	var gws *ig.GraphScratch
	if ws != nil {
		live = liveness.ComputeInto(f, &ws.live)
		gws = &ws.graph
	} else {
		live = liveness.Compute(f)
	}
	costs := costmodel.Analyze(f, m, loops, live)
	g, err := ig.BuildInto(gws, f, m, loops, live)
	if err != nil {
		return nil, err
	}
	if spillTemp == nil {
		spillTemp = make([]bool, f.NumVirt)
	}
	ctx := &Context{
		F: f, Machine: m, Graph: g, Loops: loops, Live: live,
		Costs: costs, SpillTemp: spillTemp, Workspace: ws,
	}
	for w := 0; w < f.NumVirt; w++ {
		c := costs.MemCost(w)
		if spillTemp[w] {
			c = InfiniteCost
		}
		g.SetSpillCost(g.NodeOf(ir.Virt(w)), c)
	}
	return ctx, nil
}

// K returns the machine's register count.
func (ctx *Context) K() int { return ctx.Machine.NumRegs }

// Result is one round's allocation outcome. Colors maps web nodes to
// register numbers; the rewrite resolves a web's color by looking up
// the web node itself first and then its coalescing representative,
// so allocators that split coalesced nodes (optimistic coalescing)
// can color members individually. Spilled lists web nodes (originals,
// not representatives) whose live ranges get spill code.
type Result struct {
	Colors  map[ig.NodeID]int
	Spilled []ig.NodeID
}

// NewResult returns an empty result.
func NewResult() *Result { return &Result{Colors: map[ig.NodeID]int{}} }

// ColorOf resolves the color of original web node n, following the
// graph's coalescing aliases; a web coalesced into a physical register
// gets that register. ok is false for spilled nodes.
func (r *Result) ColorOf(g *ig.Graph, n ig.NodeID) (int, bool) {
	if c, ok := r.Colors[n]; ok {
		return c, true
	}
	rep := g.Find(n)
	if g.IsPhys(rep) {
		return g.PhysColor(rep), true
	}
	if c, ok := r.Colors[rep]; ok {
		return c, true
	}
	return -1, false
}

// Allocator is one coloring strategy, run once per spill round.
type Allocator interface {
	// Name identifies the algorithm in stats and figures.
	Name() string

	// Allocate colors ctx.Graph. It may coalesce and remove graph
	// nodes. If it returns spills, the driver inserts spill code and
	// starts a fresh round.
	Allocate(ctx *Context) (*Result, error)
}

// CheckResult validates an allocation against the original
// (pre-coalescing) interference graph:
//
//   - every web is either colored or spilled,
//   - colors are within machine range,
//   - no two interfering webs share a color,
//   - no web shares a color with an interfering physical register,
//   - spill temporaries are never spilled.
func CheckResult(ctx *Context, res *Result) error {
	g := ctx.Graph
	spilled := map[ig.NodeID]bool{}
	for _, s := range res.Spilled {
		spilled[s] = true
	}
	color := make([]int, g.NumNodes())
	for i := range color {
		color[i] = -1
	}
	for i := 0; i < g.NumPhys(); i++ {
		color[i] = i
	}
	for w := 0; w < g.NumWebs(); w++ {
		n := ig.NodeID(g.NumPhys() + w)
		if spilled[n] || spilled[g.Find(n)] {
			if ctx.SpillTemp[w] {
				return fmt.Errorf("regalloc: spill temporary v%d was spilled again", w)
			}
			continue
		}
		c, ok := res.ColorOf(g, n)
		if !ok {
			// A spilling round may legitimately stop before coloring;
			// completeness is only required of the final round.
			if len(res.Spilled) == 0 {
				return fmt.Errorf("regalloc: web v%d neither colored nor spilled", w)
			}
			continue
		}
		if c < 0 || c >= ctx.K() {
			return fmt.Errorf("regalloc: web v%d got out-of-range register %d", w, c)
		}
		color[n] = c
	}
	for w := 0; w < g.NumWebs(); w++ {
		n := ig.NodeID(g.NumPhys() + w)
		if color[n] < 0 {
			continue
		}
		// Word-at-a-time neighbor walk: OrigNeighbors materializes a
		// slice per call, which made this validation pass the hottest
		// allocation site in a warm allocate.
		for wi, bw := range g.OrigRow(n) {
			base := ig.NodeID(wi << 6)
			for ; bw != 0; bw &= bw - 1 {
				nb := base + ig.NodeID(bits.TrailingZeros64(bw))
				if color[nb] >= 0 && color[nb] == color[n] {
					return fmt.Errorf("regalloc: interfering nodes %v and %v share r%d",
						g.RegOf(n), g.RegOf(nb), color[n])
				}
			}
		}
	}
	return nil
}
