package regalloc

import (
	"testing"

	"prefcolor/internal/ir"
)

// TestReadBeforeWritten pins the classifier the spill inserters use to
// decide which webs need their (undefined) entry value captured: webs
// with an upward-exposed use on some path from entry, excluding
// parameters.
func TestReadBeforeWritten(t *testing.T) {
	// b0 -> b1 -> b2, with a loop b2 -> b1.
	//   v0: param, used in b1            -> false (defined by caller)
	//   v1: defined b0, used b1          -> false
	//   v2: used b1, defined nowhere     -> true
	//   v3: def and use in one instr b2  -> true (use reads pre-def value)
	//   v4: defined b1, used b2          -> false on first visit? no:
	//       every path to b2 passes b1's def -> false
	//   v5: used b2, defined b1 AFTER the loop edge? b1 defines v5
	//       before b2 ever runs -> false
	src := `func f(r0) {
b0:
  v1 = loadimm 7
  jump b1
b1:
  v6 = add v0, v2
  v1 = addimm v1, 1
  v4 = move v1
  v5 = move v1
  jump b2
b2:
  v3 = addimm v3, -1
  v7 = add v4, v5
  branch v7, b1, b3
b3:
  ret v1
}
`
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// v0 is not a declared param here (params are r0), so patch one in
	// to cover the parameter exemption.
	f.Params = append(f.Params, ir.Virt(0))
	want := map[int]bool{0: false, 1: false, 2: true, 3: true, 4: false, 5: false}
	for w, exp := range want {
		if got := readBeforeWritten(f, ir.Virt(w)); got != exp {
			t.Errorf("readBeforeWritten(v%d) = %v, want %v", w, got, exp)
		}
	}
}
