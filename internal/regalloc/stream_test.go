package regalloc_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// Streaming ingestion from binary frames must produce exactly what
// AllocateAll produces from the pre-parsed slice — same functions at
// the same indices, decode/allocate overlap notwithstanding.
func TestAllocateStreamMatchesAllocateAll(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[0], m)

	opts := regalloc.BatchOptions{
		NewAllocator: func() regalloc.Allocator { return core.New() },
		Workers:      4,
	}
	want, err := regalloc.AllocateAll(funcs, m, opts)
	if err != nil {
		t.Fatalf("AllocateAll: %v", err)
	}

	var wire []byte
	for _, f := range funcs {
		wire = ir.AppendBinaryFrame(wire, f)
	}
	dec := ir.NewStreamDecoder(bytes.NewReader(wire))
	opts.ReadAhead = 3
	got, err := regalloc.AllocateStream(dec.Next, m, opts)
	if err != nil {
		t.Fatalf("AllocateStream: %v", err)
	}
	if len(got.Funcs) != len(want.Funcs) {
		t.Fatalf("stream produced %d funcs, want %d", len(got.Funcs), len(want.Funcs))
	}
	for i := range want.Funcs {
		if got.Funcs[i].String() != want.Funcs[i].String() {
			t.Errorf("func %d (%s): stream output differs from slice batch", i, funcs[i].Name)
		}
	}
}

// A source failure aborts the stream and is reported at its position.
func TestAllocateStreamSourceError(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[0], m)[:3]
	boom := errors.New("decode exploded")

	i := 0
	src := func() (*ir.Func, error) {
		if i == 2 {
			return nil, boom
		}
		f := funcs[i]
		i++
		return f, nil
	}
	_, err := regalloc.AllocateStream(src, m, regalloc.BatchOptions{
		NewAllocator: func() regalloc.Allocator { return core.New() },
		Workers:      2,
	})
	if err == nil {
		t.Fatal("want error from failing source")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the source failure", err)
	}
	if !strings.Contains(err.Error(), "function 2") {
		t.Errorf("error %q does not carry the stream position", err)
	}
}
