// Package chaitin implements the baseline allocator of the paper's
// Figure 1(a): Chaitin-style coloring with aggressive coalescing,
// pessimistic simplification, and spill-everywhere. It is the "base
// algorithm" every ratio in Figure 9 is normalized against.
package chaitin

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

// Allocator is the Chaitin 1982 algorithm.
type Allocator struct{}

// New returns the allocator.
func New() *Allocator { return &Allocator{} }

// Name implements regalloc.Allocator.
func (*Allocator) Name() string { return "chaitin" }

// Allocate implements regalloc.Allocator: coalesce aggressively, then
// simplify; when only significant-degree nodes remain, mark the
// cheapest for spilling and keep going. If anything spilled, the
// round ends there (the driver inserts spill code and retries);
// otherwise select colors in stack order.
func (*Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	regalloc.AggressiveCoalesce(g)

	res := regalloc.NewResult()
	var stack []ig.NodeID
	for {
		progress := false
		for _, n := range g.ActiveNodes() {
			if g.Degree(n) < k {
				g.Remove(n)
				stack = append(stack, n)
				progress = true
			}
		}
		if progress {
			continue
		}
		// Only significant-degree nodes remain (if any): spill the
		// cheapest per remaining degree.
		cand := regalloc.SpillCandidate(g)
		if cand < 0 {
			break
		}
		g.Remove(cand)
		res.Spilled = append(res.Spilled, cand)
	}
	if len(res.Spilled) > 0 {
		return res, nil
	}

	coloring := regalloc.NewColoring(g)
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		avail := coloring.Available(n, k)
		if len(avail) == 0 {
			// Unreachable given the simplification guarantee.
			res.Spilled = append(res.Spilled, n)
			continue
		}
		coloring.Set(n, avail[0])
	}
	coloring.Fill(res)
	return res, nil
}
