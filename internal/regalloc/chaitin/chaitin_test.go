package chaitin_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// Chaitin is pessimistic: on an uncolorable graph it reports spills
// and no colors at all (the round restarts after spilling).
func TestChaitinPessimisticSpill(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v1, v2
  v6 = add v5, v3
  v7 = add v6, v4
  v8 = add v7, v0
  ret v8
}
`, 4)
	res, err := chaitin.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) == 0 {
		t.Fatal("expected a spill decision at K=4")
	}
	if len(res.Colors) != 0 {
		t.Errorf("pessimistic round colored %d nodes despite spilling", len(res.Colors))
	}
}

// On a colorable graph Chaitin coalesces the copy and colors everything.
func TestChaitinColorsAndCoalesces(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = move v0
  v2 = add v1, v1
  ret v2
}
`, 8)
	res, err := chaitin.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v on an easy graph", res.Spilled)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	g := ctx.Graph
	c0, _ := res.ColorOf(g, g.NodeOf(ir.Virt(0)))
	c1, _ := res.ColorOf(g, g.NodeOf(ir.Virt(1)))
	if c0 != c1 {
		t.Errorf("copy-related webs got r%d and r%d; aggressive coalescing should merge them", c0, c1)
	}
}
