package regalloc_test

import (
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// TestPriorityUsesAtLeastAsManyRegisters checks the tendency the
// paper's §7 quotes from Lueh & Gross: priority-based coloring favors
// allocating high-priority ranges early "though that may use more
// colors", while Chaitin-style packing minimizes register count.
func TestPriorityUsesAtLeastAsManyRegisters(t *testing.T) {
	m := target.UsageModel(16)
	p, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	totalPri, totalCha := 0, 0
	for _, f := range workload.Generate(p, m) {
		_, sp, err := regalloc.Run(f, m, priority.New(), regalloc.Options{})
		if err != nil {
			t.Fatalf("priority: %v", err)
		}
		_, sc, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
		if err != nil {
			t.Fatalf("chaitin: %v", err)
		}
		totalPri += sp.UsedRegs
		totalCha += sc.UsedRegs
	}
	if totalPri < totalCha {
		t.Errorf("priority used fewer registers in aggregate (%d) than Chaitin (%d); expected the opposite tendency", totalPri, totalCha)
	}
}

// TestPriorityHighBenefitRangesKeepRegisters: a hot loop value and
// many cold values competing for few registers — the hot one must not
// be the spill victim.
func TestPriorityHotValueStaysInRegister(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  v6 = loadimm 3
  jump b1
b1:
  v7 = add v1, v1
  v1 = add v7, v0
  v6 = addimm v6, -1
  branch v6, b1, b2
b2:
  v8 = add v2, v3
  v9 = add v8, v4
  v10 = add v9, v5
  v11 = add v10, v1
  ret v11
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, stats, err := regalloc.Run(f, m, priority.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The loop body must contain no spill traffic for the hot
	// accumulator: check that b1 (the loop block) has at most the
	// spill code of the cold values hoisted around it.
	loop := out.Blocks[1]
	spills := 0
	for _, in := range loop.Instrs {
		if in.Op.IsSpill() {
			spills++
		}
	}
	if spills > 0 {
		t.Errorf("priority coloring spilled inside the hot loop (%d spill instrs):\n%s\nstats: %+v", spills, out, stats)
	}
}
