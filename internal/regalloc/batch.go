package regalloc

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
)

// BatchOptions configures AllocateAll and AllocateStream.
type BatchOptions struct {
	Options

	// NewAllocator returns a fresh allocator for one function.
	// Allocator instances are stateful, so one cannot be shared
	// across concurrently-allocated functions. Required.
	NewAllocator func() Allocator

	// Workers bounds the worker pool; zero or negative means
	// GOMAXPROCS.
	Workers int

	// ReadAhead bounds how many decoded-but-not-yet-allocated
	// functions AllocateStream holds; zero means twice the worker
	// count. A small bound keeps the producer (parser or binary
	// decoder) just ahead of the allocators without buffering a whole
	// batch in memory.
	ReadAhead int
}

// BatchResult holds the per-function outputs of AllocateAll,
// index-aligned with the input slice.
type BatchResult struct {
	Funcs []*ir.Func
	Stats []*Stats

	// Telemetry is the batch's merged instrumentation report; nil
	// unless Options.CollectTelemetry (or a TraceWriter) was set.
	// Every worker aggregates its own functions' snapshots privately
	// — no locks, no shared counters — and the per-worker partials
	// are merged once after the pool drains. All snapshot fields are
	// integral sums, so the merged report is identical whatever the
	// scheduling.
	Telemetry *telemetry.Snapshot
}

// FuncSource yields a stream of functions for AllocateStream, one per
// call, ending with io.EOF. Any other error aborts the stream at that
// position. Sources are called from a single producer goroutine, so
// they may parse or decode lazily without locking.
type FuncSource func() (*ir.Func, error)

// SliceSource adapts an in-memory slice to a FuncSource.
func SliceSource(funcs []*ir.Func) FuncSource {
	i := 0
	return func() (*ir.Func, error) {
		if i >= len(funcs) {
			return nil, io.EOF
		}
		f := funcs[i]
		i++
		return f, nil
	}
}

// AllocateAll runs the full allocation driver over every function
// with a bounded worker pool. Each function's allocation is
// independent (Run clones its input), so the batch is embarrassingly
// parallel; results land at the input's index, making the output —
// and the error, which is always the lowest-index failure — identical
// regardless of worker count or scheduling.
func AllocateAll(funcs []*ir.Func, m *target.Machine, opts BatchOptions) (*BatchResult, error) {
	if opts.Workers <= 0 || opts.Workers > len(funcs) {
		opts.Workers = len(funcs)
	}
	return AllocateStream(SliceSource(funcs), m, opts)
}

// streamItem is one produced function with its stream position.
type streamItem struct {
	i int
	f *ir.Func
}

// AllocateStream is AllocateAll over a lazily-produced function
// stream: a single producer pulls from src (parsing or decoding as it
// goes) into a bounded channel while the worker pool allocates, so
// ingesting function N+1 overlaps allocating function N. Results are
// index-aligned with the stream order, and the returned error is
// always the lowest-index failure — a source decode error counts at
// the position it occurred — so the outcome is identical regardless
// of worker count or scheduling.
func AllocateStream(src FuncSource, m *target.Machine, opts BatchOptions) (*BatchResult, error) {
	if opts.NewAllocator == nil {
		return nil, fmt.Errorf("regalloc: AllocateStream requires a NewAllocator factory")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	readAhead := opts.ReadAhead
	if readAhead <= 0 {
		readAhead = 2 * workers
	}

	runOpts := opts.Options
	if runOpts.TraceWriter != nil {
		// One trace stream, many workers: serialize whole lines.
		runOpts.TraceWriter = telemetry.NewLockedWriter(runOpts.TraceWriter)
	}

	res := &BatchResult{}
	var (
		mu     sync.Mutex
		names  []string
		errs   []error
		srcErr error // non-EOF source failure
		srcAt  int   // stream index of srcErr
	)
	// grow extends the index-aligned output tables under mu.
	grow := func(i int) {
		for len(errs) <= i {
			res.Funcs = append(res.Funcs, nil)
			res.Stats = append(res.Stats, nil)
			names = append(names, "")
			errs = append(errs, nil)
		}
	}

	items := make(chan streamItem, readAhead)
	go func() {
		defer close(items)
		for i := 0; ; i++ {
			f, err := src()
			if err == io.EOF {
				return
			}
			if err != nil {
				mu.Lock()
				srcErr, srcAt = err, i
				mu.Unlock()
				return
			}
			items <- streamItem{i: i, f: f}
		}
	}()

	workerSnaps := make([]telemetry.Snapshot, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(snap *telemetry.Snapshot) {
			defer wg.Done()
			// Workspaces are single-owner: each worker gets its own,
			// reused across all the functions it pulls. Any workspace
			// the caller set on Options is deliberately not shared.
			wopts := runOpts
			wopts.Workspace = NewWorkspace()
			for it := range items {
				// A done context fails the remaining functions without
				// starting them; Run re-checks between phases, so
				// in-flight allocations stop at their next boundary.
				var out *ir.Func
				var stats *Stats
				err := wopts.interrupted("batch")
				if err == nil {
					out, stats, err = Run(it.f, m, opts.NewAllocator(), wopts)
				}
				mu.Lock()
				grow(it.i)
				names[it.i] = it.f.Name
				if err != nil {
					errs[it.i] = err
				} else {
					res.Funcs[it.i], res.Stats[it.i] = out, stats
				}
				mu.Unlock()
				if err == nil {
					snap.Merge(stats.Telemetry)
				}
			}
		}(&workerSnaps[w])
	}
	wg.Wait()

	// The error is the lowest-index failure; a source failure sits at
	// the stream position it occurred (always past every produced
	// item's index, but possibly below a later worker error — it is
	// not, since production stops there; the check keeps the invariant
	// explicit anyway).
	for i, err := range errs {
		if srcErr != nil && srcAt <= i {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("regalloc: function %d (%s): %w", i, names[i], err)
		}
	}
	if srcErr != nil {
		return nil, fmt.Errorf("regalloc: stream source at function %d: %w", srcAt, srcErr)
	}
	if runOpts.telemetryOn() {
		merged := &telemetry.Snapshot{}
		for w := range workerSnaps {
			merged.Merge(&workerSnaps[w])
		}
		res.Telemetry = merged
	}
	return res, nil
}
