package regalloc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
)

// BatchOptions configures AllocateAll.
type BatchOptions struct {
	Options

	// NewAllocator returns a fresh allocator for one function.
	// Allocator instances are stateful, so one cannot be shared
	// across concurrently-allocated functions. Required.
	NewAllocator func() Allocator

	// Workers bounds the worker pool; zero or negative means
	// GOMAXPROCS.
	Workers int
}

// BatchResult holds the per-function outputs of AllocateAll,
// index-aligned with the input slice.
type BatchResult struct {
	Funcs []*ir.Func
	Stats []*Stats

	// Telemetry is the batch's merged instrumentation report; nil
	// unless Options.CollectTelemetry (or a TraceWriter) was set.
	// Every worker aggregates its own functions' snapshots privately
	// — no locks, no shared counters — and the per-worker partials
	// are merged once after the pool drains. All snapshot fields are
	// integral sums, so the merged report is identical whatever the
	// scheduling.
	Telemetry *telemetry.Snapshot
}

// AllocateAll runs the full allocation driver over every function
// with a bounded worker pool. Each function's allocation is
// independent (Run clones its input), so the batch is embarrassingly
// parallel; results land at the input's index, making the output —
// and the error, which is always the lowest-index failure — identical
// regardless of worker count or scheduling.
func AllocateAll(funcs []*ir.Func, m *target.Machine, opts BatchOptions) (*BatchResult, error) {
	if opts.NewAllocator == nil {
		return nil, fmt.Errorf("regalloc: AllocateAll requires a NewAllocator factory")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}

	runOpts := opts.Options
	if runOpts.TraceWriter != nil {
		// One trace stream, many workers: serialize whole lines.
		runOpts.TraceWriter = telemetry.NewLockedWriter(runOpts.TraceWriter)
	}

	res := &BatchResult{
		Funcs: make([]*ir.Func, len(funcs)),
		Stats: make([]*Stats, len(funcs)),
	}
	errs := make([]error, len(funcs))
	workerSnaps := make([]telemetry.Snapshot, workers)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(snap *telemetry.Snapshot) {
			defer wg.Done()
			// Workspaces are single-owner: each worker gets its own,
			// reused across all the functions it pulls. Any workspace
			// the caller set on Options is deliberately not shared.
			wopts := runOpts
			wopts.Workspace = NewWorkspace()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				// A done context fails the remaining functions without
				// starting them; Run re-checks between phases, so
				// in-flight allocations stop at their next boundary.
				if err := wopts.interrupted("batch"); err != nil {
					errs[i] = err
					continue
				}
				out, stats, err := Run(funcs[i], m, opts.NewAllocator(), wopts)
				if err != nil {
					errs[i] = err
					continue
				}
				res.Funcs[i], res.Stats[i] = out, stats
				snap.Merge(stats.Telemetry)
			}
		}(&workerSnaps[w])
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("regalloc: function %d (%s): %w", i, funcs[i].Name, err)
		}
	}
	if runOpts.telemetryOn() {
		merged := &telemetry.Snapshot{}
		for w := range workerSnaps {
			merged.Merge(&workerSnaps[w])
		}
		res.Telemetry = merged
	}
	return res, nil
}
