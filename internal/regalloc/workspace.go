package regalloc

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
)

// Workspace is a reusable scratch arena for the allocation pipeline:
// it owns the per-round buffers the driver, the analyses, and the
// allocators would otherwise reallocate on every spill round — the
// liveness in/out sets, the web-numbering tables, the interference
// graph's bitset rows, the driver's marker slices and maps, and
// (via the opaque allocator slot) the RPG/CPG/selector storage of the
// core coloring engine.
//
// Ownership rules (see DESIGN.md §11):
//
//   - A Workspace serves one Run at a time. It is not safe for
//     concurrent use; pool it (sync.Pool, one per batch worker) rather
//     than share it.
//   - Everything handed out from workspace storage — the Context's
//     Graph and Live, RenumberInfo, the allocator scratch — is valid
//     only until the next Run (or the next round) borrows the buffers
//     again. Results that outlive the call (the rewritten function,
//     Stats, Result) are always freshly allocated.
//   - Buffers are cleared on borrow, not on return: every round
//     re-zeroes or re-fills what it takes, so a Workspace never leaks
//     one function's state into the next and an abandoned (errored)
//     run needs no cleanup.
//
// Reuse is observationally pure: Run with a shared Workspace produces
// bit-identical output to Run with a fresh one.
type Workspace struct {
	live     liveness.Scratch
	renumber ig.RenumberScratch
	graph    ig.GraphScratch

	spillTemp      []bool
	blockLocal     []bool
	tempRegs       map[ir.Reg]bool
	blockLocalRegs map[ir.Reg]bool
	colors         []int

	allocScratch any
}

// NewWorkspace returns an empty workspace. The zero value also works;
// the constructor exists for symmetry with sync.Pool New functions.
func NewWorkspace() *Workspace { return &Workspace{} }

// AllocatorScratch returns the allocator-owned scratch value stored by
// SetAllocatorScratch, or nil. The core coloring engine keeps its
// RPG/CPG/selector buffers here — the slot is opaque because core
// imports regalloc, not the other way around.
func (ws *Workspace) AllocatorScratch() any { return ws.allocScratch }

// SetAllocatorScratch stores an allocator-owned scratch value on the
// workspace, to be recovered by AllocatorScratch on the next round.
func (ws *Workspace) SetAllocatorScratch(v any) { ws.allocScratch = v }
