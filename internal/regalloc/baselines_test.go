package regalloc_test

import (
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
	"prefcolor/internal/regalloc/callcost"
	"prefcolor/internal/regalloc/chaitin"
	"prefcolor/internal/regalloc/iterated"
	"prefcolor/internal/regalloc/optimistic"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/target"
)

func allAllocators() []regalloc.Allocator {
	return []regalloc.Allocator{
		chaitin.New(),
		briggs.New(),
		briggs.NewConservative(),
		iterated.New(),
		optimistic.New(),
		priority.New(),
		callcost.New(),
	}
}

var testPrograms = map[string]string{
	"straightline": `
func f(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = mul v2, v0
  v4 = xor v3, v1
  ret v4
}
`,
	"copychain": `
func f(v0) {
b0:
  v1 = move v0
  v2 = move v1
  v3 = move v2
  v4 = add v3, v3
  ret v4
}
`,
	"diamond": `
func f(v0) {
b0:
  v1 = loadimm 3
  branch v0, b1, b2
b1:
  v2 = add v1, v0
  jump b3
b2:
  v2 = sub v1, v0
  jump b3
b3:
  ret v2
}
`,
	"loop": `
func f(v0) {
b0:
  v1 = loadimm 0
  v2 = loadimm 0
  jump b1
b1:
  v3 = cmp v2, v0
  branch v3, b2, b3
b2:
  v1 = add v1, v2
  v4 = loadimm 1
  v2 = add v2, v4
  jump b1
b3:
  ret v1
}
`,
	"pressure": `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v1
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  v6 = add v0, v5
  v7 = add v1, v2
  v8 = add v7, v3
  v9 = add v8, v4
  v10 = add v9, v5
  v11 = add v10, v6
  v12 = add v11, v0
  ret v12
}
`,
	"calls": `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = call @g v0
  v3 = add v1, v2
  v4 = call @h v3
  v5 = add v1, v4
  ret v5
}
`,
	"conventions": `
func f() {
b0:
  v0 = move r0
  v1 = move r1
  v2 = mul v0, v1
  r0 = move v2
  v3 = call @g r0
  v4 = add v3, v1
  r0 = move v4
  ret r0
}
`,
	"copyloop": `
func f(v0) {
b0:
  v1 = loadimm 0
  jump b1
b1:
  v2 = move v1
  v3 = add v2, v0
  v1 = move v3
  v4 = cmp v1, v0
  branch v4, b1, b2
b2:
  ret v1
}
`,
}

func initsFor(f *ir.Func, name string) []map[ir.Reg]int64 {
	if name == "conventions" {
		return []map[ir.Reg]int64{
			{ir.Phys(0): 6, ir.Phys(1): 7},
			{ir.Phys(0): -3, ir.Phys(1): 0},
		}
	}
	var out []map[ir.Reg]int64
	for _, base := range []int64{0, 1, 5, -4} {
		init := map[ir.Reg]int64{}
		for i, p := range f.Params {
			init[p] = base + int64(i)
		}
		out = append(out, init)
	}
	return out
}

// TestAllAllocatorsCorrect is the central semantic matrix: every
// allocator on every program at several machine sizes must produce
// physical-register code observably equivalent to the input.
func TestAllAllocatorsCorrect(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		m := target.UsageModel(k)
		for name, src := range testPrograms {
			f := ir.MustParse(src)
			for _, alloc := range allAllocators() {
				out, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
				if err != nil {
					t.Errorf("k=%d %s/%s: %v", k, name, alloc.Name(), err)
					continue
				}
				noVirtRegs(t, out)
				checkEquiv(t, m, f, out, initsFor(f, name))
				if stats.MovesBefore != stats.MovesEliminated+stats.MovesRemaining {
					t.Errorf("k=%d %s/%s: move identity broken: %+v", k, name, alloc.Name(), stats)
				}
			}
		}
	}
}

func TestCoalescersEliminateCopyChain(t *testing.T) {
	f := ir.MustParse(testPrograms["copychain"])
	m := target.UsageModel(16)
	for _, alloc := range allAllocators() {
		_, stats, err := regalloc.Run(f, m, alloc, regalloc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		if stats.MovesRemaining != 0 {
			t.Errorf("%s left %d moves in a trivial copy chain", alloc.Name(), stats.MovesRemaining)
		}
	}
}

func TestOptimisticSpillsNoMoreThanChaitin(t *testing.T) {
	f := ir.MustParse(testPrograms["pressure"])
	m := target.UsageModel(4)
	_, base, err := regalloc.Run(f, m, chaitin.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("chaitin: %v", err)
	}
	for _, alloc := range []regalloc.Allocator{briggs.New(), optimistic.New()} {
		_, s, err := regalloc.Run(f, m, alloc, regalloc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		if s.SpillInstrs() > base.SpillInstrs() {
			t.Errorf("%s spilled %d instrs, chaitin only %d (optimism lost)",
				alloc.Name(), s.SpillInstrs(), base.SpillInstrs())
		}
	}
}

func TestCallCostPrefersNonVolatileAcrossCalls(t *testing.T) {
	// v1 crosses two calls; call-cost allocation should place it in a
	// non-volatile register, avoiding caller saves entirely.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  call @g
  call @h
  v2 = add v1, v1
  ret v2
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, callcost.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.CallerSaveStores != 0 {
		t.Errorf("callcost used a volatile register for a call-crossing web (%d saves)", stats.CallerSaveStores)
	}
	if stats.UsedNonVolatile == 0 {
		t.Error("callcost used no non-volatile register")
	}
}

func TestCallCostAvoidsNonVolatileWithoutCalls(t *testing.T) {
	// No calls anywhere: every web should sit in volatile registers
	// (non-volatile residence costs Callee_Save for no benefit).
	f := ir.MustParse(testPrograms["straightline"])
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, callcost.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.UsedNonVolatile != 0 {
		t.Errorf("callcost used %d non-volatile registers in call-free code", stats.UsedNonVolatile)
	}
}

func TestIteratedCoalescesLoopCopies(t *testing.T) {
	f := ir.MustParse(testPrograms["copyloop"])
	m := target.UsageModel(16)
	_, stats, err := regalloc.Run(f, m, iterated.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MovesRemaining != 0 {
		t.Errorf("iterated left %d loop copies", stats.MovesRemaining)
	}
}

func TestOptimisticUndoUnderPressure(t *testing.T) {
	// Aggressive coalescing merges the copy web into a high-pressure
	// clique; optimistic coalescing must recover by splitting rather
	// than producing more spills than Chaitin.
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = move v1
  v3 = add v0, v1
  v4 = add v0, v3
  v5 = add v3, v4
  v6 = add v2, v5
  v7 = add v6, v0
  ret v7
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, _, err := regalloc.Run(f, m, optimistic.New(), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkEquiv(t, m, f, out, []map[ir.Reg]int64{{f.Params[0]: 2}, {f.Params[0]: 9}})
}
