package regalloc_test

import (
	"testing"
	"testing/quick"

	"prefcolor/internal/core"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// The preference-directed allocators live above this package in the
// dependency order; the external test package may still exercise them
// here so the fuzzing covers every configuration in one place.
var (
	prefCoalesce = core.NewCoalesceOnly()
	prefFull     = core.New()
)

// fuzzProfile is a compact but adversarial program shape: branchy,
// loopy, call-bearing, with paired loads and stores (shared with the
// metamorphic harness via workload.Fuzz).
var fuzzProfile = workload.Fuzz()

// TestPropAllAllocatorsPreserveSemantics is the randomized version of
// the correctness matrix: for random programs on a small machine,
// every allocator must converge and pass the full end-to-end validity
// oracle — physical-register-only output, interference validity,
// pair/limit/convention constraints, spill-slot dataflow, statistics
// identities, and behavior preservation under call-clobbering
// semantics (RunChecked audits all of it).
func TestPropAllAllocatorsPreserveSemantics(t *testing.T) {
	m := target.UsageModel(6)
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		raw := workload.GenerateRawFunc(fuzzProfile, m, seed)
		for _, name := range []string{
			"chaitin", "briggs-aggressive", "briggs-conservative", "iterated",
			"optimistic", "priority", "callcost", "pref-coalesce", "pref-full",
		} {
			alloc := allocatorByName(t, name)
			if _, _, err := regalloc.RunChecked(raw, m, alloc, regalloc.Options{}); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
		}
		return true
	}
	count := 25
	if testing.Short() {
		count = 6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func allocatorByName(t *testing.T, name string) regalloc.Allocator {
	t.Helper()
	for _, a := range allAllocators() {
		if a.Name() == name {
			return a
		}
	}
	// pref allocators are not in allAllocators (import cycle); build
	// them via the figure-label registry in internal/bench would
	// create a dependency loop in tests, so construct directly.
	switch name {
	case "pref-coalesce":
		return prefCoalesce
	case "pref-full":
		return prefFull
	}
	t.Fatalf("unknown allocator %q", name)
	return nil
}
