package regalloc_test

import (
	"testing"
	"testing/quick"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// The preference-directed allocators live above this package in the
// dependency order; the external test package may still exercise them
// here so the fuzzing covers every configuration in one place.
var (
	prefCoalesce = core.NewCoalesceOnly()
	prefFull     = core.New()
)

// fuzzProfile is a compact but adversarial program shape: branchy,
// loopy, call-bearing, with paired loads and stores.
var fuzzProfile = workload.Profile{
	Name: "fuzz", Funcs: 1, Stmts: 12, MaxDepth: 2,
	LoopProb: 0.12, IfProb: 0.16, CallProb: 0.10, PairProb: 0.08,
	StoreProb: 0.12, Vars: 8, Params: 2,
}

// TestPropAllAllocatorsPreserveSemantics is the randomized version of
// the correctness matrix: for random programs on a small machine,
// every allocator must converge, produce physical-register code, and
// preserve observable behavior under call-clobbering semantics.
func TestPropAllAllocatorsPreserveSemantics(t *testing.T) {
	m := target.UsageModel(6)
	opts := ir.InterpOptions{CallClobbers: m.CallClobbers()}
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		raw := workload.GenerateRawFunc(fuzzProfile, m, seed)
		for _, name := range []string{
			"chaitin", "briggs-aggressive", "briggs-conservative", "iterated",
			"optimistic", "priority", "callcost", "pref-coalesce", "pref-full",
		} {
			alloc := allocatorByName(t, name)
			out, stats, err := regalloc.Run(raw, m, alloc, regalloc.Options{})
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			bad := false
			out.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
				for _, r := range in.Defs {
					if r.IsVirt() {
						bad = true
					}
				}
				for _, r := range in.Uses {
					if r.IsVirt() {
						bad = true
					}
				}
			})
			if bad {
				t.Logf("seed %d %s: virtual registers survived", seed, name)
				return false
			}
			if stats.MovesBefore != stats.MovesEliminated+stats.MovesRemaining {
				t.Logf("seed %d %s: move identity broken", seed, name)
				return false
			}
			for _, base := range []int64{0, 3} {
				init, outInit := map[ir.Reg]int64{}, map[ir.Reg]int64{}
				for i, p := range raw.Params {
					init[p] = base + int64(i)
					outInit[out.Params[i]] = base + int64(i)
				}
				a, err := ir.Interp(raw, init, opts)
				if err != nil {
					t.Fatalf("seed %d: interp input: %v", seed, err)
				}
				b, err := ir.Interp(out, outInit, opts)
				if err != nil {
					t.Logf("seed %d %s: interp output: %v", seed, name, err)
					return false
				}
				if a.HasRet != b.HasRet || a.Ret != b.Ret || len(a.Stores) != len(b.Stores) {
					t.Logf("seed %d %s base %d: behavior differs", seed, name, base)
					return false
				}
				for i := range a.Stores {
					if a.Stores[i] != b.Stores[i] {
						t.Logf("seed %d %s: store %d differs", seed, name, i)
						return false
					}
				}
			}
		}
		return true
	}
	count := 25
	if testing.Short() {
		count = 6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func allocatorByName(t *testing.T, name string) regalloc.Allocator {
	t.Helper()
	for _, a := range allAllocators() {
		if a.Name() == name {
			return a
		}
	}
	// pref allocators are not in allAllocators (import cycle); build
	// them via the figure-label registry in internal/bench would
	// create a dependency loop in tests, so construct directly.
	switch name {
	case "pref-coalesce":
		return prefCoalesce
	case "pref-full":
		return prefFull
	}
	t.Fatalf("unknown allocator %q", name)
	return nil
}
