package regalloc_test

import (
	"strings"
	"testing"

	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// TestRunRejectsMalformedMachine: a broken machine description must
// fail at Run entry with a target diagnostic, not panic (the negative
// limit operand used to index out of bounds) or silently mis-cost.
func TestRunRejectsMalformedMachine(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = shl v0, v0
  ret v1
}
`)
	cases := []struct {
		name    string
		mutate  func(*target.Machine)
		wantSub string
	}{
		{"negative-limit-operand", func(m *target.Machine) {
			m.Limits = append(m.Limits, target.Limit{Name: "neg", Op: ir.Shl, Operand: -1, Regs: []int{2}})
		}, "operand"},
		{"limit-reg-out-of-file", func(m *target.Machine) {
			m.Limits = append(m.Limits, target.Limit{Name: "wide", Op: ir.Shl, Operand: 1, Regs: []int{m.NumRegs}})
		}, "Regs"},
		{"volatile-overlong", func(m *target.Machine) {
			m.Volatile = make([]bool, m.NumRegs+3)
		}, "Volatile"},
		{"retreg-out-of-file", func(m *target.Machine) {
			m.RetReg = m.NumRegs
		}, "RetReg"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := target.UsageModel(8)
			c.mutate(m)
			_, _, err := regalloc.Run(f, m, mustAlloc(t, "chaitin"), regalloc.Options{})
			if err == nil {
				t.Fatalf("Run accepted a %s machine", c.name)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error = %q, want mention of %q", err, c.wantSub)
			}
		})
	}
}

// TestRunRejectsMalformedInput: structural IR violations and
// out-of-file physical registers fail fast at entry.
func TestRunRejectsMalformedInput(t *testing.T) {
	m := target.UsageModel(8)

	t.Run("stale-preds", func(t *testing.T) {
		f := ir.MustParse(`
func f(v0) {
b0:
  branch v0, b1, b2
b1:
  jump b2
b2:
  ret v0
}
`)
		// Damage the pred lists behind Validate's back.
		f.Blocks[2].Preds = nil
		_, _, err := regalloc.Run(f, m, mustAlloc(t, "chaitin"), regalloc.Options{})
		if err == nil || !strings.Contains(err.Error(), "invalid input") {
			t.Errorf("Run = %v, want invalid-input diagnostic", err)
		}
	})

	t.Run("phys-reg-outside-file", func(t *testing.T) {
		f := ir.MustParse(`
func f(v0) {
b0:
  v1 = add v0, r12
  ret v1
}
`)
		_, _, err := regalloc.Run(f, m, mustAlloc(t, "chaitin"), regalloc.Options{})
		if err == nil || !strings.Contains(err.Error(), "r12") {
			t.Errorf("Run = %v, want out-of-file register diagnostic", err)
		}
	})

	t.Run("nil-func", func(t *testing.T) {
		_, _, err := regalloc.Run(nil, m, mustAlloc(t, "chaitin"), regalloc.Options{})
		if err == nil {
			t.Error("Run accepted a nil function")
		}
	})
}
