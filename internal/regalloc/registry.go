package regalloc

import (
	"fmt"
	"sync"
)

// The allocator registry is the drop-in boundary for allocator
// families: a package provides a factory, registers it under a stable
// name (typically from init), and every consumer — the bench harness,
// the daemon's request spec, the comparison tools, the metamorphic
// matrix — resolves it by that name without knowing the package.
// Factories return fresh instances so concurrent runs stay
// independent.
var (
	registryMu    sync.RWMutex
	registry      = map[string]func() Allocator{}
	registryOrder []string
)

// Register adds an allocator factory under name. It panics on a
// duplicate name or nil factory: both are wiring bugs, and failing at
// init beats failing on the first request.
func Register(name string, factory func() Allocator) {
	if factory == nil {
		panic(fmt.Sprintf("regalloc.Register(%q): nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("regalloc.Register(%q): duplicate registration", name))
	}
	registry[name] = factory
	registryOrder = append(registryOrder, name)
}

// ByName builds a fresh allocator by registered name.
func ByName(name string) (Allocator, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("regalloc: unknown allocator %q (known: %v)", name, RegisteredNames())
	}
	return factory(), nil
}

// RegisteredNames lists every registered allocator in registration
// order (the order bench presents configurations in).
func RegisteredNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}
