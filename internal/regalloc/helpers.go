package regalloc

import (
	"prefcolor/internal/costmodel"
	"prefcolor/internal/ig"
)

// NodeBenefits aggregates the Lueh–Gross benefit functions over a
// (possibly coalesced) node: the Str value of residing in a volatile
// and in a non-volatile register, versus memory.
func NodeBenefits(ctx *Context, n ig.NodeID) (volatile, nonVolatile float64) {
	var mem, op, cross float64
	for _, m := range ctx.Graph.Members(n) {
		if ctx.Graph.IsPhys(m) {
			continue
		}
		w := int(m) - ctx.Graph.NumPhys()
		mem += ctx.Costs.MemCost(w)
		op += ctx.Costs.OpCosts[w]
		cross += ctx.Costs.CrossFreq[w]
	}
	volatile = mem - (costmodel.SaveRestoreCost*cross + op)
	nonVolatile = mem - (costmodel.CalleeSaveCost + op)
	return volatile, nonVolatile
}

// AggressiveCoalesce coalesces every copy whose endpoints do not
// interfere, repeating until nothing changes (Chaitin's coalescing).
// It returns the number of coalesces performed.
func AggressiveCoalesce(g *ig.Graph) int {
	done := 0
	for changed := true; changed; {
		changed = false
		for _, m := range g.Moves() {
			x, y := g.Find(m.X), g.Find(m.Y)
			if x == y || g.Interferes(x, y) {
				continue
			}
			if g.IsPhys(x) && g.IsPhys(y) {
				continue
			}
			if g.Removed(x) || g.Removed(y) {
				continue
			}
			g.Coalesce(x, y)
			done++
			changed = true
		}
	}
	return done
}

// BriggsConservative reports whether coalescing reps a and b is safe
// under Briggs's test: the merged node has fewer than k neighbors of
// significant degree.
func BriggsConservative(g *ig.Graph, a, b ig.NodeID, k int) bool {
	seen := map[ig.NodeID]bool{}
	significant := 0
	count := func(n ig.NodeID) {
		for _, nb := range g.Neighbors(n) {
			nb = g.Find(nb)
			if seen[nb] || g.Removed(nb) {
				continue
			}
			seen[nb] = true
			// A neighbor of both a and b loses one edge in the merge.
			deg := g.Degree(nb)
			if g.Interferes(nb, a) && g.Interferes(nb, b) {
				deg--
			}
			if g.IsPhys(nb) || deg >= k {
				significant++
			}
		}
	}
	count(a)
	count(b)
	return significant < k
}

// GeorgeConservative reports whether coalescing a into b is safe under
// George's test: every active neighbor of a already interferes with b
// or has insignificant degree. Used when b is precolored.
func GeorgeConservative(g *ig.Graph, a, b ig.NodeID, k int) bool {
	for _, nb := range g.Neighbors(a) {
		nb = g.Find(nb)
		if g.Removed(nb) {
			continue
		}
		if g.Interferes(nb, b) || (!g.IsPhys(nb) && g.Degree(nb) < k) {
			continue
		}
		return false
	}
	return true
}

// SpillCandidate picks the active node with the lowest spill priority
// (cost ÷ current degree), the metric every allocator in the paper's
// comparison shares. It returns -1 when no active web node remains.
func SpillCandidate(g *ig.Graph) ig.NodeID {
	best := ig.NodeID(-1)
	bestKey := 0.0
	// Direct in-place scan, same ascending order ActiveNodes would
	// snapshot — this runs once per simplify stall, so the snapshot
	// allocation used to be a top-line profile entry.
	g.ForEachActive(func(n ig.NodeID) {
		deg := g.Degree(n)
		if deg == 0 {
			deg = 1
		}
		key := g.SpillCost(n) / float64(deg)
		if best < 0 || key < bestKey {
			best, bestKey = n, key
		}
	})
	return best
}

// Coloring tracks register choices per node during select. Physical
// nodes are precolored with their own numbers.
type Coloring struct {
	g     *ig.Graph
	Color []int
}

// NewColoring returns a coloring with only the physical nodes colored.
func NewColoring(g *ig.Graph) *Coloring {
	c := &Coloring{g: g, Color: make([]int, g.NumNodes())}
	for i := range c.Color {
		c.Color[i] = -1
	}
	for i := 0; i < g.NumPhys(); i++ {
		c.Color[i] = i
	}
	return c
}

// ColorOf returns node n's register, following coalescing aliases,
// or -1.
func (c *Coloring) ColorOf(n ig.NodeID) int {
	if col := c.Color[n]; col >= 0 {
		return col
	}
	return c.Color[c.g.Find(n)]
}

// Set colors node n.
func (c *Coloring) Set(n ig.NodeID, col int) { c.Color[n] = col }

// Available returns the free registers for node n: every register not
// used by a colored current-graph neighbor, in increasing order.
func (c *Coloring) Available(n ig.NodeID, k int) []int {
	used := make([]bool, k)
	c.g.ForEachNeighbor(n, func(nb ig.NodeID) {
		if col := c.ColorOf(nb); col >= 0 && col < k {
			used[col] = true
		}
	})
	var out []int
	for r := 0; r < k; r++ {
		if !used[r] {
			out = append(out, r)
		}
	}
	return out
}

// AvailableOrig is Available against the pre-coalescing adjacency of
// an original node, for allocators that split coalesced nodes.
func (c *Coloring) AvailableOrig(n ig.NodeID, k int) []int {
	used := make([]bool, k)
	for _, nb := range c.g.OrigNeighbors(n) {
		if col := c.ColorOf(nb); col >= 0 && col < k {
			used[col] = true
		}
	}
	var out []int
	for r := 0; r < k; r++ {
		if !used[r] {
			out = append(out, r)
		}
	}
	return out
}

// Fill copies the coloring into a Result, assigning each colored node.
func (c *Coloring) Fill(res *Result) {
	for n := c.g.NumPhys(); n < c.g.NumNodes(); n++ {
		if c.Color[n] >= 0 {
			res.Colors[ig.NodeID(n)] = c.Color[n]
		}
	}
}

// BiasedPick chooses from avail preferring a color already given to a
// copy-related partner of n (Briggs's biased coloring); it falls back
// to the first available register. avail must be non-empty.
func BiasedPick(g *ig.Graph, c *Coloring, n ig.NodeID, avail []int) int {
	inAvail := func(col int) bool {
		for _, a := range avail {
			if a == col {
				return true
			}
		}
		return false
	}
	bestCol, bestW := -1, 0.0
	for _, mi := range g.NodeMoves(n) {
		m := g.Moves()[mi]
		other := g.Find(m.X)
		if other == g.Find(n) {
			other = g.Find(m.Y)
		}
		if other == g.Find(n) {
			continue
		}
		if col := c.ColorOf(other); col >= 0 && inAvail(col) && (bestCol < 0 || m.Weight > bestW) {
			bestCol, bestW = col, m.Weight
		}
	}
	if bestCol >= 0 {
		return bestCol
	}
	return avail[0]
}
