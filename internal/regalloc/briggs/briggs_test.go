package briggs_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// The classic optimism case: the 4-cycle at K=2. Every node has
// degree 2 >= K, so Chaitin-style pessimism would declare a spill, but
// the graph is 2-colorable and optimistic select finds the coloring.
func TestBriggsOptimismColorsFourCycle(t *testing.T) {
	g := ig.NewGraph(0, 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.Freeze()
	stack := briggs.OptimisticSimplify(g, 2)
	res, err := briggs.SelectBiased(g, 2, stack)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("optimistic coloring spilled %v on a 2-colorable 4-cycle", res.Spilled)
	}
	if res.Colors[0] == res.Colors[1] || res.Colors[1] == res.Colors[2] ||
		res.Colors[2] == res.Colors[3] || res.Colors[3] == res.Colors[0] {
		t.Errorf("adjacent nodes share a color: %v", res.Colors)
	}
}

func TestOptimisticSimplifyEmptiesGraph(t *testing.T) {
	g := ig.NewGraph(0, 5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(ig.NodeID(i), ig.NodeID(j)) // K5
		}
	}
	g.Freeze()
	stack := briggs.OptimisticSimplify(g, 3)
	if len(stack) != 5 {
		t.Fatalf("stack = %d nodes, want all 5 (optimistic push)", len(stack))
	}
	for _, n := range g.ActiveNodes() {
		t.Errorf("node %d still active", n)
	}
}

func TestSelectBiasedSpillsOnlyWhenStuck(t *testing.T) {
	// K5 with 3 colors: exactly 2 nodes must become actual spills.
	g := ig.NewGraph(0, 5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(ig.NodeID(i), ig.NodeID(j))
		}
	}
	g.Freeze()
	stack := briggs.OptimisticSimplify(g, 3)
	res, err := briggs.SelectBiased(g, 3, stack)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 2 {
		t.Errorf("spilled %d of K5 at K=3, want 2", len(res.Spilled))
	}
	if len(res.Colors) != 3 {
		t.Errorf("colored %d, want 3", len(res.Colors))
	}
}

func TestConservativeAvoidsDegreeInflation(t *testing.T) {
	// A copy between two webs whose merge would have K significant
	// neighbors must not be coalesced conservatively but must be
	// coalesced aggressively.
	build := func() *regalloc.Context {
		return ctxFor(t, `
func f(v0, v1, v2, v3) {
b0:
  v4 = move v5
  v5 = add v0, v1
  v6 = add v4, v5
  v7 = add v0, v1
  v8 = add v2, v3
  v9 = add v7, v8
  v10 = add v9, v6
  ret v10
}
`, 4)
	}
	_ = build
	// The conservative/aggressive distinction is pinned at the
	// helper level in the regalloc package tests; here pin only that
	// both variants produce valid allocations on the same input.
	for _, alloc := range []regalloc.Allocator{briggs.New(), briggs.NewConservative()} {
		ctx := build()
		res, err := alloc.Allocate(ctx)
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		if err := regalloc.CheckResult(ctx, res); err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
	}
}
