// Package briggs implements Briggs-style optimistic coloring (the
// paper's Figure 1(b)): coalescing up front, simplification that
// pushes potential spills instead of committing them, and biased
// select that turns potential spills into actual spills only when no
// color remains.
//
// The coalescing mode is selectable: aggressive (what the paper's
// "Briggs +aggressive" configuration in Figure 9 uses) or Briggs's
// conservative test.
package briggs

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

// Allocator is the Briggs et al. 1994 algorithm.
type Allocator struct {
	// Conservative selects conservative coalescing; default is
	// aggressive.
	Conservative bool
}

// New returns the aggressive-coalescing variant used in Figure 9.
func New() *Allocator { return &Allocator{} }

// NewConservative returns the conservative-coalescing variant.
func NewConservative() *Allocator { return &Allocator{Conservative: true} }

// Name implements regalloc.Allocator.
func (a *Allocator) Name() string {
	if a.Conservative {
		return "briggs-conservative"
	}
	return "briggs-aggressive"
}

// Allocate implements regalloc.Allocator.
func (a *Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	if a.Conservative {
		conservativeCoalesce(g, k)
	} else {
		regalloc.AggressiveCoalesce(g)
	}

	stack := OptimisticSimplify(g, k)
	return SelectBiased(g, k, stack)
}

// conservativeCoalesce coalesces only copies passing Briggs's test
// (George's test against precolored nodes), iterating to a fixed
// point.
func conservativeCoalesce(g *ig.Graph, k int) int {
	done := 0
	for changed := true; changed; {
		changed = false
		for _, m := range g.Moves() {
			x, y := g.Find(m.X), g.Find(m.Y)
			if x == y || g.Interferes(x, y) {
				continue
			}
			if g.IsPhys(x) && g.IsPhys(y) {
				continue
			}
			if g.Removed(x) || g.Removed(y) {
				continue
			}
			ok := false
			switch {
			case g.IsPhys(x):
				ok = regalloc.GeorgeConservative(g, y, x, k)
			case g.IsPhys(y):
				ok = regalloc.GeorgeConservative(g, x, y, k)
			default:
				ok = regalloc.BriggsConservative(g, x, y, k)
			}
			if ok {
				g.Coalesce(x, y)
				done++
				changed = true
			}
		}
	}
	return done
}

// OptimisticSimplify empties the graph onto a stack: low-degree nodes
// first; when only significant-degree nodes remain, the cheapest spill
// candidate is pushed optimistically rather than spilled. Shared with
// the optimistic-coalescing allocator.
func OptimisticSimplify(g *ig.Graph, k int) []ig.NodeID {
	var stack []ig.NodeID
	for {
		progress := false
		for _, n := range g.ActiveNodes() {
			if g.Degree(n) < k {
				g.Remove(n)
				stack = append(stack, n)
				progress = true
			}
		}
		if progress {
			continue
		}
		cand := regalloc.SpillCandidate(g)
		if cand < 0 {
			return stack
		}
		g.Remove(cand)
		stack = append(stack, cand)
	}
}

// SelectBiased pops the stack, giving each node a color not used by
// its neighbors, preferring a copy-related partner's color (biased
// coloring); nodes with no color become actual spills. Shared with
// the call-cost allocator's fallback path.
func SelectBiased(g *ig.Graph, k int, stack []ig.NodeID) (*regalloc.Result, error) {
	res := regalloc.NewResult()
	coloring := regalloc.NewColoring(g)
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		avail := coloring.Available(n, k)
		if len(avail) == 0 {
			res.Spilled = append(res.Spilled, n)
			continue
		}
		coloring.Set(n, regalloc.BiasedPick(g, coloring, n, avail))
	}
	coloring.Fill(res)
	return res, nil
}
