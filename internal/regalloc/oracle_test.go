package regalloc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/ssa"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
	"prefcolor/internal/workload"
)

// monochromeAllocator deliberately colors every web with register 0 —
// an invalid assignment on any program with interference. The oracle
// must catch it even with the driver's own validation switched off.
type monochromeAllocator struct{}

func (monochromeAllocator) Name() string { return "monochrome" }

func (monochromeAllocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	res := regalloc.NewResult()
	g := ctx.Graph
	for w := 0; w < g.NumWebs(); w++ {
		res.Colors[ig.NodeID(g.NumPhys()+w)] = 0
	}
	return res, nil
}

func TestOracleCatchesMonochromeAllocator(t *testing.T) {
	src := `
func f(v0, v1) {
b0:
  v2 = add v0, v1
  v3 = add v0, v2
  ret v3
}
`
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := target.UsageModel(4)
	_, _, err = regalloc.RunChecked(f, m, monochromeAllocator{}, regalloc.Options{SkipValidate: true})
	if err == nil {
		t.Fatal("oracle accepted an allocation that puts interfering webs in one register")
	}
	if !strings.Contains(err.Error(), "oracle:") {
		t.Fatalf("failure did not come from the oracle: %v", err)
	}
}

// shiftedAllocator colors webs validly with respect to interference
// but ignores dedicated physical registers is hard to fabricate here;
// instead pin the positive path: a correct allocator passes the oracle
// and produces identical output through Run and RunChecked.
func TestRunCheckedMatchesRun(t *testing.T) {
	m := target.UsageModel(6)
	raw := workload.GenerateRawFunc(fuzzProfile, m, 7)
	plain, pstats, err := regalloc.Run(raw, m, allocatorByName(t, "chaitin"), regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checked, cstats, err := regalloc.RunChecked(raw, m, allocatorByName(t, "chaitin"), regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != checked.String() {
		t.Error("RunChecked changed the allocation output")
	}
	if pstats.SpillInstrs() != cstats.SpillInstrs() || pstats.MovesEliminated != cstats.MovesEliminated {
		t.Error("RunChecked changed the allocation statistics")
	}
}

// irBlock matches a backquoted string literal holding textual IR.
var irBlock = regexp.MustCompile("(?s)`([^`]*func [^`]*)`")

// exampleMachine mirrors each example's machine choice closely enough
// for the oracle (the exact register count is not load-bearing).
func exampleMachine(dir string) *target.Machine {
	switch dir {
	case "limited":
		return target.X86Like(16)
	case "ssacopies":
		return target.UsageModel(8)
	default:
		return target.UsageModel(16)
	}
}

// TestOracleOnExamples runs every IR program embedded in examples/
// through the oracle under the main allocator configurations. The
// example sources are the repository's showcase inputs, so they stay
// allocation-valid by construction — this test keeps it that way.
func TestOracleOnExamples(t *testing.T) {
	dirs, err := filepath.Glob("../../examples/*/main.go")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	programs := 0
	for _, path := range dirs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Base(filepath.Dir(path))
		m := exampleMachine(dir)
		for bi, block := range irBlock.FindAllSubmatch(src, -1) {
			f, err := ir.Parse(string(block[1]))
			if err != nil {
				t.Fatalf("%s block %d: embedded IR no longer parses: %v", dir, bi, err)
			}
			programs++
			if dir == "ssacopies" {
				// The example allocates after SSA round-tripping; the
				// copies that destruction inserts are the interesting
				// workload, so mirror it.
				ssa.Build(f)
				ssa.Destruct(f)
				f.CompactNops()
			}
			for _, name := range []string{"chaitin", "pref-coalesce", "pref-full"} {
				if _, _, err := regalloc.RunChecked(f.Clone(), m, allocatorByName(t, name), regalloc.Options{}); err != nil {
					t.Errorf("%s block %d under %s: %v", dir, bi, name, err)
				}
			}
		}
	}
	if programs < 4 {
		t.Fatalf("extracted only %d embedded IR programs; extraction regexp likely broken", programs)
	}
}

// TestTelemetryIsObservationOnly pins the core telemetry contract on
// the single-function driver: collection populates Stats.Telemetry and
// a trace stream without changing one instruction of the output.
func TestTelemetryIsObservationOnly(t *testing.T) {
	m := target.UsageModel(6)
	raw := workload.GenerateRawFunc(fuzzProfile, m, 11)

	quiet, _, err := regalloc.Run(raw, m, allocatorByName(t, "pref-full"), regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	loud, stats, err := regalloc.Run(raw, m, allocatorByName(t, "pref-full"), regalloc.Options{
		CollectTelemetry: true,
		TraceWriter:      &trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.String() != loud.String() {
		t.Error("telemetry perturbed the allocation")
	}
	snap := stats.Telemetry
	if snap == nil {
		t.Fatal("CollectTelemetry set but Stats.Telemetry is nil")
	}
	if snap.Funcs != 1 || snap.Selections == 0 {
		t.Errorf("snapshot looks empty: funcs=%d selections=%d", snap.Funcs, snap.Selections)
	}
	total := int64(0)
	for c := telemetry.PrefClass(0); c < telemetry.NumPrefClasses; c++ {
		total += snap.PrefTotal(c)
	}
	if total == 0 {
		t.Error("no preference outcomes counted on a preference-bearing program")
	}
	if trace.Len() == 0 || snap.TraceEvents == 0 {
		t.Errorf("trace stream empty: %d bytes, %d events", trace.Len(), snap.TraceEvents)
	}
	for i, line := range bytes.Split(bytes.TrimSpace(trace.Bytes()), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("{")) || !bytes.HasSuffix(line, []byte("}")) {
			t.Fatalf("trace line %d is not a JSON object: %q", i, line)
		}
	}
}
