package priority_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/priority"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// Unconstrained webs (degree < K) are guaranteed a register: with
// generous K nothing spills and the result validates.
func TestPriorityUnconstrainedAlwaysColored(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v1, v0
  v3 = add v2, v1
  ret v3
}
`, 8)
	res, err := priority.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Errorf("spilled %v with 8 registers", res.Spilled)
	}
}

// Under pressure, the spill victims must be lower-priority (lower
// benefit-per-size) webs: the hot loop value keeps its register.
func TestPriorityOrdersByBenefitDensity(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v0
  v3 = add v0, v0
  v4 = add v0, v0
  v9 = loadimm 3
  jump b1
b1:
  v5 = add v1, v1
  v1 = add v5, v0
  v9 = addimm v9, -1
  branch v9, b1, b2
b2:
  v6 = add v2, v3
  v7 = add v6, v4
  v8 = add v7, v1
  ret v8
}
`, 4)
	res, err := priority.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	spilled := map[ig.NodeID]bool{}
	for _, s := range res.Spilled {
		spilled[s] = true
	}
	g := ctx.Graph
	if spilled[g.NodeOf(ir.Virt(1))] {
		t.Error("the hot loop accumulator v1 was chosen as a spill victim")
	}
}
