// Package priority implements Chow & Hennessy's priority-based
// coloring, the other school of coloring allocation the paper's
// related-work section (§7) contrasts with Chaitin's: instead of
// packing live ranges through simplification, it assigns registers to
// live ranges in order of their priority — the benefit of register
// residence normalized by the live range's size — accepting that
// high-priority ranges may consume more registers.
//
// This implementation keeps the priority function and the
// constrained/unconstrained split of the original but spills where
// the original would split live ranges (a documented simplification;
// the driver's spill-everywhere machinery then subdivides the range).
package priority

import (
	"sort"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
)

// Allocator is the Chow & Hennessy 1990 algorithm (simplified).
type Allocator struct{}

// New returns the allocator.
func New() *Allocator { return &Allocator{} }

// Name implements regalloc.Allocator.
func (*Allocator) Name() string { return "priority" }

// Allocate implements regalloc.Allocator.
func (*Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	res := regalloc.NewResult()
	coloring := regalloc.NewColoring(g)

	// Live-range size: the number of instructions at which the web is
	// live (plus one per definition), the denominator of the priority
	// quotient.
	size := make([]float64, ctx.F.NumVirt)
	for _, b := range ctx.F.Blocks {
		ctx.Live.ForEachInstrReverse(b, func(_ int, in *ir.Instr, liveAfter ir.RegSet) {
			for r := range liveAfter {
				if r.IsVirt() {
					size[r.VirtNum()]++
				}
			}
			for _, d := range in.Defs {
				if d.IsVirt() {
					size[d.VirtNum()]++
				}
			}
		})
	}

	type ranked struct {
		n   ig.NodeID
		pri float64
	}
	var constrained, unconstrained []ranked
	for _, n := range g.ActiveNodes() {
		w := int(n) - g.NumPhys()
		sz := size[w]
		if sz < 1 {
			sz = 1
		}
		pri := ctx.Costs.MemCost(w) / sz
		if g.Degree(n) >= k {
			constrained = append(constrained, ranked{n, pri})
		} else {
			unconstrained = append(unconstrained, ranked{n, pri})
		}
	}
	byPriority := func(s []ranked) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].pri != s[j].pri {
				return s[i].pri > s[j].pri
			}
			return s[i].n < s[j].n
		})
	}
	byPriority(constrained)
	byPriority(unconstrained)

	assign := func(n ig.NodeID, mustColor bool) {
		avail := coloring.Available(n, k)
		if len(avail) == 0 {
			if !mustColor && g.SpillCost(n) < regalloc.InfiniteCost {
				res.Spilled = append(res.Spilled, n)
				return
			}
			// A supposedly-unconstrained or infinite-cost web with no
			// color left: spill it anyway and let the driver split it.
			res.Spilled = append(res.Spilled, n)
			return
		}
		coloring.Set(n, regalloc.BiasedPick(g, coloring, n, avail))
	}
	for _, r := range constrained {
		// Negative priority: memory is cheaper than any register.
		if r.pri < 0 && g.SpillCost(r.n) < regalloc.InfiniteCost {
			res.Spilled = append(res.Spilled, r.n)
			continue
		}
		assign(r.n, false)
	}
	for _, r := range unconstrained {
		assign(r.n, true)
	}
	coloring.Fill(res)
	return res, nil
}
