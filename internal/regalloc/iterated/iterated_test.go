package iterated_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/iterated"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// Iterated coalescing must merge an unconstrained copy (same register
// for both ends) without spilling anything.
func TestIteratedCoalescesSafeCopy(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = move v0
  v2 = add v1, v1
  ret v2
}
`, 8)
	res, err := iterated.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	g := ctx.Graph
	c0, _ := res.ColorOf(g, g.NodeOf(ir.Virt(0)))
	c1, _ := res.ColorOf(g, g.NodeOf(ir.Virt(1)))
	if c0 != c1 {
		t.Errorf("safe copy not coalesced: r%d vs r%d", c0, c1)
	}
}

// A constrained copy (interfering endpoints) must be frozen, not
// coalesced, and the allocation must stay valid.
func TestIteratedFreezesConstrainedCopy(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = move v0
  v2 = add v1, v0
  v0 = add v2, v2
  v3 = add v0, v1
  ret v3
}
`, 8)
	res, err := iterated.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Errorf("spilled %v with 8 registers", res.Spilled)
	}
}
