// Package iterated implements George & Appel's iterated register
// coalescing (the paper's Figure 2(a)): simplification removes only
// non-copy-related nodes, conservative coalescing runs interleaved
// with simplification, blocked copies are frozen one at a time, and
// remaining significant-degree nodes are removed optimistically.
package iterated

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
)

// Allocator is the George & Appel 1996 algorithm.
type Allocator struct{}

// New returns the allocator.
func New() *Allocator { return &Allocator{} }

// Name implements regalloc.Allocator.
func (*Allocator) Name() string { return "iterated" }

// Allocate implements regalloc.Allocator.
func (*Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	frozen := map[int]bool{}

	moveRelated := func(n ig.NodeID) bool {
		for _, mi := range g.NodeMoves(n) {
			if frozen[mi] {
				continue
			}
			m := g.Moves()[mi]
			x, y := g.Find(m.X), g.Find(m.Y)
			if x == y {
				continue
			}
			other := x
			if x == n {
				other = y
			}
			if g.Removed(other) {
				continue
			}
			if !g.Interferes(n, other) {
				return true
			}
		}
		return false
	}

	var stack []ig.NodeID
	for {
		// Simplify: remove low-degree non-move-related nodes.
		if n := pickSimplify(g, k, moveRelated); n >= 0 {
			g.Remove(n)
			stack = append(stack, n)
			continue
		}
		// Coalesce conservatively.
		if coalesceOne(g, k, frozen) {
			continue
		}
		// Freeze: give up on the moves of one low-degree
		// move-related node.
		if n := pickFreeze(g, k, moveRelated); n >= 0 {
			for _, mi := range g.NodeMoves(n) {
				frozen[mi] = true
			}
			continue
		}
		// Potential spill, optimistically pushed.
		cand := regalloc.SpillCandidate(g)
		if cand < 0 {
			break
		}
		for _, mi := range g.NodeMoves(cand) {
			frozen[mi] = true
		}
		g.Remove(cand)
		stack = append(stack, cand)
	}

	return briggs.SelectBiased(g, k, stack)
}

func pickSimplify(g *ig.Graph, k int, moveRelated func(ig.NodeID) bool) ig.NodeID {
	for _, n := range g.ActiveNodes() {
		if g.Degree(n) < k && !moveRelated(n) {
			return n
		}
	}
	return -1
}

func pickFreeze(g *ig.Graph, k int, moveRelated func(ig.NodeID) bool) ig.NodeID {
	for _, n := range g.ActiveNodes() {
		if g.Degree(n) < k && moveRelated(n) {
			return n
		}
	}
	return -1
}

// coalesceOne performs at most one conservative coalesce and reports
// whether it did.
func coalesceOne(g *ig.Graph, k int, frozen map[int]bool) bool {
	for mi, m := range g.Moves() {
		if frozen[mi] {
			continue
		}
		x, y := g.Find(m.X), g.Find(m.Y)
		if x == y || g.Interferes(x, y) {
			continue
		}
		if g.IsPhys(x) && g.IsPhys(y) {
			continue
		}
		if g.Removed(x) || g.Removed(y) {
			continue
		}
		ok := false
		switch {
		case g.IsPhys(x):
			ok = regalloc.GeorgeConservative(g, y, x, k)
		case g.IsPhys(y):
			ok = regalloc.GeorgeConservative(g, x, y, k)
		default:
			ok = regalloc.BriggsConservative(g, x, y, k)
		}
		if ok {
			g.Coalesce(x, y)
			return true
		}
	}
	return false
}
