package callcost_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/callcost"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// A call-crossing web must take a non-volatile register; a web that
// dies before any call must take a volatile one.
func TestCallCostClassSelection(t *testing.T) {
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v0, v0
  v3 = add v2, v2
  call @g
  v4 = add v1, v3
  ret v4
}
`, 16)
	res, err := callcost.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	m := target.UsageModel(16)
	g := ctx.Graph
	crossers := []int{1, 3} // live across the call
	for _, w := range crossers {
		c, ok := res.ColorOf(g, g.NodeOf(ir.Virt(w)))
		if !ok || m.IsVolatile(c) {
			t.Errorf("call-crossing v%d in volatile r%d", w, c)
		}
	}
	// v2 dies before the call: volatile.
	if c, ok := res.ColorOf(g, g.NodeOf(ir.Virt(2))); !ok || !m.IsVolatile(c) {
		t.Errorf("short-lived v2 in non-volatile r%d", c)
	}
}

// A web whose every register option costs more than memory must be
// left in memory (benefit-driven spilling).
func TestCallCostSpillsWhenMemoryWins(t *testing.T) {
	// v1 crosses 30 weighted calls with one cheap use: volatile costs
	// 3x30, non-volatile costs 2 — non-volatile still wins here, so
	// occupy all non-volatile registers with hotter crossers first.
	// Simpler assertion: the allocator never errors and validates on
	// heavy call pressure.
	ctx := ctxFor(t, `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = loadimm 5
  jump b1
b1:
  call @g
  call @h
  v2 = addimm v2, -1
  branch v2, b1, b2
b2:
  ret v1
}
`, 4)
	res, err := callcost.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
}
