// Package callcost models Lueh & Gross's call-cost directed register
// allocation in the configuration the paper compares against in
// Figure 11 ("aggressive+volatility"): Chaitin-style aggressive
// coalescing, non-optimistic benefit-driven simplification, and a
// select phase that chooses between volatile registers, non-volatile
// registers, and memory using the two benefit functions of the
// Appendix cost model.
package callcost

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
)

// Allocator is the modeled Lueh & Gross 1997 algorithm.
type Allocator struct{}

// New returns the allocator.
func New() *Allocator { return &Allocator{} }

// Name implements regalloc.Allocator.
func (*Allocator) Name() string { return "callcost" }

// Allocate implements regalloc.Allocator.
func (*Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	regalloc.AggressiveCoalesce(g)

	// Benefit-driven simplification: among removable (low-degree)
	// nodes, push the lowest-priority node first so high-benefit nodes
	// pop earlier and get first pick of registers. Still pessimistic:
	// blocked graphs spill the cheapest candidate, ending the round.
	res := regalloc.NewResult()
	var stack []ig.NodeID
	for {
		best := ig.NodeID(-1)
		bestPri := 0.0
		for _, n := range g.ActiveNodes() {
			if g.Degree(n) >= k {
				continue
			}
			pri := priority(ctx, n)
			if best < 0 || pri < bestPri {
				best, bestPri = n, pri
			}
		}
		if best >= 0 {
			g.Remove(best)
			stack = append(stack, best)
			continue
		}
		cand := regalloc.SpillCandidate(g)
		if cand < 0 {
			break
		}
		g.Remove(cand)
		res.Spilled = append(res.Spilled, cand)
	}
	if len(res.Spilled) > 0 {
		return res, nil
	}

	coloring := regalloc.NewColoring(g)
	vol, nonvol := splitByVolatility(ctx)
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		bv, bnv := regalloc.NodeBenefits(ctx, n)
		if bv < 0 && bnv < 0 && g.SpillCost(n) < regalloc.InfiniteCost {
			// Memory beats both register classes: leave it there.
			res.Spilled = append(res.Spilled, n)
			continue
		}
		avail := coloring.Available(n, k)
		if len(avail) == 0 {
			res.Spilled = append(res.Spilled, n)
			continue
		}
		pick := classPick(avail, vol, nonvol, bv >= bnv)
		coloring.Set(n, pick)
	}
	coloring.Fill(res)
	return res, nil
}

// priority is the combined benefit used to order simplification.
func priority(ctx *regalloc.Context, n ig.NodeID) float64 {
	bv, bnv := regalloc.NodeBenefits(ctx, n)
	if bv > bnv {
		return bv
	}
	return bnv
}

func splitByVolatility(ctx *regalloc.Context) (vol, nonvol []bool) {
	k := ctx.K()
	vol = make([]bool, k)
	nonvol = make([]bool, k)
	for r := 0; r < k; r++ {
		if ctx.Machine.IsVolatile(r) {
			vol[r] = true
		} else {
			nonvol[r] = true
		}
	}
	return vol, nonvol
}

// classPick takes the first available register of the preferred class,
// falling back to the other class.
func classPick(avail []int, vol, nonvol []bool, preferVolatile bool) int {
	first, second := vol, nonvol
	if !preferVolatile {
		first, second = nonvol, vol
	}
	for _, r := range avail {
		if first[r] {
			return r
		}
	}
	for _, r := range avail {
		if second[r] {
			return r
		}
	}
	return avail[0]
}
