package regalloc_test

import (
	"strings"
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
)

// alwaysSpill spills the most expensive web every round — the driver
// must give up after MaxRounds instead of looping forever.
type alwaysSpill struct{}

func (alwaysSpill) Name() string { return "always-spill" }

func (alwaysSpill) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	res := regalloc.NewResult()
	g := ctx.Graph
	best := ig.NodeID(-1)
	for _, n := range g.ActiveNodes() {
		w := int(n) - g.NumPhys()
		if ctx.SpillTemp[w] {
			continue
		}
		if best < 0 || g.SpillCost(n) > g.SpillCost(best) {
			best = n
		}
	}
	if best >= 0 {
		res.Spilled = append(res.Spilled, best)
		return res, nil
	}
	// Nothing left to victimize: color trivially (everything fits by
	// now or the test machine is large enough).
	coloring := regalloc.NewColoring(g)
	for _, n := range g.ActiveNodes() {
		avail := coloring.Available(n, ctx.K())
		if len(avail) == 0 {
			return nil, errNoColor
		}
		coloring.Set(n, avail[0])
	}
	coloring.Fill(res)
	return res, nil
}

var errNoColor = &noColorError{}

type noColorError struct{}

func (*noColorError) Error() string { return "no color available" }

func TestDriverMaxRoundsExhaustion(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v1, v0
  v3 = add v2, v1
  ret v3
}
`)
	m := target.UsageModel(8)
	_, _, err := regalloc.Run(f, m, alwaysSpill{}, regalloc.Options{MaxRounds: 3})
	if err == nil {
		t.Fatal("expected non-convergence error")
	}
	if !strings.Contains(err.Error(), "did not converge") {
		t.Errorf("error = %v, want non-convergence", err)
	}
}

// badAllocator returns an inconsistent coloring; the driver's
// validation must catch it unless disabled.
type badAllocator struct{}

func (badAllocator) Name() string { return "bad" }

func (badAllocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	res := regalloc.NewResult()
	g := ctx.Graph
	for _, n := range g.ActiveNodes() {
		res.Colors[n] = 0 // everyone gets r0, interference be damned
	}
	return res, nil
}

func TestDriverValidationCatchesBadColoring(t *testing.T) {
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = add v1, v0
  ret v2
}
`)
	m := target.UsageModel(8)
	_, _, err := regalloc.Run(f, m, badAllocator{}, regalloc.Options{})
	if err == nil {
		t.Fatal("validation accepted an interfering coloring")
	}
	if !strings.Contains(err.Error(), "share") {
		t.Errorf("error = %v, want shared-register complaint", err)
	}
}

func TestDriverSpillsParameters(t *testing.T) {
	// Force the parameter itself to spill: it is live across the
	// whole high-pressure body on a 4-register machine. The entry
	// must get a spillstore for it so later reloads see the value.
	src := `
func f(v0) {
b0:
  v1 = loadimm 1
  v2 = loadimm 2
  v3 = loadimm 3
  v4 = loadimm 4
  v5 = add v1, v2
  v6 = add v5, v3
  v7 = add v6, v4
  v8 = add v7, v1
  v9 = add v8, v2
  v10 = add v9, v0
  ret v10
}
`
	f := ir.MustParse(src)
	m := target.UsageModel(4)
	out, _, err := regalloc.Run(f, m, mustAlloc(t, "chaitin"), regalloc.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, in := range []int64{0, 42} {
		a, _ := ir.Interp(f, map[ir.Reg]int64{f.Params[0]: in}, ir.InterpOptions{})
		b, _ := ir.Interp(out, map[ir.Reg]int64{out.Params[0]: in}, ir.InterpOptions{})
		if a.Ret != b.Ret {
			t.Errorf("input %d: %d vs %d\n%s", in, a.Ret, b.Ret, out)
		}
	}
}

func mustAlloc(t *testing.T, name string) regalloc.Allocator {
	t.Helper()
	return allocatorByName(t, name)
}

func TestDriverSkipValidate(t *testing.T) {
	// With validation off, the bad coloring flows through to the
	// rewrite; the driver must still produce structurally valid IR
	// (semantics are knowingly broken — that is the point of the
	// validator this test bypasses).
	f := ir.MustParse(`
func f(v0) {
b0:
  v1 = add v0, v0
  ret v1
}
`)
	m := target.UsageModel(8)
	out, _, err := regalloc.Run(f, m, badAllocator{}, regalloc.Options{SkipValidate: true})
	if err != nil {
		t.Fatalf("Run with SkipValidate: %v", err)
	}
	if err := ir.Validate(out); err != nil {
		t.Errorf("rewrite produced invalid IR: %v", err)
	}
}
