package regalloc

import (
	"fmt"

	"prefcolor/internal/ir"
	"prefcolor/internal/target"
)

// ValidateInput checks that (input, machine) is a well-formed
// allocation request: the machine description is internally
// consistent (target.Machine.Validate), the function satisfies the
// structural IR invariants (ir.Validate), and every physical register
// the function names — operands, parameters, call pins — exists in
// the machine's register file. Run performs this check on entry, so
// malformed requests fail fast with a diagnostic instead of panicking
// or silently mis-allocating deep in selection.
func ValidateInput(input *ir.Func, machine *target.Machine) error {
	if input == nil {
		return fmt.Errorf("regalloc: nil input function")
	}
	if err := machine.Validate(); err != nil {
		return fmt.Errorf("regalloc: %w", err)
	}
	if err := ir.Validate(input); err != nil {
		return fmt.Errorf("regalloc: %s: invalid input: %w", input.Name, err)
	}
	var bad error
	check := func(where string, r ir.Reg) {
		if bad == nil && r.IsPhys() && r.PhysNum() >= machine.NumRegs {
			bad = fmt.Errorf("regalloc: %s: %s names %v but machine %q has %d registers",
				input.Name, where, r, machine.Name, machine.NumRegs)
		}
	}
	for _, p := range input.Params {
		check("parameter", p)
	}
	input.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		where := fmt.Sprintf("b%d[%d]", b.ID, i)
		for _, d := range in.Defs {
			check(where, d)
		}
		for _, u := range in.Uses {
			check(where, u)
		}
	})
	return bad
}
