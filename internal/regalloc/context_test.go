package regalloc_test

import (
	"context"
	"errors"
	"testing"

	"prefcolor/internal/core"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/target"
	"prefcolor/internal/workload"
)

// contextTestFunc returns a small function for the cancellation tests.
func contextTestFunc(t *testing.T) *ir.Func {
	t.Helper()
	f, err := ir.Parse(`func ctxf(v0) {
b0:
  v1 = add v0, v0
  v2 = mul v1, v0
  ret v2
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunCancelledContext(t *testing.T) {
	f := contextTestFunc(t)
	m := target.UsageModel(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	f := contextTestFunc(t)
	m := target.UsageModel(16)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestRunNilContextUnchanged(t *testing.T) {
	f := contextTestFunc(t)
	m := target.UsageModel(16)
	plain, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, _, err := regalloc.Run(f, m, core.New(), regalloc.Options{Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != bounded.String() {
		t.Fatalf("live context changed the allocation:\n%s\nvs\n%s", plain, bounded)
	}
}

func TestAllocateAllCancelledContext(t *testing.T) {
	m := target.UsageModel(16)
	funcs := workload.Generate(workload.Benchmarks()[0], m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := regalloc.AllocateAll(funcs, m, regalloc.BatchOptions{
		Options:      regalloc.Options{Context: ctx},
		NewAllocator: func() regalloc.Allocator { return core.New() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunCancelMidway drives a long allocation with a context that is
// cancelled by the allocator itself after the first phase boundary has
// passed, proving the driver aborts at the next checkpoint rather than
// running the round to completion.
func TestRunCancelMidway(t *testing.T) {
	f := contextTestFunc(t)
	m := target.UsageModel(16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	alloc := &cancellingAllocator{inner: core.New(), cancel: cancel}
	_, _, err := regalloc.Run(f, m, alloc, regalloc.Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !alloc.ran {
		t.Fatal("allocator never ran; cancellation fired too early to test the midway checkpoint")
	}
}

type cancellingAllocator struct {
	inner  regalloc.Allocator
	cancel context.CancelFunc
	ran    bool
}

func (a *cancellingAllocator) Name() string { return a.inner.Name() }

func (a *cancellingAllocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	a.ran = true
	res, err := a.inner.Allocate(ctx)
	a.cancel() // driver must notice at the post-Allocate checkpoint
	return res, err
}
