// Package optimistic implements Park & Moon's optimistic coalescing
// (the paper's Figure 2(b)): coalesce aggressively up front to harvest
// the positive effect of coalescing, and undo coalesces at select time
// when a merged node turns out uncolorable — split it, color the
// largest-benefit subset with one "primary" color, defer the rest to
// the bottom of the stack, and spill only what still cannot be
// colored.
package optimistic

import (
	"prefcolor/internal/ig"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/briggs"
)

// Allocator is the Park & Moon 1998 algorithm.
type Allocator struct{}

// New returns the allocator.
func New() *Allocator { return &Allocator{} }

// Name implements regalloc.Allocator.
func (*Allocator) Name() string { return "optimistic" }

// Allocate implements regalloc.Allocator.
func (*Allocator) Allocate(ctx *regalloc.Context) (*regalloc.Result, error) {
	g, k := ctx.Graph, ctx.K()
	regalloc.AggressiveCoalesce(g)
	stack := briggs.OptimisticSimplify(g, k)

	// Select works at the granularity of original (pre-coalescing)
	// nodes so that an undone coalesce can give members different
	// colors while neighbors still see every conflict.
	color := make([]int, g.NumNodes())
	for i := range color {
		color[i] = -1
	}
	for i := 0; i < g.NumPhys(); i++ {
		color[i] = i
	}
	// Webs coalesced directly into physical registers are never on
	// the stack; their members wear the physical color from the
	// start.
	for n := g.NumPhys(); n < g.NumNodes(); n++ {
		if rep := g.Find(ig.NodeID(n)); g.IsPhys(rep) {
			color[n] = g.PhysColor(rep)
		}
	}

	res := regalloc.NewResult()

	availFor := func(members []ig.NodeID) []int {
		used := make([]bool, k)
		for _, m := range members {
			g.ForEachOrigNeighbor(m, func(nb ig.NodeID) {
				if c := color[nb]; c >= 0 && c < k {
					used[c] = true
				}
			})
		}
		var out []int
		for r := 0; r < k; r++ {
			if !used[r] {
				out = append(out, r)
			}
		}
		return out
	}
	setColor := func(members []ig.NodeID, c int) {
		for _, m := range members {
			color[m] = c
			res.Colors[m] = c
		}
	}
	// biasedPick prefers a color already worn by a copy partner.
	biasedPick := func(n ig.NodeID, avail []int) int {
		inAvail := func(c int) bool {
			for _, a := range avail {
				if a == c {
					return true
				}
			}
			return false
		}
		bestC, bestW := -1, 0.0
		for _, m := range g.Members(n) {
			for _, mi := range g.NodeMoves(m) {
				mv := g.Moves()[mi]
				other := mv.X
				if other == m {
					other = mv.Y
				}
				if c := color[other]; c >= 0 && inAvail(c) && (bestC < 0 || mv.Weight > bestW) {
					bestC, bestW = c, mv.Weight
				}
			}
		}
		if bestC >= 0 {
			return bestC
		}
		return avail[0]
	}

	var deferred []ig.NodeID
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		members := g.Members(n)
		if avail := availFor(members); len(avail) > 0 {
			setColor(members, biasedPick(n, avail))
			continue
		}
		if len(members) <= 1 {
			res.Spilled = append(res.Spilled, n)
			continue
		}
		// Undo the coalesce: pick the primary color covering the most
		// spill cost among the members, defer the rest.
		bestColor, bestWeight := -1, 0.0
		var bestSet []ig.NodeID
		for c := 0; c < k; c++ {
			var set []ig.NodeID
			weight := 0.0
			for _, m := range members {
				if memberColorFree(g, color, m, c) {
					set = append(set, m)
					weight += memberCost(ctx, m)
				}
			}
			if len(set) > 0 && (bestColor < 0 || weight > bestWeight) {
				bestColor, bestWeight, bestSet = c, weight, set
			}
		}
		if bestColor < 0 {
			// No member is colorable here and now: all spill.
			res.Spilled = append(res.Spilled, members...)
			continue
		}
		setColor(bestSet, bestColor)
		inBest := map[ig.NodeID]bool{}
		for _, m := range bestSet {
			inBest[m] = true
		}
		for _, m := range members {
			if !inBest[m] {
				deferred = append(deferred, m)
			}
		}
	}

	// "The other is inserted at the bottom of the stack": deferred
	// members are colored after everything else, individually.
	for _, m := range deferred {
		if avail := availFor([]ig.NodeID{m}); len(avail) > 0 {
			setColor([]ig.NodeID{m}, avail[0])
		} else {
			res.Spilled = append(res.Spilled, m)
		}
	}
	return res, nil
}

func memberColorFree(g *ig.Graph, color []int, m ig.NodeID, c int) bool {
	free := true
	g.ForEachOrigNeighbor(m, func(nb ig.NodeID) {
		if color[nb] == c {
			free = false
		}
	})
	return free
}

func memberCost(ctx *regalloc.Context, m ig.NodeID) float64 {
	if ctx.Graph.IsPhys(m) {
		return 0
	}
	return ctx.Costs.MemCost(int(m) - ctx.Graph.NumPhys())
}
