package optimistic_test

import (
	"testing"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/regalloc"
	"prefcolor/internal/regalloc/optimistic"
	"prefcolor/internal/target"
)

func ctxFor(t *testing.T, src string, k int) *regalloc.Context {
	t.Helper()
	f := ir.MustParse(src)
	if _, err := ig.Renumber(f); err != nil {
		t.Fatal(err)
	}
	ctx, err := regalloc.NewContext(f, target.UsageModel(k), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestUndoSplitsCoalescedNode: aggressive coalescing merges a copy
// pair whose union is uncolorable; the undo phase must split it and
// color the members separately instead of spilling both.
func TestUndoSplitsCoalescedNode(t *testing.T) {
	// v1 = move v2 merges v1 and v2. The merged node interferes with
	// everything at K=4; split, each member fits.
	src := `
func f(v0) {
b0:
  v2 = add v0, v0
  v3 = add v0, v2
  v4 = add v0, v3
  v5 = add v0, v4
  v6 = add v3, v4
  v1 = move v2
  v7 = add v6, v5
  v8 = add v7, v2
  v9 = add v8, v1
  ret v9
}
`
	ctx := ctxFor(t, src, 4)
	res, err := optimistic.New().Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CheckResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	// The algorithm may spill under this pressure, but it must not
	// spill more webs than Chaitin-style pessimism would: at minimum
	// the copy pair must not *both* be spilled while registers exist
	// for one of them.
	spilled := map[ig.NodeID]bool{}
	for _, s := range res.Spilled {
		spilled[s] = true
	}
	g := ctx.Graph
	n1, n2 := g.NodeOf(ir.Virt(1)), g.NodeOf(ir.Virt(2))
	if spilled[n1] && spilled[n2] {
		t.Errorf("both copy endpoints spilled; undo should have saved one")
	}
}

// TestOptimisticColorsMemberGranularity: when a merged node splits,
// the member colors must respect the ORIGINAL interference edges.
func TestOptimisticValidityUnderPressure(t *testing.T) {
	src := `
func f(v0) {
b0:
  v1 = add v0, v0
  v2 = move v1
  v3 = add v0, v1
  v4 = add v0, v3
  v5 = add v3, v4
  v6 = add v2, v5
  v7 = add v6, v0
  v8 = add v7, v2
  ret v8
}
`
	for _, k := range []int{4, 6, 8} {
		ctx := ctxFor(t, src, k)
		res, err := optimistic.New().Allocate(ctx)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := regalloc.CheckResult(ctx, res); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}
