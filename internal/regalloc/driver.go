package regalloc

import (
	"context"
	"fmt"
	"io"

	"prefcolor/internal/ig"
	"prefcolor/internal/ir"
	"prefcolor/internal/liveness"
	"prefcolor/internal/scratch"
	"prefcolor/internal/target"
	"prefcolor/internal/telemetry"
)

// Options configures the allocation driver.
type Options struct {
	// Context, when non-nil, bounds the allocation. The driver polls
	// it at the phase boundaries of every spill round (round start,
	// after graph construction, after coloring, before spill
	// insertion) and abandons the run with the context's error once it
	// is done — so a deadline or cancellation never interrupts a phase
	// midway, it only stops the pipeline between phases. A nil Context
	// means no bound, the historical behavior.
	Context context.Context

	// MaxRounds bounds the spill-and-retry loop; 0 means 16.
	MaxRounds int

	// SkipValidate turns off the per-round CheckResult pass.
	SkipValidate bool

	// Rematerialize recomputes spilled constants at their uses
	// (Briggs-style rematerialization) instead of storing and
	// reloading them: a spilled web whose every definition is the
	// same loadimm gets a fresh loadimm before each use and no spill
	// slot at all.
	Rematerialize bool

	// BlockLocalSpills replaces spill-everywhere with block-granular
	// spill code: a spilled web is loaded at most once per basic
	// block, kept in a block-local temporary, and stored back once at
	// block exit — the standard improvement over store-after-every-
	// def/load-before-every-use. A web that came from such a
	// temporary falls back to spill-everywhere, which guarantees
	// termination.
	BlockLocalSpills bool

	// CollectTelemetry turns on the instrumentation layer: per-phase
	// wall/CPU timers, preference-outcome counters, and the ready-set
	// histogram land in Stats.Telemetry. Collection only observes, so
	// the assignment is bit-identical with it on or off.
	CollectTelemetry bool

	// TraceWriter, when non-nil, receives one JSON line per selection
	// or spill decision (and implies CollectTelemetry). Under the
	// batch driver wrap it with telemetry.NewLockedWriter — or let
	// AllocateAll do it — so concurrent workers do not interleave
	// lines.
	TraceWriter io.Writer

	// Workspace, when non-nil, supplies the reusable scratch arena for
	// every analysis and allocator buffer; passing the same workspace
	// to successive Run calls reuses the storage instead of
	// reallocating it. The result is bit-identical with or without
	// one. A workspace must not be used by two Runs concurrently;
	// AllocateAll ignores this field and gives each worker its own.
	Workspace *Workspace
}

// telemetryOn reports whether the options ask for any instrumentation.
func (o *Options) telemetryOn() bool {
	return o.CollectTelemetry || o.TraceWriter != nil
}

// interrupted reports the options' context error, if the context is
// set and done; allocName labels the wrapped error.
func (o *Options) interrupted(allocName string) error {
	if o.Context == nil {
		return nil
	}
	select {
	case <-o.Context.Done():
		return fmt.Errorf("regalloc: %s interrupted: %w", allocName, o.Context.Err())
	default:
		return nil
	}
}

// Stats summarizes one complete allocation, the raw numbers behind
// the paper's figures.
type Stats struct {
	Allocator string
	Rounds    int

	// MovesBefore counts copies in the input; MovesRemaining counts
	// copies surviving in the final code. Their difference is the
	// paper's "moves eliminated by coalescing" (Figure 9(a)/(c)).
	MovesBefore     int
	MovesRemaining  int
	MovesEliminated int

	// SpillLoads/SpillStores count allocator-inserted spill code
	// (Figure 9(b)/(d)). Caller-save traffic is tallied separately.
	SpillLoads  int
	SpillStores int
	SpilledWebs int

	// Remats counts spilled webs handled by rematerialization
	// (constants recomputed at uses rather than reloaded).
	Remats int

	CallerSaveStores int
	CallerSaveLoads  int

	UsedRegs        int
	UsedNonVolatile int

	// Telemetry is this allocation's instrumentation snapshot; nil
	// unless Options.CollectTelemetry (or a TraceWriter) was set.
	Telemetry *telemetry.Snapshot
}

// SpillInstrs returns the total spill-code count the paper reports.
func (s *Stats) SpillInstrs() int { return s.SpillLoads + s.SpillStores }

const callerSaveTag = "csave"

// Run allocates registers for input with the given allocator,
// iterating spill rounds to completion, and returns the rewritten
// function (virtual registers replaced by physical ones, coalesced
// copies deleted, spill and caller-save code inserted) plus statistics.
// The input function is not modified.
func Run(input *ir.Func, machine *target.Machine, alloc Allocator, opts Options) (*ir.Func, *Stats, error) {
	if err := ValidateInput(input, machine); err != nil {
		return nil, nil, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16
	}
	f := input.Clone()
	stats := &Stats{
		Allocator:   alloc.Name(),
		MovesBefore: f.CountOp(ir.Move),
	}
	var tel *telemetry.Collector
	var memBase, gcBase uint64
	if opts.telemetryOn() {
		tel = telemetry.New(opts.TraceWriter)
		tel.BeginFunc(f.Name)
		memBase, gcBase = telemetry.ReadMemCounters()
	}

	// The workspace supplies (and clears on borrow) every per-round
	// buffer below; a fresh one makes Run self-contained.
	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}
	if ws.tempRegs == nil {
		ws.tempRegs = map[ir.Reg]bool{}
		ws.blockLocalRegs = map[ir.Reg]bool{}
	}
	tempRegs := ws.tempRegs
	blockLocalRegs := ws.blockLocalRegs
	clear(tempRegs)
	clear(blockLocalRegs)
	for round := 1; round <= maxRounds; round++ {
		if err := opts.interrupted(alloc.Name()); err != nil {
			return nil, nil, err
		}
		tel.BeginRound(round)
		sp := tel.Begin()
		info, err := ig.RenumberInto(f, &ws.renumber)
		tel.End(telemetry.PhaseRenumber, sp)
		if err != nil {
			return nil, nil, err
		}
		ws.spillTemp = scratch.Slice(ws.spillTemp, info.NumWebs)
		ws.blockLocal = scratch.Slice(ws.blockLocal, info.NumWebs)
		spillTemp := ws.spillTemp
		blockLocal := ws.blockLocal
		for w, origins := range info.Origins {
			for _, o := range origins {
				if tempRegs[o] {
					spillTemp[w] = true
				}
				if blockLocalRegs[o] {
					blockLocal[w] = true
				}
			}
		}
		sp = tel.Begin()
		ctx, err := NewContextIn(ws, f, machine, spillTemp)
		tel.End(telemetry.PhaseBuildIG, sp)
		if err != nil {
			return nil, nil, err
		}
		if err := opts.interrupted(alloc.Name()); err != nil {
			return nil, nil, err
		}
		ctx.Telemetry = tel
		res, err := alloc.Allocate(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("regalloc: %s round %d: %w", alloc.Name(), round, err)
		}
		if err := opts.interrupted(alloc.Name()); err != nil {
			return nil, nil, err
		}
		if !opts.SkipValidate {
			if err := CheckResult(ctx, res); err != nil {
				return nil, nil, fmt.Errorf("regalloc: %s round %d: %w", alloc.Name(), round, err)
			}
		}
		stats.Rounds = round
		if len(res.Spilled) == 0 {
			out, err := rewrite(ctx, res, stats)
			if err != nil {
				return nil, nil, err
			}
			if tel != nil {
				mem, gc := telemetry.ReadMemCounters()
				tel.AddMem(mem-memBase, gc-gcBase)
			}
			stats.Telemetry = tel.Snapshot()
			return out, stats, nil
		}
		spillSpan := tel.Begin()
		webs := expandSpills(ctx.Graph, res.Spilled)
		stats.SpilledWebs += len(webs)
		// Re-key the carried-over marker sets to this round's naming:
		// virtual-register numbers are reassigned by every renumber.
		// The old keys were fully consumed by the Origins loop above,
		// so clearing and refilling the maps in place is safe.
		clear(tempRegs)
		for w, isTemp := range spillTemp {
			if isTemp {
				tempRegs[ir.Virt(w)] = true
			}
		}
		clear(blockLocalRegs)
		for w, isLocal := range blockLocal {
			if isLocal {
				blockLocalRegs[ir.Virt(w)] = true
			}
		}
		if opts.Rematerialize {
			var kept []int
			for _, w := range webs {
				if imm, ok := rematerializable(f, w); ok {
					stats.Remats++
					for _, t := range rematerialize(f, w, imm) {
						tempRegs[t] = true
					}
				} else {
					kept = append(kept, w)
				}
			}
			webs = kept
		}
		if opts.BlockLocalSpills {
			var everywhere []int
			for _, w := range webs {
				if blockLocal[w] {
					everywhere = append(everywhere, w)
					continue
				}
				for _, t := range insertBlockLocalSpill(f, w) {
					blockLocalRegs[t] = true
				}
			}
			webs = everywhere
		}
		for _, t := range insertSpillCode(f, webs) {
			tempRegs[t] = true
		}
		tel.End(telemetry.PhaseSpill, spillSpan)
	}
	return nil, nil, fmt.Errorf("regalloc: %s did not converge in %d rounds", alloc.Name(), maxRounds)
}

// readBeforeWritten reports whether some path from entry reaches a
// use of r before any definition of it. Such webs are legal input —
// the renumberer models undefined uses explicitly — but their spill
// slot has no dominating store, so the spill inserters must also
// capture the (undefined) entry value the way they do for parameters;
// otherwise the reload before the upward-exposed use reads a slot no
// path has written, which the RunChecked oracle rightly rejects for
// every defined web. Parameters are defined at entry by the caller
// and are never reported.
func readBeforeWritten(f *ir.Func, r ir.Reg) bool {
	for _, p := range f.Params {
		if p == r {
			return false
		}
	}
	// DFS over paths on which r is still undefined: a block defining r
	// kills the path; a use of r before a def inside a live block is a
	// read of the undefined entry value.
	seen := make([]bool, len(f.Blocks))
	stack := []ir.BlockID{0}
	seen[0] = true
	for len(stack) > 0 {
		b := f.Blocks[stack[len(stack)-1]]
		stack = stack[:len(stack)-1]
		defined := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, u := range in.Uses {
				if u == r {
					return true
				}
			}
			if in.Def() == r {
				defined = true
				break
			}
		}
		if defined {
			continue
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// insertBlockLocalSpill splits spilled web w at block granularity:
// each block that touches w loads it at most once into a fresh
// block-local temporary and stores it back once before the block's
// terminator if it wrote it. Parameters — and webs whose entry value
// is read before any definition — are stored at entry first.
// It returns the block-local temporaries.
func insertBlockLocalSpill(f *ir.Func, w int) []ir.Reg {
	r := ir.Virt(w)
	slot := f.NewSpillSlot()
	var temps []ir.Reg

	isParam := false
	for _, p := range f.Params {
		if p == r {
			isParam = true
		}
	}
	captureEntry := isParam || readBeforeWritten(f, r)

	for _, b := range f.Blocks {
		touches := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Def() == r {
				touches = true
			}
			for _, u := range in.Uses {
				if u == r {
					touches = true
				}
			}
		}
		entryCapture := b.ID == 0 && captureEntry
		if !touches && !entryCapture {
			continue
		}

		t := f.NewReg()
		temps = append(temps, t)
		loaded, dirty := false, false
		out := make([]ir.Instr, 0, len(b.Instrs)+3)
		if entryCapture {
			// The incoming value arrives in the web's register;
			// capture it and mark memory stale until block exit.
			out = append(out, ir.MakeMove(t, r))
			loaded, dirty = true, true
		}
		for i := range b.Instrs {
			in := b.Instrs[i]
			usesW := false
			for _, u := range in.Uses {
				if u == r {
					usesW = true
				}
			}
			if usesW {
				if !loaded {
					out = append(out, ir.Instr{Op: ir.SpillLoad, Defs: []ir.Reg{t}, Imm: slot})
					loaded = true
				}
				for ui, u := range in.Uses {
					if u == r {
						in.Uses[ui] = t
					}
				}
			}
			// Calls end the temp's region: flush a dirty value before
			// the call and start a fresh temporary after it, so
			// block-local temporaries never cross call sites (which
			// would pin them against the volatile registers).
			if in.Op == ir.Call {
				if dirty {
					out = append(out, ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{t}, Imm: slot})
					dirty = false
				}
				defsW := in.Def() == r
				if defsW || loaded {
					t = f.NewReg()
					temps = append(temps, t)
				}
				loaded = false
				if defsW {
					in.Defs[0] = t
					loaded, dirty = true, true
				}
				out = append(out, in)
				continue
			}
			if in.Def() == r {
				in.Defs[0] = t
				loaded, dirty = true, true
			}
			out = append(out, in)
		}
		if dirty {
			store := ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{t}, Imm: slot}
			n := len(out)
			if n > 0 && out[n-1].Op.IsTerminator() {
				out = append(out[:n-1], store, out[n-1])
			} else {
				out = append(out, store)
			}
		}
		b.Instrs = out
	}
	return temps
}

// rematerializable reports whether web w's definitions are all the
// same constant load (and it is not a parameter, which has an
// implicit definition at entry).
func rematerializable(f *ir.Func, w int) (int64, bool) {
	r := ir.Virt(w)
	for _, p := range f.Params {
		if p == r {
			return 0, false
		}
	}
	var imm int64
	found := false
	ok := true
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.Def() != r {
			return
		}
		if in.Op != ir.LoadImm {
			ok = false
			return
		}
		if found && in.Imm != imm {
			ok = false
			return
		}
		imm, found = in.Imm, true
	})
	return imm, ok && found
}

// rematerialize replaces every use of web w with a freshly loaded
// constant, dropping the now-dead original definitions, and returns
// the fresh single-use registers (which the driver marks unspillable).
func rematerialize(f *ir.Func, w int, imm int64) []ir.Reg {
	r := ir.Virt(w)
	var temps []ir.Reg
	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Def() == r && in.Op == ir.LoadImm {
				continue // dead original definition
			}
			usesW := false
			for _, u := range in.Uses {
				if u == r {
					usesW = true
				}
			}
			if usesW {
				t := f.NewReg()
				temps = append(temps, t)
				out = append(out, ir.MakeLoadImm(t, imm))
				for ui, u := range in.Uses {
					if u == r {
						in.Uses[ui] = t
					}
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return temps
}

// expandSpills resolves spilled node ids to the set of web indices to
// spill: a coalescing representative expands to all of its members.
func expandSpills(g *ig.Graph, spilled []ig.NodeID) []int {
	seen := map[int]bool{}
	var out []int
	add := func(n ig.NodeID) {
		if g.IsPhys(n) {
			return
		}
		w := int(n) - g.NumPhys()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, s := range spilled {
		if ms := g.Members(s); len(ms) > 0 {
			for _, m := range ms {
				add(m)
			}
		} else {
			add(s)
		}
	}
	return out
}

// InsertSpillEverywhere inserts spill-everywhere code for the given
// webs (virtual-register numbers): a store follows every definition
// (and function entry, for parameters and webs whose entry value is
// read before any definition), and every use reads a fresh temporary
// loaded just before it. It returns the fresh temporaries plus the
// spilled webs themselves (whose remaining live ranges are now tiny),
// all of which must never be spilled again. The driver uses it for
// every round's spill set; it is exported for allocators with their
// own driver loop (the linear-scan fast tier).
func InsertSpillEverywhere(f *ir.Func, webs []int) []ir.Reg {
	return insertSpillCode(f, webs)
}

// insertSpillCode splits each spilled web: a store follows every
// definition (and function entry, for parameters and webs whose entry
// value is read before any definition), and every use reads a fresh
// temporary loaded just before it. It returns the fresh temporaries
// plus the spilled webs themselves (whose remaining live ranges are
// now tiny), all of which must never be spilled again.
func insertSpillCode(f *ir.Func, webs []int) []ir.Reg {
	slot := map[ir.Reg]int64{}
	var entryStores []ir.Reg
	for _, w := range webs {
		r := ir.Virt(w)
		slot[r] = f.NewSpillSlot()
		if readBeforeWritten(f, r) {
			entryStores = append(entryStores, r)
		}
	}
	var temps []ir.Reg
	for r := range slot {
		temps = append(temps, r)
	}

	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		if b.ID == 0 {
			for _, p := range f.Params {
				if s, ok := slot[p]; ok {
					out = append(out, ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{p}, Imm: s})
				}
			}
			for _, r := range entryStores {
				out = append(out, ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{r}, Imm: slot[r]})
			}
		}
		for i := range b.Instrs {
			in := b.Instrs[i]
			// Allocated lazily: most instructions touch no spilled web,
			// and a map per instruction is measurable on the fast path.
			var replaced map[ir.Reg]ir.Reg
			for ui, u := range in.Uses {
				s, ok := slot[u]
				if !ok {
					continue
				}
				t, dup := replaced[u]
				if !dup {
					t = f.NewReg()
					if replaced == nil {
						replaced = map[ir.Reg]ir.Reg{}
					}
					replaced[u] = t
					temps = append(temps, t)
					out = append(out, ir.Instr{Op: ir.SpillLoad, Defs: []ir.Reg{t}, Imm: s})
				}
				in.Uses[ui] = t
			}
			out = append(out, in)
			if d := in.Def(); d.Valid() {
				if s, ok := slot[d]; ok {
					out = append(out, ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{d}, Imm: s})
				}
			}
		}
		b.Instrs = out
	}
	return temps
}

// rewrite maps the colored function onto physical registers: it
// resolves every web's color through the graph's coalescing aliases
// and hands the dense color table to RewriteColored.
func rewrite(ctx *Context, res *Result, stats *Stats) (*ir.Func, error) {
	f, g := ctx.F, ctx.Graph
	var colors []int
	if ws := ctx.Workspace; ws != nil {
		ws.colors = scratch.Slice(ws.colors, f.NumVirt)
		colors = ws.colors
	} else {
		colors = make([]int, f.NumVirt)
	}
	for w := 0; w < f.NumVirt; w++ {
		c, ok := res.ColorOf(g, g.NodeOf(ir.Virt(w)))
		if !ok {
			return nil, fmt.Errorf("regalloc: web v%d has no color at rewrite", w)
		}
		colors[w] = c
	}
	return RewriteColored(f, ctx.Machine, ctx.Live, colors, stats)
}

// RewriteColored maps a fully colored function onto physical
// registers, in place: caller saves are inserted around calls for
// volatile-resident values, every virtual register w is replaced by
// physical register colors[w], copies made redundant by the
// assignment are deleted, and the rewrite statistics (moves, spill
// code, caller saves, register usage) are recorded on stats. live
// must be current for f. The driver calls it with graph-resolved
// colors; allocators with their own driver loop (the linear-scan fast
// tier) call it directly.
//
// live may be nil only when the caller guarantees no value colored
// volatile is live across any call — then the caller-save scan has
// nothing to find and is skipped. The linear-scan fast path earns
// this by construction: its clobber masks forbid volatile registers
// to every web live across a call.
func RewriteColored(f *ir.Func, m *target.Machine, live *liveness.Info, colors []int, stats *Stats) (*ir.Func, error) {
	// Caller-save insertion: find, per call, the webs assigned
	// volatile registers that live across it.
	type savePoint struct {
		idx  int
		webs []int
	}
	saves := map[ir.BlockID][]savePoint{}
	for _, b := range f.Blocks {
		if live == nil {
			break
		}
		live.ForEachInstrReverse(b, func(i int, in *ir.Instr, liveAfter ir.RegSet) {
			if in.Op != ir.Call {
				return
			}
			var webs []int
			for r := range liveAfter {
				if !r.IsVirt() || r == in.Def() {
					continue
				}
				if m.IsVolatile(colors[r.VirtNum()]) {
					webs = append(webs, r.VirtNum())
				}
			}
			if len(webs) > 0 {
				sortInts(webs)
				saves[b.ID] = append(saves[b.ID], savePoint{idx: i, webs: webs})
			}
		})
	}
	saveSlot := map[int]int64{}
	for _, b := range f.Blocks {
		pts := saves[b.ID]
		if len(pts) == 0 {
			continue
		}
		byIdx := map[int][]int{}
		for _, p := range pts {
			byIdx[p.idx] = p.webs
		}
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			webs := byIdx[i]
			for _, w := range webs {
				s, ok := saveSlot[w]
				if !ok {
					s = f.NewSpillSlot()
					saveSlot[w] = s
				}
				out = append(out, ir.Instr{Op: ir.SpillStore, Uses: []ir.Reg{ir.Virt(w)}, Imm: s, Sym: callerSaveTag})
				stats.CallerSaveStores++
			}
			out = append(out, b.Instrs[i])
			for _, w := range webs {
				out = append(out, ir.Instr{Op: ir.SpillLoad, Defs: []ir.Reg{ir.Virt(w)}, Imm: saveSlot[w], Sym: callerSaveTag})
				stats.CallerSaveLoads++
			}
		}
		b.Instrs = out
	}

	// Map webs to physical registers.
	usedRegs := map[int]bool{}
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		for di, d := range in.Defs {
			if d.IsVirt() {
				in.Defs[di] = ir.Phys(colors[d.VirtNum()])
				usedRegs[colors[d.VirtNum()]] = true
			}
		}
		for ui, u := range in.Uses {
			if u.IsVirt() {
				in.Uses[ui] = ir.Phys(colors[u.VirtNum()])
				usedRegs[colors[u.VirtNum()]] = true
			}
		}
	})
	for i, p := range f.Params {
		if p.IsVirt() {
			f.Params[i] = ir.Phys(colors[p.VirtNum()])
		}
	}

	// Delete copies the assignment made redundant.
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		if in.IsCopy() && in.Defs[0] == in.Uses[0] {
			*in = ir.Instr{Op: ir.Nop}
		}
	})
	f.CompactNops()
	f.NumVirt = 0

	stats.MovesRemaining = f.CountOp(ir.Move)
	stats.MovesEliminated = stats.MovesBefore - stats.MovesRemaining
	f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
		switch {
		case in.Op == ir.SpillLoad && in.Sym != callerSaveTag:
			stats.SpillLoads++
		case in.Op == ir.SpillStore && in.Sym != callerSaveTag:
			stats.SpillStores++
		}
	})
	for r := range usedRegs {
		stats.UsedRegs++
		if !m.IsVolatile(r) {
			stats.UsedNonVolatile++
		}
	}
	if err := ir.Validate(f); err != nil {
		return nil, fmt.Errorf("regalloc: rewrite produced invalid IR: %w", err)
	}
	return f, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
